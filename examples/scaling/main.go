// Scaling study: the paper's introductory motivation, made runnable.
// Blue Waters data showed a 2.2× larger application suffering 20× more
// failures; an exascale application needs ~100,000 nodes. This example
// derives SCR-protocol systems from one physical platform spec at
// increasing node counts — PFS checkpoint time and failure rate both
// grow with the machine — and tracks how far multilevel checkpointing
// (optimized by the paper's model) can hold efficiency, compared with
// traditional single-level checkpoint/restart.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sim"

	_ "repro/internal/model/daly"
	_ "repro/internal/model/dauwe"
)

func main() {
	base := hardware.Spec{
		Name:                "frontier-like",
		Protocol:            hardware.SCRProtocol,
		Nodes:               10000,
		CheckpointGBPerNode: 4,
		LocalGBPerMin:       600, // node-local burst buffer
		PartnerGBPerMin:     90,  // partner copy over the fabric
		XOROverhead:         1.5,
		PFSGBPerMin:         20000, // shared parallel file system
		NodeFailuresPerYear: 1.5,
		BaselineMinutes:     1440,
	}
	seed := rng.Campaign(21, "scaling-example")

	fmt.Println("Machine scaling under the SCR protocol (simulated, 60 trials each):")
	fmt.Printf("%9s  %10s  %9s  %14s  %14s\n",
		"nodes", "MTBF(min)", "PFS(min)", "multilevel", "single-level")
	for _, nodes := range []int{10000, 25000, 50000, 100000, 200000} {
		spec := base.ScaleNodes(nodes)
		sys, err := spec.Build()
		if err != nil {
			log.Fatal(err)
		}
		row := fmt.Sprintf("%9d  %10.1f  %9.1f", nodes, sys.MTBF,
			sys.Levels[sys.NumLevels()-1].Checkpoint)
		for _, techName := range []string{"dauwe", "daly"} {
			tech, err := model.New(techName)
			if err != nil {
				log.Fatal(err)
			}
			plan, _, err := tech.Optimize(sys)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Campaign{
				Scenario: sim.Scenario{System: sys, Plan: plan, MaxWallFactor: 100},
				Trials:   60,
				Seed:     seed.Scenario(fmt.Sprintf("%d/%s", nodes, techName)),
			}.Run()
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  %7.1f%% ±%4.1f", 100*res.Efficiency.Mean, 100*res.Efficiency.Std)
		}
		fmt.Println(row)
	}
	fmt.Println("\nMultilevel checkpointing absorbs most of the growth — cheap local and")
	fmt.Println("partner checkpoints keep recovering the frequent low-severity failures —")
	fmt.Println("while single-level C/R pays the ballooning PFS cost for every failure,")
	fmt.Println("which is the paper's case for multilevel protocols at exascale.")
}
