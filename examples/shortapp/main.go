// Short-application study: the paper's Section IV-F effect. For a
// 30-minute application on an exascale-like system whose PFS checkpoints
// cost 20 minutes, techniques that account for the application's length
// (the paper's model, Di et al.) skip the PFS level entirely and risk a
// total restart — beating Moody et al.'s steady-state model, which
// always pays for PFS checkpoints. The advantage is checked for
// statistical significance with Welch's t-test, as in the paper.
//
//	go run ./examples/shortapp
package main

import (
	"fmt"
	"log"

	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"

	_ "repro/internal/model/dauwe"
	_ "repro/internal/model/moody"
)

func main() {
	base, err := system.ByName("B")
	if err != nil {
		log.Fatal(err)
	}
	sys := base.WithTopCost(20).WithMTBF(15).WithBaseline(30)
	fmt.Println("scenario:", sys)
	seed := rng.Campaign(5, "shortapp-example")

	summaries := map[string]stats.Summary{}
	for _, name := range []string{"dauwe", "moody"} {
		tech, err := model.New(name)
		if err != nil {
			log.Fatal(err)
		}
		plan, pred, err := tech.Optimize(sys)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Campaign{
			Scenario: sim.Scenario{System: sys, Plan: plan, MaxWallFactor: 120},
			Trials:   400,
			Seed:     seed.Scenario(name),
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		summaries[name] = res.Efficiency
		fmt.Printf("%-6s plan %-34s predicted %.3f, simulated %.3f ± %.3f (PFS checkpoints: %v)\n",
			name, plan.String(), pred.Efficiency,
			res.Efficiency.Mean, res.Efficiency.Std, plan.UsesLevel(sys.NumLevels()))
	}

	verdict, err := stats.SignificantlyGreater(summaries["dauwe"], summaries["moody"], 0.95)
	if err != nil {
		log.Fatal(err)
	}
	gain := summaries["dauwe"].Mean - summaries["moody"].Mean
	fmt.Printf("\nskipping PFS checkpoints gains %+.1f%% efficiency; significant at 95%%: %v\n",
		100*gain, verdict)
}
