// Quickstart: define a failure-prone HPC system, let the paper's model
// (Dauwe et al.) pick multilevel checkpoint intervals, and check the
// prediction against the event-driven simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/model/dauwe"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

func main() {
	// A two-level system: severity-1 failures (83 %) restart from a
	// fast in-memory checkpoint, severity-2 failures (17 %) need the
	// parallel file system. One failure every 24 minutes on average —
	// Table I's D2 test system.
	sys := &system.System{
		Name:         "quickstart",
		MTBF:         24,   // minutes
		BaselineTime: 1440, // a 24-hour application
		Levels: []system.Level{
			{Checkpoint: 0.333, Restart: 0.333, SeverityProb: 0.833},
			{Checkpoint: 0.833, Restart: 0.833, SeverityProb: 0.167},
		},
	}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}

	// Optimize checkpoint intervals with the paper's hierarchical
	// execution-time model.
	tech := dauwe.New()
	plan, pred, err := tech.Optimize(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system:          %s\n", sys)
	fmt.Printf("optimized plan:  %s\n", plan)
	fmt.Printf("model predicts:  efficiency %.3f (expected run %.0f min for %0.f min of work)\n",
		pred.Efficiency, pred.ExpectedTime, sys.BaselineTime)

	// Validate against the simulator: 200 randomized trials.
	camp := sim.Campaign{
		Scenario: sim.Scenario{System: sys, Plan: plan},
		Trials:   200,
		Seed:     rng.Campaign(42, "quickstart").Scenario(sys.Name),
	}
	res, err := camp.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated:       efficiency %.3f ± %.3f over %d trials (%d completed)\n",
		res.Efficiency.Mean, res.Efficiency.Std, res.Trials, res.Completed)
	fmt.Printf("prediction error: %+.4f\n", pred.Efficiency-res.Efficiency.Mean)

	b := res.BreakdownShare
	fmt.Printf("time breakdown:  useful %.1f%%, lost work %.1f%%, checkpoints %.1f%%+%.1f%%, restarts %.1f%%+%.1f%%\n",
		100*b.UsefulCompute, 100*b.LostCompute,
		100*b.CheckpointOK, 100*b.CheckpointFail,
		100*b.RestartOK, 100*b.RestartFail)
}
