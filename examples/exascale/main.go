// Exascale study: how far can multilevel checkpointing carry a
// 24-hour application as the system MTBF shrinks toward the 3-minute
// worst case and PFS checkpoints grow to 40 minutes? This is a compact
// version of the paper's Figure 4 sweep, and reproduces its two
// conclusions: MTBF hurts more than PFS cost, and below ~15-minute MTBF
// the machine spends most of its time not computing.
//
//	go run ./examples/exascale
package main

import (
	"fmt"
	"log"

	"repro/internal/model/dauwe"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

func main() {
	base, err := system.ByName("B") // the four-level BlueGene/Q Mira system
	if err != nil {
		log.Fatal(err)
	}
	tech := dauwe.New()
	seed := rng.Campaign(7, "exascale-example")

	fmt.Println("Efficiency of a 1440-minute application on system B (dauwe-optimized):")
	fmt.Printf("%10s", "MTBF\\PFS")
	pfsCosts := []float64{10, 40}
	for _, pfs := range pfsCosts {
		fmt.Printf("  %8.0fmin", pfs)
	}
	fmt.Println()

	for _, mtbf := range []float64{26, 15, 3} {
		fmt.Printf("%7.0fmin", mtbf)
		for _, pfs := range pfsCosts {
			sys := base.WithTopCost(pfs).WithMTBF(mtbf)
			plan, _, err := tech.Optimize(sys)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Campaign{
				Scenario: sim.Scenario{System: sys, Plan: plan, MaxWallFactor: 120},
				Trials:   60,
				Seed:     seed.Scenario(sys.Name),
			}.Run()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %7.1f%%   ", 100*res.Efficiency.Mean)
		}
		fmt.Println()
	}
	fmt.Println("\nReading the table: dropping MTBF 26→3 min is catastrophic at any PFS cost,")
	fmt.Println("while growing the PFS cost 10→40 min costs a far smaller slice — the paper's")
	fmt.Println("Section IV-E conclusion.")
}
