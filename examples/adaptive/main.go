// Online adaptation: what happens when the failure rates used to
// optimize checkpoint intervals are wrong? The paper's optimization (and
// all four baselines) is offline — intervals are fixed from a believed
// MTBF. This example miscalibrates the belief by 4× on Table I's D4
// system and compares three deployments over 120 trials each:
//
//   - static:   intervals optimized once for the (wrong) belief;
//
//   - adaptive: the online controller re-estimates per-severity rates
//     from observed failures and re-optimizes mid-run;
//
//   - oracle:   intervals optimized for the true rates (upper bound).
//
//     go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro/internal/adaptive"
	"repro/internal/model/dauwe"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

func main() {
	truth, err := system.ByName("D4") // MTBF 6 min
	if err != nil {
		log.Fatal(err)
	}
	belief := truth.WithMTBF(24) // operator thinks failures are 4× rarer

	staticCtl, err := adaptive.NewController(belief, adaptive.Options{})
	if err != nil {
		log.Fatal(err)
	}
	staticPlan, err := staticCtl.InitialPlan()
	if err != nil {
		log.Fatal(err)
	}
	oraclePlan, _, err := dauwe.New().Optimize(truth)
	if err != nil {
		log.Fatal(err)
	}

	seed := rng.Campaign(31, "adaptive-example")
	run := func(label string, scn sim.Scenario, ctl func() sim.PlanController) {
		scn.System = truth
		res, err := sim.Campaign{
			Scenario: scn, Trials: 120, Seed: seed.Scenario(label),
			ControllerFactory: ctl,
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s efficiency %.3f ± %.3f\n", label, res.Efficiency.Mean, res.Efficiency.Std)
	}

	fmt.Printf("true system:     %s\nbelieved system: MTBF %g min (4× too optimistic)\n\n",
		truth, belief.MTBF)
	fmt.Printf("static plan (for belief): %s\noracle plan (for truth):  %s\n\n",
		staticPlan, oraclePlan)
	run("static", sim.Scenario{Plan: staticPlan}, nil)
	run("adaptive", sim.Scenario{Plan: staticPlan}, func() sim.PlanController {
		c, err := adaptive.NewController(belief, adaptive.Options{ReplanEvery: 12})
		if err != nil {
			log.Fatal(err)
		}
		return c
	})
	run("oracle", sim.Scenario{Plan: oraclePlan}, nil)

	fmt.Println("\nThe controller watches failures arrive 4× faster than believed,")
	fmt.Println("re-estimates the per-severity rates, and re-optimizes the remaining run")
	fmt.Println("with the paper's model — closing most of the gap to the oracle.")
}
