// Energy study: the runtime/energy trade-off of multilevel
// checkpointing (the analysis of the paper's reference [19], whose
// BlueGene/Q system is Table I's row B). Checkpoint I/O draws less power
// than computation, so the energy-optimal checkpoint intervals differ
// from the time-optimal ones; this example quantifies the gap on system
// B and verifies both predictions against simulation.
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"repro/internal/energy"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

func main() {
	sys, err := system.ByName("B")
	if err != nil {
		log.Fatal(err)
	}
	m := energy.Model{
		Power: energy.Power{ComputeWatts: 350, IOWatts: 90},
		Nodes: 49152, // Mira's node count
	}
	tr, err := energy.Compare(sys, m)
	if err != nil {
		log.Fatal(err)
	}

	seed := rng.Campaign(13, "energy-example")
	simulate := func(label string, r energy.Result) {
		res, err := sim.Campaign{
			Scenario: sim.Scenario{System: sys, Plan: r.Plan},
			Trials:   120,
			Seed:     seed.Scenario(label),
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		simJ := m.OfSim(res.MeanBreakdown)
		fmt.Printf("%-14s %-40s\n", label, r.Plan.String())
		fmt.Printf("               predicted: %6.1f h, %7.2f MWh   simulated: %6.1f h, %7.2f MWh\n",
			r.Time.ExpectedTime/60, r.Joules/3.6e9,
			res.WallTime.Mean/60, simJ/3.6e9)
	}
	fmt.Printf("system %s, %d nodes, compute %gW / io %gW per node\n\n",
		sys.Name, m.Nodes, m.Power.ComputeWatts, m.Power.IOWatts)
	simulate("time-optimal", tr.TimeOptimal)
	simulate("energy-optimal", tr.EnergyOptimal)

	dt := tr.EnergyOptimal.Time.ExpectedTime - tr.TimeOptimal.Time.ExpectedTime
	dj := tr.TimeOptimal.Joules - tr.EnergyOptimal.Joules
	fmt.Printf("\nenergy-optimal intervals save %.2f MWh for %.1f extra minutes of runtime\n",
		dj/3.6e9, dt)
}
