// Trade-off ablation: the same failures, different protocol choices.
// Using the trace record/replay machinery, one fixed failure history is
// replayed against (a) the optimized multilevel plan, (b) a single-level
// PFS-only plan, and (c) the multilevel plan under Moody's pessimistic
// restart-escalation semantics — isolating exactly what each design
// choice costs when the randomness is held constant.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"repro/internal/model/dauwe"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"
)

func main() {
	sys, err := system.ByName("D4") // MTBF 6 min, two levels
	if err != nil {
		log.Fatal(err)
	}
	plan, _, err := dauwe.New().Optimize(sys)
	if err != nil {
		log.Fatal(err)
	}
	seed := rng.Campaign(3, "tradeoff-example")

	// Record one failure history while running the optimized plan.
	base := sim.Scenario{System: sys, Plan: plan}
	res, replays, err := trace.RecordFailures(base, seed.Trial(0).Rand())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded history: %d failures over %.0f simulated minutes\n\n",
		res.TotalFailures(), res.WallTime)
	fmt.Printf("%-42s efficiency %.4f (wall %8.1f min)\n",
		"multilevel plan "+plan.String(), res.Efficiency, res.WallTime)

	// Same failures, PFS-only checkpointing at the same interval.
	pfsOnly := base
	pfsOnly.Plan = pattern.Plan{Tau0: plan.Tau0 * 2, Levels: []int{sys.NumLevels()}}
	r2, err := trace.ReplayFailures(pfsOnly, replays, seed.Trial(1).Rand())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-42s efficiency %.4f (wall %8.1f min)\n",
		"PFS-only plan "+pfsOnly.Plan.String(), r2.Efficiency, r2.WallTime)

	// Same failures, multilevel plan, escalating restarts.
	esc := base
	esc.Policy = sim.EscalatePolicy
	r3, err := trace.ReplayFailures(esc, replays, seed.Trial(2).Rand())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-42s efficiency %.4f (wall %8.1f min)\n",
		"multilevel + restart escalation", r3.Efficiency, r3.WallTime)

	fmt.Println("\nWith the failure process held fixed, the multilevel pattern wins by")
	fmt.Println("recovering cheap failures from cheap checkpoints, and the escalation")
	fmt.Println("assumption visibly inflates recovery cost — the two effects the paper's")
	fmt.Println("model accounts for and Moody's overestimates.")
}
