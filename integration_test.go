package repro

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"

	_ "repro/internal/model/benoit"
	_ "repro/internal/model/daly"
	_ "repro/internal/model/dauwe"
	_ "repro/internal/model/di"
	_ "repro/internal/model/moody"
)

// TestCrossTechniqueInvariantsOnTableI runs every registered technique
// on every Table I system and checks the invariants the paper's whole
// comparison rests on. It is the repository's broad integration gate.
func TestCrossTechniqueInvariantsOnTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every optimizer on every system")
	}
	techniques := []string{"dauwe", "di", "moody", "benoit", "daly", "young"}
	seed := rng.Campaign(99, "integration")
	const trials = 25

	for _, sys := range system.TableI() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			results := map[string]float64{}
			for _, name := range techniques {
				tech, err := model.New(name)
				if err != nil {
					t.Fatal(err)
				}
				plan, pred, err := tech.Optimize(sys)
				if err != nil {
					t.Fatalf("%s: optimize: %v", name, err)
				}
				// Invariant: every optimizer emits a plan valid for the
				// system it was given.
				if err := plan.Validate(sys); err != nil {
					t.Fatalf("%s: invalid plan %v: %v", name, plan, err)
				}
				// Invariant: predictions are sane probabilities.
				if !(pred.Efficiency > 0 && pred.Efficiency <= 1) {
					t.Fatalf("%s: predicted efficiency %v", name, pred.Efficiency)
				}
				// Invariant: the plan actually executes.
				res, err := sim.Campaign{
					Scenario: sim.Scenario{System: sys, Plan: plan, MaxWallFactor: 50},
					Trials:   trials,
					Seed:     seed.Scenario(sys.Name + "/" + name),
				}.Run()
				if err != nil {
					t.Fatalf("%s: simulate: %v", name, err)
				}
				if !(res.Efficiency.Mean >= 0 && res.Efficiency.Mean <= 1) {
					t.Fatalf("%s: simulated efficiency %v", name, res.Efficiency.Mean)
				}
				results[name] = res.Efficiency.Mean
			}
			// Invariant: the paper's model never loses badly to the
			// other multilevel techniques on its own turf (the paper
			// claims within 1 %; noise at 25 trials warrants slack).
			best := math.Inf(-1)
			for _, name := range []string{"di", "moody", "benoit"} {
				if results[name] > best {
					best = results[name]
				}
			}
			if results["dauwe"] < best-0.08 {
				t.Errorf("dauwe %v far behind best multilevel %v", results["dauwe"], best)
			}
			// Invariant: on failure-heavy systems, multilevel beats
			// single-level (the reason multilevel checkpointing exists).
			if sys.MTBF <= 24 && results["dauwe"] <= results["daly"] {
				t.Errorf("dauwe %v did not beat daly %v on %s",
					results["dauwe"], results["daly"], sys.Name)
			}
		})
	}
}

// TestPredictionOrderingInvariant checks the signature finding of
// Figure 6 end to end: for a shared, moderately hard scenario, Di's
// prediction is the most optimistic, Moody's the most pessimistic, and
// Dauwe's sits between them.
func TestPredictionOrderingInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs optimizers")
	}
	sys, err := system.ByName("D7")
	if err != nil {
		t.Fatal(err)
	}
	preds := map[string]float64{}
	plans := map[string]string{}
	for _, name := range []string{"dauwe", "di", "moody"} {
		tech, err := model.New(name)
		if err != nil {
			t.Fatal(err)
		}
		plan, pred, err := tech.Optimize(sys)
		if err != nil {
			t.Fatal(err)
		}
		preds[name] = pred.Efficiency
		plans[name] = plan.String()
	}
	if !(preds["di"] > preds["dauwe"] && preds["dauwe"] > preds["moody"]) {
		t.Fatalf("prediction ordering broken: di=%v dauwe=%v moody=%v (plans %v)",
			preds["di"], preds["dauwe"], preds["moody"], plans)
	}
}
