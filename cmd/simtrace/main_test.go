package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestExplicitPlan(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "D4", "-tau0", "1.5", "-counts", "3", "-print", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"τ0=1.5min", "wall=", "breakdown:", "more events"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestOptimizedPlanAndJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	err := run([]string{"-system", "D2", "-out", path, "-print", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := trace.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) == 0 {
		t.Fatal("trace file has no records")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	args := []string{"-system", "D4", "-tau0", "2", "-counts", "2", "-seed", "9", "-print", "0"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different traces")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-system", "nope"},
		{"-system", "D4", "-tau0", "1", "-counts", "1,2"}, // too many counts
		{"-system", "D4", "-tau0", "1", "-levels", "abc"}, // parse error
		{"-system", "D4", "-tau0", "1", "-counts", "x"},   // parse error
		{"-system", "D4", "-tau0", "-3"},                  // handled: negative => optimizer? no: tau0<0 falls to optimizer... see below
	}
	for _, args := range cases[:4] {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// Negative tau0 is treated as "not set" and falls back to the
	// optimizer, which must succeed.
	if err := run(cases[4], &bytes.Buffer{}); err != nil {
		t.Errorf("negative tau0 fallback failed: %v", err)
	}
}

func TestSummaryTable(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "D4", "-tau0", "1.3", "-counts", "3", "-summary"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"phase breakdown over 1 trial(s)", "compute/useful", "total", "failures by severity"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "events:") {
		t.Errorf("-summary still printed the raw event listing:\n%s", s)
	}
}

func TestCheckFlag(t *testing.T) {
	var unchecked, checked bytes.Buffer
	base := []string{"-system", "D4", "-tau0", "1.5", "-counts", "3", "-seed", "4", "-print", "3"}
	if err := run(base, &unchecked); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-check"}, base...), &checked); err != nil {
		t.Fatal(err)
	}
	s := checked.String()
	if !strings.Contains(s, "all invariants held") {
		t.Errorf("conformance report missing:\n%s", s)
	}
	// Everything but the conformance line is byte-identical: the checker
	// observes without perturbing the trial.
	var stripped strings.Builder
	for _, line := range strings.SplitAfter(s, "\n") {
		if !strings.HasPrefix(line, "conformance:") {
			stripped.WriteString(line)
		}
	}
	if stripped.String() != unchecked.String() {
		t.Errorf("-check changed the trial:\n--- unchecked:\n%s--- checked (report stripped):\n%s",
			unchecked.String(), stripped.String())
	}
}
