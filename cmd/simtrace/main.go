// Command simtrace runs a single simulated trial with full event tracing
// and writes the trace as JSON (or a human-readable summary). It is the
// debugging companion to the campaign-scale repro tool, and doubles as
// the reader for flight-recorder dumps produced by mlckpt -flight.
//
// Usage:
//
//	simtrace -system D4 -tau0 1.2 -counts 3 [-levels 1,2] [-out out.json]
//	simtrace -system D4 -summary        # phase-time breakdown table
//	simtrace -flight dump.json          # inspect a flight-recorder dump
//	simtrace -flight dump.json -json    # ... machine-readable
//	simtrace -progress ckpt-dir/        # aggregate progress sidecars
//	simtrace -progress shard.progress   # ... or inspect a single one
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/conformance"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/sidecar"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"

	_ "repro/internal/model/dauwe"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("simtrace", flag.ContinueOnError)
	sysName := fs.String("system", "D4", "Table I system name")
	tau0 := fs.Float64("tau0", 0, "computation interval (0 = use the dauwe optimizer)")
	counts := fs.String("counts", "", "pattern counts N_1..N_{ℓ-1}, comma-separated")
	levels := fs.String("levels", "", "used levels, comma-separated (default all)")
	seed := fs.Uint64("seed", 1, "trial seed")
	outPath := fs.String("out", "", "write the full event trace as JSON to this path")
	jsonOut := fs.Bool("json", false, "write machine-readable JSON to stdout instead of the human-readable rendering")
	maxEvents := fs.Int("print", 25, "print at most this many events to stdout")
	summary := fs.Bool("summary", false, "print the per-trial phase-time breakdown table instead of the raw event stream")
	check := fs.Bool("check", false, "verify the trial's event stream against the protocol invariants (fails on any violation)")
	flightFile := fs.String("flight", "", "read a flight-recorder dump (mlckpt -flight) instead of simulating")
	progress := fs.String("progress", "", "read progress sidecars (a .progress file or a directory of them) instead of simulating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flightFile != "" {
		return readFlight(*flightFile, *jsonOut, *maxEvents, stdout)
	}
	if *progress != "" {
		return readProgress(*progress, *jsonOut, stdout)
	}

	sys, err := system.ByName(*sysName)
	if err != nil {
		return err
	}
	var plan pattern.Plan
	if *tau0 > 0 {
		plan = pattern.Plan{Tau0: *tau0}
		if *levels != "" {
			plan.Levels, err = parseInts(*levels)
			if err != nil {
				return fmt.Errorf("-levels: %w", err)
			}
		} else {
			plan.Levels = pattern.AllLevels(sys)
		}
		if *counts != "" {
			plan.Counts, err = parseInts(*counts)
			if err != nil {
				return fmt.Errorf("-counts: %w", err)
			}
		} else {
			plan.Counts = make([]int, len(plan.Levels)-1)
		}
	} else {
		tech, err := model.New("dauwe")
		if err != nil {
			return err
		}
		plan, _, err = tech.Optimize(sys)
		if err != nil {
			return err
		}
	}
	if err := plan.Validate(sys); err != nil {
		return err
	}

	rec := &trace.Recorder{}
	metrics := obs.NewSimMetrics()
	scn := sim.Scenario{System: sys, Plan: plan}
	eng, err := sim.NewEngine(scn)
	if err != nil {
		return err
	}
	observers := []sim.Observer{rec, metrics}
	var checker *conformance.Checker
	if *check {
		checker, err = conformance.NewChecker(scn)
		if err != nil {
			return err
		}
		observers = append(observers, checker)
	}
	eng.Observe(obs.Multi(observers...))
	res, err := eng.Run(rng.Campaign(*seed, "simtrace").Trial(0))
	if err != nil {
		return err
	}
	if checker != nil {
		if err := checker.Err(); err != nil {
			return fmt.Errorf("conformance: %w", err)
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "conformance: %d events checked, all invariants held\n", checker.EventsChecked())
		}
	}

	if *jsonOut {
		// Machine-readable mode: the event trace is the only stdout
		// output, so the command composes with jq and friends.
		if err := rec.Write(stdout); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stdout, "system: %s\nplan:   %s\n", sys, plan)
		fmt.Fprintf(stdout, "wall=%.2fmin completed=%v efficiency=%.4f failures=%v scratch=%d\n",
			res.WallTime, res.Completed, res.Efficiency, res.Failures, res.ScratchRestarts)
		b := res.Breakdown
		fmt.Fprintf(stdout, "breakdown: useful=%.2f lost=%.2f ckptOK=%.2f ckptFail=%.2f restartOK=%.2f restartFail=%.2f\n",
			b.UsefulCompute, b.LostCompute, b.CheckpointOK, b.CheckpointFail, b.RestartOK, b.RestartFail)
		if *summary {
			if err := metrics.WriteSummary(stdout); err != nil {
				return err
			}
		} else {
			counts2 := rec.Counts()
			fmt.Fprintf(stdout, "events: %d total (%d failures, %d phase ends)\n",
				len(rec.Records), counts2["failure"], counts2["phase_end"])
			for i, r := range rec.Records {
				if i >= *maxEvents {
					fmt.Fprintf(stdout, "... %d more events\n", len(rec.Records)-i)
					break
				}
				fmt.Fprintf(stdout, "  t=%9.3f %-12s %-10s level=%d progress=%.2f\n",
					r.Time, r.Kind, r.Phase, r.Level, r.Progress)
			}
		}
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.Write(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "trace written to %s\n", *outPath)
		}
	}
	return nil
}

// readProgress renders progress sidecars — a whole directory of them as
// an aggregated fleet view, or one .progress file as a fleet of one. In
// JSON mode the sidecar.Fleet aggregate is emitted for downstream
// tooling (same payload as mlckpt's /shards endpoint).
func readProgress(path string, jsonOut bool, stdout io.Writer) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	var files []*sidecar.File
	if st.IsDir() {
		files, err = sidecar.Scan(path)
		if err != nil {
			return err
		}
	} else {
		f, err := sidecar.Read(path)
		if err != nil {
			return err
		}
		files = []*sidecar.File{f}
	}
	fl := sidecar.BuildFleet(files, time.Now(), 0)
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", " ")
		return enc.Encode(fl)
	}
	return fl.WriteText(stdout)
}

// readFlight renders a flight-recorder dump: one header line per stream,
// with up to maxEvents events for held (anomalous) streams. In JSON mode
// the parsed streams are re-emitted verbatim for downstream tooling.
func readFlight(path string, jsonOut bool, maxEvents int, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	streams, runID, err := trace.ReadFlightRun(f)
	if err != nil {
		return err
	}
	if jsonOut {
		return trace.WriteFlightWithRun(stdout, runID, streams)
	}
	held := 0
	for _, s := range streams {
		if s.Held {
			held++
		}
	}
	if runID != "" {
		fmt.Fprintf(stdout, "run: %s\n", runID)
	}
	fmt.Fprintf(stdout, "flight dump: %d streams (%d held)\n", len(streams), held)
	for _, s := range streams {
		label := ""
		if s.Label != "" {
			label = " label=" + s.Label
		}
		status := "recent"
		if s.Held {
			status = "HELD: " + s.Reason
		}
		fmt.Fprintf(stdout, "trial %d worker %d%s — %d events — %s\n",
			s.Trial, s.Worker, label, len(s.Records), status)
		if !s.Held {
			continue
		}
		for i, r := range s.Records {
			if i >= maxEvents {
				fmt.Fprintf(stdout, "  ... %d more events\n", len(s.Records)-i)
				break
			}
			fmt.Fprintf(stdout, "  t=%9.3f %-12s %-10s level=%d progress=%.2f\n",
				r.Time, r.Kind, r.Phase, r.Level, r.Progress)
		}
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
