package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func writeFlightFixture(t *testing.T) string {
	t.Helper()
	streams := []trace.FlightStream{
		{Trial: 3, Worker: 1, Held: true, Reason: "conformance violation", Label: "dauwe",
			Records: []trace.Record{
				{Time: 1.5, Kind: "failure", Phase: "compute", Level: 2, Progress: 0.4},
				{Time: 2.0, Kind: "trial_capped", Phase: "compute", Level: 0, Progress: 0.4},
			}},
		{Trial: 5, Worker: 0, Label: "dauwe",
			Records: []trace.Record{
				{Time: 9.9, Kind: "trial_complete", Phase: "compute", Level: 0, Progress: 1},
			}},
	}
	path := filepath.Join(t.TempDir(), "flight.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteFlight(f, streams); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlightReader(t *testing.T) {
	path := writeFlightFixture(t)
	var out bytes.Buffer
	if err := run([]string{"-flight", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"flight dump: 2 streams (1 held)",
		"HELD: conformance violation",
		"label=dauwe",
		"t=    1.500 failure",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("flight rendering missing %q:\n%s", want, s)
		}
	}
}

func TestFlightReaderJSON(t *testing.T) {
	path := writeFlightFixture(t)
	var out bytes.Buffer
	if err := run([]string{"-flight", path, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	streams, err := trace.ReadFlight(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 2 || !streams[0].Held || streams[0].Trial != 3 {
		t.Fatalf("round trip mangled streams: %+v", streams)
	}
}

func TestFlightReaderErrors(t *testing.T) {
	if err := run([]string{"-flight", filepath.Join(t.TempDir(), "missing.json")}, &bytes.Buffer{}); err == nil {
		t.Error("missing dump accepted")
	}
	// A single-trial trace file is not a flight dump.
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-system", "D4", "-tau0", "1.5", "-counts", "3", "-out", tracePath}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-flight", tracePath}, &bytes.Buffer{}); err == nil {
		t.Error("mlckpt-trace file accepted as a flight dump")
	}
}

func TestJSONStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-system", "D4", "-tau0", "1.5", "-counts", "3", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	// Machine-readable mode emits nothing but the trace document.
	if strings.Contains(out.String(), "system:") {
		t.Errorf("-json mixed human output into stdout:\n%s", out.String())
	}
	rec, err := trace.Read(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) == 0 {
		t.Fatal("no records in -json output")
	}
}
