// Command repro regenerates the paper's tables and figures. Each
// experiment optimizes checkpoint intervals with every technique under
// comparison, simulates the optimized plans over randomized trials, and
// writes the paper's rows as an aligned text table plus optional CSV and
// SVG artifacts.
//
// Usage:
//
//	repro [flags] table1|fig1|fig2|fig3|fig4|fig5|fig6|sensitivity|
//	              ablation-policy|ablation-weibull|ablation-async|all
//
// Flags:
//
//	-trials N    override the per-scenario trial count (default: paper's)
//	-seed N      campaign base seed (default 1)
//	-outdir DIR  write <experiment>.txt/.csv/.svg under DIR ("" = stdout only)
//	             (-out DIR is a deprecated alias; -out means a file path
//	             in the other commands)
//	-json        machine-readable JSON results on stdout instead of tables
//	-quiet       suppress per-scenario progress lines
//	-wall F      per-trial wall-time cap as a multiple of T_B (default 150)
//	-fast        low-resolution optimizer grids for smoke runs
//	-crn         common random numbers across each row's techniques
//	-ci-target W with -crn, sequential stopping at paired CI half-width W
//	-stream      constant-memory simulation aggregation (quantile sketches)
//	-checkpoint DIR / -resume   periodic campaign checkpoints + resume
//	-metrics F   write an aggregate telemetry snapshot (JSON) to file F
//	-progress    report trials/sec and ETA on stderr while running
//	-cpuprofile F / -memprofile F   write runtime/pprof profiles
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/obs/sidecar"
	"repro/internal/report"
	"repro/internal/system"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	trials := fs.Int("trials", 0, "per-scenario trial count (0 = paper default)")
	seed := fs.Uint64("seed", 1, "campaign base seed")
	outDirFlag := fs.String("outdir", "", "directory for .txt/.csv/.svg artifacts")
	outDirOld := fs.String("out", "", "deprecated alias for -outdir (kept one release; -out names a file path everywhere else)")
	jsonOut := fs.Bool("json", false, "write each target's result as machine-readable JSON to stdout instead of text tables")
	quiet := fs.Bool("quiet", false, "suppress progress lines")
	wall := fs.Float64("wall", 0, "trial wall cap as multiple of T_B (0 = default 150)")
	fast := fs.Bool("fast", false, "low-resolution optimizer grids (smoke runs)")
	crn := fs.Bool("crn", false, "run each row's techniques under common random numbers (paired significance)")
	ciTarget := fs.Float64("ci-target", 0, "with -crn, stop each row once every paired 95% CI half-width is below this (0 = fixed trial count)")
	metricsPath := fs.String("metrics", "", "write an aggregate telemetry snapshot (JSON) to this file")
	progress := fs.Bool("progress", false, "report trials/sec and ETA on stderr")
	progressInterval := fs.Duration("progress-interval", 0, "minimum time between -progress lines (0 = default 500ms, negative = every tick)")
	listen := fs.String("listen", "", "serve live telemetry over HTTP on this address (/metrics, /snapshot, /spans, /debug/pprof/)")
	traceSummary := fs.Bool("trace-summary", false, "print the hierarchical span time breakdown after the run")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	streamSim := fs.Bool("stream", false, "aggregate simulations in constant memory (sketch-backed summaries instead of per-trial slices)")
	ckptDir := fs.String("checkpoint", "", "checkpoint each cell's campaign into this directory (resume with -resume); ignored under -crn")
	ckptInterval := fs.Int("checkpoint-interval", 0, "trials between checkpoint writes (0 = trials/8, at least 1)")
	resume := fs.Bool("resume", false, "with -checkpoint, resume each cell's campaign from its checkpoint when present")
	logJSON := fs.Bool("log-json", false, "emit structured JSON event logs (campaign start/checkpoint/resume/end) on stderr, correlated by run ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: repro [flags] table1|fig1|fig2|fig3|fig4|fig5|fig6|sensitivity|ablation-policy|ablation-weibull|ablation-async|all")
	}
	if *ciTarget > 0 && !*crn {
		return fmt.Errorf("-ci-target needs -crn (sequential stopping is defined on paired CIs)")
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	outDir := *outDirFlag
	if *outDirOld != "" {
		fmt.Fprintln(os.Stderr, "repro: -out is deprecated, use -outdir (repro and mlckpt now follow simtrace's convention: -out is a file path, -outdir a directory)")
		if outDir == "" {
			outDir = *outDirOld
		}
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
	}
	opt := experiments.Options{
		Trials:             *trials,
		Seed:               *seed,
		MaxWallFactor:      *wall,
		Fast:               *fast,
		CRN:                *crn,
		CITarget:           *ciTarget,
		Stream:             *streamSim,
		CheckpointDir:      *ckptDir,
		CheckpointInterval: *ckptInterval,
		Resume:             *resume,
	}
	if !*quiet {
		opt.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	which := fs.Arg(0)
	if *logJSON {
		// One run ID for the whole invocation; each campaign's events
		// carry their cell's system name as the label.
		runID := sidecar.ConfigDigest("repro", which,
			strconv.FormatUint(*seed, 10), strconv.Itoa(*trials))
		opt.Events = obs.NewEventLog(os.Stderr, runID)
	}
	targets := []string{which}
	if which == "all" {
		targets = []string{"table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6"}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	var sink *obs.SimMetrics
	if *metricsPath != "" || *listen != "" {
		sink = obs.NewSimMetrics()
		opt.Metrics = sink
	}
	if *traceSummary || *listen != "" || *metricsPath != "" {
		opt.Spans = obs.NewTracer()
	}
	if *progress {
		prog := obs.NewProgress(os.Stderr, "repro", trialBudget(targets, opt))
		if *progressInterval != 0 {
			prog.SetInterval(*progressInterval)
		}
		opt.TrialDone = prog.Tick
		defer prog.Finish()
	}
	var live *obshttp.Live
	if *listen != "" {
		live = obshttp.NewLive()
		opt.TrialStats = live.Stats
		srv, err := obshttp.Serve(*listen, live.Options())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "repro: telemetry on http://%s/metrics (also /snapshot, /spans, /debug/pprof/)\n", srv.Addr())
	} else if *metricsPath != "" {
		opt.TrialStats = obs.NewStreamSet()
	}
	// fig6 is derived from fig4's grid; when both run, share the run.
	var sharedFig4 *experiments.Fig4Result
	for _, target := range targets {
		start := time.Now()
		if err := runOne(target, opt, outDir, *jsonOut, stdout, &sharedFig4); err != nil {
			return fmt.Errorf("%s: %w", target, err)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s done in %v\n", target, time.Since(start).Round(time.Millisecond))
		}
		if live != nil {
			// Checkpoint telemetry at the target boundary: worker shards
			// are merged, so the endpoints now cover this target too.
			if sink != nil {
				live.PublishSnapshot(sink.Snapshot())
			}
			live.PublishSpans(opt.Spans.Snapshot())
		}
	}
	if *traceSummary {
		fmt.Fprintln(stdout)
		if err := obs.WriteSpanSummary(stdout, opt.Spans.Snapshot()); err != nil {
			return err
		}
	}
	if *metricsPath != "" {
		snap := sink.Snapshot()
		if opt.Spans != nil {
			snap.Spans = opt.Spans.Snapshot()
		}
		if opt.TrialStats != nil {
			snap.Stats = opt.TrialStats.Snapshots()
		}
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		if err := snap.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// trialBudget estimates the total simulated trials the chosen targets
// will run, for the progress reporter's ETA. Targets whose trial counts
// are not statically known contribute 0 (the reporter then shows rate
// without an ETA when everything is unknown).
func trialBudget(targets []string, opt experiments.Options) int64 {
	nsys := int64(len(system.TableI()))
	trials := func(def int) int64 {
		if opt.Trials > 0 {
			return int64(opt.Trials)
		}
		return int64(def)
	}
	var total int64
	seenFig4 := false
	for _, t := range targets {
		switch t {
		case "fig2":
			total += nsys * int64(len(experiments.Fig2Techniques)) * trials(200)
		case "fig3":
			total += nsys * int64(len(experiments.BestTechniques)) * trials(200)
		case "fig4":
			total += int64(len(experiments.Fig4MTBFs)*len(experiments.Fig4PFSCosts)*len(experiments.BestTechniques)) * trials(200)
			seenFig4 = true
		case "fig5":
			total += int64(len(experiments.Fig4MTBFs)*2*len(experiments.BestTechniques)) * trials(400)
		case "fig6":
			if !seenFig4 { // otherwise fig6 reuses fig4's run
				total += int64(len(experiments.Fig4MTBFs)*len(experiments.Fig4PFSCosts)*len(experiments.BestTechniques)) * trials(200)
			}
		}
	}
	return total
}

// artifact opens DIR/name for writing (or returns nil when no out dir).
func artifact(outDir, name string) (*os.File, error) {
	if outDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(outDir, name))
}

// emit writes an artifact via render when an output directory is set.
func emit(outDir, name string, render func(io.Writer) error) error {
	f, err := artifact(outDir, name)
	if err != nil || f == nil {
		return err
	}
	defer f.Close()
	if err := render(f); err != nil {
		return err
	}
	return f.Close()
}

// show writes a target's result to stdout: the JSON document when
// jsonOut is set, the text rendering otherwise. Artifact emission via
// -outdir is unaffected by the choice.
func show(stdout io.Writer, jsonOut bool, v any, render func(io.Writer) error) error {
	if jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	return render(stdout)
}

func runOne(target string, opt experiments.Options, outDir string, jsonOut bool, stdout io.Writer, sharedFig4 **experiments.Fig4Result) error {
	switch target {
	case "table1":
		if err := show(stdout, jsonOut, system.TableI(), report.TableI); err != nil {
			return err
		}
		if err := emit(outDir, "table1.txt", report.TableI); err != nil {
			return err
		}
		return emit(outDir, "table1.svg", report.TableISVG)

	case "fig1":
		note := "Figure 1 is the pattern illustration; written as fig1.svg (use -outdir)."
		if err := show(stdout, jsonOut, map[string]string{"note": note}, func(w io.Writer) error {
			_, err := fmt.Fprintln(w, note)
			return err
		}); err != nil {
			return err
		}
		return emit(outDir, "fig1.svg", report.Fig1SVG)

	case "fig2":
		r, err := experiments.Fig2(opt)
		if err != nil {
			return err
		}
		if err := show(stdout, jsonOut, r, func(w io.Writer) error { return report.Fig2(w, r) }); err != nil {
			return err
		}
		if err := emit(outDir, "fig2.txt", func(w io.Writer) error { return report.Fig2(w, r) }); err != nil {
			return err
		}
		if err := emit(outDir, "fig2.csv", func(w io.Writer) error {
			return report.CellsCSV(w, r.Systems, r.Techniques, r.Cells)
		}); err != nil {
			return err
		}
		return emit(outDir, "fig2.svg", func(w io.Writer) error { return report.Fig2SVG(w, r) })

	case "fig3":
		r, err := experiments.Fig3(opt)
		if err != nil {
			return err
		}
		if err := show(stdout, jsonOut, r, func(w io.Writer) error { return report.Fig3(w, r) }); err != nil {
			return err
		}
		if err := emit(outDir, "fig3.txt", func(w io.Writer) error { return report.Fig3(w, r) }); err != nil {
			return err
		}
		return emit(outDir, "fig3.svg", func(w io.Writer) error { return report.Fig3SVG(w, r) })

	case "fig4":
		r, err := experiments.Fig4(opt)
		if err != nil {
			return err
		}
		*sharedFig4 = r
		title := "Figure 4 — 1440-minute application on the exascale grid"
		if err := show(stdout, jsonOut, r, func(w io.Writer) error { return report.Fig4(w, r, title) }); err != nil {
			return err
		}
		if err := emit(outDir, "fig4.txt", func(w io.Writer) error { return report.Fig4(w, r, title) }); err != nil {
			return err
		}
		if err := emit(outDir, "fig4.csv", func(w io.Writer) error {
			return report.CellsCSV(w, scenarioLabels(r), r.Techniques, r.Cells)
		}); err != nil {
			return err
		}
		return emit(outDir, "fig4.svg", func(w io.Writer) error { return report.Fig4SVG(w, r, title) })

	case "fig5":
		r, err := experiments.Fig5(opt)
		if err != nil {
			return err
		}
		if err := show(stdout, jsonOut, r, func(w io.Writer) error { return report.Fig5(w, r) }); err != nil {
			return err
		}
		if err := emit(outDir, "fig5.txt", func(w io.Writer) error { return report.Fig5(w, r) }); err != nil {
			return err
		}
		return emit(outDir, "fig5.svg", func(w io.Writer) error { return report.Fig5SVG(w, r) })

	case "fig6":
		var r *experiments.Fig6Result
		var err error
		if *sharedFig4 != nil {
			r, err = experiments.Fig6FromFig4(*sharedFig4)
		} else {
			r, err = experiments.Fig6(opt)
		}
		if err != nil {
			return err
		}
		if err := show(stdout, jsonOut, r, func(w io.Writer) error { return report.Fig6(w, r) }); err != nil {
			return err
		}
		if err := emit(outDir, "fig6.txt", func(w io.Writer) error { return report.Fig6(w, r) }); err != nil {
			return err
		}
		return emit(outDir, "fig6.svg", func(w io.Writer) error { return report.Fig6SVG(w, r) })

	case "sensitivity":
		r, err := experiments.Sensitivity(opt, "D4", nil)
		if err != nil {
			return err
		}
		if err := show(stdout, jsonOut, r, func(w io.Writer) error { return report.Sensitivity(w, r) }); err != nil {
			return err
		}
		if err := emit(outDir, "sensitivity.txt", func(w io.Writer) error { return report.Sensitivity(w, r) }); err != nil {
			return err
		}
		return emit(outDir, "sensitivity.svg", func(w io.Writer) error { return report.SensitivitySVG(w, r) })

	case "ablation-policy":
		r, err := experiments.PolicyAblation(opt, nil)
		if err != nil {
			return err
		}
		if err := show(stdout, jsonOut, r, func(w io.Writer) error { return report.Ablation(w, r) }); err != nil {
			return err
		}
		return emit(outDir, "ablation-policy.txt", func(w io.Writer) error { return report.Ablation(w, r) })

	case "ablation-async":
		r, err := experiments.AsyncAblation(opt, nil)
		if err != nil {
			return err
		}
		if err := show(stdout, jsonOut, r, func(w io.Writer) error { return report.Ablation(w, r) }); err != nil {
			return err
		}
		return emit(outDir, "ablation-async.txt", func(w io.Writer) error { return report.Ablation(w, r) })

	case "ablation-weibull":
		r, err := experiments.WeibullAblation(opt, 0.7, nil)
		if err != nil {
			return err
		}
		if err := show(stdout, jsonOut, r, func(w io.Writer) error { return report.Ablation(w, r) }); err != nil {
			return err
		}
		return emit(outDir, "ablation-weibull.txt", func(w io.Writer) error { return report.Ablation(w, r) })

	default:
		return fmt.Errorf("unknown experiment %q", target)
	}
}

func scenarioLabels(r *experiments.Fig4Result) []string {
	out := make([]string, len(r.Scenarios))
	for i, sc := range r.Scenarios {
		out[i] = sc.Label()
	}
	return out
}
