package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestJSONTargets: -json emits a decodable JSON document per target
// instead of the text tables.
func TestJSONTargets(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quiet", "-json", "-fast", "-trials", "10", "fig3"}, &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Systems    []string
		Techniques []string
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("fig3 -json not decodable: %v\n%s", err, out.String())
	}
	if len(doc.Systems) == 0 || len(doc.Techniques) == 0 {
		t.Errorf("fig3 -json missing systems/techniques: %+v", doc)
	}

	out.Reset()
	if err := run([]string{"-quiet", "-json", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out.Bytes()) || strings.Contains(out.String(), "─") {
		t.Errorf("table1 -json is not a clean JSON document:\n%s", out.String())
	}
}

// TestOutDirAliasDeprecation: -out still works as a directory alias but
// -outdir is the documented spelling; both land the same artifacts.
func TestOutDirAliasDeprecation(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	if err := run([]string{"-quiet", "-out", oldDir, "table1"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quiet", "-outdir", newDir, "table1"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{oldDir, newDir} {
		if _, err := filepath.Glob(filepath.Join(dir, "table1.txt")); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"table1.txt", "table1.svg"} {
			if m, _ := filepath.Glob(filepath.Join(dir, name)); len(m) != 1 {
				t.Errorf("%s missing under %s", name, dir)
			}
		}
	}
}

// TestStreamCheckpointResumeFlags: -stream and -checkpoint/-resume
// thread through experiments.Options; the resumed run reproduces the
// checkpointed run byte for byte on the JSON path.
func TestStreamCheckpointResumeFlags(t *testing.T) {
	dir := t.TempDir()
	args := func(extra ...string) []string {
		return append(append([]string{"-quiet", "-json", "-fast", "-trials", "10", "-stream"}, extra...), "sensitivity")
	}
	var first, resumed bytes.Buffer
	if err := run(args("-checkpoint", dir), &first); err != nil {
		t.Fatal(err)
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "*.ckpt")); len(m) == 0 {
		t.Fatal("no checkpoint files written")
	}
	if err := run(args("-checkpoint", dir, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	if first.String() != resumed.String() {
		t.Error("resumed run differs from checkpointed run")
	}
	if strings.Contains(first.String(), "\"Efficiencies\"") {
		t.Error("-stream output still carries per-trial Efficiencies")
	}
	if err := run(args("-resume"), &bytes.Buffer{}); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
}
