package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestTable1ToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-quiet", "table1"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"M", "D9", "6944.45"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("missing %q in output", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-quiet", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-quiet"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing experiment accepted")
	}
	if err := run([]string{"-bogus-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-quiet", "-ci-target", "0.01", "fig5"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-ci-target without -crn accepted")
	}
}

func TestFig5CRN(t *testing.T) {
	if testing.Short() {
		t.Skip("runs optimizers and simulations")
	}
	var out bytes.Buffer
	if err := run([]string{"-quiet", "-fast", "-trials", "6", "-crn", "fig5"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"common random numbers", "CI shrink", "corr"} {
		if !strings.Contains(s, want) {
			t.Errorf("CRN fig5 output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "Welch one-sided") {
		t.Error("CRN fig5 still rendered the unpaired Welch table")
	}
}

func TestFig5SmallWithArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs optimizers and simulations")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-quiet", "-fast", "-trials", "6", "-wall", "25", "-out", dir, "fig5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Welch") {
		t.Errorf("fig5 output missing Welch table:\n%s", out.String())
	}
	for _, name := range []string{"fig5.txt", "fig5.svg"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("artifact %s: %v", name, err)
			continue
		}
		if len(b) == 0 {
			t.Errorf("artifact %s empty", name)
		}
	}
	if !strings.HasPrefix(readFile(t, filepath.Join(dir, "fig5.svg")), "<svg") {
		t.Error("fig5.svg is not SVG")
	}
}

func TestTable1Artifacts(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quiet", "-out", dir, "table1"}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(readFile(t, filepath.Join(dir, "table1.txt")), "BlueGene") {
		t.Error("table1.txt missing content")
	}
	if !strings.HasPrefix(readFile(t, filepath.Join(dir, "table1.svg")), "<svg") {
		t.Error("table1.svg is not SVG")
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestAllTargetsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment at tiny scale")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-quiet", "-fast", "-trials", "2", "-wall", "10", "-out", dir, "all"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"table1.txt", "table1.svg", "fig1.svg",
		"fig2.txt", "fig2.csv", "fig2.svg",
		"fig3.txt", "fig3.svg",
		"fig4.txt", "fig4.csv", "fig4.svg",
		"fig5.txt", "fig5.svg",
		"fig6.txt", "fig6.svg",
	} {
		if st, err := os.Stat(filepath.Join(dir, name)); err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty (%v)", name, err)
		}
	}
}

func TestAblationAndSensitivityTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	dir := t.TempDir()
	for _, target := range []string{"ablation-policy", "ablation-async", "ablation-weibull", "sensitivity"} {
		var out bytes.Buffer
		err := run([]string{"-quiet", "-fast", "-trials", "2", "-wall", "10", "-out", dir, target}, &out)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s produced no stdout", target)
		}
	}
}

func TestMetricsSnapshotArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("runs optimizers and simulations")
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	err := run([]string{"-quiet", "-fast", "-trials", "4", "-wall", "25", "-metrics", path, "sensitivity"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	trials := snap.Counter("sim_trials_total")
	if trials == 0 {
		t.Fatal("snapshot records no trials")
	}
	if got := snap.Counter("sim_trials_completed") + snap.Counter("sim_trials_capped"); got != trials {
		t.Errorf("completed+capped = %d, want %d", got, trials)
	}
	var wall *obs.HistogramSnapshot
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "sim_trial_wall_minutes" {
			wall = &snap.Histograms[i]
		}
	}
	if wall == nil {
		t.Fatal("snapshot has no wall-time histogram")
	}
	if wall.Count != trials {
		t.Errorf("wall histogram count = %d, want %d", wall.Count, trials)
	}
}
