package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestTraceSummaryAndStreamStats(t *testing.T) {
	if testing.Short() {
		t.Skip("runs optimizers and simulations")
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	err := run([]string{"-quiet", "-fast", "-trials", "4", "-wall", "25",
		"-trace-summary", "-metrics", path, "sensitivity"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// Sensitivity drives campaigns directly (no per-cell optimize), so
	// the tree is campaign → {setup, run → trial, merge}.
	for _, want := range []string{"campaign", "setup", "run", "trial", "merge"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace summary missing %q:\n%s", want, s)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Spans) == 0 {
		t.Error("snapshot has no spans")
	}
	var effCount uint64
	for _, st := range snap.Stats {
		if st.Name == "trial_efficiency" {
			effCount = uint64(st.Count)
		}
	}
	// Every simulated trial streams through the live estimator.
	if trials := snap.Counter("sim_trials_total"); effCount != trials {
		t.Errorf("trial_efficiency count = %d, want %d (every trial streams)", effCount, trials)
	}
}

func TestListenFlagSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs optimizers and simulations")
	}
	var out bytes.Buffer
	err := run([]string{"-quiet", "-fast", "-trials", "4", "-wall", "25",
		"-listen", "127.0.0.1:0", "table1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
}
