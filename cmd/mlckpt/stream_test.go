package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jsonRun executes run with -json and decodes the stdout document.
func jsonRun(t *testing.T, args ...string) (runResults, string) {
	t.Helper()
	var out bytes.Buffer
	if err := run(append(args, "-json"), &out); err != nil {
		t.Fatal(err)
	}
	var r runResults
	if err := json.Unmarshal(out.Bytes(), &r); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, out.String())
	}
	return r, out.String()
}

// TestJSONOutput: -json replaces the human rendering with one JSON
// document; -out writes the identical document to a file.
func TestJSONOutput(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "results.json")
	r, raw := jsonRun(t, "-system", "D4", "-techniques", "daly,dauwe", "-trials", "20", "-out", outFile)
	if strings.Contains(raw, "predicted eff") {
		t.Errorf("-json output still contains the table header:\n%s", raw)
	}
	if r.System != "D4" || len(r.Results) != 2 {
		t.Fatalf("unexpected document: %+v", r)
	}
	for _, tr := range r.Results {
		if tr.Sim == nil || tr.Sim.Trials != 20 {
			t.Errorf("%s: missing or short sim results: %+v", tr.Technique, tr.Sim)
		}
		if tr.Predicted <= 0 || tr.Predicted > 1 {
			t.Errorf("%s: predicted efficiency %v out of range", tr.Technique, tr.Predicted)
		}
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != raw {
		t.Error("-out file differs from -json stdout")
	}
}

// TestStreamFlagDropsPerTrialSlice: -stream runs the campaign through
// the streaming sink — summaries and sketches, no Efficiencies slice.
func TestStreamFlagDropsPerTrialSlice(t *testing.T) {
	r, _ := jsonRun(t, "-system", "D4", "-techniques", "daly", "-trials", "20", "-stream")
	sim := r.Results[0].Sim
	if sim == nil {
		t.Fatal("no sim results")
	}
	if sim.Efficiencies != nil {
		t.Error("-stream still carries per-trial Efficiencies")
	}
	if sim.EfficiencySketch == nil || sim.EfficiencySketch.N() != 20 {
		t.Errorf("-stream sketch missing or short: %+v", sim.EfficiencySketch)
	}
}

// TestCheckpointResumeCLI: a checkpointed run leaves a resumable file
// per technique, and -resume reproduces the plain run byte for byte in
// the JSON output.
func TestCheckpointResumeCLI(t *testing.T) {
	dir := t.TempDir()
	_, plain := jsonRun(t, "-system", "D4", "-techniques", "daly", "-trials", "24")
	_, first := jsonRun(t, "-system", "D4", "-techniques", "daly", "-trials", "24",
		"-checkpoint", dir, "-checkpoint-interval", "8")
	if plain != first {
		t.Error("checkpointed run differs from plain run")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one checkpoint, got %v (%v)", files, err)
	}
	_, resumed := jsonRun(t, "-system", "D4", "-techniques", "daly", "-trials", "24",
		"-checkpoint", dir, "-resume")
	if plain != resumed {
		t.Error("resumed run differs from plain run")
	}
}

// TestShardMergeCLI: N independent shard invocations followed by a
// merge invocation reproduce the single-process JSON byte for byte.
func TestShardMergeCLI(t *testing.T) {
	dir := t.TempDir()
	_, plain := jsonRun(t, "-system", "D4", "-techniques", "daly", "-trials", "24")
	for k := 0; k < 3; k++ {
		var out bytes.Buffer
		err := run([]string{"-system", "D4", "-techniques", "daly", "-trials", "24",
			"-shard", fmt.Sprintf("%d/3", k), "-shard-dir", dir}, &out)
		if err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
		if !strings.Contains(out.String(), fmt.Sprintf("shard %d/3", k)) {
			t.Errorf("shard %d: table does not report the shard range:\n%s", k, out.String())
		}
	}
	_, merged := jsonRun(t, "-system", "D4", "-techniques", "daly", "-trials", "24",
		"-merge-shards", "3", "-shard-dir", dir)
	if plain != merged {
		t.Error("merged shards differ from the single-process run")
	}
}

// TestNewFlagValidation: the flag combinations the redesign rejects.
func TestNewFlagValidation(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-system", "D4", "-resume"},                                                              // -resume without -checkpoint
		{"-system", "D4", "-checkpoint", "x"},                                                     // -checkpoint without -trials
		{"-system", "D4", "-trials", "8", "-shard", "0/2"},                                        // -shard without -shard-dir
		{"-system", "D4", "-trials", "8", "-shard", "2/2", "-shard-dir", "x"},                     // k out of range
		{"-system", "D4", "-trials", "8", "-shard", "nope", "-shard-dir", "x"},                    // malformed spec
		{"-system", "D4", "-trials", "8", "-shard", "0/2", "-shard-dir", "x", "-check"},           // shard + check
		{"-system", "D4", "-trials", "8", "-shard", "0/2", "-shard-dir", "x", "-checkpoint", "y"}, // shard + checkpoint
		{"-system", "D4", "-crn", "-json"},                                                        // crn + json
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
