package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

func TestFlightDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	var out bytes.Buffer
	err := run([]string{"-system", "D7", "-techniques", "dauwe,daly", "-trials", "40",
		"-check", "-flight", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flight recorder:") {
		t.Errorf("missing flight summary line:\n%s", out.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	streams, err := trace.ReadFlight(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) == 0 {
		t.Fatal("dump has no streams")
	}
	labels := map[string]bool{}
	for _, s := range streams {
		labels[s.Label] = true
		if len(s.Records) == 0 {
			t.Errorf("trial %d (%s) has no records", s.Trial, s.Label)
		}
	}
	// One campaign per technique; both must contribute streams.
	for _, want := range []string{"dauwe", "daly"} {
		if !labels[want] {
			t.Errorf("no streams labeled %q (got %v)", want, labels)
		}
	}
}

func TestTraceSummaryFlag(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "D2", "-techniques", "dauwe", "-trials", "10",
		"-trace-summary"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// The cmd-level stages plus the grafted sweep and trial shards.
	for _, want := range []string{"cell", "optimize", "sweep", "campaign", "trial"} {
		if !strings.Contains(s, want) {
			t.Errorf("trace summary missing %q:\n%s", want, s)
		}
	}
}

func TestMetricsSnapshotSpansAndStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	err := run([]string{"-system", "D2", "-techniques", "daly", "-trials", "12",
		"-metrics", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Spans) == 0 {
		t.Error("snapshot has no spans")
	}
	stats := map[string]uint64{}
	for _, st := range snap.Stats {
		stats[st.Name] = st.Count
	}
	for _, want := range []string{"trial_efficiency", "trial_walltime_minutes"} {
		if stats[want] != 12 {
			t.Errorf("stat %q count = %d, want 12 (stats: %v)", want, stats[want], stats)
		}
	}
}

func TestListenFlagSmoke(t *testing.T) {
	// End-to-end endpoint behavior is covered by the obshttp tests; here
	// we only prove the flag wires up and tears down cleanly.
	var out bytes.Buffer
	err := run([]string{"-system", "D2", "-techniques", "daly", "-trials", "5",
		"-listen", "127.0.0.1:0"}, &out)
	if err != nil {
		t.Fatal(err)
	}
}
