// Command mlckpt optimizes multilevel checkpoint intervals for a system
// and reports every technique's chosen plan, its own prediction, and
// (optionally) the simulated ground truth.
//
// Usage:
//
//	mlckpt [flags]
//
// The system is either a Table I system (-system M|B|D1..D9) or a custom
// one assembled from -mtbf, -tb, -levels, -probs and -times. Examples:
//
//	mlckpt -system D4
//	mlckpt -system B -scale-mtbf 15 -scale-pfs 20 -tb 30
//	mlckpt -mtbf 60 -tb 1440 -probs 0.8,0.2 -times 0.5,5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/conformance"
	"repro/internal/faultlog"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"

	_ "repro/internal/model/benoit"
	_ "repro/internal/model/daly"
	_ "repro/internal/model/dauwe"
	_ "repro/internal/model/di"
	_ "repro/internal/model/moody"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mlckpt:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mlckpt", flag.ContinueOnError)
	sysName := fs.String("system", "", "Table I system name (M, B, D1..D9)")
	config := fs.String("config", "", "JSON system description file (see system.WriteJSON)")
	flog := fs.String("faultlog", "", "CSV failure log (time_minutes,severity); refits MTBF and severity mix onto the chosen system")
	mtbf := fs.Float64("mtbf", 0, "custom system MTBF in minutes")
	tb := fs.Float64("tb", 0, "application baseline time in minutes (overrides the system's)")
	probs := fs.String("probs", "", "custom severity probabilities, comma-separated")
	times := fs.String("times", "", "custom per-level checkpoint(=restart) times in minutes, comma-separated")
	scaleMTBF := fs.Float64("scale-mtbf", 0, "override MTBF of the chosen system")
	scalePFS := fs.Float64("scale-pfs", 0, "override level-L checkpoint/restart time")
	techs := fs.String("techniques", "dauwe,di,moody,benoit,daly", "comma-separated techniques")
	list := fs.Bool("list", false, "list registered techniques with their citations and exit")
	trials := fs.Int("trials", 0, "also simulate each plan over this many trials")
	check := fs.Bool("check", false, "run every simulated trial under the protocol-invariant checker (fails on any violation; results are bit-identical to unchecked runs)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	metricsPath := fs.String("metrics", "", "write a telemetry snapshot (JSON) of the optimizer sweeps and simulations to this file")
	progress := fs.Bool("progress", false, "report trials/sec and ETA on stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		return listTechniques(stdout)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	sys, err := buildSystem(*sysName, *config, *mtbf, *tb, *probs, *times)
	if err != nil {
		return err
	}
	if *scaleMTBF > 0 {
		sys = sys.WithMTBF(*scaleMTBF)
	}
	if *scalePFS > 0 {
		sys = sys.WithTopCost(*scalePFS)
	}
	if *tb > 0 {
		sys = sys.WithBaseline(*tb)
	}
	if *flog != "" {
		refit, diag, err := refitFromLog(sys, *flog)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, diag)
		sys = refit
	}
	if err := sys.Validate(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, sys)

	techNames := []string{}
	for _, name := range strings.Split(*techs, ",") {
		if name = strings.TrimSpace(name); name != "" {
			techNames = append(techNames, name)
		}
	}
	var sink *obs.SimMetrics
	if *metricsPath != "" {
		sink = obs.NewSimMetrics()
	}
	var prog *obs.Progress
	if *progress {
		prog = obs.NewProgress(os.Stderr, "mlckpt", int64(len(techNames)**trials))
		defer prog.Finish()
	}

	tab := report.NewTable("technique", "levels", "plan", "predicted eff", "sim eff (mean±σ)")
	for _, name := range techNames {
		tech, err := model.New(name)
		if err != nil {
			return err
		}
		info, err := model.Describe(name)
		if err != nil {
			return err
		}
		if sink != nil {
			// Techniques with an instrumented optimizer sweep share the
			// simulation telemetry snapshot.
			if m, ok := tech.(interface{ SetSweepMetrics(*obs.Registry) }); ok {
				m.SetSweepMetrics(sink.Registry())
			}
		}
		plan, pred, err := tech.Optimize(sys)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		simCol := ""
		if *trials > 0 {
			camp := sim.Campaign{
				Scenario: sim.Scenario{System: sys, Plan: plan},
				Trials:   *trials,
				Seed:     rng.Campaign(*seed, "mlckpt").Scenario(sys.Name + "/" + name),
			}
			var pool *obs.Pool
			if sink != nil {
				pool = &obs.Pool{}
				camp.ObserverFactory = pool.Observer
			}
			var ckPool *conformance.Pool
			if *check {
				ckPool, err = conformance.NewPool(camp.Scenario)
				if err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				metricsFactory := camp.ObserverFactory
				camp.ObserverFactory = func(w int) sim.Observer {
					if metricsFactory == nil {
						return ckPool.Observer(w)
					}
					return obs.Multi(ckPool.Observer(w), metricsFactory(w))
				}
			}
			if prog != nil {
				camp.TrialDone = func(sim.TrialResult) { prog.Tick() }
			}
			res, err := camp.Run()
			if err != nil {
				return fmt.Errorf("%s: simulate: %w", name, err)
			}
			if ckPool != nil {
				if err := ckPool.Err(); err != nil {
					return fmt.Errorf("%s: conformance: %w", name, err)
				}
				fmt.Fprintf(stdout, "conformance[%s]: %d trials, %d events, all invariants held\n",
					name, ckPool.Trials(), ckPool.Events())
			}
			if pool != nil {
				m, err := pool.Merged()
				if err != nil {
					return err
				}
				if err := sink.Merge(m); err != nil {
					return err
				}
			}
			simCol = fmt.Sprintf("%.3f±%.3f", res.Efficiency.Mean, res.Efficiency.Std)
		}
		tab.AddRow(name, levelsLabel(info), plan.String(), fmt.Sprintf("%.3f", pred.Efficiency), simCol)
	}
	if err := tab.Render(stdout); err != nil {
		return err
	}
	if sink != nil {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		if err := sink.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// listTechniques renders the registry metadata — no hard-coded
// technique knowledge; everything comes from model.Infos.
func listTechniques(w io.Writer) error {
	tab := report.NewTable("technique", "levels", "summary", "citation")
	for _, info := range model.Infos() {
		tab.AddRow(info.Name, levelsLabel(info), info.Summary, info.Citation)
	}
	return tab.Render(w)
}

func levelsLabel(info model.Info) string {
	if info.MaxLevels == 0 {
		return "any"
	}
	return fmt.Sprintf("≤%d", info.MaxLevels)
}

func buildSystem(name, config string, mtbf, tb float64, probs, times string) (*system.System, error) {
	if name != "" {
		return system.ByName(name)
	}
	if config != "" {
		f, err := os.Open(config)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return system.ReadJSON(f)
	}
	if probs == "" || times == "" || mtbf <= 0 {
		return nil, fmt.Errorf("custom systems need -config, or -mtbf with -probs and -times (or use -system)")
	}
	ps, err := parseFloats(probs)
	if err != nil {
		return nil, fmt.Errorf("-probs: %w", err)
	}
	ts, err := parseFloats(times)
	if err != nil {
		return nil, fmt.Errorf("-times: %w", err)
	}
	if len(ps) != len(ts) {
		return nil, fmt.Errorf("-probs has %d entries but -times has %d", len(ps), len(ts))
	}
	if tb <= 0 {
		tb = 1440
	}
	s := &system.System{Name: "custom", MTBF: mtbf, BaselineTime: tb}
	for i := range ps {
		s.Levels = append(s.Levels, system.Level{
			Checkpoint: ts[i], Restart: ts[i], SeverityProb: ps[i],
		})
	}
	return s, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// refitFromLog replaces the system's failure model with rates fitted
// from a CSV failure log, and reports a burstiness diagnostic for the
// exponential assumption.
func refitFromLog(sys *system.System, path string) (*system.System, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	entries, err := faultlog.ParseCSV(f)
	if err != nil {
		return nil, "", err
	}
	fit, err := faultlog.Analyze(entries, sys.NumLevels(), 0)
	if err != nil {
		return nil, "", err
	}
	refit, err := fit.ApplyTo(sys)
	if err != nil {
		return nil, "", err
	}
	diag := fmt.Sprintf("faultlog: %d failures over %.0f min -> MTBF %.2f min",
		len(entries), fit.Duration, fit.MTBF)
	if cv2, err := faultlog.ExponentialGoodness(faultlog.Interarrivals(entries)); err == nil {
		diag += fmt.Sprintf("; inter-arrival cv2 = %.2f (1 = exponential)", cv2)
	}
	return refit, diag, nil
}
