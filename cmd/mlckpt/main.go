// Command mlckpt optimizes multilevel checkpoint intervals for a system
// and reports every technique's chosen plan, its own prediction, and
// (optionally) the simulated ground truth.
//
// Usage:
//
//	mlckpt [flags]
//
// The system is either a Table I system (-system M|B|D1..D9) or a custom
// one assembled from -mtbf, -tb, -levels, -probs and -times. Examples:
//
//	mlckpt -system D4
//	mlckpt -system B -scale-mtbf 15 -scale-pfs 20 -tb 30
//	mlckpt -mtbf 60 -tb 1440 -probs 0.8,0.2 -times 0.5,5
//	mlckpt -system D4 -crn -ci-target 0.002   (paired comparison, sequential stopping)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/conformance"
	"repro/internal/experiments"
	"repro/internal/faultlog"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/obs/sidecar"
	"repro/internal/report"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"

	_ "repro/internal/model/benoit"
	_ "repro/internal/model/daly"
	_ "repro/internal/model/dauwe"
	_ "repro/internal/model/di"
	_ "repro/internal/model/moody"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mlckpt:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mlckpt", flag.ContinueOnError)
	sysName := fs.String("system", "", "Table I system name (M, B, D1..D9)")
	config := fs.String("config", "", "JSON system description file (see system.WriteJSON)")
	flog := fs.String("faultlog", "", "CSV failure log (time_minutes,severity); refits MTBF and severity mix onto the chosen system")
	mtbf := fs.Float64("mtbf", 0, "custom system MTBF in minutes")
	tb := fs.Float64("tb", 0, "application baseline time in minutes (overrides the system's)")
	probs := fs.String("probs", "", "custom severity probabilities, comma-separated")
	times := fs.String("times", "", "custom per-level checkpoint(=restart) times in minutes, comma-separated")
	scaleMTBF := fs.Float64("scale-mtbf", 0, "override MTBF of the chosen system")
	scalePFS := fs.Float64("scale-pfs", 0, "override level-L checkpoint/restart time")
	techs := fs.String("techniques", "dauwe,di,moody,benoit,daly", "comma-separated techniques")
	list := fs.Bool("list", false, "list registered techniques with their citations and exit")
	trials := fs.Int("trials", 0, "also simulate each plan over this many trials")
	crn := fs.Bool("crn", false, "simulate all techniques under common random numbers and report paired comparisons (default 400 trials)")
	ciTarget := fs.Float64("ci-target", 0, "with -crn, stop once every paired 95% CI half-width is below this (0 = fixed trial count)")
	check := fs.Bool("check", false, "run every simulated trial under the protocol-invariant checker (fails on any violation; results are bit-identical to unchecked runs)")
	seed := fs.Uint64("seed", 1, "simulation seed")
	metricsPath := fs.String("metrics", "", "write a telemetry snapshot (JSON) of the optimizer sweeps and simulations to this file")
	progress := fs.Bool("progress", false, "report trials/sec and ETA on stderr")
	progressInterval := fs.Duration("progress-interval", 0, "minimum time between -progress lines (0 = default 500ms, negative = every tick)")
	listen := fs.String("listen", "", "serve live telemetry over HTTP on this address (/metrics, /snapshot, /spans, /flight, /debug/pprof/)")
	traceSummary := fs.Bool("trace-summary", false, "print the hierarchical span time breakdown after the run")
	flightPath := fs.String("flight", "", "write the trial flight-recorder dump (recent + anomalous event streams) to this file; read it back with simtrace -flight")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file")
	jsonOut := fs.Bool("json", false, "write machine-readable JSON results to stdout instead of the human-readable rendering")
	outPath := fs.String("out", "", "also write the machine-readable JSON results to this path")
	streamSim := fs.Bool("stream", false, "aggregate simulations in constant memory (sketch-backed summaries instead of per-trial slices)")
	ckptDir := fs.String("checkpoint", "", "checkpoint each technique's campaign into this directory (resume with -resume)")
	ckptInterval := fs.Int("checkpoint-interval", 0, "trials between checkpoint writes (0 = trials/8, at least 1)")
	resume := fs.Bool("resume", false, "with -checkpoint, resume each campaign from its checkpoint file when present")
	shardSpec := fs.String("shard", "", "run only shard k/N of each campaign (e.g. 1/4) and write a mergeable shard file under -shard-dir")
	shardDir := fs.String("shard-dir", "", "directory for shard files (required by -shard and -merge-shards)")
	mergeShards := fs.Int("merge-shards", 0, "merge N previously written shard files per technique from -shard-dir and report the combined results")
	watchDir := fs.String("watch", "", "monitor a directory of progress sidecars: render fleet progress (per-shard bars, throughput, ETA, stragglers) until every shard reaches a terminal state; with -json, print one machine-readable fleet snapshot and exit")
	watchInterval := fs.Duration("watch-interval", 2*time.Second, "refresh period for -watch")
	logJSON := fs.Bool("log-json", false, "emit structured JSON event logs (campaign start/checkpoint/resume/shard-merge/error) on stderr, correlated by run ID")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *watchDir != "" {
		return runWatch(*watchDir, *watchInterval, *jsonOut, stdout)
	}
	shardK, shardN, err := parseShard(*shardSpec)
	if err != nil {
		return err
	}
	if shardN > 0 || *mergeShards > 0 {
		if *shardDir == "" {
			return fmt.Errorf("-shard and -merge-shards need -shard-dir")
		}
		if *trials <= 0 {
			return fmt.Errorf("-shard and -merge-shards need -trials")
		}
		if *crn || *check || *flightPath != "" {
			return fmt.Errorf("-shard/-merge-shards are incompatible with -crn, -check and -flight")
		}
		if *ckptDir != "" {
			return fmt.Errorf("-shard runs do not take -checkpoint (the shard file is the checkpoint)")
		}
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint")
	}
	if *ckptDir != "" && *trials <= 0 {
		return fmt.Errorf("-checkpoint needs -trials")
	}
	if *jsonOut && *crn {
		return fmt.Errorf("-json is not supported with -crn yet; use the variance report")
	}
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
	}
	if shardN > 0 {
		if err := os.MkdirAll(*shardDir, 0o755); err != nil {
			return err
		}
	}
	if *list {
		return listTechniques(stdout)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	sys, err := buildSystem(*sysName, *config, *mtbf, *tb, *probs, *times)
	if err != nil {
		return err
	}
	if *scaleMTBF > 0 {
		sys = sys.WithMTBF(*scaleMTBF)
	}
	if *scalePFS > 0 {
		sys = sys.WithTopCost(*scalePFS)
	}
	if *tb > 0 {
		sys = sys.WithBaseline(*tb)
	}
	if *flog != "" {
		refit, diag, err := refitFromLog(sys, *flog)
		if err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Fprintln(stdout, diag)
		}
		sys = refit
	}
	if err := sys.Validate(); err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Fprintln(stdout, sys)
	}

	techNames := []string{}
	for _, name := range strings.Split(*techs, ",") {
		if name = strings.TrimSpace(name); name != "" {
			techNames = append(techNames, name)
		}
	}
	var sink *obs.SimMetrics
	if *metricsPath != "" || *listen != "" {
		sink = obs.NewSimMetrics()
	}
	// Spans are recorded whenever something can show them: the summary
	// table, the /spans endpoint, or the -metrics snapshot.
	var tracer *obs.Tracer
	if *traceSummary || *listen != "" || *metricsPath != "" {
		tracer = obs.NewTracer()
	}
	flightOn := *flightPath != "" || *listen != ""
	var flightStreams []trace.FlightStream
	var prog *obs.Progress
	if *progress {
		budget := int64(len(techNames) * *trials)
		if *crn && *trials == 0 {
			budget = int64(len(techNames)) * 400 // CompareTechniques' default
		}
		prog = obs.NewProgress(os.Stderr, "mlckpt", budget)
		if *progressInterval != 0 {
			prog.SetInterval(*progressInterval)
		}
		defer prog.Finish()
	}
	// runID correlates this invocation's artifacts — event-log lines,
	// flight dumps — across the fleet; per-cell config digests (shared
	// by all shards of a cell) identify each campaign's sidecars.
	runID := sidecar.ConfigDigest("mlckpt", sys.Name, *techs,
		strconv.FormatUint(*seed, 10), strconv.Itoa(*trials))
	var events *obs.EventLog
	if *logJSON {
		events = obs.NewEventLog(os.Stderr, "")
	}
	var live *obshttp.Live
	var stats *obs.StreamSet
	if *listen != "" {
		live = obshttp.NewLive()
		stats = live.Stats
		if flightOn {
			// Publish an empty dump so /flight serves from the start.
			if err := live.PublishFlight(func(w io.Writer) error {
				return trace.WriteFlightWithRun(w, runID, nil)
			}); err != nil {
				return err
			}
		}
		// /shards serves the fleet view over whichever sidecar directory
		// this process writes into (shard files, or checkpoints).
		scanDir := *ckptDir
		if shardN > 0 || *mergeShards > 0 {
			scanDir = *shardDir
		}
		if scanDir != "" {
			live.SetShards(func() (any, error) {
				files, err := sidecar.Scan(scanDir)
				if err != nil {
					return nil, err
				}
				return sidecar.BuildFleet(files, time.Now(), 0), nil
			})
		}
		srv, err := obshttp.Serve(*listen, live.Options())
		if err != nil {
			return err
		}
		defer srv.Close()
		live.SetReady(true)
		fmt.Fprintf(os.Stderr, "mlckpt: telemetry on http://%s/metrics (also /snapshot, /spans, /shards, /healthz, /flight, /debug/pprof/)\n", srv.Addr())
	} else if sink != nil {
		stats = obs.NewStreamSet()
	}

	if *crn {
		// The paired runner drives every technique through one shared
		// campaign, so the per-technique conformance and flight-recorder
		// plumbing below does not apply.
		if *check || *flightPath != "" {
			return fmt.Errorf("-crn is incompatible with -check and -flight; run them on individual techniques without -crn")
		}
		opt := experiments.Options{
			Trials:     *trials,
			Seed:       *seed,
			CITarget:   *ciTarget,
			Metrics:    sink,
			Spans:      tracer,
			TrialStats: stats,
		}
		if prog != nil {
			opt.TrialDone = prog.Tick
		}
		rep, err := experiments.CompareTechniques(sys, techNames, opt)
		if err != nil {
			return err
		}
		if err := report.VarianceReport(stdout, rep); err != nil {
			return err
		}
		if live != nil {
			if sink != nil {
				live.PublishSnapshot(sink.Snapshot())
			}
			live.PublishSpans(tracer.Snapshot())
		}
		return finish(stdout, *traceSummary, *metricsPath, *memprofile, sink, tracer, stats)
	}
	if *ciTarget > 0 {
		return fmt.Errorf("-ci-target needs -crn (sequential stopping is defined on paired CIs)")
	}

	tab := report.NewTable("technique", "levels", "plan", "predicted eff", "sim eff (mean±σ)")
	results := runResults{System: sys.Name, Trials: *trials, Seed: *seed}
	for _, name := range techNames {
		tech, err := model.New(name)
		if err != nil {
			return err
		}
		info, err := model.Describe(name)
		if err != nil {
			return err
		}
		if sink != nil {
			// Techniques with an instrumented optimizer sweep share the
			// simulation telemetry snapshot.
			if m, ok := tech.(interface{ SetSweepMetrics(*obs.Registry) }); ok {
				m.SetSweepMetrics(sink.Registry())
			}
		}
		cellSpan := tracer.Start("cell")
		var sweepSpans *obs.Tracer
		if tracer != nil {
			if s, ok := tech.(interface{ SetSweepSpans(*obs.Tracer) }); ok {
				sweepSpans = obs.NewTracer()
				s.SetSweepSpans(sweepSpans)
			}
		}
		optSpan := tracer.Start("optimize")
		plan, pred, err := tech.Optimize(sys)
		optSpan.End()
		optSpan.Adopt(sweepSpans)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		simCol := ""
		var simRes *sim.CampaignResult
		shardFile := ""
		if *trials > 0 {
			camp := sim.Campaign{
				Scenario: sim.Scenario{System: sys, Plan: plan},
				Trials:   *trials,
				Seed:     rng.Campaign(*seed, "mlckpt").Scenario(sys.Name + "/" + name),
			}
			if *streamSim {
				camp.Sink = sim.NewStreamSink()
			}
			if *ckptDir != "" {
				iv := *ckptInterval
				if iv <= 0 {
					if iv = *trials / 8; iv < 1 {
						iv = 1
					}
				}
				camp.Checkpoint = &sim.CheckpointConfig{
					Path:     filepath.Join(*ckptDir, cellFile(sys.Name, name)+".ckpt"),
					Interval: iv,
					Resume:   *resume,
				}
			}
			// The cell digest identifies this campaign's configuration:
			// every shard of the same cell computes the same digest, so
			// their sidecars and log lines group into one fleet.
			cellLabel := sys.Name + "/" + name
			sinkKind := "exact"
			if *streamSim {
				sinkKind = "stream"
			}
			cellDigest := sidecar.ConfigDigest(sys.Name, name,
				strconv.FormatUint(*seed, 10), strconv.Itoa(*trials),
				strconv.Itoa(camp.Block), sinkKind)
			cellEvents := events.WithRun(cellDigest)
			if shardN > 0 {
				spath := shardPath(*shardDir, sys.Name, name, shardK, shardN)
				var pool *obs.Pool
				if sink != nil {
					pool = &obs.Pool{}
					camp.ObserverFactory = pool.Observer
				}
				sw := sidecar.NewWriter(spath+sidecar.Suffix, sidecar.Meta{
					RunID: cellDigest, ConfigDigest: cellDigest,
					Label: cellLabel, Shard: shardK, Of: shardN,
				})
				if stats != nil {
					sw.SetLiveStats(stats.Snapshots)
				}
				camp.Progress = sw.Update
				chainEvents(&camp, cellEvents, cellLabel, "", shardK, shardN)
				campSpan := tracer.Start("campaign")
				err := camp.RunShard(spath, shardK, shardN)
				campSpan.End()
				if err != nil {
					// The final failed sidecar was already flushed by the
					// progress hook.
					return fmt.Errorf("%s: shard %d/%d: %w", name, shardK, shardN, err)
				}
				if pool != nil {
					m, err := pool.Merged()
					if err != nil {
						return err
					}
					if err := sink.Merge(m); err != nil {
						return err
					}
					// Enrich the terminal sidecar with the shard's merged
					// registry so fleet monitors can aggregate telemetry
					// across processes (sidecar.MergeRegistries).
					snap := m.Snapshot()
					sw.SetRegistry(&snap)
				}
				if err := sw.Flush(); err != nil {
					fmt.Fprintln(os.Stderr, "mlckpt: sidecar:", err)
				}
				lo, hi := sim.ShardRange(camp.Trials, camp.Block, shardK, shardN)
				simCol = fmt.Sprintf("shard %d/%d (trials %d..%d)", shardK, shardN, lo, hi-1)
				shardFile = spath
			} else if *mergeShards > 0 {
				paths := make([]string, *mergeShards)
				for k := range paths {
					paths[k] = shardPath(*shardDir, sys.Name, name, k, *mergeShards)
				}
				res, err := camp.MergeShards(paths...)
				if err != nil {
					return fmt.Errorf("%s: merge shards: %w", name, err)
				}
				cellEvents.ShardMerge(paths, *trials)
				simCol = fmt.Sprintf("%.3f±%.3f", res.Efficiency.Mean, res.Efficiency.Std)
				simRes = &res
			} else {
				var sw *sidecar.Writer
				if camp.Checkpoint != nil {
					// Checkpointed runs keep a progress sidecar next to the
					// checkpoint artifact; plain in-memory runs have no
					// artifact path to anchor one.
					sw = sidecar.NewWriter(camp.Checkpoint.Path+sidecar.Suffix, sidecar.Meta{
						RunID: cellDigest, ConfigDigest: cellDigest, Label: cellLabel,
					})
					if stats != nil {
						sw.SetLiveStats(stats.Snapshots)
					}
					camp.Progress = sw.Update
				}
				ckPath := ""
				if camp.Checkpoint != nil {
					ckPath = camp.Checkpoint.Path
				}
				chainEvents(&camp, cellEvents, cellLabel, ckPath, 0, 1)
				var pool *obs.Pool
				if sink != nil {
					pool = &obs.Pool{}
				}
				var ckPool *conformance.Pool
				if *check {
					ckPool, err = conformance.NewPool(camp.Scenario)
					if err != nil {
						return fmt.Errorf("%s: %w", name, err)
					}
				}
				var flightPool *trace.FlightPool
				if flightOn {
					flightPool = &trace.FlightPool{}
					camp.TrialStart = flightPool.TrialStart
				}
				if pool != nil || ckPool != nil || flightPool != nil {
					camp.ObserverFactory = func(w int) sim.Observer {
						var list []sim.Observer
						var ck *conformance.Checker
						if ckPool != nil {
							ck = ckPool.Observer(w).(*conformance.Checker)
							list = append(list, ck)
						}
						if flightPool != nil {
							rec := flightPool.Recorder(w)
							if ck != nil {
								// The checker runs earlier in the observer
								// chain, so its verdict is current at the
								// trial's terminal event: pin the streams of
								// trials that added violations.
								seen := 0
								rec.SetJudge(func(sim.Event) (string, bool) {
									if n := len(ck.Violations()); n > seen {
										seen = n
										return "conformance violation", true
									}
									return "", false
								})
							}
							list = append(list, rec)
						}
						if pool != nil {
							list = append(list, pool.Observer(w))
						}
						if len(list) == 1 {
							return list[0]
						}
						return obs.Multi(list...)
					}
				}
				var trialTracers *obs.TracerPool
				if tracer != nil {
					trialTracers = &obs.TracerPool{}
					inner := camp.ObserverFactory
					camp.ObserverFactory = func(w int) sim.Observer {
						sp := obs.TrialSpans(trialTracers.Shard())
						if inner == nil {
							return sp
						}
						return obs.Multi(inner(w), sp)
					}
				}
				var effStat, wallStat *obs.StreamStat
				if stats != nil {
					effStat = stats.Stat("trial_efficiency")
					wallStat = stats.Stat("trial_walltime_minutes")
				}
				if prog != nil || stats != nil {
					camp.TrialDone = func(r sim.TrialResult) {
						if effStat != nil {
							effStat.Observe(r.Efficiency)
							wallStat.Observe(r.WallTime)
						}
						if prog != nil {
							prog.Tick()
						}
					}
				}
				collectFlight := func() {
					if flightPool == nil {
						return
					}
					ss := flightPool.Streams()
					for i := range ss {
						ss[i].Label = name
					}
					flightStreams = append(flightStreams, ss...)
				}
				campSpan := tracer.Start("campaign")
				res, err := camp.Run()
				campSpan.End()
				if trialTracers != nil {
					campSpan.Adopt(trialTracers.Merged())
				}
				if err != nil {
					// The black box is most valuable on the crash path: the
					// aborted trial's stream is pinned as "unterminated".
					collectFlight()
					dumpFlight(*flightPath, runID, flightStreams)
					return fmt.Errorf("%s: simulate: %w", name, err)
				}
				if ckPool != nil {
					if err := ckPool.Err(); err != nil {
						collectFlight()
						dumpFlight(*flightPath, runID, flightStreams)
						return fmt.Errorf("%s: conformance: %w", name, err)
					}
					if !*jsonOut {
						fmt.Fprintf(stdout, "conformance[%s]: %d trials, %d events, all invariants held\n",
							name, ckPool.Trials(), ckPool.Events())
					}
				}
				collectFlight()
				if pool != nil {
					m, err := pool.Merged()
					if err != nil {
						return err
					}
					if err := sink.Merge(m); err != nil {
						return err
					}
					if sw != nil {
						snap := m.Snapshot()
						sw.SetRegistry(&snap)
					}
				}
				if sw != nil {
					if err := sw.Flush(); err != nil {
						fmt.Fprintln(os.Stderr, "mlckpt: sidecar:", err)
					}
				}
				simCol = fmt.Sprintf("%.3f±%.3f", res.Efficiency.Mean, res.Efficiency.Std)
				simRes = &res
			}
		}
		results.Results = append(results.Results, techResult{
			Technique: name,
			Plan:      plan.String(),
			Predicted: pred.Efficiency,
			Sim:       simRes,
			ShardFile: shardFile,
		})
		tab.AddRow(name, levelsLabel(info), plan.String(), fmt.Sprintf("%.3f", pred.Efficiency), simCol)
		cellSpan.End()
		if live != nil {
			// Checkpoint the merged telemetry so the HTTP endpoints show
			// everything up to the technique that just finished.
			if sink != nil {
				live.PublishSnapshot(sink.Snapshot())
			}
			live.PublishSpans(tracer.Snapshot())
			if flightOn {
				if err := live.PublishFlight(func(w io.Writer) error {
					return trace.WriteFlightWithRun(w, runID, flightStreams)
				}); err != nil {
					return err
				}
			}
		}
	}
	if *jsonOut {
		if err := writeResults(stdout, results); err != nil {
			return err
		}
	} else if err := tab.Render(stdout); err != nil {
		return err
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := writeResults(f, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *flightPath != "" {
		f, err := os.Create(*flightPath)
		if err != nil {
			return err
		}
		if err := trace.WriteFlightWithRun(f, runID, flightStreams); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		held := 0
		for _, s := range flightStreams {
			if s.Held {
				held++
			}
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "flight recorder: %d streams (%d held) written to %s\n",
				len(flightStreams), held, *flightPath)
		}
	}
	return finish(stdout, *traceSummary, *metricsPath, *memprofile, sink, tracer, stats)
}

// techResult is one row of the machine-readable output: the chosen
// plan, the technique's own prediction, and (when simulated) the full
// campaign result. encoding/json renders float64s with the shortest
// round-trip representation, so two runs with bitwise-identical
// results marshal to byte-identical JSON — check.sh's resume gate
// compares these outputs with cmp.
type techResult struct {
	Technique string              `json:"technique"`
	Plan      string              `json:"plan"`
	Predicted float64             `json:"predicted_efficiency"`
	Sim       *sim.CampaignResult `json:"sim,omitempty"`
	ShardFile string              `json:"shard_file,omitempty"`
}

// runResults is the top-level machine-readable document written by
// -json and -out.
type runResults struct {
	System  string       `json:"system"`
	Trials  int          `json:"trials"`
	Seed    uint64       `json:"seed"`
	Results []techResult `json:"results"`
}

func writeResults(w io.Writer, r runResults) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// runWatch is the fleet monitor (-watch): it scans a directory of
// progress sidecars, renders per-shard bars with aggregate throughput
// and ETA plus straggler/stall flags, and repeats every interval until
// every shard reaches a terminal state. With jsonOut it prints one
// machine-readable fleet snapshot and exits. A fleet with a failed
// shard makes the monitor itself exit nonzero.
func runWatch(dir string, interval time.Duration, jsonOut bool, stdout io.Writer) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	scan := func() (sidecar.Fleet, error) {
		files, err := sidecar.Scan(dir)
		if err != nil {
			return sidecar.Fleet{}, err
		}
		return sidecar.BuildFleet(files, time.Now(), 0), nil
	}
	failErr := func(fl sidecar.Fleet) error {
		if fl.Failed > 0 {
			return fmt.Errorf("%d shard(s) failed", fl.Failed)
		}
		return nil
	}
	if jsonOut {
		fl, err := scan()
		if err != nil {
			return err
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(fl); err != nil {
			return err
		}
		return failErr(fl)
	}
	// Redraw in place only on interactive terminals; pipes get appended
	// frames.
	ansi := false
	if f, ok := stdout.(*os.File); ok {
		if fi, err := f.Stat(); err == nil {
			ansi = fi.Mode()&os.ModeCharDevice != 0
		}
	}
	prevLines := 0
	for {
		fl, err := scan()
		if err != nil {
			return err
		}
		var frame bytes.Buffer
		if err := fl.WriteText(&frame); err != nil {
			return err
		}
		if ansi && prevLines > 0 {
			fmt.Fprintf(stdout, "\x1b[%dA\x1b[J", prevLines)
		}
		if _, err := stdout.Write(frame.Bytes()); err != nil {
			return err
		}
		prevLines = bytes.Count(frame.Bytes(), []byte{'\n'})
		if fl.Terminal() {
			return failErr(fl)
		}
		time.Sleep(interval)
	}
}

// chainEvents chains a structured-event emitter onto the campaign's
// Progress hook (after any sidecar writer already installed):
// campaign_start on the first update — plus resume when the run picked
// up a checkpoint — checkpoint on flagged merges, and
// campaign_error/campaign_end on the terminal update.
func chainEvents(camp *sim.Campaign, ev *obs.EventLog, label, ckPath string, shard, of int) {
	if ev == nil {
		return
	}
	prev := camp.Progress
	started := time.Now()
	first := true
	// Progress runs under the runner's merge lock; no extra
	// synchronization needed for the closure state.
	camp.Progress = func(u sim.ProgressUpdate) {
		if prev != nil {
			prev(u)
		}
		if first {
			first = false
			ev.CampaignStart(label, shard, of, u.First, u.Limit, u.Total)
			if u.First > 0 && ckPath != "" {
				ev.Resume(ckPath, u.First)
			}
		}
		if u.Checkpointed {
			ev.Checkpoint(ckPath, u.Merged)
		}
		if u.Final {
			ev.Error(string(u.State), u.Err)
			ev.CampaignEnd(string(u.State), u.Merged, time.Since(started))
		}
	}
}

// parseShard parses a "k/N" shard spec; an empty spec means no
// sharding (0, 0).
func parseShard(spec string) (k, n int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	i := strings.IndexByte(spec, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("-shard %q: want k/N, e.g. 1/4", spec)
	}
	k, err = strconv.Atoi(spec[:i])
	if err == nil {
		n, err = strconv.Atoi(spec[i+1:])
	}
	if err != nil || n <= 0 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("-shard %q: want k/N with 0 <= k < N", spec)
	}
	return k, n, nil
}

// cellFile names per-technique artifacts (checkpoints, shard files)
// after the system and technique, with filesystem-hostile runes mapped
// to '_'.
func cellFile(sysName, tech string) string {
	safe := func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}
	return strings.Map(safe, sysName) + "-" + strings.Map(safe, tech)
}

func shardPath(dir, sysName, tech string, k, n int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.shard%dof%d.json", cellFile(sysName, tech), k, n))
}

// finish writes the run's shared epilogue artifacts: the span summary,
// the telemetry snapshot, and the heap profile.
func finish(stdout io.Writer, traceSummary bool, metricsPath, memprofile string, sink *obs.SimMetrics, tracer *obs.Tracer, stats *obs.StreamSet) error {
	if traceSummary {
		fmt.Fprintln(stdout)
		if err := obs.WriteSpanSummary(stdout, tracer.Snapshot()); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		snap := sink.Snapshot()
		if tracer != nil {
			snap.Spans = tracer.Snapshot()
		}
		if stats != nil {
			snap.Stats = stats.Snapshots()
		}
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := snap.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// dumpFlight best-effort writes the accumulated flight streams — used on
// campaign error paths, where the pinned anomalous streams are exactly
// what post-mortem debugging needs. Failures to dump are reported but
// never mask the original error.
func dumpFlight(path, runID string, streams []trace.FlightStream) {
	if path == "" || len(streams) == 0 {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlckpt: flight dump:", err)
		return
	}
	defer f.Close()
	if err := trace.WriteFlightWithRun(f, runID, streams); err != nil {
		fmt.Fprintln(os.Stderr, "mlckpt: flight dump:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "mlckpt: flight recorder dumped to %s\n", path)
}

// listTechniques renders the registry metadata — no hard-coded
// technique knowledge; everything comes from model.Infos.
func listTechniques(w io.Writer) error {
	tab := report.NewTable("technique", "levels", "summary", "citation")
	for _, info := range model.Infos() {
		tab.AddRow(info.Name, levelsLabel(info), info.Summary, info.Citation)
	}
	return tab.Render(w)
}

func levelsLabel(info model.Info) string {
	if info.MaxLevels == 0 {
		return "any"
	}
	return fmt.Sprintf("≤%d", info.MaxLevels)
}

func buildSystem(name, config string, mtbf, tb float64, probs, times string) (*system.System, error) {
	if name != "" {
		return system.ByName(name)
	}
	if config != "" {
		f, err := os.Open(config)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return system.ReadJSON(f)
	}
	if probs == "" || times == "" || mtbf <= 0 {
		return nil, fmt.Errorf("custom systems need -config, or -mtbf with -probs and -times (or use -system)")
	}
	ps, err := parseFloats(probs)
	if err != nil {
		return nil, fmt.Errorf("-probs: %w", err)
	}
	ts, err := parseFloats(times)
	if err != nil {
		return nil, fmt.Errorf("-times: %w", err)
	}
	if len(ps) != len(ts) {
		return nil, fmt.Errorf("-probs has %d entries but -times has %d", len(ps), len(ts))
	}
	if tb <= 0 {
		tb = 1440
	}
	s := &system.System{Name: "custom", MTBF: mtbf, BaselineTime: tb}
	for i := range ps {
		s.Levels = append(s.Levels, system.Level{
			Checkpoint: ts[i], Restart: ts[i], SeverityProb: ps[i],
		})
	}
	return s, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// refitFromLog replaces the system's failure model with rates fitted
// from a CSV failure log, and reports a burstiness diagnostic for the
// exponential assumption.
func refitFromLog(sys *system.System, path string) (*system.System, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	entries, err := faultlog.ParseCSV(f)
	if err != nil {
		return nil, "", err
	}
	fit, err := faultlog.Analyze(entries, sys.NumLevels(), 0)
	if err != nil {
		return nil, "", err
	}
	refit, err := fit.ApplyTo(sys)
	if err != nil {
		return nil, "", err
	}
	diag := fmt.Sprintf("faultlog: %d failures over %.0f min -> MTBF %.2f min",
		len(entries), fit.Duration, fit.MTBF)
	if cv2, err := faultlog.ExponentialGoodness(faultlog.Interarrivals(entries)); err == nil {
		diag += fmt.Sprintf("; inter-arrival cv2 = %.2f (1 = exponential)", cv2)
	}
	return refit, diag, nil
}
