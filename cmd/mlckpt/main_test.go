package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestTableISystem(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "D2", "-techniques", "dauwe,daly"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"D2", "dauwe", "daly", "levels=[2]", "predicted eff"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCustomSystem(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-mtbf", "60", "-tb", "500", "-probs", "0.8,0.2", "-times", "0.5,5", "-techniques", "dauwe"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "custom") {
		t.Errorf("custom system not echoed:\n%s", out.String())
	}
}

func TestScalingFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "B", "-scale-mtbf", "15", "-scale-pfs", "20", "-tb", "30", "-techniques", "di"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "MTBF=15min") || !strings.Contains(s, "TB=30min") {
		t.Errorf("scaling not applied:\n%s", s)
	}
	// 30-minute app with 20-minute PFS: Di skips level 4.
	if strings.Contains(s, "levels=[3 4]") {
		t.Errorf("di should skip PFS here:\n%s", s)
	}
}

func TestSimulationColumn(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "D4", "-techniques", "daly", "-trials", "20"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "±") {
		t.Errorf("sim column missing:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-system", "XX"},
		{"-mtbf", "60"}, // missing probs/times
		{"-mtbf", "60", "-probs", "1", "-times", "1,2"},     // length mismatch
		{"-mtbf", "60", "-probs", "abc", "-times", "1"},     // parse error
		{"-system", "D1", "-techniques", "doesnotexist"},    // unknown technique
		{"-mtbf", "-5", "-probs", "1", "-times", "1"},       // invalid mtbf
		{"-system", "D4", "-crn", "-check", "-trials", "5"}, // CRN drives one shared runner
		{"-system", "D4", "-crn", "-flight", "/tmp/x", "-trials", "5"},
		{"-system", "D4", "-ci-target", "0.01", "-trials", "5"},          // stopping needs -crn
		{"-system", "D4", "-crn", "-techniques", "daly", "-trials", "5"}, // pairing needs >= 2 arms
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestCRNComparison(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-system", "D4", "-techniques", "di,moody", "-crn", "-trials", "30"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"CRN comparison on D4", "30/30 paired trials", "±Welch CI", "cv corr", "di", "moody"} {
		if !strings.Contains(s, want) {
			t.Errorf("CRN output missing %q:\n%s", want, s)
		}
	}
}

func TestCRNSequentialStoppingAndMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	var out bytes.Buffer
	err := run([]string{"-system", "D4", "-techniques", "di,moody", "-crn",
		"-trials", "200", "-ci-target", "0.01", "-metrics", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved") {
		t.Fatalf("stopping summary missing:\n%s", out.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"vr_trials_run_total", "vr_trials_saved_total", "sim_trials_total"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
}

func TestConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sys.json")
	cfg := `{"name":"filecfg","mtbf_minutes":30,"baseline_minutes":600,
	 "levels":[
	  {"checkpoint_minutes":0.5,"restart_minutes":0.5,"severity_prob":0.8},
	  {"checkpoint_minutes":4,"restart_minutes":4,"severity_prob":0.2}]}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-config", path, "-techniques", "dauwe"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "filecfg") {
		t.Errorf("config system not used:\n%s", out.String())
	}
	if err := run([]string{"-config", filepath.Join(dir, "missing.json")}, &bytes.Buffer{}); err == nil {
		t.Error("missing config accepted")
	}
}

func TestFaultlogRefit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "failures.csv")
	// 9 severity-1 + 1 severity-2 failure over 100 minutes: MTBF 10.
	log := "time_minutes,severity\n"
	for i := 1; i <= 9; i++ {
		log += fmt.Sprintf("%d,1\n", i*10)
	}
	log += "100,2\n"
	if err := os.WriteFile(path, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-system", "D2", "-faultlog", path, "-techniques", "dauwe"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "MTBF 10.00 min") {
		t.Errorf("refit diagnostic missing:\n%s", s)
	}
	if !strings.Contains(s, "MTBF=10min") {
		t.Errorf("system not refitted:\n%s", s)
	}
	if err := run([]string{"-system", "D2", "-faultlog", filepath.Join(dir, "none.csv")}, &bytes.Buffer{}); err == nil {
		t.Error("missing faultlog accepted")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	err := run([]string{"-system", "D2", "-techniques", "dauwe,daly", "-trials", "5", "-metrics", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	// Two techniques at five trials each.
	if got := snap.Counter("sim_trials_total"); got != 10 {
		t.Errorf("trials = %d, want 10", got)
	}
	if len(snap.Histograms) == 0 {
		t.Error("snapshot has no histograms")
	}
	// The dauwe optimizer sweep shares the snapshot.
	if snap.Counter("opt_candidates_total") == 0 {
		t.Error("snapshot has no optimizer sweep candidates")
	}
	if snap.Counter("opt_evaluations_total")+snap.Counter("opt_pruned_total") != snap.Counter("opt_candidates_total") {
		t.Errorf("sweep accounting broken: evaluations %d + pruned %d != candidates %d",
			snap.Counter("opt_evaluations_total"), snap.Counter("opt_pruned_total"),
			snap.Counter("opt_candidates_total"))
	}
}

func TestCheckFlag(t *testing.T) {
	var unchecked, checked bytes.Buffer
	base := []string{"-system", "D4", "-techniques", "dauwe,moody", "-trials", "30", "-seed", "3"}
	if err := run(base, &unchecked); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-check"}, base...), &checked); err != nil {
		t.Fatal(err)
	}
	s := checked.String()
	for _, want := range []string{"conformance[dauwe]", "conformance[moody]", "all invariants held"} {
		if !strings.Contains(s, want) {
			t.Errorf("checked output missing %q:\n%s", want, s)
		}
	}
	// The checker is a pure observer: stripping its report lines must
	// leave byte-identical output.
	var stripped strings.Builder
	for _, line := range strings.SplitAfter(s, "\n") {
		if !strings.HasPrefix(line, "conformance[") {
			stripped.WriteString(line)
		}
	}
	if stripped.String() != unchecked.String() {
		t.Errorf("-check changed results:\n--- unchecked:\n%s--- checked (reports stripped):\n%s",
			unchecked.String(), stripped.String())
	}
}

func TestCheckFlagWithMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var out bytes.Buffer
	err := run([]string{"-system", "D2", "-techniques", "daly", "-trials", "10", "-check", "-metrics", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("metrics snapshot not written alongside -check: %v", err)
	}
	if !strings.Contains(out.String(), "conformance[daly]: 10 trials") {
		t.Errorf("conformance report missing:\n%s", out.String())
	}
}
