package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/sidecar"
	"repro/internal/sim"
)

// TestShardSidecarsAndWatch runs both shards of a 2-way campaign split,
// then checks the progress sidecars they leave behind are complete and
// that -watch aggregates them (one-shot JSON and the text monitor).
func TestShardSidecarsAndWatch(t *testing.T) {
	dir := t.TempDir()
	for _, spec := range []string{"0/2", "1/2"} {
		var out bytes.Buffer
		err := run([]string{"-system", "D4", "-techniques", "daly", "-trials", "40",
			"-shard", spec, "-shard-dir", dir}, &out)
		if err != nil {
			t.Fatalf("shard %s: %v", spec, err)
		}
	}

	side, err := filepath.Glob(filepath.Join(dir, "*"+sidecar.Suffix))
	if err != nil || len(side) != 2 {
		t.Fatalf("want 2 sidecars, got %v (err %v)", side, err)
	}
	for _, p := range side {
		f, err := sidecar.Read(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if f.State != "complete" || f.TrialsMerged != f.TrialsLimit {
			t.Errorf("%s: state=%s merged=%d limit=%d", p, f.State, f.TrialsMerged, f.TrialsLimit)
		}
		if f.RunID == "" || f.Of != 2 {
			t.Errorf("%s: missing run ID or shard count: %+v", p, f)
		}
	}

	// One-shot machine-readable fleet snapshot.
	var out bytes.Buffer
	if err := run([]string{"-watch", dir, "-json"}, &out); err != nil {
		t.Fatalf("-watch -json: %v", err)
	}
	var fl sidecar.Fleet
	if err := json.Unmarshal(out.Bytes(), &fl); err != nil {
		t.Fatalf("bad fleet JSON: %v\n%s", err, out.String())
	}
	if fl.State != "complete" || len(fl.Shards) != 2 ||
		fl.TrialsTotal != 40 || fl.TrialsMerged != 40 {
		t.Fatalf("fleet = %+v", fl)
	}

	// The text monitor exits on its own once the fleet is terminal.
	out.Reset()
	if err := run([]string{"-watch", dir, "-watch-interval", "10ms"}, &out); err != nil {
		t.Fatalf("-watch: %v", err)
	}
	if s := out.String(); !strings.Contains(s, "fleet complete") || !strings.Contains(s, "1/2") {
		t.Errorf("monitor output missing fleet summary or shard line:\n%s", s)
	}
}

// TestWatchReportsFailedShards: a failed sidecar makes one-shot -watch
// -json exit nonzero so fleet drivers notice without parsing.
func TestWatchReportsFailedShards(t *testing.T) {
	dir := t.TempDir()
	w := sidecar.NewWriter(filepath.Join(dir, "bad.progress"), sidecar.Meta{
		RunID: "deadbeef", Label: "D4/daly", Shard: 0, Of: 1,
	})
	w.Update(sim.ProgressUpdate{
		First: 0, Limit: 40, Merged: 12, Total: 40,
		State: sim.RunStateFailed, Final: true, Err: errors.New("boom"),
	})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	err := run([]string{"-watch", dir, "-json"}, &out)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("want failed-shard error, got %v", err)
	}
	var fl sidecar.Fleet
	if err := json.Unmarshal(out.Bytes(), &fl); err != nil {
		t.Fatalf("bad fleet JSON: %v\n%s", err, out.String())
	}
	if fl.State != "failed" || fl.Failed != 1 {
		t.Fatalf("fleet = %+v", fl)
	}
}
