//go:build linux

package main

import (
	"io"
	"os"
	"os/exec"
	"strconv"
	"syscall"
	"testing"
)

// rssScenario is a deliberately event-light campaign (long optimal
// interval, rare failures) so a million trials finish in seconds and
// peak memory is dominated by the result path under test, not the
// engine.
var rssScenario = []string{
	"-mtbf", "200", "-tb", "600", "-probs", "1", "-times", "0.5",
	"-techniques", "daly", "-stream",
}

// TestStreamRSSChild is the helper process for TestStreamConstantMemory:
// it runs the streaming campaign in-process so the parent can read the
// child's peak RSS from its rusage.
func TestStreamRSSChild(t *testing.T) {
	trials := os.Getenv("MLCKPT_RSS_TRIALS")
	if trials == "" {
		t.Skip("helper process for TestStreamConstantMemory")
	}
	if err := run(append(rssScenario, "-trials", trials), io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestStreamConstantMemory is the O(1)-memory acceptance gate for the
// streaming sink: peak RSS at 10^6 trials must stay within a fixed
// budget of peak RSS at 10^4 trials. The exact path grows by hundreds
// of MiB over the same span (per-trial slices); the stream path keeps
// fixed-size sketches and counters per worker. Run via
// `./check.sh stream` (it sets MLCKPT_RSS_GUARD=1); results are
// recorded in BENCH_stream.json.
func TestStreamConstantMemory(t *testing.T) {
	if os.Getenv("MLCKPT_RSS_GUARD") == "" {
		t.Skip("set MLCKPT_RSS_GUARD=1 (./check.sh stream) to run the max-RSS guard")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	maxRSS := func(trials int) int64 {
		cmd := exec.Command(exe, "-test.run", "^TestStreamRSSChild$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			"MLCKPT_RSS_TRIALS="+strconv.Itoa(trials),
			"MLCKPT_RSS_GUARD=") // never recurse into the guard
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("child (%d trials): %v\n%s", trials, err, out)
		}
		ru, ok := cmd.ProcessState.SysUsage().(*syscall.Rusage)
		if !ok {
			t.Fatal("no rusage for child process")
		}
		return ru.Maxrss // KiB on Linux
	}
	small := maxRSS(10_000)
	large := maxRSS(1_000_000)
	t.Logf("peak RSS: %d KiB at 1e4 trials, %d KiB at 1e6 trials (delta %+d KiB)",
		small, large, large-small)
	// 100x the trials may cost at most 32 MiB of extra peak RSS — noise
	// headroom for the runtime, far below the exact path's O(trials)
	// growth (~100 B/trial ≈ 100 MiB at 1e6).
	if large > small+32*1024 {
		t.Errorf("streaming sink is not constant-memory: %d KiB -> %d KiB", small, large)
	}
}
