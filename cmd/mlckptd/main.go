// Command mlckptd is the optimization-as-a-service daemon: a
// long-running HTTP/JSON server answering "optimal plan for this
// system under this technique" and "predicted/simulated makespan for
// this plan" at production request rates.
//
// Usage:
//
//	mlckptd [flags]
//
// Endpoints (all POST, JSON bodies — see the README "Serving" section
// for schemas):
//
//	/v1/plan      optimal plan for system×technique×grid
//	/v1/predict   model prediction for a given plan
//	/v1/simulate  campaign-backed estimate with CI (stream:true for
//	              chunked NDJSON progress)
//	/v1/batch     many plan requests in one call
//
// plus the telemetry surface on the same listener: /metrics, /snapshot,
// /healthz, /readyz, and pprof.
//
// Identical requests are cached (LRU+TTL) and coalesced, so a
// thundering herd of identical requests costs exactly one sweep; the
// bounded compute queue answers 429 + Retry-After when saturated.
// SIGTERM/SIGINT drains gracefully: in-flight requests complete, new
// ones are rejected, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/sidecar"
	"repro/internal/service"

	_ "repro/internal/model/benoit"
	_ "repro/internal/model/daly"
	_ "repro/internal/model/dauwe"
	_ "repro/internal/model/di"
	_ "repro/internal/model/moody"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mlckptd:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mlckptd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "address to serve on")
	workers := fs.Int("workers", 0, "intra-job parallelism for sweeps and campaigns (0 = GOMAXPROCS)")
	slots := fs.Int("slots", 1, "jobs computed concurrently (each job is itself parallel)")
	queue := fs.Int("queue", 64, "bounded job queue; beyond it requests get 429 + Retry-After")
	cacheSize := fs.Int("cache-size", 1024, "response cache capacity (entries)")
	cacheTTL := fs.Duration("cache-ttl", 15*time.Minute, "response cache TTL")
	timeout := fs.Duration("timeout", 60*time.Second, "default per-request compute deadline")
	maxTrials := fs.Int("max-trials", 200000, "largest /v1/simulate campaign accepted")
	maxBatch := fs.Int("max-batch", 64, "largest /v1/batch fan-out accepted")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
	logJSON := fs.Bool("log-json", false, "emit structured JSON request/lifecycle events to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *slots < 1 || *queue < 1 {
		return errors.New("-slots and -queue must be >= 1")
	}
	if *cacheSize < 1 {
		return errors.New("-cache-size must be >= 1")
	}

	var events *obs.EventLog
	if *logJSON {
		runID := sidecar.ConfigDigest("mlckptd", *listen,
			strconv.Itoa(os.Getpid()), strconv.FormatInt(time.Now().UnixNano(), 10))
		events = obs.NewEventLog(os.Stderr, runID)
	}

	srv := service.New(service.Config{
		Workers:   *workers,
		Slots:     *slots,
		Queue:     *queue,
		CacheSize: *cacheSize,
		CacheTTL:  *cacheTTL,
		Timeout:   *timeout,
		MaxTrials: *maxTrials,
		MaxBatch:  *maxBatch,
		Events:    events,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "mlckptd: serving on http://%s\n", ln.Addr())
	events.Event("serve_start", "addr", ln.Addr().String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "mlckptd: draining")

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	srv.BeginDrain() // flip /readyz and reject new API work first
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		return err
	}
	events.Event("serve_stop")
	fmt.Fprintln(stdout, "mlckptd: stopped")
	return nil
}
