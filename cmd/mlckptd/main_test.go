package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer lets the test read run()'s stdout while the server
// goroutine is still writing to it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}, "not defined"},
		{"positional args", []string{"extra"}, "unexpected arguments"},
		{"zero slots", []string{"-slots", "0"}, "-slots"},
		{"zero queue", []string{"-queue", "0"}, "-queue"},
		{"zero cache", []string{"-cache-size", "0"}, "-cache-size"},
		{"bad listen", []string{"-listen", "999.999.999.999:0"}, "listen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard)
			if err == nil {
				t.Fatalf("run(%v) accepted bad flags", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunServeAndShutdown boots the daemon on an ephemeral port,
// serves real requests through it, then delivers SIGTERM and requires
// a clean drain: the lifecycle a process supervisor exercises.
func TestRunServeAndShutdown(t *testing.T) {
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-drain-timeout", "10s"}, &out)
	}()

	// Wait for the startup line and extract the bound address.
	addrRE := regexp.MustCompile(`serving on (http://[^\s]+)`)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before serving: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no serving line within 10s; output %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The telemetry surface and the API both answer on the one listener.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", resp.StatusCode)
	}

	body := strings.NewReader(`{"system":"D4","technique":"daly"}`)
	resp, err = http.Post(base+"/v1/plan", "application/json", body)
	if err != nil {
		t.Fatalf("POST /v1/plan: %v", err)
	}
	planBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/plan = %d: %s", resp.StatusCode, planBody)
	}
	if !strings.Contains(string(planBody), `"plan"`) {
		t.Fatalf("plan response missing plan: %s", planBody)
	}

	// Supervisor sends SIGTERM; the daemon must drain and exit nil.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within 15s of SIGTERM")
	}
	got := out.String()
	for _, want := range []string{"draining", "stopped"} {
		if !strings.Contains(got, want) {
			t.Errorf("output %q missing %q", got, want)
		}
	}
}
