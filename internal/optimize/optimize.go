// Package optimize implements the checkpoint-interval search of the
// paper's Section III-C: a bounded brute-force sweep over the decision
// variables (τ0, N_1..N_{ℓ-1}, and — for the Section IV-F study — the
// subset of levels a plan uses), evaluated in parallel across worker
// goroutines, with an optional golden-section refinement of τ0 around the
// best grid point.
package optimize

import (
	"errors"
	"math"
	"runtime"
	"sync"

	"repro/internal/pattern"
	"repro/internal/system"
)

// Objective evaluates a candidate plan and returns its expected execution
// time in minutes. ok=false rejects the candidate (invalid or out of the
// model's domain). Objectives must be safe for concurrent use.
type Objective func(plan pattern.Plan) (expectedTime float64, ok bool)

// Space bounds the brute-force sweep.
type Space struct {
	// Tau0 holds the candidate computation intervals in minutes.
	Tau0 []float64
	// CountVals holds the candidate values for each N_i.
	CountVals []int
	// LevelSets holds the candidate used-level subsets (ascending,
	// 1-based system levels).
	LevelSets [][]int
	// MaxPeriodIntervals skips patterns whose top-level period spans
	// more than this many τ0 intervals (0 = unbounded). Models with
	// per-segment cost (the Markov chain) use it to bound work.
	MaxPeriodIntervals int
	// Workers is the sweep parallelism; 0 means GOMAXPROCS.
	Workers int
	// RefineTau0 enables golden-section refinement of τ0 around the
	// best grid point, holding the level set and counts fixed.
	RefineTau0 bool
}

// Result is the outcome of a sweep.
type Result struct {
	Plan         pattern.Plan
	ExpectedTime float64
	Evaluated    int // number of objective evaluations
}

// ErrNoFeasiblePlan is returned when every candidate was rejected.
var ErrNoFeasiblePlan = errors.New("optimize: no feasible plan in search space")

// Sweep minimizes the objective over the space.
func Sweep(space Space, objective Objective) (Result, error) {
	if len(space.Tau0) == 0 || len(space.LevelSets) == 0 {
		return Result{}, errors.New("optimize: empty search space")
	}
	workers := space.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(space.Tau0) {
		workers = len(space.Tau0)
	}

	type best struct {
		plan  pattern.Plan
		time  float64
		evals int
		found bool
	}
	results := make([]best, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := best{time: math.Inf(1)}
			for ti := w; ti < len(space.Tau0); ti += workers {
				tau0 := space.Tau0[ti]
				if !(tau0 > 0) {
					continue
				}
				for _, levels := range space.LevelSets {
					forEachCounts(len(levels)-1, space.CountVals, func(counts []int) {
						intervals := 1
						for _, c := range counts {
							intervals *= c + 1
						}
						if space.MaxPeriodIntervals > 0 && intervals > space.MaxPeriodIntervals {
							return
						}
						plan := pattern.Plan{
							Tau0:   tau0,
							Counts: append([]int(nil), counts...),
							Levels: levels,
						}
						b.evals++
						t, ok := objective(plan)
						if ok && t < b.time && !math.IsNaN(t) {
							b.time = t
							b.plan = plan
							b.found = true
						}
					})
				}
			}
			results[w] = b
		}(w)
	}
	wg.Wait()

	out := Result{ExpectedTime: math.Inf(1)}
	found := false
	for _, b := range results {
		out.Evaluated += b.evals
		if b.found && b.time < out.ExpectedTime {
			out.ExpectedTime = b.time
			out.Plan = b.plan
			found = true
		}
	}
	if !found {
		return Result{Evaluated: out.Evaluated}, ErrNoFeasiblePlan
	}
	if space.RefineTau0 {
		refined, t := refineTau0(out.Plan, out.ExpectedTime, space.Tau0, objective)
		out.Plan, out.ExpectedTime = refined, t
	}
	return out, nil
}

// forEachCounts enumerates all count vectors of the given length over the
// candidate values. A zero-length vector yields one empty enumeration.
func forEachCounts(n int, vals []int, fn func([]int)) {
	if n <= 0 {
		fn(nil)
		return
	}
	if len(vals) == 0 {
		return
	}
	counts := make([]int, n)
	idx := make([]int, n)
	for {
		for i := range counts {
			counts[i] = vals[idx[i]]
		}
		fn(counts)
		// Odometer increment.
		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(vals) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// refineTau0 golden-section-searches τ0 between the grid neighbors of the
// best point, keeping levels and counts fixed. Falls back to the grid
// optimum if refinement finds nothing better.
func refineTau0(p pattern.Plan, bestT float64, grid []float64, objective Objective) (pattern.Plan, float64) {
	lo, hi := neighbors(grid, p.Tau0)
	eval := func(tau float64) float64 {
		q := p
		q.Tau0 = tau
		t, ok := objective(q)
		if !ok || math.IsNaN(t) {
			return math.Inf(1)
		}
		return t
	}
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := eval(x1), eval(x2)
	for i := 0; i < 60 && b-a > 1e-9*(1+b); i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = eval(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = eval(x2)
		}
	}
	tau := (a + b) / 2
	if t := eval(tau); t < bestT {
		q := p
		q.Tau0 = tau
		return q, t
	}
	return p, bestT
}

// neighbors returns the grid values bracketing x (or x itself scaled when
// x sits at an end of the grid).
func neighbors(grid []float64, x float64) (lo, hi float64) {
	lo, hi = x/2, x*2
	for _, g := range grid {
		if g < x && g > lo {
			lo = g
		}
		if g > x && g < hi {
			hi = g
		}
	}
	return lo, hi
}

// Tau0Grid builds a log-spaced τ0 candidate grid spanning (0, T_B): from
// a small fraction of the cheapest checkpoint (or minFrac·T_B, whichever
// is larger) up to the baseline time.
func Tau0Grid(sys *system.System, points int) []float64 {
	if points < 2 {
		points = 2
	}
	minCkpt := math.Inf(1)
	for _, l := range sys.Levels {
		if l.Checkpoint < minCkpt {
			minCkpt = l.Checkpoint
		}
	}
	lo := minCkpt / 8
	if lo < sys.BaselineTime*1e-6 {
		lo = sys.BaselineTime * 1e-6
	}
	hi := sys.BaselineTime
	if lo >= hi {
		lo = hi / 1024
	}
	out := make([]float64, points)
	ratio := math.Pow(hi/lo, 1/float64(points-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[points-1] = hi
	return out
}

// DefaultCounts is the shared N_i candidate set: dense for small values
// where the optimum usually lies, geometric above.
func DefaultCounts() []int {
	return []int{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64}
}

// PrefixLevelSets returns the level subsets {1..ℓ} for ℓ = 1..L — the
// level-exclusion family of the paper's Section IV-F (a short
// application may be better off skipping the costly top levels).
func PrefixLevelSets(numLevels int) [][]int {
	out := make([][]int, numLevels)
	for l := 1; l <= numLevels; l++ {
		out[l-1] = pattern.LowestLevels(l)
	}
	return out
}
