// Package optimize implements the checkpoint-interval search of the
// paper's Section III-C: a bounded brute-force sweep over the decision
// variables (τ0, N_1..N_{ℓ-1}, and — for the Section IV-F study — the
// subset of levels a plan uses), evaluated in parallel across worker
// goroutines, with an optional golden-section refinement of τ0 around the
// best grid point.
//
// The sweep is deterministic by construction: workers pull (τ0 ×
// level-set) cells from a chunked atomic work queue (so load balances
// dynamically — small-τ0 cells can cost far more under the Markov
// objective), each keeps a running best under a total candidate order
// (expected time, then τ0, then levels, then counts, lexicographically),
// and the per-worker bests are reduced under the same order. The result
// is therefore byte-identical for any worker count. The hot path is
// allocation-free: count vectors are enumerated into per-worker scratch
// buffers that are only copied when a candidate becomes a worker's new
// best.
package optimize

import (
	"context"
	"errors"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/system"
)

// Objective evaluates a candidate plan and returns its expected execution
// time in minutes. ok=false rejects the candidate (invalid or out of the
// model's domain). The plan's Counts slice is a scratch buffer reused
// between calls — an objective that retains it past the call must copy
// it. Objectives passed to Sweep must be safe for concurrent use;
// objectives built by an ObjectiveFactory are goroutine-local and need
// not be.
type Objective func(plan pattern.Plan) (expectedTime float64, ok bool)

// ObjectiveFactory builds one Objective per worker goroutine (plus one
// for the τ0 refinement stage). Factories let objectives keep
// goroutine-local scratch — memo tables, reusable solvers — without
// locks, mirroring the observer-shard idiom of sim.Campaign. metrics is
// the worker's private telemetry shard (never nil; discarded unless
// Space.Metrics is set), so objectives can count cache hits and misses.
type ObjectiveFactory func(worker int, metrics *obs.Registry) Objective

// Space bounds the brute-force sweep.
type Space struct {
	// Tau0 holds the candidate computation intervals in minutes.
	Tau0 []float64
	// CountVals holds the candidate values for each N_i.
	CountVals []int
	// LevelSets holds the candidate used-level subsets (ascending,
	// 1-based system levels).
	LevelSets [][]int
	// MaxPeriodIntervals skips patterns whose top-level period spans
	// more than this many τ0 intervals (0 = unbounded). Models with
	// per-segment cost (the Markov chain) use it to bound work.
	MaxPeriodIntervals int
	// Workers is the sweep parallelism; 0 means GOMAXPROCS.
	Workers int
	// RefineTau0 enables golden-section refinement of τ0 around the
	// best grid point, holding the level set and counts fixed. The
	// refinement bracket is clamped to the grid span, so refined τ0
	// never escapes [Tau0[first], Tau0[last]].
	RefineTau0 bool
	// LowerBound, when non-nil, is an admissible lower bound on the
	// objective: LowerBound(plan) must never exceed the objective's
	// value for a feasible plan. Candidates whose bound strictly
	// exceeds the best time found so far (shared across workers) are
	// skipped without evaluating the objective. Because the skip is
	// strict, pruning cannot change the sweep's result — only the
	// number of objective calls (reported via Metrics, not Result).
	LowerBound func(plan pattern.Plan) float64
	// Metrics, when non-nil, receives the sweep's telemetry counters
	// (opt_candidates_total, opt_evaluations_total, opt_pruned_total,
	// opt_refine_evaluations_total, plus whatever the objectives
	// record): workers count into private shards that are merged here
	// once after the sweep. Sharing one sink across concurrent sweeps
	// is not supported.
	Metrics *obs.Registry
	// Spans, when non-nil, receives the sweep's span tree: each worker
	// records a "sweep" span with one "chunk" child per work-queue grab,
	// and the τ0 refinement stage records "refine". Worker shards are
	// goroutine-local tracers merged here once after the sweep; the same
	// single-sweep-per-sink rule as Metrics applies.
	Spans *obs.Tracer
	// Context, when non-nil, cancels the sweep: workers check it at
	// every work-queue grab and at every cell boundary within a chunk,
	// so a canceled sweep stops after at most one in-flight cell per
	// worker. A canceled sweep returns ctx.Err() and a zero Result —
	// callers must not treat partial state as an answer (and in
	// particular must not cache it). Metrics and Spans recorded before
	// the cancellation point are still merged, so telemetry accounts
	// for the aborted work.
	Context context.Context
}

// Result is the outcome of a sweep.
type Result struct {
	Plan         pattern.Plan
	ExpectedTime float64
	// Evaluated counts the candidates considered (those passing the
	// static τ0 and period-length filters). It is a pure function of
	// the Space — candidates served by an objective's memo or skipped
	// by the lower-bound prune still count, so Result is identical for
	// every worker count; the actual objective-call split is reported
	// via Metrics.
	Evaluated int
}

// ErrNoFeasiblePlan is returned when every candidate was rejected.
var ErrNoFeasiblePlan = errors.New("optimize: no feasible plan in search space")

// planLess orders plans lexicographically on (τ0, levels, counts) — the
// deterministic tie-break among candidates with equal expected times.
func planLess(a, b pattern.Plan) bool {
	if a.Tau0 != b.Tau0 {
		return a.Tau0 < b.Tau0
	}
	if c := slices.Compare(a.Levels, b.Levels); c != 0 {
		return c < 0
	}
	return slices.Compare(a.Counts, b.Counts) < 0
}

// atomicMin is a lock-free shared minimum over float64s, used as the
// cross-worker pruning bound.
type atomicMin struct {
	bits atomic.Uint64
}

func (m *atomicMin) init(v float64) { m.bits.Store(math.Float64bits(v)) }

func (m *atomicMin) load() float64 { return math.Float64frombits(m.bits.Load()) }

func (m *atomicMin) lower(v float64) {
	for {
		old := m.bits.Load()
		if v >= math.Float64frombits(old) {
			return
		}
		if m.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// countScratch enumerates count vectors into reusable buffers.
type countScratch struct {
	counts, idx []int
}

// forEach enumerates all count vectors of length n over vals in odometer
// order (last index fastest). A zero-length vector yields one empty
// enumeration. The slice passed to fn is reused between calls.
func (s *countScratch) forEach(n int, vals []int, fn func([]int)) {
	if n <= 0 {
		fn(nil)
		return
	}
	if len(vals) == 0 {
		return
	}
	if cap(s.counts) < n {
		s.counts = make([]int, n)
		s.idx = make([]int, n)
	}
	counts, idx := s.counts[:n], s.idx[:n]
	for i := range idx {
		idx[i] = 0
	}
	for {
		for i := range counts {
			counts[i] = vals[idx[i]]
		}
		fn(counts)
		// Odometer increment.
		i := n - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(vals) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// forEachCounts enumerates all count vectors of the given length over the
// candidate values. A zero-length vector yields one empty enumeration.
// The slice passed to fn is reused between calls.
func forEachCounts(n int, vals []int, fn func([]int)) {
	var s countScratch
	s.forEach(n, vals, fn)
}

// sweepWorker is the per-goroutine sweep state: the worker's running
// best under the total candidate order, its scratch buffers, and its
// metrics shard. Everything here is touched by exactly one goroutine.
type sweepWorker struct {
	space   *Space
	obj     Objective
	scratch countScratch
	bound   *atomicMin

	// Current cell.
	tau0   float64
	levels []int

	// Running best.
	plan  pattern.Plan
	time  float64
	found bool

	candidates int // deterministic: candidates considered

	evals, pruned *obs.Counter
}

// candidate filters, optionally prunes, and evaluates one count vector
// of the current cell. counts is scratch — copied only on improvement.
func (w *sweepWorker) candidate(counts []int) {
	if max := w.space.MaxPeriodIntervals; max > 0 {
		intervals := 1
		for _, c := range counts {
			intervals *= c + 1
		}
		if intervals > max {
			return
		}
	}
	w.candidates++
	plan := pattern.Plan{Tau0: w.tau0, Counts: counts, Levels: w.levels}
	if lb := w.space.LowerBound; lb != nil {
		// Strict comparison: a candidate tying the current best is
		// still evaluated, so the (τ0, levels, counts) tie-break sees
		// it and pruning cannot change the result.
		if lb(plan) > w.bound.load() {
			w.pruned.Inc()
			return
		}
	}
	w.evals.Inc()
	t, ok := w.obj(plan)
	if !ok || math.IsNaN(t) {
		return
	}
	if t > w.time || math.IsInf(t, 1) {
		return
	}
	if t == w.time && (!w.found || !planLess(plan, w.plan)) {
		return
	}
	w.time = t
	w.found = true
	w.plan = pattern.Plan{
		Tau0:   plan.Tau0,
		Counts: append(w.plan.Counts[:0], counts...),
		Levels: plan.Levels,
	}
	w.bound.lower(t)
}

// Sweep minimizes the objective over the space. The objective must be
// safe for concurrent use; use SweepObjectives to give each worker its
// own.
func Sweep(space Space, objective Objective) (Result, error) {
	return SweepObjectives(space, func(int, *obs.Registry) Objective { return objective })
}

// SweepObjectives minimizes over the space with one objective per worker
// goroutine, built by the factory. The result is independent of
// Space.Workers: cells are scheduled dynamically, but candidates are
// reduced under a total order (expected time, then τ0, then levels, then
// counts).
func SweepObjectives(space Space, factory ObjectiveFactory) (Result, error) {
	if len(space.Tau0) == 0 || len(space.LevelSets) == 0 {
		return Result{}, errors.New("optimize: empty search space")
	}
	cells := len(space.Tau0) * len(space.LevelSets)
	workers := space.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cells {
		workers = cells
	}
	// Chunked atomic work queue: each grab takes `chunk` consecutive
	// cells. Cells are expensive (a full count enumeration each), so
	// small chunks give the best balance; chunks only grow when the
	// cell count dwarfs the worker count.
	chunk := cells / (workers * 16)
	if chunk < 1 {
		chunk = 1
	}

	var next atomic.Int64
	var bound atomicMin
	bound.init(math.Inf(1))

	ws := make([]*sweepWorker, workers)
	regs := make([]*obs.Registry, workers+1) // last shard: refinement
	trs := make([]*obs.Tracer, workers+1)    // nil tracers no-op when Spans is unset
	for i := range regs {
		regs[i] = obs.NewRegistry()
		if space.Spans != nil {
			trs[i] = obs.NewTracer()
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reg := regs[w]
			sw := &sweepWorker{
				space:  &space,
				obj:    factory(w, reg),
				bound:  &bound,
				time:   math.Inf(1),
				evals:  reg.Counter("opt_evaluations_total"),
				pruned: reg.Counter("opt_pruned_total"),
			}
			ws[w] = sw
			process := sw.candidate
			sweepSpan := trs[w].Start("sweep")
			for canceled(space.Context) == nil {
				start := int(next.Add(int64(chunk))) - chunk
				if start >= cells {
					break
				}
				end := start + chunk
				if end > cells {
					end = cells
				}
				chunkSpan := trs[w].Start("chunk")
				for c := start; c < end; c++ {
					if canceled(space.Context) != nil {
						break
					}
					// τ0-major order puts the expensive small-τ0
					// cells at the front of the queue.
					tau0 := space.Tau0[c/len(space.LevelSets)]
					if !(tau0 > 0) {
						continue
					}
					sw.tau0 = tau0
					sw.levels = space.LevelSets[c%len(space.LevelSets)]
					sw.scratch.forEach(len(sw.levels)-1, space.CountVals, process)
				}
				chunkSpan.End()
			}
			sweepSpan.End()
			reg.Counter("opt_candidates_total").Add(uint64(sw.candidates))
		}(w)
	}
	wg.Wait()
	if err := canceled(space.Context); err != nil {
		// Abandon the partial reduction: a canceled sweep has no
		// answer. Telemetry for the work actually done still merges.
		if merr := mergeMetrics(space.Metrics, regs); merr != nil {
			return Result{}, merr
		}
		mergeSpans(space.Spans, trs)
		return Result{}, err
	}

	out := Result{ExpectedTime: math.Inf(1)}
	found := false
	for _, sw := range ws {
		out.Evaluated += sw.candidates
		if !sw.found {
			continue
		}
		if !found || sw.time < out.ExpectedTime ||
			(sw.time == out.ExpectedTime && planLess(sw.plan, out.Plan)) {
			out.ExpectedTime = sw.time
			out.Plan = sw.plan
			found = true
		}
	}
	if !found {
		if err := mergeMetrics(space.Metrics, regs); err != nil {
			return Result{}, err
		}
		mergeSpans(space.Spans, trs)
		return Result{Evaluated: out.Evaluated}, ErrNoFeasiblePlan
	}
	if space.RefineTau0 {
		reg := regs[workers]
		refineSpan := trs[workers].Start("refine")
		refined, t := refineTau0(out.Plan, out.ExpectedTime, space.Tau0,
			factory(workers, reg), reg.Counter("opt_refine_evaluations_total"))
		refineSpan.End()
		out.Plan, out.ExpectedTime = refined, t
	}
	if err := mergeMetrics(space.Metrics, regs); err != nil {
		return Result{}, err
	}
	mergeSpans(space.Spans, trs)
	return out, nil
}

// canceled returns the context's error (nil contexts never cancel).
func canceled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// mergeMetrics folds the per-worker shards into the sink, if any.
func mergeMetrics(sink *obs.Registry, regs []*obs.Registry) error {
	if sink == nil {
		return nil
	}
	for _, reg := range regs {
		if err := sink.Merge(reg); err != nil {
			return err
		}
	}
	return nil
}

// mergeSpans folds the per-worker tracer shards into the sink, if any.
func mergeSpans(sink *obs.Tracer, trs []*obs.Tracer) {
	if sink == nil {
		return
	}
	for _, tr := range trs {
		sink.Merge(tr)
	}
}

// refineTau0 golden-section-searches τ0 between the grid neighbors of the
// best point, keeping levels and counts fixed. The bracket is clamped to
// the grid span. Falls back to the grid optimum if refinement finds
// nothing better.
func refineTau0(p pattern.Plan, bestT float64, grid []float64, objective Objective, evals *obs.Counter) (pattern.Plan, float64) {
	lo, hi := neighbors(grid, p.Tau0)
	eval := func(tau float64) float64 {
		evals.Inc()
		q := p
		q.Tau0 = tau
		t, ok := objective(q)
		if !ok || math.IsNaN(t) {
			return math.Inf(1)
		}
		return t
	}
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := eval(x1), eval(x2)
	for i := 0; i < 60 && b-a > 1e-9*(1+b); i++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = eval(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = eval(x2)
		}
	}
	tau := (a + b) / 2
	if t := eval(tau); t < bestT {
		q := p
		q.Tau0 = tau
		return q, t
	}
	return p, bestT
}

// neighbors returns the grid values bracketing x, clamped to the grid
// span: when x is the smallest (largest) grid value the bracket starts
// (ends) at x itself, so refinement can never probe τ0 outside the
// domain the grid was built for (e.g. beyond the system's baseline
// time).
func neighbors(grid []float64, x float64) (lo, hi float64) {
	lo, hi = x, x
	for _, g := range grid {
		if g < x && (lo == x || g > lo) {
			lo = g
		}
		if g > x && (hi == x || g < hi) {
			hi = g
		}
	}
	return lo, hi
}

// Tau0Grid builds a log-spaced τ0 candidate grid spanning (0, T_B): from
// a small fraction of the cheapest checkpoint (or minFrac·T_B, whichever
// is larger) up to the baseline time.
func Tau0Grid(sys *system.System, points int) []float64 {
	if points < 2 {
		points = 2
	}
	minCkpt := math.Inf(1)
	for _, l := range sys.Levels {
		if l.Checkpoint < minCkpt {
			minCkpt = l.Checkpoint
		}
	}
	lo := minCkpt / 8
	if lo < sys.BaselineTime*1e-6 {
		lo = sys.BaselineTime * 1e-6
	}
	hi := sys.BaselineTime
	if lo >= hi {
		lo = hi / 1024
	}
	out := make([]float64, points)
	ratio := math.Pow(hi/lo, 1/float64(points-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[points-1] = hi
	return out
}

// DefaultCounts is the shared N_i candidate set: dense for small values
// where the optimum usually lies, geometric above.
func DefaultCounts() []int {
	return []int{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 48, 64}
}

// PrefixLevelSets returns the level subsets {1..ℓ} for ℓ = 1..L — the
// level-exclusion family of the paper's Section IV-F (a short
// application may be better off skipping the costly top levels).
func PrefixLevelSets(numLevels int) [][]int {
	out := make([][]int, numLevels)
	for l := 1; l <= numLevels; l++ {
		out[l-1] = pattern.LowestLevels(l)
	}
	return out
}
