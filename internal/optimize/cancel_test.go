package optimize

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pattern"
)

// grid returns n evenly spaced τ0 candidates.
func grid(n int) []float64 {
	g := make([]float64, n)
	for i := range g {
		g[i] = 1 + float64(i)
	}
	return g
}

func TestSweepCanceledMidway(t *testing.T) {
	// The objective blocks the sweep after a handful of evaluations,
	// then the context is canceled: the sweep must return ctx.Err()
	// with a zero Result promptly, not run the remaining cells.
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	started := make(chan struct{})
	var once atomic.Bool
	obj := func(p pattern.Plan) (float64, bool) {
		if evals.Add(1) == 8 && once.CompareAndSwap(false, true) {
			close(started) // enough cells in flight; trigger cancel
		}
		time.Sleep(100 * time.Microsecond)
		return p.Tau0, true
	}
	space := Space{
		Tau0:      grid(10000),
		LevelSets: [][]int{{1}},
		Workers:   4,
		Context:   ctx,
		Metrics:   obs.NewRegistry(),
	}
	go func() {
		<-started
		cancel()
	}()
	startT := time.Now()
	res, err := Sweep(space, obj)
	elapsed := time.Since(startT)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep error = %v, want context.Canceled", err)
	}
	if res.Plan.Tau0 != 0 || res.ExpectedTime != 0 || res.Evaluated != 0 {
		t.Errorf("canceled sweep returned non-zero Result %+v; partial state must not look like an answer", res)
	}
	// Workers stop at the next cell boundary: with 10k cells at 100µs
	// each a full sweep would take ~1s even at 4 workers; cancellation
	// must cut that far down. Generous bound for loaded CI machines.
	if elapsed > 2*time.Second {
		t.Errorf("canceled sweep took %v, want prompt return", elapsed)
	}
	if n := evals.Load(); n == 0 || n >= 10000 {
		t.Errorf("evaluations = %d, want some but not all cells", n)
	}
	// Telemetry for the completed work still merges.
	snap := space.Metrics.Snapshot()
	var saw bool
	for _, m := range snap.Counters {
		if m.Name == "opt_evaluations_total" && m.Value > 0 {
			saw = true
		}
	}
	if !saw {
		t.Errorf("canceled sweep merged no opt_evaluations_total telemetry: %+v", snap.Counters)
	}
}

func TestSweepPreCanceledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var evals atomic.Int64
	obj := func(p pattern.Plan) (float64, bool) {
		evals.Add(1)
		return p.Tau0, true
	}
	space := Space{Tau0: grid(100), LevelSets: [][]int{{1}}, Workers: 2, Context: ctx}
	if _, err := Sweep(space, obj); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep error = %v, want context.Canceled", err)
	}
	if n := evals.Load(); n != 0 {
		t.Errorf("pre-canceled sweep evaluated %d cells, want 0", n)
	}
}

func TestSweepNilContextUnaffected(t *testing.T) {
	obj := func(p pattern.Plan) (float64, bool) { return 1 + (p.Tau0-3)*(p.Tau0-3), true }
	space := Space{Tau0: []float64{1, 2, 3, 4, 5}, LevelSets: [][]int{{1}}}
	res, err := Sweep(space, obj)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if res.Plan.Tau0 != 3 {
		t.Errorf("best τ0 = %v, want 3", res.Plan.Tau0)
	}
}
