package optimize

import (
	"math"
	"sort"
	"testing"

	"repro/internal/pattern"
	"repro/internal/system"
)

func testSys() *system.System {
	return &system.System{
		Name:         "opt",
		MTBF:         50,
		BaselineTime: 500,
		Levels: []system.Level{
			{Checkpoint: 0.5, Restart: 0.5, SeverityProb: 0.8},
			{Checkpoint: 4, Restart: 4, SeverityProb: 0.2},
		},
	}
}

func TestSweepFindsAnalyticOptimum(t *testing.T) {
	// Objective with a known unique optimum: quadratic bowl in τ0
	// centered at 3.0, preferring counts [2] and levels [1 2].
	obj := func(p pattern.Plan) (float64, bool) {
		v := (p.Tau0 - 3) * (p.Tau0 - 3)
		if len(p.Counts) == 1 {
			d := float64(p.Counts[0] - 2)
			v += d * d
		} else {
			v += 100
		}
		return 1 + v, true
	}
	space := Space{
		Tau0:      []float64{0.5, 1, 2, 3, 4, 8},
		CountVals: []int{0, 1, 2, 3, 4},
		LevelSets: [][]int{{1}, {1, 2}},
		Workers:   3,
	}
	res, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Tau0 != 3 || len(res.Plan.Counts) != 1 || res.Plan.Counts[0] != 2 {
		t.Fatalf("best plan = %v", res.Plan)
	}
	if res.ExpectedTime != 1 {
		t.Fatalf("best value = %v", res.ExpectedTime)
	}
	// Evaluations: levels{1}: 6 τ0 × 1 = 6; levels{1,2}: 6 τ0 × 5 = 30.
	if res.Evaluated != 36 {
		t.Fatalf("evaluated = %d, want 36", res.Evaluated)
	}
}

func TestSweepRefinement(t *testing.T) {
	// Continuous optimum at τ0 = e (between grid points 2 and 3).
	obj := func(p pattern.Plan) (float64, bool) {
		return 1 + (p.Tau0-math.E)*(p.Tau0-math.E), true
	}
	space := Space{
		Tau0:       []float64{1, 2, 3, 4},
		LevelSets:  [][]int{{1}},
		RefineTau0: true,
	}
	res, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Plan.Tau0-math.E) > 1e-6 {
		t.Fatalf("refined τ0 = %v, want e", res.Plan.Tau0)
	}
}

func TestSweepAllRejected(t *testing.T) {
	obj := func(pattern.Plan) (float64, bool) { return 0, false }
	space := Space{Tau0: []float64{1, 2}, LevelSets: [][]int{{1}}}
	_, err := Sweep(space, obj)
	if err != ErrNoFeasiblePlan {
		t.Fatalf("err = %v, want ErrNoFeasiblePlan", err)
	}
}

func TestSweepEmptySpace(t *testing.T) {
	obj := func(pattern.Plan) (float64, bool) { return 1, true }
	if _, err := Sweep(Space{}, obj); err == nil {
		t.Fatal("empty space accepted")
	}
	if _, err := Sweep(Space{Tau0: []float64{1}}, obj); err == nil {
		t.Fatal("no level sets accepted")
	}
}

func TestSweepRejectsNaNAndInf(t *testing.T) {
	obj := func(p pattern.Plan) (float64, bool) {
		if p.Tau0 == 1 {
			return math.NaN(), true
		}
		if p.Tau0 == 2 {
			return math.Inf(1), true
		}
		return 10, true
	}
	space := Space{Tau0: []float64{1, 2, 3}, LevelSets: [][]int{{1}}}
	res, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Tau0 != 3 {
		t.Fatalf("picked %v", res.Plan)
	}
}

func TestMaxPeriodIntervalsPrunes(t *testing.T) {
	var seen []int
	obj := func(p pattern.Plan) (float64, bool) {
		seen = append(seen, p.PeriodIntervals())
		return 1, true
	}
	space := Space{
		Tau0:               []float64{1},
		CountVals:          []int{0, 3, 9},
		LevelSets:          [][]int{{1, 2}},
		MaxPeriodIntervals: 5,
		Workers:            1,
	}
	if _, err := Sweep(space, obj); err != nil {
		t.Fatal(err)
	}
	sort.Ints(seen)
	// Periods: N+1 ∈ {1, 4, 10}; 10 pruned.
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 4 {
		t.Fatalf("seen periods %v", seen)
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	obj := func(p pattern.Plan) (float64, bool) {
		return p.Tau0 + float64(p.PeriodIntervals()), true
	}
	space := Space{
		Tau0:      Tau0Grid(testSys(), 16),
		CountVals: []int{0, 1, 2},
		LevelSets: PrefixLevelSets(2),
	}
	space.Workers = 1
	r1, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	space.Workers = 7
	r7, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExpectedTime != r7.ExpectedTime {
		t.Fatalf("worker count changed optimum: %v vs %v", r1.ExpectedTime, r7.ExpectedTime)
	}
	if r1.Evaluated != r7.Evaluated {
		t.Fatalf("worker count changed eval count: %d vs %d", r1.Evaluated, r7.Evaluated)
	}
}

func TestForEachCounts(t *testing.T) {
	var got [][]int
	forEachCounts(2, []int{0, 1}, func(c []int) {
		got = append(got, append([]int(nil), c...))
	})
	if len(got) != 4 {
		t.Fatalf("enumerated %d vectors, want 4", len(got))
	}
	want := [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("enumeration = %v", got)
		}
	}
	n := 0
	forEachCounts(0, []int{1, 2, 3}, func(c []int) {
		if len(c) != 0 {
			t.Fatal("zero-length vector should be empty")
		}
		n++
	})
	if n != 1 {
		t.Fatalf("zero-length enumeration ran %d times", n)
	}
	forEachCounts(2, nil, func([]int) { t.Fatal("no vals should not enumerate") })
}

func TestTau0Grid(t *testing.T) {
	sys := testSys()
	g := Tau0Grid(sys, 32)
	if len(g) != 32 {
		t.Fatalf("len = %d", len(g))
	}
	if g[len(g)-1] != sys.BaselineTime {
		t.Fatalf("grid must end at T_B: %v", g[len(g)-1])
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing at %d: %v", i, g[i-1:i+1])
		}
	}
	if g[0] <= 0 || g[0] > sys.Levels[0].Checkpoint {
		t.Fatalf("grid start %v implausible", g[0])
	}
	if got := Tau0Grid(sys, 1); len(got) != 2 {
		t.Fatalf("points floor failed: %d", len(got))
	}
}

func TestPrefixLevelSets(t *testing.T) {
	sets := PrefixLevelSets(3)
	if len(sets) != 3 {
		t.Fatalf("len = %d", len(sets))
	}
	if len(sets[0]) != 1 || sets[0][0] != 1 {
		t.Fatalf("sets[0] = %v", sets[0])
	}
	if len(sets[2]) != 3 || sets[2][2] != 3 {
		t.Fatalf("sets[2] = %v", sets[2])
	}
}

func TestNeighbors(t *testing.T) {
	grid := []float64{1, 2, 4, 8}
	lo, hi := neighbors(grid, 4)
	if lo != 2 || hi != 8 {
		t.Fatalf("neighbors(4) = %v,%v", lo, hi)
	}
	lo, hi = neighbors(grid, 1)
	if lo != 0.5 || hi != 2 {
		t.Fatalf("neighbors(1) = %v,%v", lo, hi)
	}
	lo, hi = neighbors(grid, 8)
	if lo != 4 || hi != 16 {
		t.Fatalf("neighbors(8) = %v,%v", lo, hi)
	}
}

func TestDefaultCountsSortedUnique(t *testing.T) {
	c := DefaultCounts()
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			t.Fatalf("counts not strictly increasing: %v", c)
		}
	}
	if c[0] != 0 {
		t.Fatal("counts must include 0 (no checkpoints of a level)")
	}
}
