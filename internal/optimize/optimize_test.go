package optimize

import (
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/system"
)

func testSys() *system.System {
	return &system.System{
		Name:         "opt",
		MTBF:         50,
		BaselineTime: 500,
		Levels: []system.Level{
			{Checkpoint: 0.5, Restart: 0.5, SeverityProb: 0.8},
			{Checkpoint: 4, Restart: 4, SeverityProb: 0.2},
		},
	}
}

func TestSweepFindsAnalyticOptimum(t *testing.T) {
	// Objective with a known unique optimum: quadratic bowl in τ0
	// centered at 3.0, preferring counts [2] and levels [1 2].
	obj := func(p pattern.Plan) (float64, bool) {
		v := (p.Tau0 - 3) * (p.Tau0 - 3)
		if len(p.Counts) == 1 {
			d := float64(p.Counts[0] - 2)
			v += d * d
		} else {
			v += 100
		}
		return 1 + v, true
	}
	space := Space{
		Tau0:      []float64{0.5, 1, 2, 3, 4, 8},
		CountVals: []int{0, 1, 2, 3, 4},
		LevelSets: [][]int{{1}, {1, 2}},
		Workers:   3,
	}
	res, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Tau0 != 3 || len(res.Plan.Counts) != 1 || res.Plan.Counts[0] != 2 {
		t.Fatalf("best plan = %v", res.Plan)
	}
	if res.ExpectedTime != 1 {
		t.Fatalf("best value = %v", res.ExpectedTime)
	}
	// Evaluations: levels{1}: 6 τ0 × 1 = 6; levels{1,2}: 6 τ0 × 5 = 30.
	if res.Evaluated != 36 {
		t.Fatalf("evaluated = %d, want 36", res.Evaluated)
	}
}

func TestSweepRefinement(t *testing.T) {
	// Continuous optimum at τ0 = e (between grid points 2 and 3).
	obj := func(p pattern.Plan) (float64, bool) {
		return 1 + (p.Tau0-math.E)*(p.Tau0-math.E), true
	}
	space := Space{
		Tau0:       []float64{1, 2, 3, 4},
		LevelSets:  [][]int{{1}},
		RefineTau0: true,
	}
	res, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Plan.Tau0-math.E) > 1e-6 {
		t.Fatalf("refined τ0 = %v, want e", res.Plan.Tau0)
	}
}

func TestSweepAllRejected(t *testing.T) {
	obj := func(pattern.Plan) (float64, bool) { return 0, false }
	space := Space{Tau0: []float64{1, 2}, LevelSets: [][]int{{1}}}
	_, err := Sweep(space, obj)
	if err != ErrNoFeasiblePlan {
		t.Fatalf("err = %v, want ErrNoFeasiblePlan", err)
	}
}

func TestSweepEmptySpace(t *testing.T) {
	obj := func(pattern.Plan) (float64, bool) { return 1, true }
	if _, err := Sweep(Space{}, obj); err == nil {
		t.Fatal("empty space accepted")
	}
	if _, err := Sweep(Space{Tau0: []float64{1}}, obj); err == nil {
		t.Fatal("no level sets accepted")
	}
}

func TestSweepRejectsNaNAndInf(t *testing.T) {
	obj := func(p pattern.Plan) (float64, bool) {
		if p.Tau0 == 1 {
			return math.NaN(), true
		}
		if p.Tau0 == 2 {
			return math.Inf(1), true
		}
		return 10, true
	}
	space := Space{Tau0: []float64{1, 2, 3}, LevelSets: [][]int{{1}}}
	res, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Tau0 != 3 {
		t.Fatalf("picked %v", res.Plan)
	}
}

func TestMaxPeriodIntervalsPrunes(t *testing.T) {
	var seen []int
	obj := func(p pattern.Plan) (float64, bool) {
		seen = append(seen, p.PeriodIntervals())
		return 1, true
	}
	space := Space{
		Tau0:               []float64{1},
		CountVals:          []int{0, 3, 9},
		LevelSets:          [][]int{{1, 2}},
		MaxPeriodIntervals: 5,
		Workers:            1,
	}
	if _, err := Sweep(space, obj); err != nil {
		t.Fatal(err)
	}
	sort.Ints(seen)
	// Periods: N+1 ∈ {1, 4, 10}; 10 pruned.
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 4 {
		t.Fatalf("seen periods %v", seen)
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	obj := func(p pattern.Plan) (float64, bool) {
		return p.Tau0 + float64(p.PeriodIntervals()), true
	}
	space := Space{
		Tau0:      Tau0Grid(testSys(), 16),
		CountVals: []int{0, 1, 2},
		LevelSets: PrefixLevelSets(2),
	}
	space.Workers = 1
	r1, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	space.Workers = 7
	r7, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExpectedTime != r7.ExpectedTime {
		t.Fatalf("worker count changed optimum: %v vs %v", r1.ExpectedTime, r7.ExpectedTime)
	}
	if r1.Evaluated != r7.Evaluated {
		t.Fatalf("worker count changed eval count: %d vs %d", r1.Evaluated, r7.Evaluated)
	}
}

func TestForEachCounts(t *testing.T) {
	var got [][]int
	forEachCounts(2, []int{0, 1}, func(c []int) {
		got = append(got, append([]int(nil), c...))
	})
	if len(got) != 4 {
		t.Fatalf("enumerated %d vectors, want 4", len(got))
	}
	want := [][]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("enumeration = %v", got)
		}
	}
	n := 0
	forEachCounts(0, []int{1, 2, 3}, func(c []int) {
		if len(c) != 0 {
			t.Fatal("zero-length vector should be empty")
		}
		n++
	})
	if n != 1 {
		t.Fatalf("zero-length enumeration ran %d times", n)
	}
	forEachCounts(2, nil, func([]int) { t.Fatal("no vals should not enumerate") })
}

func TestTau0Grid(t *testing.T) {
	sys := testSys()
	g := Tau0Grid(sys, 32)
	if len(g) != 32 {
		t.Fatalf("len = %d", len(g))
	}
	if g[len(g)-1] != sys.BaselineTime {
		t.Fatalf("grid must end at T_B: %v", g[len(g)-1])
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Fatalf("grid not increasing at %d: %v", i, g[i-1:i+1])
		}
	}
	if g[0] <= 0 || g[0] > sys.Levels[0].Checkpoint {
		t.Fatalf("grid start %v implausible", g[0])
	}
	if got := Tau0Grid(sys, 1); len(got) != 2 {
		t.Fatalf("points floor failed: %d", len(got))
	}
}

func TestPrefixLevelSets(t *testing.T) {
	sets := PrefixLevelSets(3)
	if len(sets) != 3 {
		t.Fatalf("len = %d", len(sets))
	}
	if len(sets[0]) != 1 || sets[0][0] != 1 {
		t.Fatalf("sets[0] = %v", sets[0])
	}
	if len(sets[2]) != 3 || sets[2][2] != 3 {
		t.Fatalf("sets[2] = %v", sets[2])
	}
}

func TestNeighbors(t *testing.T) {
	grid := []float64{1, 2, 4, 8}
	lo, hi := neighbors(grid, 4)
	if lo != 2 || hi != 8 {
		t.Fatalf("neighbors(4) = %v,%v", lo, hi)
	}
	// The bracket is clamped to the grid span at both ends: refinement
	// must never probe τ0 below the grid minimum or above the maximum.
	lo, hi = neighbors(grid, 1)
	if lo != 1 || hi != 2 {
		t.Fatalf("neighbors(1) = %v,%v", lo, hi)
	}
	lo, hi = neighbors(grid, 8)
	if lo != 4 || hi != 8 {
		t.Fatalf("neighbors(8) = %v,%v", lo, hi)
	}
}

// TestRefineStaysInGridSpan is the regression test for the unclamped
// refinement bracket: with the optimum at the last grid point, the old
// neighbors() probed τ0 up to 2× the grid maximum (beyond the model
// domain the grid encodes, e.g. the system's baseline time).
func TestRefineStaysInGridSpan(t *testing.T) {
	grid := []float64{1, 2, 4, 8}
	for _, opt := range []float64{grid[0], grid[len(grid)-1]} {
		opt := opt
		var mu sync.Mutex
		probed := []float64{}
		obj := func(p pattern.Plan) (float64, bool) {
			mu.Lock()
			probed = append(probed, p.Tau0)
			mu.Unlock()
			return 1 + (p.Tau0-opt)*(p.Tau0-opt), true
		}
		res, err := Sweep(Space{Tau0: grid, LevelSets: [][]int{{1}}, RefineTau0: true}, obj)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Tau0 != opt {
			t.Errorf("optimum %v: refined to %v", opt, res.Plan.Tau0)
		}
		for _, tau := range probed {
			if tau < grid[0] || tau > grid[len(grid)-1] {
				t.Errorf("optimum %v: objective probed τ0=%v outside grid span [%v, %v]",
					opt, tau, grid[0], grid[len(grid)-1])
			}
		}
	}
}

// TestSweepTieBreakIndependentOfWorkers is the regression test for the
// worker-order tie-break: with a constant objective every candidate
// ties, and the winner must be the lexicographically smallest
// (τ0, levels, counts) regardless of worker count.
func TestSweepTieBreakIndependentOfWorkers(t *testing.T) {
	obj := func(pattern.Plan) (float64, bool) { return 7, true }
	space := Space{
		Tau0:      []float64{4, 2, 1, 3}, // deliberately unsorted
		CountVals: []int{2, 0, 1},
		LevelSets: [][]int{{1, 2}, {1}, {2}},
	}
	var want Result
	for i, workers := range []int{1, 2, 4, 8, 13} {
		space.Workers = workers
		got, err := Sweep(space, obj)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
			// Smallest τ0 first, then levels lexicographically: {1}
			// precedes {1,2} precedes {2}; {1} has no counts.
			if want.Plan.Tau0 != 1 || len(want.Plan.Levels) != 1 || want.Plan.Levels[0] != 1 {
				t.Fatalf("tie-break winner = %v", want.Plan)
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: result %+v differs from workers=1 result %+v", workers, got, want)
		}
	}
}

func TestPlanLess(t *testing.T) {
	base := pattern.Plan{Tau0: 2, Levels: []int{1, 2}, Counts: []int{3}}
	cases := []struct {
		a, b pattern.Plan
		want bool
	}{
		{pattern.Plan{Tau0: 1, Levels: []int{1, 2}, Counts: []int{3}}, base, true},
		{pattern.Plan{Tau0: 3, Levels: []int{1, 2}, Counts: []int{3}}, base, false},
		{pattern.Plan{Tau0: 2, Levels: []int{1}}, base, true},  // prefix precedes
		{pattern.Plan{Tau0: 2, Levels: []int{2}}, base, false}, // [2] after [1 2]
		{pattern.Plan{Tau0: 2, Levels: []int{1, 2}, Counts: []int{2}}, base, true},
		{pattern.Plan{Tau0: 2, Levels: []int{1, 2}, Counts: []int{4}}, base, false},
		{base, base, false},
	}
	for i, c := range cases {
		if got := planLess(c.a, c.b); got != c.want {
			t.Errorf("case %d: planLess(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

// TestSweepLowerBoundPrune checks that an admissible lower bound changes
// the objective-call count but never the result, and that the sweep's
// telemetry counters account for every candidate.
func TestSweepLowerBoundPrune(t *testing.T) {
	obj := func(p pattern.Plan) (float64, bool) {
		return p.Tau0 + float64(p.PeriodIntervals()), true
	}
	space := Space{
		Tau0:      Tau0Grid(testSys(), 24),
		CountVals: []int{0, 1, 2, 4},
		LevelSets: PrefixLevelSets(2),
		Workers:   1,
	}
	plain, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	space.Metrics = reg
	// Admissible: the bound never exceeds the true value.
	space.LowerBound = func(p pattern.Plan) float64 { return p.Tau0 }
	pruned, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, pruned) {
		t.Fatalf("pruned sweep result %+v differs from plain %+v", pruned, plain)
	}
	snap := reg.Snapshot()
	nPruned := snap.Counter("opt_pruned_total")
	nEvals := snap.Counter("opt_evaluations_total")
	if nPruned == 0 {
		t.Error("expected some candidates pruned")
	}
	if got := snap.Counter("opt_candidates_total"); got != nEvals+nPruned {
		t.Errorf("candidates=%d != evaluations=%d + pruned=%d", got, nEvals, nPruned)
	}
	if got := snap.Counter("opt_candidates_total"); got != uint64(pruned.Evaluated) {
		t.Errorf("candidates counter %d != Result.Evaluated %d", got, pruned.Evaluated)
	}
}

// TestSweepObjectivesPerWorker checks that the factory runs once per
// worker (plus once for refinement) and that goroutine-local objectives
// produce the same result as a shared one.
func TestSweepObjectivesPerWorker(t *testing.T) {
	var mu sync.Mutex
	built := 0
	factory := func(worker int, reg *obs.Registry) Objective {
		mu.Lock()
		built++
		mu.Unlock()
		if reg == nil {
			t.Error("factory got nil metrics registry")
		}
		memoHits := reg.Counter("test_objective_calls_total")
		return func(p pattern.Plan) (float64, bool) {
			memoHits.Inc()
			return 1 + (p.Tau0-3)*(p.Tau0-3), true
		}
	}
	space := Space{
		Tau0:       []float64{1, 2, 3, 4, 5, 6, 7, 8},
		LevelSets:  [][]int{{1}},
		Workers:    4,
		RefineTau0: true,
		Metrics:    obs.NewRegistry(),
	}
	res, err := SweepObjectives(space, factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Tau0 != 3 {
		t.Fatalf("best τ0 = %v", res.Plan.Tau0)
	}
	if built != 5 { // 4 workers + 1 refinement
		t.Fatalf("factory ran %d times, want 5", built)
	}
	snap := space.Metrics.Snapshot()
	if calls := snap.Counter("test_objective_calls_total"); calls < 8 {
		t.Fatalf("objective-shard counters lost: %d calls recorded", calls)
	}
	if snap.Counter("opt_refine_evaluations_total") == 0 {
		t.Fatal("refinement evaluations not counted")
	}
}

// TestSweepScratchCountsCopied guards the allocation-free hot path: the
// Counts slice handed to objectives is scratch, but the winning plan
// must hold a stable private copy.
func TestSweepScratchCountsCopied(t *testing.T) {
	var seen []*int // first element of every Counts slice the objective saw
	obj := func(p pattern.Plan) (float64, bool) {
		if len(p.Counts) > 0 {
			seen = append(seen, &p.Counts[0])
		}
		d := float64(p.Counts[0] - 2)
		return 1 + d*d, true
	}
	space := Space{
		Tau0:      []float64{1},
		CountVals: []int{0, 1, 2, 3},
		LevelSets: [][]int{{1, 2}},
		Workers:   1,
	}
	res, err := Sweep(space, obj)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plan.Counts) != 1 || res.Plan.Counts[0] != 2 {
		t.Fatalf("best counts = %v", res.Plan.Counts)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] != seen[0] {
			t.Fatal("objective saw reallocated scratch; hot path is not allocation-free")
		}
	}
	if len(seen) > 0 && &res.Plan.Counts[0] == seen[0] {
		t.Fatal("result aliases the scratch buffer")
	}
}

func TestForEachCountsEdgeCases(t *testing.T) {
	// Empty candidate set with a multi-level vector: nothing to
	// enumerate (no zero-length phantom vector).
	calls := 0
	forEachCounts(3, nil, func([]int) { calls++ })
	if calls != 0 {
		t.Fatalf("empty vals enumerated %d vectors", calls)
	}
	// ...but a zero-length vector is still one (empty) enumeration even
	// with no candidate values, matching single-level plans.
	calls = 0
	forEachCounts(0, nil, func(c []int) {
		if len(c) != 0 {
			t.Fatalf("zero-length enumeration got %v", c)
		}
		calls++
	})
	if calls != 1 {
		t.Fatalf("zero-length enumeration ran %d times", calls)
	}
	// Single-value grid: exactly one vector, repeated value.
	var got [][]int
	forEachCounts(3, []int{5}, func(c []int) {
		got = append(got, append([]int(nil), c...))
	})
	if len(got) != 1 || !reflect.DeepEqual(got[0], []int{5, 5, 5}) {
		t.Fatalf("single-value enumeration = %v", got)
	}
	// Scratch reuse across calls with different lengths.
	var s countScratch
	s.forEach(2, []int{1, 2}, func(c []int) {})
	sum := 0
	s.forEach(1, []int{3}, func(c []int) { sum += c[0] })
	if sum != 3 {
		t.Fatalf("scratch reuse across lengths broke enumeration: sum=%d", sum)
	}
}

func TestTau0GridDegenerate(t *testing.T) {
	check := func(name string, g []float64, tb float64) {
		t.Helper()
		if len(g) < 2 {
			t.Fatalf("%s: grid too short: %v", name, g)
		}
		if g[len(g)-1] != tb {
			t.Fatalf("%s: grid must end at T_B=%v: %v", name, tb, g)
		}
		for i, v := range g {
			if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("%s: grid[%d]=%v not positive finite", name, i, v)
			}
			if i > 0 && v <= g[i-1] {
				t.Fatalf("%s: grid not strictly increasing at %d: %v", name, i, g[i-1:i+1])
			}
		}
	}
	sys := testSys()
	for _, points := range []int{-3, 0, 1} {
		check("points<2", Tau0Grid(sys, points), sys.BaselineTime)
	}
	// Checkpoint cost at/above the baseline: the lo >= hi fallback.
	expensive := &system.System{
		Name:         "expensive",
		MTBF:         50,
		BaselineTime: 100,
		Levels: []system.Level{
			{Checkpoint: 100, Restart: 100, SeverityProb: 0.5},
			{Checkpoint: 5000, Restart: 5000, SeverityProb: 0.5},
		},
	}
	check("ckpt>=tb", Tau0Grid(expensive, 16), expensive.BaselineTime)
	// Sweeping such a grid still works end to end.
	res, err := Sweep(Space{
		Tau0:      Tau0Grid(expensive, 16),
		LevelSets: [][]int{{1}},
	}, func(p pattern.Plan) (float64, bool) { return p.Tau0, true })
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Plan.Tau0 > 0) {
		t.Fatalf("degenerate grid sweep returned %v", res.Plan)
	}
}

func TestDefaultCountsSortedUnique(t *testing.T) {
	c := DefaultCounts()
	for i := 1; i < len(c); i++ {
		if c[i] <= c[i-1] {
			t.Fatalf("counts not strictly increasing: %v", c)
		}
	}
	if c[0] != 0 {
		t.Fatal("counts must include 0 (no checkpoints of a level)")
	}
}
