package conformance

import (
	"hash/fnv"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// FuzzEngineScenario decodes arbitrary bytes into a valid scenario, runs
// the engine under the invariant checker, and requires that every trial
// completes without panics, errors, or invariant violations. This is the
// package's strongest claim: for the whole decodable scenario space —
// not just hand-picked Table I configurations — the engine's event
// streams obey the protocol.
func FuzzEngineScenario(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	// Async flush + escalate on a 4-level system with a skipped level.
	f.Add([]byte{3, 40, 40, 2, 80, 80, 4, 10, 10, 1, 200, 200, 7, 30, 0x0b, 3, 0, 1, 60, 3, 20})
	f.Fuzz(func(t *testing.T, data []byte) {
		scn, ok := GenScenario(data)
		if !ok {
			t.Fatalf("GenScenario produced an invalid scenario from %x: %v", data, scn.Validate())
		}
		ck, err := NewChecker(scn)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sim.NewEngine(scn)
		if err != nil {
			t.Fatalf("engine rejected a validated scenario: %v", err)
		}
		eng.Observe(ck)
		h := fnv.New64a()
		_, _ = h.Write(data)
		seed := rng.FromWords(h.Sum64(), uint64(len(data)))
		for trial := 0; trial < 3; trial++ {
			res, err := eng.Run(seed.Trial(trial))
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !(res.WallTime > 0) {
				t.Fatalf("trial %d: non-positive wall time %v", trial, res.WallTime)
			}
			if res.Efficiency < 0 || res.Efficiency > 1 {
				t.Fatalf("trial %d: efficiency %v outside [0,1]", trial, res.Efficiency)
			}
		}
		if err := ck.Err(); err != nil {
			t.Fatalf("invariant violation on scenario %+v plan %v: %v", scn.System, scn.Plan, err)
		}
	})
}

// FuzzPatternPlan decodes raw, possibly-invalid plans. Rejected plans
// exercise Validate's error paths; accepted plans must have a
// self-consistent odometer: LevelAfterInterval partitions the period
// exactly as CheckpointsPerPeriod claims, and the period's final
// checkpoint is the top used level.
func FuzzPatternPlan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 10, 10, 3, 20, 20, 5, 50, 1, 0, 0, 0, 2, 1, 2, 3, 2, 1, 128})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44})
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, plan := GenPlan(data)
		if err := plan.Validate(sys); err != nil {
			return // rejection path: must not panic, nothing more to check
		}
		n := plan.PeriodIntervals()
		if n <= 0 {
			t.Fatalf("valid plan %v has non-positive period %d", plan, n)
		}
		if n > 1<<16 {
			return // bound fuzz iteration cost on huge (but legal) periods
		}
		perPeriod := plan.CheckpointsPerPeriod()
		counted := make([]int, plan.NumUsed())
		for k := 0; k < n; k++ {
			idx := plan.LevelAfterInterval(k)
			if idx < 0 || idx >= plan.NumUsed() {
				t.Fatalf("plan %v: interval %d maps to used-level index %d of %d", plan, k, idx, plan.NumUsed())
			}
			counted[idx]++
		}
		if plan.LevelAfterInterval(n-1) != plan.NumUsed()-1 {
			t.Fatalf("plan %v: period does not end with the top used level", plan)
		}
		total := 0
		for i := range counted {
			if counted[i] != perPeriod[i] {
				t.Fatalf("plan %v: odometer gives %v checkpoints/period, CheckpointsPerPeriod gives %v",
					plan, counted, perPeriod)
			}
			total += counted[i]
		}
		if total != n {
			t.Fatalf("plan %v: %d checkpoints for %d intervals", plan, total, n)
		}
	})
}
