package conformance

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"
)

// PaperTechniques names the five techniques the paper's Figure 2
// comparison evaluates (and ISSUE-level acceptance tracks). The
// differential golden tests run each of them on every Table I system.
var PaperTechniques = []string{"benoit", "daly", "dauwe", "di", "moody"}

// DiffConfig parameterizes one differential model-vs-sim run.
type DiffConfig struct {
	// Trials is the campaign size (the golden tests use a short, fixed
	// campaign so results are deterministic).
	Trials int
	// Seed drives the campaign; the same seed always reproduces the
	// same DiffResult bit-for-bit.
	Seed rng.Seed
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// CILevel is the confidence level of the simulated band (default
	// 0.95, the paper's Section IV-F level).
	CILevel float64
	// Check attaches the invariant Checker to every worker, so the
	// differential run doubles as a protocol-conformance sweep.
	Check bool
}

// DiffResult reports one technique's analytic prediction against the
// simulated ground truth on one system.
type DiffResult struct {
	Technique string
	System    string
	// Plan is the plan the technique's optimizer chose.
	Plan pattern.Plan
	// Predicted is the technique's own prediction for its plan.
	Predicted model.Prediction
	// Sim summarizes the simulated per-trial efficiencies.
	Sim stats.Summary
	// CIHalf is the half-width of the simulated efficiency mean's
	// two-sided Student-t confidence interval at CILevel.
	CIHalf float64
	// AbsErr is |predicted efficiency − simulated mean efficiency|.
	AbsErr float64
	// WithinCI reports whether the prediction falls inside the
	// simulated confidence band (the paper's accurate models do; the
	// prior techniques often do not — that gap is the paper's result,
	// and the golden tolerance tables pin it per technique).
	WithinCI bool
	// SplitWelchP is the two-sided Welch t-test p-value comparing the
	// campaign's even- and odd-indexed trial halves. The halves draw
	// from the same distribution, so a vanishing p-value flags a
	// non-stationary or seed-correlated campaign rather than a model
	// error.
	SplitWelchP float64
	// TrialsChecked is the number of invariant-checked trials (0 when
	// Check is false).
	TrialsChecked int
}

// String renders a one-line summary.
func (r DiffResult) String() string {
	return fmt.Sprintf("%s/%s: predicted %.4f vs simulated %.4f±%.4f (|err|=%.4f, CI±%.4f)",
		r.Technique, r.System, r.Predicted.Efficiency, r.Sim.Mean, r.Sim.Std, r.AbsErr, r.CIHalf)
}

// Differential lets tech choose its plan for sys, simulates that plan
// over a deterministic campaign, and quantifies the model-vs-sim
// disagreement. It is the engine behind the golden accuracy tests and
// usable on custom systems for ad-hoc validation.
func Differential(tech model.Technique, sys *system.System, cfg DiffConfig) (DiffResult, error) {
	if cfg.Trials < 4 {
		return DiffResult{}, fmt.Errorf("conformance: differential needs >= 4 trials, got %d", cfg.Trials)
	}
	level := cfg.CILevel
	if level == 0 {
		level = 0.95
	}
	plan, pred, err := tech.Optimize(sys)
	if err != nil {
		return DiffResult{}, fmt.Errorf("conformance: %s optimize on %s: %w", tech.Name(), sys.Name, err)
	}
	camp := sim.Campaign{
		Scenario: sim.Scenario{System: sys, Plan: plan},
		Trials:   cfg.Trials,
		Seed:     cfg.Seed,
		Workers:  cfg.Workers,
	}
	var pool *Pool
	if cfg.Check {
		pool, err = NewPool(camp.Scenario)
		if err != nil {
			return DiffResult{}, err
		}
		camp.ObserverFactory = pool.Observer
	}
	res, err := camp.Run()
	if err != nil {
		return DiffResult{}, fmt.Errorf("conformance: %s simulate on %s: %w", tech.Name(), sys.Name, err)
	}
	if pool != nil {
		if err := pool.Err(); err != nil {
			return DiffResult{}, fmt.Errorf("%s on %s: %w", tech.Name(), sys.Name, err)
		}
	}

	var eff stats.Sample
	eff.AddAll(res.Efficiencies)
	ci, err := eff.CI(level)
	if err != nil {
		return DiffResult{}, err
	}
	var even, odd stats.Sample
	for i, e := range res.Efficiencies {
		if i%2 == 0 {
			even.Add(e)
		} else {
			odd.Add(e)
		}
	}
	welch, err := stats.WelchT(stats.Summarize(&even), stats.Summarize(&odd))
	if err != nil {
		return DiffResult{}, err
	}

	out := DiffResult{
		Technique:   tech.Name(),
		System:      sys.Name,
		Plan:        plan,
		Predicted:   pred,
		Sim:         res.Efficiency,
		CIHalf:      ci,
		AbsErr:      math.Abs(pred.Efficiency - res.Efficiency.Mean),
		SplitWelchP: welch.P,
	}
	out.WithinCI = out.AbsErr <= ci
	if pool != nil {
		out.TrialsChecked = pool.Trials()
	}
	return out, nil
}
