package conformance

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

// TestCheckedRunsAreBitwiseIdentical pins the observer-purity contract:
// attaching the invariant checker must not perturb the simulation in any
// way — every per-trial float of a checked campaign is bit-for-bit the
// float of the unchecked campaign. (The engine guarantees observers
// cannot feed back into trial state; this test would catch a checker
// that broke that, e.g. by mutating a shared slice from an event.)
func TestCheckedRunsAreBitwiseIdentical(t *testing.T) {
	trials := 48
	if testing.Short() {
		trials = 16
	}
	for _, scn := range scenarioMatrix(t)[:6] {
		base := sim.Campaign{
			Scenario: scn,
			Trials:   trials,
			Workers:  4,
			Seed:     rng.Campaign(31, "purity").Scenario(scn.Plan.String()),
		}
		plain, err := base.Run()
		if err != nil {
			t.Fatal(err)
		}
		checked := base
		pool, err := NewPool(scn)
		if err != nil {
			t.Fatal(err)
		}
		checked.ObserverFactory = pool.Observer
		got, err := checked.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := pool.Err(); err != nil {
			t.Fatal(err)
		}
		for i := range plain.Efficiencies {
			if got.Efficiencies[i] != plain.Efficiencies[i] {
				t.Fatalf("plan %v trial %d: checked efficiency %v != unchecked %v",
					scn.Plan, i, got.Efficiencies[i], plain.Efficiencies[i])
			}
		}
		if got.Efficiency != plain.Efficiency || got.WallTime != plain.WallTime {
			t.Errorf("plan %v: checked summaries differ from unchecked", scn.Plan)
		}
		if got.MeanBreakdown != plain.MeanBreakdown {
			t.Errorf("plan %v: checked breakdown %+v != unchecked %+v",
				scn.Plan, got.MeanBreakdown, plain.MeanBreakdown)
		}
		if got.Completed != plain.Completed || got.MeanScratchRestarts != plain.MeanScratchRestarts {
			t.Errorf("plan %v: checked counters differ from unchecked", scn.Plan)
		}
	}
}

// TestCheckedTrialBitwiseIdentical is the single-engine form: the same
// trial run with and without the checker yields an identical
// TrialResult.
func TestCheckedTrialBitwiseIdentical(t *testing.T) {
	sys, err := system.ByName("D6")
	if err != nil {
		t.Fatal(err)
	}
	scn := scenarioMatrix(t)[0]
	scn.System = sys
	run := func(attach bool) []sim.TrialResult {
		eng, err := sim.NewEngine(scn)
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			ck, err := NewChecker(scn)
			if err != nil {
				t.Fatal(err)
			}
			eng.Observe(ck)
			defer func() {
				if err := ck.Err(); err != nil {
					t.Fatal(err)
				}
			}()
		}
		seed := rng.Campaign(37, "purity-single")
		out := make([]sim.TrialResult, 16)
		for i := range out {
			r, err := eng.Run(seed.Trial(i))
			if err != nil {
				t.Fatal(err)
			}
			r.Failures = append([]int(nil), r.Failures...) // engine reuses the slice
			out[i] = r
		}
		return out
	}
	plain := run(false)
	checked := run(true)
	for i := range plain {
		p, c := plain[i], checked[i]
		if p.WallTime != c.WallTime || p.Efficiency != c.Efficiency ||
			p.Progress != c.Progress || p.Completed != c.Completed ||
			p.Breakdown != c.Breakdown || p.ScratchRestarts != c.ScratchRestarts {
			t.Fatalf("trial %d: checked result %+v != unchecked %+v", i, c, p)
		}
		for s := range p.Failures {
			if p.Failures[s] != c.Failures[s] {
				t.Fatalf("trial %d: failure counts differ", i)
			}
		}
	}
}
