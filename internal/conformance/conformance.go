// Package conformance is the repository's standing correctness harness.
// It verifies the simulator/model stack three independent ways:
//
//   - Checker is a sim.Observer that replays every trial's event stream
//     against a deterministic shadow model of the SCR protocol and flags
//     any divergence (the invariant catalog in DESIGN.md §2.9): a
//     monotonic clock, contiguous and legal phase transitions, exact
//     checkpoint/restart durations, pattern-odometer conformance,
//     store/rollback consistency, restart-escalation legality, and phase
//     times that partition the wall time.
//   - Differential (differential.go) runs every model technique against
//     a deterministic simulation campaign and checks the analytic
//     prediction against the simulated confidence band, with
//     per-technique tolerances pinned as golden files.
//   - The fuzz targets (FuzzEngineScenario, FuzzPatternPlan in this
//     package; FuzzEventq in internal/eventq) drive the same machinery
//     over randomly generated systems, plans and seeds.
//
// A Checker is pure: it never influences the engine it observes, so a
// checked run is bitwise-identical to an unchecked one (pinned by
// TestCheckedRunBitwiseIdentical). Violations are collected, not
// panicked, and surfaced through Err.
package conformance

import (
	"fmt"
	"math"

	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/system"
)

// maxRecorded bounds the violations kept per checker; further violations
// are counted but not stored.
const maxRecorded = 16

// Violation describes one invariant breach observed in an event stream.
type Violation struct {
	// Invariant is the catalog identifier (e.g. "monotonic-clock").
	Invariant string
	// Trial is the 0-based index of the trial within this checker's
	// observation stream (not the campaign trial index: campaigns shard
	// trials across worker-local checkers).
	Trial int
	// Time is the simulated time of the offending event.
	Time float64
	// Detail explains the breach.
	Detail string
}

// Error implements error.
func (v Violation) Error() string {
	return fmt.Sprintf("conformance: invariant %s broken at trial %d t=%.9g: %s",
		v.Invariant, v.Trial, v.Time, v.Detail)
}

// PhaseTotals is the checker's independent per-trial time accounting,
// cross-checkable against obs.SimMetrics breakdowns. All values are
// simulated minutes; level slices are indexed by 0-based system level.
type PhaseTotals struct {
	Compute    float64
	Checkpoint []float64
	Restart    []float64
	Wall       float64
}

// Total sums every category.
func (p PhaseTotals) Total() float64 {
	t := p.Compute
	for _, v := range p.Checkpoint {
		t += v
	}
	for _, v := range p.Restart {
		t += v
	}
	return t
}

// context is the checker's position in the per-trial event grammar.
type context int

const (
	ctxIdle context = iota // before a trial / after EvComplete|EvCapped
	ctxInPhase
	ctxAfterComputeEnd
	ctxAfterCheckpointEnd
	ctxAfterRestartEnd
	ctxAfterFailure
)

// shadowStore mirrors one used level's committed checkpoint.
type shadowStore struct {
	valid    bool
	progress float64
	pos      int
}

// flushState mirrors an in-flight asynchronous top-level flush. The
// engine emits no event when a flush commits, but the commit time is
// fully determined by the launch time, so the checker resolves it from
// event timestamps (see resolveFlush).
type flushState struct {
	deadline float64
	progress float64
	pos      int
}

// Checker validates a simulation event stream against the scenario it
// was built for. It implements sim.Observer, observes any number of
// sequential trials, and never mutates anything outside itself. A
// Checker is not safe for concurrent use; campaigns install one per
// worker via Pool.
type Checker struct {
	scn     sim.Scenario
	sys     *system.System
	plan    pattern.Plan
	maxWall float64
	canFire []bool // per severity: a failure of this class may arrive
	// allowReplan relaxes the plan-dependent invariants (odometer,
	// store tracking, durations vs the static plan) for trials driven
	// by an online PlanController, which may switch plans mid-trial.
	allowReplan bool

	violations []Violation
	nviol      int
	trials     int
	events     int

	// Per-trial state.
	ctx        context
	poisoned   bool // violation seen: skip further checks this trial
	lastTime   float64
	phase      sim.Phase
	phaseLevel int
	phaseStart float64
	phaseProg  float64 // progress when the open phase started
	closedSum  float64 // total duration of closed phases
	totals     PhaseTotals
	last       PhaseTotals // totals of the most recently finished trial
	pos        int         // shadow pattern odometer (next interval index)
	stores     []shadowStore
	flush      *flushState
	need       int // pending recovery severity after a failure
	restartIdx int // index into plan.Levels of the open restart's store
}

// NewChecker validates the scenario and builds a checker for it.
func NewChecker(scn sim.Scenario) (*Checker, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	factor := scn.MaxWallFactor
	if factor == 0 {
		factor = sim.DefaultMaxWallFactor
	}
	c := &Checker{
		scn:     scn,
		sys:     scn.System,
		plan:    scn.Plan,
		maxWall: factor * scn.System.BaselineTime,
		canFire: make([]bool, scn.System.NumLevels()),
		ctx:     ctxIdle,
	}
	for sev := 1; sev <= c.sys.NumLevels(); sev++ {
		if len(scn.FailureLaws) >= sev && scn.FailureLaws[sev-1] != nil {
			c.canFire[sev-1] = true
			continue
		}
		c.canFire[sev-1] = c.sys.LevelRate(sev) > 0
	}
	c.resetTrial()
	return c, nil
}

// AllowReplan relaxes the plan-dependent invariants for trials driven by
// an online plan controller (which may switch plans after any commit).
// Clock, transition, accounting and severity invariants stay enforced.
func (c *Checker) AllowReplan() { c.allowReplan = true }

// TrialsChecked returns the number of finished trials observed.
func (c *Checker) TrialsChecked() int { return c.trials }

// EventsChecked returns the total number of events observed.
func (c *Checker) EventsChecked() int { return c.events }

// LastTotals returns the checker's independent phase-time accounting for
// the most recently finished trial.
func (c *Checker) LastTotals() PhaseTotals { return c.last }

// Violations returns the recorded violations (at most maxRecorded; see
// Err for the total count).
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil if every invariant held, or the first violation
// annotated with the total violation count.
func (c *Checker) Err() error {
	if c.nviol == 0 {
		return nil
	}
	v := c.violations[0]
	if c.nviol > 1 {
		return fmt.Errorf("%w (and %d more violations)", v, c.nviol-1)
	}
	return v
}

// violatef records a violation and poisons the rest of the trial (the
// shadow state is unreliable after a divergence).
func (c *Checker) violatef(invariant string, t float64, format string, args ...any) {
	c.nviol++
	if len(c.violations) < maxRecorded {
		c.violations = append(c.violations, Violation{
			Invariant: invariant,
			Trial:     c.trials,
			Time:      t,
			Detail:    fmt.Sprintf(format, args...),
		})
	}
	c.poisoned = true
}

func (c *Checker) resetTrial() {
	c.ctx = ctxIdle
	c.poisoned = false
	c.lastTime = 0
	c.closedSum = 0
	c.totals = PhaseTotals{
		Checkpoint: make([]float64, c.sys.NumLevels()),
		Restart:    make([]float64, c.sys.NumLevels()),
	}
	c.pos = 0
	c.stores = make([]shadowStore, c.plan.NumUsed())
	c.flush = nil
	c.need = 0
	c.restartIdx = -1
}

// durEps is the tolerance for duration comparisons: scheduled phase ends
// pop at now+duration, so the observed elapsed time can differ from the
// configured duration by floating-point rounding only.
func durEps(scale float64) float64 { return 1e-9 * (1 + math.Abs(scale)) }

// accEps is the tolerance for accounting sums, which accumulate one
// rounding error per phase.
func accEps(scale float64) float64 { return 1e-6 * (1 + math.Abs(scale)) }

// resolveFlush commits or keeps the pending asynchronous flush given the
// next observed event. The engine schedules the flush-end event when the
// capture checkpoint commits, so the flush commits exactly at its
// deadline unless a failure arrives first; at an exact tie the failure's
// arrival event was scheduled earlier and wins (FIFO tie-break), while
// every phase event at the deadline was scheduled after the flush and
// loses.
func (c *Checker) resolveFlush(e sim.Event) {
	if c.flush == nil {
		return
	}
	committed := c.flush.deadline < e.Time ||
		(c.flush.deadline == e.Time && e.Kind != sim.EvFailure)
	if committed {
		c.stores[c.plan.NumUsed()-1] = shadowStore{
			valid: true, progress: c.flush.progress, pos: c.flush.pos,
		}
		c.flush = nil
	}
}

// Observe implements sim.Observer.
func (c *Checker) Observe(e sim.Event) {
	c.events++

	// I1 monotonic-clock: within a trial, event times never decrease.
	if c.ctx != ctxIdle {
		if e.Time < c.lastTime {
			c.violatef("monotonic-clock", e.Time, "time went backwards from %.9g", c.lastTime)
		}
		if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
			c.violatef("monotonic-clock", e.Time, "non-finite event time")
		}
	}
	if math.IsNaN(e.Progress) || e.Progress < 0 {
		c.violatef("progress-range", e.Time, "progress %v out of range", e.Progress)
	}
	if e.Progress > c.sys.BaselineTime+durEps(c.sys.BaselineTime) {
		c.violatef("progress-range", e.Time, "progress %v exceeds T_B %v", e.Progress, c.sys.BaselineTime)
	}

	if c.poisoned {
		// Shadow state is unreliable after a violation; only watch for
		// the trial boundary.
		if e.Kind == sim.EvComplete || e.Kind == sim.EvCapped {
			c.trials++
			c.resetTrial()
		}
		return
	}

	if !c.allowReplan {
		c.resolveFlush(e)
	}

	switch e.Kind {
	case sim.EvPhaseStart:
		c.phaseStartEvent(e)
	case sim.EvPhaseEnd:
		c.phaseEndEvent(e)
	case sim.EvFailure:
		c.failureEvent(e)
	case sim.EvComplete:
		c.completeEvent(e)
	case sim.EvCapped:
		c.cappedEvent(e)
	default:
		c.violatef("event-kind", e.Time, "unknown event kind %d", int(e.Kind))
	}
	c.lastTime = e.Time
}

func (c *Checker) phaseStartEvent(e sim.Event) {
	switch c.ctx {
	case ctxIdle:
		// I2 trial-opening: every trial opens with a compute phase at
		// time zero and zero progress.
		if e.Phase != sim.PhaseCompute || e.Time != 0 || e.Progress != 0 {
			c.violatef("trial-opening", e.Time,
				"trial must open with compute at t=0 progress=0, got %v at t=%v progress=%v",
				e.Phase, e.Time, e.Progress)
			return
		}
	case ctxAfterComputeEnd:
		// I2 transitions: compute is followed by the checkpoint the
		// pattern odometer selects, at the same instant.
		if e.Phase != sim.PhaseCheckpoint {
			c.violatef("phase-transition", e.Time, "compute followed by %v, want checkpoint", e.Phase)
			return
		}
		if e.Time != c.lastTime {
			c.violatef("phase-contiguity", e.Time, "gap after compute end at %.9g", c.lastTime)
			return
		}
		if e.Progress != c.phaseProg {
			c.violatef("progress-frozen", e.Time,
				"progress changed across compute-end→checkpoint-start: %v → %v", c.phaseProg, e.Progress)
			return
		}
		if !c.allowReplan {
			// I5 odometer: the checkpoint level is fully determined by
			// the pattern position.
			want := c.plan.Levels[c.plan.LevelAfterInterval(c.pos)]
			if e.Level != want {
				c.violatef("odometer", e.Time,
					"checkpoint at level %d after interval %d, pattern demands level %d",
					e.Level, c.pos, want)
				return
			}
		} else if !c.validSystemLevel(e.Level) {
			c.violatef("odometer", e.Time, "checkpoint at unknown level %d", e.Level)
			return
		}
	case ctxAfterCheckpointEnd, ctxAfterRestartEnd:
		if e.Phase != sim.PhaseCompute {
			c.violatef("phase-transition", e.Time, "%v start after %s end, want compute",
				e.Phase, map[context]string{ctxAfterCheckpointEnd: "checkpoint", ctxAfterRestartEnd: "restart"}[c.ctx])
			return
		}
		if e.Time != c.lastTime {
			c.violatef("phase-contiguity", e.Time, "gap before compute start at %.9g", c.lastTime)
			return
		}
		if c.ctx == ctxAfterCheckpointEnd {
			if e.Progress != c.phaseProg {
				c.violatef("progress-frozen", e.Time,
					"progress changed across checkpoint commit: %v → %v", c.phaseProg, e.Progress)
				return
			}
		} else if !c.allowReplan {
			// I6 rollback: a completed restart resumes from exactly the
			// state the restarted store committed.
			st := c.stores[c.restartIdx]
			if !st.valid || e.Progress != st.progress {
				c.violatef("rollback", e.Time,
					"restart from store %d resumed at progress %v, store holds valid=%v progress=%v",
					c.restartIdx, e.Progress, st.valid, st.progress)
				return
			}
			c.pos = st.pos
		}
	case ctxAfterFailure:
		if e.Time != c.lastTime {
			c.violatef("phase-contiguity", e.Time, "gap between failure at %.9g and recovery", c.lastTime)
			return
		}
		switch e.Phase {
		case sim.PhaseRestart:
			if !c.checkRestartChoice(e) {
				return
			}
		case sim.PhaseCompute:
			// Recovery with no usable checkpoint: restart from scratch.
			if e.Progress != 0 {
				c.violatef("scratch-restart", e.Time, "scratch restart resumed at progress %v, want 0", e.Progress)
				return
			}
			if !c.allowReplan {
				if idx := c.lowestValidStore(c.need); idx >= 0 {
					c.violatef("scratch-restart", e.Time,
						"restarted from scratch while level %d holds a valid checkpoint for need %d",
						c.plan.Levels[idx], c.need)
					return
				}
				c.pos = 0
			}
		default:
			c.violatef("phase-transition", e.Time, "recovery opened %v phase", e.Phase)
			return
		}
	case ctxInPhase:
		c.violatef("phase-transition", e.Time, "%v start while a %v phase is open", e.Phase, c.phase)
		return
	}
	c.ctx = ctxInPhase
	c.phase = e.Phase
	c.phaseLevel = e.Level
	c.phaseStart = e.Time
	c.phaseProg = e.Progress
}

// checkRestartChoice validates a restart phase opening after a failure
// and reports whether it was legal.
func (c *Checker) checkRestartChoice(e sim.Event) bool {
	if !c.validSystemLevel(e.Level) {
		c.violatef("restart-choice", e.Time, "restart at unknown level %d", e.Level)
		return false
	}
	if e.Progress != c.phaseProg {
		// Rollback happens when the restart *completes*; the read phase
		// itself runs at the pre-failure progress.
		c.violatef("progress-frozen", e.Time,
			"progress changed entering restart: %v → %v", c.phaseProg, e.Progress)
		return false
	}
	if e.Level < c.need {
		// I7 escalation legality: a severity-s failure destroys levels
		// < s, and an interrupted restart escalates per policy; either
		// way recovery below the required level reads destroyed data.
		c.violatef("restart-choice", e.Time, "restart at level %d below required level %d", e.Level, c.need)
		return false
	}
	if c.allowReplan {
		return true
	}
	idx := c.lowestValidStore(c.need)
	if idx < 0 {
		c.violatef("restart-choice", e.Time,
			"restart at level %d but no used level >= %d holds a valid checkpoint (scratch expected)",
			e.Level, c.need)
		return false
	}
	if want := c.plan.Levels[idx]; e.Level != want {
		c.violatef("restart-choice", e.Time,
			"restart at level %d, want lowest valid level %d for need %d", e.Level, want, c.need)
		return false
	}
	c.restartIdx = idx
	return true
}

// lowestValidStore returns the index into plan.Levels of the lowest used
// level >= need holding a valid shadow store, or -1.
func (c *Checker) lowestValidStore(need int) int {
	for i, lvl := range c.plan.Levels {
		if lvl >= need && c.stores[i].valid {
			return i
		}
	}
	return -1
}

func (c *Checker) validSystemLevel(l int) bool { return l >= 1 && l <= c.sys.NumLevels() }

func (c *Checker) phaseEndEvent(e sim.Event) {
	if c.ctx != ctxInPhase {
		c.violatef("phase-transition", e.Time, "%v phase end with no open phase", e.Phase)
		return
	}
	if e.Phase != c.phase || e.Level != c.phaseLevel {
		c.violatef("phase-transition", e.Time, "end of %v/L%d closes open %v/L%d",
			e.Phase, e.Level, c.phase, c.phaseLevel)
		return
	}
	d := e.Time - c.phaseStart
	c.closedSum += d
	switch c.phase {
	case sim.PhaseCompute:
		c.totals.Compute += d
		// I4 compute-progress: progress advances exactly 1:1 with
		// compute time and nowhere else.
		want := c.phaseProg + d
		if math.Abs(e.Progress-want) > durEps(want) {
			c.violatef("compute-progress", e.Time,
				"compute advanced progress %v → %v over %v minutes", c.phaseProg, e.Progress, d)
			return
		}
		if !c.allowReplan {
			// I3 durations: a full compute interval is min(τ0, remaining
			// work); phase ends fire exactly on schedule.
			expect := c.plan.Tau0
			if rem := c.sys.BaselineTime - c.phaseProg; expect > rem {
				expect = rem
			}
			if math.Abs(d-expect) > durEps(expect) {
				c.violatef("phase-duration", e.Time,
					"compute interval ran %v minutes, want min(τ0=%v, remaining=%v)",
					d, c.plan.Tau0, c.sys.BaselineTime-c.phaseProg)
				return
			}
		}
		c.ctx = ctxAfterComputeEnd
	case sim.PhaseCheckpoint:
		c.totals.Checkpoint[c.phaseLevel-1] += d
		if e.Progress != c.phaseProg {
			c.violatef("progress-frozen", e.Time,
				"progress changed during checkpoint: %v → %v", c.phaseProg, e.Progress)
			return
		}
		if !c.allowReplan {
			if expect := c.blockingCheckpointCost(c.phaseLevel); math.Abs(d-expect) > durEps(expect) {
				c.violatef("phase-duration", e.Time,
					"level-%d checkpoint ran %v minutes, want %v", c.phaseLevel, d, expect)
				return
			}
			c.commitShadow(e)
		} else if expect := c.sys.Levels[c.phaseLevel-1].Checkpoint; d > expect+durEps(expect) {
			c.violatef("phase-duration", e.Time,
				"level-%d checkpoint ran %v minutes, exceeds δ=%v", c.phaseLevel, d, expect)
			return
		}
		c.ctx = ctxAfterCheckpointEnd
	case sim.PhaseRestart:
		c.totals.Restart[c.phaseLevel-1] += d
		if e.Progress != c.phaseProg {
			c.violatef("progress-frozen", e.Time,
				"progress changed during restart read: %v → %v", c.phaseProg, e.Progress)
			return
		}
		expect := c.sys.Levels[c.phaseLevel-1].Restart
		if math.Abs(d-expect) > durEps(expect) {
			c.violatef("phase-duration", e.Time,
				"level-%d restart ran %v minutes, want R=%v", c.phaseLevel, d, expect)
			return
		}
		c.ctx = ctxAfterRestartEnd
	}
	c.phaseProg = e.Progress
}

// blockingCheckpointCost returns the expected blocking duration of a
// checkpoint at the given system level under the static plan: δ of the
// level itself, or — for an asynchronous top-level flush — δ of the
// next-lower used capture level.
func (c *Checker) blockingCheckpointCost(level int) float64 {
	n := c.plan.NumUsed()
	if c.scn.AsyncTopFlush && n >= 2 && level == c.plan.Levels[n-1] {
		return c.sys.Levels[c.plan.Levels[n-2]-1].Checkpoint
	}
	return c.sys.Levels[level-1].Checkpoint
}

// commitShadow applies a successful checkpoint commit to the shadow
// stores and advances the pattern odometer, mirroring the SCR rule: a
// level-u checkpoint commits to every used level <= u; an asynchronous
// top-level checkpoint commits only up to the capture level now and
// schedules the top-level commit at flush completion.
func (c *Checker) commitShadow(e sim.Event) {
	next := (c.pos + 1) % c.plan.PeriodIntervals()
	commitLevel := c.phaseLevel
	n := c.plan.NumUsed()
	if c.scn.AsyncTopFlush && n >= 2 && c.phaseLevel == c.plan.Levels[n-1] {
		commitLevel = c.plan.Levels[n-2]
		c.flush = &flushState{
			deadline: e.Time + c.sys.Levels[c.phaseLevel-1].Checkpoint,
			progress: e.Progress,
			pos:      next,
		}
	}
	for i, lvl := range c.plan.Levels {
		if lvl <= commitLevel {
			c.stores[i] = shadowStore{valid: true, progress: e.Progress, pos: next}
		}
	}
	c.pos = next
}

func (c *Checker) failureEvent(e sim.Event) {
	// I8 failure legality: failures strike only while a phase is open
	// (phases tile the trial), with a severity the scenario can produce.
	if c.ctx != ctxInPhase {
		c.violatef("failure-placement", e.Time, "failure with no open phase (ctx %d)", int(c.ctx))
		return
	}
	if e.Level < 1 || e.Level > c.sys.NumLevels() {
		c.violatef("failure-severity", e.Time, "severity %d outside 1..%d", e.Level, c.sys.NumLevels())
		return
	}
	if !c.canFire[e.Level-1] {
		c.violatef("failure-severity", e.Time, "severity %d fired but has zero rate and no custom law", e.Level)
		return
	}
	if e.Progress != c.phaseProg {
		c.violatef("progress-frozen", e.Time,
			"failure observed progress %v, open phase started at %v", e.Progress, c.phaseProg)
		return
	}
	d := e.Time - c.phaseStart
	c.closedSum += d
	switch c.phase {
	case sim.PhaseCompute:
		c.totals.Compute += d
	case sim.PhaseCheckpoint:
		c.totals.Checkpoint[c.phaseLevel-1] += d
	case sim.PhaseRestart:
		c.totals.Restart[c.phaseLevel-1] += d
	}

	// An in-flight flush loses its source data on any failure.
	c.flush = nil
	// The failure destroys checkpoints at levels below its severity.
	for i, lvl := range c.plan.Levels {
		if lvl < e.Level {
			c.stores[i].valid = false
		}
	}
	c.need = e.Level
	if c.phase == sim.PhaseRestart {
		c.need = c.escalatedNeed(c.phaseLevel, e.Level)
	}
	c.ctx = ctxAfterFailure
}

// escalatedNeed mirrors the engine's restart policy for a severity-sev
// failure interrupting a level-cur restart.
func (c *Checker) escalatedNeed(cur, sev int) int {
	switch c.scn.Policy {
	case sim.EscalatePolicy:
		next := cur
		if !c.allowReplan {
			for _, lvl := range c.plan.Levels {
				if lvl > cur {
					next = lvl
					break
				}
			}
		}
		if sev > next {
			next = sev
		}
		return next
	default: // sim.RetryPolicy
		if sev > cur {
			return sev
		}
		return cur
	}
}

func (c *Checker) completeEvent(e sim.Event) {
	okCtx := c.ctx == ctxAfterComputeEnd ||
		// A controller abort surfaces EvComplete straight after the
		// checkpoint commit it failed at; the engine also returns an
		// error, which the caller sees.
		(c.allowReplan && c.ctx == ctxAfterCheckpointEnd)
	if !okCtx {
		c.violatef("completion", e.Time, "EvComplete in context %d, want after a compute end", int(c.ctx))
		return
	}
	if e.Time != c.lastTime {
		c.violatef("completion", e.Time, "EvComplete at %.9g, final phase ended at %.9g", e.Time, c.lastTime)
		return
	}
	if c.ctx == ctxAfterComputeEnd && e.Progress != c.sys.BaselineTime {
		c.violatef("completion", e.Time, "completed with progress %v, want T_B=%v", e.Progress, c.sys.BaselineTime)
		return
	}
	c.endTrial(e)
}

func (c *Checker) cappedEvent(e sim.Event) {
	if c.ctx != ctxInPhase {
		c.violatef("wall-cap", e.Time, "EvCapped with no open phase (ctx %d)", int(c.ctx))
		return
	}
	// I9 wall-cap: trials are cut exactly at MaxWallFactor·T_B.
	if math.Abs(e.Time-c.maxWall) > durEps(c.maxWall) {
		c.violatef("wall-cap", e.Time, "capped at %v, cap is %v", e.Time, c.maxWall)
		return
	}
	// Charge the interrupted phase's partial time.
	d := e.Time - c.phaseStart
	c.closedSum += d
	switch c.phase {
	case sim.PhaseCompute:
		c.totals.Compute += d
	case sim.PhaseCheckpoint:
		c.totals.Checkpoint[c.phaseLevel-1] += d
	case sim.PhaseRestart:
		c.totals.Restart[c.phaseLevel-1] += d
	}
	c.endTrial(e)
}

// endTrial runs the whole-trial invariants and resets for the next one.
func (c *Checker) endTrial(e sim.Event) {
	// I10 accounting: phase times partition the wall clock — the phases
	// are contiguous from t=0, so their durations must sum to the final
	// time (one rounding error per phase).
	c.totals.Wall = e.Time
	if math.Abs(c.closedSum-e.Time) > accEps(e.Time) {
		c.violatef("time-accounting", e.Time,
			"phase durations sum to %v over a %v-minute trial", c.closedSum, e.Time)
	}
	if math.Abs(c.totals.Total()-e.Time) > accEps(e.Time) {
		c.violatef("time-accounting", e.Time,
			"per-level totals sum to %v over a %v-minute trial", c.totals.Total(), e.Time)
	}
	c.last = c.totals
	c.trials++
	c.resetTrial()
}
