package conformance

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

// scenarioMatrix is the checker's acceptance sweep: every protocol
// feature (multilevel patterns, level exclusion, both restart policies,
// async top flush, wall caps) over failure-heavy Table I systems.
func scenarioMatrix(t *testing.T) []sim.Scenario {
	t.Helper()
	byName := func(name string) *system.System {
		s, err := system.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	b := byName("B")
	d4 := byName("D4")
	d8 := byName("D8")
	m := byName("M")
	return []sim.Scenario{
		{System: d4, Plan: pattern.Plan{Tau0: 1.5, Counts: []int{3}, Levels: []int{1, 2}}},
		{System: d4, Plan: pattern.Plan{Tau0: 1.5, Counts: []int{3}, Levels: []int{1, 2}}, Policy: sim.EscalatePolicy},
		{System: d4, Plan: pattern.Plan{Tau0: 2, Levels: []int{1}}},                      // top level skipped: scratch restarts
		{System: d4, Plan: pattern.Plan{Tau0: 2, Levels: []int{2}}},                      // bottom level skipped
		{System: d8, Plan: pattern.Plan{Tau0: 1, Counts: []int{2}, Levels: []int{1, 2}}}, // failure-saturated
		{System: d8, Plan: pattern.Plan{Tau0: 8, Levels: []int{2}}, MaxWallFactor: 5},    // hits the wall cap
		{System: b, Plan: pattern.Plan{Tau0: 1.2, Counts: []int{2, 1, 1}, Levels: []int{1, 2, 3, 4}}},
		{System: b, Plan: pattern.Plan{Tau0: 1.2, Counts: []int{3, 1}, Levels: []int{1, 2, 4}}},
		{System: b, Plan: pattern.Plan{Tau0: 1.2, Counts: []int{3, 1}, Levels: []int{1, 2, 4}}, AsyncTopFlush: true},
		{System: b, Plan: pattern.Plan{Tau0: 0.9, Counts: []int{2, 1, 1}, Levels: []int{1, 2, 3, 4}}, AsyncTopFlush: true, Policy: sim.EscalatePolicy},
		{System: m, Plan: pattern.Plan{Tau0: 25, Counts: []int{4, 2}, Levels: []int{1, 2, 3}}},
		{System: m, Plan: pattern.Plan{Tau0: 25, Counts: []int{4, 2}, Levels: []int{1, 2, 3}}, AsyncTopFlush: true},
	}
}

func TestCheckerCleanOnScenarioMatrix(t *testing.T) {
	trials := 40
	if testing.Short() {
		trials = 12
	}
	for i, scn := range scenarioMatrix(t) {
		ck, err := NewChecker(scn)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := sim.NewEngine(scn)
		if err != nil {
			t.Fatal(err)
		}
		eng.Observe(ck)
		seed := rng.Campaign(11, "checker-matrix").Scenario(scn.System.Name)
		for trial := 0; trial < trials; trial++ {
			if _, err := eng.Run(seed.Trial(100*i + trial)); err != nil {
				t.Fatalf("scenario %d trial %d: %v", i, trial, err)
			}
		}
		if err := ck.Err(); err != nil {
			t.Errorf("scenario %d (%s async=%v policy=%v): %v",
				i, scn.Plan, scn.AsyncTopFlush, scn.Policy, err)
		}
		if ck.TrialsChecked() != trials {
			t.Errorf("scenario %d: checked %d trials, want %d", i, ck.TrialsChecked(), trials)
		}
	}
}

// TestCheckerCrossChecksSimMetrics pins the ISSUE's cross-check: the
// checker's independent per-level phase accounting must agree with the
// obs.SimMetrics reconstruction of the same event stream, and both must
// partition the wall time.
func TestCheckerCrossChecksSimMetrics(t *testing.T) {
	for i, scn := range scenarioMatrix(t) {
		ck, err := NewChecker(scn)
		if err != nil {
			t.Fatal(err)
		}
		sm := obs.NewSimMetrics()
		eng, err := sim.NewEngine(scn)
		if err != nil {
			t.Fatal(err)
		}
		eng.Observe(obs.Multi(ck, sm))
		seed := rng.Campaign(13, "crosscheck").Scenario(scn.System.Name)
		for trial := 0; trial < 8; trial++ {
			res, err := eng.Run(seed.Trial(1000*i + trial))
			if err != nil {
				t.Fatal(err)
			}
			got := ck.LastTotals()
			want := sm.Last()
			eps := 1e-6 * (1 + got.Wall)
			if math.Abs(got.Wall-res.WallTime) > eps {
				t.Fatalf("scenario %d: checker wall %v, trial wall %v", i, got.Wall, res.WallTime)
			}
			if d := math.Abs(got.Compute - (want.ComputeUseful + want.ComputeRework)); d > eps {
				t.Errorf("scenario %d trial %d: compute %v vs SimMetrics %v",
					i, trial, got.Compute, want.ComputeUseful+want.ComputeRework)
			}
			for lvl := range got.Checkpoint {
				var w float64
				if lvl < len(want.CheckpointOK) {
					w += want.CheckpointOK[lvl]
				}
				if lvl < len(want.CheckpointWasted) {
					w += want.CheckpointWasted[lvl]
				}
				if d := math.Abs(got.Checkpoint[lvl] - w); d > eps {
					t.Errorf("scenario %d trial %d: L%d checkpoint %v vs SimMetrics %v",
						i, trial, lvl+1, got.Checkpoint[lvl], w)
				}
			}
			for lvl := range got.Restart {
				var w float64
				if lvl < len(want.RestartOK) {
					w += want.RestartOK[lvl]
				}
				if lvl < len(want.RestartFailed) {
					w += want.RestartFailed[lvl]
				}
				if d := math.Abs(got.Restart[lvl] - w); d > eps {
					t.Errorf("scenario %d trial %d: L%d restart %v vs SimMetrics %v",
						i, trial, lvl+1, got.Restart[lvl], w)
				}
			}
			if d := math.Abs(got.Total() - got.Wall); d > eps {
				t.Errorf("scenario %d trial %d: totals %v do not partition wall %v", i, trial, got.Total(), got.Wall)
			}
		}
		if err := ck.Err(); err != nil {
			t.Errorf("scenario %d: %v", i, err)
		}
	}
}

// capture records an event stream for replay-with-corruption tests.
type capture struct{ events []sim.Event }

func (c *capture) Observe(e sim.Event) { c.events = append(c.events, e) }

// recordStream captures one failure-bearing trial of scn.
func recordStream(t *testing.T, scn sim.Scenario, label string) []sim.Event {
	t.Helper()
	cap := &capture{}
	eng, err := sim.NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	eng.Observe(cap)
	seed := rng.Campaign(17, "corrupt").Scenario(label)
	for trial := 0; ; trial++ {
		if trial > 200 {
			t.Fatal("no trial with both a failure and a restart found")
		}
		cap.events = cap.events[:0]
		if _, err := eng.Run(seed.Trial(trial)); err != nil {
			t.Fatal(err)
		}
		var failures, restarts int
		for _, e := range cap.events {
			switch {
			case e.Kind == sim.EvFailure:
				failures++
			case e.Kind == sim.EvPhaseStart && e.Phase == sim.PhaseRestart:
				restarts++
			}
		}
		if failures > 0 && restarts > 0 {
			return cap.events
		}
	}
}

func replay(t *testing.T, scn sim.Scenario, events []sim.Event) *Checker {
	t.Helper()
	ck, err := NewChecker(scn)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		ck.Observe(e)
	}
	return ck
}

// TestCheckerDetectsCorruptedStreams corrupts a genuine event stream in
// targeted ways and asserts the matching invariant trips. This is the
// checker's own regression suite: if the engine ever drifts into one of
// these failure modes, the named invariant must catch it.
func TestCheckerDetectsCorruptedStreams(t *testing.T) {
	sys, err := system.ByName("D4")
	if err != nil {
		t.Fatal(err)
	}
	scn := sim.Scenario{System: sys, Plan: pattern.Plan{Tau0: 1.5, Counts: []int{3}, Levels: []int{1, 2}}}
	events := recordStream(t, scn, "D4")

	index := func(pred func(sim.Event) bool) int {
		for i, e := range events {
			if pred(e) {
				return i
			}
		}
		t.Fatal("stream lacks the event shape the corruption needs")
		return -1
	}

	cases := []struct {
		name      string
		invariant string
		corrupt   func([]sim.Event) []sim.Event
	}{
		{"clock-reversal", "monotonic-clock", func(ev []sim.Event) []sim.Event {
			i := index(func(e sim.Event) bool { return e.Time > 0 })
			ev[i].Time = -ev[i].Time
			return ev
		}},
		{"opening-not-compute", "trial-opening", func(ev []sim.Event) []sim.Event {
			ev[0].Phase = sim.PhaseCheckpoint
			return ev
		}},
		{"phase-gap", "phase-contiguity", func(ev []sim.Event) []sim.Event {
			i := index(func(e sim.Event) bool {
				return e.Kind == sim.EvPhaseStart && e.Phase == sim.PhaseCheckpoint
			})
			ev[i].Time += 1e-3
			return ev
		}},
		{"stretched-checkpoint", "phase-duration", func(ev []sim.Event) []sim.Event {
			i := index(func(e sim.Event) bool {
				return e.Kind == sim.EvPhaseEnd && e.Phase == sim.PhaseCheckpoint
			})
			ev[i].Time += 0.25
			// Keep downstream contiguity so only the duration trips.
			for j := i + 1; j < len(ev); j++ {
				ev[j].Time += 0.25
			}
			return ev
		}},
		{"wrong-odometer-level", "odometer", func(ev []sim.Event) []sim.Event {
			i := index(func(e sim.Event) bool {
				return e.Kind == sim.EvPhaseStart && e.Phase == sim.PhaseCheckpoint && e.Level == 1
			})
			ev[i].Level = 2
			return ev
		}},
		{"progress-teleport", "progress-frozen", func(ev []sim.Event) []sim.Event {
			i := index(func(e sim.Event) bool {
				return e.Kind == sim.EvPhaseEnd && e.Phase == sim.PhaseCheckpoint
			})
			ev[i].Progress += 0.5
			return ev
		}},
		{"illegal-restart-level", "restart-choice", func(ev []sim.Event) []sim.Event {
			i := index(func(e sim.Event) bool {
				return e.Kind == sim.EvPhaseStart && e.Phase == sim.PhaseRestart
			})
			// A level-0 read is always below any failure's severity.
			ev[i].Level = 0
			return ev
		}},
		{"phantom-severity", "failure-severity", func(ev []sim.Event) []sim.Event {
			i := index(func(e sim.Event) bool { return e.Kind == sim.EvFailure })
			ev[i].Level = 9
			return ev
		}},
		{"early-completion", "completion", func(ev []sim.Event) []sim.Event {
			i := index(func(e sim.Event) bool {
				return e.Kind == sim.EvPhaseEnd && e.Phase == sim.PhaseCompute &&
					e.Progress < sys.BaselineTime/2
			})
			return append(ev[:i+1], sim.Event{
				Time: ev[i].Time, Kind: sim.EvComplete, Progress: ev[i].Progress,
			})
		}},
		{"rollback-to-uncommitted-state", "rollback", func(ev []sim.Event) []sim.Event {
			i := index(func(e sim.Event) bool {
				return e.Kind == sim.EvPhaseEnd && e.Phase == sim.PhaseRestart
			})
			j := i + 1 // compute start carrying the rolled-back progress
			if ev[j].Kind != sim.EvPhaseStart {
				t.Fatal("restart end not followed by a phase start")
			}
			ev[j].Progress += 0.125
			return ev
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ev := tc.corrupt(append([]sim.Event(nil), events...))
			ck := replay(t, scn, ev)
			err := ck.Err()
			if err == nil {
				t.Fatalf("corruption %s not detected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.invariant) {
				t.Fatalf("corruption %s tripped %v, want invariant %q", tc.name, err, tc.invariant)
			}
		})
	}

	// The pristine stream must replay clean (guards against the cases
	// above passing for the wrong reason).
	if err := replay(t, scn, events).Err(); err != nil {
		t.Fatalf("uncorrupted stream flagged: %v", err)
	}
}

// TestCheckerFlagsForeignScenario: a checker built for one plan must
// reject the event stream of a different plan — the end-to-end form of
// the corruption tests above.
func TestCheckerFlagsForeignScenario(t *testing.T) {
	sys, err := system.ByName("D2")
	if err != nil {
		t.Fatal(err)
	}
	ran := sim.Scenario{System: sys, Plan: pattern.Plan{Tau0: 3, Counts: []int{2}, Levels: []int{1, 2}}}
	declared := sim.Scenario{System: sys, Plan: pattern.Plan{Tau0: 4, Counts: []int{2}, Levels: []int{1, 2}}}
	ck, err := NewChecker(declared)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(ran)
	if err != nil {
		t.Fatal(err)
	}
	eng.Observe(ck)
	if _, err := eng.Run(rng.Campaign(5, "foreign").Trial(0)); err != nil {
		t.Fatal(err)
	}
	if err := ck.Err(); err == nil {
		t.Fatal("checker accepted a trial executed under a different plan")
	}
}

// TestCheckerAllowReplanWithController: plan-switching trials pass under
// the relaxed mode and keep the plan-independent invariants enforced.
func TestCheckerAllowReplanWithController(t *testing.T) {
	sys, err := system.ByName("D4")
	if err != nil {
		t.Fatal(err)
	}
	scn := sim.Scenario{System: sys, Plan: pattern.Plan{Tau0: 1.5, Counts: []int{3}, Levels: []int{1, 2}}}
	ck, err := NewChecker(scn)
	if err != nil {
		t.Fatal(err)
	}
	ck.AllowReplan()
	eng, err := sim.NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	eng.Observe(ck)
	eng.Control(func() sim.PlanController {
		return &switchAfter{n: 2, plan: pattern.Plan{Tau0: 2.5, Counts: []int{1}, Levels: []int{1, 2}}}
	})
	seed := rng.Campaign(23, "replan")
	for trial := 0; trial < 20; trial++ {
		if _, err := eng.Run(seed.Trial(trial)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Err(); err != nil {
		t.Fatalf("replanned trials flagged: %v", err)
	}
}

// switchAfter swaps to a fixed plan at the n-th replan consult.
type switchAfter struct {
	n        int
	plan     pattern.Plan
	consults int
	done     bool
}

func (s *switchAfter) OnFailure(float64, int) {}
func (s *switchAfter) Replan(float64, float64) (pattern.Plan, bool) {
	s.consults++
	if s.done || s.consults < s.n {
		return pattern.Plan{}, false
	}
	s.done = true
	return s.plan, true
}

// TestPoolAggregatesAcrossWorkers runs a parallel campaign under the
// pool and verifies per-worker checkers cover every trial.
func TestPoolAggregatesAcrossWorkers(t *testing.T) {
	sys, err := system.ByName("D4")
	if err != nil {
		t.Fatal(err)
	}
	scn := sim.Scenario{System: sys, Plan: pattern.Plan{Tau0: 1.5, Counts: []int{3}, Levels: []int{1, 2}}}
	pool, err := NewPool(scn)
	if err != nil {
		t.Fatal(err)
	}
	camp := sim.Campaign{
		Scenario:        scn,
		Trials:          60,
		Workers:         4,
		Seed:            rng.Campaign(29, "pool"),
		ObserverFactory: pool.Observer,
	}
	if _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Err(); err != nil {
		t.Fatal(err)
	}
	if got := pool.Trials(); got != camp.Trials {
		t.Fatalf("pool checked %d trials, want %d", got, camp.Trials)
	}
	if pool.Events() == 0 {
		t.Fatal("pool observed no events")
	}
}

func TestNewCheckerRejectsInvalidScenario(t *testing.T) {
	if _, err := NewChecker(sim.Scenario{}); err == nil {
		t.Fatal("nil-system scenario accepted")
	}
	if _, err := NewPool(sim.Scenario{}); err == nil {
		t.Fatal("pool accepted invalid scenario")
	}
}
