package conformance

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Pool hands out one Checker per campaign worker goroutine (checkers
// hold per-trial state and must observe sequential trials only) and
// aggregates their verdicts after the run. Plug Observer into
// sim.Campaign.ObserverFactory, or combine it with other observers via
// obs.Multi.
type Pool struct {
	scn         sim.Scenario
	allowReplan bool

	mu       sync.Mutex
	checkers []*Checker
}

// NewPool validates the scenario once and builds a checker pool for it.
func NewPool(scn sim.Scenario) (*Pool, error) {
	if _, err := NewChecker(scn); err != nil {
		return nil, err
	}
	return &Pool{scn: scn}, nil
}

// AllowReplan relaxes the plan-dependent invariants on every checker the
// pool hands out (for campaigns that install a ControllerFactory).
func (p *Pool) AllowReplan() { p.allowReplan = true }

// Observer implements sim.Campaign.ObserverFactory.
func (p *Pool) Observer(worker int) sim.Observer {
	c, err := NewChecker(p.scn)
	if err != nil {
		// NewPool validated the scenario; a failure here is a
		// programming error (the scenario was mutated after NewPool).
		panic(fmt.Sprintf("conformance: scenario invalidated after NewPool: %v", err))
	}
	if p.allowReplan {
		c.AllowReplan()
	}
	p.mu.Lock()
	p.checkers = append(p.checkers, c)
	p.mu.Unlock()
	return c
}

// Trials returns the total number of invariant-checked trials.
func (p *Pool) Trials() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.checkers {
		n += c.TrialsChecked()
	}
	return n
}

// Events returns the total number of checked events.
func (p *Pool) Events() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.checkers {
		n += c.EventsChecked()
	}
	return n
}

// Err returns nil when every invariant held on every worker, or the
// first recorded violation annotated with the total count across
// workers. Call after the campaign finishes.
func (p *Pool) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var first error
	total := 0
	for _, c := range p.checkers {
		total += c.nviol
		if first == nil && c.Err() != nil {
			first = c.Violations()[0]
		}
	}
	if first == nil {
		return nil
	}
	if total > 1 {
		return fmt.Errorf("%w (%d violations total)", first, total)
	}
	return first
}
