package conformance

import (
	"testing"

	"repro/internal/model"
	"repro/internal/system"
)

// scaleCosts returns a copy of sys with every level's checkpoint and
// restart cost multiplied by k.
func scaleCosts(sys *system.System, k float64) *system.System {
	c := sys.Clone()
	for i := range c.Levels {
		c.Levels[i].Checkpoint *= k
		c.Levels[i].Restart *= k
	}
	return c
}

// metamorphicSystems picks representative Table I systems spanning the
// failure-rate range: the measured cluster, the 4-level BG/Q machine,
// and a failure-heavy projection.
func metamorphicSystems(t *testing.T) []*system.System {
	t.Helper()
	names := []string{"M", "B", "D5"}
	if testing.Short() {
		names = []string{"M", "D5"} // skip the 4-level machine's pricier optimizations
	}
	var out []*system.System
	for _, name := range names {
		s, err := system.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// TestModelLawEfficiencyApproachesOneAsMTBFGrows: with failures pushed
// out to effectively never, every technique's optimized plan must be
// predicted to run at essentially baseline speed — checkpoint overhead
// alone cannot hold efficiency down once the optimizer is free to
// stretch intervals. This is the paper's limiting regime in which all
// five models must agree.
func TestModelLawEfficiencyApproachesOneAsMTBFGrows(t *testing.T) {
	for _, name := range PaperTechniques {
		tech, err := model.New(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range metamorphicSystems(t) {
			reliable := sys.WithMTBF(sys.MTBF * 1e7)
			_, pred, err := tech.Optimize(reliable)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, reliable.Name, err)
			}
			if pred.Efficiency < 0.98 {
				t.Errorf("%s on %s: efficiency %.4f, want >= 0.98 in the reliable limit",
					name, reliable.Name, pred.Efficiency)
			}
			if pred.Efficiency > 1+1e-9 {
				t.Errorf("%s on %s: efficiency %.6f exceeds 1", name, reliable.Name, pred.Efficiency)
			}
		}
	}
}

// TestModelLawEfficiencyApproachesOneAsCostsVanish: with near-free
// checkpoints and restarts the optimizer can checkpoint almost
// continuously, so failures cost almost nothing to recover from and
// predicted efficiency must again approach 1 — for every technique, on
// every representative system.
func TestModelLawEfficiencyApproachesOneAsCostsVanish(t *testing.T) {
	for _, name := range PaperTechniques {
		tech, err := model.New(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range metamorphicSystems(t) {
			cheap := scaleCosts(sys, 1e-6)
			_, pred, err := tech.Optimize(cheap)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, sys.Name, err)
			}
			if pred.Efficiency < 0.98 {
				t.Errorf("%s on %s with 1e-6 costs: efficiency %.4f, want >= 0.98",
					name, sys.Name, pred.Efficiency)
			}
		}
	}
}

// TestModelLawPredictedTimeMonotoneInBaseline: for a FIXED plan, a
// strictly longer application can never be predicted to finish sooner —
// expected time is monotone non-decreasing in T_B, and always at least
// T_B itself (a resilience scheme cannot beat failure-free bare
// execution).
func TestModelLawPredictedTimeMonotoneInBaseline(t *testing.T) {
	multipliers := []float64{1, 1.5, 2, 4, 8}
	for _, name := range PaperTechniques {
		tech, err := model.New(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range metamorphicSystems(t) {
			plan, _, err := tech.Optimize(sys)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, sys.Name, err)
			}
			prev := 0.0
			for _, k := range multipliers {
				scaled := sys.WithBaseline(sys.BaselineTime * k)
				pred, err := tech.Predict(scaled, plan)
				if err != nil {
					t.Fatalf("%s on %s x%g: %v", name, sys.Name, k, err)
				}
				if pred.ExpectedTime < scaled.BaselineTime {
					t.Errorf("%s on %s x%g: predicted %.4g min beats the failure-free baseline %.4g",
						name, sys.Name, k, pred.ExpectedTime, scaled.BaselineTime)
				}
				if pred.ExpectedTime < prev {
					t.Errorf("%s on %s: predicted time fell from %.6g to %.6g as T_B grew x%g",
						name, sys.Name, prev, pred.ExpectedTime, k)
				}
				prev = pred.ExpectedTime
			}
		}
	}
}

// TestModelLawSlowerIsNeverBetter: degrading the system — shorter MTBF
// or costlier top level — can never raise a technique's optimized
// efficiency. (Each optimizer sees both configurations; the better
// system's optimum is always available to it in spirit, so a higher
// prediction on the worse system means the model's failure accounting is
// inconsistent.)
func TestModelLawSlowerIsNeverBetter(t *testing.T) {
	const slack = 1e-9
	for _, name := range PaperTechniques {
		tech, err := model.New(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sys := range metamorphicSystems(t) {
			_, base, err := tech.Optimize(sys)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, sys.Name, err)
			}
			_, flaky, err := tech.Optimize(sys.WithMTBF(sys.MTBF / 4))
			if err != nil {
				t.Fatalf("%s on %s: %v", name, sys.Name, err)
			}
			if flaky.Efficiency > base.Efficiency+slack {
				t.Errorf("%s on %s: quartering MTBF raised efficiency %.6f -> %.6f",
					name, sys.Name, base.Efficiency, flaky.Efficiency)
			}
			top := sys.Levels[len(sys.Levels)-1].Checkpoint
			_, costly, err := tech.Optimize(sys.WithTopCost(top * 4))
			if err != nil {
				t.Fatalf("%s on %s: %v", name, sys.Name, err)
			}
			if costly.Efficiency > base.Efficiency+slack {
				t.Errorf("%s on %s: quadrupling the top cost raised efficiency %.6f -> %.6f",
					name, sys.Name, base.Efficiency, costly.Efficiency)
			}
		}
	}
}
