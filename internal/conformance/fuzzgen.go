package conformance

import (
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/system"
)

// This file decodes arbitrary byte strings into simulator inputs for the
// package's fuzz targets. The decoders are total on "shaped" inputs —
// GenScenario always produces a scenario that validates — while GenPlan
// deliberately emits raw, possibly-invalid plans so pattern.Validate's
// rejection paths get fuzzed too. Both are deterministic functions of
// the input bytes, so fuzz crashes reproduce from the corpus file alone.

// byteCursor consumes bytes from a fuzz input, yielding zero once
// exhausted (so short inputs decode to small, degenerate-but-valid
// structures instead of being rejected).
type byteCursor struct {
	b []byte
	i int
}

func (c *byteCursor) next() byte {
	if c.i >= len(c.b) {
		return 0
	}
	v := c.b[c.i]
	c.i++
	return v
}

// rangeFloat maps one byte onto [lo, hi].
func (c *byteCursor) rangeFloat(lo, hi float64) float64 {
	return lo + (hi-lo)*float64(c.next())/255
}

// GenScenario decodes data into a valid simulation scenario: a system of
// 1–4 levels with positive costs and a normalized severity mix, a plan
// over a non-empty used-level subset, a restart policy, and the async
// top-flush switch. The wall cap and τ0 bounds keep worst-case trials to
// at most a few hundred thousand events, so fuzz iterations stay fast.
// ok is false only if the decoded scenario fails validation (which would
// itself be a finding — the decoder is constructed to always validate).
func GenScenario(data []byte) (sim.Scenario, bool) {
	c := &byteCursor{b: data}
	levels := 1 + int(c.next()%4)
	sys := &system.System{Name: "fuzz", Source: "fuzzgen", BaselineTime: c.rangeFloat(0.5, 30)}
	weights := make([]float64, levels)
	var wsum float64
	for i := 0; i < levels; i++ {
		sys.Levels = append(sys.Levels, system.Level{
			Checkpoint: c.rangeFloat(0.01, 5),
			Restart:    c.rangeFloat(0.01, 5),
		})
		weights[i] = float64(1 + c.next()%8)
		wsum += weights[i]
	}
	for i := range sys.Levels {
		sys.Levels[i].SeverityProb = weights[i] / wsum
	}
	sys.MTBF = c.rangeFloat(0.2, 100)

	// Used-level subset from a bitmask; empty masks fall back to all.
	mask := c.next()
	var used []int
	for l := 1; l <= levels; l++ {
		if mask>>(l-1)&1 == 1 {
			used = append(used, l)
		}
	}
	if len(used) == 0 {
		used = pattern.AllLevels(sys)
	}
	plan := pattern.Plan{Levels: used}
	for i := 0; i < len(used)-1; i++ {
		plan.Counts = append(plan.Counts, int(c.next()%5))
	}
	plan.Tau0 = c.rangeFloat(0.02, sys.BaselineTime)
	if plan.Tau0 < 0.02 {
		plan.Tau0 = 0.02
	}

	flags := c.next()
	scn := sim.Scenario{
		System:        sys,
		Plan:          plan,
		Policy:        sim.RestartPolicy(flags & 1),
		AsyncTopFlush: flags&2 != 0,
		MaxWallFactor: 3 + float64(c.next()%30),
	}
	return scn, scn.Validate() == nil
}

// GenPlan decodes data into a (system, plan) pair WITHOUT forcing the
// plan to be valid: level lists may repeat, descend or overflow the
// system, and counts may be large, so pattern.Plan.Validate's rejection
// paths are exercised alongside the odometer arithmetic of accepted
// plans. The system itself always validates.
func GenPlan(data []byte) (*system.System, pattern.Plan) {
	c := &byteCursor{b: data}
	scn, _ := GenScenario(data)
	// Re-derive a raw plan from a fresh read of the same bytes, offset
	// so the plan shape decouples from the scenario fields.
	for i := 0; i < 3; i++ {
		c.next()
	}
	n := 1 + int(c.next()%6)
	plan := pattern.Plan{}
	for i := 0; i < n; i++ {
		plan.Levels = append(plan.Levels, 1+int(c.next()%6))
	}
	nc := int(c.next() % 7)
	for i := 0; i < nc; i++ {
		plan.Counts = append(plan.Counts, int(c.next()%7))
	}
	plan.Tau0 = c.rangeFloat(-1, 10)
	return scn.System, plan
}
