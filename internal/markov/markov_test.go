package markov

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestNoFailures(t *testing.T) {
	c := &Chain{
		Segments: []Segment{
			{Kind: Compute, Duration: 5},
			{Kind: Checkpoint, Duration: 1, Level: 1},
		},
		Rates:       []float64{0},
		RestartTime: []float64{2},
	}
	got, err := c.ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("failure-free period = %v, want 6", got)
	}
	if c.Work() != 5 {
		t.Fatalf("work = %v", c.Work())
	}
}

func TestSingleSegmentScratchRestart(t *testing.T) {
	// One compute segment, free restart, rollback to start:
	// E[T] = (e^{λd} − 1)/λ.
	lam, d := 0.1, 7.0
	c := &Chain{
		Segments:    []Segment{{Kind: Compute, Duration: d}},
		Rates:       []float64{lam},
		RestartTime: []float64{0},
	}
	got, err := c.ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Expm1(lam*d) / lam
	if !almost(got, want, 1e-12) {
		t.Fatalf("scratch restart = %v, want %v", got, want)
	}
}

func TestMatchesDalyFormula(t *testing.T) {
	// One compute segment with restart cost R and retry-on-failure:
	// E[T] = e^{λR}·(e^{λd} − 1)/λ — exactly Daly's per-segment form.
	lam, d, R := 1.0/60, 12.0, 4.0
	c := &Chain{
		Segments:    []Segment{{Kind: Compute, Duration: d}},
		Rates:       []float64{lam},
		RestartTime: []float64{R},
		Policy:      Retry,
	}
	got, err := c.ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(lam*R) * math.Expm1(lam*d) / lam
	if !almost(got, want, 1e-12) {
		t.Fatalf("Daly form = %v, want %v", got, want)
	}
}

func TestTwoSegmentsEqualOneCombined(t *testing.T) {
	// Without an intermediate committed checkpoint, compute d then
	// checkpoint δ behaves exactly like one segment of d+δ.
	lam := 0.05
	split := &Chain{
		Segments: []Segment{
			{Kind: Compute, Duration: 8},
			{Kind: Checkpoint, Duration: 2, Level: 1},
		},
		Rates:       []float64{lam},
		RestartTime: []float64{0},
	}
	merged := &Chain{
		Segments:    []Segment{{Kind: Compute, Duration: 10}},
		Rates:       []float64{lam},
		RestartTime: []float64{0},
	}
	a, err := split.ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	b, err := merged.ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(a, b, 1e-12) {
		t.Fatalf("split %v != merged %v", a, b)
	}
}

func TestCommittedCheckpointReducesTime(t *testing.T) {
	// A committed mid-period checkpoint must strictly reduce expected
	// time versus the same period without it (rollback shrinks), as
	// long as failures are frequent enough to outweigh its cost... use
	// a free checkpoint to make it unconditional.
	lam := 0.1
	with := &Chain{
		Segments: []Segment{
			{Kind: Compute, Duration: 6},
			{Kind: Checkpoint, Duration: 1e-9, Level: 1},
			{Kind: Compute, Duration: 6},
		},
		Rates:       []float64{lam},
		RestartTime: []float64{0},
	}
	without := &Chain{
		Segments:    []Segment{{Kind: Compute, Duration: 12.000000001}},
		Rates:       []float64{lam},
		RestartTime: []float64{0},
	}
	a, _ := with.ExpectedPeriodTime()
	b, _ := without.ExpectedPeriodTime()
	if !(a < b) {
		t.Fatalf("checkpoint did not help: %v vs %v", a, b)
	}
	// And analytically: two independent 6-minute scratch stages.
	want := 2*math.Expm1(lam*6)/lam + 1e-9
	if !almost(a, want, 1e-6) {
		t.Fatalf("with-checkpoint = %v, want ~%v", a, want)
	}
}

func TestSeverityRouting(t *testing.T) {
	// Severity-2 failures must roll past a level-1 checkpoint back to
	// period start; severity-1 failures resume after it.
	mk := func(r1, r2 float64) *Chain {
		return &Chain{
			Segments: []Segment{
				{Kind: Compute, Duration: 5},
				{Kind: Checkpoint, Duration: 0.5, Level: 1},
				{Kind: Compute, Duration: 5},
				{Kind: Checkpoint, Duration: 1, Level: 2},
			},
			Rates:       []float64{r1, r2},
			RestartTime: []float64{0.5, 2},
			Policy:      Retry,
		}
	}
	onlySev1, err := mk(0.02, 0).ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	onlySev2, err := mk(0, 0.02).ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	if !(onlySev2 > onlySev1) {
		t.Fatalf("severity-2 failures should cost more: %v vs %v", onlySev2, onlySev1)
	}
}

func TestEscalateAtLeastRetry(t *testing.T) {
	for _, lam := range []float64{0.01, 0.05, 0.2} {
		base := Chain{
			Segments: []Segment{
				{Kind: Compute, Duration: 4},
				{Kind: Checkpoint, Duration: 0.3, Level: 1},
				{Kind: Compute, Duration: 4},
				{Kind: Checkpoint, Duration: 2, Level: 2},
			},
			Rates:       []float64{lam * 0.8, lam * 0.2},
			RestartTime: []float64{0.3, 2},
		}
		retry := base
		retry.Policy = Retry
		esc := base
		esc.Policy = Escalate
		a, err := retry.ExpectedPeriodTime()
		if err != nil {
			t.Fatal(err)
		}
		b, err := esc.ExpectedPeriodTime()
		if err != nil {
			t.Fatal(err)
		}
		if !(b >= a) {
			t.Fatalf("λ=%v: escalate %v < retry %v", lam, b, a)
		}
	}
}

func TestValidation(t *testing.T) {
	good := Chain{
		Segments:    []Segment{{Kind: Compute, Duration: 1}},
		Rates:       []float64{0.1},
		RestartTime: []float64{1},
	}
	bads := map[string]func(*Chain){
		"no segments":    func(c *Chain) { c.Segments = nil },
		"no rates":       func(c *Chain) { c.Rates = nil },
		"short restarts": func(c *Chain) { c.Rates = []float64{0.1, 0.1} },
		"neg rate":       func(c *Chain) { c.Rates = []float64{-1} },
		"nan rate":       func(c *Chain) { c.Rates = []float64{math.NaN()} },
		"zero duration":  func(c *Chain) { c.Segments[0].Duration = 0 },
		"bad ckpt level": func(c *Chain) { c.Segments[0] = Segment{Kind: Checkpoint, Duration: 1, Level: 9} },
	}
	for name, mutate := range bads {
		c := good
		c.Segments = append([]Segment(nil), good.Segments...)
		mutate(&c)
		if _, err := c.ExpectedPeriodTime(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestImpossiblePeriodIsInf(t *testing.T) {
	// Success probability of the restart underflows: expected time +Inf.
	c := &Chain{
		Segments:    []Segment{{Kind: Compute, Duration: 1e6}},
		Rates:       []float64{1},
		RestartTime: []float64{1e6},
	}
	got, err := c.ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Fatalf("impossible period = %v, want +Inf", got)
	}
}

// chainMonteCarlo simulates the chain's semantics directly and
// independently of both the analytic solver and the sim package.
func chainMonteCarlo(c *Chain, trials int, seed uint64) float64 {
	src := rand.New(rand.NewPCG(seed, 99))
	var lambda float64
	for _, r := range c.Rates {
		lambda += r
	}
	sampleSev := func() int {
		u := src.Float64() * lambda
		var acc float64
		for i, r := range c.Rates {
			acc += r
			if u <= acc {
				return i + 1
			}
		}
		return len(c.Rates)
	}
	top := len(c.Rates)
	var total float64
	for tr := 0; tr < trials; tr++ {
		var t float64
		// Rollback positions by level.
		resume := make([]int, top)
		k := 0
		for k < len(c.Segments) {
			d := c.Segments[k].Duration
			fail := src.ExpFloat64() / lambda
			if fail >= d {
				t += d
				if s := c.Segments[k]; s.Kind == Checkpoint {
					for u := 1; u <= s.Level; u++ {
						resume[u-1] = k + 1
					}
				}
				k++
				continue
			}
			t += fail
			sev := sampleSev()
			// Recovery.
			level := sev
			for {
				R := c.RestartTime[level-1]
				rf := math.Inf(1)
				if R > 0 {
					rf = src.ExpFloat64() / lambda
				}
				if rf >= R {
					t += R
					break
				}
				t += rf
				s2 := sampleSev()
				level = c.nextLevel(level, s2, top)
			}
			k = resume[level-1]
			// Rolling back invalidates nothing in the model's
			// semantics; resume positions stay as committed.
		}
		total += t
	}
	return total / float64(trials)
}

func TestMonteCarloAgreementRetry(t *testing.T) {
	c := &Chain{
		Segments: []Segment{
			{Kind: Compute, Duration: 3},
			{Kind: Checkpoint, Duration: 0.4, Level: 1},
			{Kind: Compute, Duration: 3},
			{Kind: Checkpoint, Duration: 0.4, Level: 1},
			{Kind: Compute, Duration: 3},
			{Kind: Checkpoint, Duration: 1.5, Level: 2},
		},
		Rates:       []float64{1.0 / 20, 1.0 / 80},
		RestartTime: []float64{0.4, 1.5},
		Policy:      Retry,
	}
	want, err := c.ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	got := chainMonteCarlo(c, 300000, 7)
	if !almost(got, want, 0.01) {
		t.Fatalf("monte carlo %v vs analytic %v", got, want)
	}
}

func TestMonteCarloAgreementEscalate(t *testing.T) {
	c := &Chain{
		Segments: []Segment{
			{Kind: Compute, Duration: 2},
			{Kind: Checkpoint, Duration: 0.3, Level: 1},
			{Kind: Compute, Duration: 2},
			{Kind: Checkpoint, Duration: 2.0, Level: 2},
		},
		Rates:       []float64{1.0 / 8, 1.0 / 40},
		RestartTime: []float64{0.3, 2.0},
		Policy:      Escalate,
	}
	want, err := c.ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	got := chainMonteCarlo(c, 300000, 11)
	if !almost(got, want, 0.015) {
		t.Fatalf("monte carlo %v vs analytic %v", got, want)
	}
}

func TestRecoveryAbsorptionSumsToOne(t *testing.T) {
	c := &Chain{
		Segments: []Segment{
			{Kind: Compute, Duration: 1},
		},
		Rates:       []float64{0.1, 0.05, 0.02},
		RestartTime: []float64{0.5, 1, 4},
		Policy:      Escalate,
	}
	recs := c.recoveriesInto(&Solver{}, 0.17)
	for u, r := range recs {
		var sum float64
		for _, a := range r.absorb {
			sum += a
		}
		if !almost(sum, 1, 1e-9) {
			t.Errorf("level %d absorption sums to %v", u+1, sum)
		}
		if r.time <= 0 {
			t.Errorf("level %d recovery time %v", u+1, r.time)
		}
	}
}

func TestPeriodTimeAtLeastFailureFree(t *testing.T) {
	f := func(lamRaw, dRaw uint8) bool {
		lam := 0.001 + float64(lamRaw)/1000 // 0.001..0.256
		d := 1 + float64(dRaw%20)
		c := &Chain{
			Segments: []Segment{
				{Kind: Compute, Duration: d},
				{Kind: Checkpoint, Duration: 0.5, Level: 1},
			},
			Rates:       []float64{lam},
			RestartTime: []float64{0.5},
		}
		got, err := c.ExpectedPeriodTime()
		if err != nil {
			return false
		}
		return got >= d+0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheaperRestartsNeverHurt(t *testing.T) {
	mk := func(r float64) *Chain {
		return &Chain{
			Segments: []Segment{
				{Kind: Compute, Duration: 5},
				{Kind: Checkpoint, Duration: 1, Level: 2},
			},
			Rates:       []float64{0.05, 0.01},
			RestartTime: []float64{r, r * 4},
			Policy:      Retry,
		}
	}
	f := func(rRaw uint8) bool {
		r := 0.1 + float64(rRaw)/64
		a, err1 := mk(r).ExpectedPeriodTime()
		b, err2 := mk(r * 1.5).ExpectedPeriodTime()
		if err1 != nil || err2 != nil {
			return false
		}
		return b >= a-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
