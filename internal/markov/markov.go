// Package markov computes the exact expected duration of one multilevel
// checkpoint pattern period under competing exponential failure
// processes, by first-step analysis over the period's segments. It is the
// engine behind the reimplementation of Moody et al.'s SCR Markov model
// [5] (model/moody), and doubles as an independent exact reference for
// validating the event-driven simulator.
//
// A period is a sequence of segments — computation intervals and
// checkpoint writes — ending with the top-level checkpoint. A failure of
// severity s during segment k rolls the application back to the segment
// following the most recent committed checkpoint of level >= s (or to the
// period start, whose state is the previous period's top-level
// checkpoint), after a recovery process of one or more restart attempts
// that can themselves fail. Two recovery policies are supported:
//
//   - Retry: a failure of severity <= r during a level-r restart retries
//     the same restart; a higher severity switches the recovery to the
//     level that severity requires. This is the realistic assumption the
//     paper applies to its simulations (Section IV-G).
//   - Escalate: any failure during a level-r restart escalates recovery
//     to the next level up (at least the failing severity's level),
//     capped at the top. This is Moody et al.'s pessimistic assumption,
//     the cause of their model's efficiency underestimation.
//
// The first-passage decomposition makes the computation O(segments ×
// levels): the expected time A_k to advance from segment k to k+1
// satisfies a linear relation involving only the prefix sums of earlier
// A_m, because every failure path re-enters segment k exactly once.
package markov

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
)

// RecoveryPolicy selects the failure-during-restart semantics.
type RecoveryPolicy int

const (
	// Retry is the realistic policy (paper Section IV-G).
	Retry RecoveryPolicy = iota
	// Escalate is Moody et al.'s pessimistic policy.
	Escalate
)

// SegmentKind discriminates period segments.
type SegmentKind int

const (
	// Compute is a τ0 computation interval.
	Compute SegmentKind = iota
	// Checkpoint is a checkpoint write; on success it commits state
	// recoverable for every severity up to its level.
	Checkpoint
)

// Segment is one step of the pattern period.
type Segment struct {
	Kind     SegmentKind
	Duration float64 // minutes
	// Level is the 1-based severity level a Checkpoint segment commits
	// (recoverable for severities <= Level). Ignored for Compute.
	Level int
}

// Chain is a fully-specified pattern period.
type Chain struct {
	// Segments in execution order; the last is normally the top-level
	// checkpoint.
	Segments []Segment
	// Rates holds the failure rate of each severity class, index 0 =
	// severity 1. Every severity must be recoverable by some checkpoint
	// level that appears in RestartTime.
	Rates []float64
	// RestartTime holds the restart duration per 1-based checkpoint
	// level (index 0 = level 1). A severity-s failure restarts from the
	// lowest level >= s present in this slice; entries for unused
	// levels may be 0 but the top level must cover the highest
	// severity.
	RestartTime []float64
	// Policy selects the failure-during-restart semantics.
	Policy RecoveryPolicy
}

// Work returns the useful computation per period in minutes.
func (c *Chain) Work() float64 {
	var w float64
	for _, s := range c.Segments {
		if s.Kind == Compute {
			w += s.Duration
		}
	}
	return w
}

// validate checks chain consistency and returns the total failure rate.
func (c *Chain) validate() (float64, error) {
	if len(c.Segments) == 0 {
		return 0, errors.New("markov: empty period")
	}
	if len(c.Rates) == 0 {
		return 0, errors.New("markov: no failure classes")
	}
	if len(c.RestartTime) < len(c.Rates) {
		return 0, fmt.Errorf("markov: %d restart levels cannot cover %d severities",
			len(c.RestartTime), len(c.Rates))
	}
	var total float64
	for i, r := range c.Rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return 0, fmt.Errorf("markov: severity %d rate %v invalid", i+1, r)
		}
		total += r
	}
	for k, s := range c.Segments {
		if !(s.Duration > 0) {
			return 0, fmt.Errorf("markov: segment %d duration %v must be positive", k, s.Duration)
		}
		if s.Kind == Checkpoint && (s.Level < 1 || s.Level > len(c.RestartTime)) {
			return 0, fmt.Errorf("markov: segment %d commit level %d out of range", k, s.Level)
		}
	}
	return total, nil
}

// Solver holds reusable scratch for chain evaluations. A zero Solver is
// ready to use; passing the same Solver to many ExpectedPeriodTimeWith
// calls makes the steady-state evaluation allocation-free and caches the
// per-duration exponentials within each call (pattern periods repeat a
// handful of distinct segment durations — τ0 and one checkpoint cost per
// level — so the expensive exp/expm1 calls collapse from O(segments) to
// O(distinct durations)). A Solver must not be shared between goroutines.
type Solver struct {
	prefix     []float64
	posByLevel []int
	last       []int
	rec        []recovery
	absorb     []float64 // backing array for the recovery absorb rows

	// Per-call duration → (survival, truncated-expectation) cache.
	durs, durQ, durPartial []float64
}

// expDurCacheMax bounds the duration cache's linear scan; chains with
// more distinct durations fall back to direct computation.
const expDurCacheMax = 16

// expFor returns exp(-lambda·d) and TruncExp(d, lambda), serving repeats
// from the cache. Values are bitwise identical to direct computation.
func (s *Solver) expFor(d, lambda float64) (q, partial float64) {
	for i, dv := range s.durs {
		if dv == d {
			return s.durQ[i], s.durPartial[i]
		}
	}
	q = math.Exp(-lambda * d)
	partial = dist.TruncExp(d, lambda)
	if len(s.durs) < expDurCacheMax {
		s.durs = append(s.durs, d)
		s.durQ = append(s.durQ, q)
		s.durPartial = append(s.durPartial, partial)
	}
	return q, partial
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// ExpectedPeriodTime returns the exact expected wall-clock duration of
// one period, including all failure, rollback and recovery overhead. The
// result is +Inf when the period cannot complete (a restart or segment
// whose success probability underflows to zero).
func (c *Chain) ExpectedPeriodTime() (float64, error) {
	return c.ExpectedPeriodTimeWith(nil)
}

// ExpectedPeriodTimeWith is ExpectedPeriodTime evaluating into the
// solver's scratch buffers (nil falls back to a private solver). Hot
// loops — the brute-force interval sweep — keep one Solver per goroutine
// and pay no allocation per chain.
func (c *Chain) ExpectedPeriodTimeWith(s *Solver) (float64, error) {
	lambda, err := c.validate()
	if err != nil {
		return 0, err
	}
	if lambda == 0 {
		// No failures: the period is just the sum of its segments.
		var t float64
		for _, s := range c.Segments {
			t += s.Duration
		}
		return t, nil
	}
	if s == nil {
		s = &Solver{}
	}
	s.durs = s.durs[:0]
	s.durQ = s.durQ[:0]
	s.durPartial = s.durPartial[:0]

	L := len(c.Rates)
	rec := c.recoveriesInto(s, lambda)

	// posByLevel[k*L + (u-1)] = resume segment index after a recovery
	// from a level-u checkpoint when the failure struck segment k: the
	// segment after the latest committed checkpoint of level >= u
	// strictly before k, or 0 (period start).
	n := len(c.Segments)
	posByLevel := growInts(s.posByLevel, n*L)
	s.posByLevel = posByLevel
	last := growInts(s.last, L) // last[u-1] = resume position for level u so far
	s.last = last
	for u := range last {
		last[u] = 0
	}
	for k := 0; k < n; k++ {
		copy(posByLevel[k*L:(k+1)*L], last)
		if s := c.Segments[k]; s.Kind == Checkpoint {
			for u := 1; u <= s.Level; u++ {
				last[u-1] = k + 1
			}
		}
	}

	// Forward first-passage sweep.
	prefix := growFloats(s.prefix, n+1) // prefix[k] = Σ_{m<k} A_m
	s.prefix = prefix
	prefix[0] = 0
	for k := 0; k < n; k++ {
		d := c.Segments[k].Duration
		q, partial := s.expFor(d, lambda)
		if q == 0 {
			return math.Inf(1), nil
		}
		pf := 1 - q

		acc := q*d + pf*partial
		for s := 1; s <= L; s++ {
			ps := pf * c.Rates[s-1] / lambda
			if ps == 0 {
				continue
			}
			r0 := s // recovery starts at the lowest level >= severity = s itself
			rc := rec[r0-1]
			if math.IsInf(rc.time, 1) {
				return math.Inf(1), nil
			}
			acc += ps * rc.time
			for u := r0; u <= L; u++ {
				if a := rc.absorb[u-1]; a > 0 {
					acc += ps * a * (prefix[k] - prefix[posByLevel[k*L+u-1]])
				}
			}
		}
		ak := acc / q
		prefix[k+1] = prefix[k] + ak
	}
	return prefix[n], nil
}

// recovery holds the expected duration of a recovery that starts at a
// given level and its absorption distribution over the level whose
// checkpoint is finally read.
type recovery struct {
	time   float64
	absorb []float64 // index u-1: P(recovery completes reading level u)
}

// recoveriesInto solves the per-start-level recovery chains top-down
// into the solver's scratch. Levels only move upward under both
// policies, so each level's equations depend only on strictly higher
// levels plus a self-loop.
func (c *Chain) recoveriesInto(s *Solver, lambda float64) []recovery {
	L := len(c.Rates)
	out := growRecoveries(s, L)
	for u := L; u >= 1; u-- {
		R := c.RestartTime[u-1]
		var q, partial float64
		if R > 0 {
			q, partial = s.expFor(R, lambda)
		} else {
			q = 1 // free restart always succeeds
		}
		pf := 1 - q

		var pSelf, base float64
		absorb := out[u-1].absorb
		base = q*R + pf*partial
		absorb[u-1] = q
		for s := 1; s <= L; s++ {
			ps := pf * c.Rates[s-1] / lambda
			if ps == 0 {
				continue
			}
			next := c.nextLevel(u, s, L)
			if next == u {
				pSelf += ps
				continue
			}
			base += ps * out[next-1].time
			for v := next; v <= L; v++ {
				absorb[v-1] += ps * out[next-1].absorb[v-1]
			}
		}
		denom := 1 - pSelf
		if denom <= 0 {
			out[u-1].time = math.Inf(1)
			continue
		}
		for v := range absorb {
			absorb[v] /= denom
		}
		out[u-1].time = base / denom
	}
	return out
}

// growRecoveries sizes the solver's recovery scratch to L levels with
// zeroed absorb rows carved from one backing array.
func growRecoveries(s *Solver, L int) []recovery {
	if cap(s.rec) < L || cap(s.absorb) < L*L {
		s.rec = make([]recovery, L)
		s.absorb = make([]float64, L*L)
	}
	s.rec = s.rec[:L]
	s.absorb = s.absorb[:L*L]
	for i := range s.absorb {
		s.absorb[i] = 0
	}
	for u := 0; u < L; u++ {
		s.rec[u] = recovery{absorb: s.absorb[u*L : (u+1)*L]}
	}
	return s.rec
}

// nextLevel applies the policy: the restart level after a severity-s
// failure interrupts a level-u restart.
func (c *Chain) nextLevel(u, s, top int) int {
	switch c.Policy {
	case Escalate:
		next := u + 1
		if next > top {
			next = top
		}
		if s > next {
			next = s
		}
		return next
	default: // Retry
		if s > u {
			return s
		}
		return u
	}
}
