package eventq

import "testing"

// refQueue is a deliberately naive reference implementation: an append
// slice with linear-scan minimum by (time, insertion order). The fuzz
// target below checks the heap-and-arena Queue against it operation by
// operation.
type refQueue struct {
	entries []refEntry
	seq     uint64
}

type refEntry struct {
	ev   Event
	seq  uint64
	live bool
}

func (r *refQueue) schedule(t float64, kind, data int) int {
	r.entries = append(r.entries, refEntry{ev: Event{Time: t, Kind: kind, Data: data}, seq: r.seq, live: true})
	r.seq++
	return len(r.entries) - 1
}

func (r *refQueue) len() int {
	n := 0
	for _, e := range r.entries {
		if e.live {
			n++
		}
	}
	return n
}

// min returns the index of the earliest live entry, or -1.
func (r *refQueue) min() int {
	best := -1
	for i, e := range r.entries {
		if !e.live {
			continue
		}
		if best < 0 || e.ev.Time < r.entries[best].ev.Time ||
			(e.ev.Time == r.entries[best].ev.Time && e.seq < r.entries[best].seq) {
			best = i
		}
	}
	return best
}

func (r *refQueue) pop() (Event, bool) {
	i := r.min()
	if i < 0 {
		return Event{}, false
	}
	r.entries[i].live = false
	return r.entries[i].ev, true
}

func (r *refQueue) cancel(i int) bool {
	if i < 0 || i >= len(r.entries) || !r.entries[i].live {
		return false
	}
	r.entries[i].live = false
	return true
}

func (r *refQueue) reset() {
	for i := range r.entries {
		r.entries[i].live = false
	}
}

// FuzzEventq drives Queue and refQueue through the same byte-decoded
// operation sequence (schedule with clustered timestamps to force
// tie-breaks, pop, cancel — including double-cancel of dead handles —
// and occasional reset), comparing Len/Peek/Pop results at every step
// and the full drain order at the end.
func FuzzEventq(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 10, 0, 10, 1, 1, 1}) // equal-time FIFO chain
	f.Add([]byte{0, 5, 0, 5, 2, 0, 0, 7, 2, 1, 1, 3, 0, 9, 1})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 3, 0, 4, 0, 5, 1, 2, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		var q Queue
		ref := &refQueue{}
		type live struct {
			h   Handle
			ref int
		}
		var handles []live // parallel (Queue handle, ref index); never pruned so stale entries test dead handles
		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			v := data[i]
			i++
			return v
		}
		for i < len(data) {
			op := next()
			switch op % 5 {
			case 0, 1: // schedule: cluster times on a coarse grid to force ties
				tm := float64(next()%16) / 4
				kind := int(op)
				h := q.Schedule(tm, kind, i)
				handles = append(handles, live{h: h, ref: ref.schedule(tm, kind, i)})
			case 2: // pop
				ev, err := q.Pop()
				rev, ok := ref.pop()
				if (err == nil) != ok {
					t.Fatalf("op %d: Pop err=%v, reference ok=%v", i, err, ok)
				}
				if ok && ev != rev {
					t.Fatalf("op %d: Pop %+v, reference %+v", i, ev, rev)
				}
			case 3: // cancel an arbitrary handle, live or dead
				if len(handles) == 0 {
					continue
				}
				j := int(next()) % len(handles)
				got := q.Cancel(handles[j].h)
				want := ref.cancel(handles[j].ref)
				if got != want {
					t.Fatalf("op %d: Cancel(handle %d) = %v, reference %v", i, j, got, want)
				}
			case 4: // reset, rarely (keeps sequences mostly non-trivial)
				if next()%8 == 0 {
					q.Reset()
					ref.reset()
					// All outstanding handles are now dead in both queues;
					// keep them around to check stale-handle Cancel.
				}
			}
			if q.Len() != ref.len() {
				t.Fatalf("op %d: Len %d, reference %d", i, q.Len(), ref.len())
			}
			pev, pok := q.Peek()
			if rmin := ref.min(); pok != (rmin >= 0) {
				t.Fatalf("op %d: Peek ok=%v, reference %v", i, pok, rmin >= 0)
			} else if pok && pev != ref.entries[rmin].ev {
				t.Fatalf("op %d: Peek %+v, reference %+v", i, pev, ref.entries[rmin].ev)
			}
		}
		// Drain both completely: total order must match.
		for {
			ev, err := q.Pop()
			rev, ok := ref.pop()
			if (err == nil) != ok {
				t.Fatalf("drain: Pop err=%v, reference ok=%v", err, ok)
			}
			if !ok {
				break
			}
			if ev != rev {
				t.Fatalf("drain: Pop %+v, reference %+v", ev, rev)
			}
		}
		if _, err := q.Pop(); err != ErrEmpty {
			t.Fatalf("empty Pop returned %v, want ErrEmpty", err)
		}
	})
}
