package eventq

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func drain(t *testing.T, q *Queue) []float64 {
	t.Helper()
	var out []float64
	for q.Len() > 0 {
		ev, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ev.Time)
	}
	return out
}

func TestPopOrder(t *testing.T) {
	var q Queue
	for _, tm := range []float64{5, 1, 4, 2, 3} {
		q.Schedule(tm, 0, 0)
	}
	got := drain(t, &q)
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestEmptyPop(t *testing.T) {
	var q Queue
	if _, err := q.Pop(); err != ErrEmpty {
		t.Fatalf("Pop on empty = %v, want ErrEmpty", err)
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty reported ok")
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Schedule(7.5, i, 0)
	}
	for i := 0; i < 10; i++ {
		ev, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind != i {
			t.Fatalf("tie-break not FIFO: got kind %d at pop %d", ev.Kind, i)
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	q.Schedule(1, 1, 0)
	h := q.Schedule(2, 2, 0)
	q.Schedule(3, 3, 0)
	if !q.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if q.Cancel(h) {
		t.Fatal("double Cancel returned true")
	}
	got := drain(t, &q)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("after cancel: %v", got)
	}
}

func TestCancelHead(t *testing.T) {
	var q Queue
	h := q.Schedule(1, 0, 0)
	q.Schedule(2, 0, 0)
	if !q.Cancel(h) {
		t.Fatal("cancel head failed")
	}
	ev, _ := q.Pop()
	if ev.Time != 2 {
		t.Fatalf("head after cancel = %v", ev.Time)
	}
}

func TestCancelPoppedEvent(t *testing.T) {
	var q Queue
	h := q.Schedule(1, 0, 0)
	if _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	if q.Cancel(h) {
		t.Fatal("cancel of popped event returned true")
	}
	if q.Cancel(Handle{}) {
		t.Fatal("cancel of zero handle returned true")
	}
}

func TestStaleHandleAfterSlotReuse(t *testing.T) {
	// A handle to a popped event must stay dead even after its arena
	// slot is reused by a new event.
	var q Queue
	h := q.Schedule(1, 0, 0)
	if _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	h2 := q.Schedule(2, 0, 0) // reuses the freed slot
	if q.Cancel(h) {
		t.Fatal("stale handle cancelled a reused slot")
	}
	if !q.Cancel(h2) {
		t.Fatal("fresh handle on reused slot failed to cancel")
	}
}

func TestReset(t *testing.T) {
	var q Queue
	h := q.Schedule(1, 0, 0)
	q.Schedule(2, 0, 0)
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("len after reset = %d", q.Len())
	}
	if q.Cancel(h) {
		t.Fatal("cancel after reset returned true")
	}
	q.Schedule(9, 0, 0)
	if got := drain(t, &q); len(got) != 1 || got[0] != 9 {
		t.Fatalf("queue unusable after reset: %v", got)
	}
}

func TestDataAndKindPreserved(t *testing.T) {
	var q Queue
	q.Schedule(1, 42, 7)
	ev, _ := q.Pop()
	if ev.Kind != 42 || ev.Data != 7 {
		t.Fatalf("data/kind mangled: %+v", ev)
	}
}

func TestReuseDoesNotGrowArena(t *testing.T) {
	// After a warm-up cycle, Schedule/Pop/Reset churn must reuse arena
	// slots instead of growing the slab.
	var q Queue
	for i := 0; i < 32; i++ {
		q.Schedule(float64(i), 0, 0)
	}
	q.Reset()
	warm := len(q.slots)
	for round := 0; round < 100; round++ {
		for i := 0; i < 32; i++ {
			q.Schedule(float64(i), 0, 0)
		}
		for i := 0; i < 16; i++ {
			if _, err := q.Pop(); err != nil {
				t.Fatal(err)
			}
		}
		q.Reset()
	}
	if len(q.slots) != warm {
		t.Fatalf("arena grew from %d to %d slots under steady churn", warm, len(q.slots))
	}
}

func TestHeapPropertyRandomized(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		src := rand.New(rand.NewPCG(seed, 1))
		var q Queue
		want := make([]float64, 0, n)
		for i := 0; i < int(n); i++ {
			tm := src.Float64() * 1000
			q.Schedule(tm, 0, 0)
			want = append(want, tm)
		}
		sort.Float64s(want)
		for i := 0; i < len(want); i++ {
			ev, err := q.Pop()
			if err != nil || ev.Time != want[i] {
				return false
			}
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterleavedScheduleCancelPop(t *testing.T) {
	src := rand.New(rand.NewPCG(11, 12))
	var q Queue
	var handles []Handle
	next := 0 // unique Data tag per scheduled event
	live := map[int]Handle{}
	tag := map[Handle]int{}
	for step := 0; step < 5000; step++ {
		switch op := src.IntN(3); {
		case op == 0 || q.Len() == 0:
			h := q.Schedule(src.Float64()*100, 0, next)
			handles = append(handles, h)
			live[next] = h
			tag[h] = next
			next++
		case op == 1:
			ev, err := q.Pop()
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := live[ev.Data]; !ok {
				t.Fatal("popped dead event")
			}
			delete(live, ev.Data)
			// Verify heap head is still >= popped time.
			if head, ok := q.Peek(); ok && head.Time < ev.Time {
				t.Fatalf("order violated: popped %v then head %v", ev.Time, head.Time)
			}
		default:
			h := handles[src.IntN(len(handles))]
			_, was := live[tag[h]]
			got := q.Cancel(h)
			if got != was {
				t.Fatalf("cancel=%v but live=%v", got, was)
			}
			delete(live, tag[h])
		}
		if q.Len() != len(live) {
			t.Fatalf("len mismatch: q=%d live=%d", q.Len(), len(live))
		}
	}
}
