// Package eventq implements the time-ordered event queue at the heart of
// the event-driven HPC resilience simulator: a binary min-heap keyed on
// simulated time, with stable FIFO ordering for events scheduled at the
// same instant and O(log n) cancellation by handle.
package eventq

import "errors"

// ErrEmpty is returned by Pop on an empty queue.
var ErrEmpty = errors.New("eventq: empty queue")

// Event is a scheduled occurrence in simulated time.
type Event struct {
	Time    float64 // simulated minutes
	Kind    int     // caller-defined discriminator
	Payload any     // caller-defined data

	seq   uint64 // tie-break: FIFO among equal times
	index int    // heap position, -1 once removed
}

// Handle cancels a scheduled event. Handles are single-use.
type Handle struct{ ev *Event }

// Queue is a time-ordered event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulator drives one queue
// per trial from a single goroutine.
type Queue struct {
	heap []*Event
	seq  uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Schedule inserts an event and returns a handle that can cancel it.
func (q *Queue) Schedule(t float64, kind int, payload any) Handle {
	ev := &Event{Time: t, Kind: kind, Payload: payload, seq: q.seq}
	q.seq++
	ev.index = len(q.heap)
	q.heap = append(q.heap, ev)
	q.up(ev.index)
	return Handle{ev: ev}
}

// Peek returns the earliest pending event without removing it. ok is
// false if the queue is empty.
func (q *Queue) Peek() (ev *Event, ok bool) {
	if len(q.heap) == 0 {
		return nil, false
	}
	return q.heap[0], true
}

// Pop removes and returns the earliest pending event.
func (q *Queue) Pop() (*Event, error) {
	if len(q.heap) == 0 {
		return nil, ErrEmpty
	}
	ev := q.heap[0]
	q.removeAt(0)
	return ev, nil
}

// Cancel removes a scheduled event. It reports whether the event was
// still pending (false if already popped or cancelled).
func (q *Queue) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.index < 0 {
		return false
	}
	q.removeAt(h.ev.index)
	return true
}

// Reset discards all pending events but keeps allocated capacity.
func (q *Queue) Reset() {
	for _, ev := range q.heap {
		ev.index = -1
	}
	q.heap = q.heap[:0]
}

func (q *Queue) removeAt(i int) {
	last := len(q.heap) - 1
	ev := q.heap[i]
	q.heap[i] = q.heap[last]
	q.heap[i].index = i
	q.heap = q.heap[:last]
	ev.index = -1
	if i < last {
		q.down(i)
		q.up(i)
	}
}

func (q *Queue) less(i, j int) bool {
	a, b := q.heap[i], q.heap[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.heap[i].index = i
	q.heap[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
