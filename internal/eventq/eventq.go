// Package eventq implements the time-ordered event queue at the heart of
// the event-driven HPC resilience simulator: a binary min-heap keyed on
// simulated time, with stable FIFO ordering for events scheduled at the
// same instant and O(log n) cancellation by handle.
//
// Events live in a slot arena inside the queue: Schedule reuses slots
// freed by Pop/Cancel/Reset, so a warmed-up queue performs no heap
// allocations no matter how many events flow through it. That property
// is what lets the simulator's per-trial hot path run allocation-free
// (see internal/sim.Engine).
package eventq

import "errors"

// ErrEmpty is returned by Pop on an empty queue.
var ErrEmpty = errors.New("eventq: empty queue")

// Event is a scheduled occurrence in simulated time. Pop and Peek return
// events by value; the queue retains no reference to returned events.
type Event struct {
	Time float64 // simulated minutes
	Kind int     // caller-defined discriminator
	Data int     // caller-defined payload (e.g. failure severity)
}

// Handle cancels a scheduled event. Handles are single-use: once the
// event is popped or cancelled, the handle is dead and Cancel reports
// false (slot generations make stale handles harmless even after the
// slot is reused). The zero Handle is valid and dead.
type Handle struct {
	slot int32 // arena index + 1; 0 marks the invalid zero Handle
	gen  uint32
}

// slot is one arena entry.
type slot struct {
	ev  Event
	seq uint64 // tie-break: FIFO among equal times
	gen uint32 // incremented on release; pending handles must match
	pos int32  // heap position, -1 once removed
}

// Queue is a time-ordered event queue. The zero value is ready to use.
// Queue is not safe for concurrent use; the simulator drives one queue
// per trial from a single goroutine.
type Queue struct {
	slots []slot
	heap  []int32 // heap of arena indices
	free  []int32 // released arena indices
	seq   uint64
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Schedule inserts an event and returns a handle that can cancel it.
func (q *Queue) Schedule(t float64, kind, data int) Handle {
	var idx int32
	if n := len(q.free); n > 0 {
		idx = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		idx = int32(len(q.slots))
		q.slots = append(q.slots, slot{})
	}
	s := &q.slots[idx]
	s.ev = Event{Time: t, Kind: kind, Data: data}
	s.seq = q.seq
	q.seq++
	s.pos = int32(len(q.heap))
	q.heap = append(q.heap, idx)
	q.up(int(s.pos))
	return Handle{slot: idx + 1, gen: s.gen}
}

// Peek returns the earliest pending event without removing it. ok is
// false if the queue is empty.
func (q *Queue) Peek() (ev Event, ok bool) {
	if len(q.heap) == 0 {
		return Event{}, false
	}
	return q.slots[q.heap[0]].ev, true
}

// Pop removes and returns the earliest pending event.
func (q *Queue) Pop() (Event, error) {
	if len(q.heap) == 0 {
		return Event{}, ErrEmpty
	}
	idx := q.heap[0]
	ev := q.slots[idx].ev
	q.removeAt(0)
	return ev, nil
}

// Cancel removes a scheduled event. It reports whether the event was
// still pending (false if already popped or cancelled).
func (q *Queue) Cancel(h Handle) bool {
	if h.slot == 0 {
		return false
	}
	s := &q.slots[h.slot-1]
	if s.gen != h.gen || s.pos < 0 {
		return false
	}
	q.removeAt(int(s.pos))
	return true
}

// Reset discards all pending events but keeps allocated capacity, so a
// reused queue schedules without further heap growth.
func (q *Queue) Reset() {
	for _, idx := range q.heap {
		s := &q.slots[idx]
		s.pos = -1
		s.gen++
		q.free = append(q.free, idx)
	}
	q.heap = q.heap[:0]
}

// removeAt releases the slot at heap position i.
func (q *Queue) removeAt(i int) {
	last := len(q.heap) - 1
	idx := q.heap[i]
	q.heap[i] = q.heap[last]
	q.slots[q.heap[i]].pos = int32(i)
	q.heap = q.heap[:last]
	s := &q.slots[idx]
	s.pos = -1
	s.gen++ // kill outstanding handles before the slot is reused
	q.free = append(q.free, idx)
	if i < last {
		q.down(i)
		q.up(i)
	}
}

func (q *Queue) less(i, j int) bool {
	a, b := &q.slots[q.heap[i]], &q.slots[q.heap[j]]
	if a.ev.Time != b.ev.Time {
		return a.ev.Time < b.ev.Time
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.slots[q.heap[i]].pos = int32(i)
	q.slots[q.heap[j]].pos = int32(j)
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
