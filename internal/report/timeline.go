package report

import (
	"fmt"
	"io"

	"repro/internal/pattern"
	"repro/internal/svg"
	"repro/internal/system"
)

// PlanTimelineSVG renders one full top-level period of a checkpointing
// plan as a labeled timeline — the paper's Figure 1 illustration, for an
// arbitrary plan. Computation intervals are drawn as wide white boxes
// labeled τ, checkpoints as colored boxes labeled δ_level, with box
// widths proportional to duration (checkpoint widths are floored at a
// readable minimum).
func PlanTimelineSVG(w io.Writer, sys *system.System, plan pattern.Plan, title string) error {
	if err := plan.Validate(sys); err != nil {
		return err
	}
	n := plan.PeriodIntervals()
	if n > 64 {
		return fmt.Errorf("report: period of %d intervals too long to draw", n)
	}

	type seg struct {
		width float64
		label string
		level int // 0 = computation
	}
	var segs []seg
	for k := 0; k < n; k++ {
		segs = append(segs, seg{width: plan.Tau0, label: "τ", level: 0})
		lvl := plan.Levels[plan.LevelAfterInterval(k)]
		segs = append(segs, seg{
			width: sys.Levels[lvl-1].Checkpoint,
			label: fmt.Sprintf("δ%d", lvl),
			level: lvl,
		})
	}
	var total, minCkpt float64
	for _, s := range segs {
		total += s.width
	}
	minCkpt = total / 80 // readability floor

	const (
		left   = 20.0
		top    = 52.0
		height = 44.0
	)
	// Recompute drawn widths with the floor applied.
	drawn := 0.0
	for _, s := range segs {
		w := s.width
		if s.level > 0 && w < minCkpt {
			w = minCkpt
		}
		drawn += w
	}
	scale := 920.0 / drawn
	c := svg.NewCanvas(left*2+drawn*scale, top+height+46)
	c.Text(left, 22, title, "start", 13)
	c.Text(left, 38, fmt.Sprintf("system %s — plan %s", sys.Name, plan.String()), "start", 10)

	x := left
	for _, s := range segs {
		wd := s.width
		if s.level > 0 && wd < minCkpt {
			wd = minCkpt
		}
		px := wd * scale
		fill := "white"
		if s.level > 0 {
			fill = svg.Color(s.level - 1)
		}
		c.Rect(x, top, px, height, fill)
		c.Line(x, top, x, top+height, "black", 1)
		c.Line(x, top, x+px, top, "black", 1)
		c.Line(x, top+height, x+px, top+height, "black", 1)
		if px > 12 {
			c.Text(x+px/2, top+height/2+4, s.label, "middle", 11)
		}
		x += px
	}
	c.Line(x, top, x, top+height, "black", 1)
	// Legend.
	lx := left
	ly := top + height + 30
	c.Rect(lx, ly-9, 10, 10, "white")
	c.Line(lx, ly-9, lx+10, ly-9, "black", 1)
	c.Line(lx, ly+1, lx+10, ly+1, "black", 1)
	c.Line(lx, ly-9, lx, ly+1, "black", 1)
	c.Line(lx+10, ly-9, lx+10, ly+1, "black", 1)
	c.Text(lx+14, ly, "computation (τ0)", "start", 10)
	lx += 140
	for _, lvl := range plan.Levels {
		c.Rect(lx, ly-9, 10, 10, svg.Color(lvl-1))
		c.Text(lx+14, ly, fmt.Sprintf("level-%d checkpoint", lvl), "start", 10)
		lx += 140
	}
	return c.Render(w)
}

// Fig1SVG reproduces the paper's Figure 1 exactly: a three-level
// protocol whose pattern takes two level-1 checkpoints before each
// level-2 checkpoint and one level-2 checkpoint before each level-3
// checkpoint.
func Fig1SVG(w io.Writer) error {
	sys := &system.System{
		Name:         "figure-1",
		MTBF:         1000,
		BaselineTime: 1000,
		Levels: []system.Level{
			{Checkpoint: 1, Restart: 1, SeverityProb: 0.6},
			{Checkpoint: 2, Restart: 2, SeverityProb: 0.3},
			{Checkpoint: 4, Restart: 4, SeverityProb: 0.1},
		},
	}
	plan := pattern.Plan{Tau0: 8, Counts: []int{2, 1}, Levels: []int{1, 2, 3}}
	return PlanTimelineSVG(w, sys, plan,
		"Figure 1 — checkpoint interval pattern for a three-level protocol")
}
