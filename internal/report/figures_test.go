package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func assertSVG(t *testing.T, buf *bytes.Buffer, wants ...string) {
	t.Helper()
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not a complete SVG document: %.80q...", out)
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("SVG missing %q", w)
		}
	}
}

func TestFig2SVG(t *testing.T) {
	r := &experiments.Fig2Result{
		Systems:    []string{"M", "D1"},
		Techniques: []string{"dauwe", "daly"},
		Cells: [][]experiments.Cell{
			{cell("M", "dauwe", 0.95, 0.96), cell("M", "daly", 0.90, 0.91)},
			{cell("D1", "dauwe", 0.80, 0.81), cell("D1", "daly", 0.60, 0.62)},
		},
	}
	var buf bytes.Buffer
	if err := Fig2SVG(&buf, r); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, &buf, "Figure 2", "dauwe", "D1")
}

func TestFig3SVG(t *testing.T) {
	r := &experiments.Fig3Result{
		Systems:    []string{"D8"},
		Techniques: []string{"dauwe", "di"},
		Cells: [][]experiments.Cell{
			{cell("D8", "dauwe", 0.1, 0.12), cell("D8", "di", 0.1, 0.2)},
		},
	}
	var buf bytes.Buffer
	if err := Fig3SVG(&buf, r); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, &buf, "Figure 3", "D8/dauwe", "restart failed")
}

func TestFig4And5SVG(t *testing.T) {
	g := fakeGrid()
	var buf bytes.Buffer
	if err := Fig4SVG(&buf, g, "grid title"); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, &buf, "grid title", "mtbf=26/pfs=10")

	r5 := &experiments.Fig5Result{Scenarios: g.Scenarios, Techniques: g.Techniques, Cells: g.Cells}
	buf.Reset()
	if err := Fig5SVG(&buf, r5); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, &buf, "Figure 5")
}

func TestFig6SVGRender(t *testing.T) {
	r := &experiments.Fig6Result{
		Techniques: []string{"dauwe", "di", "moody"},
		Rows: []experiments.Fig6Row{
			{Scenario: "a", Errors: []float64{0.01, 0.1, -0.05}},
			{Scenario: "b", Errors: []float64{0.00, 0.2, -0.07}},
		},
	}
	var buf bytes.Buffer
	if err := Fig6SVG(&buf, r); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, &buf, "Figure 6", "moody")
}

func TestTableISVGRender(t *testing.T) {
	var buf bytes.Buffer
	if err := TableISVG(&buf); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, &buf, "Table I", "D9")
}

func TestAblationRender(t *testing.T) {
	r := &experiments.AblationResult{
		Name: "x", BaseLabel: "base", VariantLabel: "variant",
		Rows: []experiments.AblationRow{{System: "D4", Plan: "p"}},
	}
	var buf bytes.Buffer
	if err := Ablation(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Δ efficiency") || !strings.Contains(buf.String(), "D4") {
		t.Fatalf("ablation table wrong:\n%s", buf.String())
	}
}

func TestSensitivityRender(t *testing.T) {
	r := &experiments.SensitivityResult{
		System: "D4",
		Points: []experiments.SensitivityPoint{
			{Multiplier: 0.5, Tau0: 0.65, Predicted: 0.58},
			{Multiplier: 1, Tau0: 1.3, Predicted: 0.63},
		},
	}
	var buf bytes.Buffer
	if err := Sensitivity(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "×optimal") {
		t.Fatalf("sensitivity table wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := SensitivitySVG(&buf, r); err != nil {
		t.Fatal(err)
	}
	assertSVG(t, &buf, "×0.5", "D4")
}
