package report

import (
	"bytes"
	"repro/internal/system"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/stats"
)

func cell(sys, tech string, sim_, pred float64) experiments.Cell {
	c := experiments.Cell{
		System:    sys,
		Technique: tech,
		Plan:      pattern.Plan{Tau0: 2.5, Counts: []int{1}, Levels: []int{1, 2}},
		Predicted: model.Prediction{Efficiency: pred, ExpectedTime: 1440 / pred},
	}
	c.Sim.Efficiency = stats.Summary{N: 200, Mean: sim_, Std: 0.01}
	c.Sim.BreakdownShare = sim.Breakdown{
		UsefulCompute: sim_, LostCompute: 0.3 * (1 - sim_), CheckpointOK: 0.2 * (1 - sim_),
		CheckpointFail: 0.2 * (1 - sim_), RestartOK: 0.15 * (1 - sim_), RestartFail: 0.15 * (1 - sim_),
	}
	return c
}

func TestTableAlignment(t *testing.T) {
	tab := NewTable("a", "bbbb")
	tab.AddRow("xxxxx", "y")
	tab.AddRow("z") // short row padded
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("missing rule: %q", lines[1])
	}
	if !strings.Contains(lines[2], "xxxxx  y") {
		t.Fatalf("row misaligned: %q", lines[2])
	}
}

func TestTableIRender(t *testing.T) {
	var buf bytes.Buffer
	if err := TableI(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"M", "D9", "6944.45", "BlueGene/Q Mira", "1440.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
	if got := strings.Count(out, "\n"); got != 13 { // header + rule + 11 rows
		t.Errorf("Table I has %d lines, want 13", got)
	}
}

func TestFig2Render(t *testing.T) {
	r := &experiments.Fig2Result{
		Systems:    []string{"M", "D1"},
		Techniques: []string{"dauwe", "daly"},
		Cells: [][]experiments.Cell{
			{cell("M", "dauwe", 0.95, 0.96), cell("M", "daly", 0.90, 0.91)},
			{cell("D1", "dauwe", 0.80, 0.81), cell("D1", "daly", 0.60, 0.62)},
		},
	}
	var buf bytes.Buffer
	if err := Fig2(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"dauwe sim", "daly pred", "0.950±0.010", "0.620"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig3Render(t *testing.T) {
	r := &experiments.Fig3Result{
		Systems:    []string{"D8"},
		Techniques: []string{"dauwe"},
		Cells:      [][]experiments.Cell{{cell("D8", "dauwe", 0.4, 0.42)}},
	}
	var buf bytes.Buffer
	if err := Fig3(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"useful", "ckpt failed", "40.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig3 output missing %q:\n%s", want, out)
		}
	}
}

func fakeGrid() *experiments.Fig4Result {
	return &experiments.Fig4Result{
		Scenarios: []experiments.Scenario{
			{MTBF: 26, PFSCost: 10}, {MTBF: 3, PFSCost: 10},
		},
		Techniques: []string{"dauwe", "di", "moody"},
		Cells: [][]experiments.Cell{
			{cell("mtbf=26/pfs=10", "dauwe", 0.6, 0.61), cell("mtbf=26/pfs=10", "di", 0.58, 0.65), cell("mtbf=26/pfs=10", "moody", 0.6, 0.55)},
			{cell("mtbf=3/pfs=10", "dauwe", 0.05, 0.06), cell("mtbf=3/pfs=10", "di", 0.04, 0.1), cell("mtbf=3/pfs=10", "moody", 0.05, 0.02)},
		},
	}
}

func TestFig4Render(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(&buf, fakeGrid(), "Figure 4 test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 4 test", "mtbf=26/pfs=10", "τ0=2.5min", "moody plan"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Render(t *testing.T) {
	g := fakeGrid()
	r := &experiments.Fig5Result{
		Scenarios: g.Scenarios, Techniques: g.Techniques, Cells: g.Cells,
		DauweBeatsMoody: []bool{true, false},
	}
	var buf bytes.Buffer
	if err := Fig5(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Welch", "significant", "true", "false"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig5 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5PairedRender(t *testing.T) {
	g := fakeGrid()
	paired := func(diff float64) *sim.PairedResult {
		return &sim.PairedResult{
			TrialsRun: 40, Budget: 40, Level: 0.95,
			Comparisons: []sim.ArmComparison{
				{A: 0, B: 1, Comparison: stats.Comparison{N: 40, MeanDiff: diff, CIHalf: 0.001, WelchCIHalf: 0.008, Corr: 0.97, T: 3, P: 0.002, Level: 0.95}},
				{A: 0, B: 2, Comparison: stats.Comparison{N: 40, MeanDiff: diff, CIHalf: 0.001, WelchCIHalf: 0.008, Corr: 0.97, T: 3, P: 0.002, Level: 0.95}},
				{A: 1, B: 2, Comparison: stats.Comparison{N: 40, MeanDiff: 0, CIHalf: 0.001, WelchCIHalf: 0.008, Corr: 0.97, T: 0.2, P: 0.8, Level: 0.95}},
			},
		}
	}
	r := &experiments.Fig5Result{
		Scenarios: g.Scenarios, Techniques: g.Techniques, Cells: g.Cells,
		DauweBeatsMoody: []bool{true, false},
		Paired:          []*sim.PairedResult{paired(0.004), paired(0.0001)},
	}
	var buf bytes.Buffer
	if err := Fig5(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"common random numbers", "CI shrink", "8.0x", "0.970", "+0.0040"} {
		if !strings.Contains(out, want) {
			t.Errorf("paired Fig5 output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Welch one-sided") {
		t.Error("paired Fig5 still rendered the unpaired Welch table")
	}
}

func TestVarianceReportRender(t *testing.T) {
	r := &experiments.VarianceReport{
		System:     "D4",
		Techniques: []string{"dauwe", "di"},
		Cells: []experiments.Cell{
			cell("D4", "dauwe", 0.6, 0.61),
			cell("D4", "di", 0.58, 0.65),
		},
		Paired: sim.PairedResult{
			TrialsRun: 24, Budget: 400, Level: 0.95,
			Comparisons: []sim.ArmComparison{
				{A: 0, B: 1, Comparison: stats.Comparison{N: 24, MeanDiff: 0.02, CIHalf: 0.002, WelchCIHalf: 0.013, Corr: 0.98, T: 9, P: 1e-8, Level: 0.95}},
			},
			ArmCV: []stats.CVResult{
				{N: 24, Mean: 0.601, Std: 0.01, Corr: -0.6, RawMean: 0.6, RawStd: 0.014},
				{N: 24, Mean: 0.581, Std: 0.01, Corr: -0.55, RawMean: 0.58, RawStd: 0.014},
			},
		},
	}
	var buf bytes.Buffer
	if err := VarianceReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"24/400 paired trials (saved 376)", "6.5x", "dauwe > di", "cv corr", "-0.60"} {
		if !strings.Contains(out, want) {
			t.Errorf("variance report missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Render(t *testing.T) {
	r := &experiments.Fig6Result{
		Techniques: []string{"dauwe", "di", "moody"},
		Rows: []experiments.Fig6Row{
			{Scenario: "a", Errors: []float64{0.001, 0.05, -0.02}},
			{Scenario: "b", Errors: []float64{-0.002, 0.14, -0.07}},
		},
	}
	var buf bytes.Buffer
	if err := Fig6(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"+0.050", "-0.070", "sorted by"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6 output missing %q:\n%s", want, out)
		}
	}
}

func TestCellsCSV(t *testing.T) {
	g := fakeGrid()
	var buf bytes.Buffer
	scens := []string{"s1", "s2"}
	if err := CellsCSV(&buf, scens, g.Techniques, g.Cells); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+6 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "scenario,technique,sim_mean") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "s1,dauwe,0.600") {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestPlanTimelineSVG(t *testing.T) {
	sys := &system.System{
		Name: "tl", MTBF: 100, BaselineTime: 1000,
		Levels: []system.Level{
			{Checkpoint: 0.5, Restart: 0.5, SeverityProb: 0.7},
			{Checkpoint: 3, Restart: 3, SeverityProb: 0.3},
		},
	}
	plan := pattern.Plan{Tau0: 5, Counts: []int{2}, Levels: []int{1, 2}}
	var buf bytes.Buffer
	if err := PlanTimelineSVG(&buf, sys, plan, "test timeline"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatal("not SVG")
	}
	// 3 computation boxes labeled τ, checkpoints δ1 (×2) and δ2 (×1).
	if got := strings.Count(out, ">τ<"); got != 3 {
		t.Errorf("τ labels = %d, want 3", got)
	}
	if got := strings.Count(out, ">δ1<"); got != 2 {
		t.Errorf("δ1 labels = %d, want 2", got)
	}
	if got := strings.Count(out, ">δ2<"); got != 1 {
		t.Errorf("δ2 labels = %d, want 1", got)
	}
}

func TestPlanTimelineRejects(t *testing.T) {
	sys := &system.System{
		Name: "tl", MTBF: 100, BaselineTime: 1000,
		Levels: []system.Level{{Checkpoint: 1, Restart: 1, SeverityProb: 1}},
	}
	if err := PlanTimelineSVG(&bytes.Buffer{}, sys, pattern.Plan{}, "x"); err == nil {
		t.Error("invalid plan accepted")
	}
	// Periods too long to draw are rejected, not garbled.
	sys2 := &system.System{
		Name: "tl2", MTBF: 100, BaselineTime: 1000,
		Levels: []system.Level{
			{Checkpoint: 1, Restart: 1, SeverityProb: 0.5},
			{Checkpoint: 2, Restart: 2, SeverityProb: 0.5},
		},
	}
	long := pattern.Plan{Tau0: 1, Counts: []int{99}, Levels: []int{1, 2}}
	if err := PlanTimelineSVG(&bytes.Buffer{}, sys2, long, "x"); err == nil {
		t.Error("over-long period accepted")
	}
}

func TestFig1SVG(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1SVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "three-level") {
		t.Error("figure 1 caption missing")
	}
	// Paper's pattern: 6 computation intervals, 4 δ1, 1 δ2, 1 δ3.
	if got := strings.Count(out, ">τ<"); got != 6 {
		t.Errorf("τ labels = %d, want 6", got)
	}
	if got := strings.Count(out, ">δ3<"); got != 1 {
		t.Errorf("δ3 labels = %d, want 1", got)
	}
}
