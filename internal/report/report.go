// Package report renders experiment results as aligned text tables and
// CSV series — the "same rows the paper reports" output of the
// reproduction harness.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/svg"
	"repro/internal/system"
)

// Table is a simple aligned text table builder.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = displayWidth(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && displayWidth(c) > widths[i] {
				widths[i] = displayWidth(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(c)))
			}
		}
		b.WriteString("\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// displayWidth counts runes, which keeps Greek letters (τ, δ) aligned.
func displayWidth(s string) int { return len([]rune(s)) }

func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func pct(v float64) string {
	return strconv.FormatFloat(100*v, 'f', 1, 64) + "%"
}

// TableI renders the Table I test-system catalog.
func TableI(w io.Writer) error {
	t := NewTable("system", "source", "levels", "MTBF (min)", "severity probs", "C/R times (min)", "T_B (min)")
	for _, s := range system.TableI() {
		var probs, times []string
		for _, l := range s.Levels {
			probs = append(probs, strconv.FormatFloat(l.SeverityProb, 'f', 3, 64))
			times = append(times, strconv.FormatFloat(l.Checkpoint, 'g', -1, 64))
		}
		t.AddRow(
			s.Name, s.Source, strconv.Itoa(s.NumLevels()),
			strconv.FormatFloat(s.MTBF, 'f', 2, 64),
			"("+strings.Join(probs, ", ")+")",
			"("+strings.Join(times, ", ")+")",
			strconv.FormatFloat(s.BaselineTime, 'f', 1, 64),
		)
	}
	return t.Render(w)
}

// Fig2 renders the Figure 2 efficiency comparison.
func Fig2(w io.Writer, r *experiments.Fig2Result) error {
	if _, err := fmt.Fprintln(w, "Figure 2 — simulated efficiency (mean ± σ) and model prediction per technique"); err != nil {
		return err
	}
	header := []string{"system"}
	for _, tech := range r.Techniques {
		header = append(header, tech+" sim", tech+" pred")
	}
	t := NewTable(header...)
	for i, sysName := range r.Systems {
		row := []string{sysName}
		for _, c := range r.Cells[i] {
			row = append(row,
				fmt.Sprintf("%s±%s", f3(c.Sim.Efficiency.Mean), f3(c.Sim.Efficiency.Std)),
				f3(c.Predicted.Efficiency))
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// Fig3 renders the Figure 3 time breakdown (percent of execution time).
func Fig3(w io.Writer, r *experiments.Fig3Result) error {
	if _, err := fmt.Fprintln(w, "Figure 3 — percentage of application time per event category"); err != nil {
		return err
	}
	t := NewTable("system", "technique", "useful", "lost work", "ckpt ok", "ckpt failed", "restart ok", "restart failed")
	for i, sysName := range r.Systems {
		for _, c := range r.Cells[i] {
			b := c.Sim.BreakdownShare
			t.AddRow(sysName, c.Technique,
				pct(b.UsefulCompute), pct(b.LostCompute),
				pct(b.CheckpointOK), pct(b.CheckpointFail),
				pct(b.RestartOK), pct(b.RestartFail))
		}
	}
	return t.Render(w)
}

// Fig4 renders the Figure 4 exascale grid (also used for Figure 5's
// cells).
func Fig4(w io.Writer, r *experiments.Fig4Result, title string) error {
	if _, err := fmt.Fprintln(w, title); err != nil {
		return err
	}
	header := []string{"scenario"}
	for _, tech := range r.Techniques {
		header = append(header, tech+" sim", tech+" pred", tech+" plan")
	}
	t := NewTable(header...)
	for i, sc := range r.Scenarios {
		row := []string{sc.Label()}
		for _, c := range r.Cells[i] {
			row = append(row,
				fmt.Sprintf("%s±%s", f3(c.Sim.Efficiency.Mean), f3(c.Sim.Efficiency.Std)),
				f3(c.Predicted.Efficiency),
				c.Plan.String())
		}
		t.AddRow(row...)
	}
	return t.Render(w)
}

// Fig5 renders the short-application study with significance verdicts.
func Fig5(w io.Writer, r *experiments.Fig5Result) error {
	grid := &experiments.Fig4Result{
		Scenarios: r.Scenarios, Techniques: r.Techniques, Cells: r.Cells,
	}
	if err := Fig4(w, grid, "Figure 5 — 30-minute application on the exascale grid"); err != nil {
		return err
	}
	di := techniqueIndex(r.Techniques, "dauwe")
	mi := techniqueIndex(r.Techniques, "moody")
	if r.Paired != nil {
		// CRN runs certify the claim with the paired t test and can
		// show how much sharper it is than the unpaired yardstick.
		if _, err := fmt.Fprintln(w, "\nPaired one-sided 95% test under common random numbers: Dauwe > Moody?"); err != nil {
			return err
		}
		t := NewTable("scenario", "dauwe mean", "moody mean", "diff", "±CI", "corr", "CI shrink", "significant")
		for i, sc := range r.Scenarios {
			c := r.Paired[i].Comparison(di, mi)
			if c == nil {
				return fmt.Errorf("report: scenario %s lacks the dauwe/moody paired comparison", sc.Label())
			}
			diff := c.MeanDiff
			if c.A != di {
				diff = -diff
			}
			t.AddRow(sc.Label(),
				f3(r.Cells[i][di].Sim.Efficiency.Mean),
				f3(r.Cells[i][mi].Sim.Efficiency.Mean),
				fmt.Sprintf("%+.4f", diff),
				fmt.Sprintf("%.4f", c.CIHalf),
				fmt.Sprintf("%.3f", c.Corr),
				fmt.Sprintf("%.1fx", c.WelchCIHalf/c.CIHalf),
				fmt.Sprintf("%v", r.DauweBeatsMoody[i]))
		}
		return t.Render(w)
	}
	if _, err := fmt.Fprintln(w, "\nWelch one-sided 95% test: Dauwe > Moody?"); err != nil {
		return err
	}
	t := NewTable("scenario", "dauwe mean", "moody mean", "significant")
	for i, sc := range r.Scenarios {
		t.AddRow(sc.Label(),
			f3(r.Cells[i][di].Sim.Efficiency.Mean),
			f3(r.Cells[i][mi].Sim.Efficiency.Mean),
			fmt.Sprintf("%v", r.DauweBeatsMoody[i]))
	}
	return t.Render(w)
}

// VarianceReport renders a CRN technique comparison: marginal means,
// every pairwise paired difference with its shrinkage diagnostics, the
// martingale control-variate refinements, and the stopping outcome.
func VarianceReport(w io.Writer, r *experiments.VarianceReport) error {
	if _, err := fmt.Fprintf(w, "CRN comparison on %s — %d/%d paired trials (saved %d)\n",
		r.System, r.Paired.TrialsRun, r.Paired.Budget, r.Paired.TrialsSaved()); err != nil {
		return err
	}
	mt := NewTable("technique", "plan", "sim mean±σ", "cv mean", "cv σ", "cv corr")
	for i, c := range r.Cells {
		cv := r.Paired.ArmCV[i]
		mt.AddRow(c.Technique, c.Plan.String(),
			fmt.Sprintf("%s±%s", f3(c.Sim.Efficiency.Mean), f3(c.Sim.Efficiency.Std)),
			fmt.Sprintf("%.4f", cv.Mean), fmt.Sprintf("%.4f", cv.Std), fmt.Sprintf("%.2f", cv.Corr))
	}
	if err := mt.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nPairwise paired differences (mean A − mean B, 95% CI)"); err != nil {
		return err
	}
	t := NewTable("A", "B", "diff", "±CI", "±Welch CI", "CI shrink", "corr", "verdict")
	for _, c := range r.Paired.Comparisons {
		verdict := "tie"
		if c.AGreater() {
			verdict = r.Techniques[c.A] + " > " + r.Techniques[c.B]
		} else if c.BGreater() {
			verdict = r.Techniques[c.B] + " > " + r.Techniques[c.A]
		}
		t.AddRow(r.Techniques[c.A], r.Techniques[c.B],
			fmt.Sprintf("%+.5f", c.MeanDiff),
			fmt.Sprintf("%.5f", c.CIHalf),
			fmt.Sprintf("%.5f", c.WelchCIHalf),
			fmt.Sprintf("%.1fx", c.WelchCIHalf/c.CIHalf),
			fmt.Sprintf("%.3f", c.Corr),
			verdict)
	}
	return t.Render(w)
}

func techniqueIndex(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return 0
}

// Fig6 renders the prediction-error comparison.
func Fig6(w io.Writer, r *experiments.Fig6Result) error {
	if _, err := fmt.Fprintln(w, "Figure 6 — prediction error (predicted − simulated efficiency), sorted by |moody| error"); err != nil {
		return err
	}
	header := []string{"#", "scenario"}
	header = append(header, r.Techniques...)
	t := NewTable(header...)
	for i, row := range r.Rows {
		cells := []string{strconv.Itoa(i + 1), row.Scenario}
		for _, e := range row.Errors {
			cells = append(cells, fmt.Sprintf("%+.3f", e))
		}
		t.AddRow(cells...)
	}
	return t.Render(w)
}

// CellsCSV writes any cell grid as CSV rows:
// scenario,technique,sim_mean,sim_std,predicted,pred_error,sim_p05,
// sim_median,sim_p95,plan. The three efficiency quantiles come from one
// stats.Quantiles call per cell (one sort, not one per quantile).
func CellsCSV(w io.Writer, scenarios []string, techniques []string, cells [][]experiments.Cell) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "technique", "sim_mean", "sim_std", "predicted", "pred_error",
		"sim_p05", "sim_median", "sim_p95", "plan"}); err != nil {
		return err
	}
	for i, sc := range scenarios {
		for _, c := range cells[i] {
			// Exact-sink cells carry per-trial efficiencies; streaming
			// cells fall back to sketch-estimated quantiles. Cells built
			// from summaries alone get blank quantile columns.
			q := []string{"", "", ""}
			if len(c.Sim.Efficiencies) > 0 {
				qs, err := stats.Quantiles(c.Sim.Efficiencies, 0.05, 0.5, 0.95)
				if err != nil {
					return fmt.Errorf("report: %s/%s efficiency quantiles: %w", sc, c.Technique, err)
				}
				q = []string{f3(qs[0]), f3(qs[1]), f3(qs[2])}
			} else if sk := c.Sim.EfficiencySketch; sk != nil && sk.N() > 0 {
				q = []string{f3(sk.Quantile(0.05)), f3(sk.Quantile(0.5)), f3(sk.Quantile(0.95))}
			}
			rec := []string{
				sc, c.Technique,
				f3(c.Sim.Efficiency.Mean), f3(c.Sim.Efficiency.Std),
				f3(c.Predicted.Efficiency), fmt.Sprintf("%+.4f", c.PredictionError()),
				q[0], q[1], q[2],
				c.Plan.String(),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Ablation renders a design-choice study.
func Ablation(w io.Writer, r *experiments.AblationResult) error {
	if _, err := fmt.Fprintf(w, "Ablation — %s: %s vs %s\n", r.Name, r.BaseLabel, r.VariantLabel); err != nil {
		return err
	}
	t := NewTable("system", "plan", r.BaseLabel, r.VariantLabel, "Δ efficiency")
	for _, row := range r.Rows {
		t.AddRow(row.System, row.Plan,
			fmt.Sprintf("%s±%s", f3(row.Base.Efficiency.Mean), f3(row.Base.Efficiency.Std)),
			fmt.Sprintf("%s±%s", f3(row.Variant.Efficiency.Mean), f3(row.Variant.Efficiency.Std)),
			fmt.Sprintf("%+.3f", row.Delta()))
	}
	return t.Render(w)
}

// Sensitivity renders the τ0 sensitivity sweep.
func Sensitivity(w io.Writer, r *experiments.SensitivityResult) error {
	if _, err := fmt.Fprintf(w, "Sensitivity — efficiency vs τ0 on %s (optimum %s)\n", r.System, r.Plan.String()); err != nil {
		return err
	}
	t := NewTable("×optimal", "τ0 (min)", "predicted", "simulated")
	for _, p := range r.Points {
		t.AddRow(
			strconv.FormatFloat(p.Multiplier, 'g', 3, 64),
			strconv.FormatFloat(p.Tau0, 'f', 3, 64),
			f3(p.Predicted),
			fmt.Sprintf("%s±%s", f3(p.Sim.Mean), f3(p.Sim.Std)))
	}
	return t.Render(w)
}

// SensitivitySVG renders the sweep as a bar chart with prediction
// diamonds.
func SensitivitySVG(w io.Writer, r *experiments.SensitivityResult) error {
	cats := make([]string, len(r.Points))
	s := svg.Series{Name: "simulated"}
	for i, p := range r.Points {
		cats[i] = fmt.Sprintf("×%.3g", p.Multiplier)
		s.Values = append(s.Values, p.Sim.Mean)
		s.Whiskers = append(s.Whiskers, p.Sim.Std)
		s.Markers = append(s.Markers, p.Predicted)
	}
	chart := &svg.BarChart{
		Title:      fmt.Sprintf("Efficiency vs τ0 around the optimum — system %s", r.System),
		YLabel:     "efficiency",
		Categories: cats,
		Series:     []svg.Series{s},
		YMax:       1,
	}
	return chart.Render(w)
}
