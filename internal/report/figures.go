package report

import (
	"io"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/svg"
)

// gridToBars converts a cell grid into bar-chart series: simulated means
// as bars, standard deviations as whiskers, model predictions as
// diamonds.
func gridToBars(scenarios []string, techniques []string, cells [][]experiments.Cell) []svg.Series {
	series := make([]svg.Series, len(techniques))
	for si, tech := range techniques {
		s := svg.Series{
			Name:     tech,
			Values:   make([]float64, len(scenarios)),
			Whiskers: make([]float64, len(scenarios)),
			Markers:  make([]float64, len(scenarios)),
		}
		for i := range scenarios {
			c := cells[i][si]
			s.Values[i] = c.Sim.Efficiency.Mean
			s.Whiskers[i] = c.Sim.Efficiency.Std
			s.Markers[i] = c.Predicted.Efficiency
		}
		series[si] = s
	}
	return series
}

// Fig2SVG renders Figure 2 as an SVG image.
func Fig2SVG(w io.Writer, r *experiments.Fig2Result) error {
	chart := &svg.BarChart{
		Title:      "Figure 2 — efficiency per technique across the Table I systems",
		YLabel:     "efficiency",
		Categories: r.Systems,
		Series:     gridToBars(r.Systems, r.Techniques, r.Cells),
		YMax:       1,
	}
	return chart.Render(w)
}

// BreakdownComponents are the Figure 3 stack slices, bottom first.
var BreakdownComponents = []string{
	"useful compute", "lost work", "checkpoint ok", "checkpoint failed", "restart ok", "restart failed",
}

// Fig3SVG renders Figure 3 as an SVG image.
func Fig3SVG(w io.Writer, r *experiments.Fig3Result) error {
	var cats []string
	var shares [][]float64
	for i, sysName := range r.Systems {
		for _, c := range r.Cells[i] {
			cats = append(cats, sysName+"/"+c.Technique)
			b := c.Sim.BreakdownShare
			shares = append(shares, []float64{
				b.UsefulCompute, b.LostCompute, b.CheckpointOK,
				b.CheckpointFail, b.RestartOK, b.RestartFail,
			})
		}
	}
	chart := &svg.StackedBar{
		Title:      "Figure 3 — percentage of application time per event category",
		Categories: cats,
		Components: BreakdownComponents,
		Shares:     shares,
	}
	return chart.Render(w)
}

// Fig4SVG renders one Figure 4/5 grid as an SVG image.
func Fig4SVG(w io.Writer, r *experiments.Fig4Result, title string) error {
	labels := make([]string, len(r.Scenarios))
	for i, sc := range r.Scenarios {
		labels[i] = sc.Label()
	}
	chart := &svg.BarChart{
		Title:      title,
		YLabel:     "efficiency",
		Categories: labels,
		Series:     gridToBars(labels, r.Techniques, r.Cells),
		YMax:       1,
	}
	return chart.Render(w)
}

// Fig5SVG renders Figure 5 as an SVG image.
func Fig5SVG(w io.Writer, r *experiments.Fig5Result) error {
	grid := &experiments.Fig4Result{
		Scenarios: r.Scenarios, Techniques: r.Techniques, Cells: r.Cells,
	}
	return Fig4SVG(w, grid, "Figure 5 — 30-minute application on the exascale grid")
}

// Fig6SVG renders Figure 6 as an SVG image.
func Fig6SVG(w io.Writer, r *experiments.Fig6Result) error {
	cats := make([]string, len(r.Rows))
	series := make([]svg.Series, len(r.Techniques))
	for si, tech := range r.Techniques {
		series[si] = svg.Series{Name: tech, Values: make([]float64, len(r.Rows))}
	}
	for i, row := range r.Rows {
		cats[i] = strconv.Itoa(i + 1)
		for si := range r.Techniques {
			series[si].Values[i] = row.Errors[si]
		}
	}
	chart := &svg.Scatter{
		Title:      "Figure 6 — prediction error (predicted − simulated efficiency)",
		YLabel:     "prediction error",
		Categories: cats,
		Series:     series,
	}
	return chart.Render(w)
}

// TableISVG renders the Table I catalog as a simple SVG table image so
// every paper artifact has an image form.
func TableISVG(w io.Writer) error {
	var buf []string
	{
		var sb writerBuilder
		if err := TableI(&sb); err != nil {
			return err
		}
		buf = sb.lines
	}
	lineH := 16.0
	c := svg.NewCanvas(980, lineH*float64(len(buf))+40)
	c.Text(14, 20, "Table I — multilevel checkpointing test systems", "start", 13)
	for i, line := range buf {
		c.Text(14, 40+lineH*float64(i), line, "start", 11)
	}
	return c.Render(w)
}

// writerBuilder captures written lines (monospace table rows).
type writerBuilder struct {
	lines   []string
	partial string
}

func (w *writerBuilder) Write(p []byte) (int, error) {
	w.partial += string(p)
	for {
		i := indexByte(w.partial, '\n')
		if i < 0 {
			break
		}
		w.lines = append(w.lines, w.partial[:i])
		w.partial = w.partial[i+1:]
	}
	return len(p), nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
