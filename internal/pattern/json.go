package pattern

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/system"
)

// jsonPlan is the serialized form of a Plan; tools exchange optimized
// plans through it (mlckpt -plan-out → simtrace -plan-in).
type jsonPlan struct {
	Tau0Minutes float64 `json:"tau0_minutes"`
	Counts      []int   `json:"counts,omitempty"`
	Levels      []int   `json:"levels"`
}

// WriteJSON serializes the plan.
func (p Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonPlan{Tau0Minutes: p.Tau0, Counts: p.Counts, Levels: p.Levels})
}

// ReadJSON deserializes a plan and validates it against the system it
// will run on.
func ReadJSON(r io.Reader, sys *system.System) (Plan, error) {
	var jp jsonPlan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jp); err != nil {
		return Plan{}, fmt.Errorf("pattern: decode: %w", err)
	}
	p := Plan{Tau0: jp.Tau0Minutes, Counts: jp.Counts, Levels: jp.Levels}
	if err := p.Validate(sys); err != nil {
		return Plan{}, err
	}
	return p, nil
}
