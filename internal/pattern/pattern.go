// Package pattern represents pattern-based multilevel checkpoint plans:
// the computation interval τ0, the counts N_1..N_{L-1} of level-i
// checkpoints taken before each level-i+1 checkpoint (paper Section III),
// and — for the level-exclusion study of Section IV-F — the subset of
// system levels a plan actually uses.
package pattern

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/system"
)

// Plan is one fully-specified checkpointing strategy for a system.
type Plan struct {
	// Tau0 is the computation interval between successive checkpoints,
	// in minutes (the paper's τ0 decision variable).
	Tau0 float64
	// Counts holds N_1..N_{ℓ-1} for the ℓ levels the plan uses: the
	// number of level-i checkpoints before each level-i+1 checkpoint.
	// Empty when the plan uses a single level.
	Counts []int
	// Levels is the ascending 1-based subset of system levels the plan
	// uses. A plan that skips the PFS level (Figure 5) simply omits L.
	// Failures whose severity exceeds the highest used level restart
	// the application from scratch.
	Levels []int
}

// NumUsed returns ℓ, the number of checkpoint levels the plan uses.
func (p Plan) NumUsed() int { return len(p.Levels) }

// TopLevel returns the highest system level the plan uses (0 if none).
func (p Plan) TopLevel() int {
	if len(p.Levels) == 0 {
		return 0
	}
	return p.Levels[len(p.Levels)-1]
}

// UsesLevel reports whether the 1-based system level appears in the plan.
func (p Plan) UsesLevel(level int) bool {
	for _, l := range p.Levels {
		if l == level {
			return true
		}
	}
	return false
}

// Validate checks the plan against a system description.
func (p Plan) Validate(sys *system.System) error {
	if !(p.Tau0 > 0) || math.IsInf(p.Tau0, 1) || math.IsNaN(p.Tau0) {
		return fmt.Errorf("pattern: τ0 = %v must be positive and finite", p.Tau0)
	}
	if len(p.Levels) == 0 {
		return errors.New("pattern: plan must use at least one level")
	}
	if len(p.Counts) != len(p.Levels)-1 {
		return fmt.Errorf("pattern: %d counts for %d levels (want %d)",
			len(p.Counts), len(p.Levels), len(p.Levels)-1)
	}
	prev := 0
	for _, l := range p.Levels {
		if l <= prev {
			return fmt.Errorf("pattern: levels %v must be strictly ascending", p.Levels)
		}
		if l > sys.NumLevels() {
			return fmt.Errorf("pattern: level %d exceeds system's %d levels", l, sys.NumLevels())
		}
		prev = l
	}
	for i, n := range p.Counts {
		if n < 0 {
			return fmt.Errorf("pattern: N_%d = %d must be non-negative", i+1, n)
		}
	}
	return nil
}

// PeriodIntervals returns the number of τ0 computation intervals in one
// full top-level pattern period, Π(N_i + 1).
func (p Plan) PeriodIntervals() int {
	n := 1
	for _, c := range p.Counts {
		n *= c + 1
	}
	return n
}

// PeriodWork returns the useful computation per top-level period,
// τ0 · Π(N_i + 1), in minutes.
func (p Plan) PeriodWork() float64 {
	return p.Tau0 * float64(p.PeriodIntervals())
}

// CheckpointsPerPeriod returns, aligned with p.Levels, how many
// checkpoints of each used level one full top-level period contains.
// With ℓ used levels and counts N_1..N_{ℓ-1}, a period contains
// N_i · Π_{j>i}(N_j+1) checkpoints of used-level i and exactly one
// checkpoint of the top used level.
func (p Plan) CheckpointsPerPeriod() []int {
	out := make([]int, len(p.Levels))
	suffix := 1
	for i := len(p.Levels) - 1; i >= 0; i-- {
		if i == len(p.Levels)-1 {
			out[i] = 1
		} else {
			out[i] = p.Counts[i] * suffix
			suffix *= p.Counts[i] + 1
		}
	}
	return out
}

// LevelAfterInterval returns the used-level index (0-based into
// p.Levels) of the checkpoint taken after the k-th τ0 interval of a
// period (k in [0, PeriodIntervals())). This is the pattern "odometer":
// interval k is followed by the highest level whose subperiod boundary k+1
// reaches, and the final interval of the period is followed by the top
// used level.
func (p Plan) LevelAfterInterval(k int) int {
	n := p.PeriodIntervals()
	if k < 0 || k >= n {
		panic(fmt.Sprintf("pattern: interval %d outside period of %d", k, n))
	}
	pos := k + 1 // 1-based boundary after the interval
	if pos == n {
		return len(p.Levels) - 1
	}
	// Sub-period sizes: level i (0-based) boundary every Π_{j<=i}(N_j+1)
	// intervals.
	size := 1
	level := 0
	for i := 0; i < len(p.Counts); i++ {
		size *= p.Counts[i] + 1
		if pos%size == 0 {
			level = i + 1
		} else {
			break
		}
	}
	return level
}

// TopPeriods returns N_L from paper Eqn. 3: the (real-valued) number of
// top-level periods needed to complete tb minutes of computation.
func (p Plan) TopPeriods(tb float64) float64 {
	return tb / p.PeriodWork()
}

// String renders the plan compactly, e.g.
// "τ0=3.50min levels=[1 2 4] N=[2 1]".
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "τ0=%.4gmin levels=%v", p.Tau0, p.Levels)
	if len(p.Counts) > 0 {
		fmt.Fprintf(&b, " N=%v", p.Counts)
	}
	return b.String()
}

// AllLevels returns the complete ascending level set 1..L for a system.
func AllLevels(sys *system.System) []int {
	out := make([]int, sys.NumLevels())
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// LowestLevels returns the ascending subset 1..ℓ.
func LowestLevels(l int) []int {
	out := make([]int, l)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// TopLevels returns the ascending subset of the k highest levels of an
// L-level system, e.g. TopLevels(4, 2) = [3 4]. Used for models limited
// to fewer levels than the system provides (Daly, Di).
func TopLevels(numLevels, k int) []int {
	if k > numLevels {
		k = numLevels
	}
	out := make([]int, k)
	for i := range out {
		out[i] = numLevels - k + i + 1
	}
	return out
}
