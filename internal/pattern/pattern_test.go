package pattern

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/system"
)

func sys3() *system.System {
	return &system.System{
		Name:         "t3",
		MTBF:         100,
		BaselineTime: 1000,
		Levels: []system.Level{
			{Checkpoint: 0.1, Restart: 0.1, SeverityProb: 0.6},
			{Checkpoint: 1, Restart: 1, SeverityProb: 0.3},
			{Checkpoint: 10, Restart: 10, SeverityProb: 0.1},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	s := sys3()
	good := []Plan{
		{Tau0: 5, Counts: []int{2, 1}, Levels: []int{1, 2, 3}},
		{Tau0: 5, Counts: nil, Levels: []int{3}},
		{Tau0: 5, Counts: []int{0}, Levels: []int{2, 3}},
		{Tau0: 5, Counts: []int{4}, Levels: []int{1, 2}}, // skips PFS
	}
	for _, p := range good {
		if err := p.Validate(s); err != nil {
			t.Errorf("plan %v rejected: %v", p, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	s := sys3()
	bad := []Plan{
		{Tau0: 0, Counts: nil, Levels: []int{3}},
		{Tau0: math.Inf(1), Counts: nil, Levels: []int{3}},
		{Tau0: math.NaN(), Counts: nil, Levels: []int{3}},
		{Tau0: 5, Counts: nil, Levels: nil},
		{Tau0: 5, Counts: []int{1}, Levels: []int{3}},           // count/level mismatch
		{Tau0: 5, Counts: []int{1, 1}, Levels: []int{1, 2}},     // too many counts
		{Tau0: 5, Counts: []int{1}, Levels: []int{2, 2}},        // not ascending
		{Tau0: 5, Counts: []int{1}, Levels: []int{3, 1}},        // descending
		{Tau0: 5, Counts: []int{1}, Levels: []int{1, 4}},        // beyond L
		{Tau0: 5, Counts: []int{-1, 1}, Levels: []int{1, 2, 3}}, // negative N
	}
	for _, p := range bad {
		if err := p.Validate(s); err == nil {
			t.Errorf("plan %v accepted", p)
		}
	}
}

func TestPeriodArithmetic(t *testing.T) {
	p := Plan{Tau0: 3, Counts: []int{2, 1}, Levels: []int{1, 2, 3}}
	if got := p.PeriodIntervals(); got != 6 {
		t.Fatalf("intervals = %d, want 6", got)
	}
	if got := p.PeriodWork(); got != 18 {
		t.Fatalf("work = %v, want 18", got)
	}
	if got := p.TopPeriods(180); got != 10 {
		t.Fatalf("top periods = %v, want 10", got)
	}
}

func TestCheckpointsPerPeriod(t *testing.T) {
	// Figure 1's pattern: two level-1 ckpts before each level-2, one
	// level-2 before each level-3 → per period: 4 level-1, 1 level-2,
	// 1 level-3... recompute: counts = [2, 1]; level-1 ckpts = 2·(1+1)=4,
	// level-2 ckpts = 1·1 = 1, level-3 = 1.
	p := Plan{Tau0: 1, Counts: []int{2, 1}, Levels: []int{1, 2, 3}}
	got := p.CheckpointsPerPeriod()
	want := []int{4, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ckpts per period = %v, want %v", got, want)
		}
	}
	// Degenerate single level.
	p1 := Plan{Tau0: 1, Levels: []int{3}}
	if got := p1.CheckpointsPerPeriod(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("single-level ckpts = %v", got)
	}
}

func TestLevelAfterIntervalFigure1(t *testing.T) {
	// counts [2,1]: period of 6 intervals; boundaries:
	// 1→L1, 2→L1, 3→L2, 4→L1, 5→L1, 6→L3 (top).
	p := Plan{Tau0: 1, Counts: []int{2, 1}, Levels: []int{1, 2, 3}}
	want := []int{0, 0, 1, 0, 0, 2}
	for k := 0; k < 6; k++ {
		if got := p.LevelAfterInterval(k); got != want[k] {
			t.Errorf("interval %d → used level %d, want %d", k, got, want[k])
		}
	}
}

func TestLevelAfterIntervalZeroCounts(t *testing.T) {
	// N=0 means no intermediate checkpoints of that level: counts [0,2]
	// → subperiods of size 1 for level 2... boundaries at every interval
	// go straight to level 2 or 3.
	p := Plan{Tau0: 1, Counts: []int{0, 2}, Levels: []int{1, 2, 3}}
	if p.PeriodIntervals() != 3 {
		t.Fatalf("intervals = %d", p.PeriodIntervals())
	}
	want := []int{1, 1, 2} // L2, L2, L3
	for k := 0; k < 3; k++ {
		if got := p.LevelAfterInterval(k); got != want[k] {
			t.Errorf("interval %d → %d, want %d", k, got, want[k])
		}
	}
	ck := p.CheckpointsPerPeriod()
	if ck[0] != 0 || ck[1] != 2 || ck[2] != 1 {
		t.Fatalf("ckpts per period = %v", ck)
	}
}

func TestLevelAfterIntervalPanicsOutOfRange(t *testing.T) {
	p := Plan{Tau0: 1, Counts: []int{1}, Levels: []int{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.LevelAfterInterval(2)
}

func TestOdometerConsistentWithCounts(t *testing.T) {
	// Property: counting checkpoints emitted by the odometer over one
	// period must equal CheckpointsPerPeriod.
	f := func(n1Raw, n2Raw uint8) bool {
		n1 := int(n1Raw % 5)
		n2 := int(n2Raw % 4)
		p := Plan{Tau0: 1, Counts: []int{n1, n2}, Levels: []int{1, 2, 3}}
		counts := make([]int, 3)
		for k := 0; k < p.PeriodIntervals(); k++ {
			counts[p.LevelAfterInterval(k)]++
		}
		want := p.CheckpointsPerPeriod()
		for i := range want {
			if counts[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopLevelAndUses(t *testing.T) {
	p := Plan{Tau0: 1, Counts: []int{2}, Levels: []int{2, 4}}
	if p.TopLevel() != 4 || p.NumUsed() != 2 {
		t.Fatalf("top=%d used=%d", p.TopLevel(), p.NumUsed())
	}
	if !p.UsesLevel(2) || p.UsesLevel(3) {
		t.Fatal("UsesLevel wrong")
	}
	var empty Plan
	if empty.TopLevel() != 0 {
		t.Fatal("empty plan top level should be 0")
	}
}

func TestLevelHelpers(t *testing.T) {
	s := sys3()
	if got := AllLevels(s); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("AllLevels = %v", got)
	}
	if got := LowestLevels(2); len(got) != 2 || got[1] != 2 {
		t.Fatalf("LowestLevels = %v", got)
	}
	if got := TopLevels(4, 2); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("TopLevels = %v", got)
	}
	if got := TopLevels(2, 5); len(got) != 2 || got[0] != 1 {
		t.Fatalf("TopLevels clamp = %v", got)
	}
}

func TestString(t *testing.T) {
	p := Plan{Tau0: 3.5, Counts: []int{2, 1}, Levels: []int{1, 2, 4}}
	s := p.String()
	if s == "" || p.Validate(sys3()) == nil {
		// Level 4 invalid on a 3-level system: String still works.
		_ = s
	}
	if want := "levels=[1 2 4]"; !contains(s, want) {
		t.Fatalf("String = %q missing %q", s, want)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestEveryIntervalHasExactlyOneCheckpoint(t *testing.T) {
	// Property: summing CheckpointsPerPeriod over levels equals the
	// number of intervals — the pattern takes exactly one checkpoint
	// after every computation interval.
	f := func(n1, n2, n3 uint8) bool {
		p := Plan{
			Tau0:   1,
			Counts: []int{int(n1 % 6), int(n2 % 5), int(n3 % 4)},
			Levels: []int{1, 2, 3, 4},
		}
		total := 0
		for _, c := range p.CheckpointsPerPeriod() {
			total += c
		}
		return total == p.PeriodIntervals()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopLevelCheckpointEndsPeriod(t *testing.T) {
	f := func(n1, n2 uint8) bool {
		p := Plan{Tau0: 1, Counts: []int{int(n1 % 7), int(n2 % 7)}, Levels: []int{1, 2, 3}}
		last := p.PeriodIntervals() - 1
		return p.LevelAfterInterval(last) == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := sys3()
	p := Plan{Tau0: 2.5, Counts: []int{2, 1}, Levels: []int{1, 2, 3}}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tau0 != p.Tau0 || back.Counts[1] != 1 || back.Levels[2] != 3 {
		t.Fatalf("round trip = %v", back)
	}
}

func TestReadJSONValidates(t *testing.T) {
	s := sys3()
	if _, err := ReadJSON(strings.NewReader(`{"tau0_minutes":-1,"levels":[1]}`), s); err == nil {
		t.Fatal("invalid plan accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"tau0_minutes":1,"levels":[9]}`), s); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"bogus":1}`), s); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`nope`), s); err == nil {
		t.Fatal("garbage accepted")
	}
}
