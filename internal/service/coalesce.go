package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent identical requests
// (singleflight): the first request for a digest becomes the leader and
// computes; followers arriving before completion wait on the same call,
// so a thundering herd of N identical requests costs exactly one sweep.
//
// Each call owns its own cancellation context, detached from any single
// request: a waiter that times out leaves without poisoning the others,
// and only when the LAST waiter leaves is the computation canceled (the
// sweep aborts at the next chunk boundary and nothing is cached).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*call
}

// call is one in-flight computation.
type call struct {
	// ctx cancels the computation when the last waiter leaves.
	ctx    context.Context
	cancel context.CancelFunc
	// done closes once body/err are published.
	done chan struct{}
	body []byte
	err  error

	waiters int

	// progress/total feed streamed progress lines to every waiter of a
	// coalesced /v1/simulate run. progress is updated from campaign
	// worker goroutines; total is set before the campaign starts.
	progress atomic.Int64
	total    atomic.Int64
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*call)}
}

// join returns the in-flight call for key, creating one (leader=true)
// if none exists. Every join must be paired with either a successful
// wait for done or a leave.
func (g *flightGroup) join(key string) (c *call, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		c.waiters++
		return c, false
	}
	ctx, cancel := context.WithCancel(context.Background())
	c = &call{ctx: ctx, cancel: cancel, done: make(chan struct{}), waiters: 1}
	g.m[key] = c
	return c, true
}

// leave records that a waiter gave up (deadline, disconnect). When the
// last waiter leaves an uncompleted call, the computation is canceled
// and the key freed so a later request starts fresh.
func (g *flightGroup) leave(key string, c *call) {
	g.mu.Lock()
	defer g.mu.Unlock()
	c.waiters--
	if c.waiters > 0 {
		return
	}
	select {
	case <-c.done: // already completed; complete() cleaned up
	default:
		c.cancel()
		if g.m[key] == c {
			delete(g.m, key)
		}
	}
}

// complete publishes the result to every waiter and retires the call.
func (g *flightGroup) complete(key string, c *call, body []byte, err error) {
	g.mu.Lock()
	c.body, c.err = body, err
	close(c.done)
	if g.m[key] == c {
		delete(g.m, key)
	}
	g.mu.Unlock()
	c.cancel() // release the context's resources; computation is over
}
