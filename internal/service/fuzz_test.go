package service

import (
	"net/http"
	"strings"
	"testing"
)

// FuzzPlanRequest fuzzes the request decoder/validator: arbitrary
// bodies must never panic, and everything malformed — broken JSON,
// NaN/Inf floats, out-of-range grids, oversized specs — must resolve
// to a 4xx apiError, never a planSpec that escapes the documented
// bounds.
func FuzzPlanRequest(f *testing.F) {
	seeds := []string{
		`{"system":"D4","technique":"dauwe"}`,
		`{"system":"M","technique":"daly","timeout_ms":1000}`,
		`{"system":"B","technique":"moody","grid":{"tau0_points":64,"count_vals":[1,2,4]}}`,
		`{"system_spec":{"name":"x","mtbf_minutes":60,"baseline_minutes":100,"levels":[{"checkpoint_minutes":1,"restart_minutes":1,"severity_prob":1}]},"technique":"daly"}`,
		`{"system":"D4","technique":"dauwe","mtbf_minutes":1e308}`,
		`{"system":"D4","technique":"dauwe","mtbf_minutes":-1}`,
		`{"system":"D4","technique":"dauwe","grid":{"tau0_points":-3}}`,
		`{"system":"D4","technique":"dauwe","grid":{"count_vals":[9,1]}}`,
		`{"system":"D4"`,
		`{"system":"D4","technique":"daly"}{"again":true}`,
		`{"technique":"daly","system_spec":{"mtbf_minutes":1e999,"baseline_minutes":100,"levels":[]}}`,
		`[]`,
		`null`,
		`{"system":"D4","technique":"daly","unknown_field":1}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req PlanRequest
		if aerr := decodeBody(strings.NewReader(string(data)), &req); aerr != nil {
			if aerr.Status != http.StatusBadRequest {
				t.Fatalf("decode error status = %d, want 400 (%s)", aerr.Status, aerr.Msg)
			}
			return
		}
		sp, aerr := resolvePlan(req)
		if aerr != nil {
			if aerr.Status < 400 || aerr.Status > 499 {
				t.Fatalf("resolve error status = %d, want 4xx (%s)", aerr.Status, aerr.Msg)
			}
			return
		}
		// A spec that validated must stay inside the documented bounds
		// and produce a digest without panicking.
		if sp.sys.NumLevels() > maxLevels {
			t.Fatalf("validated spec has %d levels > max %d", sp.sys.NumLevels(), maxLevels)
		}
		if sp.tau0Points != 0 && (sp.tau0Points < 2 || sp.tau0Points > maxTau0Points) {
			t.Fatalf("validated spec has tau0Points %d out of range", sp.tau0Points)
		}
		if len(sp.countVals) > maxCountVals {
			t.Fatalf("validated spec has %d count vals > max %d", len(sp.countVals), maxCountVals)
		}
		if d := sp.digest(); len(d) != 16 {
			t.Fatalf("digest %q not 16 hex chars", d)
		}
	})
}
