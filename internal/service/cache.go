package service

import (
	"container/list"
	"sync"
	"time"
)

// cache is a fixed-capacity LRU of marshaled response bodies with a
// per-entry TTL. Bodies are stored and served as raw bytes: because
// sweeps are byte-deterministic (PR 2), a hit is byte-identical to the
// miss that populated it, so clients can verify hits by digest.
//
// The clock is injected so TTL expiry is testable without sleeping.
type cache struct {
	mu    sync.Mutex
	max   int
	ttl   time.Duration
	now   func() time.Time
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key     string
	body    []byte
	expires time.Time
}

func newCache(max int, ttl time.Duration, now func() time.Time) *cache {
	return &cache{
		max:   max,
		ttl:   ttl,
		now:   now,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// get returns the cached body for key. expired reports that the key was
// present but past its TTL (the entry is dropped); callers count that
// separately from a plain miss.
func (c *cache) get(key string) (body []byte, ok, expired bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, hit := c.items[key]
	if !hit {
		return nil, false, false
	}
	ent := el.Value.(*cacheEntry)
	if c.now().After(ent.expires) {
		c.ll.Remove(el)
		delete(c.items, key)
		return nil, false, true
	}
	c.ll.MoveToFront(el)
	return ent.body, true, false
}

// put inserts or refreshes key and reports whether a victim was evicted
// to make room.
func (c *cache) put(key string, body []byte) (evicted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	expires := c.now().Add(c.ttl)
	if el, hit := c.items[key]; hit {
		ent := el.Value.(*cacheEntry)
		ent.body = body
		ent.expires = expires
		c.ll.MoveToFront(el)
		return false
	}
	for c.ll.Len() >= c.max {
		victim := c.ll.Back()
		c.ll.Remove(victim)
		delete(c.items, victim.Value.(*cacheEntry).key)
		evicted = true
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, expires: expires})
	return evicted
}

// len reports the current entry count.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
