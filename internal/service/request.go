package service

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/model"
	"repro/internal/obs/sidecar"
	"repro/internal/optimize"
	"repro/internal/pattern"
	"repro/internal/system"
)

// Request-supplied parameters are bounded so a single request cannot
// commandeer the daemon: the grid bounds cap the sweep candidate count
// and the body limit caps decode work.
const (
	maxBodyBytes  = 1 << 20
	maxTau0Points = 1024
	maxCountVals  = 64
	maxCountVal   = 4096
	maxLevels     = 16
	maxTimeoutMS  = 10 * 60 * 1000
	maxCandidates = 1e8
)

// apiError is an error with an HTTP status. Handlers map every failure
// to one; anything else is a 500.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string { return e.Msg }

func apiErrorf(status int, format string, args ...any) *apiError {
	return &apiError{Status: status, Msg: fmt.Sprintf(format, args...)}
}

func badRequest(format string, args ...any) *apiError {
	return apiErrorf(http.StatusBadRequest, format, args...)
}

// LevelSpec mirrors the system JSON level schema (system/json.go).
type LevelSpec struct {
	CheckpointMinutes float64 `json:"checkpoint_minutes"`
	RestartMinutes    float64 `json:"restart_minutes"`
	SeverityProb      float64 `json:"severity_prob"`
}

// SystemSpec is an inline system description, for requests about
// machines that are not Table I rows.
type SystemSpec struct {
	Name            string      `json:"name,omitempty"`
	MTBFMinutes     float64     `json:"mtbf_minutes"`
	BaselineMinutes float64     `json:"baseline_minutes"`
	Levels          []LevelSpec `json:"levels"`
}

// Grid overrides the optimizer search grid.
type Grid struct {
	// Tau0Points is the τ0 grid resolution (0 = technique default).
	Tau0Points int `json:"tau0_points,omitempty"`
	// CountVals is the per-level count candidate set, strictly
	// ascending (empty = technique default).
	CountVals []int `json:"count_vals,omitempty"`
}

// PlanRequest asks for the optimal plan for system×technique×grid.
type PlanRequest struct {
	// System names a Table I system (exactly one of System /
	// SystemSpec must be set).
	System string `json:"system,omitempty"`
	// SystemSpec describes a custom system inline.
	SystemSpec *SystemSpec `json:"system_spec,omitempty"`
	// MTBFMinutes / PFSMinutes / BaselineMinutes optionally override
	// the named system's MTBF, top-level checkpoint cost, and baseline
	// time (the sensitivity-sweep axes). 0 = keep.
	MTBFMinutes     float64 `json:"mtbf_minutes,omitempty"`
	PFSMinutes      float64 `json:"pfs_minutes,omitempty"`
	BaselineMinutes float64 `json:"baseline_minutes,omitempty"`
	// Technique is the registered model name (see `mlckpt -list`).
	Technique string `json:"technique"`
	// Grid optionally overrides the sweep grid.
	Grid *Grid `json:"grid,omitempty"`
	// TimeoutMS bounds this request's compute time (0 = server
	// default). The sweep is canceled at the deadline and the request
	// answers 503.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// PlanJSON is the wire form of a pattern.Plan.
type PlanJSON struct {
	Tau0Minutes float64 `json:"tau0_minutes"`
	Counts      []int   `json:"counts"`
	Levels      []int   `json:"levels"`
}

// PredictionJSON is the wire form of a model.Prediction.
type PredictionJSON struct {
	ExpectedMinutes float64 `json:"expected_minutes"`
	Efficiency      float64 `json:"efficiency"`
}

// PlanResponse answers /v1/plan.
type PlanResponse struct {
	// Digest is the canonical cache key of the request; identical
	// requests always carry identical digests (and, by sweep
	// determinism, identical bytes).
	Digest    string         `json:"digest"`
	System    string         `json:"system"`
	Technique string         `json:"technique"`
	Plan      PlanJSON       `json:"plan"`
	Predicted PredictionJSON `json:"predicted"`
}

// PredictRequest asks for the model's prediction for a given plan.
type PredictRequest struct {
	PlanRequest
	Plan *PlanJSON `json:"plan"`
}

// PredictResponse answers /v1/predict.
type PredictResponse struct {
	System    string         `json:"system"`
	Technique string         `json:"technique"`
	Plan      PlanJSON       `json:"plan"`
	Predicted PredictionJSON `json:"predicted"`
}

// SimulateRequest asks for a campaign-backed estimate of a plan.
type SimulateRequest struct {
	PredictRequest
	// Trials is the campaign size (default 200, capped by the server's
	// -max-trials).
	Trials int `json:"trials,omitempty"`
	// Seed is the campaign base seed (default 1). Seed derivation
	// matches the mlckpt CLI, so results are comparable.
	Seed uint64 `json:"seed,omitempty"`
	// Stream switches the response to newline-delimited JSON progress
	// records followed by a final result record.
	Stream bool `json:"stream,omitempty"`
}

// SummaryJSON is the wire form of a stats.Summary.
type SummaryJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// SimulateResponse answers /v1/simulate: the model's prediction and the
// simulator's estimate side by side.
type SimulateResponse struct {
	Digest    string   `json:"digest"`
	System    string   `json:"system"`
	Technique string   `json:"technique"`
	Plan      PlanJSON `json:"plan"`
	Trials    int      `json:"trials"`
	Seed      uint64   `json:"seed"`
	// Predicted is the technique's model prediction for the plan
	// (omitted when the model cannot evaluate it, e.g. a level count
	// beyond the model's domain).
	Predicted *PredictionJSON `json:"predicted,omitempty"`
	// Efficiency/WallTimeMinutes summarize the campaign.
	Efficiency      SummaryJSON `json:"efficiency"`
	WallTimeMinutes SummaryJSON `json:"wall_time_minutes"`
	// EfficiencyCI95 is the Student-t 95% half-width of the mean
	// efficiency (0 for fewer than 2 trials).
	EfficiencyCI95 float64 `json:"efficiency_ci95"`
	// Completed counts trials that finished under the wall-time cap.
	Completed int `json:"completed"`
}

// BatchRequest fans one request shape out over many systems/techniques.
type BatchRequest struct {
	Requests []PlanRequest `json:"requests"`
	// TimeoutMS bounds the whole batch (0 = server default).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// BatchItem is one /v1/batch result, in request order. Exactly one of
// Response / Error is set.
type BatchItem struct {
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
	Status   int             `json:"status,omitempty"`
}

// BatchResponse answers /v1/batch.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// decodeBody strictly decodes one JSON document into dst: unknown
// fields, trailing data, and bodies over maxBodyBytes are all 400s.
func decodeBody(r io.Reader, dst any) *apiError {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	if dec.More() {
		return badRequest("invalid request body: trailing data after JSON document")
	}
	return nil
}

// planSpec is a validated, canonicalized plan request: the resolved
// system (with overrides applied) plus the technique and grid. Its
// digest is the cache/coalescing key.
type planSpec struct {
	sys        *system.System
	technique  string
	tau0Points int
	countVals  []int
}

// finitePositive rejects NaN/±Inf and non-positive values.
func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 0)
}

// resolvePlan validates a PlanRequest and resolves it into a planSpec.
// All failures are client errors (400).
func resolvePlan(req PlanRequest) (*planSpec, *apiError) {
	if req.Technique == "" {
		return nil, badRequest("technique required (one of %v)", model.RegisteredNames())
	}
	if _, err := model.Describe(req.Technique); err != nil {
		return nil, badRequest("%v", err)
	}

	var sys *system.System
	switch {
	case req.System != "" && req.SystemSpec != nil:
		return nil, badRequest("set exactly one of system / system_spec, not both")
	case req.System != "":
		s, err := system.ByName(req.System)
		if err != nil {
			return nil, badRequest("%v", err)
		}
		sys = s
	case req.SystemSpec != nil:
		s, aerr := req.SystemSpec.resolve()
		if aerr != nil {
			return nil, aerr
		}
		sys = s
	default:
		return nil, badRequest("set exactly one of system / system_spec")
	}

	for _, ov := range []struct {
		name string
		v    float64
	}{{"mtbf_minutes", req.MTBFMinutes}, {"pfs_minutes", req.PFSMinutes}, {"baseline_minutes", req.BaselineMinutes}} {
		if ov.v != 0 && !finitePositive(ov.v) {
			return nil, badRequest("%s override %v must be positive and finite", ov.name, ov.v)
		}
	}
	if req.MTBFMinutes != 0 {
		sys = sys.WithMTBF(req.MTBFMinutes)
	}
	if req.PFSMinutes != 0 {
		sys = sys.WithTopCost(req.PFSMinutes)
	}
	if req.BaselineMinutes != 0 {
		sys = sys.WithBaseline(req.BaselineMinutes)
	}
	if err := sys.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	if sys.NumLevels() > maxLevels {
		return nil, badRequest("system has %d levels, max %d", sys.NumLevels(), maxLevels)
	}

	sp := &planSpec{sys: sys, technique: req.Technique}
	if req.Grid != nil {
		if aerr := req.Grid.validate(); aerr != nil {
			return nil, aerr
		}
		if req.Grid.Tau0Points != 0 || len(req.Grid.CountVals) != 0 {
			// Probe a throwaway instance: a grid on a technique that
			// has no sweep (e.g. daly's closed form) would be silently
			// ignored, which is worse than a 400.
			tech, err := model.New(req.Technique)
			if err != nil {
				return nil, badRequest("%v", err)
			}
			if _, ok := tech.(sweepGridder); !ok {
				return nil, badRequest("technique %q does not take a grid", req.Technique)
			}
		}
		sp.tau0Points = req.Grid.Tau0Points
		sp.countVals = append([]int(nil), req.Grid.CountVals...)
	}
	if aerr := sp.checkCandidates(); aerr != nil {
		return nil, aerr
	}
	if req.TimeoutMS < 0 || req.TimeoutMS > maxTimeoutMS {
		return nil, badRequest("timeout_ms %d outside [0, %d]", req.TimeoutMS, maxTimeoutMS)
	}
	return sp, nil
}

// resolve turns an inline spec into a validated system.
func (ss *SystemSpec) resolve() (*system.System, *apiError) {
	if len(ss.Levels) > maxLevels {
		return nil, badRequest("system_spec has %d levels, max %d", len(ss.Levels), maxLevels)
	}
	name := ss.Name
	if name == "" {
		name = "custom"
	}
	sys := &system.System{
		Name:         name,
		Source:       "request system_spec",
		MTBF:         ss.MTBFMinutes,
		BaselineTime: ss.BaselineMinutes,
	}
	for i, l := range ss.Levels {
		for _, f := range []float64{l.CheckpointMinutes, l.RestartMinutes, l.SeverityProb} {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return nil, badRequest("system_spec level %d has non-finite field", i+1)
			}
		}
		sys.Levels = append(sys.Levels, system.Level{
			Checkpoint:   l.CheckpointMinutes,
			Restart:      l.RestartMinutes,
			SeverityProb: l.SeverityProb,
		})
	}
	if math.IsNaN(sys.MTBF) || math.IsNaN(sys.BaselineTime) ||
		math.IsInf(sys.MTBF, 0) || math.IsInf(sys.BaselineTime, 0) {
		return nil, badRequest("system_spec has non-finite mtbf/baseline")
	}
	if err := sys.Validate(); err != nil {
		return nil, badRequest("%v", err)
	}
	return sys, nil
}

func (g *Grid) validate() *apiError {
	if g.Tau0Points != 0 && (g.Tau0Points < 2 || g.Tau0Points > maxTau0Points) {
		return badRequest("grid.tau0_points %d outside [2, %d]", g.Tau0Points, maxTau0Points)
	}
	if len(g.CountVals) > maxCountVals {
		return badRequest("grid.count_vals has %d values, max %d", len(g.CountVals), maxCountVals)
	}
	for i, v := range g.CountVals {
		if v < 0 || v > maxCountVal {
			return badRequest("grid.count_vals[%d] = %d outside [0, %d]", i, v, maxCountVal)
		}
		if i > 0 && v <= g.CountVals[i-1] {
			return badRequest("grid.count_vals must be strictly ascending")
		}
	}
	return nil
}

// checkCandidates bounds the sweep search space so a hostile grid
// cannot pin a pool slot for hours. The estimate is the most expensive
// shape any technique enumerates: every τ0 point × every count
// combination over L-1 inner levels × level-subset choices.
func (sp *planSpec) checkCandidates() *apiError {
	points := sp.tau0Points
	if points == 0 {
		points = 96 // largest technique default
	}
	counts := len(sp.countVals)
	if counts == 0 {
		counts = len(optimize.DefaultCounts())
	}
	est := float64(points)
	for i := 1; i < sp.sys.NumLevels(); i++ {
		est *= float64(counts)
		if est > maxCandidates {
			break
		}
	}
	est *= math.Pow(2, float64(sp.sys.NumLevels()))
	if est > maxCandidates {
		return badRequest("search space ≈%.3g candidates exceeds the %g limit; shrink grid or levels", est, float64(maxCandidates))
	}
	return nil
}

// ff renders a float canonically: shortest form that round-trips, so
// equal values always digest equally.
func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func joinInts(vs []int) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

// systemParts canonicalizes every number that defines the resolved
// system, so overrides and inline specs that produce the same machine
// share a digest.
func (sp *planSpec) systemParts() []string {
	parts := []string{sp.sys.Name, ff(sp.sys.MTBF), ff(sp.sys.BaselineTime)}
	for _, l := range sp.sys.Levels {
		parts = append(parts, ff(l.Checkpoint), ff(l.Restart), ff(l.SeverityProb))
	}
	return parts
}

// digest is the canonical FNV cache/coalescing key for a plan request.
func (sp *planSpec) digest() string {
	parts := []string{"plan/v1", sp.technique, strconv.Itoa(sp.tau0Points), joinInts(sp.countVals)}
	parts = append(parts, sp.systemParts()...)
	return sidecar.ConfigDigest(parts...)
}

// simulateDigest is the cache/coalescing key for a simulate request.
func (sp *planSpec) simulateDigest(plan pattern.Plan, trials int, seed uint64) string {
	parts := []string{"sim/v1", sp.technique,
		ff(plan.Tau0), joinInts(plan.Counts), joinInts(plan.Levels),
		strconv.Itoa(trials), strconv.FormatUint(seed, 10)}
	parts = append(parts, sp.systemParts()...)
	return sidecar.ConfigDigest(parts...)
}

// parsePlan validates a request-supplied plan against the resolved
// system.
func (sp *planSpec) parsePlan(pj *PlanJSON) (pattern.Plan, *apiError) {
	if pj == nil {
		return pattern.Plan{}, badRequest("plan required")
	}
	if len(pj.Counts) > maxLevels || len(pj.Levels) > maxLevels {
		return pattern.Plan{}, badRequest("plan has more than %d levels", maxLevels)
	}
	for i, n := range pj.Counts {
		if n < 1 || n > maxCountVal {
			return pattern.Plan{}, badRequest("plan.counts[%d] = %d outside [1, %d]", i, n, maxCountVal)
		}
	}
	p := pattern.Plan{
		Tau0:   pj.Tau0Minutes,
		Counts: append([]int(nil), pj.Counts...),
		Levels: append([]int(nil), pj.Levels...),
	}
	if err := p.Validate(sp.sys); err != nil {
		return pattern.Plan{}, badRequest("%v", err)
	}
	return p, nil
}

func toPlanJSON(p pattern.Plan) PlanJSON {
	pj := PlanJSON{Tau0Minutes: p.Tau0, Counts: p.Counts, Levels: p.Levels}
	if pj.Counts == nil {
		pj.Counts = []int{}
	}
	if pj.Levels == nil {
		pj.Levels = []int{}
	}
	return pj
}
