package service

import (
	"sync"

	"repro/internal/obs"
)

// metrics is a mutex-guarded façade over an obs.Registry. The obs
// instruments themselves are single-writer by design (campaign code
// gives each worker its own shard and merges); a server handles many
// request goroutines against one registry, so every touch goes through
// this lock. Request handling is milliseconds-to-seconds per operation —
// the lock is nowhere near the hot path.
type metrics struct {
	mu  sync.Mutex
	reg *obs.Registry
}

func newMetrics() *metrics { return &metrics{reg: obs.NewRegistry()} }

func (m *metrics) inc(name string, labelPairs ...string) {
	m.mu.Lock()
	m.reg.Counter(name, labelPairs...).Inc()
	m.mu.Unlock()
}

func (m *metrics) observe(name string, v float64, labelPairs ...string) {
	m.mu.Lock()
	m.reg.Histogram(name, labelPairs...).Observe(v)
	m.mu.Unlock()
}

func (m *metrics) set(name string, v float64, labelPairs ...string) {
	m.mu.Lock()
	m.reg.Gauge(name, labelPairs...).Set(v)
	m.mu.Unlock()
}

// merge folds a per-job registry (e.g. a sweep's telemetry) into the
// service registry.
func (m *metrics) merge(o *obs.Registry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Merge(o)
}

func (m *metrics) snapshot() obs.Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Snapshot()
}
