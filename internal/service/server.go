// Package service implements the mlckptd optimization-as-a-service
// daemon: an HTTP/JSON API over the paper's decision procedure ("what
// plan should this system deploy under this technique, and what
// makespan should it expect?").
//
// The serving machinery leans on PR 2's byte-deterministic sweeps:
// because a sweep's result is a pure function of (system, technique,
// grid) — independent of worker count and scheduling — responses are
// cacheable as raw bytes and cache hits are byte-identical to the
// misses that populated them. Three layers exploit that:
//
//   - an LRU+TTL cache of marshaled responses keyed by a canonical FNV
//     digest of the resolved request (cache.go);
//   - request coalescing, so N concurrent identical requests cost
//     exactly one sweep (coalesce.go);
//   - a bounded compute pool with backpressure — queue-full answers
//     429 + Retry-After rather than oversubscribing the machine
//     (pool.go).
//
// Deadlines thread through the whole stack: a request's context cancels
// its sweep at the next chunk boundary (optimize.Space.Context), and a
// coalesced computation is only canceled when its last waiter gives up.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/optimize"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Optional capability interfaces probed on techniques (the same idiom
// the CLIs use for SetSweepMetrics/SetSweepSpans).
type (
	sweepGridder interface {
		SetSweepGrid(tau0Points int, countVals []int)
	}
	sweepContexter interface{ SetSweepContext(ctx context.Context) }
	sweepWorkerser interface{ SetSweepWorkers(n int) }
	sweepMetricser interface{ SetSweepMetrics(reg *obs.Registry) }
)

// Config sizes the daemon. The zero value gets sensible defaults.
type Config struct {
	// Workers is the intra-job parallelism (sweep workers, campaign
	// workers). 0 = GOMAXPROCS.
	Workers int
	// Slots is the number of jobs the pool runs concurrently (default
	// 1: each job already parallelizes across Workers).
	Slots int
	// Queue bounds jobs waiting for a slot; beyond it requests are
	// rejected with 429 (default 64).
	Queue int
	// CacheSize bounds the response cache entry count (default 1024).
	CacheSize int
	// CacheTTL bounds response age (default 15m).
	CacheTTL time.Duration
	// Timeout is the per-request compute deadline when the request
	// does not set timeout_ms (default 60s).
	Timeout time.Duration
	// MaxTrials caps /v1/simulate campaign sizes (default 200000).
	MaxTrials int
	// MaxBatch caps /v1/batch fan-out (default 64).
	MaxBatch int
	// Now is the cache clock (default time.Now; injectable for TTL
	// tests).
	Now func() time.Time
	// Events, when non-nil, receives structured request/lifecycle
	// events (-log-json).
	Events *obs.EventLog
}

func (c Config) withDefaults() Config {
	if c.Slots <= 0 {
		c.Slots = 1
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 1024
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 15 * time.Minute
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 200000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// gate tracks in-flight API requests for graceful drain: BeginDrain
// flips it closed (new requests answer 503) and Drain waits for the
// in-flight count to reach zero.
type gate struct {
	mu       sync.Mutex
	n        int
	draining bool
	idle     chan struct{} // closed when draining && n == 0
}

func (g *gate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.n++
	return true
}

func (g *gate) exit() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	if g.draining && g.n == 0 && g.idle != nil {
		close(g.idle)
		g.idle = nil
	}
}

// beginDrain returns a channel that closes once in-flight requests hit
// zero (possibly already closed).
func (g *gate) beginDrain() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.draining {
		g.draining = true
		g.idle = make(chan struct{})
		if g.n == 0 {
			close(g.idle)
			idle := g.idle
			g.idle = nil
			return idle
		}
	}
	if g.idle == nil {
		done := make(chan struct{})
		close(done)
		return done
	}
	return g.idle
}

// Server is the daemon core: handlers plus the cache/coalescing/pool
// machinery. Create with New, mount Handler, stop with Drain.
type Server struct {
	cfg     Config
	pool    *pool
	cache   *cache
	flight  *flightGroup
	met     *metrics
	gate    gate
	handler http.Handler

	readyMu sync.Mutex
	ready   bool
}

// New returns a started server (its pool goroutines are running).
func New(cfg Config) *Server {
	s := &Server{
		cfg:    cfg.withDefaults(),
		flight: newFlightGroup(),
		met:    newMetrics(),
		ready:  true,
	}
	s.pool = newPool(s.cfg.Slots, s.cfg.Queue)
	s.cache = newCache(s.cfg.CacheSize, s.cfg.CacheTTL, s.cfg.Now)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/plan", s.route("plan", s.handlePlan))
	mux.HandleFunc("/v1/predict", s.route("predict", s.handlePredict))
	mux.HandleFunc("/v1/simulate", s.route("simulate", s.handleSimulate))
	mux.HandleFunc("/v1/batch", s.route("batch", s.handleBatch))
	mux.Handle("/", obshttp.Handler(obshttp.Options{
		Snapshot: s.telemetrySnapshot,
		Ready:    s.isReady,
	}))
	s.handler = mux
	return s
}

// Handler returns the daemon's HTTP handler: the four /v1 endpoints
// plus the full obshttp telemetry surface (/metrics, /snapshot,
// /healthz, /readyz, pprof).
func (s *Server) Handler() http.Handler { return s.handler }

func (s *Server) isReady() bool {
	s.readyMu.Lock()
	defer s.readyMu.Unlock()
	return s.ready
}

// telemetrySnapshot is the obshttp Snapshot source: the request-level
// families plus point-in-time gauges for queue depth and cache size.
func (s *Server) telemetrySnapshot() obs.Snapshot {
	s.met.set("svc_queue_depth", float64(s.pool.depth()))
	s.met.set("svc_cache_entries", float64(s.cache.len()))
	return s.met.snapshot()
}

// BeginDrain stops admitting /v1 requests (503 + Retry-After) and
// flips /readyz to 503 so load balancers stop routing here. In-flight
// requests keep running.
func (s *Server) BeginDrain() {
	s.readyMu.Lock()
	s.ready = false
	s.readyMu.Unlock()
	s.gate.beginDrain()
	s.cfg.Events.Event("drain_begin")
}

// Drain gracefully stops the server: no new requests, wait for
// in-flight ones (bounded by ctx), then stop the pool. Jobs whose
// waiters all left are canceled and finish fast.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	select {
	case <-s.gate.beginDrain():
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
	s.pool.drain()
	s.cfg.Events.Event("drain_done")
	return nil
}

// route wraps an endpoint handler with method filtering, the drain
// gate, and request metrics/logging. Handlers return the status they
// wrote.
func (s *Server) route(endpoint string, h func(w http.ResponseWriter, r *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			code := writeError(w, apiErrorf(http.StatusMethodNotAllowed, "%s requires POST", endpoint))
			s.met.inc("svc_requests_total", "endpoint", endpoint, "code", strconv.Itoa(code))
			return
		}
		if !s.gate.enter() {
			s.met.inc("svc_rejected_total", "reason", "draining")
			code := writeError(w, apiErrorf(http.StatusServiceUnavailable, "server is draining"))
			s.met.inc("svc_requests_total", "endpoint", endpoint, "code", strconv.Itoa(code))
			return
		}
		defer s.gate.exit()
		start := time.Now()
		code := h(w, r)
		elapsed := time.Since(start)
		s.met.observe("svc_request_seconds", elapsed.Seconds(), "endpoint", endpoint)
		s.met.inc("svc_requests_total", "endpoint", endpoint, "code", strconv.Itoa(code))
		s.cfg.Events.Event("request",
			"endpoint", endpoint, "code", code, "elapsed_ms", elapsed.Milliseconds())
	}
}

// writeError renders the JSON error envelope and returns the status
// for metrics. Backpressure statuses carry Retry-After.
func writeError(w http.ResponseWriter, aerr *apiError) int {
	if aerr.Status == http.StatusTooManyRequests || aerr.Status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(aerr.Status)
	json.NewEncoder(w).Encode(errorBody{Error: aerr.Msg, Status: aerr.Status})
	return aerr.Status
}

// marshalBody renders a response deterministically (struct field order,
// canonical float formatting) with a trailing newline.
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// requestCtx derives the compute deadline for one request: the client
// disconnect context bounded by timeout_ms or the server default.
func (s *Server) requestCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.Timeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// mapComputeErr turns computation failures into API statuses.
func mapComputeErr(err error) *apiError {
	switch {
	case errors.Is(err, errSaturated):
		return apiErrorf(http.StatusTooManyRequests, "queue saturated, retry later")
	case errors.Is(err, errDraining):
		return apiErrorf(http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return apiErrorf(http.StatusServiceUnavailable, "computation canceled: %v", err)
	case errors.Is(err, optimize.ErrNoFeasiblePlan):
		return apiErrorf(http.StatusUnprocessableEntity, "%v", err)
	default:
		return apiErrorf(http.StatusInternalServerError, "%v", err)
	}
}

// await blocks until the coalesced call completes or ctx expires.
func (s *Server) await(ctx context.Context, key string, c *call) ([]byte, *apiError) {
	select {
	case <-c.done:
	case <-ctx.Done():
		s.flight.leave(key, c)
		s.met.inc("svc_deadline_total")
		return nil, apiErrorf(http.StatusServiceUnavailable, "deadline exceeded: %v", ctx.Err())
	}
	if c.err != nil {
		return nil, mapComputeErr(c.err)
	}
	return c.body, nil
}

// cachedOrCompute is the full read path: cache lookup, then coalesced
// compute. source is "hit", "miss" (leader), or "join" (follower) for
// the X-Cache header.
func (s *Server) cachedOrCompute(ctx context.Context, key, kind string, compute func(ctx context.Context, c *call) ([]byte, error)) (body []byte, source string, aerr *apiError) {
	if b, ok, expired := s.cache.get(key); ok {
		s.met.inc("svc_cache_hits_total", "kind", kind)
		return b, "hit", nil
	} else if expired {
		s.met.inc("svc_cache_expired_total", "kind", kind)
	}
	s.met.inc("svc_cache_misses_total", "kind", kind)
	c, leader := s.flight.join(key)
	source = "miss"
	if leader {
		s.startLeader(key, c, compute)
	} else {
		s.met.inc("svc_coalesced_total", "kind", kind)
		source = "join"
	}
	b, aerr := s.await(ctx, key, c)
	return b, source, aerr
}

// startLeader launches the leader's job for an already-joined call. A
// submit failure completes the call immediately so every waiter sees
// the backpressure error.
func (s *Server) startLeader(key string, c *call, compute func(ctx context.Context, c *call) ([]byte, error)) {
	job := func() {
		body, err := func() ([]byte, error) {
			if err := c.ctx.Err(); err != nil {
				return nil, err // every waiter already left
			}
			return compute(c.ctx, c)
		}()
		if err == nil {
			if s.cache.put(key, body) {
				s.met.inc("svc_cache_evictions_total")
			}
		}
		s.flight.complete(key, c, body, err)
	}
	if err := s.pool.submit(job); err != nil {
		reason := "saturated"
		if errors.Is(err, errDraining) {
			reason = "draining"
		}
		s.met.inc("svc_rejected_total", "reason", reason)
		s.flight.complete(key, c, nil, err)
	}
}

// handlePlan answers POST /v1/plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) int {
	var req PlanRequest
	if aerr := decodeBody(r.Body, &req); aerr != nil {
		return writeError(w, aerr)
	}
	sp, aerr := resolvePlan(req)
	if aerr != nil {
		return writeError(w, aerr)
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	body, source, aerr := s.planBytes(ctx, sp)
	if aerr != nil {
		return writeError(w, aerr)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", source)
	w.Write(body)
	return http.StatusOK
}

// planBytes returns the (cached, coalesced) /v1/plan response bytes for
// a resolved request.
func (s *Server) planBytes(ctx context.Context, sp *planSpec) ([]byte, string, *apiError) {
	key := sp.digest()
	return s.cachedOrCompute(ctx, key, "plan", func(cctx context.Context, _ *call) ([]byte, error) {
		return s.computePlan(cctx, sp, key)
	})
}

// computePlan runs one optimizer sweep. Exactly one of these runs per
// coalesced digest — the sweep_runs_total counter the coalescing test
// pins counts real sweeps, not requests.
func (s *Server) computePlan(ctx context.Context, sp *planSpec, key string) ([]byte, error) {
	s.met.inc("sweep_runs_total")
	s.cfg.Events.Event("sweep_start", "digest", key, "system", sp.sys.Name, "technique", sp.technique)
	tech, err := model.New(sp.technique)
	if err != nil {
		return nil, err
	}
	sweepReg := s.configureSweep(tech, ctx, sp)
	plan, pred, err := tech.Optimize(sp.sys)
	if merr := s.met.merge(sweepReg); merr != nil {
		return nil, merr
	}
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		}
		s.cfg.Events.Event("sweep_error", "digest", key, "error", err.Error())
		return nil, err
	}
	s.cfg.Events.Event("sweep_done", "digest", key)
	return marshalBody(PlanResponse{
		Digest:    key,
		System:    sp.sys.Name,
		Technique: sp.technique,
		Plan:      toPlanJSON(plan),
		Predicted: PredictionJSON{ExpectedMinutes: pred.ExpectedTime, Efficiency: pred.Efficiency},
	})
}

// configureSweep applies the request grid, cancellation context, worker
// bound, and a private telemetry registry (merged after the sweep — the
// shared registry is not concurrency-safe) via the optional interfaces.
func (s *Server) configureSweep(tech model.Technique, ctx context.Context, sp *planSpec) *obs.Registry {
	if g, ok := tech.(sweepGridder); ok {
		g.SetSweepGrid(sp.tau0Points, sp.countVals)
	}
	if c, ok := tech.(sweepContexter); ok {
		c.SetSweepContext(ctx)
	}
	if wk, ok := tech.(sweepWorkerser); ok {
		wk.SetSweepWorkers(s.cfg.Workers)
	}
	var reg *obs.Registry
	if m, ok := tech.(sweepMetricser); ok {
		reg = obs.NewRegistry()
		m.SetSweepMetrics(reg)
	}
	return reg
}

// handlePredict answers POST /v1/predict: a pure model evaluation, no
// pool (it is microseconds of work).
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) int {
	var req PredictRequest
	if aerr := decodeBody(r.Body, &req); aerr != nil {
		return writeError(w, aerr)
	}
	sp, aerr := resolvePlan(req.PlanRequest)
	if aerr != nil {
		return writeError(w, aerr)
	}
	plan, aerr := sp.parsePlan(req.Plan)
	if aerr != nil {
		return writeError(w, aerr)
	}
	tech, err := model.New(sp.technique)
	if err != nil {
		return writeError(w, apiErrorf(http.StatusInternalServerError, "%v", err))
	}
	pred, err := tech.Predict(sp.sys, plan)
	if err != nil {
		// The plan validated structurally, so this is a model-domain
		// refusal (e.g. more levels than the model supports).
		return writeError(w, apiErrorf(http.StatusUnprocessableEntity, "%v", err))
	}
	body, err := marshalBody(PredictResponse{
		System:    sp.sys.Name,
		Technique: sp.technique,
		Plan:      toPlanJSON(plan),
		Predicted: PredictionJSON{ExpectedMinutes: pred.ExpectedTime, Efficiency: pred.Efficiency},
	})
	if err != nil {
		return writeError(w, apiErrorf(http.StatusInternalServerError, "%v", err))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	return http.StatusOK
}

// handleSimulate answers POST /v1/simulate.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) int {
	var req SimulateRequest
	if aerr := decodeBody(r.Body, &req); aerr != nil {
		return writeError(w, aerr)
	}
	sp, aerr := resolvePlan(req.PlanRequest)
	if aerr != nil {
		return writeError(w, aerr)
	}
	plan, aerr := sp.parsePlan(req.Plan)
	if aerr != nil {
		return writeError(w, aerr)
	}
	trials := req.Trials
	if trials == 0 {
		trials = 200
	}
	if trials < 1 || trials > s.cfg.MaxTrials {
		return writeError(w, badRequest("trials %d outside [1, %d]", trials, s.cfg.MaxTrials))
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	key := sp.simulateDigest(plan, trials, seed)
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	if b, ok, expired := s.cache.get(key); ok {
		s.met.inc("svc_cache_hits_total", "kind", "simulate")
		return s.writeSimulate(w, b, "hit", req.Stream, nil, key)
	} else if expired {
		s.met.inc("svc_cache_expired_total", "kind", "simulate")
	}
	s.met.inc("svc_cache_misses_total", "kind", "simulate")
	c, leader := s.flight.join(key)
	source := "miss"
	if leader {
		s.startLeader(key, c, func(cctx context.Context, cc *call) ([]byte, error) {
			return s.computeSimulate(cctx, cc, sp, plan, trials, seed, key)
		})
	} else {
		s.met.inc("svc_coalesced_total", "kind", "simulate")
		source = "join"
	}

	if !req.Stream {
		body, aerr := s.await(ctx, key, c)
		if aerr != nil {
			return writeError(w, aerr)
		}
		return s.writeSimulate(w, body, source, false, nil, key)
	}
	return s.streamSimulate(w, ctx, key, c, source)
}

// writeSimulate writes a completed simulate response, optionally
// wrapped in the streaming envelope for consistency with streamed runs.
func (s *Server) writeSimulate(w http.ResponseWriter, body []byte, source string, stream bool, _ *call, _ string) int {
	w.Header().Set("X-Cache", source)
	if !stream {
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return http.StatusOK
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	writeStreamRecord(w, streamRecord{Type: "result", Result: json.RawMessage(body)})
	return http.StatusOK
}

// streamRecord is one NDJSON line of a streamed /v1/simulate response.
type streamRecord struct {
	Type   string          `json:"type"` // "progress" | "result" | "error"
	Done   int64           `json:"done,omitempty"`
	Total  int64           `json:"total,omitempty"`
	Error  string          `json:"error,omitempty"`
	Status int             `json:"status,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func writeStreamRecord(w http.ResponseWriter, rec streamRecord) {
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	w.Write(append(b, '\n'))
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// streamSimulate emits chunked NDJSON progress while the (possibly
// coalesced) campaign runs, then the result record. The HTTP status is
// already 200 by the first progress line; failures after that surface
// as a terminal "error" record.
func (s *Server) streamSimulate(w http.ResponseWriter, ctx context.Context, key string, c *call, source string) int {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Cache", source)
	w.WriteHeader(http.StatusOK)
	writeStreamRecord(w, streamRecord{Type: "progress", Done: c.progress.Load(), Total: c.total.Load()})
	tick := time.NewTicker(200 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			if c.err != nil {
				aerr := mapComputeErr(c.err)
				writeStreamRecord(w, streamRecord{Type: "error", Error: aerr.Msg, Status: aerr.Status})
				return http.StatusOK
			}
			writeStreamRecord(w, streamRecord{Type: "result", Result: json.RawMessage(c.body)})
			return http.StatusOK
		case <-tick.C:
			writeStreamRecord(w, streamRecord{Type: "progress", Done: c.progress.Load(), Total: c.total.Load()})
		case <-ctx.Done():
			s.flight.leave(key, c)
			s.met.inc("svc_deadline_total")
			writeStreamRecord(w, streamRecord{Type: "error", Error: "deadline exceeded: " + ctx.Err().Error(), Status: http.StatusServiceUnavailable})
			return http.StatusOK
		}
	}
}

// computeSimulate runs one campaign on the pool and marshals the
// model-vs-simulation comparison. Campaigns are not mid-run cancelable
// (sim.Campaign has no context hook), so the deadline is checked before
// launch and the trial count is bounded by MaxTrials.
func (s *Server) computeSimulate(ctx context.Context, c *call, sp *planSpec, plan pattern.Plan, trials int, seed uint64, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.met.inc("sim_runs_total")
	s.cfg.Events.Event("sim_start", "digest", key, "system", sp.sys.Name, "technique", sp.technique, "trials", trials)
	c.total.Store(int64(trials))

	var predicted *PredictionJSON
	if tech, err := model.New(sp.technique); err == nil {
		if pred, perr := tech.Predict(sp.sys, plan); perr == nil {
			predicted = &PredictionJSON{ExpectedMinutes: pred.ExpectedTime, Efficiency: pred.Efficiency}
		}
	}

	camp := sim.Campaign{
		Scenario: sim.Scenario{System: sp.sys, Plan: plan},
		Trials:   trials,
		Seed:     rng.Campaign(seed, "mlckpt").Scenario(sp.sys.Name + "/" + sp.technique),
		Workers:  s.cfg.Workers,
		TrialDone: func(sim.TrialResult) {
			c.progress.Add(1) // called from worker goroutines; atomic
		},
	}
	res, err := camp.Run()
	if err != nil {
		s.cfg.Events.Event("sim_error", "digest", key, "error", err.Error())
		return nil, err
	}
	var ci float64
	if len(res.Efficiencies) >= 2 {
		var sample stats.Sample
		sample.AddAll(res.Efficiencies)
		if hw, cerr := sample.CI(0.95); cerr == nil {
			ci = hw
		}
	}
	s.cfg.Events.Event("sim_done", "digest", key)
	return marshalBody(SimulateResponse{
		Digest:          key,
		System:          sp.sys.Name,
		Technique:       sp.technique,
		Plan:            toPlanJSON(plan),
		Trials:          trials,
		Seed:            seed,
		Predicted:       predicted,
		Efficiency:      toSummaryJSON(res.Efficiency),
		WallTimeMinutes: toSummaryJSON(res.WallTime),
		EfficiencyCI95:  ci,
		Completed:       res.Completed,
	})
}

func toSummaryJSON(s stats.Summary) SummaryJSON {
	return SummaryJSON{N: s.N, Mean: s.Mean, Std: s.Std, Min: s.Min, Max: s.Max}
}

// handleBatch answers POST /v1/batch: per-item plan requests resolved
// and computed concurrently (sharing the cache/coalescing machinery),
// results in request order. Item failures are reported per item; the
// batch itself answers 200.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) int {
	var req BatchRequest
	if aerr := decodeBody(r.Body, &req); aerr != nil {
		return writeError(w, aerr)
	}
	if len(req.Requests) == 0 {
		return writeError(w, badRequest("requests must not be empty"))
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		return writeError(w, badRequest("batch of %d exceeds max %d", len(req.Requests), s.cfg.MaxBatch))
	}
	if req.TimeoutMS < 0 || req.TimeoutMS > maxTimeoutMS {
		return writeError(w, badRequest("timeout_ms %d outside [0, %d]", req.TimeoutMS, maxTimeoutMS))
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()

	results := make([]BatchItem, len(req.Requests))
	var wg sync.WaitGroup
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			item := req.Requests[i]
			item.TimeoutMS = 0 // the batch deadline governs
			sp, aerr := resolvePlan(item)
			if aerr == nil {
				var body []byte
				body, _, aerr = s.planBytes(ctx, sp)
				if aerr == nil {
					results[i] = BatchItem{Response: json.RawMessage(body)}
					return
				}
			}
			results[i] = BatchItem{Error: aerr.Msg, Status: aerr.Status}
		}(i)
	}
	wg.Wait()
	body, err := marshalBody(BatchResponse{Results: results})
	if err != nil {
		return writeError(w, apiErrorf(http.StatusInternalServerError, "%v", err))
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	return http.StatusOK
}
