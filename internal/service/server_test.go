package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	_ "repro/internal/model/daly"
	_ "repro/internal/model/dauwe"
	_ "repro/internal/model/moody"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// testServer bundles a Server with an httptest listener; the whole
// suite drives the daemon black-box over HTTP.
type testServer struct {
	srv *Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, cfg Config) *testServer {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return &testServer{srv: srv, ts: ts}
}

// post sends a JSON body and returns status, X-Cache, and body bytes.
func (h *testServer) post(t *testing.T, path, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(h.ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cache"), b
}

// metricValue scrapes /metrics and sums every sample of family name
// (matching bare and labeled lines).
func (h *testServer) metricValue(t *testing.T, name string) float64 {
	t.Helper()
	resp, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var total float64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue
		}
		fields := strings.Fields(line)
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err == nil {
			total += v
		}
	}
	return total
}

// waitFor polls cond until true or the deadline, then fails.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

const planD4Dauwe = `{"system":"D4","technique":"dauwe"}`

// TestPlanGoldenAcrossWorkers pins the acceptance criterion: /v1/plan
// bytes are identical across worker counts and across cache hit/miss,
// and match the checked-in golden file.
func TestPlanGoldenAcrossWorkers(t *testing.T) {
	var bodies [][]byte
	for _, workers := range []int{1, 4, 16} {
		h := newTestServer(t, Config{Workers: workers})
		code, source, miss := h.post(t, "/v1/plan", planD4Dauwe)
		if code != http.StatusOK || source != "miss" {
			t.Fatalf("workers=%d first request: code=%d source=%q", workers, code, source)
		}
		code, source, hit := h.post(t, "/v1/plan", planD4Dauwe)
		if code != http.StatusOK || source != "hit" {
			t.Fatalf("workers=%d second request: code=%d source=%q", workers, code, source)
		}
		if !bytes.Equal(miss, hit) {
			t.Fatalf("workers=%d: cache hit bytes differ from miss bytes", workers)
		}
		bodies = append(bodies, miss)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("plan bytes differ between worker counts:\n%s\nvs\n%s", bodies[0], bodies[i])
		}
	}

	golden := filepath.Join("testdata", "plan_D4_dauwe.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, bodies[0], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(bodies[0], want) {
		t.Errorf("plan bytes drifted from golden:\ngot  %swant %s", bodies[0], want)
	}
}

// TestPlanCoalescing pins the other acceptance criterion: N concurrent
// identical requests cost exactly one sweep. The single pool slot is
// blocked while the herd arrives, so every request coalesces onto one
// call before any sweep can run.
func TestPlanCoalescing(t *testing.T) {
	const herd = 8
	h := newTestServer(t, Config{Slots: 1, Queue: 16})

	release := make(chan struct{})
	if err := h.srv.pool.submit(func() { <-release }); err != nil {
		t.Fatalf("blocker submit: %v", err)
	}

	var wg sync.WaitGroup
	codes := make([]int, herd)
	bodies := make([][]byte, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, bodies[i] = h.post(t, "/v1/plan", planD4Dauwe)
		}(i)
	}
	// All 8 have joined the flight group once 8 cache misses are
	// counted; only then may the sweep start.
	waitFor(t, 10*time.Second, "herd to join", func() bool {
		return h.metricValue(t, "svc_cache_misses_total") == herd
	})
	close(release)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: code=%d body=%s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d bytes differ from request 0", i)
		}
	}
	if got := h.metricValue(t, "sweep_runs_total"); got != 1 {
		t.Errorf("sweep_runs_total = %v after %d concurrent identical requests, want exactly 1", got, herd)
	}
	if got := h.metricValue(t, "svc_coalesced_total"); got != herd-1 {
		t.Errorf("svc_coalesced_total = %v, want %d", got, herd-1)
	}
}

// fakeClock is an injectable cache clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	h := newTestServer(t, Config{CacheTTL: time.Minute, Now: clk.now})

	req := `{"system":"M","technique":"daly"}`
	_, source, first := h.post(t, "/v1/plan", req)
	if source != "miss" {
		t.Fatalf("first request source = %q, want miss", source)
	}
	_, source, _ = h.post(t, "/v1/plan", req)
	if source != "hit" {
		t.Fatalf("within TTL source = %q, want hit", source)
	}

	clk.advance(time.Minute + time.Second)
	_, source, again := h.post(t, "/v1/plan", req)
	if source != "miss" {
		t.Fatalf("past TTL source = %q, want miss (expired)", source)
	}
	if !bytes.Equal(first, again) {
		t.Errorf("recomputed bytes differ from original (determinism broken)")
	}
	if got := h.metricValue(t, "svc_cache_expired_total"); got != 1 {
		t.Errorf("svc_cache_expired_total = %v, want 1", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	h := newTestServer(t, Config{CacheSize: 2, Now: clk.now})

	reqA := `{"system":"D1","technique":"daly"}`
	reqB := `{"system":"D2","technique":"daly"}`
	reqC := `{"system":"D3","technique":"daly"}`

	h.post(t, "/v1/plan", reqA)                                       // cache: A
	h.post(t, "/v1/plan", reqB)                                       // cache: B A
	if _, source, _ := h.post(t, "/v1/plan", reqA); source != "hit" { // cache: A B
		t.Fatalf("A should be cached, got %q", source)
	}
	h.post(t, "/v1/plan", reqC) // cache: C A — evicts LRU victim B
	if _, source, _ := h.post(t, "/v1/plan", reqA); source != "hit" {
		t.Errorf("A (recently used) evicted, source %q", source)
	}
	if _, source, _ := h.post(t, "/v1/plan", reqB); source != "miss" {
		t.Errorf("B should have been evicted, source %q", source)
	}
	if got := h.metricValue(t, "svc_cache_evictions_total"); got < 1 {
		t.Errorf("svc_cache_evictions_total = %v, want >= 1", got)
	}
}

// slowPlan is a deliberately large dauwe sweep on the 4-level B system
// (~1e6+ cells): slow enough that a short deadline always lands
// mid-sweep.
const slowPlan = `{"system":"B","technique":"dauwe",
	"grid":{"tau0_points":512,"count_vals":[1,2,3,4,5,6,7,8,9,10,11,12]},
	"timeout_ms":40}`

// TestDeadlineCancellation: a slow sweep with a short per-request
// deadline answers 503, the canceled sweep must abort promptly (no
// pool slot held, no goroutine leak), and nothing may be cached.
func TestDeadlineCancellation(t *testing.T) {
	h := newTestServer(t, Config{})
	// Warm up the connection pool and server goroutines, then take the
	// leak baseline.
	h.post(t, "/v1/plan", `{"system":"M","technique":"daly"}`)
	http.DefaultClient.CloseIdleConnections()
	runtime.GC()
	base := runtime.NumGoroutine()

	start := time.Now()
	code, _, body := h.post(t, "/v1/plan", slowPlan)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("code = %d body=%s, want 503", code, body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("503 took %v, want prompt deadline response", elapsed)
	}
	// The abandoned sweep is canceled when its last waiter leaves; the
	// pool slot must free up quickly.
	waitFor(t, 5*time.Second, "pool to go idle", func() bool {
		return h.srv.pool.depth() == 0
	})
	if n := h.srv.cache.len(); n != 1 { // the warm-up entry only
		t.Errorf("cache has %d entries after canceled sweep, want 1 (no partial write)", n)
	}
	if got := h.metricValue(t, "svc_deadline_total"); got != 1 {
		t.Errorf("svc_deadline_total = %v, want 1", got)
	}
	// goleak-style final count: everything the request spawned must be
	// gone (pool workers are still running; they existed at base-time
	// too only for previous servers, so allow slack of the one slot).
	waitFor(t, 5*time.Second, "goroutines to settle", func() bool {
		http.DefaultClient.CloseIdleConnections()
		runtime.GC()
		return runtime.NumGoroutine() <= base+2
	})
}

// TestGracefulDrain: draining completes the in-flight request, rejects
// new ones with 503 + Retry-After, and Drain returns once idle.
func TestGracefulDrain(t *testing.T) {
	h := newTestServer(t, Config{Slots: 1})

	inFlight := `{"system":"B","technique":"dauwe",
		"grid":{"tau0_points":256,"count_vals":[1,2,3,4,5,6,7,8]},
		"timeout_ms":60000}`
	var wg sync.WaitGroup
	var code int
	var body []byte
	wg.Add(1)
	go func() {
		defer wg.Done()
		code, _, body = h.post(t, "/v1/plan", inFlight)
	}()
	waitFor(t, 5*time.Second, "request to be in flight", func() bool {
		h.srv.gate.mu.Lock()
		defer h.srv.gate.mu.Unlock()
		return h.srv.gate.n > 0
	})

	h.srv.BeginDrain()

	resp, err := http.Get(h.ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", resp.StatusCode)
	}

	newCode, _, _ := h.post(t, "/v1/plan", planD4Dauwe)
	if newCode != http.StatusServiceUnavailable {
		t.Errorf("new request during drain = %d, want 503", newCode)
	}

	wg.Wait()
	if code != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d body=%s, want 200", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func TestPredict(t *testing.T) {
	h := newTestServer(t, Config{})
	code, _, body := h.post(t, "/v1/predict",
		`{"system":"D4","technique":"daly","plan":{"tau0_minutes":10,"counts":[],"levels":[1]}}`)
	if code != http.StatusOK {
		t.Fatalf("code = %d body=%s", code, body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Predicted.ExpectedMinutes <= 1440 {
		t.Errorf("expected_minutes = %v, want > baseline 1440", resp.Predicted.ExpectedMinutes)
	}
	if resp.Predicted.Efficiency <= 0 || resp.Predicted.Efficiency >= 1 {
		t.Errorf("efficiency = %v, want (0,1)", resp.Predicted.Efficiency)
	}
}

// TestSimulateDeterministicAndCached: same request twice → hit with
// identical bytes; fresh servers at different worker counts produce
// the same bytes (campaign determinism).
func TestSimulateDeterministicAndCached(t *testing.T) {
	req := `{"system":"D4","technique":"dauwe","plan":{"tau0_minutes":10,"counts":[4],"levels":[1,2]},"trials":40,"seed":7}`
	var bodies [][]byte
	for _, workers := range []int{1, 4} {
		h := newTestServer(t, Config{Workers: workers})
		code, source, miss := h.post(t, "/v1/simulate", req)
		if code != http.StatusOK || source != "miss" {
			t.Fatalf("workers=%d: code=%d source=%q body=%s", workers, code, source, miss)
		}
		code, source, hit := h.post(t, "/v1/simulate", req)
		if code != http.StatusOK || source != "hit" {
			t.Fatalf("workers=%d repeat: code=%d source=%q", workers, code, source)
		}
		if !bytes.Equal(miss, hit) {
			t.Fatalf("workers=%d: simulate hit differs from miss", workers)
		}
		if got := h.metricValue(t, "sim_runs_total"); got != 1 {
			t.Errorf("workers=%d: sim_runs_total = %v, want 1", workers, got)
		}
		bodies = append(bodies, miss)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("simulate bytes differ across worker counts:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
	var resp SimulateResponse
	if err := json.Unmarshal(bodies[0], &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Completed != 40 || resp.Efficiency.N != 40 {
		t.Errorf("completed=%d n=%d, want 40", resp.Completed, resp.Efficiency.N)
	}
	if resp.EfficiencyCI95 <= 0 {
		t.Errorf("efficiency_ci95 = %v, want > 0", resp.EfficiencyCI95)
	}
	if resp.Predicted == nil {
		t.Errorf("predicted missing from simulate response")
	}
}

// TestSimulateStream: the streamed response carries progress records
// and a final result identical to the cached non-stream body.
func TestSimulateStream(t *testing.T) {
	h := newTestServer(t, Config{})
	req := `{"system":"D4","technique":"dauwe","plan":{"tau0_minutes":10,"counts":[4],"levels":[1,2]},"trials":30,"seed":3,"stream":true}`
	code, _, body := h.post(t, "/v1/simulate", req)
	if code != http.StatusOK {
		t.Fatalf("code = %d body=%s", code, body)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("stream had %d records, want >= 2 (progress + result):\n%s", len(lines), body)
	}
	var last streamRecord
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatalf("final record: %v", err)
	}
	if last.Type != "result" {
		t.Fatalf("final record type = %q, want result", last.Type)
	}
	var first streamRecord
	if err := json.Unmarshal(lines[0], &first); err != nil || first.Type != "progress" {
		t.Fatalf("first record = %s (err %v), want progress", lines[0], err)
	}

	// The cached plain response must byte-match the streamed result.
	plain := strings.Replace(req, `,"stream":true`, "", 1)
	_, source, plainBody := h.post(t, "/v1/simulate", plain)
	if source != "hit" {
		t.Fatalf("plain repeat source = %q, want hit", source)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, bytes.TrimSpace(plainBody)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(last.Result), compact.Bytes()) {
		t.Errorf("streamed result differs from cached body:\n%s\nvs\n%s", last.Result, compact.Bytes())
	}
}

func TestBatch(t *testing.T) {
	h := newTestServer(t, Config{})
	code, _, direct := h.post(t, "/v1/plan", `{"system":"M","technique":"daly"}`)
	if code != http.StatusOK {
		t.Fatalf("direct plan: %d", code)
	}
	code, _, body := h.post(t, "/v1/batch",
		`{"requests":[{"system":"M","technique":"daly"},{"system":"nope","technique":"daly"},{"system":"D4","technique":"daly"}]}`)
	if code != http.StatusOK {
		t.Fatalf("batch code = %d body=%s", code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if want := bytes.TrimSuffix(direct, []byte("\n")); !bytes.Equal(resp.Results[0].Response, want) {
		t.Errorf("batch item 0 differs from direct /v1/plan:\n%s\nvs\n%s", resp.Results[0].Response, want)
	}
	if resp.Results[1].Status != http.StatusBadRequest || resp.Results[1].Error == "" {
		t.Errorf("batch item 1 = %+v, want a 400 error", resp.Results[1])
	}
	if resp.Results[2].Response == nil {
		t.Errorf("batch item 2 missing response: %+v", resp.Results[2])
	}
}

// TestRequestValidation is the table-driven error-path sweep for the
// decoder/validator: every row must answer 4xx with a JSON error body.
func TestRequestValidation(t *testing.T) {
	h := newTestServer(t, Config{MaxTrials: 1000})
	cases := []struct {
		name string
		path string
		body string
		code int
	}{
		{"malformed json", "/v1/plan", `{"system":`, 400},
		{"trailing data", "/v1/plan", `{"system":"D4","technique":"daly"} extra`, 400},
		{"unknown field", "/v1/plan", `{"system":"D4","technique":"daly","bogus":1}`, 400},
		{"missing technique", "/v1/plan", `{"system":"D4"}`, 400},
		{"unknown technique", "/v1/plan", `{"system":"D4","technique":"zeno"}`, 400},
		{"missing system", "/v1/plan", `{"technique":"daly"}`, 400},
		{"unknown system", "/v1/plan", `{"system":"X9","technique":"daly"}`, 400},
		{"both systems", "/v1/plan", `{"system":"D4","system_spec":{"mtbf_minutes":60,"baseline_minutes":100,"levels":[{"checkpoint_minutes":1,"restart_minutes":1,"severity_prob":1}]},"technique":"daly"}`, 400},
		{"negative mtbf override", "/v1/plan", `{"system":"D4","technique":"daly","mtbf_minutes":-5}`, 400},
		{"grid on closed form", "/v1/plan", `{"system":"D4","technique":"daly","grid":{"tau0_points":16}}`, 400},
		{"tau0 points too big", "/v1/plan", `{"system":"D4","technique":"dauwe","grid":{"tau0_points":9999}}`, 400},
		{"count vals not ascending", "/v1/plan", `{"system":"D4","technique":"dauwe","grid":{"count_vals":[4,2]}}`, 400},
		{"count val out of range", "/v1/plan", `{"system":"D4","technique":"dauwe","grid":{"count_vals":[5000]}}`, 400},
		{"negative timeout", "/v1/plan", `{"system":"D4","technique":"daly","timeout_ms":-1}`, 400},
		{"bad spec prob sum", "/v1/plan", `{"system_spec":{"mtbf_minutes":60,"baseline_minutes":100,"levels":[{"checkpoint_minutes":1,"restart_minutes":1,"severity_prob":0.4}]},"technique":"daly"}`, 400},
		{"spec zero checkpoint", "/v1/plan", `{"system_spec":{"mtbf_minutes":60,"baseline_minutes":100,"levels":[{"checkpoint_minutes":0,"restart_minutes":1,"severity_prob":1}]},"technique":"daly"}`, 400},
		{"predict missing plan", "/v1/predict", `{"system":"D4","technique":"daly"}`, 400},
		{"predict invalid plan", "/v1/predict", `{"system":"D4","technique":"daly","plan":{"tau0_minutes":-1,"counts":[],"levels":[1]}}`, 400},
		{"predict level beyond system", "/v1/predict", `{"system":"D4","technique":"daly","plan":{"tau0_minutes":5,"counts":[2],"levels":[1,7]}}`, 400},
		{"simulate too many trials", "/v1/simulate", `{"system":"D4","technique":"daly","plan":{"tau0_minutes":5,"counts":[],"levels":[1]},"trials":5000}`, 400},
		{"simulate negative trials", "/v1/simulate", `{"system":"D4","technique":"daly","plan":{"tau0_minutes":5,"counts":[],"levels":[1]},"trials":-2}`, 400},
		{"batch empty", "/v1/batch", `{"requests":[]}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := h.post(t, tc.path, tc.body)
			if code != tc.code {
				t.Fatalf("code = %d body=%s, want %d", code, body, tc.code)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
				t.Errorf("error body %s not a JSON error envelope (err %v)", body, err)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	h := newTestServer(t, Config{})
	for _, path := range []string{"/v1/plan", "/v1/predict", "/v1/simulate", "/v1/batch"} {
		resp, err := http.Get(h.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s = %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Errorf("GET %s Allow = %q, want POST", path, allow)
		}
	}
}

// TestQueueSaturation: with the slot blocked and a queue of 1, the
// second distinct request answers 429 + Retry-After.
func TestQueueSaturation(t *testing.T) {
	h := newTestServer(t, Config{Slots: 1, Queue: 1})
	release := make(chan struct{})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()
	if err := h.srv.pool.submit(func() { <-release }); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	// Fills the queue's single slot; runs after the blocker releases.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.post(t, "/v1/plan", `{"system":"D1","technique":"daly"}`)
	}()
	waitFor(t, 5*time.Second, "first job to queue", func() bool {
		return h.srv.pool.depth() == 2 // blocker + queued job
	})
	code, _, body := h.post(t, "/v1/plan", `{"system":"D2","technique":"daly"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated request code = %d body=%s, want 429", code, body)
	}
	close(release)
	wg.Wait()
	if got := h.metricValue(t, "svc_rejected_total"); got < 1 {
		t.Errorf("svc_rejected_total = %v, want >= 1", got)
	}
}

// TestTelemetrySurface: the obshttp endpoints ride along on the same
// handler.
func TestTelemetrySurface(t *testing.T) {
	h := newTestServer(t, Config{})
	h.post(t, "/v1/plan", `{"system":"M","technique":"daly"}`)
	for _, path := range []string{"/metrics", "/snapshot", "/healthz", "/readyz"} {
		resp, err := http.Get(h.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	if got := h.metricValue(t, "svc_requests_total"); got < 1 {
		t.Errorf("svc_requests_total = %v, want >= 1", got)
	}
}
