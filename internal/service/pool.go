package service

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Sentinel errors surfaced to clients as backpressure responses.
var (
	// errSaturated means the bounded job queue was full: the client
	// should retry after a short delay (HTTP 429 + Retry-After).
	errSaturated = errors.New("service: job queue saturated")
	// errDraining means the server is shutting down and no longer
	// accepts work (HTTP 503).
	errDraining = errors.New("service: draining")
)

// pool is the shared compute pool: a fixed set of worker goroutines
// pulling jobs from a bounded queue. Sweeps and campaigns run here so
// concurrent requests cannot oversubscribe the machine — each job is
// itself internally parallel (Config.Workers), so the pool runs one job
// at a time per slot and applies backpressure beyond the queue bound.
type pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	pending atomic.Int64
}

// newPool starts slots worker goroutines over a queue-bounded job
// channel.
func newPool(slots, queue int) *pool {
	p := &pool{jobs: make(chan func(), queue)}
	for i := 0; i < slots; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
				p.pending.Add(-1)
			}
		}()
	}
	return p
}

// submit enqueues a job without blocking. It returns errSaturated when
// the queue is full and errDraining after drain has begun.
func (p *pool) submit(job func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errDraining
	}
	select {
	case p.jobs <- job:
		p.pending.Add(1)
		return nil
	default:
		return errSaturated
	}
}

// depth reports queued plus running jobs (the backlog a new request
// would wait behind).
func (p *pool) depth() int64 { return p.pending.Load() }

// drain stops accepting jobs, runs everything already queued, and waits
// for the workers to exit. Idempotent.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
