package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := Campaign(42, "fig2").Scenario("D4").Trial(17).Rand()
	b := Campaign(42, "fig2").Scenario("D4").Trial(17).Rand()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDistinctCampaignNames(t *testing.T) {
	a := Campaign(42, "fig2")
	b := Campaign(42, "fig4")
	if a == b {
		t.Fatal("different campaign names produced identical seeds")
	}
}

func TestDistinctBases(t *testing.T) {
	if Campaign(1, "x") == Campaign(2, "x") {
		t.Fatal("different bases produced identical seeds")
	}
}

func TestDistinctScenarios(t *testing.T) {
	c := Campaign(7, "fig4")
	seen := map[Seed]string{}
	for _, label := range []string{"M", "B", "D1", "D2", "D3", "mtbf=3/pfs=10", "mtbf=3/pfs=20"} {
		s := c.Scenario(label)
		if prev, dup := seen[s]; dup {
			t.Fatalf("scenario %q collides with %q", label, prev)
		}
		seen[s] = label
	}
}

func TestDistinctTrials(t *testing.T) {
	s := Campaign(7, "fig4").Scenario("B")
	seen := map[Seed]int{}
	for i := 0; i < 1000; i++ {
		ts := s.Trial(i)
		if prev, dup := seen[ts]; dup {
			t.Fatalf("trial %d collides with trial %d", i, prev)
		}
		seen[ts] = i
	}
}

func TestTrialStreamsUncorrelated(t *testing.T) {
	// Adjacent trial streams should not share leading outputs.
	s := Campaign(99, "corr")
	a := s.Trial(0).Rand()
	b := s.Trial(1).Rand()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical leading draws between adjacent trials", same)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		s := FromWords(hi, lo)
		h, l := s.Words()
		return h == hi && l == lo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandUniformish(t *testing.T) {
	r := Campaign(5, "uniform").Scenario("s").Trial(0).Rand()
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("uniform mean = %v", mean)
	}
}
