// Package rng provides reproducible random-number streams for simulation
// campaigns. Every trial of every experiment draws from an independent
// stream derived deterministically from a campaign seed, a scenario label
// and a trial index, so campaigns are reproducible regardless of how the
// trial set is partitioned across worker goroutines.
package rng

import (
	"hash/fnv"
	"math/rand/v2"
)

// Seed identifies one deterministic random stream.
type Seed struct {
	hi, lo uint64
}

// Campaign derives the root seed of a named experiment campaign. The same
// (base, name) pair always yields the same seed.
func Campaign(base uint64, name string) Seed {
	h := fnv.New64a()
	// hash/fnv never returns a write error.
	_, _ = h.Write([]byte(name))
	return Seed{hi: base, lo: h.Sum64()}
}

// Scenario derives a sub-seed for one scenario (e.g. one test system or
// one MTBF/cost grid point) within a campaign.
func (s Seed) Scenario(label string) Seed {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return Seed{hi: s.hi ^ mix(h.Sum64()), lo: mix(s.lo + 0x9e3779b97f4a7c15)}
}

// Trial derives the seed of trial i within a scenario.
func (s Seed) Trial(i int) Seed {
	return Seed{hi: mix(s.hi + uint64(i)*0x9e3779b97f4a7c15), lo: mix(s.lo ^ uint64(i) + 0xbf58476d1ce4e5b9)}
}

// Rand materializes the stream as a *rand.Rand backed by PCG.
func (s Seed) Rand() *rand.Rand {
	return rand.New(rand.NewPCG(s.hi, s.lo))
}

// Words exposes the raw 128-bit state, e.g. for trace headers.
func (s Seed) Words() (hi, lo uint64) { return s.hi, s.lo }

// FromWords rebuilds a Seed from its raw state.
func FromWords(hi, lo uint64) Seed { return Seed{hi: hi, lo: lo} }

// mix is the splitmix64 finalizer; it decorrelates nearby seeds.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
