package energy

import (
	"math"
	"testing"

	"repro/internal/model/dauwe"
	"repro/internal/sim"
	"repro/internal/system"
)

func sys2() *system.System {
	return &system.System{
		Name: "e2", MTBF: 24, BaselineTime: 1440,
		Levels: []system.Level{
			{Checkpoint: 0.333, Restart: 0.333, SeverityProb: 0.833},
			{Checkpoint: 0.833, Restart: 0.833, SeverityProb: 0.167},
		},
	}
}

func mdl() Model {
	return Model{Power: Power{ComputeWatts: 300, IOWatts: 120}, Nodes: 1000}
}

func TestOfSimArithmetic(t *testing.T) {
	b := sim.Breakdown{
		UsefulCompute: 10, LostCompute: 2,
		CheckpointOK: 1, CheckpointFail: 0.5, RestartOK: 0.3, RestartFail: 0.2,
	}
	got := mdl().OfSim(b)
	want := (12*60*300 + 2*60*120) * 1000.0
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("energy = %v, want %v", got, want)
	}
}

func TestOfPredictionMatchesOfSimShape(t *testing.T) {
	b := dauwe.Breakdown{
		Compute: 10, Recompute: 2,
		CheckpointOK: 1, CheckpointFail: 0.5, RestartOK: 0.3, RestartFail: 0.2,
	}
	s := sim.Breakdown{
		UsefulCompute: 10, LostCompute: 2,
		CheckpointOK: 1, CheckpointFail: 0.5, RestartOK: 0.3, RestartFail: 0.2,
	}
	if got, want := mdl().OfPrediction(b), mdl().OfSim(s); got != want {
		t.Fatalf("prediction energy %v != sim energy %v for identical breakdowns", got, want)
	}
}

func TestValidation(t *testing.T) {
	if err := (Model{Power: Power{ComputeWatts: 1, IOWatts: 1}, Nodes: 0}).Validate(); err == nil {
		t.Error("zero nodes accepted")
	}
	if err := (Model{Power: Power{ComputeWatts: 0, IOWatts: 1}, Nodes: 1}).Validate(); err == nil {
		t.Error("zero compute watts accepted")
	}
	if _, err := (&Optimizer{Model: Model{}}).Optimize(sys2()); err == nil {
		t.Error("invalid model accepted")
	}
	bad := sys2()
	bad.MTBF = -1
	if _, err := (&Optimizer{Model: mdl()}).Optimize(bad); err == nil {
		t.Error("invalid system accepted")
	}
	if _, err := Compare(bad, mdl()); err == nil {
		t.Error("Compare accepted invalid system")
	}
	if _, err := Compare(sys2(), Model{}); err == nil {
		t.Error("Compare accepted invalid model")
	}
}

func TestEnergyOptimalUsesAtLeastAsMuchCheckpointing(t *testing.T) {
	// With I/O much cheaper than computation, the energy-optimal plan
	// should checkpoint at least as aggressively (τ0 no longer) as the
	// time-optimal one: re-executed compute minutes cost more energy
	// than checkpoint minutes.
	m := Model{Power: Power{ComputeWatts: 400, IOWatts: 40}, Nodes: 1000}
	tr, err := Compare(sys2(), m)
	if err != nil {
		t.Fatal(err)
	}
	if tr.EnergyOptimal.Plan.Tau0 > tr.TimeOptimal.Plan.Tau0*1.05 {
		t.Fatalf("energy-optimal τ0 %v longer than time-optimal %v despite cheap IO",
			tr.EnergyOptimal.Plan.Tau0, tr.TimeOptimal.Plan.Tau0)
	}
	// Energy-optimal must not predict more energy than time-optimal.
	if tr.EnergyOptimal.Joules > tr.TimeOptimal.Joules*(1+1e-9) {
		t.Fatalf("energy optimum %v worse than time optimum %v",
			tr.EnergyOptimal.Joules, tr.TimeOptimal.Joules)
	}
	// And the time-optimal plan must not be slower than the
	// energy-optimal one.
	if tr.TimeOptimal.Time.ExpectedTime > tr.EnergyOptimal.Time.ExpectedTime*(1+1e-9) {
		t.Fatalf("time optimum %v slower than energy optimum %v",
			tr.TimeOptimal.Time.ExpectedTime, tr.EnergyOptimal.Time.ExpectedTime)
	}
}

func TestEqualPowerMakesObjectivesAgree(t *testing.T) {
	// With identical power in all states, energy ∝ time: both optima
	// coincide (up to grid resolution).
	m := Model{Power: Power{ComputeWatts: 250, IOWatts: 250}, Nodes: 10}
	tr, err := Compare(sys2(), m)
	if err != nil {
		t.Fatal(err)
	}
	relT := math.Abs(tr.EnergyOptimal.Time.ExpectedTime-tr.TimeOptimal.Time.ExpectedTime) /
		tr.TimeOptimal.Time.ExpectedTime
	if relT > 0.01 {
		t.Fatalf("equal-power optima diverge: %v vs %v",
			tr.EnergyOptimal.Time.ExpectedTime, tr.TimeOptimal.Time.ExpectedTime)
	}
}

func TestEnergyDelayObjective(t *testing.T) {
	o := &Optimizer{Model: mdl(), Objective: MinEnergyDelay}
	res, err := o.Optimize(sys2())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(sys2()); err != nil {
		t.Fatal(err)
	}
	if !(res.Joules > 0) || !(res.Time.Efficiency > 0.5) {
		t.Fatalf("implausible EDP result: %+v", res)
	}
}

func TestEnergyAgainstSimulation(t *testing.T) {
	// Predicted energy of the time-optimal plan should land near the
	// simulated energy.
	m := mdl()
	tr, err := Compare(sys2(), m)
	if err != nil {
		t.Fatal(err)
	}
	camp := sim.Campaign{
		Scenario: sim.Scenario{System: sys2(), Plan: tr.TimeOptimal.Plan},
		Trials:   100,
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	simJ := m.OfSim(res.MeanBreakdown)
	rel := math.Abs(simJ-tr.TimeOptimal.Joules) / simJ
	if rel > 0.05 {
		t.Fatalf("predicted energy %v vs simulated %v (rel %.3f)",
			tr.TimeOptimal.Joules, simJ, rel)
	}
}
