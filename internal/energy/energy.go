// Package energy extends the performance models with the energy
// dimension studied by Balaprakash et al. [19] — the source of the
// paper's test system B. Activity-dependent per-node power draws map an
// execution-time breakdown (either the simulator's measured one or the
// Dauwe model's predicted one) to machine energy, and an energy-aware
// optimizer picks checkpoint intervals minimizing predicted energy or
// energy-delay product instead of expected runtime.
//
// The interesting physics: checkpoint/restart I/O usually draws less
// power than computation, so an energy-optimal plan tolerates more
// checkpointing overhead than a time-optimal one whenever the extra
// checkpoints buy fewer re-executed (full-power) compute minutes.
package energy

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/model/dauwe"
	"repro/internal/optimize"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/system"
)

// Power is the per-node power draw by activity, in watts.
type Power struct {
	// ComputeWatts applies to useful computation and re-computation.
	ComputeWatts float64
	// IOWatts applies to checkpoint writes and restart reads,
	// successful or not.
	IOWatts float64
}

// Validate checks the power figures.
func (p Power) Validate() error {
	if !(p.ComputeWatts > 0) || !(p.IOWatts > 0) {
		return errors.New("energy: power draws must be positive")
	}
	return nil
}

// Model converts time breakdowns into machine energy.
type Model struct {
	Power Power
	// Nodes is the machine size; energy scales linearly with it.
	Nodes int
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.Nodes <= 0 {
		return fmt.Errorf("energy: %d nodes", m.Nodes)
	}
	return m.Power.Validate()
}

// joules converts (minutes of compute-time, minutes of io-time) to
// machine energy.
func (m Model) joules(computeMin, ioMin float64) float64 {
	const secPerMin = 60
	perNode := computeMin*secPerMin*m.Power.ComputeWatts + ioMin*secPerMin*m.Power.IOWatts
	return perNode * float64(m.Nodes)
}

// OfSim returns the machine energy of a simulated trial breakdown, in
// joules.
func (m Model) OfSim(b sim.Breakdown) float64 {
	return m.joules(b.UsefulCompute+b.LostCompute,
		b.CheckpointOK+b.CheckpointFail+b.RestartOK+b.RestartFail)
}

// OfPrediction returns the machine energy of a Dauwe-model predicted
// breakdown, in joules.
func (m Model) OfPrediction(b dauwe.Breakdown) float64 {
	return m.joules(b.Compute+b.Recompute,
		b.CheckpointOK+b.CheckpointFail+b.RestartOK+b.RestartFail)
}

// Objective selects what the energy-aware optimizer minimizes.
type Objective int

const (
	// MinEnergy minimizes predicted machine energy.
	MinEnergy Objective = iota
	// MinEnergyDelay minimizes predicted energy × predicted time.
	MinEnergyDelay
)

// Optimizer searches checkpoint plans with the Dauwe prediction model
// under an energy objective.
type Optimizer struct {
	Model     Model
	Objective Objective
	// Technique supplies the underlying prediction model; nil uses
	// dauwe defaults.
	Technique *dauwe.Technique
}

// Result reports the selected plan with both of its predicted costs.
type Result struct {
	Plan pattern.Plan
	// Time is the predicted execution-time side.
	Time model.Prediction
	// Joules is the predicted machine energy.
	Joules float64
}

// Optimize selects the plan minimizing the energy objective.
func (o *Optimizer) Optimize(sys *system.System) (Result, error) {
	if err := o.Model.Validate(); err != nil {
		return Result{}, err
	}
	if err := sys.Validate(); err != nil {
		return Result{}, err
	}
	tech := o.Technique
	if tech == nil {
		tech = dauwe.New()
	}
	space := optimize.Space{
		Tau0:       optimize.Tau0Grid(sys, tech.Tau0Points),
		CountVals:  tech.CountVals,
		LevelSets:  optimize.PrefixLevelSets(sys.NumLevels()),
		Workers:    tech.Workers,
		RefineTau0: true,
	}
	res, err := optimize.Sweep(space, func(p pattern.Plan) (float64, bool) {
		_, bk, err := tech.PredictDetailed(sys, p)
		if err != nil {
			return 0, false
		}
		j := o.Model.OfPrediction(bk)
		if !(j > 0) || math.IsNaN(j) {
			return 0, false
		}
		if o.Objective == MinEnergyDelay {
			return j * bk.Total(), true
		}
		return j, true
	})
	if err != nil {
		return Result{}, err
	}
	pred, bk, err := tech.PredictDetailed(sys, res.Plan)
	if err != nil {
		return Result{}, err
	}
	return Result{Plan: res.Plan, Time: pred, Joules: o.Model.OfPrediction(bk)}, nil
}

// Tradeoff compares the time-optimal and energy-optimal plans for a
// system: predicted time and energy of both, the currency of [19]'s
// analysis.
type Tradeoff struct {
	TimeOptimal   Result
	EnergyOptimal Result
}

// Compare runs both optimizations.
func Compare(sys *system.System, m Model) (Tradeoff, error) {
	if err := m.Validate(); err != nil {
		return Tradeoff{}, err
	}
	tech := dauwe.New()
	plan, pred, err := tech.Optimize(sys)
	if err != nil {
		return Tradeoff{}, err
	}
	_, bk, err := tech.PredictDetailed(sys, plan)
	if err != nil {
		return Tradeoff{}, err
	}
	timeOpt := Result{Plan: plan, Time: pred, Joules: m.OfPrediction(bk)}
	energyOpt, err := (&Optimizer{Model: m}).Optimize(sys)
	if err != nil {
		return Tradeoff{}, err
	}
	return Tradeoff{TimeOptimal: timeOpt, EnergyOptimal: energyOpt}, nil
}
