package experiments

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/system"
)

func testOpts() Options {
	return Options{Trials: 40, Seed: 7, MaxWallFactor: 60}
}

func eval(t *testing.T, sysName, tech string, opt Options) Cell {
	t.Helper()
	sys, err := system.ByName(sysName)
	if err != nil {
		t.Fatal(err)
	}
	c, err := evaluate(sys, tech, opt.trials(200), rng.Campaign(opt.seed(), "test"), opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMultilevelBeatsDalyOnHardSystem(t *testing.T) {
	// The paper's first Figure 2 trend: on failure-heavy systems the
	// multilevel techniques clearly beat traditional checkpoint/restart.
	opt := testOpts()
	daly := eval(t, "D4", "daly", opt)
	dauwe := eval(t, "D4", "dauwe", opt)
	if !(dauwe.Sim.Efficiency.Mean > daly.Sim.Efficiency.Mean+0.05) {
		t.Fatalf("dauwe %.3f should clearly beat daly %.3f on D4",
			dauwe.Sim.Efficiency.Mean, daly.Sim.Efficiency.Mean)
	}
}

func TestDauwePredictionAccurate(t *testing.T) {
	// The paper's headline: Dauwe predictions land close to simulation.
	opt := testOpts()
	opt.Trials = 80
	for _, sysName := range []string{"D1", "D2", "D4"} {
		c := eval(t, sysName, "dauwe", opt)
		if err := math.Abs(c.PredictionError()); err > 0.05 {
			t.Errorf("%s: dauwe prediction error %.3f (pred %.3f, sim %.3f)",
				sysName, err, c.Predicted.Efficiency, c.Sim.Efficiency.Mean)
		}
	}
}

func TestDiOverestimatesOnExtremeSystem(t *testing.T) {
	// Section IV-G: Di's failure-free-C/R assumption overestimates
	// efficiency when MTBF approaches checkpoint/restart times.
	opt := testOpts()
	opt.Trials = 80
	c := eval(t, "D8", "di", opt)
	if !(c.PredictionError() > 0.01) {
		t.Fatalf("di on D8 should overestimate: error %.3f (pred %.3f, sim %.3f)",
			c.PredictionError(), c.Predicted.Efficiency, c.Sim.Efficiency.Mean)
	}
}

func TestBenoitOptimisticOnHardSystem(t *testing.T) {
	opt := testOpts()
	c := eval(t, "D7", "benoit", opt)
	if !(c.PredictionError() > 0.02) {
		t.Fatalf("benoit on D7 should be optimistic: error %.3f", c.PredictionError())
	}
}

func TestFig6Sorting(t *testing.T) {
	f4 := &Fig4Result{
		Scenarios: []Scenario{
			{MTBF: 3, PFSCost: 10},
			{MTBF: 9, PFSCost: 10},
			{MTBF: 15, PFSCost: 10},
		},
		Techniques: []string{"dauwe", "di", "moody"},
	}
	mk := func(sys string, errs [3]float64) []Cell {
		row := make([]Cell, 3)
		for i := range row {
			row[i] = Cell{System: sys, Technique: f4.Techniques[i]}
			row[i].Predicted.Efficiency = errs[i]
			// Sim mean 0 so PredictionError == Predicted.Efficiency.
		}
		return row
	}
	f4.Cells = [][]Cell{
		mk("a", [3]float64{0.01, 0.02, -0.30}),
		mk("b", [3]float64{0.02, 0.03, 0.05}),
		mk("c", [3]float64{0.00, 0.01, -0.10}),
	}
	f6, err := Fig6FromFig4(f4)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != 3 {
		t.Fatalf("rows = %d", len(f6.Rows))
	}
	// Sorted ascending by |moody error|: 0.05, 0.10, 0.30.
	got := []float64{f6.Rows[0].Errors[2], f6.Rows[1].Errors[2], f6.Rows[2].Errors[2]}
	if got[0] != 0.05 || got[1] != -0.10 || got[2] != -0.30 {
		t.Fatalf("sort order wrong: %v", got)
	}
}

func TestFig6RequiresMoody(t *testing.T) {
	f4 := &Fig4Result{Techniques: []string{"dauwe", "di"}}
	if _, err := Fig6FromFig4(f4); err == nil {
		t.Fatal("missing moody accepted")
	}
}

func TestScenarioGrid(t *testing.T) {
	scens, err := scenarios([]float64{26, 3}, []float64{10, 40}, 1440)
	if err != nil {
		t.Fatal(err)
	}
	if len(scens) != 4 {
		t.Fatalf("scenarios = %d", len(scens))
	}
	for _, sc := range scens {
		if sc.System.MTBF != sc.MTBF {
			t.Errorf("scenario %s MTBF mismatch", sc.Label())
		}
		top := sc.System.Levels[sc.System.NumLevels()-1]
		if top.Checkpoint != sc.PFSCost || top.Restart != sc.PFSCost {
			t.Errorf("scenario %s PFS cost mismatch", sc.Label())
		}
		if sc.System.BaselineTime != 1440 {
			t.Errorf("scenario %s baseline mismatch", sc.Label())
		}
		if err := sc.System.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", sc.Label(), err)
		}
	}
	if scens[0].Label() != "mtbf=26/pfs=10" {
		t.Fatalf("label = %s", scens[0].Label())
	}
}

func TestShortAppAdvantage(t *testing.T) {
	// The Figure 5 effect on one grid point: for the 30-minute app with
	// a 20-minute PFS cost, Dauwe (which skips level-L) beats Moody
	// (which cannot).
	base, err := system.ByName("B")
	if err != nil {
		t.Fatal(err)
	}
	sys := base.WithTopCost(20).WithMTBF(15).WithBaseline(30)
	opt := testOpts()
	opt.Trials = 120
	seed := rng.Campaign(11, "shortapp")
	dauwe, err := evaluate(sys, "dauwe", opt.Trials, seed, opt)
	if err != nil {
		t.Fatal(err)
	}
	moody, err := evaluate(sys, "moody", opt.Trials, seed, opt)
	if err != nil {
		t.Fatal(err)
	}
	if dauwe.Plan.UsesLevel(4) {
		t.Fatalf("dauwe plan should skip PFS: %v", dauwe.Plan)
	}
	if !moody.Plan.UsesLevel(4) {
		t.Fatalf("moody plan should keep PFS: %v", moody.Plan)
	}
	if !(dauwe.Sim.Efficiency.Mean > moody.Sim.Efficiency.Mean) {
		t.Fatalf("dauwe %.3f should beat moody %.3f on the short app",
			dauwe.Sim.Efficiency.Mean, moody.Sim.Efficiency.Mean)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.trials(200) != 200 || o.seed() != 1 || o.wallFactor() != 150 {
		t.Fatal("zero-value defaults wrong")
	}
	o = Options{Trials: 7, Seed: 9, MaxWallFactor: 3}
	if o.trials(200) != 7 || o.seed() != 9 || o.wallFactor() != 3 {
		t.Fatal("overrides ignored")
	}
	var logged []string
	o.Progress = func(s string) { logged = append(logged, s) }
	o.log("x %d", 5)
	if len(logged) != 1 || logged[0] != "x 5" {
		t.Fatalf("log = %v", logged)
	}
}

func TestEvaluateUnknownTechnique(t *testing.T) {
	sys, _ := system.ByName("D1")
	if _, err := evaluate(sys, "nope", 5, rng.Campaign(1, "x"), Options{}); err == nil {
		t.Fatal("unknown technique accepted")
	}
}

func TestFullFigurePipelinesSmoke(t *testing.T) {
	// End-to-end smoke of every figure harness at tiny scale; the
	// scientific properties are asserted by the focused tests above.
	if testing.Short() {
		t.Skip("runs all optimizers")
	}
	opt := Options{Trials: 2, Seed: 3, MaxWallFactor: 15, Fast: true}

	f2, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Systems) != 11 || len(f2.Cells) != 11 || len(f2.Cells[0]) != len(Fig2Techniques) {
		t.Fatalf("fig2 shape wrong: %d systems × %d techniques", len(f2.Systems), len(f2.Cells[0]))
	}

	f3, err := Fig3(opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f3.Cells {
		for _, c := range f3.Cells[i] {
			if tot := c.Sim.BreakdownShare.Total(); tot > 0 && mathAbs(tot-1) > 1e-9 {
				t.Fatalf("fig3 %s/%s breakdown share %v", c.System, c.Technique, tot)
			}
		}
	}

	f4, err := Fig4(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Scenarios) != 20 {
		t.Fatalf("fig4 scenarios = %d", len(f4.Scenarios))
	}
	f6, err := Fig6FromFig4(f4)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != 20 {
		t.Fatalf("fig6 rows = %d", len(f6.Rows))
	}

	f5, err := Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Scenarios) != 10 || len(f5.DauweBeatsMoody) != 10 {
		t.Fatalf("fig5 shape wrong: %d scenarios, %d verdicts", len(f5.Scenarios), len(f5.DauweBeatsMoody))
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestEvaluateFeedsSweepMetrics(t *testing.T) {
	sys, _ := system.ByName("D1")
	sink := obs.NewSimMetrics()
	opt := Options{Metrics: sink, MaxWallFactor: 15, Fast: true}
	if _, err := evaluate(sys, "dauwe", 2, rng.Campaign(1, "x"), opt); err != nil {
		t.Fatal(err)
	}
	snap := sink.Registry().Snapshot()
	if snap.Counter("opt_candidates_total") == 0 {
		t.Fatal("optimizer sweep telemetry missing from the global sink")
	}
	if snap.Counter("opt_evaluations_total")+snap.Counter("opt_pruned_total") != snap.Counter("opt_candidates_total") {
		t.Fatal("sweep candidate accounting broken")
	}
}
