package experiments

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/system"
)

// TestStreamOptionMatchesExact: Options.Stream produces the same cell
// statistics as the exact path (moments to float tolerance, counts
// exactly), with sketches instead of the per-trial slice.
func TestStreamOptionMatchesExact(t *testing.T) {
	opt := testOpts()
	exact := eval(t, "D4", "dauwe", opt)
	opt.Stream = true
	stream := eval(t, "D4", "dauwe", opt)
	if stream.Sim.Efficiencies != nil {
		t.Error("stream cell carries per-trial Efficiencies")
	}
	if stream.Sim.EfficiencySketch == nil {
		t.Fatal("stream cell carries no efficiency sketch")
	}
	if stream.Sim.Trials != exact.Sim.Trials || stream.Sim.Completed != exact.Sim.Completed {
		t.Errorf("counts differ: %+v vs %+v", stream.Sim, exact.Sim)
	}
	if d := math.Abs(stream.Sim.Efficiency.Mean - exact.Sim.Efficiency.Mean); d > 1e-12 {
		t.Errorf("means differ by %g", d)
	}
	if stream.Sim.Efficiency.Min != exact.Sim.Efficiency.Min ||
		stream.Sim.Efficiency.Max != exact.Sim.Efficiency.Max {
		t.Error("min/max differ between stream and exact cells")
	}
}

// TestCheckpointDirAndResume: a cell campaign checkpointed to disk
// resumes to an identical result, and the checkpoint files land under
// the configured directory.
func TestCheckpointDirAndResume(t *testing.T) {
	dir := t.TempDir()
	opt := testOpts()
	want := eval(t, "D4", "dauwe", opt)

	opt.CheckpointDir = dir
	first := eval(t, "D4", "dauwe", opt)
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("expected one checkpoint file, got %v (%v)", files, err)
	}
	if !reflect.DeepEqual(want.Sim, first.Sim) {
		t.Error("checkpointed cell differs from plain cell")
	}

	// Truncate the checkpoint back to a mid-run state by re-running with
	// resume against the completed file — must reproduce the result
	// without re-simulating (the completed checkpoint short-circuits).
	opt.Resume = true
	resumed := eval(t, "D4", "dauwe", opt)
	if !reflect.DeepEqual(want.Sim, resumed.Sim) {
		t.Error("resumed cell differs from plain cell")
	}

	// A corrupt checkpoint must surface as an error, not silent rerun.
	if err := os.WriteFile(files[0], []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	sysD4, err := system.ByName("D4")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evaluate(sysD4, "dauwe", opt.trials(200), rng.Campaign(opt.seed(), "test"), opt); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

// TestSanitizeCell: labels map to safe filenames.
func TestSanitizeCell(t *testing.T) {
	if got := sanitizeCell("mtbf=3/pfs=40-moody"); got != "mtbf_3_pfs_40-moody" {
		t.Errorf("sanitizeCell = %q", got)
	}
}
