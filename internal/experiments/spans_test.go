package experiments

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/system"
)

// findSpan returns the named child of a span forest, or nil.
func findSpan(nodes []obs.SpanNode, name string) *obs.SpanNode {
	for i := range nodes {
		if nodes[i].Name == name {
			return &nodes[i]
		}
	}
	return nil
}

func TestEvaluateRecordsSpanTree(t *testing.T) {
	opt := testOpts()
	opt.Fast = true
	opt.Workers = 4
	opt.Spans = obs.NewTracer()
	sys, err := system.ByName("D7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := evaluate(sys, "dauwe", 32, rng.Campaign(7, "spans"), opt); err != nil {
		t.Fatal(err)
	}
	snap := opt.Spans.Snapshot()
	cell := findSpan(snap, "cell")
	if cell == nil || cell.Count != 1 {
		t.Fatalf("no cell span in %+v", snap)
	}
	optSpan := findSpan(cell.Children, "optimize")
	if optSpan == nil {
		t.Fatalf("no optimize span under cell: %+v", cell.Children)
	}
	// The dauwe sweep is instrumented: its worker shards graft under
	// the optimize span.
	sweep := findSpan(optSpan.Children, "sweep")
	if sweep == nil || sweep.Count == 0 {
		t.Fatalf("no sweep span under optimize: %+v", optSpan.Children)
	}
	if chunk := findSpan(sweep.Children, "chunk"); chunk == nil || chunk.Count == 0 {
		t.Fatalf("no chunk span under sweep: %+v", sweep.Children)
	}
	if refine := findSpan(optSpan.Children, "refine"); refine == nil || refine.Count != 1 {
		t.Fatalf("no refine span under optimize: %+v", optSpan.Children)
	}
	camp := findSpan(cell.Children, "campaign")
	if camp == nil {
		t.Fatalf("no campaign span under cell: %+v", cell.Children)
	}
	for _, stage := range []string{"setup", "run", "merge"} {
		if s := findSpan(camp.Children, stage); s == nil || s.Count != 1 {
			t.Fatalf("campaign stage %q missing: %+v", stage, camp.Children)
		}
	}
	run := findSpan(camp.Children, "run")
	trial := findSpan(run.Children, "trial")
	if trial == nil || trial.Count != 32 {
		t.Fatalf("trial spans under run = %+v, want count 32", run.Children)
	}
	// The cell's total must bound its children (sanity of nesting).
	if cell.TotalNS < optSpan.TotalNS+camp.TotalNS {
		t.Fatalf("cell total %d < optimize %d + campaign %d", cell.TotalNS, optSpan.TotalNS, camp.TotalNS)
	}
}

func TestEvaluateSpanTreeWithMetricsObservers(t *testing.T) {
	// Trial spans must coexist with the metrics observer chain: the
	// campaign wraps both into one observer per worker.
	opt := testOpts()
	opt.Fast = true
	opt.CollectMetrics = true
	opt.Spans = obs.NewTracer()
	sys, err := system.ByName("D7")
	if err != nil {
		t.Fatal(err)
	}
	c, err := evaluate(sys, "daly", 24, rng.Campaign(7, "spans-m"), opt)
	if err != nil {
		t.Fatal(err)
	}
	if c.Metrics == nil {
		t.Fatal("metrics collection lost")
	}
	snap := opt.Spans.Snapshot()
	cell := findSpan(snap, "cell")
	if cell == nil {
		t.Fatalf("no cell span: %+v", snap)
	}
	camp := findSpan(cell.Children, "campaign")
	run := findSpan(camp.Children, "run")
	trial := findSpan(run.Children, "trial")
	if trial == nil || trial.Count != 24 {
		t.Fatalf("trial spans = %+v, want count 24", run.Children)
	}
	// mergeMetrics stage actually ran (metrics pool present).
	if s := findSpan(camp.Children, "merge"); s == nil || s.Count != 1 {
		t.Fatalf("merge stage missing: %+v", camp.Children)
	}
}
