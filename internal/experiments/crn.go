package experiments

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

// VarianceReport is a head-to-head technique comparison on one system
// under common random numbers: each technique's optimized plan and
// marginal campaign result, plus every pairwise paired-difference
// estimate (and, when control variates are on, the martingale-adjusted
// refinements).
type VarianceReport struct {
	System     string
	Techniques []string
	// Cells aligns with Techniques; Sim holds each arm's marginal
	// result over the trials actually run.
	Cells []Cell
	// Paired carries the comparisons, stopping outcome and per-arm
	// control-variate estimates.
	Paired sim.PairedResult
}

// Comparison returns the paired comparison between two techniques by
// name, or nil if either is absent.
func (r *VarianceReport) Comparison(a, b string) *sim.ArmComparison {
	ai, bi := indexOf(r.Techniques, a), indexOf(r.Techniques, b)
	if ai < 0 || bi < 0 {
		return nil
	}
	return r.Paired.Comparison(ai, bi)
}

// CompareTechniques optimizes each technique on the system and runs all
// resulting plans as one CRN paired campaign (Options.CRN is implied;
// Options.CITarget/CIBatch drive sequential stopping, and control
// variates are always reported since the comparison exists to squeeze
// variance). Options.Trials falls back to the paper's Figure 5 count of
// 400.
func CompareTechniques(sys *system.System, techs []string, opt Options) (*VarianceReport, error) {
	if len(techs) < 2 {
		return nil, fmt.Errorf("experiments: comparing %d technique(s); need at least two", len(techs))
	}
	trials := opt.trials(400)
	out := &VarianceReport{System: sys.Name, Techniques: techs}
	arms := make([]sim.Scenario, len(techs))
	for i, tech := range techs {
		plan, pred, err := optimizePlan(sys, tech, opt)
		if err != nil {
			return nil, err
		}
		out.Cells = append(out.Cells, Cell{System: sys.Name, Technique: tech, Plan: plan, Predicted: pred})
		arms[i] = opt.scenarioFor(sys, plan)
		opt.log("crn %s/%s: plan=%v pred=%.3f", sys.Name, tech, plan, pred.Efficiency)
	}
	res, armMetrics, err := opt.runPaired(arms, trials, rng.Campaign(opt.seed(), "crn").Scenario(sys.Name), true)
	if err != nil {
		return nil, fmt.Errorf("experiments: crn campaign on %s: %w", sys.Name, err)
	}
	for i := range out.Cells {
		out.Cells[i].Sim = res.Arms[i]
		if armMetrics != nil {
			out.Cells[i].Metrics = armMetrics[i]
		}
	}
	out.Paired = *res
	return out, nil
}
