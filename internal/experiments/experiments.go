// Package experiments reproduces every table and figure of the paper's
// evaluation (Section IV): Table I's test-system catalog and Figures 2–6.
// Each experiment optimizes checkpoint intervals with the techniques
// under comparison, simulates the optimized plans over hundreds of
// randomized trials, and returns the structured rows/series the paper
// reports (efficiency bars with standard deviations, model-prediction
// diamonds, time breakdowns, prediction errors).
package experiments

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"

	// The five technique packages register themselves; the concrete
	// types are also needed for Fast-mode resolution tuning.
	"repro/internal/model/benoit"
	_ "repro/internal/model/daly"
	"repro/internal/model/dauwe"
	"repro/internal/model/di"
	"repro/internal/model/moody"
)

// Options tunes an experiment run. The zero value reproduces the paper's
// setup (at the paper's trial counts); benchmarks shrink Trials to keep
// wall time sane.
type Options struct {
	// Trials overrides the per-scenario trial count (0 = the paper's:
	// 200, or 400 for Figure 5).
	Trials int
	// Seed is the campaign base seed (0 = 1).
	Seed uint64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// MaxWallFactor caps each trial at this multiple of T_B
	// (0 = 150; only the sub-1 %-efficiency scenarios ever hit it).
	MaxWallFactor float64
	// Progress, when non-nil, receives one line per completed scenario.
	Progress func(string)
	// Fast lowers every optimizer's grid resolution. Benchmarks and
	// smoke tests use it; paper-scale runs leave it false.
	Fast bool
	// Metrics, when non-nil, is a global telemetry sink: every campaign
	// runs with per-worker obs.SimMetrics shards, which are merged into
	// the per-cell metrics and folded into this sink.
	Metrics *obs.SimMetrics
	// CollectMetrics attaches per-cell metrics even without a global
	// sink.
	CollectMetrics bool
	// TrialDone, when non-nil, is called once per simulated trial across
	// every scenario; it must be safe for concurrent use (progress
	// reporting hook).
	TrialDone func()
	// Spans, when non-nil, receives the run's span tree: each cell
	// records "cell" → {"optimize", "campaign"}, the campaign splits
	// into "setup"/"run"/"merge", per-worker trial spans are grafted
	// under "run", and instrumented optimizer sweeps graft their
	// "sweep"/"refine" spans under "optimize". The tracer is used from
	// the calling goroutine only (parallel stages record into private
	// shards that are merged in), so one experiment run per tracer.
	Spans *obs.Tracer
	// TrialStats, when non-nil, receives per-trial streaming estimators
	// that are safe to snapshot concurrently mid-run (the live /metrics
	// path): "trial_efficiency" and "trial_walltime_minutes".
	TrialStats *obs.StreamSet
	// CRN runs each experiment row's techniques under common random
	// numbers: every technique in a row shares one scenario seed, so
	// trial i of every technique faces the same failure realization and
	// technique differences become paired differences (see DESIGN.md
	// §2.11). Each technique's marginal campaign result stays bitwise
	// identical to a standalone campaign with the shared seed; only the
	// significance machinery changes (paired t instead of unpaired
	// Welch). Row results gain Paired comparisons.
	CRN bool
	// CITarget, with CRN, enables sequential stopping: each row's
	// campaigns advance in batches until every pairwise paired 95% CI
	// half-width on mean efficiency is at most CITarget (or the trial
	// budget runs out). Zero disables stopping. When Metrics is set, the
	// counters vr_trials_run_total and vr_trials_saved_total record the
	// per-arm trials executed and the budget the stopping rule left
	// unrun.
	CITarget float64
	// CIBatch is the per-arm batch size between stopping checks
	// (0 = the sim default of 64).
	CIBatch int
	// Stream runs every campaign through sim.NewStreamSink: constant
	// memory at any trial count, sketch-backed summaries, no per-trial
	// Efficiencies. Ignored under CRN (paired comparisons need the
	// exact per-trial slices).
	Stream bool
	// CheckpointDir, when non-empty, checkpoints every campaign into
	// one file per (experiment, system, technique) cell under this
	// directory. Ignored under CRN.
	CheckpointDir string
	// CheckpointInterval is the per-campaign checkpoint interval in
	// trials (0 = every 1/8 of the campaign).
	CheckpointInterval int
	// Resume, with CheckpointDir, resumes each cell's campaign from its
	// checkpoint file when present.
	Resume bool
	// Events, when non-nil, receives structured campaign lifecycle
	// events — start, checkpoint, resume, terminal state — as JSON log
	// lines (see obs.EventLog). The CLIs enable it with -log-json.
	Events *obs.EventLog
}

// fastCounts is the reduced N_i candidate set used in Fast mode.
var fastCounts = []int{0, 1, 2, 4, 8, 16, 32}

func (o Options) trials(def int) int {
	if o.Trials > 0 {
		return o.Trials
	}
	return def
}

func (o Options) seed() uint64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

func (o Options) wallFactor() float64 {
	if o.MaxWallFactor > 0 {
		return o.MaxWallFactor
	}
	return 150
}

func (o Options) log(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Cell is one (system, technique) evaluation: the technique's optimized
// plan and prediction, plus the simulated ground truth.
type Cell struct {
	System    string
	Technique string
	Plan      pattern.Plan
	Predicted model.Prediction
	Sim       sim.CampaignResult
	// Metrics holds the campaign's merged simulator telemetry when
	// Options enabled collection (nil otherwise).
	Metrics *obs.SimMetrics
}

// PredictionError returns predicted minus simulated efficiency (the
// Figure 6 metric).
func (c *Cell) PredictionError() float64 {
	return c.Predicted.Efficiency - c.Sim.Efficiency.Mean
}

// newTechnique instantiates a technique, optionally dialing its search
// resolution down for Fast mode.
func newTechnique(name string, fast bool) (model.Technique, error) {
	tech, err := model.New(name)
	if err != nil {
		return nil, err
	}
	if fast {
		switch t := tech.(type) {
		case *dauwe.Technique:
			t.Tau0Points, t.CountVals = 24, fastCounts
		case *di.Technique:
			t.Tau0Points, t.CountVals = 24, fastCounts
		case *benoit.Technique:
			t.Tau0Points, t.CountVals = 24, fastCounts
		case *moody.Technique:
			t.Tau0Points, t.CountVals, t.MaxPeriodIntervals = 20, fastCounts, 128
		}
	}
	return tech, nil
}

// applySink wires the Options' streaming/checkpoint choices into one
// campaign. label names the cell (experiment/system/technique) and
// becomes the checkpoint filename.
func (o Options) applySink(camp *sim.Campaign, label string) {
	if o.Stream && camp.Sink == nil {
		camp.Sink = sim.NewStreamSink()
	}
	if o.CheckpointDir == "" || camp.Checkpoint != nil {
		return
	}
	interval := o.CheckpointInterval
	if interval == 0 {
		interval = camp.Trials / 8
		if interval < 1 {
			interval = 1
		}
	}
	// The campaign seed words disambiguate same-named cells across
	// experiments (fig2 vs fig3 share system/technique names but never
	// seeds), so a stale file can at worst fail header validation, not
	// silently resume the wrong cell.
	hi, lo := camp.Seed.Words()
	name := fmt.Sprintf("%s-%08x.ckpt", sanitizeCell(label), (hi^lo)&0xffffffff)
	camp.Checkpoint = &sim.CheckpointConfig{
		Path:     filepath.Join(o.CheckpointDir, name),
		Interval: interval,
		Resume:   o.Resume,
	}
}

// applyEvents chains a structured-event emitter onto the campaign's
// Progress hook: campaign_start on the first update (plus resume, when
// the run picked up a checkpoint), checkpoint on flagged merges, and
// campaign_error/campaign_end on the terminal update. It composes with
// any Progress hook already installed.
func (o Options) applyEvents(camp *sim.Campaign, label string) {
	if o.Events == nil {
		return
	}
	ev, prev := o.Events, camp.Progress
	ckPath := ""
	if camp.Checkpoint != nil {
		ckPath = camp.Checkpoint.Path
	}
	started := time.Now()
	first := true
	// Progress runs under the runner's merge lock, so the closure state
	// needs no extra synchronization.
	camp.Progress = func(u sim.ProgressUpdate) {
		if prev != nil {
			prev(u)
		}
		if first {
			first = false
			ev.CampaignStart(label, 0, 1, u.First, u.Limit, u.Total)
			if u.First > 0 && ckPath != "" {
				ev.Resume(ckPath, u.First)
			}
		}
		if u.Checkpointed {
			ev.Checkpoint(ckPath, u.Merged)
		}
		if u.Final {
			ev.Error(string(u.State), u.Err)
			ev.CampaignEnd(string(u.State), u.Merged, time.Since(started))
		}
	}
}

// sanitizeCell maps a cell label to a safe filename.
func sanitizeCell(label string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, label)
}

// runCampaign executes a campaign with the Options' telemetry hooks
// attached: per-trial progress ticks, and — when metrics collection is
// on — one obs.SimMetrics shard per worker, merged after the run and
// folded into the global sink. Returns the merged per-campaign metrics
// (nil when collection is off).
func (o Options) runCampaign(camp sim.Campaign) (sim.CampaignResult, *obs.SimMetrics, error) {
	// Catch-all for callers that skip evaluate's labelled applySink
	// (sensitivity, ablations): the seed-word hash in the filename keeps
	// cells distinct even under the bare system-name label.
	o.applySink(&camp, camp.Scenario.System.Name)
	o.applyEvents(&camp, camp.Scenario.System.Name)
	campSpan := o.Spans.Start("campaign")
	defer campSpan.End()
	setupSpan := o.Spans.Start("setup")
	if o.TrialDone != nil || o.TrialStats != nil {
		done := o.TrialDone
		var eff, wall *obs.StreamStat
		if o.TrialStats != nil {
			eff = o.TrialStats.Stat("trial_efficiency")
			wall = o.TrialStats.Stat("trial_walltime_minutes")
		}
		camp.TrialDone = func(r sim.TrialResult) {
			if eff != nil {
				eff.Observe(r.Efficiency)
				wall.Observe(r.WallTime)
			}
			if done != nil {
				done()
			}
		}
	}
	var pool *obs.Pool
	if o.Metrics != nil || o.CollectMetrics {
		pool = &obs.Pool{}
		camp.ObserverFactory = pool.Observer
	}
	var tracers *obs.TracerPool
	if o.Spans != nil {
		tracers = &obs.TracerPool{}
		inner := camp.ObserverFactory
		camp.ObserverFactory = func(worker int) sim.Observer {
			spans := obs.TrialSpans(tracers.Shard())
			if inner == nil {
				return spans
			}
			return obs.Multi(inner(worker), spans)
		}
	}
	setupSpan.End()

	runSpan := o.Spans.Start("run")
	res, err := camp.Run()
	runSpan.End()

	mergeSpan := o.Spans.Start("merge")
	defer mergeSpan.End()
	if tracers != nil {
		// Worker trial spans appear under the stage that ran them.
		runSpan.Adopt(tracers.Merged())
	}
	if err != nil || pool == nil {
		return res, nil, err
	}
	m, err := pool.Merged()
	if err != nil {
		return res, nil, err
	}
	if o.Metrics != nil {
		if err := o.Metrics.Merge(m); err != nil {
			return res, nil, err
		}
	}
	return res, m, nil
}

// optimizePlan runs one technique's optimizer for one system, with the
// Options' sweep telemetry and spans attached.
func optimizePlan(sys *system.System, techName string, opt Options) (pattern.Plan, model.Prediction, error) {
	tech, err := newTechnique(techName, opt.Fast)
	if err != nil {
		return pattern.Plan{}, model.Prediction{}, err
	}
	if opt.Metrics != nil {
		// Techniques with an instrumented optimizer sweep feed the
		// global telemetry sink alongside the simulator shards.
		if m, ok := tech.(interface{ SetSweepMetrics(*obs.Registry) }); ok {
			m.SetSweepMetrics(opt.Metrics.Registry())
		}
	}
	var sweepSpans *obs.Tracer
	if opt.Spans != nil {
		// The sweep merges its per-worker span shards into a private
		// tracer, grafted under this cell's "optimize" span afterwards.
		if s, ok := tech.(interface{ SetSweepSpans(*obs.Tracer) }); ok {
			sweepSpans = obs.NewTracer()
			s.SetSweepSpans(sweepSpans)
		}
	}
	optSpan := opt.Spans.Start("optimize")
	plan, pred, err := tech.Optimize(sys)
	optSpan.End()
	optSpan.Adopt(sweepSpans)
	if err != nil {
		return pattern.Plan{}, model.Prediction{}, fmt.Errorf("%s on %s: optimize: %w", techName, sys.Name, err)
	}
	return plan, pred, nil
}

// scenarioFor builds the simulation scenario for one optimized plan.
func (o Options) scenarioFor(sys *system.System, plan pattern.Plan) sim.Scenario {
	return sim.Scenario{
		System:        sys,
		Plan:          plan,
		Policy:        sim.RetryPolicy, // the paper's simulations use this for all techniques
		MaxWallFactor: o.wallFactor(),
	}
}

// evaluate optimizes one technique for one system and simulates the
// resulting plan.
func evaluate(sys *system.System, techName string, trials int, seed rng.Seed, opt Options) (Cell, error) {
	cellSpan := opt.Spans.Start("cell")
	defer cellSpan.End()
	plan, pred, err := optimizePlan(sys, techName, opt)
	if err != nil {
		return Cell{}, err
	}
	camp := sim.Campaign{
		Scenario: opt.scenarioFor(sys, plan),
		Trials:   trials,
		Seed:     seed.Scenario(sys.Name + "/" + techName),
		Workers:  opt.Workers,
	}
	opt.applySink(&camp, sys.Name+"-"+techName)
	res, metrics, err := opt.runCampaign(camp)
	if err != nil {
		return Cell{}, fmt.Errorf("%s on %s: simulate: %w", techName, sys.Name, err)
	}
	return Cell{
		System:    sys.Name,
		Technique: techName,
		Plan:      plan,
		Predicted: pred,
		Sim:       res,
		Metrics:   metrics,
	}, nil
}

// evaluateRow evaluates every technique of one experiment row. Without
// CRN each technique runs its own independently seeded campaign (the
// historical layout) and the returned PairedResult is nil. With CRN the
// techniques optimize exactly as before, then all plans run as one
// sim.PairedCampaign on the shared seed.Scenario(sys.Name) — trial i of
// every technique sees the same failure realization — and the row's
// paired comparisons ride back alongside the cells.
func evaluateRow(sys *system.System, techs []string, trials int, seed rng.Seed, opt Options) ([]Cell, *sim.PairedResult, error) {
	if !opt.CRN {
		cells := make([]Cell, 0, len(techs))
		for _, tech := range techs {
			c, err := evaluate(sys, tech, trials, seed, opt)
			if err != nil {
				return nil, nil, err
			}
			cells = append(cells, c)
		}
		return cells, nil, nil
	}
	cells := make([]Cell, len(techs))
	arms := make([]sim.Scenario, len(techs))
	for i, tech := range techs {
		cellSpan := opt.Spans.Start("cell")
		plan, pred, err := optimizePlan(sys, tech, opt)
		cellSpan.End()
		if err != nil {
			return nil, nil, err
		}
		cells[i] = Cell{System: sys.Name, Technique: tech, Plan: plan, Predicted: pred}
		arms[i] = opt.scenarioFor(sys, plan)
	}
	paired, armMetrics, err := opt.runPaired(arms, trials, seed.Scenario(sys.Name), false)
	if err != nil {
		return nil, nil, fmt.Errorf("crn row %s: %w", sys.Name, err)
	}
	for i := range cells {
		cells[i].Sim = paired.Arms[i]
		if armMetrics != nil {
			cells[i].Metrics = armMetrics[i]
		}
	}
	return cells, paired, nil
}

// runPaired executes one CRN row with the Options' telemetry hooks: the
// same per-trial progress ticks and streaming stats as runCampaign, and
// one obs.SimMetrics pool per arm (campaign spans stay row-granular in
// CRN mode — per-worker trial spans are not grafted).
func (o Options) runPaired(arms []sim.Scenario, trials int, seed rng.Seed, controlVariates bool) (*sim.PairedResult, []*obs.SimMetrics, error) {
	campSpan := o.Spans.Start("paired-campaign")
	defer campSpan.End()
	pc := sim.PairedCampaign{
		Arms:            arms,
		Trials:          trials,
		Seed:            seed,
		Workers:         o.Workers,
		TargetCI:        o.CITarget,
		BatchSize:       o.CIBatch,
		ControlVariates: controlVariates,
	}
	if o.TrialDone != nil || o.TrialStats != nil {
		done := o.TrialDone
		var eff, wall *obs.StreamStat
		if o.TrialStats != nil {
			eff = o.TrialStats.Stat("trial_efficiency")
			wall = o.TrialStats.Stat("trial_walltime_minutes")
		}
		pc.TrialDone = func(arm int, r sim.TrialResult) {
			if eff != nil {
				eff.Observe(r.Efficiency)
				wall.Observe(r.WallTime)
			}
			if done != nil {
				done()
			}
		}
	}
	var pools []*obs.Pool
	if o.Metrics != nil || o.CollectMetrics {
		pools = make([]*obs.Pool, len(arms))
		for a := range pools {
			pools[a] = &obs.Pool{}
		}
		pc.ObserverFactory = func(arm, worker int) sim.Observer { return pools[arm].Observer(worker) }
	}
	res, err := pc.Run()
	if err != nil {
		return nil, nil, err
	}
	if o.Metrics != nil {
		reg := o.Metrics.Registry()
		reg.Counter("vr_trials_run_total").Add(uint64(res.TrialsRun * len(arms)))
		reg.Counter("vr_trials_saved_total").Add(uint64(res.TrialsSaved() * len(arms)))
	}
	if pools == nil {
		return &res, nil, nil
	}
	metrics := make([]*obs.SimMetrics, len(arms))
	for a := range pools {
		m, err := pools[a].Merged()
		if err != nil {
			return nil, nil, err
		}
		metrics[a] = m
		if o.Metrics != nil {
			if err := o.Metrics.Merge(m); err != nil {
				return nil, nil, err
			}
		}
	}
	return &res, metrics, nil
}

// Fig2Techniques are the five techniques of Figure 2, in plot order.
var Fig2Techniques = []string{"dauwe", "di", "moody", "benoit", "daly"}

// BestTechniques are the three techniques Figures 3–6 focus on.
var BestTechniques = []string{"dauwe", "di", "moody"}

// Fig2Result reproduces Figure 2: simulated efficiency (mean ± σ) and
// each technique's own prediction, for every Table I system.
type Fig2Result struct {
	Systems    []string
	Techniques []string
	// Cells indexed [system][technique].
	Cells [][]Cell
	// Paired holds each system row's CRN comparison (nil without
	// Options.CRN), index-aligned with Systems.
	Paired []*sim.PairedResult
}

// Fig2 runs the Figure 2 experiment.
func Fig2(opt Options) (*Fig2Result, error) {
	systems := system.TableI()
	trials := opt.trials(200)
	seed := rng.Campaign(opt.seed(), "fig2")
	out := &Fig2Result{Techniques: Fig2Techniques}
	for _, sys := range systems {
		out.Systems = append(out.Systems, sys.Name)
		row, paired, err := evaluateRow(sys, Fig2Techniques, trials, seed, opt)
		if err != nil {
			return nil, err
		}
		for _, c := range row {
			opt.log("fig2 %s/%s: sim=%.3f±%.3f pred=%.3f plan=%v",
				sys.Name, c.Technique, c.Sim.Efficiency.Mean, c.Sim.Efficiency.Std, c.Predicted.Efficiency, c.Plan)
		}
		out.Cells = append(out.Cells, row)
		if opt.CRN {
			out.Paired = append(out.Paired, paired)
		}
	}
	return out, nil
}

// Fig3Result reproduces Figure 3: the percentage of application time
// spent in each event category, for the three best techniques on every
// Table I system.
type Fig3Result struct {
	Systems    []string
	Techniques []string
	// Cells indexed [system][technique]; Sim.BreakdownShare carries the
	// stacked percentages.
	Cells [][]Cell
}

// Fig3 runs the Figure 3 experiment.
func Fig3(opt Options) (*Fig3Result, error) {
	systems := system.TableI()
	trials := opt.trials(200)
	seed := rng.Campaign(opt.seed(), "fig3")
	out := &Fig3Result{Techniques: BestTechniques}
	for _, sys := range systems {
		out.Systems = append(out.Systems, sys.Name)
		row, _, err := evaluateRow(sys, BestTechniques, trials, seed, opt)
		if err != nil {
			return nil, err
		}
		for _, c := range row {
			b := c.Sim.BreakdownShare
			opt.log("fig3 %s/%s: useful=%.1f%% lost=%.1f%% ckpt=%.1f%%/%.1f%% restart=%.1f%%/%.1f%%",
				sys.Name, c.Technique, 100*b.UsefulCompute, 100*b.LostCompute,
				100*b.CheckpointOK, 100*b.CheckpointFail, 100*b.RestartOK, 100*b.RestartFail)
		}
		out.Cells = append(out.Cells, row)
	}
	return out, nil
}

// Scenario is one grid point of the Figure 4/5 exascale studies.
type Scenario struct {
	MTBF    float64 // minutes
	PFSCost float64 // level-L checkpoint/restart minutes
	System  *system.System
}

// Label renders the grid point.
func (s Scenario) Label() string {
	return fmt.Sprintf("mtbf=%g/pfs=%g", s.MTBF, s.PFSCost)
}

// Fig4MTBFs are the five exascale MTBF values (3–26 minutes per [5]).
var Fig4MTBFs = []float64{26, 20, 15, 9, 3}

// Fig4PFSCosts are the four level-L checkpoint/restart costs (minutes).
var Fig4PFSCosts = []float64{10, 20, 30, 40}

// scenarios builds the scaled system B grid.
func scenarios(mtbfs, pfsCosts []float64, tb float64) ([]Scenario, error) {
	base, err := system.ByName("B")
	if err != nil {
		return nil, err
	}
	var out []Scenario
	for _, pfs := range pfsCosts {
		for _, mtbf := range mtbfs {
			out = append(out, Scenario{
				MTBF:    mtbf,
				PFSCost: pfs,
				System:  base.WithTopCost(pfs).WithMTBF(mtbf).WithBaseline(tb),
			})
		}
	}
	return out, nil
}

// Fig4Result reproduces Figure 4: a 1440-minute application on system B
// scaled over the exascale MTBF × PFS-cost grid, for the three best
// techniques.
type Fig4Result struct {
	Scenarios  []Scenario
	Techniques []string
	// Cells indexed [scenario][technique].
	Cells [][]Cell
	// Paired holds each scenario row's CRN comparison (nil without
	// Options.CRN), index-aligned with Scenarios.
	Paired []*sim.PairedResult
}

// Fig4 runs the Figure 4 experiment.
func Fig4(opt Options) (*Fig4Result, error) {
	return exascaleGrid(opt, "fig4", Fig4PFSCosts, 1440, opt.trials(200))
}

// Fig5Result reproduces Figure 5: the 30-minute application on the 10-
// and 20-minute PFS grids, with the Welch significance verdicts for the
// paper's claim that skipping level-L checkpoints helps short
// applications.
type Fig5Result struct {
	Scenarios  []Scenario
	Techniques []string
	Cells      [][]Cell
	// DauweBeatsMoody[i] reports, for scenario i, whether Dauwe's mean
	// efficiency exceeds Moody's with 95 % one-sided confidence —
	// unpaired Welch normally, the far sharper paired t under
	// Options.CRN.
	DauweBeatsMoody []bool
	// Paired holds each scenario row's CRN comparison (nil without
	// Options.CRN).
	Paired []*sim.PairedResult
}

// Fig5 runs the Figure 5 experiment.
func Fig5(opt Options) (*Fig5Result, error) {
	grid, err := exascaleGrid(opt, "fig5", []float64{10, 20}, 30, opt.trials(400))
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{Scenarios: grid.Scenarios, Techniques: grid.Techniques, Cells: grid.Cells, Paired: grid.Paired}
	di := indexOf(grid.Techniques, "dauwe")
	mi := indexOf(grid.Techniques, "moody")
	for i := range out.Cells {
		var sig bool
		var err error
		if opt.CRN {
			// Under CRN the per-trial efficiencies are index-aligned
			// (trial i of both arms shared one failure realization), so
			// the one-sided verdict comes from the paired t test.
			sig, err = stats.SignificantlyGreaterPaired(
				out.Cells[i][di].Sim.Efficiencies, out.Cells[i][mi].Sim.Efficiencies, 0.95)
		} else {
			sig, err = stats.SignificantlyGreater(
				out.Cells[i][di].Sim.Efficiency, out.Cells[i][mi].Sim.Efficiency, 0.95)
		}
		if err != nil {
			return nil, err
		}
		out.DauweBeatsMoody = append(out.DauweBeatsMoody, sig)
	}
	return out, nil
}

func indexOf(xs []string, want string) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}

func exascaleGrid(opt Options, name string, pfsCosts []float64, tb float64, trials int) (*Fig4Result, error) {
	scens, err := scenarios(Fig4MTBFs, pfsCosts, tb)
	if err != nil {
		return nil, err
	}
	seed := rng.Campaign(opt.seed(), name)
	out := &Fig4Result{Scenarios: scens, Techniques: BestTechniques}
	for _, sc := range scens {
		row, paired, err := evaluateRow(sc.System, BestTechniques, trials, seed, opt)
		if err != nil {
			return nil, err
		}
		for i := range row {
			row[i].System = sc.Label()
			c := &row[i]
			opt.log("%s %s/%s: sim=%.3f±%.3f pred=%.3f plan=%v",
				name, sc.Label(), c.Technique, c.Sim.Efficiency.Mean, c.Sim.Efficiency.Std, c.Predicted.Efficiency, c.Plan)
		}
		out.Cells = append(out.Cells, row)
		if opt.CRN {
			out.Paired = append(out.Paired, paired)
		}
	}
	return out, nil
}

// Fig6Row is one scenario of the Figure 6 prediction-error plot.
type Fig6Row struct {
	Scenario string
	// Errors holds predicted−simulated efficiency per technique,
	// aligned with Fig6Result.Techniques.
	Errors []float64
}

// Fig6Result reproduces Figure 6: per-technique prediction error over
// the 20 Figure 4 scenarios, sorted by the magnitude of Moody's error.
type Fig6Result struct {
	Techniques []string
	Rows       []Fig6Row
}

// Fig6FromFig4 derives the Figure 6 ordering from a completed Figure 4
// run (the paper derives it from the same 20 scenarios).
func Fig6FromFig4(f4 *Fig4Result) (*Fig6Result, error) {
	mi := indexOf(f4.Techniques, "moody")
	if mi < 0 {
		return nil, fmt.Errorf("experiments: fig4 run lacks moody")
	}
	out := &Fig6Result{Techniques: f4.Techniques}
	for i, row := range f4.Cells {
		r := Fig6Row{Scenario: f4.Scenarios[i].Label()}
		for _, c := range row {
			r.Errors = append(r.Errors, c.PredictionError())
		}
		out.Rows = append(out.Rows, r)
	}
	sort.SliceStable(out.Rows, func(a, b int) bool {
		return abs(out.Rows[a].Errors[mi]) < abs(out.Rows[b].Errors[mi])
	})
	return out, nil
}

// Fig6 runs Figure 4's grid and derives the prediction-error plot.
func Fig6(opt Options) (*Fig6Result, error) {
	f4, err := Fig4(opt)
	if err != nil {
		return nil, err
	}
	return Fig6FromFig4(f4)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
