package experiments

import (
	"fmt"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

// AblationRow is one system's baseline-versus-variant comparison.
type AblationRow struct {
	System  string
	Plan    string
	Base    sim.CampaignResult
	Variant sim.CampaignResult
}

// Delta returns variant minus baseline mean efficiency.
func (r *AblationRow) Delta() float64 {
	return r.Variant.Efficiency.Mean - r.Base.Efficiency.Mean
}

// AblationResult is a design-choice study: the same optimized plans
// simulated under two protocol/system variants.
type AblationResult struct {
	Name         string
	BaseLabel    string
	VariantLabel string
	Rows         []AblationRow
}

// DefaultAblationSystems are the systems the ablations run on by
// default: one per difficulty regime.
var DefaultAblationSystems = []string{"B", "D2", "D4", "D7"}

// PolicyAblation quantifies Moody et al.'s restart-escalation assumption
// (DESIGN.md §2.2): each system's dauwe-optimized plan is simulated under
// the realistic retry policy and under escalation. The gap is the real
// cost of the behavior Moody's model assumes, and explains that model's
// systematic efficiency underestimation (paper Section IV-G).
func PolicyAblation(opt Options, systems []string) (*AblationResult, error) {
	if len(systems) == 0 {
		systems = DefaultAblationSystems
	}
	out := &AblationResult{
		Name:         "restart policy",
		BaseLabel:    "retry (realistic)",
		VariantLabel: "escalate (Moody)",
	}
	trials := opt.trials(200)
	seed := rng.Campaign(opt.seed(), "ablation-policy")
	for _, name := range systems {
		sys, err := system.ByName(name)
		if err != nil {
			return nil, err
		}
		tech, err := newTechnique("dauwe", opt.Fast)
		if err != nil {
			return nil, err
		}
		plan, _, err := tech.Optimize(sys)
		if err != nil {
			return nil, err
		}
		row := AblationRow{System: name, Plan: plan.String()}
		for i, policy := range []sim.RestartPolicy{sim.RetryPolicy, sim.EscalatePolicy} {
			res, _, err := opt.runCampaign(sim.Campaign{
				Scenario: sim.Scenario{
					System: sys, Plan: plan, Policy: policy,
					MaxWallFactor: opt.wallFactor(),
				},
				Trials:  trials,
				Seed:    seed.Scenario(fmt.Sprintf("%s/p%d", name, i)),
				Workers: opt.Workers,
			})
			if err != nil {
				return nil, err
			}
			if i == 0 {
				row.Base = res
			} else {
				row.Variant = res
			}
		}
		opt.log("ablation-policy %s: retry=%.3f escalate=%.3f (Δ %+0.3f)",
			name, row.Base.Efficiency.Mean, row.Variant.Efficiency.Mean, row.Delta())
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// WeibullAblation probes the exponential-failures assumption shared by
// every model in the paper (Section III-B): the same dauwe-optimized
// plans are simulated under exponential failures and under Weibull
// failures with identical per-severity means and the given shape
// (k < 1 = infant mortality, the empirically observed HPC regime).
func WeibullAblation(opt Options, shape float64, systems []string) (*AblationResult, error) {
	if !(shape > 0) {
		return nil, fmt.Errorf("experiments: weibull shape %v must be positive", shape)
	}
	if len(systems) == 0 {
		systems = DefaultAblationSystems
	}
	out := &AblationResult{
		Name:         fmt.Sprintf("failure law (weibull k=%g)", shape),
		BaseLabel:    "exponential",
		VariantLabel: fmt.Sprintf("weibull k=%g", shape),
	}
	trials := opt.trials(200)
	seed := rng.Campaign(opt.seed(), "ablation-weibull")
	for _, name := range systems {
		sys, err := system.ByName(name)
		if err != nil {
			return nil, err
		}
		tech, err := newTechnique("dauwe", opt.Fast)
		if err != nil {
			return nil, err
		}
		plan, _, err := tech.Optimize(sys)
		if err != nil {
			return nil, err
		}
		laws, err := weibullLaws(sys, shape)
		if err != nil {
			return nil, err
		}
		row := AblationRow{System: name, Plan: plan.String()}
		for i, fl := range [][]dist.Sampler{nil, laws} {
			res, _, err := opt.runCampaign(sim.Campaign{
				Scenario: sim.Scenario{
					System: sys, Plan: plan, FailureLaws: fl,
					MaxWallFactor: opt.wallFactor(),
				},
				Trials:  trials,
				Seed:    seed.Scenario(fmt.Sprintf("%s/w%d", name, i)),
				Workers: opt.Workers,
			})
			if err != nil {
				return nil, err
			}
			if i == 0 {
				row.Base = res
			} else {
				row.Variant = res
			}
		}
		opt.log("ablation-weibull %s: exp=%.3f weibull=%.3f (Δ %+0.3f)",
			name, row.Base.Efficiency.Mean, row.Variant.Efficiency.Mean, row.Delta())
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// weibullLaws builds per-severity Weibull laws matching the system's
// per-severity mean inter-arrival times.
func weibullLaws(sys *system.System, shape float64) ([]dist.Sampler, error) {
	laws := make([]dist.Sampler, sys.NumLevels())
	for sev := 1; sev <= sys.NumLevels(); sev++ {
		rate := sys.LevelRate(sev)
		if rate <= 0 {
			continue
		}
		// Scale so that the Weibull mean λ·Γ(1+1/k) equals 1/rate.
		w0, err := dist.NewWeibull(1, shape)
		if err != nil {
			return nil, err
		}
		w, err := dist.NewWeibull(1/(rate*w0.Mean()), shape)
		if err != nil {
			return nil, err
		}
		laws[sev-1] = w
	}
	return laws, nil
}

// AsyncAblation quantifies SCR/FTI-style asynchronous top-level flushing
// (an engineering extension beyond the paper's synchronous protocol):
// each system's dauwe-optimized plan is simulated with blocking top-level
// checkpoints and with background flushes. The gap grows with the
// top-level write cost, which is why production SCR and FTI drain to the
// PFS asynchronously.
func AsyncAblation(opt Options, systems []string) (*AblationResult, error) {
	if len(systems) == 0 {
		systems = DefaultAblationSystems
	}
	out := &AblationResult{
		Name:         "top-level flush",
		BaseLabel:    "synchronous",
		VariantLabel: "async flush",
	}
	trials := opt.trials(200)
	seed := rng.Campaign(opt.seed(), "ablation-async")
	for _, name := range systems {
		sys, err := system.ByName(name)
		if err != nil {
			return nil, err
		}
		tech, err := newTechnique("dauwe", opt.Fast)
		if err != nil {
			return nil, err
		}
		plan, _, err := tech.Optimize(sys)
		if err != nil {
			return nil, err
		}
		if plan.NumUsed() < 2 {
			// Async needs a lower capture level; skip degenerate plans.
			continue
		}
		row := AblationRow{System: name, Plan: plan.String()}
		for i, async := range []bool{false, true} {
			res, _, err := opt.runCampaign(sim.Campaign{
				Scenario: sim.Scenario{
					System: sys, Plan: plan, AsyncTopFlush: async,
					MaxWallFactor: opt.wallFactor(),
				},
				Trials:  trials,
				Seed:    seed.Scenario(fmt.Sprintf("%s/a%d", name, i)),
				Workers: opt.Workers,
			})
			if err != nil {
				return nil, err
			}
			if i == 0 {
				row.Base = res
			} else {
				row.Variant = res
			}
		}
		opt.log("ablation-async %s: sync=%.3f async=%.3f (Δ %+0.3f)",
			name, row.Base.Efficiency.Mean, row.Variant.Efficiency.Mean, row.Delta())
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
