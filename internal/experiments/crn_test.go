package experiments

import (
	"math"
	"testing"

	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

func d4(t *testing.T) *system.System {
	t.Helper()
	sys, err := system.ByName("D4")
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// ISSUE 7 acceptance: on a Table I system, CRN pairing must shrink the
// 95% CI half-width of at least one technique-pair difference by >= 5x
// at equal trial count, and sequential stopping must reach the unpaired
// width with >= 10x fewer trials.
func TestCRNVarianceReductionOnD4(t *testing.T) {
	opt := Options{Trials: 400, Seed: 7, Fast: true}
	rep, err := CompareTechniques(d4(t), BestTechniques, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Paired.TrialsRun != 400 {
		t.Fatalf("no stopping requested but ran %d trials", rep.Paired.TrialsRun)
	}
	c := rep.Comparison("dauwe", "di")
	if c == nil {
		t.Fatal("missing dauwe vs di comparison")
	}
	shrink := c.WelchCIHalf / c.CIHalf
	t.Logf("dauwe vs di: diff=%.5f ci=%.5f welch=%.5f shrink=%.2fx corr=%.4f varred=%.1fx",
		c.MeanDiff, c.CIHalf, c.WelchCIHalf, shrink, c.Corr, c.VarReduction)
	if shrink < 5 {
		t.Errorf("paired CI shrink = %.2fx, acceptance requires >= 5x", shrink)
	}

	// Sequential stopping: ask only for the width the unpaired Welch
	// interval achieved with the full 400-trial budget.
	opt.CITarget, opt.CIBatch = c.WelchCIHalf, 8
	seq, err := CompareTechniques(d4(t), BestTechniques, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential: ran %d of %d trials (saved %d)",
		seq.Paired.TrialsRun, seq.Paired.Budget, seq.Paired.TrialsSaved())
	if seq.Paired.TrialsRun*10 > 400 {
		t.Errorf("stopping ran %d trials; acceptance requires <= 40 (10x saving)", seq.Paired.TrialsRun)
	}
	sc := seq.Comparison("dauwe", "di")
	if sc.CIHalf > opt.CITarget {
		t.Errorf("stopped CI %.5f exceeds target %.5f", sc.CIHalf, opt.CITarget)
	}
	// The stopped estimate must agree with the full-budget one within
	// the (much wider) target interval on every pair.
	for _, full := range rep.Paired.Comparisons {
		stopped := seq.Paired.Comparison(full.A, full.B)
		if math.Abs(stopped.MeanDiff-full.MeanDiff) > 2*opt.CITarget {
			t.Errorf("pair %d vs %d: stopped diff %.5f far from full-budget %.5f",
				full.A, full.B, stopped.MeanDiff, full.MeanDiff)
		}
	}
	// The martingale control must be live on the marginal means.
	for i, cv := range rep.Paired.ArmCV {
		if cv.Corr > -0.2 {
			t.Errorf("arm %d (%s): control correlation %.3f, want negative", i, rep.Techniques[i], cv.Corr)
		}
	}
}

// CRN is pure orchestration: each technique's marginal campaign under
// CompareTechniques must be bitwise identical to a standalone non-CRN
// campaign of the same plan on the shared seed.
func TestCRNMarginalsMatchStandaloneCampaigns(t *testing.T) {
	sys := d4(t)
	opt := Options{Trials: 60, Seed: 11, Fast: true}
	rep, err := CompareTechniques(sys, BestTechniques, opt)
	if err != nil {
		t.Fatal(err)
	}
	seed := rng.Campaign(11, "crn").Scenario(sys.Name)
	for i, cell := range rep.Cells {
		solo, err := sim.Campaign{
			Scenario: opt.scenarioFor(sys, cell.Plan),
			Trials:   60,
			Seed:     seed,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(solo.Efficiencies) != len(cell.Sim.Efficiencies) {
			t.Fatalf("%s: trial count mismatch", cell.Technique)
		}
		for k := range solo.Efficiencies {
			if math.Float64bits(solo.Efficiencies[k]) != math.Float64bits(cell.Sim.Efficiencies[k]) {
				t.Fatalf("%s trial %d: CRN efficiency bits differ from standalone run", cell.Technique, k)
			}
		}
		if solo.Efficiency != cell.Sim.Efficiency || solo.WallTime != cell.Sim.WallTime {
			t.Fatalf("%s: CRN summary differs from standalone run", rep.Techniques[i])
		}
	}
}

// The figure pipelines must carry CRN end-to-end: paired rows attached,
// paired significance used, telemetry counters fed.
func TestFig5WithCRN(t *testing.T) {
	sink := obs.NewSimMetrics()
	opt := Options{Trials: 6, Seed: 3, MaxWallFactor: 15, Fast: true, CRN: true, Metrics: sink}
	r, err := Fig5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paired) != len(r.Scenarios) {
		t.Fatalf("Paired rows = %d, want one per scenario (%d)", len(r.Paired), len(r.Scenarios))
	}
	if len(r.DauweBeatsMoody) != len(r.Scenarios) {
		t.Fatalf("verdicts = %d, want %d", len(r.DauweBeatsMoody), len(r.Scenarios))
	}
	for i, p := range r.Paired {
		if p == nil || len(p.Comparisons) != 3 {
			t.Fatalf("row %d: missing pairwise comparisons", i)
		}
		if p.TrialsRun != 6 {
			t.Fatalf("row %d ran %d trials, want 6", i, p.TrialsRun)
		}
	}
	snap := sink.Registry().Snapshot()
	var run, saved, found uint64 = 0, 1, 0
	for _, c := range snap.Counters {
		switch c.Name {
		case "vr_trials_run_total":
			run, found = c.Value, found+1
		case "vr_trials_saved_total":
			saved, found = c.Value, found+1
		}
	}
	if found != 2 {
		t.Fatalf("vr counters missing from registry snapshot: %+v", snap.Counters)
	}
	if want := uint64(len(r.Scenarios) * 3 * 6); run != want {
		t.Errorf("vr_trials_run_total = %d, want %d", run, want)
	}
	if saved != 0 {
		t.Errorf("vr_trials_saved_total = %d, want 0 without a CI target", saved)
	}
	// Simulator trials also flowed into the shared sink.
	if got := sink.Trials(); got != uint64(len(r.Scenarios)*3*6) {
		t.Errorf("sink saw %d trials, want %d", got, len(r.Scenarios)*3*6)
	}
}
