package experiments

import (
	"fmt"
	"math"

	"repro/internal/model/dauwe"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/system"
)

// SensitivityPoint is one τ0 setting of the sensitivity sweep.
type SensitivityPoint struct {
	// Multiplier scales the optimal τ0.
	Multiplier float64
	// Tau0 is the resulting computation interval in minutes.
	Tau0 float64
	// Predicted is the Dauwe-model efficiency at this interval.
	Predicted float64
	// Sim is the simulated efficiency.
	Sim stats.Summary
}

// SensitivityResult shows how efficiency degrades as the computation
// interval moves away from the optimum — the practical answer to "how
// much does interval optimization matter, and how flat is the optimum?".
type SensitivityResult struct {
	System string
	// Plan is the optimal plan whose τ0 the sweep perturbs (counts and
	// levels held fixed).
	Plan   pattern.Plan
	Points []SensitivityPoint
}

// DefaultSensitivityMultipliers spans 1/8× to 8× the optimum.
var DefaultSensitivityMultipliers = []float64{
	0.125, 0.25, 0.5, 1 / math.Sqrt2, 1, math.Sqrt2, 2, 4, 8,
}

// Sensitivity runs the τ0 sensitivity sweep on one Table I system.
func Sensitivity(opt Options, systemName string, multipliers []float64) (*SensitivityResult, error) {
	sys, err := system.ByName(systemName)
	if err != nil {
		return nil, err
	}
	if len(multipliers) == 0 {
		multipliers = DefaultSensitivityMultipliers
	}
	tech, err := newTechnique("dauwe", opt.Fast)
	if err != nil {
		return nil, err
	}
	d := tech.(*dauwe.Technique)
	best, _, err := d.Optimize(sys)
	if err != nil {
		return nil, err
	}
	trials := opt.trials(200)
	seed := rng.Campaign(opt.seed(), "sensitivity")
	out := &SensitivityResult{System: systemName, Plan: best}
	for _, m := range multipliers {
		if !(m > 0) {
			return nil, fmt.Errorf("experiments: sensitivity multiplier %v must be positive", m)
		}
		plan := best
		plan.Tau0 = best.Tau0 * m
		pred, err := d.Predict(sys, plan)
		if err != nil {
			return nil, err
		}
		res, _, err := opt.runCampaign(sim.Campaign{
			Scenario: sim.Scenario{
				System: sys, Plan: plan, MaxWallFactor: opt.wallFactor(),
			},
			Trials:  trials,
			Seed:    seed.Scenario(fmt.Sprintf("%s/x%g", systemName, m)),
			Workers: opt.Workers,
		})
		if err != nil {
			return nil, err
		}
		opt.log("sensitivity %s ×%g: τ0=%.3f pred=%.3f sim=%.3f",
			systemName, m, plan.Tau0, pred.Efficiency, res.Efficiency.Mean)
		out.Points = append(out.Points, SensitivityPoint{
			Multiplier: m,
			Tau0:       plan.Tau0,
			Predicted:  pred.Efficiency,
			Sim:        res.Efficiency,
		})
	}
	return out, nil
}
