package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
)

// TestRunCampaignEmitsEvents: with Options.Events set, a checkpointed
// campaign emits run-ID-correlated start, checkpoint, and end records.
func TestRunCampaignEmitsEvents(t *testing.T) {
	sys := d4(t)
	var sb strings.Builder
	opt := Options{
		Events:             obs.NewEventLog(&sb, "evrun01"),
		CheckpointDir:      t.TempDir(),
		CheckpointInterval: 8,
	}
	camp := sim.Campaign{
		Scenario: opt.scenarioFor(sys, pattern.Plan{Tau0: 2, Counts: []int{3}, Levels: []int{1, 2}}),
		Trials:   32,
		Workers:  2,
		Seed:     rng.Campaign(7, "events").Scenario(sys.Name),
	}
	if _, _, err := opt.runCampaign(camp); err != nil {
		t.Fatal(err)
	}

	var msgs []string
	checkpoints := 0
	var last map[string]any
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if m["run_id"] != "evrun01" {
			t.Fatalf("event missing run_id: %v", m)
		}
		msgs = append(msgs, m["msg"].(string))
		if m["msg"] == "checkpoint" {
			checkpoints++
			if m["path"] == "" || m["trials_merged"].(float64) <= 0 {
				t.Fatalf("checkpoint event: %v", m)
			}
		}
		last = m
	}
	if len(msgs) < 3 || msgs[0] != "campaign_start" {
		t.Fatalf("events = %v, want campaign_start first", msgs)
	}
	if checkpoints == 0 {
		t.Fatal("no checkpoint events")
	}
	if last["msg"] != "campaign_end" || last["state"] != "complete" ||
		last["trials_merged"] != float64(32) {
		t.Fatalf("last event = %v, want complete campaign_end at 32", last)
	}
}

// TestRunCampaignEventsComposeWithProgress: the event emitter must
// chain, not replace, an already-installed Progress hook (the sidecar
// writer and the event log share the campaign's hook slot).
func TestRunCampaignEventsComposeWithProgress(t *testing.T) {
	sys := d4(t)
	var sb strings.Builder
	opt := Options{Events: obs.NewEventLog(&sb, "evrun02")}
	seen := 0
	camp := sim.Campaign{
		Scenario: opt.scenarioFor(sys, pattern.Plan{Tau0: 2, Counts: []int{3}, Levels: []int{1, 2}}),
		Trials:   16,
		Seed:     rng.Campaign(7, "events").Scenario(sys.Name),
		Progress: func(u sim.ProgressUpdate) { seen++ },
	}
	if _, _, err := opt.runCampaign(camp); err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("inner Progress hook was not called")
	}
	if !strings.Contains(sb.String(), "campaign_end") {
		t.Fatal("event log missing campaign_end")
	}
}
