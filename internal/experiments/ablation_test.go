package experiments

import (
	"math"
	"testing"

	"repro/internal/system"
)

func TestPolicyAblation(t *testing.T) {
	opt := testOpts()
	opt.Fast = true
	r, err := PolicyAblation(opt, []string{"D4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0].System != "D4" {
		t.Fatalf("rows = %+v", r.Rows)
	}
	row := r.Rows[0]
	// Escalation can only hurt (or tie within noise).
	if row.Delta() > 0.02 {
		t.Fatalf("escalation improved efficiency: %+v", row)
	}
	if row.Base.Trials != opt.Trials || row.Variant.Trials != opt.Trials {
		t.Fatalf("trial counts wrong: %d/%d", row.Base.Trials, row.Variant.Trials)
	}
}

func TestPolicyAblationDefaultSystems(t *testing.T) {
	opt := testOpts()
	opt.Fast = true
	opt.Trials = 10
	r, err := PolicyAblation(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(DefaultAblationSystems) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(DefaultAblationSystems))
	}
}

func TestWeibullAblation(t *testing.T) {
	opt := testOpts()
	opt.Fast = true
	opt.Trials = 60
	r, err := WeibullAblation(opt, 0.7, []string{"D4"})
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	// Same mean, different law: both must produce sane efficiencies.
	if !(row.Base.Efficiency.Mean > 0.3) || !(row.Variant.Efficiency.Mean > 0.1) {
		t.Fatalf("implausible ablation: %+v vs %+v", row.Base.Efficiency, row.Variant.Efficiency)
	}
	// They must actually differ (the law matters).
	if row.Base.Efficiency.Mean == row.Variant.Efficiency.Mean {
		t.Fatal("weibull variant identical to exponential")
	}
}

func TestWeibullAblationRejectsBadShape(t *testing.T) {
	if _, err := WeibullAblation(Options{}, 0, nil); err == nil {
		t.Fatal("shape 0 accepted")
	}
	if _, err := WeibullAblation(Options{}, -1, nil); err == nil {
		t.Fatal("negative shape accepted")
	}
}

func TestAblationUnknownSystem(t *testing.T) {
	if _, err := PolicyAblation(testOpts(), []string{"XX"}); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := WeibullAblation(testOpts(), 0.7, []string{"XX"}); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestWeibullLawsMatchSystemMeans(t *testing.T) {
	sys, err := system.ByName("B")
	if err != nil {
		t.Fatal(err)
	}
	laws, err := weibullLaws(sys, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(laws) != sys.NumLevels() {
		t.Fatalf("laws = %d", len(laws))
	}
	for sev := 1; sev <= sys.NumLevels(); sev++ {
		want := 1 / sys.LevelRate(sev)
		got := laws[sev-1].Mean()
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("severity %d mean %v, want %v", sev, got, want)
		}
	}
}

func TestAsyncAblation(t *testing.T) {
	opt := testOpts()
	opt.Fast = true
	opt.Trials = 80
	r, err := AsyncAblation(opt, []string{"D5"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Async must not hurt (it strictly removes blocking time; the only
	// cost is occasionally staler top-level checkpoints).
	if r.Rows[0].Delta() < -0.01 {
		t.Fatalf("async hurt efficiency: %+v", r.Rows[0])
	}
}

func TestAsyncAblationUnknownSystem(t *testing.T) {
	if _, err := AsyncAblation(testOpts(), []string{"XX"}); err == nil {
		t.Fatal("unknown system accepted")
	}
}
