package experiments

import "testing"

func TestSensitivitySweep(t *testing.T) {
	opt := testOpts()
	opt.Fast = true
	opt.Trials = 50
	r, err := Sensitivity(opt, "D2", []float64{0.25, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// The optimum multiplier (1×) must simulate at least as well as the
	// far-off settings.
	mid := r.Points[1].Sim.Mean
	if mid < r.Points[0].Sim.Mean-0.02 || mid < r.Points[2].Sim.Mean-0.02 {
		t.Fatalf("optimum not best: %+v", r.Points)
	}
	// Model predictions must track the simulated curve direction.
	for _, p := range r.Points {
		if p.Predicted <= 0 || p.Predicted > 1 {
			t.Errorf("prediction out of range at ×%g: %v", p.Multiplier, p.Predicted)
		}
	}
	// τ0 actually scaled.
	if r.Points[0].Tau0 >= r.Points[2].Tau0 {
		t.Fatal("τ0 not scaled by multipliers")
	}
}

func TestSensitivityValidation(t *testing.T) {
	if _, err := Sensitivity(testOpts(), "XX", nil); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := Sensitivity(testOpts(), "D2", []float64{-1}); err == nil {
		t.Fatal("negative multiplier accepted")
	}
}
