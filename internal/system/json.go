package system

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonSystem is the serialized form of a System. Field names follow the
// paper's vocabulary so config files read like Table I rows.
type jsonSystem struct {
	Name         string      `json:"name"`
	Source       string      `json:"source,omitempty"`
	MTBFMinutes  float64     `json:"mtbf_minutes"`
	BaselineTime float64     `json:"baseline_minutes"`
	Levels       []jsonLevel `json:"levels"`
}

type jsonLevel struct {
	CheckpointMinutes float64 `json:"checkpoint_minutes"`
	RestartMinutes    float64 `json:"restart_minutes"`
	SeverityProb      float64 `json:"severity_prob"`
}

// WriteJSON serializes the system as an indented JSON document.
func (s *System) WriteJSON(w io.Writer) error {
	js := jsonSystem{
		Name:         s.Name,
		Source:       s.Source,
		MTBFMinutes:  s.MTBF,
		BaselineTime: s.BaselineTime,
	}
	for _, l := range s.Levels {
		js.Levels = append(js.Levels, jsonLevel{
			CheckpointMinutes: l.Checkpoint,
			RestartMinutes:    l.Restart,
			SeverityProb:      l.SeverityProb,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// ReadJSON deserializes and validates a system description.
func ReadJSON(r io.Reader) (*System, error) {
	var js jsonSystem
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("system: decode: %w", err)
	}
	s := &System{
		Name:         js.Name,
		Source:       js.Source,
		MTBF:         js.MTBFMinutes,
		BaselineTime: js.BaselineTime,
	}
	for _, l := range js.Levels {
		s.Levels = append(s.Levels, Level{
			Checkpoint:   l.CheckpointMinutes,
			Restart:      l.RestartMinutes,
			SeverityProb: l.SeverityProb,
		})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
