// Package system describes the failure-prone HPC systems the paper
// evaluates: an ordered set of checkpoint/restart levels, a system MTBF,
// and the probability distribution of failure severity classes. It also
// carries the Table I catalog of test systems, level projection for
// models restricted to fewer levels (Daly, Di), and the exascale scaling
// knobs used by Figures 4 and 5.
//
// Conventions (matching the paper): all times are in minutes; levels are
// numbered 1..L from the fastest/least-reliable (local RAM) to the
// slowest/most-reliable (parallel file system); a failure of severity s
// requires restart from a checkpoint of level >= s.
package system

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/dist"
)

// Level describes one checkpoint/restart level.
type Level struct {
	// Checkpoint is δ_i, the duration of a level-i checkpoint in
	// minutes. Per the SCR protocol a level-i checkpoint includes all
	// lower-level checkpoints; δ_i is the inclusive total.
	Checkpoint float64
	// Restart is R_i, the duration of a restart from a level-i
	// checkpoint in minutes. Table I assumes R_i = δ_i.
	Restart float64
	// SeverityProb is S_i, the probability that a failure, given one
	// occurs, has severity i and therefore needs a level >= i restart.
	SeverityProb float64
}

// System is a complete test-system description.
type System struct {
	// Name identifies the system (Table I's first column).
	Name string
	// Source describes where the parameters come from.
	Source string
	// MTBF is the system mean time between failures in minutes
	// (1/λ over all severities).
	MTBF float64
	// Levels holds the L checkpoint levels, index 0 = level 1.
	Levels []Level
	// BaselineTime is T_B, the failure- and resilience-free execution
	// time of the studied application, in minutes.
	BaselineTime float64
}

// NumLevels returns L.
func (s *System) NumLevels() int { return len(s.Levels) }

// Lambda returns the aggregate system failure rate λ = 1/MTBF.
func (s *System) Lambda() float64 { return 1 / s.MTBF }

// LevelRate returns λ_i = S_i·λ for 1-based level i.
func (s *System) LevelRate(i int) float64 {
	return s.Levels[i-1].SeverityProb * s.Lambda()
}

// Rates returns the per-severity failure rates λ_1..λ_L as a
// competing-risk set.
func (s *System) Rates() (*dist.CompetingRates, error) {
	rates := make([]float64, len(s.Levels))
	for i, l := range s.Levels {
		rates[i] = l.SeverityProb * s.Lambda()
	}
	return dist.NewCompeting(rates)
}

// Validate checks the structural invariants of a system description.
func (s *System) Validate() error {
	if s.Name == "" {
		return errors.New("system: missing name")
	}
	if !(s.MTBF > 0) || math.IsInf(s.MTBF, 1) {
		return fmt.Errorf("system %s: MTBF %v must be positive and finite", s.Name, s.MTBF)
	}
	if len(s.Levels) == 0 {
		return fmt.Errorf("system %s: needs at least one level", s.Name)
	}
	if !(s.BaselineTime > 0) {
		return fmt.Errorf("system %s: baseline time %v must be positive", s.Name, s.BaselineTime)
	}
	var probSum float64
	for i, l := range s.Levels {
		if !(l.Checkpoint > 0) {
			return fmt.Errorf("system %s: level %d checkpoint time %v must be positive", s.Name, i+1, l.Checkpoint)
		}
		if !(l.Restart > 0) {
			return fmt.Errorf("system %s: level %d restart time %v must be positive", s.Name, i+1, l.Restart)
		}
		if l.SeverityProb < 0 || l.SeverityProb > 1 {
			return fmt.Errorf("system %s: level %d severity probability %v outside [0,1]", s.Name, i+1, l.SeverityProb)
		}
		probSum += l.SeverityProb
	}
	if math.Abs(probSum-1) > 1e-6 {
		return fmt.Errorf("system %s: severity probabilities sum to %v, want 1", s.Name, probSum)
	}
	return nil
}

// WellOrdered reports whether the usual multilevel ordering
// δ_1 <= ... <= δ_L and R_1 <= ... <= R_L holds. Table I systems all
// satisfy it; custom systems may legitimately not.
func (s *System) WellOrdered() bool {
	for i := 1; i < len(s.Levels); i++ {
		if s.Levels[i].Checkpoint < s.Levels[i-1].Checkpoint {
			return false
		}
		if s.Levels[i].Restart < s.Levels[i-1].Restart {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (s *System) Clone() *System {
	c := *s
	c.Levels = append([]Level(nil), s.Levels...)
	return &c
}

// Project maps the system onto a model that only understands the given
// 1-based subset of levels (ascending). Severity mass of a class is
// assigned to the lowest kept level that can recover it (the first kept
// level >= the class); severity classes above the highest kept level are
// dropped from the projection and reported in residual (the caller
// decides whether those mean "restart from scratch" or are excluded).
//
// Example: Daly uses Project([L]) — one PFS level absorbing all severity
// mass; Di on a 4-level system uses Project([3, 4]).
func (s *System) Project(keep []int) (*System, float64, error) {
	if len(keep) == 0 {
		return nil, 0, errors.New("system: projection needs at least one level")
	}
	prev := 0
	for _, k := range keep {
		if k <= prev || k > len(s.Levels) {
			return nil, 0, fmt.Errorf("system %s: projection levels %v must be ascending 1-based and <= %d", s.Name, keep, len(s.Levels))
		}
		prev = k
	}
	out := &System{
		Name:         fmt.Sprintf("%s/project%v", s.Name, keep),
		Source:       s.Source,
		MTBF:         s.MTBF,
		BaselineTime: s.BaselineTime,
	}
	lo := 1
	var assigned float64
	for _, k := range keep {
		var mass float64
		for sev := lo; sev <= k; sev++ {
			mass += s.Levels[sev-1].SeverityProb
		}
		lo = k + 1
		out.Levels = append(out.Levels, Level{
			Checkpoint:   s.Levels[k-1].Checkpoint,
			Restart:      s.Levels[k-1].Restart,
			SeverityProb: mass,
		})
		assigned += mass
	}
	residual := 1 - assigned
	if residual < 0 {
		residual = 0
	}
	return out, residual, nil
}

// WithMTBF returns a copy with the MTBF replaced (Figure 4/5 scaling).
func (s *System) WithMTBF(mtbf float64) *System {
	c := s.Clone()
	c.MTBF = mtbf
	c.Name = fmt.Sprintf("%s/mtbf=%g", s.Name, mtbf)
	return c
}

// WithTopCost returns a copy whose level-L checkpoint and restart times
// are replaced (the PFS cost scaling of Figures 4 and 5; lower levels are
// unchanged because they spread data across the system).
func (s *System) WithTopCost(minutes float64) *System {
	c := s.Clone()
	c.Levels[len(c.Levels)-1].Checkpoint = minutes
	c.Levels[len(c.Levels)-1].Restart = minutes
	c.Name = fmt.Sprintf("%s/pfs=%g", s.Name, minutes)
	return c
}

// WithBaseline returns a copy with a different application baseline time
// (Figure 5's 30-minute application).
func (s *System) WithBaseline(tb float64) *System {
	c := s.Clone()
	c.BaselineTime = tb
	c.Name = fmt.Sprintf("%s/tb=%g", s.Name, tb)
	return c
}

// String renders a compact one-line description.
func (s *System) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: L=%d MTBF=%.4gmin TB=%.4gmin", s.Name, len(s.Levels), s.MTBF, s.BaselineTime)
	for i, l := range s.Levels {
		fmt.Fprintf(&b, " [%d: S=%.3f δ=%.4g R=%.4g]", i+1, l.SeverityProb, l.Checkpoint, l.Restart)
	}
	return b.String()
}
