package system

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func demo() *System {
	return &System{
		Name:         "demo",
		MTBF:         100,
		BaselineTime: 1000,
		Levels: []Level{
			{Checkpoint: 0.2, Restart: 0.2, SeverityProb: 0.5},
			{Checkpoint: 1, Restart: 1, SeverityProb: 0.3},
			{Checkpoint: 5, Restart: 5, SeverityProb: 0.2},
		},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := demo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := map[string]func(*System){
		"no name":       func(s *System) { s.Name = "" },
		"zero mtbf":     func(s *System) { s.MTBF = 0 },
		"inf mtbf":      func(s *System) { s.MTBF = math.Inf(1) },
		"no levels":     func(s *System) { s.Levels = nil },
		"zero baseline": func(s *System) { s.BaselineTime = 0 },
		"zero ckpt":     func(s *System) { s.Levels[1].Checkpoint = 0 },
		"neg restart":   func(s *System) { s.Levels[0].Restart = -1 },
		"prob > 1":      func(s *System) { s.Levels[0].SeverityProb = 1.4 },
		"bad prob sum":  func(s *System) { s.Levels[0].SeverityProb = 0.1 },
		"negative prob": func(s *System) { s.Levels[0].SeverityProb = -0.5 },
	}
	for name, mutate := range mutations {
		s := demo()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid system", name)
		}
	}
}

func TestRatesAndLambda(t *testing.T) {
	s := demo()
	if !almost(s.Lambda(), 0.01, 1e-15) {
		t.Fatalf("lambda = %v", s.Lambda())
	}
	if !almost(s.LevelRate(1), 0.005, 1e-15) || !almost(s.LevelRate(3), 0.002, 1e-15) {
		t.Fatalf("level rates wrong: %v %v", s.LevelRate(1), s.LevelRate(3))
	}
	cr, err := s.Rates()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(cr.Total(), s.Lambda(), 1e-15) {
		t.Fatalf("total rate %v != lambda %v", cr.Total(), s.Lambda())
	}
}

func TestTableIIntegrity(t *testing.T) {
	rows := TableI()
	if len(rows) != 11 {
		t.Fatalf("Table I has %d rows, want 11", len(rows))
	}
	wantOrder := []string{"M", "B", "D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9"}
	for i, s := range rows {
		if s.Name != wantOrder[i] {
			t.Errorf("row %d = %s, want %s", i, s.Name, wantOrder[i])
		}
		if err := s.Validate(); err != nil {
			t.Errorf("row %s invalid: %v", s.Name, err)
		}
		if !s.WellOrdered() {
			t.Errorf("row %s not well ordered", s.Name)
		}
		for j, l := range s.Levels {
			if l.Checkpoint != l.Restart {
				t.Errorf("row %s level %d: checkpoint %v != restart %v", s.Name, j+1, l.Checkpoint, l.Restart)
			}
		}
	}
}

func TestTableISpotValues(t *testing.T) {
	b, err := ByName("B")
	if err != nil {
		t.Fatal(err)
	}
	if b.NumLevels() != 4 || b.MTBF != 333.33 || b.BaselineTime != 1440 {
		t.Fatalf("B row wrong: %v", b)
	}
	if b.Levels[3].Checkpoint != 2.5 {
		t.Fatalf("B level-4 checkpoint = %v", b.Levels[3].Checkpoint)
	}
	d9, err := ByName("D9")
	if err != nil {
		t.Fatal(err)
	}
	if d9.BaselineTime != 180 || d9.MTBF != 3.13 || d9.NumLevels() != 2 {
		t.Fatalf("D9 row wrong: %v", d9)
	}
	// Severity probabilities are normalized: 0.870+0.130 = 1 exactly.
	if !almost(d9.Levels[0].SeverityProb+d9.Levels[1].SeverityProb, 1, 1e-12) {
		t.Fatal("D9 severities not normalized")
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestNames(t *testing.T) {
	n := Names()
	if len(n) != 11 || n[0] != "M" || n[10] != "D9" {
		t.Fatalf("Names() = %v", n)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := demo()
	c := s.Clone()
	c.Levels[0].Checkpoint = 99
	c.MTBF = 1
	if s.Levels[0].Checkpoint == 99 || s.MTBF == 1 {
		t.Fatal("Clone shares state with original")
	}
}

func TestProjectSingleLevel(t *testing.T) {
	s := demo()
	p, residual, err := s.Project([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	if residual != 0 {
		t.Fatalf("residual = %v", residual)
	}
	if p.NumLevels() != 1 || !almost(p.Levels[0].SeverityProb, 1, 1e-12) {
		t.Fatalf("projection wrong: %v", p)
	}
	if p.Levels[0].Checkpoint != 5 {
		t.Fatalf("projected checkpoint = %v", p.Levels[0].Checkpoint)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProjectTwoOfThree(t *testing.T) {
	s := demo()
	p, residual, err := s.Project([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if residual != 0 {
		t.Fatalf("residual = %v", residual)
	}
	// Severities 1 and 2 both recover from the kept level 2.
	if !almost(p.Levels[0].SeverityProb, 0.8, 1e-12) || !almost(p.Levels[1].SeverityProb, 0.2, 1e-12) {
		t.Fatalf("projected severities: %+v", p.Levels)
	}
	if p.Levels[0].Checkpoint != 1 || p.Levels[1].Checkpoint != 5 {
		t.Fatalf("projected costs: %+v", p.Levels)
	}
}

func TestProjectDropsTop(t *testing.T) {
	s := demo()
	p, residual, err := s.Project([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(residual, 0.2, 1e-12) {
		t.Fatalf("residual = %v, want 0.2", residual)
	}
	if p.NumLevels() != 2 || !almost(p.Levels[0].SeverityProb, 0.5, 1e-12) {
		t.Fatalf("projection wrong: %+v", p.Levels)
	}
}

func TestProjectRejectsBadSubsets(t *testing.T) {
	s := demo()
	for _, keep := range [][]int{nil, {0}, {4}, {2, 2}, {3, 1}} {
		if _, _, err := s.Project(keep); err == nil {
			t.Errorf("Project(%v) accepted", keep)
		}
	}
}

func TestProjectMassConservation(t *testing.T) {
	f := func(a, b, c uint8, dropTop bool) bool {
		probs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		var sum float64
		for _, p := range probs {
			sum += p
		}
		s := demo()
		for i := range s.Levels {
			s.Levels[i].SeverityProb = probs[i] / sum
		}
		keep := []int{1, 2, 3}
		if dropTop {
			keep = []int{1, 2}
		}
		p, residual, err := s.Project(keep)
		if err != nil {
			return false
		}
		var got float64
		for _, l := range p.Levels {
			got += l.SeverityProb
		}
		return almost(got+residual, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScalingKnobs(t *testing.T) {
	b, _ := ByName("B")
	scaled := b.WithMTBF(15).WithTopCost(40).WithBaseline(30)
	if scaled.MTBF != 15 || scaled.BaselineTime != 30 {
		t.Fatalf("scaling wrong: %v", scaled)
	}
	top := scaled.Levels[len(scaled.Levels)-1]
	if top.Checkpoint != 40 || top.Restart != 40 {
		t.Fatalf("top cost not applied: %+v", top)
	}
	// Lower levels untouched.
	if scaled.Levels[0].Checkpoint != b.Levels[0].Checkpoint {
		t.Fatal("lower level perturbed by WithTopCost")
	}
	// Original untouched.
	if b.MTBF != 333.33 || b.Levels[3].Checkpoint != 2.5 {
		t.Fatal("scaling mutated the source system")
	}
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWellOrdered(t *testing.T) {
	s := demo()
	if !s.WellOrdered() {
		t.Fatal("demo should be well ordered")
	}
	s.Levels[2].Checkpoint = 0.01
	if s.WellOrdered() {
		t.Fatal("descending checkpoint costs should not be well ordered")
	}
}

func TestString(t *testing.T) {
	str := demo().String()
	for _, want := range []string{"demo", "L=3", "MTBF=100", "δ=5"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q: %s", want, str)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := demo()
	s.Source = "unit test"
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.MTBF != s.MTBF || back.BaselineTime != s.BaselineTime {
		t.Fatalf("round trip mangled: %v vs %v", back, s)
	}
	if len(back.Levels) != len(s.Levels) || back.Levels[2] != s.Levels[2] {
		t.Fatalf("levels mangled: %+v", back.Levels)
	}
	if back.Source != "unit test" {
		t.Fatalf("source lost: %q", back.Source)
	}
}

func TestReadJSONValidates(t *testing.T) {
	// Structurally valid JSON, semantically invalid system.
	bad := `{"name":"x","mtbf_minutes":-1,"baseline_minutes":10,
		"levels":[{"checkpoint_minutes":1,"restart_minutes":1,"severity_prob":1}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid system accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{nonsense")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Unknown fields rejected (typo protection for config files).
	typo := `{"name":"x","mtbff_minutes":5,"baseline_minutes":10,"levels":[]}`
	if _, err := ReadJSON(strings.NewReader(typo)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestJSONTableIRows(t *testing.T) {
	// Every catalog row must survive a JSON round trip and validate.
	for _, s := range TableI() {
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if back.String() != s.String() {
			t.Fatalf("%s: round trip drift:\n%s\n%s", s.Name, back, s)
		}
	}
}
