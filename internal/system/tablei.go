package system

import "fmt"

// sym builds one Table I row with checkpoint time == restart time per
// level, the assumption stated in Section IV-C of the paper.
func sym(name, source string, mtbf float64, probs, times []float64, tb float64) *System {
	if len(probs) != len(times) {
		panic(fmt.Sprintf("system: tableI row %s has %d probs but %d times", name, len(probs), len(times)))
	}
	s := &System{Name: name, Source: source, MTBF: mtbf, BaselineTime: tb}
	for i := range probs {
		s.Levels = append(s.Levels, Level{
			Checkpoint:   times[i],
			Restart:      times[i],
			SeverityProb: probs[i],
		})
	}
	return s
}

// TableI returns the eleven test systems of the paper's Table I, in the
// paper's order of monotonically increasing resilience difficulty. All
// values are verbatim from the table (times in minutes, severities as
// probabilities); small rounding residue in the severity distributions is
// normalized so each row validates exactly.
func TableI() []*System {
	rows := []*System{
		sym("M", "[5] (BlueGene/L Coastal)", 6944.45,
			[]float64{0.083, 0.75, 0.167},
			[]float64{0.008, 0.075, 17.53}, 1440.0),
		sym("B", "[19] (BlueGene/Q Mira)", 333.33,
			[]float64{0.556, 0.278, 0.139, 0.027},
			[]float64{0.167, 0.5, 0.833, 2.5}, 1440.0),
		sym("D1", "[17] (ANL Fusion case 1)", 51.42,
			[]float64{0.857, 0.143},
			[]float64{0.333, 0.833}, 1440.0),
		sym("D2", "[17] (ANL Fusion case 2)", 24.0,
			[]float64{0.833, 0.167},
			[]float64{0.333, 0.833}, 1440.0),
		sym("D3", "[17] (ANL Fusion case 4)", 12.0,
			[]float64{0.833, 0.167},
			[]float64{0.167, 0.667}, 1440.0),
		sym("D4", "[17] (ANL Fusion case 5)", 6.0,
			[]float64{0.833, 0.167},
			[]float64{0.167, 0.667}, 1440.0),
		sym("D5", "[17] (ANL Fusion case 3)", 12.0,
			[]float64{0.833, 0.167},
			[]float64{0.333, 1.67}, 1440.0),
		sym("D6", "[17] (ANL Fusion case 6)", 6.0,
			[]float64{0.833, 0.167},
			[]float64{0.167, 1.67}, 720.0),
		sym("D7", "[17] (ANL Fusion case 7)", 4.0,
			[]float64{0.833, 0.167},
			[]float64{0.667, 3.33}, 360.0),
		sym("D8", "[17] (ANL Fusion case 8)", 3.13,
			[]float64{0.870, 0.130},
			[]float64{0.833, 5.0}, 360.0),
		sym("D9", "[17] (ANL Fusion case 9)", 3.13,
			[]float64{0.870, 0.130},
			[]float64{0.833, 5.0}, 180.0),
	}
	for _, r := range rows {
		normalizeSeverities(r)
	}
	return rows
}

// normalizeSeverities rescales the severity distribution to sum exactly
// to 1, absorbing the table's printed rounding residue proportionally.
func normalizeSeverities(s *System) {
	var sum float64
	for _, l := range s.Levels {
		sum += l.SeverityProb
	}
	if sum <= 0 {
		return
	}
	for i := range s.Levels {
		s.Levels[i].SeverityProb /= sum
	}
}

// ByName returns the Table I system with the given name.
func ByName(name string) (*System, error) {
	for _, s := range TableI() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("system: no Table I system named %q", name)
}

// Names returns the Table I system names in paper order.
func Names() []string {
	rows := TableI()
	out := make([]string, len(rows))
	for i, s := range rows {
		out[i] = s.Name
	}
	return out
}
