package hardware

import (
	"math"
	"strings"
	"testing"
)

func spec() Spec {
	return Spec{
		Name:                "petascale",
		Protocol:            SCRProtocol,
		Nodes:               10000,
		CheckpointGBPerNode: 2,
		LocalGBPerMin:       300,
		PartnerGBPerMin:     60,
		XOROverhead:         1.5,
		PFSGBPerMin:         3000,
		NodeFailuresPerYear: 2.5,
		BaselineMinutes:     1440,
	}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol*math.Max(1, math.Abs(b)) }

func TestLevelTimesSCR(t *testing.T) {
	s := spec()
	times, err := s.LevelTimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("levels = %d", len(times))
	}
	// local: 2/300 min; partner: 2·1.5/60; PFS: 2·10000/3000.
	if !almost(times[0], 2.0/300, 1e-12) {
		t.Errorf("local = %v", times[0])
	}
	if !almost(times[1], 0.05, 1e-12) {
		t.Errorf("partner = %v", times[1])
	}
	if !almost(times[2], 20000.0/3000, 1e-12) {
		t.Errorf("pfs = %v", times[2])
	}
	// Costs must be ordered like a real multilevel stack.
	if !(times[0] < times[1] && times[1] < times[2]) {
		t.Errorf("levels not ordered: %v", times)
	}
}

func TestLevelTimesFTI(t *testing.T) {
	s := spec()
	s.Protocol = FTIProtocol
	s.RSOverhead = 2.5
	times, err := s.LevelTimes()
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 4 {
		t.Fatalf("levels = %d", len(times))
	}
	// RS level between XOR and PFS in cost.
	if !(times[1] < times[2] && times[2] < times[3]) {
		t.Errorf("FTI ordering wrong: %v", times)
	}
	if !almost(times[2], 2*2.5/60.0, 1e-12) {
		t.Errorf("rs = %v", times[2])
	}
}

func TestMTBFScalesInverselyWithNodes(t *testing.T) {
	s := spec()
	m1 := s.MTBFMinutes()
	m2 := s.ScaleNodes(20000).MTBFMinutes()
	if !almost(m1/m2, 2, 1e-9) {
		t.Fatalf("mtbf ratio = %v, want 2", m1/m2)
	}
	// 10000 nodes × 2.5/year: MTBF = 525960/25000 ≈ 21.04 min.
	if !almost(m1, MinutesPerYear/25000, 1e-9) {
		t.Fatalf("mtbf = %v", m1)
	}
}

func TestBuildValidatesAndLabels(t *testing.T) {
	sys, err := spec().Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if sys.NumLevels() != 3 {
		t.Fatalf("levels = %d", sys.NumLevels())
	}
	if !strings.Contains(sys.Name, "SCR") || !strings.Contains(sys.Name, "10000n") {
		t.Fatalf("name = %s", sys.Name)
	}
	if !sys.WellOrdered() {
		t.Fatal("built system not well ordered")
	}
}

func TestBuildCustomShares(t *testing.T) {
	s := spec()
	s.SeverityShares = []float64{0.5, 0.3, 0.2}
	sys, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Levels[2].SeverityProb != 0.2 {
		t.Fatalf("shares not applied: %+v", sys.Levels)
	}
}

func TestScaleNodesAffectsOnlyPFSAndRate(t *testing.T) {
	small, err := spec().Build()
	if err != nil {
		t.Fatal(err)
	}
	big, err := spec().ScaleNodes(100000).Build()
	if err != nil {
		t.Fatal(err)
	}
	if big.Levels[0].Checkpoint != small.Levels[0].Checkpoint {
		t.Error("local level changed with node count")
	}
	if big.Levels[1].Checkpoint != small.Levels[1].Checkpoint {
		t.Error("partner level changed with node count")
	}
	if !almost(big.Levels[2].Checkpoint/small.Levels[2].Checkpoint, 10, 1e-9) {
		t.Errorf("pfs scaling = %v, want 10×", big.Levels[2].Checkpoint/small.Levels[2].Checkpoint)
	}
	if !almost(small.MTBF/big.MTBF, 10, 1e-9) {
		t.Errorf("failure-rate scaling = %v, want 10×", small.MTBF/big.MTBF)
	}
}

func TestValidation(t *testing.T) {
	bad := map[string]func(*Spec){
		"zero nodes":     func(s *Spec) { s.Nodes = 0 },
		"zero ckpt":      func(s *Spec) { s.CheckpointGBPerNode = 0 },
		"zero local bw":  func(s *Spec) { s.LocalGBPerMin = 0 },
		"zero pfs bw":    func(s *Spec) { s.PFSGBPerMin = 0 },
		"no partner bw":  func(s *Spec) { s.PartnerGBPerMin = 0 },
		"zero fails":     func(s *Spec) { s.NodeFailuresPerYear = 0 },
		"zero baseline":  func(s *Spec) { s.BaselineMinutes = 0 },
		"short shares":   func(s *Spec) { s.SeverityShares = []float64{1} },
		"bad share sum":  func(s *Spec) { s.SeverityShares = []float64{0.5, 0.4, 0.2} },
		"negative share": func(s *Spec) { s.SeverityShares = []float64{1.2, -0.1, -0.1} },
	}
	for name, mutate := range bad {
		s := spec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	// Two-level protocol does not need partner bandwidth.
	s := spec()
	s.Protocol = TwoLevelProtocol
	s.PartnerGBPerMin = 0
	if err := s.Validate(); err != nil {
		t.Errorf("two-level rejected: %v", err)
	}
	times, err := s.LevelTimes()
	if err != nil || len(times) != 2 {
		t.Errorf("two-level times: %v %v", times, err)
	}
}

func TestProtocolStrings(t *testing.T) {
	if SCRProtocol.String() != "SCR" || FTIProtocol.String() != "FTI" ||
		TwoLevelProtocol.String() != "two-level" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(9).String() == "" {
		t.Fatal("unknown protocol must render")
	}
	if SCRProtocol.Levels() != 3 || FTIProtocol.Levels() != 4 || TwoLevelProtocol.Levels() != 2 {
		t.Fatal("level counts wrong")
	}
}

func TestDefaultOverheadFactors(t *testing.T) {
	s := spec()
	s.XOROverhead = 0 // default 1.5 applies
	times, err := s.LevelTimes()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(times[1], 2*1.5/60.0, 1e-12) {
		t.Errorf("default XOR factor not applied: %v", times[1])
	}
}
