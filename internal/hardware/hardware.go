// Package hardware derives multilevel checkpointing system descriptions
// from physical platform parameters, the way the paper's sources built
// their Table I rows: checkpoint level costs follow from checkpoint size
// and the bandwidth of each storage tier (node-local RAM/SSD, partner
// nodes with XOR encoding, Reed–Solomon groups, and the shared parallel
// file system), and the system failure rate follows from the per-node
// rate times the node count.
//
// The package encodes the two deployed protocols of Section II-B:
//
//   - SCR [5]: three levels — local, partner/XOR, PFS;
//   - FTI [14]: four levels — local, partner/XOR, Reed–Solomon, PFS.
//
// Its scaling laws implement the paper's exascale reasoning: PFS
// checkpoint time grows with node count (shared bandwidth) while
// local/partner levels stay flat (they scale with the machine), and the
// failure rate grows linearly with node count. That yields the intro's
// motivation study — efficiency versus machine size — as a one-liner.
package hardware

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/system"
)

// MinutesPerYear converts per-year failure rates to per-minute.
const MinutesPerYear = 365.25 * 24 * 60

// Protocol selects the multilevel checkpointing deployment.
type Protocol int

const (
	// SCRProtocol is the three-level SCR stack: local, partner/XOR, PFS.
	SCRProtocol Protocol = iota
	// FTIProtocol is the four-level FTI stack: local, partner/XOR,
	// Reed–Solomon, PFS.
	FTIProtocol
	// TwoLevelProtocol is the minimal stack: local, PFS.
	TwoLevelProtocol
)

// Levels returns the number of checkpoint levels the protocol uses.
func (p Protocol) Levels() int {
	switch p {
	case SCRProtocol:
		return 3
	case FTIProtocol:
		return 4
	default:
		return 2
	}
}

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case SCRProtocol:
		return "SCR"
	case FTIProtocol:
		return "FTI"
	case TwoLevelProtocol:
		return "two-level"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Spec describes a physical platform and application.
type Spec struct {
	// Name labels the platform.
	Name string
	// Protocol selects the checkpoint stack.
	Protocol Protocol
	// Nodes is the number of compute nodes the application uses.
	Nodes int
	// CheckpointGBPerNode is the per-node checkpoint size in GB.
	CheckpointGBPerNode float64
	// LocalGBPerMin is the per-node bandwidth of the local tier
	// (RAM/SSD) in GB per minute.
	LocalGBPerMin float64
	// PartnerGBPerMin is the per-node network bandwidth to partner
	// nodes in GB per minute.
	PartnerGBPerMin float64
	// XOROverhead multiplies the partner-level data volume for XOR
	// encoding (e.g. 1.5 = 50 % parity overhead).
	XOROverhead float64
	// RSOverhead multiplies the Reed–Solomon level's data volume
	// (FTI only; more costly, more reliable than XOR).
	RSOverhead float64
	// PFSGBPerMin is the aggregate parallel-file-system bandwidth in
	// GB per minute, shared by all nodes.
	PFSGBPerMin float64
	// NodeFailuresPerYear is the per-node failure rate.
	NodeFailuresPerYear float64
	// SeverityShares optionally overrides the per-level severity
	// distribution (must match the protocol's level count and sum to
	// 1). Nil selects protocol defaults drawn from the field data the
	// paper's sources report.
	SeverityShares []float64
	// BaselineMinutes is the application's failure-free duration.
	BaselineMinutes float64
}

// defaultShares per protocol, shaped after the Table I rows: most
// failures are low-severity.
func (s Spec) defaultShares() []float64 {
	switch s.Protocol {
	case SCRProtocol:
		return []float64{0.75, 0.17, 0.08}
	case FTIProtocol:
		return []float64{0.556, 0.278, 0.139, 0.027}
	default:
		return []float64{0.85, 0.15}
	}
}

// Validate checks the physical parameters.
func (s Spec) Validate() error {
	if s.Nodes <= 0 {
		return fmt.Errorf("hardware: %d nodes", s.Nodes)
	}
	if !(s.CheckpointGBPerNode > 0) {
		return errors.New("hardware: checkpoint size must be positive")
	}
	if !(s.LocalGBPerMin > 0) || !(s.PFSGBPerMin > 0) {
		return errors.New("hardware: local and PFS bandwidths must be positive")
	}
	need := s.Protocol.Levels()
	if need >= 3 && !(s.PartnerGBPerMin > 0) {
		return fmt.Errorf("hardware: %s needs a partner bandwidth", s.Protocol)
	}
	if !(s.NodeFailuresPerYear > 0) {
		return errors.New("hardware: node failure rate must be positive")
	}
	if !(s.BaselineMinutes > 0) {
		return errors.New("hardware: baseline time must be positive")
	}
	if s.SeverityShares != nil {
		if len(s.SeverityShares) != need {
			return fmt.Errorf("hardware: %d severity shares for %d levels", len(s.SeverityShares), need)
		}
		var sum float64
		for _, p := range s.SeverityShares {
			if p < 0 {
				return errors.New("hardware: negative severity share")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("hardware: severity shares sum to %v", sum)
		}
	}
	return nil
}

// LevelTimes returns the per-level checkpoint(=restart) durations in
// minutes, lowest level first.
func (s Spec) LevelTimes() ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	local := s.CheckpointGBPerNode / s.LocalGBPerMin
	pfs := s.CheckpointGBPerNode * float64(s.Nodes) / s.PFSGBPerMin
	xor := s.XOROverhead
	if xor <= 0 {
		xor = 1.5
	}
	rs := s.RSOverhead
	if rs <= 0 {
		rs = 2.5
	}
	switch s.Protocol {
	case SCRProtocol:
		partner := s.CheckpointGBPerNode * xor / s.PartnerGBPerMin
		return []float64{local, partner, pfs}, nil
	case FTIProtocol:
		partner := s.CheckpointGBPerNode * xor / s.PartnerGBPerMin
		rsTime := s.CheckpointGBPerNode * rs / s.PartnerGBPerMin
		return []float64{local, partner, rsTime, pfs}, nil
	default:
		return []float64{local, pfs}, nil
	}
}

// MTBFMinutes returns the whole-system mean time between failures.
func (s Spec) MTBFMinutes() float64 {
	ratePerMin := s.NodeFailuresPerYear / MinutesPerYear * float64(s.Nodes)
	return 1 / ratePerMin
}

// Build derives the system description the models and simulator consume.
func (s Spec) Build() (*system.System, error) {
	times, err := s.LevelTimes()
	if err != nil {
		return nil, err
	}
	shares := s.SeverityShares
	if shares == nil {
		shares = s.defaultShares()
	}
	out := &system.System{
		Name:         fmt.Sprintf("%s/%s/%dn", s.Name, s.Protocol, s.Nodes),
		Source:       "hardware-derived",
		MTBF:         s.MTBFMinutes(),
		BaselineTime: s.BaselineMinutes,
	}
	for i, tm := range times {
		out.Levels = append(out.Levels, system.Level{
			Checkpoint:   tm,
			Restart:      tm,
			SeverityProb: shares[i],
		})
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// ScaleNodes returns a copy of the spec at a different machine size.
// Per-node quantities are unchanged: the PFS level and the system
// failure rate implicitly scale through Build.
func (s Spec) ScaleNodes(n int) Spec {
	s.Nodes = n
	return s
}
