package svg

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

// wellFormed parses the output as XML to catch escaping/structure bugs.
func wellFormed(t *testing.T, out string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("output is not well-formed XML: %v\n%s", err, out)
		}
	}
}

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(100, 50)
	c.Rect(1, 2, 3, 4, "#ff0000")
	c.Line(0, 0, 10, 10, "black", 1)
	c.Text(5, 5, `a<b>&"c"`, "middle", 10)
	c.TextRotated(5, 5, "rot", "start", 9, -45)
	c.Diamond(10, 10, 3, "#00ff00")
	c.Circle(20, 20, 2, "blue")
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, out)
	for _, want := range []string{"<svg", "a&lt;b&gt;&amp;&quot;c&quot;", "rotate(-45", "viewBox"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCoordSanitizesNonFinite(t *testing.T) {
	if coord(math.NaN()) != "0.00" || coord(math.Inf(1)) != "0.00" {
		t.Fatal("non-finite coordinates must be sanitized")
	}
}

func TestBarChart(t *testing.T) {
	b := &BarChart{
		Title:      "eff",
		YLabel:     "efficiency",
		Categories: []string{"M", "B", "D1"},
		YMax:       1,
		Series: []Series{
			{
				Name:     "dauwe",
				Values:   []float64{0.95, 0.8, 0.7},
				Whiskers: []float64{0.01, 0.02, 0.03},
				Markers:  []float64{0.96, 0.81, math.NaN()},
			},
			{Name: "daly", Values: []float64{0.9, 0.5, 0.4}},
		},
	}
	var buf bytes.Buffer
	if err := b.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wellFormed(t, out)
	if !strings.Contains(out, "dauwe") || !strings.Contains(out, "D1") {
		t.Error("labels missing")
	}
	// Two marker diamonds (third is NaN).
	if got := strings.Count(out, "<path"); got != 2 {
		t.Errorf("diamonds = %d, want 2", got)
	}
}

func TestBarChartValidation(t *testing.T) {
	bad := []*BarChart{
		{},
		{Categories: []string{"a"}},
		{Categories: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{1, 2}}}},
		{Categories: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{1}, Whiskers: []float64{1, 2}}}},
		{Categories: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{1}, Markers: []float64{1, 2}}}},
	}
	for i, b := range bad {
		if err := b.Render(&bytes.Buffer{}); err == nil {
			t.Errorf("bad chart %d accepted", i)
		}
	}
}

func TestBarChartAutoYMax(t *testing.T) {
	b := &BarChart{
		Categories: []string{"a"},
		Series:     []Series{{Name: "s", Values: []float64{2.0}, Whiskers: []float64{0.5}}},
	}
	if got := b.yMax(); math.Abs(got-2.5*1.05) > 1e-9 {
		t.Fatalf("auto ymax = %v", got)
	}
	empty := &BarChart{Categories: []string{"a"}, Series: []Series{{Name: "s", Values: []float64{0}}}}
	if got := empty.yMax(); got != 1 {
		t.Fatalf("zero-data ymax = %v", got)
	}
}

func TestStackedBar(t *testing.T) {
	s := &StackedBar{
		Title:      "breakdown",
		Categories: []string{"D8/dauwe", "D8/di"},
		Components: []string{"useful", "lost", "ckpt ok", "ckpt fail", "restart ok", "restart fail"},
		Shares: [][]float64{
			{0.4, 0.2, 0.1, 0.15, 0.05, 0.1},
			{0.35, 0.25, 0.1, 0.15, 0.05, 0.1},
		},
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.String())
	if !strings.Contains(buf.String(), "restart fail") {
		t.Error("legend missing")
	}
}

func TestStackedBarValidation(t *testing.T) {
	bad := []*StackedBar{
		{},
		{Categories: []string{"a"}, Components: []string{"x"}, Shares: [][]float64{}},
		{Categories: []string{"a"}, Components: []string{"x"}, Shares: [][]float64{{0.5, 0.5}}},
	}
	for i, s := range bad {
		if err := s.Render(&bytes.Buffer{}); err == nil {
			t.Errorf("bad stacked chart %d accepted", i)
		}
	}
}

func TestScatter(t *testing.T) {
	s := &Scatter{
		Title:      "error",
		YLabel:     "pred − sim",
		Categories: []string{"1", "2", "3"},
		Series: []Series{
			{Name: "dauwe", Values: []float64{0.001, -0.002, 0.004}},
			{Name: "moody", Values: []float64{-0.02, -0.05, -0.073}},
		},
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.String())
	// Zero line present (red).
	if !strings.Contains(buf.String(), "#c62828") {
		t.Error("zero line missing")
	}
}

func TestScatterValidation(t *testing.T) {
	if err := (&Scatter{}).Render(&bytes.Buffer{}); err == nil {
		t.Error("empty scatter accepted")
	}
	s := &Scatter{
		Categories: []string{"a"},
		Series:     []Series{{Name: "x", Values: []float64{1, 2}}},
	}
	if err := s.Render(&bytes.Buffer{}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPaletteCycles(t *testing.T) {
	if Color(0) != Color(len(Palette)) {
		t.Fatal("palette does not cycle")
	}
}
