package svg

import (
	"errors"
	"fmt"
	"io"
	"math"
)

// Series is one technique's values across the categorical x axis.
type Series struct {
	Name string
	// Values aligned with the chart's Categories.
	Values []float64
	// Whiskers holds optional ± error-bar half-heights (nil for none).
	Whiskers []float64
	// Markers holds optional diamond-marker values (NaN entries skip a
	// marker; nil for none). Used for model predictions.
	Markers []float64
}

// BarChart is a grouped bar chart with whiskers and prediction diamonds —
// the shape of the paper's Figures 2, 4 and 5.
type BarChart struct {
	Title      string
	YLabel     string
	Categories []string
	Series     []Series
	// YMax fixes the y scale (0 = auto; efficiency plots use 1).
	YMax float64
}

const (
	marginLeft   = 62.0
	marginRight  = 16.0
	marginTop    = 34.0
	marginBottom = 64.0
	legendRow    = 18.0
)

func (b *BarChart) validate() error {
	if len(b.Categories) == 0 || len(b.Series) == 0 {
		return errors.New("svg: bar chart needs categories and series")
	}
	for _, s := range b.Series {
		if len(s.Values) != len(b.Categories) {
			return fmt.Errorf("svg: series %q has %d values for %d categories",
				s.Name, len(s.Values), len(b.Categories))
		}
		if s.Whiskers != nil && len(s.Whiskers) != len(b.Categories) {
			return fmt.Errorf("svg: series %q whisker length mismatch", s.Name)
		}
		if s.Markers != nil && len(s.Markers) != len(b.Categories) {
			return fmt.Errorf("svg: series %q marker length mismatch", s.Name)
		}
	}
	return nil
}

func (b *BarChart) yMax() float64 {
	if b.YMax > 0 {
		return b.YMax
	}
	m := 0.0
	for _, s := range b.Series {
		for i, v := range s.Values {
			top := v
			if s.Whiskers != nil {
				top += s.Whiskers[i]
			}
			if top > m {
				m = top
			}
			if s.Markers != nil && !math.IsNaN(s.Markers[i]) && s.Markers[i] > m {
				m = s.Markers[i]
			}
		}
	}
	if m <= 0 {
		return 1
	}
	return m * 1.05
}

// Render writes the chart as a standalone SVG.
func (b *BarChart) Render(w io.Writer) error {
	if err := b.validate(); err != nil {
		return err
	}
	nCat := len(b.Categories)
	nSer := len(b.Series)
	groupW := math.Max(26*float64(nSer), 60)
	plotW := groupW * float64(nCat) * 1.25
	plotH := 300.0
	c := NewCanvas(marginLeft+plotW+marginRight, marginTop+plotH+marginBottom+legendRow)

	ymax := b.yMax()
	y := func(v float64) float64 {
		if v < 0 {
			v = 0
		}
		if v > ymax {
			v = ymax
		}
		return marginTop + plotH*(1-v/ymax)
	}
	catX := func(i int) float64 {
		return marginLeft + plotW*(float64(i)+0.5)/float64(nCat)
	}

	c.Text(c.W/2, 18, b.Title, "middle", 13)
	// Y axis with ticks.
	c.Line(marginLeft, marginTop, marginLeft, marginTop+plotH, "black", 1)
	for t := 0; t <= 5; t++ {
		v := ymax * float64(t) / 5
		yy := y(v)
		c.Line(marginLeft-4, yy, marginLeft, yy, "black", 1)
		c.Line(marginLeft, yy, marginLeft+plotW, yy, "#dddddd", 0.5)
		c.Text(marginLeft-8, yy+4, fmt.Sprintf("%.2f", v), "end", 10)
	}
	c.TextRotated(16, marginTop+plotH/2, b.YLabel, "middle", 11, -90)
	// X axis.
	c.Line(marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH, "black", 1)

	barW := groupW / float64(nSer) * 0.85
	for i := range b.Categories {
		cx := catX(i)
		c.TextRotated(cx, marginTop+plotH+14, b.Categories[i], "end", 10, -35)
		for si, s := range b.Series {
			x := cx - groupW/2 + (float64(si)+0.075)*groupW/float64(nSer)
			v := s.Values[i]
			c.Rect(x, y(v), barW, marginTop+plotH-y(v), Color(si))
			if s.Whiskers != nil && s.Whiskers[i] > 0 {
				mid := x + barW/2
				c.Line(mid, y(v-s.Whiskers[i]), mid, y(v+s.Whiskers[i]), "black", 1)
				c.Line(mid-3, y(v-s.Whiskers[i]), mid+3, y(v-s.Whiskers[i]), "black", 1)
				c.Line(mid-3, y(v+s.Whiskers[i]), mid+3, y(v+s.Whiskers[i]), "black", 1)
			}
			if s.Markers != nil && !math.IsNaN(s.Markers[i]) {
				c.Diamond(x+barW/2, y(s.Markers[i]), 4, Color(si))
			}
		}
	}
	b.legend(c)
	return c.Render(w)
}

func (b *BarChart) legend(c *Canvas) {
	x := marginLeft
	yy := c.H - 10
	for si, s := range b.Series {
		c.Rect(x, yy-9, 10, 10, Color(si))
		c.Text(x+14, yy, s.Name, "start", 10)
		x += 14 + 7*float64(len(s.Name)) + 18
	}
}

// StackedBar is a normalized stacked bar chart — the paper's Figure 3.
type StackedBar struct {
	Title      string
	Categories []string
	// Components names the stack slices, bottom first.
	Components []string
	// Shares[cat][component] are fractions that sum to ~1 per category.
	Shares [][]float64
}

// Render writes the stacked chart as a standalone SVG.
func (s *StackedBar) Render(w io.Writer) error {
	if len(s.Categories) == 0 || len(s.Components) == 0 {
		return errors.New("svg: stacked chart needs categories and components")
	}
	if len(s.Shares) != len(s.Categories) {
		return fmt.Errorf("svg: %d share rows for %d categories", len(s.Shares), len(s.Categories))
	}
	for i, row := range s.Shares {
		if len(row) != len(s.Components) {
			return fmt.Errorf("svg: category %d has %d shares for %d components",
				i, len(row), len(s.Components))
		}
	}
	plotW := math.Max(44*float64(len(s.Categories)), 300)
	plotH := 300.0
	c := NewCanvas(marginLeft+plotW+marginRight, marginTop+plotH+marginBottom+legendRow*2)
	c.Text(c.W/2, 18, s.Title, "middle", 13)
	c.Line(marginLeft, marginTop, marginLeft, marginTop+plotH, "black", 1)
	for t := 0; t <= 5; t++ {
		v := float64(t) / 5
		yy := marginTop + plotH*(1-v)
		c.Line(marginLeft-4, yy, marginLeft, yy, "black", 1)
		c.Text(marginLeft-8, yy+4, fmt.Sprintf("%.0f%%", v*100), "end", 10)
	}
	c.Line(marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH, "black", 1)

	barW := plotW / float64(len(s.Categories)) * 0.62
	for i, cat := range s.Categories {
		cx := marginLeft + plotW*(float64(i)+0.5)/float64(len(s.Categories))
		c.TextRotated(cx, marginTop+plotH+14, cat, "end", 10, -35)
		acc := 0.0
		for ci := range s.Components {
			h := s.Shares[i][ci] * plotH
			yTop := marginTop + plotH*(1-acc) - h
			c.Rect(cx-barW/2, yTop, barW, h, Color(ci))
			acc += s.Shares[i][ci]
		}
	}
	// Legend over two rows.
	x := marginLeft
	yy := c.H - 24
	for ci, name := range s.Components {
		if ci == (len(s.Components)+1)/2 {
			x = marginLeft
			yy = c.H - 8
		}
		c.Rect(x, yy-9, 10, 10, Color(ci))
		c.Text(x+14, yy, name, "start", 10)
		x += 14 + 7*float64(len(name)) + 18
	}
	return c.Render(w)
}

// Scatter is a categorical scatter plot with a zero line — the paper's
// Figure 6 (prediction error per scenario, per technique).
type Scatter struct {
	Title      string
	YLabel     string
	Categories []string
	Series     []Series // Whiskers/Markers ignored
}

// Render writes the scatter as a standalone SVG.
func (s *Scatter) Render(w io.Writer) error {
	if len(s.Categories) == 0 || len(s.Series) == 0 {
		return errors.New("svg: scatter needs categories and series")
	}
	lo, hi := 0.0, 0.0
	for _, se := range s.Series {
		if len(se.Values) != len(s.Categories) {
			return fmt.Errorf("svg: series %q length mismatch", se.Name)
		}
		for _, v := range se.Values {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	pad := math.Max((hi-lo)*0.1, 1e-6)
	lo, hi = lo-pad, hi+pad

	plotW := math.Max(30*float64(len(s.Categories)), 360)
	plotH := 280.0
	c := NewCanvas(marginLeft+plotW+marginRight, marginTop+plotH+marginBottom+legendRow)
	c.Text(c.W/2, 18, s.Title, "middle", 13)
	y := func(v float64) float64 { return marginTop + plotH*(hi-v)/(hi-lo) }
	c.Line(marginLeft, marginTop, marginLeft, marginTop+plotH, "black", 1)
	for t := 0; t <= 6; t++ {
		v := lo + (hi-lo)*float64(t)/6
		c.Line(marginLeft-4, y(v), marginLeft, y(v), "black", 1)
		c.Text(marginLeft-8, y(v)+4, fmt.Sprintf("%+.3f", v), "end", 10)
	}
	c.TextRotated(16, marginTop+plotH/2, s.YLabel, "middle", 11, -90)
	// Zero line (the paper's red target line).
	c.Line(marginLeft, y(0), marginLeft+plotW, y(0), "#c62828", 1.2)
	c.Line(marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH, "black", 1)
	for i, cat := range s.Categories {
		cx := marginLeft + plotW*(float64(i)+0.5)/float64(len(s.Categories))
		c.TextRotated(cx, marginTop+plotH+14, cat, "end", 9, -45)
		for si, se := range s.Series {
			c.Circle(cx, y(se.Values[i]), 3.2, Color(si))
		}
	}
	x := marginLeft
	yy := c.H - 10
	for si, se := range s.Series {
		c.Circle(x+5, yy-4, 4, Color(si))
		c.Text(x+14, yy, se.Name, "start", 10)
		x += 14 + 7*float64(len(se.Name)) + 18
	}
	return c.Render(w)
}
