// Package svg renders the paper's figures as standalone SVG images using
// only the standard library: grouped bar charts with standard-deviation
// whiskers and prediction diamonds (Figures 2, 4, 5), stacked bars
// (Figure 3) and scatter series (Figure 6).
package svg

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Canvas accumulates SVG elements.
type Canvas struct {
	W, H float64
	b    strings.Builder
}

// NewCanvas creates an empty canvas of the given pixel size.
func NewCanvas(w, h float64) *Canvas {
	return &Canvas{W: w, H: h}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func coord(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	return fmt.Sprintf("%.2f", v)
}

// Rect draws a filled rectangle.
func (c *Canvas) Rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&c.b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"/>`+"\n",
		coord(x), coord(y), coord(w), coord(h), esc(fill))
}

// Line draws a stroked line.
func (c *Canvas) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="%s"/>`+"\n",
		coord(x1), coord(y1), coord(x2), coord(y2), esc(stroke), coord(width))
}

// Text draws text; anchor is "start", "middle" or "end".
func (c *Canvas) Text(x, y float64, s, anchor string, size float64) {
	fmt.Fprintf(&c.b, `<text x="%s" y="%s" text-anchor="%s" font-size="%s" font-family="sans-serif">%s</text>`+"\n",
		coord(x), coord(y), esc(anchor), coord(size), esc(s))
}

// TextRotated draws text rotated by deg around its anchor point.
func (c *Canvas) TextRotated(x, y float64, s, anchor string, size, deg float64) {
	fmt.Fprintf(&c.b, `<text x="%s" y="%s" text-anchor="%s" font-size="%s" font-family="sans-serif" transform="rotate(%s %s %s)">%s</text>`+"\n",
		coord(x), coord(y), esc(anchor), coord(size), coord(deg), coord(x), coord(y), esc(s))
}

// Diamond draws a diamond marker centered at (x, y).
func (c *Canvas) Diamond(x, y, r float64, fill string) {
	fmt.Fprintf(&c.b, `<path d="M %s %s L %s %s L %s %s L %s %s Z" fill="%s" stroke="black" stroke-width="0.5"/>`+"\n",
		coord(x), coord(y-r), coord(x+r), coord(y),
		coord(x), coord(y+r), coord(x-r), coord(y), esc(fill))
}

// Circle draws a filled circle.
func (c *Canvas) Circle(x, y, r float64, fill string) {
	fmt.Fprintf(&c.b, `<circle cx="%s" cy="%s" r="%s" fill="%s"/>`+"\n",
		coord(x), coord(y), coord(r), esc(fill))
}

// Render writes the complete SVG document.
func (c *Canvas) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s">`+"\n"+
			`<rect width="100%%" height="100%%" fill="white"/>`+"\n%s</svg>\n",
		coord(c.W), coord(c.H), coord(c.W), coord(c.H), c.b.String())
	return err
}

// Palette is the default series color cycle.
var Palette = []string{
	"#2e7d32", // green (the paper colors its own technique green)
	"#f9a825", // amber
	"#c62828", // red
	"#1565c0", // blue
	"#6a1b9a", // purple
	"#00838f", // teal
}

// Color returns the i-th palette color, cycling.
func Color(i int) string { return Palette[i%len(Palette)] }
