package sim

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
)

// collectUpdates is a Progress hook that records every update (it runs
// under the merge lock, so no extra synchronization is needed for the
// runner's calls; the mutex guards the final read from the test
// goroutine).
type collectUpdates struct {
	mu  sync.Mutex
	ups []ProgressUpdate
}

func (c *collectUpdates) hook(u ProgressUpdate) {
	c.mu.Lock()
	c.ups = append(c.ups, u)
	c.mu.Unlock()
}

func (c *collectUpdates) all() []ProgressUpdate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ProgressUpdate(nil), c.ups...)
}

// TestProgressUpdatesMonotoneAndFinal: a successful run emits an
// initial running update, monotonically non-decreasing merged counts,
// and exactly one final update in state complete covering every trial.
func TestProgressUpdatesMonotoneAndFinal(t *testing.T) {
	var col collectUpdates
	camp := Campaign{
		Scenario: Scenario{System: twoLevel(200, 600), Plan: planBoth(2, 3)},
		Trials:   100,
		Workers:  4,
		Seed:     seed("progress-basic"),
		Progress: col.hook,
	}
	if _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	ups := col.all()
	if len(ups) < 2 {
		t.Fatalf("got %d updates, want at least initial+final", len(ups))
	}
	if ups[0].State != RunStateRunning || ups[0].Merged != 0 {
		t.Fatalf("first update = %+v, want running at 0 merged", ups[0])
	}
	finals := 0
	prev := -1
	for _, u := range ups {
		if u.Merged < prev {
			t.Fatalf("merged went backwards: %d after %d", u.Merged, prev)
		}
		prev = u.Merged
		if u.First != 0 || u.Limit != 100 || u.Total != 100 {
			t.Fatalf("update range %+v, want [0,100) of 100", u)
		}
		if u.Final {
			finals++
			if u.State != RunStateComplete || u.Merged != 100 || u.Err != nil {
				t.Fatalf("final update = %+v, want complete at 100", u)
			}
		}
	}
	if finals != 1 {
		t.Fatalf("got %d final updates, want 1", finals)
	}
}

// TestProgressCheckpointedFlag: with a checkpoint config, at least one
// running update is flagged Checkpointed, and the flagged merged counts
// line up with interval boundaries (block-aligned).
func TestProgressCheckpointedFlag(t *testing.T) {
	var col collectUpdates
	path := filepath.Join(t.TempDir(), "ck.json")
	camp := Campaign{
		Scenario:   Scenario{System: twoLevel(200, 600), Plan: planBoth(2, 3)},
		Trials:     200,
		Workers:    4,
		Seed:       seed("progress-ckpt"),
		Checkpoint: &CheckpointConfig{Path: path, Interval: 32},
		Progress:   col.hook,
	}
	if _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	ckpted := 0
	for _, u := range col.all() {
		if u.Checkpointed {
			ckpted++
			if u.Merged%DefaultBlock != 0 {
				t.Fatalf("checkpointed update at non-block-aligned %d", u.Merged)
			}
		}
	}
	if ckpted == 0 {
		t.Fatal("no update carried the Checkpointed flag")
	}
}

// TestProgressFailedFinal: a failing campaign's last update is final,
// failed, carries the run error, and reports the partial merged prefix
// — the progress mirror of the final-checkpoint-on-error contract.
func TestProgressFailedFinal(t *testing.T) {
	var col collectUpdates
	camp := Campaign{
		Scenario: Scenario{System: twoLevel(100, 300), Plan: planBoth(2, 3)},
		ControllerFactory: func() PlanController {
			return &thresholdFailController{threshold: 7}
		},
		Trials:   300,
		Workers:  8,
		Seed:     seed("progress-fail"),
		Progress: col.hook,
	}
	_, err := camp.Run()
	if err == nil {
		t.Fatal("campaign did not fail")
	}
	ups := col.all()
	last := ups[len(ups)-1]
	if !last.Final || last.State != RunStateFailed {
		t.Fatalf("last update = %+v, want final failed", last)
	}
	if !errors.Is(last.Err, err) && last.Err.Error() != err.Error() {
		t.Fatalf("final update error %v, run error %v", last.Err, err)
	}
	if last.Merged >= 300 {
		t.Fatalf("failed run reports all %d trials merged", last.Merged)
	}
}

// TestProgressHaltedFinal: HaltAfter produces a final halted update at
// the halt point.
func TestProgressHaltedFinal(t *testing.T) {
	var col collectUpdates
	path := filepath.Join(t.TempDir(), "ck.json")
	camp := Campaign{
		Scenario:   Scenario{System: twoLevel(200, 600), Plan: planBoth(2, 3)},
		Trials:     200,
		Workers:    2,
		Seed:       seed("progress-halt"),
		Checkpoint: &CheckpointConfig{Path: path, Interval: 16, HaltAfter: 48},
		Progress:   col.hook,
	}
	if _, err := camp.Run(); !errors.Is(err, ErrCampaignHalted) {
		t.Fatalf("err = %v, want ErrCampaignHalted", err)
	}
	ups := col.all()
	last := ups[len(ups)-1]
	if !last.Final || last.State != RunStateHalted {
		t.Fatalf("last update = %+v, want final halted", last)
	}
	if last.Merged < 48 || last.Merged >= 200 {
		t.Fatalf("halted at %d merged, want in [48, 200)", last.Merged)
	}
}

// TestProgressShardRange: a shard run reports its own block-aligned
// range against the whole campaign's Total, finishing complete.
func TestProgressShardRange(t *testing.T) {
	var col collectUpdates
	camp := Campaign{
		Scenario: Scenario{System: twoLevel(200, 600), Plan: planBoth(2, 3)},
		Trials:   96,
		Workers:  3,
		Seed:     seed("progress-shard"),
		Progress: col.hook,
	}
	path := filepath.Join(t.TempDir(), "shard1.json")
	if err := camp.RunShard(path, 1, 4); err != nil {
		t.Fatal(err)
	}
	lo, hi := ShardRange(96, DefaultBlock, 1, 4)
	ups := col.all()
	last := ups[len(ups)-1]
	if !last.Final || last.State != RunStateComplete {
		t.Fatalf("last shard update = %+v, want final complete", last)
	}
	for _, u := range ups {
		if u.First != lo || u.Limit != hi || u.Total != 96 {
			t.Fatalf("shard update %+v, want range [%d,%d) of 96", u, lo, hi)
		}
	}
	if last.Merged != hi {
		t.Fatalf("shard final merged %d, want %d", last.Merged, hi)
	}
}
