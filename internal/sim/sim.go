// Package sim is the event-driven HPC resilience simulator the paper
// uses as ground truth (Section IV-B, after [8]). It executes a single
// large application under a pattern-based multilevel checkpointing plan
// on a failure-prone system: failures of L severity classes arrive as
// independent renewal processes (exponential by default) and can strike
// computation, checkpoint writes and restarts alike; recovery follows the
// SCR protocol semantics described in the paper.
//
// Protocol semantics (DESIGN.md §2.6):
//
//   - After each τ0 of computation the plan's pattern odometer selects a
//     checkpoint level; a successful level-u checkpoint commits the
//     current state to every used level <= u (SCR performs the lower
//     checkpoints within the higher one; the configured δ_u is the
//     inclusive cost).
//   - A severity-s failure invalidates stored checkpoints at levels < s
//     and triggers recovery from the lowest used level >= s that still
//     holds a checkpoint; with no such checkpoint the application
//     restarts from scratch (zero progress, no read cost).
//   - A failure of severity s' during a level-u restart retries the same
//     restart when s' <= u (RetryPolicy, the paper's realistic
//     assumption, applied to all techniques in its simulations) or
//     escalates recovery to the next level (EscalatePolicy, Moody's
//     assumption, available for the ablation study).
//   - The application completes when cumulative useful computation
//     reaches T_B; no final checkpoint is required.
package sim

import (
	"errors"
	"fmt"

	"repro/internal/dist"
	"repro/internal/pattern"
	"repro/internal/system"
)

// RestartPolicy selects the failure-during-restart semantics.
type RestartPolicy int

const (
	// RetryPolicy retries the interrupted restart when the new failure
	// is recoverable at the same level (paper Section IV-G).
	RetryPolicy RestartPolicy = iota
	// EscalatePolicy escalates to the next checkpoint level on any
	// failure during a restart (Moody et al.'s assumption).
	EscalatePolicy
)

// Scenario describes one simulated scenario: the trial-level inputs
// only. It is a pure value — no per-trial state, no hooks — so one
// Scenario can be shared by any number of trials, engines and workers.
// Per-trial hooks (event observers, online plan controllers) attach to
// the executor instead: Engine.Observe / Engine.Control for single
// trials, Campaign.ObserverFactory / Campaign.ControllerFactory for
// campaigns. That split makes the formerly mutually-exclusive hook
// fields unrepresentable rather than a runtime validation error.
type Scenario struct {
	// System under test. Required.
	System *system.System
	// Plan is the checkpointing strategy to execute. Required.
	Plan pattern.Plan
	// Policy selects restart semantics; the paper's simulations use
	// RetryPolicy for every technique.
	Policy RestartPolicy
	// MaxWallFactor caps a trial at MaxWallFactor·T_B simulated minutes
	// (the paper's sub-1 %-efficiency scenarios never terminate
	// otherwise). 0 means the default of 400.
	MaxWallFactor float64
	// FailureLaws optionally overrides the per-severity inter-arrival
	// laws (index 0 = severity 1). Defaults to exponential processes at
	// the system's severity rates; replace with Weibull laws for the
	// non-memoryless ablation. A nil entry keeps the default for that
	// severity. Laws are shared across every trial that runs the
	// scenario; stateful laws implementing dist.Rewinder are rewound at
	// the start of each trial an Engine runs.
	FailureLaws []dist.Sampler
	// AsyncTopFlush enables SCR/FTI-style asynchronous flushing of the
	// plan's top-level checkpoint: the application blocks only for the
	// capture to the next-lower used level, then resumes computing
	// while the top-level write drains in the background. Any failure
	// aborts an in-flight flush (the source data is lost), so the
	// top-level store only updates when a flush completes untouched.
	// Ignored for single-level plans (there is no lower level to
	// capture to).
	AsyncTopFlush bool
}

// PlanController is an online checkpoint-interval controller. The
// simulator notifies it of failures and consults it after every
// successful checkpoint commit; returning (plan, true) switches the
// protocol to the new plan (its pattern restarts at position 0; stored
// checkpoints keep their progress). A returned plan that does not
// validate against the system aborts the trial with an error.
type PlanController interface {
	// OnFailure is called at every failure arrival.
	OnFailure(now float64, severity int)
	// Replan is consulted after each successful checkpoint commit.
	Replan(now, progress float64) (pattern.Plan, bool)
}

// DefaultMaxWallFactor is the trial cap when Scenario.MaxWallFactor is 0.
const DefaultMaxWallFactor = 400

// Validate checks the scenario.
func (s *Scenario) Validate() error {
	if s.System == nil {
		return errors.New("sim: nil system")
	}
	if err := s.System.Validate(); err != nil {
		return err
	}
	if err := s.Plan.Validate(s.System); err != nil {
		return err
	}
	if s.MaxWallFactor < 0 {
		return fmt.Errorf("sim: negative wall factor %v", s.MaxWallFactor)
	}
	if len(s.FailureLaws) > s.System.NumLevels() {
		return fmt.Errorf("sim: %d failure laws for %d severities", len(s.FailureLaws), s.System.NumLevels())
	}
	return nil
}

// EventKind labels observer events.
type EventKind int

const (
	// EvPhaseStart marks the start of a compute/checkpoint/restart phase.
	EvPhaseStart EventKind = iota
	// EvPhaseEnd marks the successful end of a phase.
	EvPhaseEnd
	// EvFailure marks a failure arrival.
	EvFailure
	// EvComplete marks application completion.
	EvComplete
	// EvCapped marks a trial aborted at the wall-time cap.
	EvCapped
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvPhaseStart:
		return "phase_start"
	case EvPhaseEnd:
		return "phase_end"
	case EvFailure:
		return "failure"
	case EvComplete:
		return "complete"
	case EvCapped:
		return "capped"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Phase labels the simulator's execution phases.
type Phase int

const (
	// PhaseCompute is a computation interval.
	PhaseCompute Phase = iota
	// PhaseCheckpoint is a checkpoint write.
	PhaseCheckpoint
	// PhaseRestart is a restart read.
	PhaseRestart
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseCompute:
		return "compute"
	case PhaseCheckpoint:
		return "checkpoint"
	case PhaseRestart:
		return "restart"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Event is one observer notification.
type Event struct {
	Time     float64
	Kind     EventKind
	Phase    Phase
	Level    int     // 1-based system level for checkpoint/restart phases; severity for failures
	Progress float64 // useful work completed at event time
}

// Observer receives simulation events.
type Observer interface {
	Observe(Event)
}

// Breakdown partitions a trial's wall-clock time into the paper's
// Figure 3 categories. All values are minutes.
type Breakdown struct {
	// UsefulCompute is computation that counted toward T_B.
	UsefulCompute float64
	// LostCompute is computation that was rolled back and re-done.
	LostCompute float64
	// CheckpointOK is time in checkpoints that completed.
	CheckpointOK float64
	// CheckpointFail is time lost in checkpoints cut short by failures.
	CheckpointFail float64
	// RestartOK is time in restarts that completed.
	RestartOK float64
	// RestartFail is time lost in restarts cut short by failures.
	RestartFail float64
}

// Total returns the sum of all categories (the trial wall time).
func (b Breakdown) Total() float64 {
	return b.UsefulCompute + b.LostCompute + b.CheckpointOK + b.CheckpointFail +
		b.RestartOK + b.RestartFail
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.UsefulCompute += o.UsefulCompute
	b.LostCompute += o.LostCompute
	b.CheckpointOK += o.CheckpointOK
	b.CheckpointFail += o.CheckpointFail
	b.RestartOK += o.RestartOK
	b.RestartFail += o.RestartFail
}

// Scale multiplies every category by f.
func (b *Breakdown) Scale(f float64) {
	b.UsefulCompute *= f
	b.LostCompute *= f
	b.CheckpointOK *= f
	b.CheckpointFail *= f
	b.RestartOK *= f
	b.RestartFail *= f
}

// TrialResult reports one simulated execution.
type TrialResult struct {
	// WallTime is the simulated duration in minutes.
	WallTime float64
	// Completed reports whether the application reached T_B before the
	// wall-time cap.
	Completed bool
	// Progress is the useful work completed (== T_B when Completed).
	Progress float64
	// Efficiency is Progress / WallTime — identical to T_B/WallTime for
	// completed trials and a fair partial estimate for capped ones.
	Efficiency float64
	// Breakdown partitions WallTime into the Figure 3 categories.
	Breakdown Breakdown
	// Failures counts failure arrivals by severity (index 0 = severity
	// 1).
	Failures []int
	// ScratchRestarts counts recoveries that had no usable checkpoint
	// and restarted the application from zero progress.
	ScratchRestarts int
}

// TotalFailures sums Failures across severities.
func (r *TrialResult) TotalFailures() int {
	n := 0
	for _, f := range r.Failures {
		n += f
	}
	return n
}
