package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Campaign runs many independent trials of one scenario.
type Campaign struct {
	// Config is the per-trial scenario.
	Config Config
	// Trials is the number of independent executions (the paper uses
	// 200, or 400 for Figure 5).
	Trials int
	// Seed is the scenario-level seed; trial i draws from
	// Seed.Trial(i), so results are independent of Workers.
	Seed rng.Seed
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// ObserverFactory, when non-nil, builds one Observer per worker
	// goroutine (called once per worker with its index); every trial the
	// worker runs streams events to that observer. Keeping observer
	// state goroutine-local lets metrics shards aggregate without locks
	// on the hot path (see internal/obs.Pool). Config.Observer must
	// still be nil for campaigns.
	ObserverFactory func(worker int) Observer
	// TrialDone, when non-nil, is called once after every completed
	// trial, from worker goroutines — it must be safe for concurrent
	// use. Progress reporters hook in here.
	TrialDone func(TrialResult)
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// Efficiency summarizes the per-trial efficiency (the bars and
	// whiskers of Figures 2, 4 and 5).
	Efficiency stats.Summary
	// WallTime summarizes the per-trial wall time in minutes.
	WallTime stats.Summary
	// Efficiencies holds every trial's efficiency, in trial order
	// (needed for the Welch significance tests of Section IV-F).
	Efficiencies []float64
	// MeanBreakdown is the across-trials mean of each Figure 3
	// category, in minutes.
	MeanBreakdown Breakdown
	// BreakdownShare is MeanBreakdown normalized by the mean wall time
	// (the Figure 3 percentages, as fractions summing to 1).
	BreakdownShare Breakdown
	// Completed counts trials that finished before the wall-time cap.
	Completed int
	// Trials echoes the campaign size.
	Trials int
	// MeanFailures is the mean per-trial failure count by severity.
	MeanFailures []float64
	// MeanScratchRestarts is the mean per-trial count of recoveries
	// that found no usable checkpoint.
	MeanScratchRestarts float64
}

// Run executes the campaign. Trials are distributed over worker
// goroutines; per-trial seeding makes the aggregate deterministic for a
// given Campaign.Seed regardless of scheduling.
func (c Campaign) Run() (CampaignResult, error) {
	if c.Trials <= 0 {
		return CampaignResult{}, errors.New("sim: campaign needs at least one trial")
	}
	if err := c.Config.Validate(); err != nil {
		return CampaignResult{}, err
	}
	if c.Config.Observer != nil {
		return CampaignResult{}, errors.New("sim: observers are per-trial; campaigns do not support them")
	}
	if c.Config.Controller != nil {
		return CampaignResult{}, errors.New("sim: controllers are stateful per trial; set ControllerFactory instead")
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > c.Trials {
		workers = c.Trials
	}

	results := make([]TrialResult, c.Trials)
	errs := make([]error, workers)
	// A failed trial poisons the whole campaign, so the first error
	// cancels the remaining trials on every worker instead of letting
	// them burn through the full campaign before Run can report it.
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var obs Observer
			if c.ObserverFactory != nil {
				obs = c.ObserverFactory(w)
			}
			for i := w; i < c.Trials; i += workers {
				if failed.Load() {
					return
				}
				cfg := c.Config
				cfg.Observer = obs
				if cfg.ControllerFactory != nil {
					cfg.Controller = cfg.ControllerFactory()
				}
				r, err := RunTrial(cfg, c.Seed.Trial(i).Rand())
				if err != nil {
					errs[w] = fmt.Errorf("trial %d: %w", i, err)
					failed.Store(true)
					return
				}
				results[i] = r
				if c.TrialDone != nil {
					c.TrialDone(r)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return CampaignResult{}, err
		}
	}

	out := CampaignResult{Trials: c.Trials}
	var eff, wall stats.Sample
	L := c.Config.System.NumLevels()
	out.MeanFailures = make([]float64, L)
	out.Efficiencies = make([]float64, c.Trials)
	for i := range results {
		r := &results[i]
		eff.Add(r.Efficiency)
		wall.Add(r.WallTime)
		out.Efficiencies[i] = r.Efficiency
		out.MeanBreakdown.Add(r.Breakdown)
		if r.Completed {
			out.Completed++
		}
		for s := 0; s < L; s++ {
			out.MeanFailures[s] += float64(r.Failures[s])
		}
		out.MeanScratchRestarts += float64(r.ScratchRestarts)
	}
	n := float64(c.Trials)
	out.MeanBreakdown.Scale(1 / n)
	for s := range out.MeanFailures {
		out.MeanFailures[s] /= n
	}
	out.MeanScratchRestarts /= n
	out.Efficiency = stats.Summarize(&eff)
	out.WallTime = stats.Summarize(&wall)
	if total := out.MeanBreakdown.Total(); total > 0 {
		out.BreakdownShare = out.MeanBreakdown
		out.BreakdownShare.Scale(1 / total)
	}
	return out, nil
}
