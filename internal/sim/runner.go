package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
	"repro/internal/stats"
)

// maxWorkers bounds Campaign.Workers. Far above any real machine; a
// request beyond it is a unit mix-up (e.g. passing a trial count), not
// a parallelism choice, and is rejected rather than silently clamped.
const maxWorkers = 1 << 16

// Campaign runs many independent trials of one scenario.
type Campaign struct {
	// Scenario is the per-trial scenario.
	Scenario Scenario
	// Trials is the number of independent executions (the paper uses
	// 200, or 400 for Figure 5).
	Trials int
	// Seed is the scenario-level seed. Trial i always draws its random
	// stream from Seed.Trial(i): the seed→trial mapping is part of the
	// API contract, so a campaign's results — including the order of
	// Efficiencies and every aggregate — are byte-identical for a given
	// Seed regardless of Workers, scheduling, or engine reuse.
	Seed rng.Seed
	// Workers bounds parallelism. 0 means GOMAXPROCS; values above
	// Trials are clamped to Trials (extra workers would idle). Negative
	// or absurdly large (> 65536) values are rejected by Run.
	Workers int
	// ObserverFactory, when non-nil, builds one Observer per worker
	// goroutine (called once per worker with its index); every trial the
	// worker runs streams events to that observer. Keeping observer
	// state goroutine-local lets metrics shards aggregate without locks
	// on the hot path (see internal/obs.Pool).
	ObserverFactory func(worker int) Observer
	// ControllerFactory, when non-nil, builds one fresh PlanController
	// per trial (controllers are stateful). A factory returning nil
	// leaves that trial uncontrolled.
	ControllerFactory func() PlanController
	// TrialStart, when non-nil, is called from the worker goroutine
	// immediately before each trial runs, with the worker's index and
	// the campaign trial index — it must be safe for concurrent use.
	// Flight recorders hook in here to label the upcoming event stream
	// (see internal/trace.FlightPool).
	TrialStart func(worker, trial int)
	// TrialDone, when non-nil, is called once after every completed
	// trial, from worker goroutines — it must be safe for concurrent
	// use. Progress reporters hook in here. The result's Failures slice
	// is engine scratch, only valid during the call.
	TrialDone func(TrialResult)

	// Sink receives the per-trial results (see CampaignSink for the
	// scheduling contract). nil means an ExactSink, which reproduces the
	// historical buffered aggregation bit for bit; NewStreamSink gives
	// constant-memory aggregation for mega-campaigns.
	Sink CampaignSink
	// Block is the scheduling block size in trials (0 means
	// DefaultBlock). The trial range is cut into fixed Block-sized
	// pieces that merge into the sink in ascending order; the partition
	// depends only on trial indices, so results are byte-identical for
	// any Workers. Checkpoints and shard boundaries are block-aligned,
	// so resuming or sharding requires the same Block the original run
	// used.
	Block int
	// Checkpoint, when non-nil, enables periodic checkpointing and
	// resume (requires the sink to be a PortableSink; the default exact
	// sink and the stream sink both are).
	Checkpoint *CheckpointConfig
	// Progress, when non-nil, receives ProgressUpdates as the merged
	// prefix advances: one update when the run starts, one whenever
	// blocks merge (flagged when the merge also wrote a checkpoint), and
	// a final update on every exit path — complete, failed, or halted —
	// so progress sidecars can mirror the final-checkpoint-on-error
	// contract. Calls are made under the runner's merge lock and must be
	// fast and non-blocking (throttle expensive work, e.g. file writes,
	// inside the callback).
	Progress func(ProgressUpdate)

	// noEngineReuse forces a fresh engine per trial; determinism tests
	// use it to prove reuse does not change results.
	noEngineReuse bool
}

// RunState classifies a campaign run's lifecycle in ProgressUpdates and
// progress sidecars.
type RunState string

const (
	// RunStateRunning: trials are still merging.
	RunStateRunning RunState = "running"
	// RunStateComplete: the run finished every trial in its range.
	RunStateComplete RunState = "complete"
	// RunStateFailed: the run stopped on an error; Merged trials were
	// still flushed (checkpointed when configured).
	RunStateFailed RunState = "failed"
	// RunStateHalted: CheckpointConfig.HaltAfter stopped the run cleanly.
	RunStateHalted RunState = "halted"
)

// ProgressUpdate reports the merged-prefix progress of a campaign run.
// Trial counts are absolute campaign indices: a shard run covering
// [First, Limit) reports Merged within that range, against the
// whole-campaign Total.
type ProgressUpdate struct {
	// First and Limit delimit the trial range this run covers (the full
	// campaign for Run, the shard's slice for RunShard).
	First, Limit int
	// Merged is the contiguous merged prefix: trials [First, Merged) are
	// folded into the sink.
	Merged int
	// Total is Campaign.Trials.
	Total int
	// State is the run's lifecycle state; exactly one update with
	// Final=true carries a terminal state.
	State RunState
	// Checkpointed marks updates issued right after a checkpoint write.
	Checkpointed bool
	// Final marks the last update of the run.
	Final bool
	// Err is the terminal error when State is RunStateFailed.
	Err error
}

// notify invokes the Progress hook if set.
func (c *Campaign) notify(u ProgressUpdate) {
	if c.Progress != nil {
		u.Total = c.Trials
		c.Progress(u)
	}
}

// DefaultBlock is the default scheduling block size. Small enough that
// a paper-sized 200-trial campaign still spreads across 16+ workers,
// large enough that per-block merge bookkeeping is noise.
const DefaultBlock = 8

// blockSize resolves Campaign.Block.
func (c *Campaign) blockSize() int {
	if c.Block > 0 {
		return c.Block
	}
	return DefaultBlock
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// Efficiency summarizes the per-trial efficiency (the bars and
	// whiskers of Figures 2, 4 and 5).
	Efficiency stats.Summary
	// WallTime summarizes the per-trial wall time in minutes.
	WallTime stats.Summary
	// Efficiencies holds every trial's efficiency, in trial order. It is
	// opt-in: only the exact-slice sink (the default when Campaign.Sink
	// is nil) populates it, for callers that need per-trial values — the
	// Welch/paired significance tests of Section IV-F, exact quantiles.
	// Streaming sinks leave it nil and carry EfficiencySketch instead.
	Efficiencies []float64
	// EfficiencySketch, when non-nil, is the streaming sink's log-bucket
	// quantile sketch over per-trial efficiencies (exact N/mean/std/
	// min/max, bucket-interpolated quantiles). nil on exact-sink runs.
	EfficiencySketch *stats.Sketch
	// WallTimeSketch is the streaming counterpart for per-trial wall
	// times in minutes. nil on exact-sink runs.
	WallTimeSketch *stats.Sketch
	// MeanBreakdown is the across-trials mean of each Figure 3
	// category, in minutes.
	MeanBreakdown Breakdown
	// BreakdownShare is MeanBreakdown normalized by the mean wall time
	// (the Figure 3 percentages, as fractions summing to 1).
	BreakdownShare Breakdown
	// Completed counts trials that finished before the wall-time cap.
	Completed int
	// Trials echoes the campaign size.
	Trials int
	// MeanFailures is the mean per-trial failure count by severity.
	MeanFailures []float64
	// MeanScratchRestarts is the mean per-trial count of recoveries
	// that found no usable checkpoint.
	MeanScratchRestarts float64
}

// Run executes the campaign. Each worker goroutine builds one Engine
// and drives all of its trials through it, so the per-trial hot path
// allocates nothing; per-trial seeding (Seed.Trial(i)) makes the
// aggregate deterministic for a given Campaign.Seed regardless of
// scheduling, worker count, or engine reuse. Results stream through
// the campaign's sink (exact-slice by default — see CampaignSink);
// with a Checkpoint config, Run periodically persists the sink's
// merged prefix and can resume from it bitwise-exactly.
func (c Campaign) Run() (CampaignResult, error) {
	if err := c.validate(); err != nil {
		return CampaignResult{}, err
	}
	var sink CampaignSink
	if c.Sink == nil {
		s := NewExactSink()
		s.Reserve(c.Trials, c.Scenario.System.NumLevels())
		sink = s
	} else {
		sink = c.Sink
	}
	first := 0
	if ck := c.Checkpoint; ck != nil && ck.Resume {
		// validate() guarantees the sink is portable when Checkpoint is
		// set.
		next, loaded, err := c.loadCheckpoint(sink.(PortableSink))
		if err != nil {
			return CampaignResult{}, err
		}
		if loaded {
			first = next
		}
	}
	halted, err := c.runBlocks(sink, first, c.Trials)
	if err != nil {
		return CampaignResult{}, err
	}
	if halted {
		return CampaignResult{}, ErrCampaignHalted
	}
	c.notify(ProgressUpdate{First: 0, Limit: c.Trials, Merged: c.Trials,
		State: RunStateComplete, Final: true})
	return sink.Result()
}

// validate checks the campaign's invariants (shared by Run and
// PairedCampaign.Run).
func (c Campaign) validate() error {
	if c.Trials <= 0 {
		return errors.New("sim: campaign needs at least one trial")
	}
	if err := c.Scenario.Validate(); err != nil {
		return err
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: negative Workers %d", c.Workers)
	}
	if c.Workers > maxWorkers {
		return fmt.Errorf("sim: Workers %d exceeds limit %d", c.Workers, maxWorkers)
	}
	if c.Block < 0 {
		return fmt.Errorf("sim: negative Block %d", c.Block)
	}
	if ck := c.Checkpoint; ck != nil {
		if ck.Path == "" {
			return errors.New("sim: CheckpointConfig needs a Path")
		}
		if ck.Interval <= 0 || ck.Interval > c.Trials {
			return fmt.Errorf("sim: checkpoint interval %d outside [1, Trials=%d]", ck.Interval, c.Trials)
		}
		if c.Sink != nil {
			if _, ok := c.Sink.(PortableSink); !ok {
				return fmt.Errorf("sim: sink %T cannot checkpoint (needs PortableSink)", c.Sink)
			}
		}
	}
	return nil
}

// runBlocks executes trials [first, limit) of the validated campaign
// through sink. first must be block-aligned (checkpoints and shard
// boundaries always are). The trial range is cut into fixed-size blocks
// (blockSize trials; the partition ignores Workers entirely); block b
// belongs statically to worker b mod W, each worker folds its block
// into a fresh SinkShard in ascending trial order, and completed shards
// merge into the sink in ascending block order under the prefix merger
// below — so the sink's folds see the exact same sequences in the exact
// same order for every worker count, which is what makes streaming
// aggregation, checkpoint/resume and shard merges bitwise
// deterministic. Returns halted=true when CheckpointConfig.HaltAfter
// stopped the run early; on every exit path with a checkpoint config
// (success, halt, trial error) the merged prefix is flushed to the
// checkpoint file, so the fail-fast contract loses no finished work.
func (c Campaign) runBlocks(sink CampaignSink, first, limit int) (halted bool, err error) {
	ck := c.Checkpoint
	flushFinal := func(next int) error {
		if ck == nil {
			return nil
		}
		return c.writeSinkFile(ck.Path, sink.(PortableSink), 0, next)
	}
	if first >= limit {
		// Resuming a completed campaign: nothing to run.
		return false, nil
	}
	c.notify(ProgressUpdate{First: first, Limit: limit, Merged: first, State: RunStateRunning})
	B := c.blockSize()
	if first%B != 0 {
		return false, fmt.Errorf("sim: start trial %d is not aligned to block size %d", first, B)
	}
	firstBlock := first / B
	endBlock := (limit + B - 1) / B
	nBlocks := endBlock - firstBlock
	workers := c.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nBlocks {
		workers = nBlocks
	}

	// Prefix merger: completed shards park in pending until the next
	// in-order block arrives, then merge in ascending block order.
	// mergedTrials is therefore always the length of the contiguous
	// merged prefix — the only thing a checkpoint may persist.
	var (
		mergeMu      sync.Mutex
		pending      = make(map[int]SinkShard)
		nextBlock    = firstBlock
		mergedTrials = first
		lastCkpt     = first
		mergeErr     error
	)
	haltAt := 0
	if ck != nil && ck.HaltAfter > 0 {
		haltAt = first + ck.HaltAfter
	}
	var haltFlag atomic.Bool

	// A failed trial poisons the whole campaign, so it cancels the
	// remaining trials on every worker instead of letting them burn
	// through the full campaign before Run can report it. Cancellation is
	// by trial index, not a plain flag: firstBad holds the lowest failing
	// trial seen so far, and a worker skips trial i only when some trial
	// BELOW i has failed. The worker owning the globally lowest failing
	// trial k therefore always reaches and records k (its earlier trials
	// precede k and cannot be cancelled by errors at or above k), so the
	// error Run returns is the error of the lowest-index failing trial —
	// deterministic for a given Seed regardless of Workers or scheduling.
	// Blocks consisting entirely of trials below k likewise always
	// complete and merge, so the checkpoint flushed on the error path
	// holds every finished block below the failure.
	const noFailure = int64(1<<63 - 1)
	var firstBad atomic.Int64
	firstBad.Store(noFailure)
	type trialError struct {
		trial int
		err   error
	}
	var (
		errMu    sync.Mutex
		failures []trialError
	)
	record := func(trial int, err error) {
		for {
			cur := firstBad.Load()
			if int64(trial) >= cur || firstBad.CompareAndSwap(cur, int64(trial)) {
				break
			}
		}
		errMu.Lock()
		failures = append(failures, trialError{trial: trial, err: err})
		errMu.Unlock()
	}

	submit := func(b int, shard SinkShard) {
		mergeMu.Lock()
		defer mergeMu.Unlock()
		if mergeErr != nil {
			return
		}
		before := mergedTrials
		pending[b] = shard
		for {
			sh, ok := pending[nextBlock]
			if !ok {
				break
			}
			delete(pending, nextBlock)
			if err := sink.Merge(sh); err != nil {
				mergeErr = err
				haltFlag.Store(true)
				return
			}
			nextBlock++
			mergedTrials = nextBlock * B
			if mergedTrials > limit {
				mergedTrials = limit
			}
		}
		ckpted := false
		if ck != nil && mergedTrials < limit && mergedTrials-lastCkpt >= ck.Interval {
			if err := c.writeSinkFile(ck.Path, sink.(PortableSink), 0, mergedTrials); err != nil {
				mergeErr = err
				haltFlag.Store(true)
				return
			}
			lastCkpt = mergedTrials
			ckpted = true
		}
		if mergedTrials > before || ckpted {
			// Under mergeMu by design: updates arrive in merged-prefix
			// order, so sidecar writers never see progress move backwards.
			c.notify(ProgressUpdate{First: first, Limit: limit, Merged: mergedTrials,
				State: RunStateRunning, Checkpointed: ckpted})
		}
		if haltAt > 0 && mergedTrials >= haltAt {
			haltFlag.Store(true)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var obs Observer
			if c.ObserverFactory != nil {
				obs = c.ObserverFactory(w)
			}
			eng, err := NewEngine(c.Scenario)
			if err != nil {
				// Attribute construction errors to the worker's first
				// trial so they order deterministically with trial errors.
				record((firstBlock+w)*B, err)
				return
			}
			eng.Observe(obs)
			eng.Control(c.ControllerFactory)
			for b := firstBlock + w; b < endBlock; b += workers {
				if haltFlag.Load() {
					return
				}
				lo := b * B
				hi := lo + B
				if hi > limit {
					hi = limit
				}
				shard := sink.Shard()
				for i := lo; i < hi; i++ {
					if firstBad.Load() < int64(i) {
						return
					}
					if c.noEngineReuse {
						eng, err = NewEngine(c.Scenario)
						if err != nil {
							record(i, err)
							return
						}
						eng.Observe(obs)
						eng.Control(c.ControllerFactory)
					}
					if c.TrialStart != nil {
						c.TrialStart(w, i)
					}
					r, err := eng.Run(c.Seed.Trial(i))
					if err != nil {
						record(i, fmt.Errorf("trial %d: %w", i, err))
						return
					}
					shard.Consume(i, &r)
					if c.TrialDone != nil {
						c.TrialDone(r)
					}
				}
				submit(b, shard)
			}
		}(w)
	}
	wg.Wait()

	if mergeErr != nil {
		c.notify(ProgressUpdate{First: first, Limit: limit, Merged: mergedTrials,
			State: RunStateFailed, Final: true, Err: mergeErr})
		return false, mergeErr
	}
	if len(failures) > 0 {
		worst := failures[0]
		for _, f := range failures[1:] {
			if f.trial < worst.trial {
				worst = f
			}
		}
		// Flush the finished prefix before reporting, so the fail-fast
		// contract loses no completed work. The final progress update
		// mirrors the same contract: it records the partial state.
		c.notify(ProgressUpdate{First: first, Limit: limit, Merged: mergedTrials,
			State: RunStateFailed, Final: true, Err: worst.err})
		if ferr := flushFinal(mergedTrials); ferr != nil {
			return false, fmt.Errorf("%w (and checkpoint flush failed: %v)", worst.err, ferr)
		}
		return false, worst.err
	}
	if haltFlag.Load() {
		c.notify(ProgressUpdate{First: first, Limit: limit, Merged: mergedTrials,
			State: RunStateHalted, Final: true})
		if err := flushFinal(mergedTrials); err != nil {
			return false, err
		}
		return true, nil
	}
	if err := flushFinal(limit); err != nil {
		c.notify(ProgressUpdate{First: first, Limit: limit, Merged: limit,
			State: RunStateFailed, Final: true, Err: err})
		return false, err
	}
	return false, nil
}

// runRange executes trials [first, first+len(results)) of the scenario,
// storing trial first+k into results[k]. failBuf must hold
// len(results)*NumLevels ints; it receives each trial's per-severity
// failure counts (results alias it). The campaign must already be
// validated. Seeding stays per-absolute-trial (Seed.Trial(first+k)), so
// splitting a campaign into ranges — as the paired CRN runner's
// sequential batches do — reproduces exactly the trials a single
// full-range run would produce.
func (c Campaign) runRange(first int, results []TrialResult, failBuf []int) error {
	n := len(results)
	if n == 0 {
		return nil
	}
	L := c.Scenario.System.NumLevels()
	workers := c.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	// A failed trial poisons the whole campaign, so it cancels the
	// remaining trials on every worker instead of letting them burn
	// through the full campaign before Run can report it. Cancellation is
	// by trial index, not a plain flag: firstBad holds the lowest failing
	// trial seen so far, and a worker skips trial i only when some trial
	// BELOW i has failed. The worker owning the globally lowest failing
	// trial k therefore always reaches and records k (its earlier trials
	// precede k and cannot be cancelled by errors at or above k), so the
	// error Run returns is the error of the lowest-index failing trial —
	// deterministic for a given Seed regardless of Workers or scheduling.
	const noFailure = int64(1<<63 - 1)
	var firstBad atomic.Int64
	firstBad.Store(noFailure)
	type trialError struct {
		trial int
		err   error
	}
	var (
		errMu    sync.Mutex
		failures []trialError
	)
	record := func(trial int, err error) {
		for {
			cur := firstBad.Load()
			if int64(trial) >= cur || firstBad.CompareAndSwap(cur, int64(trial)) {
				break
			}
		}
		errMu.Lock()
		failures = append(failures, trialError{trial: trial, err: err})
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var obs Observer
			if c.ObserverFactory != nil {
				obs = c.ObserverFactory(w)
			}
			eng, err := NewEngine(c.Scenario)
			if err != nil {
				// Attribute construction errors to the worker's first
				// trial so they order deterministically with trial errors.
				record(first+w, err)
				return
			}
			eng.Observe(obs)
			eng.Control(c.ControllerFactory)
			for rel := w; rel < n; rel += workers {
				i := first + rel
				if firstBad.Load() < int64(i) {
					return
				}
				if c.noEngineReuse {
					eng, err = NewEngine(c.Scenario)
					if err != nil {
						record(i, err)
						return
					}
					eng.Observe(obs)
					eng.Control(c.ControllerFactory)
				}
				if c.TrialStart != nil {
					c.TrialStart(w, i)
				}
				r, err := eng.Run(c.Seed.Trial(i))
				if err != nil {
					record(i, fmt.Errorf("trial %d: %w", i, err))
					return
				}
				fails := failBuf[rel*L : (rel+1)*L]
				copy(fails, r.Failures)
				r.Failures = fails
				results[rel] = r
				if c.TrialDone != nil {
					c.TrialDone(r)
				}
			}
		}(w)
	}
	wg.Wait()
	if len(failures) > 0 {
		worst := failures[0]
		for _, f := range failures[1:] {
			if f.trial < worst.trial {
				worst = f
			}
		}
		return worst.err
	}
	return nil
}

// aggregate folds per-trial results into a CampaignResult, exactly as a
// single Campaign.Run would: trial order, Welford accumulation order and
// normalization are all fixed, so any runner that produced the same
// TrialResults — batched or not — aggregates bitwise-identically.
func (c Campaign) aggregate(results []TrialResult) CampaignResult {
	return aggregateResults(c.Scenario.System.NumLevels(), results)
}

// aggregateResults is the order-fixed sequential fold behind aggregate,
// shared with ExactSink.Result (which reconstructs the same ordered
// trial sequence and therefore the same bits).
func aggregateResults(L int, results []TrialResult) CampaignResult {
	out := CampaignResult{Trials: len(results)}
	var eff, wall stats.Sample
	out.MeanFailures = make([]float64, L)
	out.Efficiencies = make([]float64, len(results))
	for i := range results {
		r := &results[i]
		eff.Add(r.Efficiency)
		wall.Add(r.WallTime)
		out.Efficiencies[i] = r.Efficiency
		out.MeanBreakdown.Add(r.Breakdown)
		if r.Completed {
			out.Completed++
		}
		for s := 0; s < L; s++ {
			out.MeanFailures[s] += float64(r.Failures[s])
		}
		out.MeanScratchRestarts += float64(r.ScratchRestarts)
	}
	n := float64(len(results))
	out.MeanBreakdown.Scale(1 / n)
	for s := range out.MeanFailures {
		out.MeanFailures[s] /= n
	}
	out.MeanScratchRestarts /= n
	out.Efficiency = stats.Summarize(&eff)
	out.WallTime = stats.Summarize(&wall)
	if total := out.MeanBreakdown.Total(); total > 0 {
		out.BreakdownShare = out.MeanBreakdown
		out.BreakdownShare.Scale(1 / total)
	}
	return out
}
