package sim

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/stats"
)

// CampaignSink is the streaming aggregation API of the campaign runner:
// instead of materializing every TrialResult, Run feeds results through
// a sink and asks it for the final CampaignResult. The runner's
// contract makes sink output deterministic for any worker count:
//
//   - The campaign's trial range is partitioned into fixed-size blocks
//     (Campaign.Block trials each; the partition depends only on the
//     trial indices, never on Workers or scheduling).
//   - Shard() builds one accumulator per block. It is the only method
//     that may be called concurrently.
//   - Consume is called for each trial of the block in ascending trial
//     order, from a single worker goroutine.
//   - Merge folds completed shards into the sink in ascending block
//     order, from one goroutine at a time, and may recycle the shard.
//   - Result finalizes after every block has merged.
//
// A sink whose Merge and Consume folds are order-deterministic (all of
// the implementations here) therefore produces bitwise-identical
// results regardless of Workers — the same contract CampaignResult
// always had, now extended to constant-memory aggregation, campaign
// checkpoint/resume, and multi-process shard merges.
type CampaignSink interface {
	// Shard returns an empty accumulator for one trial block. Safe for
	// concurrent use; every other method is called from one goroutine
	// at a time.
	Shard() SinkShard
	// Merge folds a completed shard into the sink. Shards arrive in
	// ascending block order; the sink owns the shard afterwards (it may
	// recycle it through Shard).
	Merge(SinkShard) error
	// Result finalizes the aggregate over every consumed trial.
	Result() (CampaignResult, error)
}

// SinkShard accumulates the trials of one scheduling block.
type SinkShard interface {
	// Consume absorbs trial i's result. r and r.Failures are only valid
	// during the call — implementations copy what they keep.
	Consume(trial int, r *TrialResult)
}

// PortableSink is a CampaignSink whose merged state can be serialized —
// the extension campaign checkpointing and multi-process sharding build
// on. MarshalState must capture the folded state bit-exactly, so that
// save → load → continue reproduces an uninterrupted run.
type PortableSink interface {
	CampaignSink
	// Kind tags the serialized format ("exact", "stream").
	Kind() string
	// MarshalState serializes the sink's merged state.
	MarshalState() ([]byte, error)
	// UnmarshalState replaces the sink's state with a serialized one.
	UnmarshalState([]byte) error
	// MergeSink folds another sink of the same kind into this one. The
	// argument must cover the trial range immediately following this
	// sink's (shard files merge in ascending range order).
	MergeSink(CampaignSink) error
}

// NewSink instantiates a portable sink by kind — the inverse of
// PortableSink.Kind, used when loading checkpoint and shard files.
func NewSink(kind string) (PortableSink, error) {
	switch kind {
	case "exact":
		return NewExactSink(), nil
	case "stream":
		return NewStreamSink(), nil
	default:
		return nil, fmt.Errorf("sim: unknown sink kind %q", kind)
	}
}

// ---------------------------------------------------------------------
// ExactSink

// ExactSink is the exact-slice sink: it reconstructs the full ordered
// TrialResult sequence and aggregates it exactly as the historical
// Campaign.Run did, so its CampaignResult — including the opt-in
// Efficiencies slice — is bitwise identical to the pre-sink runner.
// It is the default sink (Campaign.Sink == nil) and the one to request
// when a caller needs per-trial efficiencies (Welch/paired
// significance, exact quantiles). Memory is O(trials); use StreamSink
// for constant-memory mega-campaigns.
type ExactSink struct {
	levels  int
	results []TrialResult
	fails   []int // flat per-trial severity counts; results alias it

	mu   sync.Mutex
	free []*exactShard
}

// NewExactSink returns an empty exact-slice sink.
func NewExactSink() *ExactSink { return &ExactSink{} }

type exactShard struct {
	results []TrialResult
	fails   []int
}

func (s *exactShard) Consume(trial int, r *TrialResult) {
	rc := *r
	s.fails = append(s.fails, r.Failures...)
	rc.Failures = s.fails[len(s.fails)-len(r.Failures):]
	s.results = append(s.results, rc)
}

// Shard implements CampaignSink.
func (s *ExactSink) Shard() SinkShard {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		sh := s.free[n-1]
		s.free = s.free[:n-1]
		sh.results, sh.fails = sh.results[:0], sh.fails[:0]
		return sh
	}
	return &exactShard{}
}

// Reserve pre-sizes the sink for a known campaign (runner hint).
func (s *ExactSink) Reserve(trials, levels int) {
	s.levels = levels
	if cap(s.results) < trials {
		s.results = append(make([]TrialResult, 0, trials), s.results...)
	}
	if cap(s.fails) < trials*levels {
		// Growing the flat buffer later would strand earlier backing
		// arrays (results keep pointing at copied-out data — correct,
		// but wasteful); reserving avoids that on the common path.
		fails := make([]int, len(s.fails), trials*levels)
		copy(fails, s.fails)
		s.rebase(fails)
	}
}

// rebase moves the flat failure buffer and repoints every stored
// result's Failures slice into it.
func (s *ExactSink) rebase(fails []int) {
	off := 0
	for i := range s.results {
		L := len(s.results[i].Failures)
		s.results[i].Failures = fails[off : off+L]
		off += L
	}
	s.fails = fails
}

// Merge implements CampaignSink.
func (s *ExactSink) Merge(shard SinkShard) error {
	sh, ok := shard.(*exactShard)
	if !ok {
		return fmt.Errorf("sim: ExactSink.Merge got foreign shard %T", shard)
	}
	for i := range sh.results {
		r := sh.results[i]
		if s.levels == 0 {
			s.levels = len(r.Failures)
		}
		s.fails = append(s.fails, r.Failures...)
		r.Failures = s.fails[len(s.fails)-len(r.Failures):]
		s.results = append(s.results, r)
	}
	s.mu.Lock()
	s.free = append(s.free, sh)
	s.mu.Unlock()
	return nil
}

// Results exposes the reconstructed per-trial results in trial order
// (entry 0 is the first trial of the sink's range).
func (s *ExactSink) Results() []TrialResult { return s.results }

// Result implements CampaignSink.
func (s *ExactSink) Result() (CampaignResult, error) {
	if len(s.results) == 0 {
		return CampaignResult{}, fmt.Errorf("sim: exact sink consumed no trials")
	}
	return aggregateResults(s.levels, s.results), nil
}

// Kind implements PortableSink.
func (s *ExactSink) Kind() string { return "exact" }

// exactState is the serialized ExactSink: the full ordered trial list.
// Floats travel as IEEE-754 bit patterns so a save/load round trip is
// bitwise exact.
type exactState struct {
	Levels int               `json:"levels"`
	Trials []exactTrialState `json:"trials"`
}

type exactTrialState struct {
	WallBits     uint64 `json:"w"`
	Completed    bool   `json:"c,omitempty"`
	ProgressBits uint64 `json:"p"`
	EffBits      uint64 `json:"e"`
	Breakdown    [6]uint64
	Failures     []int `json:"f"`
	Scratch      int   `json:"s,omitempty"`
}

// MarshalState implements PortableSink.
func (s *ExactSink) MarshalState() ([]byte, error) {
	st := exactState{Levels: s.levels, Trials: make([]exactTrialState, len(s.results))}
	for i := range s.results {
		st.Trials[i] = packTrial(&s.results[i])
	}
	return json.Marshal(st)
}

// UnmarshalState implements PortableSink.
func (s *ExactSink) UnmarshalState(data []byte) error {
	var st exactState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	s.levels = st.Levels
	s.results = make([]TrialResult, len(st.Trials))
	s.fails = make([]int, 0, len(st.Trials)*st.Levels)
	for i := range st.Trials {
		r := unpackTrial(&st.Trials[i])
		s.fails = append(s.fails, r.Failures...)
		r.Failures = s.fails[len(s.fails)-len(r.Failures):]
		s.results[i] = r
	}
	return nil
}

// MergeSink implements PortableSink.
func (s *ExactSink) MergeSink(o CampaignSink) error {
	os, ok := o.(*ExactSink)
	if !ok {
		return fmt.Errorf("sim: ExactSink.MergeSink got %T", o)
	}
	if s.levels == 0 {
		s.levels = os.levels
	}
	for i := range os.results {
		r := os.results[i]
		s.fails = append(s.fails, r.Failures...)
		r.Failures = s.fails[len(s.fails)-len(r.Failures):]
		s.results = append(s.results, r)
	}
	return nil
}

func packTrial(r *TrialResult) exactTrialState {
	b := r.Breakdown
	return exactTrialState{
		WallBits:     floatBits(r.WallTime),
		Completed:    r.Completed,
		ProgressBits: floatBits(r.Progress),
		EffBits:      floatBits(r.Efficiency),
		Breakdown: [6]uint64{
			floatBits(b.UsefulCompute), floatBits(b.LostCompute),
			floatBits(b.CheckpointOK), floatBits(b.CheckpointFail),
			floatBits(b.RestartOK), floatBits(b.RestartFail),
		},
		Failures: r.Failures,
		Scratch:  r.ScratchRestarts,
	}
}

func unpackTrial(t *exactTrialState) TrialResult {
	return TrialResult{
		WallTime:   bitsFloat(t.WallBits),
		Completed:  t.Completed,
		Progress:   bitsFloat(t.ProgressBits),
		Efficiency: bitsFloat(t.EffBits),
		Breakdown: Breakdown{
			UsefulCompute: bitsFloat(t.Breakdown[0]), LostCompute: bitsFloat(t.Breakdown[1]),
			CheckpointOK: bitsFloat(t.Breakdown[2]), CheckpointFail: bitsFloat(t.Breakdown[3]),
			RestartOK: bitsFloat(t.Breakdown[4]), RestartFail: bitsFloat(t.Breakdown[5]),
		},
		Failures:        t.Failures,
		ScratchRestarts: t.Scratch,
	}
}

// ---------------------------------------------------------------------
// StreamSink

// StreamSink aggregates a campaign in constant memory: per-trial
// efficiencies and wall times flow into stats.Sketch log-bucket
// histograms (exact moments and min/max, bucket-interpolated
// quantiles), breakdown categories into float sums folded in block
// order, and failure counts into integer sums. Its CampaignResult
// leaves Efficiencies nil and carries the sketches instead
// (CampaignResult.EfficiencySketch / WallTimeSketch); the result is
// bitwise deterministic for any worker count, but not bit-identical to
// the exact sink's (the summation tree differs). Memory is independent
// of the trial count — the sink that makes 10⁷+-trial campaigns fit.
type StreamSink struct {
	agg streamAgg

	mu   sync.Mutex
	free []*streamShard
}

// NewStreamSink returns an empty streaming sink.
func NewStreamSink() *StreamSink { return &StreamSink{agg: newStreamAgg()} }

// streamAgg is the merged aggregation state shared by the sink and its
// shards.
type streamAgg struct {
	eff       *stats.Sketch
	wall      *stats.Sketch
	breakdown Breakdown
	failures  []int64
	completed int
	scratch   int64
	trials    int
}

func newStreamAgg() streamAgg {
	return streamAgg{eff: stats.NewSketch(), wall: stats.NewSketch()}
}

func (a *streamAgg) consume(r *TrialResult) {
	a.eff.Observe(r.Efficiency)
	a.wall.Observe(r.WallTime)
	a.breakdown.Add(r.Breakdown)
	if a.failures == nil {
		a.failures = make([]int64, len(r.Failures))
	}
	for s, f := range r.Failures {
		a.failures[s] += int64(f)
	}
	if r.Completed {
		a.completed++
	}
	a.scratch += int64(r.ScratchRestarts)
	a.trials++
}

func (a *streamAgg) merge(o *streamAgg) error {
	if err := a.eff.Merge(o.eff); err != nil {
		return err
	}
	if err := a.wall.Merge(o.wall); err != nil {
		return err
	}
	a.breakdown.Add(o.breakdown)
	if a.failures == nil && o.failures != nil {
		a.failures = make([]int64, len(o.failures))
	}
	for s := range o.failures {
		a.failures[s] += o.failures[s]
	}
	a.completed += o.completed
	a.scratch += o.scratch
	a.trials += o.trials
	return nil
}

type streamShard struct{ agg streamAgg }

func (s *streamShard) Consume(trial int, r *TrialResult) { s.agg.consume(r) }

// Shard implements CampaignSink.
func (s *StreamSink) Shard() SinkShard {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.free); n > 0 {
		sh := s.free[n-1]
		s.free = s.free[:n-1]
		sh.agg.eff.Reset()
		sh.agg.wall.Reset()
		sh.agg.breakdown = Breakdown{}
		for i := range sh.agg.failures {
			sh.agg.failures[i] = 0
		}
		sh.agg.completed, sh.agg.scratch, sh.agg.trials = 0, 0, 0
		return sh
	}
	return &streamShard{agg: newStreamAgg()}
}

// Merge implements CampaignSink.
func (s *StreamSink) Merge(shard SinkShard) error {
	sh, ok := shard.(*streamShard)
	if !ok {
		return fmt.Errorf("sim: StreamSink.Merge got foreign shard %T", shard)
	}
	if err := s.agg.merge(&sh.agg); err != nil {
		return err
	}
	s.mu.Lock()
	s.free = append(s.free, sh)
	s.mu.Unlock()
	return nil
}

// Result implements CampaignSink.
func (s *StreamSink) Result() (CampaignResult, error) {
	a := &s.agg
	if a.trials == 0 {
		return CampaignResult{}, fmt.Errorf("sim: stream sink consumed no trials")
	}
	out := CampaignResult{
		Efficiency:       a.eff.Summary(),
		WallTime:         a.wall.Summary(),
		Completed:        a.completed,
		Trials:           a.trials,
		EfficiencySketch: a.eff,
		WallTimeSketch:   a.wall,
	}
	n := float64(a.trials)
	out.MeanBreakdown = a.breakdown
	out.MeanBreakdown.Scale(1 / n)
	out.MeanFailures = make([]float64, len(a.failures))
	for i, f := range a.failures {
		out.MeanFailures[i] = float64(f) / n
	}
	out.MeanScratchRestarts = float64(a.scratch) / n
	if total := out.MeanBreakdown.Total(); total > 0 {
		out.BreakdownShare = out.MeanBreakdown
		out.BreakdownShare.Scale(1 / total)
	}
	return out, nil
}

// Kind implements PortableSink.
func (s *StreamSink) Kind() string { return "stream" }

// streamState is the serialized StreamSink (bit-exact floats).
type streamState struct {
	Eff       *stats.Sketch `json:"eff"`
	Wall      *stats.Sketch `json:"wall"`
	Breakdown [6]uint64     `json:"breakdown"`
	Failures  []int64       `json:"failures"`
	Completed int           `json:"completed"`
	Scratch   int64         `json:"scratch"`
	Trials    int           `json:"trials"`
}

// MarshalState implements PortableSink.
func (s *StreamSink) MarshalState() ([]byte, error) {
	b := s.agg.breakdown
	return json.Marshal(streamState{
		Eff: s.agg.eff, Wall: s.agg.wall,
		Breakdown: [6]uint64{
			floatBits(b.UsefulCompute), floatBits(b.LostCompute),
			floatBits(b.CheckpointOK), floatBits(b.CheckpointFail),
			floatBits(b.RestartOK), floatBits(b.RestartFail),
		},
		Failures:  s.agg.failures,
		Completed: s.agg.completed,
		Scratch:   s.agg.scratch,
		Trials:    s.agg.trials,
	})
}

// UnmarshalState implements PortableSink.
func (s *StreamSink) UnmarshalState(data []byte) error {
	var st streamState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if st.Eff == nil || st.Wall == nil {
		return fmt.Errorf("sim: stream sink state lacks sketches")
	}
	s.agg = streamAgg{
		eff: st.Eff, wall: st.Wall,
		breakdown: Breakdown{
			UsefulCompute: bitsFloat(st.Breakdown[0]), LostCompute: bitsFloat(st.Breakdown[1]),
			CheckpointOK: bitsFloat(st.Breakdown[2]), CheckpointFail: bitsFloat(st.Breakdown[3]),
			RestartOK: bitsFloat(st.Breakdown[4]), RestartFail: bitsFloat(st.Breakdown[5]),
		},
		failures:  st.Failures,
		completed: st.Completed,
		scratch:   st.Scratch,
		trials:    st.Trials,
	}
	return nil
}

// MergeSink implements PortableSink.
func (s *StreamSink) MergeSink(o CampaignSink) error {
	os, ok := o.(*StreamSink)
	if !ok {
		return fmt.Errorf("sim: StreamSink.MergeSink got %T", o)
	}
	return s.agg.merge(&os.agg)
}
