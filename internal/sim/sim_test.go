package sim

import (
	"math"
	"math/rand/v2"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/dist"

	"repro/internal/markov"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/system"
)

func twoLevel(mtbf, tb float64) *system.System {
	return &system.System{
		Name:         "sim2",
		MTBF:         mtbf,
		BaselineTime: tb,
		Levels: []system.Level{
			{Checkpoint: 0.333, Restart: 0.333, SeverityProb: 0.833},
			{Checkpoint: 0.833, Restart: 0.833, SeverityProb: 0.167},
		},
	}
}

func planBoth(tau0 float64, n1 int) pattern.Plan {
	return pattern.Plan{Tau0: tau0, Counts: []int{n1}, Levels: []int{1, 2}}
}

func seed(name string) rng.Seed {
	return rng.Campaign(1234, "simtest").Scenario(name)
}

func TestFailureFreeRun(t *testing.T) {
	sys := twoLevel(1e15, 100)
	cfg := Scenario{System: sys, Plan: planBoth(10, 1)}
	res, err := RunTrial(cfg, seed("free").Trial(0).Rand())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("failure-free run did not complete")
	}
	// 10 intervals of 10; pattern (ck1, ck2) repeating; the 10th
	// interval completes the app before its checkpoint. 9 checkpoints:
	// positions 1..9 → 5×ck1 + 4×ck2.
	wantCkpt := 5*0.333 + 4*0.833
	if math.Abs(res.Breakdown.CheckpointOK-wantCkpt) > 1e-9 {
		t.Fatalf("checkpoint time = %v, want %v", res.Breakdown.CheckpointOK, wantCkpt)
	}
	if math.Abs(res.WallTime-(100+wantCkpt)) > 1e-9 {
		t.Fatalf("wall = %v", res.WallTime)
	}
	if res.Breakdown.LostCompute != 0 || res.Breakdown.RestartOK != 0 {
		t.Fatalf("unexpected overhead: %+v", res.Breakdown)
	}
	if res.TotalFailures() != 0 {
		t.Fatalf("failures = %v", res.Failures)
	}
}

func TestBreakdownSumsToWallTime(t *testing.T) {
	sys := twoLevel(10, 300)
	cfg := Scenario{System: sys, Plan: planBoth(2, 3)}
	s := seed("sum")
	for i := 0; i < 50; i++ {
		res, err := RunTrial(cfg, s.Trial(i).Rand())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Breakdown.Total()-res.WallTime) > 1e-6 {
			t.Fatalf("trial %d: breakdown %v != wall %v", i, res.Breakdown.Total(), res.WallTime)
		}
		if res.Completed && math.Abs(res.Breakdown.UsefulCompute-300) > 1e-6 {
			t.Fatalf("trial %d: useful compute %v != T_B", i, res.Breakdown.UsefulCompute)
		}
		if res.Efficiency <= 0 || res.Efficiency > 1 {
			t.Fatalf("trial %d: efficiency %v", i, res.Efficiency)
		}
	}
}

func TestAgreementWithExactMarkovChain(t *testing.T) {
	// Steady-state cross-validation: the simulator's mean wall time
	// over a long application must match the exact Markov period chain
	// under identical (Retry) semantics.
	sys := twoLevel(24, 1440)
	plan := planBoth(3, 2)
	chain, err := buildRetryChain(sys, plan)
	if err != nil {
		t.Fatal(err)
	}
	periodTime, err := chain.ExpectedPeriodTime()
	if err != nil {
		t.Fatal(err)
	}
	wantWall := periodTime * sys.BaselineTime / chain.Work()

	camp := Campaign{
		Scenario: Scenario{System: sys, Plan: plan},
		Trials:   600,
		Seed:     seed("markov-x"),
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != res.Trials {
		t.Fatalf("only %d/%d trials completed", res.Completed, res.Trials)
	}
	rel := math.Abs(res.WallTime.Mean-wantWall) / wantWall
	if rel > 0.03 {
		t.Fatalf("sim mean wall %v vs markov %v (rel %.3f)", res.WallTime.Mean, wantWall, rel)
	}
}

// buildRetryChain mirrors moody.BuildChain but with Retry semantics, to
// match the simulator's default policy.
func buildRetryChain(sys *system.System, plan pattern.Plan) (*markov.Chain, error) {
	c := &markov.Chain{Policy: markov.Retry}
	for sev := 1; sev <= sys.NumLevels(); sev++ {
		c.Rates = append(c.Rates, sys.LevelRate(sev))
		c.RestartTime = append(c.RestartTime, sys.Levels[sev-1].Restart)
	}
	n := plan.PeriodIntervals()
	for k := 0; k < n; k++ {
		c.Segments = append(c.Segments, markov.Segment{Kind: markov.Compute, Duration: plan.Tau0})
		lvl := plan.Levels[plan.LevelAfterInterval(k)]
		c.Segments = append(c.Segments, markov.Segment{
			Kind: markov.Checkpoint, Duration: sys.Levels[lvl-1].Checkpoint, Level: lvl,
		})
	}
	return c, nil
}

func TestFailureCountsMatchPoissonRates(t *testing.T) {
	// Mean failures per severity must equal rate × mean wall time.
	sys := twoLevel(12, 720)
	camp := Campaign{
		Scenario: Scenario{System: sys, Plan: planBoth(2, 3)},
		Trials:   400,
		Seed:     seed("poisson"),
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for sev := 1; sev <= 2; sev++ {
		want := sys.LevelRate(sev) * res.WallTime.Mean
		got := res.MeanFailures[sev-1]
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("severity %d: mean failures %v, want ~%v", sev, got, want)
		}
	}
}

func TestSeverityTwoRollsPastLevelOne(t *testing.T) {
	// With identical total rates, severity-2-only failures must hurt
	// more than severity-1-only failures (they roll back to the rarer
	// level-2 checkpoints and pay the bigger restart).
	mk := func(p1 float64) *system.System {
		s := twoLevel(10, 720)
		s.Levels[0].SeverityProb = p1
		s.Levels[1].SeverityProb = 1 - p1
		return s
	}
	plan := planBoth(2, 5)
	run := func(sys *system.System, name string) float64 {
		camp := Campaign{Scenario: Scenario{System: sys, Plan: plan}, Trials: 150, Seed: seed(name)}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Efficiency.Mean
	}
	effSev1 := run(mk(0.999999), "sev1")
	effSev2 := run(mk(0.000001), "sev2")
	if !(effSev2 < effSev1) {
		t.Fatalf("severity-2 failures should cost more: %v vs %v", effSev2, effSev1)
	}
}

func TestScratchRestartWhenTopLevelSkipped(t *testing.T) {
	// Plan uses only level 1; severity-2 failures have no checkpoint to
	// read and must restart the application from zero progress.
	sys := twoLevel(30, 60)
	plan := pattern.Plan{Tau0: 5, Levels: []int{1}}
	camp := Campaign{Scenario: Scenario{System: sys, Plan: plan}, Trials: 300, Seed: seed("scratch")}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanScratchRestarts <= 0 {
		t.Fatal("expected scratch restarts")
	}
	if res.Completed == 0 {
		t.Fatal("no trial completed")
	}
	// No level-2 restarts can ever be charged.
	if res.MeanBreakdown.RestartOK > 0 {
		// level-1 restarts exist; ensure they are cheap ones only by
		// bounding each restart at R_1... indirect: mean restart time
		// per failure must be <= R_1 plus slack.
		perFailure := res.MeanBreakdown.RestartOK / math.Max(res.MeanFailures[0], 1e-9)
		if perFailure > sys.Levels[0].Restart*1.5 {
			t.Fatalf("restart cost per severity-1 failure %v too high", perFailure)
		}
	}
}

func TestHopelessSystemHitsCap(t *testing.T) {
	// Checkpoints cost many MTBFs: the run cannot finish and must stop
	// at the wall cap with tiny efficiency.
	sys := &system.System{
		Name: "hopeless", MTBF: 0.5, BaselineTime: 50,
		Levels: []system.Level{
			{Checkpoint: 5, Restart: 5, SeverityProb: 0.5},
			{Checkpoint: 50, Restart: 50, SeverityProb: 0.5},
		},
	}
	cfg := Scenario{System: sys, Plan: planBoth(1, 1), MaxWallFactor: 20}
	res, err := RunTrial(cfg, seed("cap").Trial(0).Rand())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("hopeless run completed")
	}
	if math.Abs(res.WallTime-20*50) > 1e-6 {
		t.Fatalf("wall = %v, want cap 1000", res.WallTime)
	}
	if res.Efficiency > 0.05 {
		t.Fatalf("efficiency = %v", res.Efficiency)
	}
	if math.Abs(res.Breakdown.Total()-res.WallTime) > 1e-6 {
		t.Fatalf("breakdown %v != wall %v", res.Breakdown.Total(), res.WallTime)
	}
}

func TestEscalatePolicyCostsAtLeastRetry(t *testing.T) {
	sys := twoLevel(4, 360)
	plan := planBoth(1, 3)
	run := func(p RestartPolicy, name string) float64 {
		camp := Campaign{Scenario: Scenario{System: sys, Plan: plan, Policy: p}, Trials: 200, Seed: seed(name)}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Efficiency.Mean
	}
	retry := run(RetryPolicy, "retry-pol")
	esc := run(EscalatePolicy, "esc-pol")
	if esc > retry*1.02 {
		t.Fatalf("escalation should not beat retry: %v vs %v", esc, retry)
	}
}

func TestCampaignDeterminism(t *testing.T) {
	camp := Campaign{
		Scenario: Scenario{System: twoLevel(15, 200), Plan: planBoth(2, 2)},
		Trials:   50,
		Seed:     seed("det"),
	}
	camp.Workers = 1
	a, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	camp.Workers = 8
	b, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Efficiency.Mean != b.Efficiency.Mean || a.WallTime.Std != b.WallTime.Std {
		t.Fatalf("worker count changed results: %+v vs %+v", a.Efficiency, b.Efficiency)
	}
	for i := range a.Efficiencies {
		if a.Efficiencies[i] != b.Efficiencies[i] {
			t.Fatalf("trial %d efficiency differs", i)
		}
	}
}

func TestCampaignSeedsDiffer(t *testing.T) {
	cfg := Scenario{System: twoLevel(15, 200), Plan: planBoth(2, 2)}
	a, err := Campaign{Scenario: cfg, Trials: 30, Seed: seed("s1")}.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign{Scenario: cfg, Trials: 30, Seed: seed("s2")}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Efficiency.Mean == b.Efficiency.Mean {
		t.Fatal("different seeds produced identical campaigns")
	}
	// But statistically indistinguishable.
	sig, err := stats.SignificantlyGreater(a.Efficiency, b.Efficiency, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if sig {
		t.Fatalf("same scenario flagged significantly different: %+v vs %+v", a.Efficiency, b.Efficiency)
	}
}

func TestBreakdownShareSumsToOne(t *testing.T) {
	camp := Campaign{
		Scenario: Scenario{System: twoLevel(8, 300), Plan: planBoth(1.5, 4)},
		Trials:   100,
		Seed:     seed("share"),
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.BreakdownShare.Total(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("breakdown share total = %v", got)
	}
	if res.BreakdownShare.UsefulCompute <= 0 || res.BreakdownShare.UsefulCompute >= 1 {
		t.Fatalf("useful share = %v", res.BreakdownShare.UsefulCompute)
	}
}

type collectObserver struct{ events []Event }

func (c *collectObserver) Observe(e Event) { c.events = append(c.events, e) }

func TestObserverStream(t *testing.T) {
	obs := &collectObserver{}
	eng, err := NewEngine(Scenario{System: twoLevel(20, 60), Plan: planBoth(5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Observe(obs)
	res, err := eng.Run(seed("obs").Trial(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.events) == 0 {
		t.Fatal("no events observed")
	}
	last := obs.events[len(obs.events)-1]
	if res.Completed && last.Kind != EvComplete {
		t.Fatalf("last event = %v", last.Kind)
	}
	prev := -1.0
	var failures int
	for _, e := range obs.events {
		if e.Time < prev-1e-12 {
			t.Fatalf("event times regress: %v after %v", e.Time, prev)
		}
		prev = e.Time
		if e.Kind == EvFailure {
			failures++
		}
	}
	if failures != res.TotalFailures() {
		t.Fatalf("observer saw %d failures, result has %d", failures, res.TotalFailures())
	}
}

func TestScenarioValidation(t *testing.T) {
	good := Scenario{System: twoLevel(10, 100), Plan: planBoth(1, 1)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.System = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil system accepted")
	}
	bad = good
	bad.Plan.Tau0 = -1
	if err := bad.Validate(); err == nil {
		t.Error("bad plan accepted")
	}
	bad = good
	bad.MaxWallFactor = -2
	if err := bad.Validate(); err == nil {
		t.Error("negative cap accepted")
	}
	if _, err := RunTrial(good, nil); err == nil {
		t.Error("nil rng accepted")
	}
	if _, err := (Campaign{Scenario: good, Trials: 0}).Run(); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestCampaignWorkersValidation(t *testing.T) {
	good := Scenario{System: twoLevel(10, 100), Plan: planBoth(1, 1)}
	if _, err := (Campaign{Scenario: good, Trials: 2, Workers: -1, Seed: seed("w")}).Run(); err == nil {
		t.Error("negative Workers accepted")
	}
	if _, err := (Campaign{Scenario: good, Trials: 2, Workers: 1 << 20, Seed: seed("w")}).Run(); err == nil {
		t.Error("absurd Workers accepted")
	}
	// Workers above Trials is merely clamped, not an error.
	if _, err := (Campaign{Scenario: good, Trials: 2, Workers: 16, Seed: seed("w")}).Run(); err != nil {
		t.Errorf("Workers > Trials rejected: %v", err)
	}
}

func TestStringers(t *testing.T) {
	if EvFailure.String() != "failure" || PhaseRestart.String() != "restart" {
		t.Fatal("stringers wrong")
	}
	if EventKind(99).String() == "" || Phase(99).String() == "" {
		t.Fatal("unknown values must still render")
	}
}

func TestAsyncFlushFailureFreeArithmetic(t *testing.T) {
	// Failure-free async run blocks only for the capture cost at top
	// checkpoints: wall = T_B + (#L1 ckpts + #top captures)·δ1.
	sys := twoLevel(1e15, 100)
	cfg := Scenario{System: sys, Plan: planBoth(10, 1), AsyncTopFlush: true}
	res, err := RunTrial(cfg, seed("async-free").Trial(0).Rand())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	// 9 checkpoints (5×L1 + 4×top), each top blocked at δ1 = 0.333.
	wantCkpt := 9 * 0.333
	if math.Abs(res.Breakdown.CheckpointOK-wantCkpt) > 1e-9 {
		t.Fatalf("checkpoint time = %v, want %v", res.Breakdown.CheckpointOK, wantCkpt)
	}
	if math.Abs(res.WallTime-(100+wantCkpt)) > 1e-9 {
		t.Fatalf("wall = %v", res.WallTime)
	}
	if math.Abs(res.Breakdown.Total()-res.WallTime) > 1e-9 {
		t.Fatal("breakdown does not sum to wall")
	}
}

func TestAsyncFlushCommitsTopLevel(t *testing.T) {
	// After a flush completes, a severity-2 failure must restart from
	// the flushed top-level checkpoint, not from scratch.
	sys := twoLevel(1e15, 1000) // failures injected manually below
	plan := planBoth(10, 0)     // top checkpoint after every interval
	ctl := &scriptedFailures{times: []float64{200}, severities: []int{2}}
	cfg := Scenario{
		System: sys, Plan: plan, AsyncTopFlush: true,
		FailureLaws: ctl.laws(sys),
	}
	res, err := RunTrial(cfg, seed("async-commit").Trial(0).Rand())
	if err != nil {
		t.Fatal(err)
	}
	if res.ScratchRestarts != 0 {
		t.Fatalf("scratch restart despite flushed top checkpoint: %+v", res)
	}
	if res.Failures[1] != 1 {
		t.Fatalf("failures = %v", res.Failures)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
}

func TestAsyncFlushAbortedByQuickFailure(t *testing.T) {
	// A severity-2 failure arriving during the very first flush (top
	// write takes 50 min here) must find NO top-level checkpoint and
	// restart from scratch.
	sys := twoLevel(1e15, 1000)
	sys.Levels[1].Checkpoint = 50
	sys.Levels[1].Restart = 50
	plan := planBoth(10, 0)
	ctl := &scriptedFailures{times: []float64{10.5}, severities: []int{2}}
	cfg := Scenario{
		System: sys, Plan: plan, AsyncTopFlush: true,
		FailureLaws: ctl.laws(sys),
	}
	res, err := RunTrial(cfg, seed("async-abort").Trial(0).Rand())
	if err != nil {
		t.Fatal(err)
	}
	if res.ScratchRestarts != 1 {
		t.Fatalf("expected scratch restart (flush aborted): %+v", res)
	}
}

func TestAsyncBeatsSyncOnPFSHeavySystem(t *testing.T) {
	sys := twoLevel(15, 720)
	sys.Levels[1].Checkpoint = 10
	sys.Levels[1].Restart = 10
	plan := planBoth(3, 3)
	run := func(async bool, name string) float64 {
		camp := Campaign{
			Scenario: Scenario{System: sys, Plan: plan, AsyncTopFlush: async},
			Trials:   150, Seed: seed(name),
		}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Efficiency.Mean
	}
	sync := run(false, "sync-pfs")
	async := run(true, "async-pfs")
	if !(async > sync+0.02) {
		t.Fatalf("async %v should clearly beat sync %v when PFS writes are long", async, sync)
	}
}

func TestAsyncIgnoredForSingleLevelPlan(t *testing.T) {
	sys := twoLevel(30, 120)
	plan := pattern.Plan{Tau0: 10, Levels: []int{2}}
	cfg := Scenario{System: sys, Plan: plan, AsyncTopFlush: true}
	res, err := RunTrial(cfg, seed("async-single").Trial(0).Rand())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Breakdown.Total()-res.WallTime) > 1e-9 {
		t.Fatal("accounting broken for single-level async")
	}
}

// scriptedFailures injects failures at fixed absolute times: severity
// s-specific laws emit the scheduled arrival (as an inter-arrival from
// t=0) and then +Inf.
type scriptedFailures struct {
	times      []float64
	severities []int
}

func (s *scriptedFailures) laws(sys *system.System) []dist.Sampler {
	laws := make([]dist.Sampler, sys.NumLevels())
	for sev := 1; sev <= sys.NumLevels(); sev++ {
		var draws []float64
		prev := 0.0
		for i, tgt := range s.times {
			if s.severities[i] == sev {
				draws = append(draws, tgt-prev)
				prev = tgt
			}
		}
		laws[sev-1] = &fixedDraws{draws: draws}
	}
	return laws
}

type fixedDraws struct {
	draws []float64
	next  int
}

func (f *fixedDraws) Sample(*rand.Rand) float64 {
	if f.next >= len(f.draws) {
		return math.Inf(1)
	}
	v := f.draws[f.next]
	f.next++
	return v
}

func (f *fixedDraws) Mean() float64 { return 0 }

// switchController swaps to a fixed plan at the n-th Replan consult.
type switchController struct {
	after    int
	plan     pattern.Plan
	consults int
	switched bool
}

func (c *switchController) OnFailure(float64, int) {}
func (c *switchController) Replan(now, progress float64) (pattern.Plan, bool) {
	c.consults++
	if c.switched || c.consults < c.after {
		return pattern.Plan{}, false
	}
	c.switched = true
	return c.plan, true
}

// runControlled runs one trial of scn with ctl installed.
func runControlled(t *testing.T, scn Scenario, ctl PlanController, s rng.Seed) (TrialResult, error) {
	t.Helper()
	eng, err := NewEngine(scn)
	if err != nil {
		t.Fatal(err)
	}
	eng.Control(func() PlanController { return ctl })
	return eng.Run(s.Trial(0))
}

func TestControllerPlanSwitchPreservesProgress(t *testing.T) {
	sys := twoLevel(20, 300)
	ctl := &switchController{
		after: 3,
		plan:  pattern.Plan{Tau0: 4, Counts: []int{1}, Levels: []int{1, 2}},
	}
	res, err := runControlled(t, Scenario{System: sys, Plan: planBoth(2, 4)}, ctl, seed("switch"))
	if err != nil {
		t.Fatal(err)
	}
	if !ctl.switched {
		t.Fatal("controller never switched")
	}
	if !res.Completed {
		t.Fatal("switched run did not complete")
	}
	if math.Abs(res.Breakdown.Total()-res.WallTime) > 1e-6 {
		t.Fatal("accounting broken after plan switch")
	}
}

func TestControllerSwitchToNarrowerLevelSet(t *testing.T) {
	// Switching to a plan that only uses level 2 must carry the stored
	// progress for level 2 (SCR commit rule guarantees data there).
	sys := twoLevel(1e15, 100) // no failures: deterministic
	ctl := &switchController{
		after: 2,
		plan:  pattern.Plan{Tau0: 10, Levels: []int{2}},
	}
	res, err := runControlled(t, Scenario{System: sys, Plan: planBoth(10, 0)}, ctl, seed("narrow"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Progress != 100 {
		t.Fatalf("narrowed run wrong: %+v", res)
	}
}

func TestControllerInvalidPlanAbortsTrial(t *testing.T) {
	sys := twoLevel(50, 100)
	ctl := &switchController{
		after: 1,
		plan:  pattern.Plan{Tau0: -1, Levels: []int{1}},
	}
	eng, err := NewEngine(Scenario{System: sys, Plan: planBoth(5, 1)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Control(func() PlanController { return ctl })
	if _, err := eng.Run(seed("badswitch").Trial(0)); err == nil {
		t.Fatal("invalid controller plan accepted")
	}
}

func TestControllerSwitchCancelsPendingFlush(t *testing.T) {
	// Async flush in flight + plan switch: the flush must be dropped
	// without corrupting stores (run simply completes).
	sys := twoLevel(1e15, 200)
	sys.Levels[1].Checkpoint = 30 // long flush window
	ctl := &switchController{
		after: 2,
		plan:  planBoth(20, 1),
	}
	res, err := runControlled(t, Scenario{System: sys, Plan: planBoth(10, 0), AsyncTopFlush: true}, ctl, seed("flushswitch"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if math.Abs(res.Breakdown.Total()-res.WallTime) > 1e-6 {
		t.Fatal("accounting broken")
	}
}

// countingObserver tallies events; one per worker via ObserverFactory.
type countingObserver struct {
	worker int
	events int
	trials int
}

func (o *countingObserver) Observe(e Event) {
	o.events++
	if e.Kind == EvComplete || e.Kind == EvCapped {
		o.trials++
	}
}

func TestCampaignObserverFactoryAndTrialDone(t *testing.T) {
	sys := twoLevel(10, 100)
	var mu sync.Mutex
	var shards []*countingObserver
	var doneTrials int
	var wallSum float64
	camp := Campaign{
		Scenario: Scenario{System: sys, Plan: planBoth(2, 3)},
		Trials:   40,
		Seed:     seed("hooks"),
		ObserverFactory: func(worker int) Observer {
			o := &countingObserver{worker: worker}
			mu.Lock()
			shards = append(shards, o)
			mu.Unlock()
			return o
		},
		TrialDone: func(r TrialResult) {
			mu.Lock()
			doneTrials++
			wallSum += r.WallTime
			mu.Unlock()
		},
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if doneTrials != 40 {
		t.Errorf("TrialDone fired %d times, want 40", doneTrials)
	}
	if math.Abs(wallSum-res.WallTime.Mean*40) > 1e-6*wallSum {
		t.Errorf("TrialDone wall sum %v vs campaign mean*n %v", wallSum, res.WallTime.Mean*40)
	}
	total := 0
	for _, s := range shards {
		total += s.trials
		if s.events == 0 {
			t.Errorf("worker %d shard observed no events", s.worker)
		}
	}
	if total != 40 {
		t.Errorf("shards observed %d trial ends, want 40", total)
	}
	if len(shards) > runtime.GOMAXPROCS(0) {
		t.Errorf("%d shards for %d max workers", len(shards), runtime.GOMAXPROCS(0))
	}
}

func TestCampaignFactoryDeterminism(t *testing.T) {
	// Per-trial seeding means results must not depend on whether an
	// observer factory is installed or how many workers run.
	sys := twoLevel(10, 100)
	base := Campaign{
		Scenario: Scenario{System: sys, Plan: planBoth(2, 3)},
		Trials:   30,
		Seed:     seed("det"),
	}
	plain, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	hooked := base
	hooked.Workers = 2
	hooked.ObserverFactory = func(int) Observer { return &countingObserver{} }
	hooked.TrialDone = func(TrialResult) {}
	withObs, err := hooked.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Efficiencies {
		if plain.Efficiencies[i] != withObs.Efficiencies[i] {
			t.Fatalf("trial %d efficiency changed with hooks: %v vs %v",
				i, plain.Efficiencies[i], withObs.Efficiencies[i])
		}
	}
}

// failingController returns an invalid plan at the first replan
// opportunity, which aborts its trial with an error.
type failingController struct{}

func (failingController) OnFailure(float64, int) {}
func (failingController) Replan(float64, float64) (pattern.Plan, bool) {
	return pattern.Plan{Tau0: -1}, true
}

func TestCampaignFailFast(t *testing.T) {
	// Only the first trial's controller is poisoned; every other trial
	// would succeed. The first error must cancel the remaining trials
	// rather than let the campaign run to completion before reporting.
	sys := twoLevel(1e15, 100)
	var made atomic.Int64
	var done atomic.Int64
	camp := Campaign{
		Scenario: Scenario{System: sys, Plan: planBoth(10, 1)},
		ControllerFactory: func() PlanController {
			if made.Add(1) == 1 {
				return failingController{}
			}
			return nil
		},
		Trials:    20000,
		Workers:   4,
		Seed:      seed("failfast"),
		TrialDone: func(TrialResult) { done.Add(1) },
	}
	_, err := camp.Run()
	if err == nil {
		t.Fatal("campaign with failing controller returned no error")
	}
	if !strings.Contains(err.Error(), "invalid plan") {
		t.Fatalf("unexpected error: %v", err)
	}
	if n := done.Load(); n >= int64(camp.Trials)-1 {
		t.Fatalf("fail-fast did not cancel: %d of %d trials still ran", n, camp.Trials)
	}
}
