package sim

import (
	"errors"
	"fmt"

	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/system"
)

// PairedCampaign runs several scenarios ("arms" — typically one per
// checkpointing technique on the same system) under common random
// numbers: trial i of EVERY arm draws its stream from Seed.Trial(i), so
// all arms face literally the same failure-arrival realization (the
// engine consumes randomness only for failure inter-arrivals, in
// arrival order, which is plan-independent). Differences between arms
// are then paired differences on a shared environment, and their
// variance shrinks with the cross-arm correlation — the paper's
// headline claims are exactly such differences (Section IV-F), which is
// what makes CRN a 10–100× trial-count lever.
//
// Each arm's marginal results are bitwise identical to running a plain
// Campaign{Scenario: arm, Trials, Seed} on its own: CRN changes which
// seed the arms share, never what any single arm computes.
type PairedCampaign struct {
	// Arms are the scenarios under comparison. All arms must share the
	// same System and failure laws — pairing is only valid when every
	// arm experiences the same failure environment.
	Arms []Scenario
	// Trials is the per-arm trial budget (the exact per-arm count when
	// sequential stopping is off).
	Trials int
	// Seed is the shared scenario-level seed: trial i of every arm runs
	// Seed.Trial(i). Deriving it per technique would silently break the
	// pairing, so callers pass one seed for the whole comparison.
	Seed rng.Seed
	// Workers bounds parallelism per batch (0 = GOMAXPROCS), with the
	// same limits as Campaign.Workers.
	Workers int
	// Level is the confidence level for comparisons and the stopping
	// rule (0 = 0.95).
	Level float64
	// TargetCI, when positive, enables sequential stopping: trials run
	// in batches (all arms advance in lockstep) until the paired CI
	// half-width of every pairwise mean-efficiency difference is at most
	// TargetCI, or the Trials budget is exhausted. The stopping decision
	// depends only on accumulated trial results, so it is deterministic
	// for a given Seed regardless of Workers.
	TargetCI float64
	// BatchSize is the per-arm trials per sequential batch (0 = 64).
	BatchSize int
	// MinTrials is the minimum per-arm trial count before the first
	// stopping check (0 = 16; at least 4 trials are always run so the
	// paired t quantile is meaningful).
	MinTrials int
	// ControlVariates additionally reports a control-variate-adjusted
	// estimate for each pairwise difference, using the failure-count
	// martingale control F − λ·W (exactly mean-zero for the default
	// exponential failure laws by the optional-stopping theorem; see
	// DESIGN.md §2.11). Requires default laws on every arm.
	ControlVariates bool
	// ObserverFactory, when non-nil, builds one Observer per (arm,
	// worker) pair, with the same contract as Campaign.ObserverFactory.
	// Arms run sequentially within a batch, so an arm's observers never
	// run concurrently with another arm's for the same worker index.
	ObserverFactory func(arm, worker int) Observer
	// ControllerFactory, when non-nil, builds one fresh PlanController
	// per trial of the given arm (same contract as
	// Campaign.ControllerFactory).
	ControllerFactory func(arm int) func() PlanController
	// TrialDone, when non-nil, is called once per completed trial with
	// the arm index; it must be safe for concurrent use.
	TrialDone func(arm int, r TrialResult)
}

// ArmComparison is one pairwise technique comparison out of a paired
// campaign: the paired estimate with its shrinkage diagnostics, plus
// the optional control-variate refinement of the same difference.
type ArmComparison struct {
	// A and B index PairedCampaign.Arms; the comparison estimates
	// mean(efficiency[A]) − mean(efficiency[B]).
	A, B int
	stats.Comparison
	// CV and CVCIHalf hold the control-variate-adjusted difference
	// estimate and its CI half-width (zero values when control variates
	// were off).
	CV       stats.CVResult
	CVCIHalf float64
}

// PairedResult aggregates a paired campaign.
type PairedResult struct {
	// Arms holds each arm's marginal campaign result over the trials
	// actually run. Efficiencies are index-aligned across arms: entry i
	// of every arm ran under Seed.Trial(i).
	Arms []CampaignResult
	// TrialsRun is the per-arm trial count actually executed (equal to
	// Budget unless sequential stopping fired earlier).
	TrialsRun int
	// Budget echoes PairedCampaign.Trials.
	Budget int
	// Level echoes the confidence level used.
	Level float64
	// Comparisons holds every ordered pair A < B.
	Comparisons []ArmComparison
	// ArmCV holds each arm's control-variate-adjusted marginal mean
	// efficiency (nil when control variates were off). The martingale
	// control explains the failure-luck component of a single arm's
	// variance, so the marginal adjustment is typically much larger
	// than the pairwise one (pairing already removed the shared
	// environment from differences).
	ArmCV []stats.CVResult
}

// TrialsSaved returns the per-arm trials the stopping rule left unrun.
func (r *PairedResult) TrialsSaved() int { return r.Budget - r.TrialsRun }

// Comparison returns the comparison between arms a and b (in either
// order; the A/B fields disambiguate) or nil if absent.
func (r *PairedResult) Comparison(a, b int) *ArmComparison {
	for i := range r.Comparisons {
		c := &r.Comparisons[i]
		if (c.A == a && c.B == b) || (c.A == b && c.B == a) {
			return c
		}
	}
	return nil
}

const (
	defaultBatchSize = 64
	defaultMinTrials = 16
)

// Run executes the paired campaign.
func (pc PairedCampaign) Run() (PairedResult, error) {
	if len(pc.Arms) < 2 {
		return PairedResult{}, errors.New("sim: paired campaign needs at least two arms")
	}
	if err := pc.validate(); err != nil {
		return PairedResult{}, err
	}
	level := pc.Level
	if level == 0 {
		level = 0.95
	}
	batch := pc.BatchSize
	if batch <= 0 {
		batch = defaultBatchSize
	}
	minTrials := pc.MinTrials
	if minTrials <= 0 {
		minTrials = defaultMinTrials
	}
	if minTrials < 4 {
		minTrials = 4
	}

	L := pc.Arms[0].System.NumLevels()
	campaigns := make([]Campaign, len(pc.Arms))
	results := make([][]TrialResult, len(pc.Arms))
	failBufs := make([][]int, len(pc.Arms))
	for a := range pc.Arms {
		campaigns[a] = pc.armCampaign(a)
		results[a] = make([]TrialResult, pc.Trials)
		failBufs[a] = make([]int, pc.Trials*L)
	}

	n := 0
	for n < pc.Trials {
		step := batch
		if pc.TargetCI <= 0 {
			step = pc.Trials // no stopping rule: one full-range pass per arm
		}
		if n+step > pc.Trials {
			step = pc.Trials - n
		}
		for a := range campaigns {
			err := campaigns[a].runRange(n, results[a][n:n+step], failBufs[a][n*L:(n+step)*L])
			if err != nil {
				return PairedResult{}, fmt.Errorf("sim: paired arm %d: %w", a, err)
			}
		}
		n += step
		if pc.TargetCI > 0 && n >= minTrials && pc.converged(results, n, level) {
			break
		}
	}

	out := PairedResult{TrialsRun: n, Budget: pc.Trials, Level: level}
	out.Arms = make([]CampaignResult, len(pc.Arms))
	for a := range campaigns {
		out.Arms[a] = campaigns[a].aggregate(results[a][:n])
	}
	var controls [][]float64
	if pc.ControlVariates {
		controls = make([][]float64, len(pc.Arms))
		out.ArmCV = make([]stats.CVResult, len(pc.Arms))
		for a := range pc.Arms {
			controls[a] = make([]float64, n)
			for i := 0; i < n; i++ {
				controls[a][i] = failureControl(&results[a][i], pc.Arms[a].System)
			}
			cv, err := stats.ControlVariate(out.Arms[a].Efficiencies, controls[a])
			if err != nil {
				return PairedResult{}, fmt.Errorf("sim: arm %d control variate: %w", a, err)
			}
			out.ArmCV[a] = cv
		}
	}
	for a := 0; a < len(pc.Arms); a++ {
		for b := a + 1; b < len(pc.Arms); b++ {
			cmp, err := stats.PairedCompare(out.Arms[a].Efficiencies, out.Arms[b].Efficiencies, level)
			if err != nil {
				return PairedResult{}, fmt.Errorf("sim: paired comparison %d vs %d: %w", a, b, err)
			}
			ac := ArmComparison{A: a, B: b, Comparison: cmp}
			if pc.ControlVariates {
				diffs := make([]float64, n)
				ctl := make([]float64, n)
				for i := 0; i < n; i++ {
					diffs[i] = out.Arms[a].Efficiencies[i] - out.Arms[b].Efficiencies[i]
					ctl[i] = controls[a][i] - controls[b][i]
				}
				cv, err := stats.ControlVariate(diffs, ctl)
				if err != nil {
					return PairedResult{}, fmt.Errorf("sim: control variate %d vs %d: %w", a, b, err)
				}
				ci, err := cv.CI(level)
				if err != nil {
					return PairedResult{}, err
				}
				ac.CV, ac.CVCIHalf = cv, ci
			}
			out.Comparisons = append(out.Comparisons, ac)
		}
	}
	return out, nil
}

// converged reports whether every pairwise paired CI half-width over the
// first n trials is within the target.
func (pc PairedCampaign) converged(results [][]TrialResult, n int, level float64) bool {
	for a := 0; a < len(results); a++ {
		for b := a + 1; b < len(results); b++ {
			var p stats.PairedSample
			for i := 0; i < n; i++ {
				p.Add(results[a][i].Efficiency, results[b][i].Efficiency)
			}
			ci, err := p.CIDiff(level)
			if err != nil || ci > pc.TargetCI {
				return false
			}
		}
	}
	return true
}

// armCampaign adapts arm a's scenario and hooks into a Campaign for the
// range runner.
func (pc PairedCampaign) armCampaign(a int) Campaign {
	c := Campaign{
		Scenario: pc.Arms[a],
		Trials:   pc.Trials,
		Seed:     pc.Seed, // shared across arms: this IS the CRN
		Workers:  pc.Workers,
	}
	if pc.ObserverFactory != nil {
		c.ObserverFactory = func(worker int) Observer { return pc.ObserverFactory(a, worker) }
	}
	if pc.ControllerFactory != nil {
		c.ControllerFactory = pc.ControllerFactory(a)
	}
	if pc.TrialDone != nil {
		c.TrialDone = func(r TrialResult) { pc.TrialDone(a, r) }
	}
	return c
}

// validate checks arm compatibility: pairing is only meaningful when
// every arm draws the same failure environment.
func (pc PairedCampaign) validate() error {
	base := pc.Arms[0]
	for a := range pc.Arms {
		if err := pc.armCampaign(a).validate(); err != nil {
			return fmt.Errorf("sim: paired arm %d: %w", a, err)
		}
		if pc.Arms[a].System != base.System {
			return fmt.Errorf("sim: paired arm %d uses a different system than arm 0; CRN pairing needs one shared failure environment", a)
		}
		if len(pc.Arms[a].FailureLaws) != len(base.FailureLaws) {
			return fmt.Errorf("sim: paired arm %d overrides different failure laws than arm 0", a)
		}
		for s := range pc.Arms[a].FailureLaws {
			if pc.Arms[a].FailureLaws[s] != base.FailureLaws[s] {
				return fmt.Errorf("sim: paired arm %d severity-%d failure law differs from arm 0", a, s+1)
			}
		}
		if pc.ControlVariates {
			for s, law := range pc.Arms[a].FailureLaws {
				if law != nil {
					return fmt.Errorf("sim: control variates need the default exponential laws, but arm %d overrides severity %d", a, s+1)
				}
			}
		}
	}
	return nil
}

// failureControl computes the martingale control variate of one trial:
// total failures observed minus the total failure rate times the wall
// time. For exponential (Poisson-process) failure laws F(t) − λt is a
// martingale and the trial end is a stopping time with finite
// expectation, so E[F(W) − λW] = 0 exactly — a known-mean control that
// is strongly correlated with how unlucky the trial's failure draw was.
func failureControl(r *TrialResult, sys *system.System) float64 {
	c := 0.0
	for s, f := range r.Failures {
		c += float64(f) - sys.LevelRate(s+1)*r.WallTime
	}
	return c
}
