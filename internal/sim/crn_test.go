package sim

import (
	"math"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dist"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/system"
)

// crnArms builds two deliberately similar plans on D4 (the kind of pair
// the paper's Figure 5 comparisons certify) plus one dissimilar plan.
func crnArms(t *testing.T) (*system.System, []Scenario) {
	t.Helper()
	sys, err := system.ByName("D4")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(tau0 float64, counts []int, levels []int) Scenario {
		return Scenario{
			System:        sys,
			Plan:          pattern.Plan{Tau0: tau0, Counts: counts, Levels: levels},
			MaxWallFactor: 150,
		}
	}
	return sys, []Scenario{
		mk(1.47, []int{2}, []int{1, 2}),
		mk(1.46, []int{2}, []int{1, 2}),
		mk(2.9, []int{1}, []int{1, 2}),
	}
}

// The CRN orchestration must be bitwise-invisible per arm: every arm's
// marginal CampaignResult must equal a standalone Campaign run with the
// same (shared) seed — CRN changes which seed arms share, never what a
// single arm computes.
func TestPairedCampaignMarginalsBitwiseIdentical(t *testing.T) {
	_, arms := crnArms(t)
	seed := rng.Campaign(11, "crn").Scenario("D4")
	pc := PairedCampaign{Arms: arms, Trials: 120, Seed: seed, Workers: 4}
	res, err := pc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TrialsRun != 120 || res.TrialsSaved() != 0 {
		t.Fatalf("no stopping rule: ran %d, saved %d; want 120, 0", res.TrialsRun, res.TrialsSaved())
	}
	for a, arm := range arms {
		solo, err := Campaign{Scenario: arm, Trials: 120, Seed: seed, Workers: 2}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Arms[a], solo) {
			t.Errorf("arm %d marginal result differs from standalone campaign", a)
		}
		for i := range solo.Efficiencies {
			if math.Float64bits(res.Arms[a].Efficiencies[i]) != math.Float64bits(solo.Efficiencies[i]) {
				t.Fatalf("arm %d trial %d efficiency bits differ", a, i)
			}
		}
	}
}

// Sequential batching must not change any trial: a run whose target is
// unreachably tight (forcing it through every batch) must equal the
// single-pass run bit for bit.
func TestPairedCampaignBatchingInvariant(t *testing.T) {
	_, arms := crnArms(t)
	seed := rng.Campaign(12, "crn").Scenario("batch")
	onePass, err := PairedCampaign{Arms: arms, Trials: 90, Seed: seed}.Run()
	if err != nil {
		t.Fatal(err)
	}
	batched, err := PairedCampaign{
		Arms: arms, Trials: 90, Seed: seed,
		TargetCI: 1e-15, BatchSize: 7, MinTrials: 4,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if batched.TrialsRun != 90 {
		t.Fatalf("unreachable target stopped early at %d trials", batched.TrialsRun)
	}
	if !reflect.DeepEqual(onePass.Arms, batched.Arms) {
		t.Error("batched arms differ from single-pass arms")
	}
	if !reflect.DeepEqual(onePass.Comparisons, batched.Comparisons) {
		t.Error("batched comparisons differ from single-pass comparisons")
	}
}

// The stopping decision depends only on accumulated results, so worker
// count must not perturb it (or anything else).
func TestPairedCampaignWorkerDeterminism(t *testing.T) {
	_, arms := crnArms(t)
	seed := rng.Campaign(13, "crn").Scenario("workers")
	var prev *PairedResult
	for _, workers := range []int{1, 3, 8} {
		res, err := PairedCampaign{
			Arms: arms, Trials: 300, Seed: seed, Workers: workers,
			TargetCI: 0.002, BatchSize: 16, MinTrials: 16,
			ControlVariates: true,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !reflect.DeepEqual(*prev, res) {
			t.Fatalf("workers=%d produced a different PairedResult", workers)
		}
		prev = &res
	}
}

// With a reachable target the stopping rule must save trials and still
// deliver the promised interval width.
func TestPairedCampaignSequentialStops(t *testing.T) {
	_, arms := crnArms(t)
	pc := PairedCampaign{
		Arms:   arms[:2], // the similar pair: tight paired CIs come cheap
		Trials: 2000,
		Seed:   rng.Campaign(14, "crn").Scenario("stop"),
		// Probe runs put the 2000-trial paired width near 1e-4; a 10x
		// looser target should stop far earlier.
		TargetCI: 1e-3, BatchSize: 16, MinTrials: 16,
	}
	res, err := pc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TrialsRun >= res.Budget {
		t.Fatalf("stopping rule never fired: ran all %d trials", res.TrialsRun)
	}
	if res.TrialsSaved() <= 0 {
		t.Fatalf("TrialsSaved = %d, want positive", res.TrialsSaved())
	}
	c := res.Comparison(0, 1)
	if c == nil {
		t.Fatal("missing comparison 0 vs 1")
	}
	if c.CIHalf > pc.TargetCI {
		t.Fatalf("achieved CI %v exceeds target %v", c.CIHalf, pc.TargetCI)
	}
	if c.N != res.TrialsRun {
		t.Fatalf("comparison over %d pairs, want %d", c.N, res.TrialsRun)
	}
}

// Pairing must beat the unpaired Welch interval on correlated arms, and
// the diagnostics must reflect it.
func TestPairedCampaignCIWidthShrinks(t *testing.T) {
	_, arms := crnArms(t)
	res, err := PairedCampaign{
		Arms: arms[:2], Trials: 400,
		Seed:            rng.Campaign(15, "crn").Scenario("width"),
		ControlVariates: true,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	c := res.Comparison(0, 1)
	if c.Corr < 0.9 {
		t.Fatalf("cross-arm correlation %v, want > 0.9 for near-identical plans under CRN", c.Corr)
	}
	if c.CIHalf <= 0 || c.WelchCIHalf/c.CIHalf < 3 {
		t.Fatalf("paired CI %v vs Welch %v: want >= 3x shrink", c.CIHalf, c.WelchCIHalf)
	}
	if c.VarReduction < 9 {
		t.Fatalf("VarReduction = %v, want >= 9", c.VarReduction)
	}
	// Marginal control variates: the failure-count martingale must
	// explain a solid share of each arm's variance.
	if len(res.ArmCV) != 2 {
		t.Fatalf("ArmCV has %d entries, want 2", len(res.ArmCV))
	}
	for a, cv := range res.ArmCV {
		if cv.Corr > -0.3 {
			t.Errorf("arm %d control correlation %v, want strongly negative", a, cv.Corr)
		}
		if cv.Std >= cv.RawStd {
			t.Errorf("arm %d adjusted std %v did not improve on raw %v", a, cv.Std, cv.RawStd)
		}
		if math.Abs(cv.Mean-cv.RawMean) > 3*cv.RawStd {
			t.Errorf("arm %d adjusted mean %v implausibly far from raw %v", a, cv.Mean, cv.RawMean)
		}
	}
	if c.CVCIHalf <= 0 || c.CVCIHalf > c.CIHalf*1.05 {
		t.Fatalf("difference CV CI %v should refine (or at worst match) the paired CI %v", c.CVCIHalf, c.CIHalf)
	}
}

func TestPairedCampaignHooks(t *testing.T) {
	_, arms := crnArms(t)
	var done [3]atomic.Int64
	var events [3]atomic.Int64
	obs := func(arm, worker int) Observer { return countObs{&events[arm]} }
	res, err := PairedCampaign{
		Arms: arms, Trials: 40,
		Seed:            rng.Campaign(16, "crn").Scenario("hooks"),
		Workers:         4,
		ObserverFactory: obs,
		TrialDone:       func(arm int, r TrialResult) { done[arm].Add(1) },
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	for a := range arms {
		if got := done[a].Load(); got != int64(res.TrialsRun) {
			t.Errorf("arm %d TrialDone fired %d times, want %d", a, got, res.TrialsRun)
		}
		if events[a].Load() == 0 {
			t.Errorf("arm %d observer saw no events", a)
		}
	}
}

type countObs struct{ n *atomic.Int64 }

func (c countObs) Observe(Event) { c.n.Add(1) }

func TestPairedCampaignValidation(t *testing.T) {
	_, arms := crnArms(t)
	seed := rng.Campaign(17, "crn").Scenario("validate")
	if _, err := (PairedCampaign{Arms: arms[:1], Trials: 10, Seed: seed}).Run(); err == nil {
		t.Error("single-arm campaign accepted")
	}
	other, err := system.ByName("D7")
	if err != nil {
		t.Fatal(err)
	}
	mixed := []Scenario{arms[0], {System: other, Plan: arms[0].Plan, MaxWallFactor: 150}}
	if _, err := (PairedCampaign{Arms: mixed, Trials: 10, Seed: seed}).Run(); err == nil ||
		!strings.Contains(err.Error(), "different system") {
		t.Errorf("mixed-system arms: err = %v, want different-system complaint", err)
	}
	law, err := dist.NewWeibull(100, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	weib := arms[0]
	weib.FailureLaws = []dist.Sampler{law}
	// Arms with different failure laws break the pairing.
	if _, err := (PairedCampaign{Arms: []Scenario{arms[0], weib}, Trials: 10, Seed: seed}).Run(); err == nil {
		t.Error("arms with differing failure laws accepted")
	}
	// Same custom law on both arms is a valid pairing, but not a valid
	// Poisson control.
	weib2 := arms[1]
	weib2.FailureLaws = []dist.Sampler{law}
	if _, err := (PairedCampaign{Arms: []Scenario{weib, weib2}, Trials: 10, Seed: seed}).Run(); err != nil {
		t.Errorf("shared custom law rejected: %v", err)
	}
	if _, err := (PairedCampaign{Arms: []Scenario{weib, weib2}, Trials: 10, Seed: seed, ControlVariates: true}).Run(); err == nil {
		t.Error("control variates accepted with non-exponential laws")
	}
	// Zero trials and bad workers flow through Campaign validation.
	if _, err := (PairedCampaign{Arms: arms[:2], Seed: seed}).Run(); err == nil {
		t.Error("zero-trial campaign accepted")
	}
	if _, err := (PairedCampaign{Arms: arms[:2], Trials: 10, Seed: seed, Workers: -1}).Run(); err == nil {
		t.Error("negative workers accepted")
	}
}

// Campaign.runRange must make a split run reproduce the full run's
// trials exactly (the contract the sequential batches rely on).
func TestRunRangeSplitMatchesFullRun(t *testing.T) {
	camp := goldenD7Campaign(t)
	full, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	L := camp.Scenario.System.NumLevels()
	results := make([]TrialResult, camp.Trials)
	failBuf := make([]int, camp.Trials*L)
	for _, cut := range []int{1, 37, 100, 199} {
		if err := camp.runRange(0, results[:cut], failBuf[:cut*L]); err != nil {
			t.Fatal(err)
		}
		if err := camp.runRange(cut, results[cut:], failBuf[cut*L:]); err != nil {
			t.Fatal(err)
		}
		split := camp.aggregate(results)
		if !reflect.DeepEqual(full, split) {
			t.Fatalf("split at %d differs from full run", cut)
		}
	}
}
