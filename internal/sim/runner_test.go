package sim

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/pattern"
)

// thresholdFailController aborts its trial (by proposing an invalid
// plan) at the first replan consult after the K-th failure. Whether a
// trial dies is a function of the trial's own failure draw only, so the
// set of failing trial indices is fixed by the campaign seed and
// independent of worker assignment.
type thresholdFailController struct {
	threshold int
	fails     int
}

func (c *thresholdFailController) OnFailure(float64, int) { c.fails++ }
func (c *thresholdFailController) Replan(float64, float64) (pattern.Plan, bool) {
	if c.fails >= c.threshold {
		return pattern.Plan{Tau0: -1}, true
	}
	return pattern.Plan{}, false
}

// TestCampaignFailFastDeterministicError pins the Run error contract:
// when trials fail, Run returns the error of the LOWEST-index failing
// trial, byte-identical regardless of worker count, scheduling, or
// engine reuse — even though cancellation means different worker counts
// execute different subsets of the campaign.
func TestCampaignFailFastDeterministicError(t *testing.T) {
	base := Campaign{
		Scenario: Scenario{System: twoLevel(100, 300), Plan: planBoth(2, 3)},
		ControllerFactory: func() PlanController {
			return &thresholdFailController{threshold: 7}
		},
		Trials: 300,
		Seed:   seed("failfast-deterministic"),
	}

	ref := base
	ref.Workers = 1
	_, refErr := ref.Run()
	if refErr == nil {
		t.Fatal("reference campaign produced no failing trial; raise the failure rate or lower the threshold")
	}
	if !strings.Contains(refErr.Error(), "trial ") || !strings.Contains(refErr.Error(), "invalid plan") {
		t.Fatalf("unexpected reference error: %v", refErr)
	}

	for _, workers := range []int{2, 3, 5, 16} {
		camp := base
		camp.Workers = workers
		_, err := camp.Run()
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if err.Error() != refErr.Error() {
			t.Errorf("workers=%d: error %q differs from single-worker reference %q",
				workers, err, refErr)
		}
	}

	fresh := base
	fresh.Workers = 4
	fresh.noEngineReuse = true
	_, err := fresh.Run()
	if err == nil || err.Error() != refErr.Error() {
		t.Errorf("fresh-engine campaign error %v differs from reference %q", err, refErr)
	}
}

// TestCampaignFailFastRunsTrialsBelowFailure: trials below the first
// failing index are never cancelled — the fail-fast cut is one-sided, a
// prerequisite for the deterministic-error contract above.
func TestCampaignFailFastRunsTrialsBelowFailure(t *testing.T) {
	var done atomic.Int64
	camp := Campaign{
		Scenario: Scenario{System: twoLevel(100, 300), Plan: planBoth(2, 3)},
		ControllerFactory: func() PlanController {
			return &thresholdFailController{threshold: 7}
		},
		Trials:    300,
		Workers:   8,
		Seed:      seed("failfast-deterministic"),
		TrialDone: func(TrialResult) { done.Add(1) },
	}
	_, err := camp.Run()
	if err == nil {
		t.Fatal("no error")
	}
	var firstBad int
	if _, scanErr := scanTrialIndex(err.Error(), &firstBad); scanErr != nil {
		t.Fatalf("cannot parse failing trial from %q: %v", err, scanErr)
	}
	// All trials below the first failing index completed, so at least
	// that many TrialDone callbacks fired (later trials may also have
	// completed before cancellation propagated).
	if int(done.Load()) < firstBad {
		t.Errorf("only %d trials completed, but trials 0..%d precede the first failure",
			done.Load(), firstBad-1)
	}
	if int(done.Load()) >= camp.Trials-1 {
		t.Errorf("fail-fast did not cancel: %d of %d trials ran", done.Load(), camp.Trials)
	}
}

// scanTrialIndex extracts N from an error string containing "trial N:".
func scanTrialIndex(s string, out *int) (int, error) {
	i := strings.Index(s, "trial ")
	if i < 0 {
		return 0, errors.New("no trial index")
	}
	n := 0
	found := false
	for _, r := range s[i+len("trial "):] {
		if r < '0' || r > '9' {
			break
		}
		n = n*10 + int(r-'0')
		found = true
	}
	if !found {
		return 0, errors.New("no trial index")
	}
	*out = n
	return n, nil
}
