package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// floatBits / bitsFloat carry float64s through JSON as IEEE-754 bit
// patterns: checkpoint resume must be bitwise exact, and decimal float
// formatting would round.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// campaignFormatName versions campaign checkpoint and shard files, in
// the same spirit as the flight recorder's "mlckpt-flight" format.
const campaignFormatName = "mlckpt-campaign"

// ErrCampaignHalted is returned by Campaign.Run when
// CheckpointConfig.HaltAfter stopped the run at a checkpoint instead of
// completing it. The checkpoint file then holds the merged prefix;
// re-running with Resume continues from it.
var ErrCampaignHalted = errors.New("sim: campaign halted at checkpoint")

// CheckpointConfig enables periodic campaign checkpointing: every
// Interval merged trials, the sink's merged-prefix state and the next
// trial index are written to Path (atomically, via temp file + rename).
// Because trial i always draws its stream from Seed.Trial(i) and the
// runner merges trial blocks in ascending order, a resumed campaign is
// bitwise identical to an uninterrupted one — the repo's own campaigns
// checkpoint with exactly the guarantees the paper demands of SCR.
// Requires a PortableSink (the default exact sink and the stream sink
// both qualify).
type CheckpointConfig struct {
	// Path is the checkpoint file. Required.
	Path string
	// Interval is the number of merged trials between checkpoint
	// writes. Run rejects Interval <= 0 or Interval > Trials: a
	// non-positive interval is a unit mix-up and an interval above the
	// campaign size would never write a mid-run checkpoint while
	// claiming to checkpoint.
	Interval int
	// Resume, when true and Path exists, loads the checkpoint and
	// continues from its recorded trial index instead of starting at 0.
	// The checkpoint must match the campaign (seed, trials, block size,
	// sink kind) or Run fails rather than silently mixing states.
	Resume bool
	// HaltAfter, when positive, halts the run cleanly once at least
	// HaltAfter trials beyond the resume point have merged: the final
	// checkpoint is flushed and Run returns ErrCampaignHalted. It
	// simulates the kill in kill-and-resume tests and lets drivers
	// bound work per invocation.
	HaltAfter int
}

// checkpointFile is the on-disk layout shared by campaign checkpoints
// and shard files. First/Next delimit the trial range the State covers:
// checkpoints always have First 0; shard k of n covers its block-aligned
// slice of the campaign.
type checkpointFile struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	SeedHi  uint64          `json:"seed_hi"`
	SeedLo  uint64          `json:"seed_lo"`
	Trials  int             `json:"trials"`
	Block   int             `json:"block"`
	First   int             `json:"first"`
	Next    int             `json:"next"`
	Sink    string          `json:"sink"`
	State   json.RawMessage `json:"state"`
}

// writeSinkFile atomically writes the sink state covering trials
// [first, next) of this campaign.
func (c *Campaign) writeSinkFile(path string, sink PortableSink, first, next int) error {
	state, err := sink.MarshalState()
	if err != nil {
		return fmt.Errorf("sim: checkpoint state: %w", err)
	}
	hi, lo := c.Seed.Words()
	payload, err := json.Marshal(checkpointFile{
		Format: campaignFormatName, Version: 1,
		SeedHi: hi, SeedLo: lo,
		Trials: c.Trials, Block: c.blockSize(),
		First: first, Next: next,
		Sink: sink.Kind(), State: state,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// readSinkFile parses a checkpoint or shard file.
func readSinkFile(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("sim: %s: %w", path, err)
	}
	if f.Format != campaignFormatName {
		return nil, fmt.Errorf("sim: %s is not a %s file (format %q)", path, campaignFormatName, f.Format)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("sim: %s: unsupported %s version %d", path, campaignFormatName, f.Version)
	}
	return &f, nil
}

// validateHeader checks that a checkpoint/shard file belongs to this
// campaign and this sink.
func (c *Campaign) validateHeader(path string, f *checkpointFile, sink PortableSink) error {
	hi, lo := c.Seed.Words()
	if f.SeedHi != hi || f.SeedLo != lo {
		return fmt.Errorf("sim: %s was written for a different seed", path)
	}
	if f.Trials != c.Trials {
		return fmt.Errorf("sim: %s covers a %d-trial campaign, this one has %d", path, f.Trials, c.Trials)
	}
	if f.Block != c.blockSize() {
		return fmt.Errorf("sim: %s used block size %d, this campaign uses %d", path, f.Block, c.blockSize())
	}
	if f.Sink != sink.Kind() {
		return fmt.Errorf("sim: %s holds %q sink state, this campaign uses %q", path, f.Sink, sink.Kind())
	}
	if f.First < 0 || f.Next < f.First || f.Next > c.Trials {
		return fmt.Errorf("sim: %s covers invalid trial range [%d,%d)", path, f.First, f.Next)
	}
	return nil
}

// loadCheckpoint loads Checkpoint.Path into sink if it exists, returning
// the resume trial index. A missing file is not an error — the campaign
// simply starts from trial 0.
func (c *Campaign) loadCheckpoint(sink PortableSink) (next int, loaded bool, err error) {
	f, err := readSinkFile(c.Checkpoint.Path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if err := c.validateHeader(c.Checkpoint.Path, f, sink); err != nil {
		return 0, false, err
	}
	if f.First != 0 {
		return 0, false, fmt.Errorf("sim: %s is a shard file (first=%d), not a checkpoint", c.Checkpoint.Path, f.First)
	}
	if err := sink.UnmarshalState(f.State); err != nil {
		return 0, false, fmt.Errorf("sim: %s: %w", c.Checkpoint.Path, err)
	}
	return f.Next, true, nil
}

// ShardRange returns the block-aligned trial range [lo, hi) owned by
// shard k of n in a trials-sized campaign with the given block size.
// Ranges are contiguous, cover [0, trials) exactly, and never split a
// block — the alignment that makes merging shard states in shard order
// reproduce a single run's block-merge order bit for bit. A block of 0
// means DefaultBlock, mirroring Campaign.Block.
func ShardRange(trials, block, shard, of int) (lo, hi int) {
	if block <= 0 {
		block = DefaultBlock
	}
	nBlocks := (trials + block - 1) / block
	bLo := shard * nBlocks / of
	bHi := (shard + 1) * nBlocks / of
	lo = bLo * block
	hi = bHi * block
	if hi > trials {
		hi = trials
	}
	return lo, hi
}

// RunShard executes shard k of n — the block-aligned slice
// ShardRange(Trials, Block, shard, of) of this campaign — and writes the
// sink's state to path as a mergeable shard file. Each shard is an
// independent process-sized unit of work: N shard files produced with
// any worker counts merge (MergeShards) into a result bitwise identical
// to a single-process run.
func (c Campaign) RunShard(path string, shard, of int) error {
	if of <= 0 || shard < 0 || shard >= of {
		return fmt.Errorf("sim: shard %d/%d out of range", shard, of)
	}
	if c.Checkpoint != nil {
		return errors.New("sim: shard runs do not take a CheckpointConfig (the shard file is the checkpoint)")
	}
	if err := c.validate(); err != nil {
		return err
	}
	sink, err := c.portableSink()
	if err != nil {
		return err
	}
	lo, hi := ShardRange(c.Trials, c.blockSize(), shard, of)
	if _, err := c.runBlocks(sink, lo, hi); err != nil {
		return err
	}
	if err := c.writeSinkFile(path, sink, lo, hi); err != nil {
		c.notify(ProgressUpdate{First: lo, Limit: hi, Merged: hi,
			State: RunStateFailed, Final: true, Err: err})
		return err
	}
	c.notify(ProgressUpdate{First: lo, Limit: hi, Merged: hi,
		State: RunStateComplete, Final: true})
	return nil
}

// MergeShards merges shard files written by RunShard into the final
// CampaignResult. The files must belong to this campaign (same seed,
// trial count, block size and sink kind) and jointly cover [0, Trials)
// without gap or overlap; order of the arguments does not matter.
func (c Campaign) MergeShards(paths ...string) (CampaignResult, error) {
	if len(paths) == 0 {
		return CampaignResult{}, errors.New("sim: no shard files to merge")
	}
	if err := c.validate(); err != nil {
		return CampaignResult{}, err
	}
	base, err := c.portableSink()
	if err != nil {
		return CampaignResult{}, err
	}
	files := make([]*checkpointFile, len(paths))
	order := make([]int, len(paths))
	for i, p := range paths {
		f, err := readSinkFile(p)
		if err != nil {
			return CampaignResult{}, err
		}
		if err := c.validateHeader(p, f, base); err != nil {
			return CampaignResult{}, err
		}
		files[i], order[i] = f, i
	}
	sort.Slice(order, func(a, b int) bool { return files[order[a]].First < files[order[b]].First })
	want := 0
	for rank, i := range order {
		f := files[i]
		if f.First != want {
			return CampaignResult{}, fmt.Errorf("sim: %s covers [%d,%d) but [%d,...) is needed — shards must tile the campaign",
				paths[i], f.First, f.Next, want)
		}
		want = f.Next
		if rank == 0 {
			if err := base.UnmarshalState(f.State); err != nil {
				return CampaignResult{}, fmt.Errorf("sim: %s: %w", paths[i], err)
			}
			continue
		}
		next, err := NewSink(f.Sink)
		if err != nil {
			return CampaignResult{}, err
		}
		if err := next.UnmarshalState(f.State); err != nil {
			return CampaignResult{}, fmt.Errorf("sim: %s: %w", paths[i], err)
		}
		if err := base.MergeSink(next); err != nil {
			return CampaignResult{}, fmt.Errorf("sim: merging %s: %w", paths[i], err)
		}
	}
	if want != c.Trials {
		return CampaignResult{}, fmt.Errorf("sim: shards cover [0,%d) of %d trials", want, c.Trials)
	}
	return base.Result()
}

// portableSink resolves the campaign's sink as a PortableSink, building
// the default exact sink when none is set.
func (c *Campaign) portableSink() (PortableSink, error) {
	if c.Sink == nil {
		s := NewExactSink()
		s.Reserve(c.Trials, c.Scenario.System.NumLevels())
		return s, nil
	}
	ps, ok := c.Sink.(PortableSink)
	if !ok {
		return nil, fmt.Errorf("sim: sink %T cannot checkpoint or shard (needs PortableSink)", c.Sink)
	}
	return ps, nil
}
