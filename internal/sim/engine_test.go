package sim

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/system"
)

// The bit patterns below were captured by running the pre-Engine
// simulator (fresh per-trial state, per-trial generator allocation) on
// the same campaigns. The Engine redesign must reproduce every one of
// them exactly: reusing the queue, stores, samplers, and PCG state is
// only legal because it is bitwise-invisible.

func goldenD7Campaign(t *testing.T) Campaign {
	t.Helper()
	sys, err := system.ByName("D7")
	if err != nil {
		t.Fatal(err)
	}
	return Campaign{
		Scenario: Scenario{
			System: sys,
			Plan:   pattern.Plan{Tau0: 1.3, Counts: []int{3}, Levels: []int{1, 2}},
		},
		Trials: 200,
		Seed:   rng.Campaign(7, "golden").Scenario("D7/golden"),
	}
}

func goldenBCampaign(t *testing.T) Campaign {
	t.Helper()
	sys, err := system.ByName("B")
	if err != nil {
		t.Fatal(err)
	}
	return Campaign{
		Scenario: Scenario{
			System:        sys,
			Plan:          pattern.Plan{Tau0: 2, Counts: []int{2, 1, 3}, Levels: []int{1, 2, 3, 4}},
			Policy:        EscalatePolicy,
			MaxWallFactor: 50,
			AsyncTopFlush: true,
		},
		Trials: 100,
		Seed:   rng.Campaign(7, "golden").Scenario("B/golden"),
	}
}

func checkBits(t *testing.T, name string, got float64, want uint64) {
	t.Helper()
	if math.Float64bits(got) != want {
		t.Errorf("%s = %v (bits %#016x), want bits %#016x",
			name, got, math.Float64bits(got), want)
	}
}

func TestGoldenCampaignBitIdentical(t *testing.T) {
	res, err := goldenD7Campaign(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkBits(t, "EffMean", res.Efficiency.Mean, 0x3fc5ae3a1eb22e66)
	checkBits(t, "EffStd", res.Efficiency.Std, 0x3f903ae9e1e015c7)
	checkBits(t, "WallMean", res.WallTime.Mean, 0x40a0bf8016ad02e6)
	checkBits(t, "WallStd", res.WallTime.Std, 0x4068d488615fea30)
	b := res.MeanBreakdown
	checkBits(t, "MeanBreakdown.UsefulCompute", b.UsefulCompute, 0x4076800000000000)
	checkBits(t, "MeanBreakdown.LostCompute", b.LostCompute, 0x407e3e0a1acfb812)
	checkBits(t, "MeanBreakdown.CheckpointOK", b.CheckpointOK, 0x407c15f822bbebac)
	checkBits(t, "MeanBreakdown.CheckpointFail", b.CheckpointFail, 0x40625c754ff20dd9)
	checkBits(t, "MeanBreakdown.RestartOK", b.RestartOK, 0x407f69f9096bb8a0)
	checkBits(t, "MeanBreakdown.RestartFail", b.RestartFail, 0x40691f958cef67e9)
	if res.Completed != 200 {
		t.Errorf("Completed = %d, want 200", res.Completed)
	}
	checkBits(t, "MeanFailures[0]", res.MeanFailures[0], 0x407bdc3d70a3d70a)
	checkBits(t, "MeanFailures[1]", res.MeanFailures[1], 0x40565fae147ae148)
	checkBits(t, "MeanScratchRestarts", res.MeanScratchRestarts, 0x3ffc8f5c28f5c28f)
	checkBits(t, "Eff[0]", res.Efficiencies[0], 0x3fc566c8f6676029)
	checkBits(t, "Eff[1]", res.Efficiencies[1], 0x3fc66d8850d77af7)
	checkBits(t, "Eff[7]", res.Efficiencies[7], 0x3fc91c45abc07ed2)
	checkBits(t, "Eff[63]", res.Efficiencies[63], 0x3fc647db8abfbc9e)
	checkBits(t, "Eff[199]", res.Efficiencies[199], 0x3fc609f66c819b5c)
}

func TestGoldenCampaignBitIdenticalEscalateAsync(t *testing.T) {
	// Exercises the four-level escalate + async-flush paths against the
	// same pre-Engine baseline.
	res, err := goldenBCampaign(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	checkBits(t, "B/EffMean", res.Efficiency.Mean, 0x3feb197ff9e26c43)
	checkBits(t, "B/WallMean", res.WallTime.Mean, 0x409a922ff3b57bf0)
	if res.Completed != 100 {
		t.Errorf("B/Completed = %d, want 100", res.Completed)
	}
	checkBits(t, "B/Eff[0]", res.Efficiencies[0], 0x3feae090dc4a79cd)
	checkBits(t, "B/Eff[99]", res.Efficiencies[99], 0x3feb318dc4ae07a1)
	b := res.MeanBreakdown
	checkBits(t, "B/Breakdown.UsefulCompute", b.UsefulCompute, 0x4096800000000000)
	checkBits(t, "B/Breakdown.LostCompute", b.LostCompute, 0x4031814925932253)
	checkBits(t, "B/Breakdown.CheckpointOK", b.CheckpointOK, 0x406e13869835141e)
	checkBits(t, "B/Breakdown.CheckpointFail", b.CheckpointFail, 0x3fcd7210826aac08)
	checkBits(t, "B/Breakdown.RestartOK", b.RestartOK, 0x400186887a8d6451)
	checkBits(t, "B/Breakdown.RestartFail", b.RestartFail, 0x3f864eae65b728f6)
}

func TestCampaignDeterministicAcrossWorkersAndReuse(t *testing.T) {
	// The full CampaignResult — Efficiencies order, MeanBreakdown, every
	// summary — must be identical for any worker count with engine
	// reuse on or off.
	base := goldenD7Campaign(t)
	base.Trials = 60 // keep the 6-way sweep quick
	var want CampaignResult
	for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, noReuse := range []bool{false, true} {
			c := base
			c.Workers = workers
			c.noEngineReuse = noReuse
			got, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 && !noReuse {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d noReuse=%v produced different CampaignResult:\n got %+v\nwant %+v",
					workers, noReuse, got, want)
			}
		}
	}
}

func TestEngineRunMatchesRunTrial(t *testing.T) {
	// One engine reused across trials must reproduce the single-use
	// RunTrial wrapper exactly, including the PCG stream (Run reseeds
	// in place; RunTrial builds a fresh generator).
	camp := goldenD7Campaign(t)
	eng, err := NewEngine(camp.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		seed := camp.Seed.Trial(i)
		a, err := eng.Run(seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunTrial(camp.Scenario, seed.Rand())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: reused engine %+v != fresh %+v", i, a, b)
		}
	}
}

func TestTrialLoopDoesNotAllocate(t *testing.T) {
	// After a warm-up trial sizes the queue arena, the per-trial hot
	// path must be allocation-free. The old code allocated ~2400
	// objects per trial on this scenario.
	camp := goldenD7Campaign(t)
	eng, err := NewEngine(camp.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(camp.Seed.Trial(0)); err != nil {
		t.Fatal(err)
	}
	trial := 1
	avg := testing.AllocsPerRun(20, func() {
		if _, err := eng.Run(camp.Seed.Trial(trial)); err != nil {
			t.Fatal(err)
		}
		trial++
	})
	if avg > 1 {
		t.Fatalf("reused engine allocates %.1f objects per trial, want ~0", avg)
	}
}
