package sim

import (
	"math"
	"reflect"
	"testing"
)

// TestExactSinkMatchesLegacyAggregate: routing a campaign through an
// explicit ExactSink reproduces the default run bit for bit — the sink
// API pivot is invisible to exact callers.
func TestExactSinkMatchesLegacyAggregate(t *testing.T) {
	ref, err := goldenD7Campaign(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	camp := goldenD7Campaign(t)
	camp.Sink = NewExactSink()
	got, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Error("explicit ExactSink result differs from default run")
	}
}

// TestStreamSinkDeterministicAcrossWorkersAndBlocks: the streaming
// result — sketches included — is bitwise identical for any worker
// count, with engine reuse on or off. Changing Block is allowed to
// change bits (it changes the fold tree), but each Block value must be
// self-consistent across workers.
func TestStreamSinkDeterministicAcrossWorkersAndBlocks(t *testing.T) {
	for _, block := range []int{0, 1, 17} {
		var ref CampaignResult
		for i, workers := range []int{1, 2, 4, 16} {
			camp := goldenD7Campaign(t)
			camp.Trials = 100
			camp.Workers = workers
			camp.Block = block
			camp.Sink = NewStreamSink()
			camp.noEngineReuse = i == 2
			res, err := camp.Run()
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				ref = res
				continue
			}
			if !reflect.DeepEqual(ref, res) {
				t.Errorf("block=%d workers=%d: stream result differs from workers=1", block, workers)
			}
		}
	}
}

// TestStreamSinkAgreesWithExact: the streaming aggregate must match the
// exact one in every count exactly, and in moments to float tolerance
// (the summation tree differs, so bits may not).
func TestStreamSinkAgreesWithExact(t *testing.T) {
	exact, err := goldenD7Campaign(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	camp := goldenD7Campaign(t)
	camp.Sink = NewStreamSink()
	stream, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stream.Trials != exact.Trials || stream.Completed != exact.Completed {
		t.Errorf("counts differ: stream %d/%d vs exact %d/%d",
			stream.Completed, stream.Trials, exact.Completed, exact.Trials)
	}
	if stream.Efficiency.N != exact.Efficiency.N ||
		stream.Efficiency.Min != exact.Efficiency.Min ||
		stream.Efficiency.Max != exact.Efficiency.Max {
		t.Errorf("efficiency N/Min/Max differ: %+v vs %+v", stream.Efficiency, exact.Efficiency)
	}
	close := func(name string, a, b float64) {
		t.Helper()
		if math.Abs(a-b) > 1e-12*(math.Abs(b)+1) {
			t.Errorf("%s: stream %v vs exact %v", name, a, b)
		}
	}
	close("Efficiency.Mean", stream.Efficiency.Mean, exact.Efficiency.Mean)
	close("Efficiency.Std", stream.Efficiency.Std, exact.Efficiency.Std)
	close("WallTime.Mean", stream.WallTime.Mean, exact.WallTime.Mean)
	close("MeanBreakdown.LostCompute", stream.MeanBreakdown.LostCompute, exact.MeanBreakdown.LostCompute)
	close("MeanScratchRestarts", stream.MeanScratchRestarts, exact.MeanScratchRestarts)
	if !reflect.DeepEqual(stream.MeanFailures, exact.MeanFailures) {
		// Failure counts are integers summed exactly; the per-trial means
		// divide the same integer by the same n → identical bits.
		t.Errorf("MeanFailures differ: %v vs %v", stream.MeanFailures, exact.MeanFailures)
	}
}

// TestEfficienciesOptIn pins satellite 1: only the exact-slice sink
// populates CampaignResult.Efficiencies; the stream sink leaves it nil
// and carries the sketches instead.
func TestEfficienciesOptIn(t *testing.T) {
	camp := goldenD7Campaign(t)
	camp.Trials = 40
	exact, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Efficiencies) != 40 {
		t.Errorf("exact sink: len(Efficiencies) = %d, want 40", len(exact.Efficiencies))
	}
	if exact.EfficiencySketch != nil || exact.WallTimeSketch != nil {
		t.Error("exact sink unexpectedly produced sketches")
	}
	camp.Sink = NewStreamSink()
	stream, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stream.Efficiencies != nil {
		t.Error("stream sink populated Efficiencies; the slice is opt-in via the exact sink")
	}
	if stream.EfficiencySketch == nil || stream.WallTimeSketch == nil {
		t.Fatal("stream sink produced no sketches")
	}
	if stream.EfficiencySketch.N() != 40 {
		t.Errorf("EfficiencySketch.N = %d, want 40", stream.EfficiencySketch.N())
	}
	q50 := stream.EfficiencySketch.Quantile(0.5)
	if q50 < stream.Efficiency.Min || q50 > stream.Efficiency.Max {
		t.Errorf("median estimate %v outside [min,max] = [%v,%v]",
			q50, stream.Efficiency.Min, stream.Efficiency.Max)
	}
}

// TestSinkStateRoundTrip: MarshalState → UnmarshalState reproduces both
// sinks' merged state bit-exactly — the property checkpoint resume
// depends on.
func TestSinkStateRoundTrip(t *testing.T) {
	for _, kind := range []string{"exact", "stream"} {
		camp := goldenD7Campaign(t)
		camp.Trials = 48
		sink, err := NewSink(kind)
		if err != nil {
			t.Fatal(err)
		}
		camp.Sink = sink
		want, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		state, err := sink.MarshalState()
		if err != nil {
			t.Fatal(err)
		}
		back, err := NewSink(kind)
		if err != nil {
			t.Fatal(err)
		}
		if err := back.UnmarshalState(state); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		got, err := back.Result()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: state round trip changed the result", kind)
		}
	}
}

// TestNewSinkUnknownKind: loading a checkpoint with an unknown sink tag
// must fail loudly.
func TestNewSinkUnknownKind(t *testing.T) {
	if _, err := NewSink("exotic"); err == nil {
		t.Error("unknown sink kind accepted")
	}
}
