package sim

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/dist"
	"repro/internal/eventq"
	"repro/internal/pattern"
	"repro/internal/rng"
)

// Event-queue kinds used by the engine.
const (
	evqPhaseEnd = iota
	evqFailure
	evqFlushEnd
)

// store holds one committed checkpoint.
type store struct {
	valid    bool
	progress float64 // useful work at commit time
	pos      int     // pattern interval index to resume at
}

// Engine executes trials of one scenario. It is built once (per worker
// goroutine, typically), validated once, and then reused for any number
// of trials: the event queue, failure-law table, checkpoint stores,
// failure counters and RNG state are recycled between trials, so the
// per-trial hot path performs no heap allocations. An Engine is not
// safe for concurrent use; run one per goroutine.
//
// Results are identical to constructing a fresh engine per trial: Reset
// restores every piece of per-trial state, and the PCG stream for trial
// seed s is the same whether the generator is freshly built or reseeded.
type Engine struct {
	// Immutable after construction.
	scn      Scenario
	laws     []dist.Sampler // per severity, index 0 = severity 1
	maxWall  float64
	observer Observer
	makeCtl  func() PlanController

	// Owned RNG, reseeded per Run; RunRand substitutes a caller stream.
	pcg    *rand.PCG
	ownRng *rand.Rand
	rng    *rand.Rand

	// Per-trial state, recycled by reset.
	plan       pattern.Plan // current plan; Controller may swap it
	controller PlanController
	err        error // fatal mid-run error (invalid controller plan)

	queue       eventq.Queue
	phaseHandle eventq.Handle

	now        float64
	done       float64 // current useful progress (state the next checkpoint would commit)
	pos        int     // next pattern interval index
	stores     []store // one per used level
	phase      Phase
	phaseStart float64
	phaseLevel int // 1-based system level for checkpoint/restart phases
	restartIdx int // used-level index being read during PhaseRestart

	asyncCapture bool          // current checkpoint phase is an async capture
	flushPending bool          // a background top-level flush is in flight
	flushHandle  eventq.Handle // cancellation handle for the flush
	flushStore   store         // state the in-flight flush will commit

	failures []int // per-severity counters, reused across trials
	res      TrialResult
}

// NewEngine validates the scenario once and builds a reusable engine.
func NewEngine(scn Scenario) (*Engine, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	sys := scn.System
	L := sys.NumLevels()
	e := &Engine{scn: scn, laws: make([]dist.Sampler, L)}
	for sev := 1; sev <= L; sev++ {
		if len(scn.FailureLaws) >= sev && scn.FailureLaws[sev-1] != nil {
			e.laws[sev-1] = scn.FailureLaws[sev-1]
			continue
		}
		rate := sys.LevelRate(sev)
		if rate <= 0 {
			e.laws[sev-1] = nil // severity never fires
			continue
		}
		law, err := dist.NewExponential(rate)
		if err != nil {
			return nil, err
		}
		e.laws[sev-1] = law
	}
	factor := scn.MaxWallFactor
	if factor == 0 {
		factor = DefaultMaxWallFactor
	}
	e.maxWall = factor * sys.BaselineTime
	e.failures = make([]int, L)
	e.stores = make([]store, 0, scn.Plan.NumUsed())
	return e, nil
}

// Observe streams every event of subsequent trials to o (nil detaches).
// Campaigns install one observer per worker engine so observer state
// stays goroutine-local and lock-free.
func (e *Engine) Observe(o Observer) { e.observer = o }

// Control installs an online plan-controller factory. Controllers are
// stateful per trial, so the factory is invoked at the start of every
// Run/RunRand; a nil factory (or a factory returning nil) disables
// control.
func (e *Engine) Control(factory func() PlanController) { e.makeCtl = factory }

// Run simulates one trial drawn from the given seed and returns its
// result. The engine's internal PCG generator is reseeded from the
// seed's raw words, so the stream is byte-identical to
// RunRand(seed.Rand()) without the per-trial generator allocation.
//
// The returned result's Failures slice aliases engine scratch and is
// valid until the next Run/RunRand; callers that retain results across
// trials must copy it.
func (e *Engine) Run(seed rng.Seed) (TrialResult, error) {
	if e.pcg == nil {
		e.pcg = &rand.PCG{}
		e.ownRng = rand.New(e.pcg)
	}
	hi, lo := seed.Words()
	e.pcg.Seed(hi, lo)
	return e.RunRand(e.ownRng)
}

// RunRand simulates one trial using a caller-provided random stream
// (trace replays and tests drive this directly). The same Failures
// aliasing contract as Run applies.
func (e *Engine) RunRand(r *rand.Rand) (TrialResult, error) {
	if r == nil {
		return TrialResult{}, fmt.Errorf("sim: nil random source")
	}
	e.rng = r
	e.reset()
	e.run()
	return e.res, e.err
}

// RunTrial simulates one application execution and returns its result —
// a thin compatibility wrapper over a single-use engine. The caller
// provides the random stream (see internal/rng for reproducible
// per-trial seeding). Campaigns and repeated runs should construct one
// Engine and reuse it instead.
func RunTrial(scn Scenario, r *rand.Rand) (TrialResult, error) {
	e, err := NewEngine(scn)
	if err != nil {
		return TrialResult{}, err
	}
	return e.RunRand(r)
}

// reset recycles all per-trial state and arms the opening events. It
// must leave the engine in exactly the state a freshly-built engine
// would start a trial in.
func (e *Engine) reset() {
	e.queue.Reset()
	e.phaseHandle = eventq.Handle{}
	e.flushHandle = eventq.Handle{}
	e.now, e.done = 0, 0
	e.pos = 0
	e.phase, e.phaseStart, e.phaseLevel, e.restartIdx = 0, 0, 0, 0
	e.asyncCapture, e.flushPending = false, false
	e.flushStore = store{}
	e.err = nil
	e.plan = e.scn.Plan
	if e.makeCtl != nil {
		e.controller = e.makeCtl()
	} else {
		e.controller = nil
	}

	n := e.plan.NumUsed()
	if cap(e.stores) < n {
		e.stores = make([]store, n)
	} else {
		e.stores = e.stores[:n]
		for i := range e.stores {
			e.stores[i] = store{}
		}
	}
	for i := range e.failures {
		e.failures[i] = 0
	}
	e.res = TrialResult{Failures: e.failures}

	// Stateful failure laws (trace replays) restart their stream.
	for _, law := range e.laws {
		if rw, ok := law.(dist.Rewinder); ok {
			rw.Rewind()
		}
	}

	// Arm one arrival per severity.
	for sev := 1; sev <= len(e.laws); sev++ {
		e.armFailure(sev)
	}
	e.startCompute()
}

// armFailure schedules the next arrival of a severity class.
func (e *Engine) armFailure(sev int) {
	law := e.laws[sev-1]
	if law == nil {
		return
	}
	e.queue.Schedule(e.now+law.Sample(e.rng), evqFailure, sev)
}

func (e *Engine) observe(kind EventKind, level int) {
	if e.observer == nil {
		return
	}
	e.observer.Observe(Event{
		Time: e.now, Kind: kind, Phase: e.phase, Level: level, Progress: e.done,
	})
}

// startPhase begins a phase of the given duration.
func (e *Engine) startPhase(p Phase, level int, duration float64) {
	e.phase = p
	e.phaseLevel = level
	e.phaseStart = e.now
	e.phaseHandle = e.queue.Schedule(e.now+duration, evqPhaseEnd, 0)
	e.observe(EvPhaseStart, level)
}

func (e *Engine) startCompute() {
	remaining := e.scn.System.BaselineTime - e.done
	interval := e.plan.Tau0
	if interval > remaining {
		interval = remaining
	}
	e.startPhase(PhaseCompute, 0, interval)
}

// run drives the event loop until completion or the wall-time cap.
func (e *Engine) run() {
	for {
		ev, err := e.queue.Pop()
		if err != nil {
			// No pending events can only mean all severities are
			// failure-free and a phase is always pending; treat
			// defensively as completion of whatever progress exists.
			break
		}
		e.now = ev.Time
		if e.now >= e.maxWall {
			e.now = e.maxWall
			e.chargePartialPhase()
			e.finish(false)
			e.observe(EvCapped, 0)
			return
		}
		switch ev.Kind {
		case evqPhaseEnd:
			if e.phaseEnd() {
				e.finish(true)
				e.observe(EvComplete, 0)
				return
			}
		case evqFlushEnd:
			e.flushPending = false
			e.stores[e.plan.NumUsed()-1] = e.flushStore
		case evqFailure:
			sev := ev.Data
			e.res.Failures[sev-1]++
			e.observe(EvFailure, sev)
			if e.controller != nil {
				e.controller.OnFailure(e.now, sev)
			}
			e.armFailure(sev)
			e.failure(sev)
		}
	}
	e.finish(e.done >= e.scn.System.BaselineTime)
}

// phaseEnd handles successful completion of the current phase; it
// returns true when the application has finished.
func (e *Engine) phaseEnd() bool {
	d := e.now - e.phaseStart
	plan := &e.plan
	switch e.phase {
	case PhaseCompute:
		e.res.Breakdown.UsefulCompute += d // reclassified to Lost on rollback
		e.done += d
		e.observe(EvPhaseEnd, 0)
		if e.done >= e.scn.System.BaselineTime-1e-12 {
			e.done = e.scn.System.BaselineTime
			return true
		}
		usedIdx := plan.LevelAfterInterval(e.pos)
		lvl := plan.Levels[usedIdx]
		duration := e.scn.System.Levels[lvl-1].Checkpoint
		e.asyncCapture = false
		if e.scn.AsyncTopFlush && usedIdx == plan.NumUsed()-1 && plan.NumUsed() >= 2 {
			// Async: block only for the capture to the next-lower
			// level; the top-level write drains in the background.
			capture := plan.Levels[usedIdx-1]
			duration = e.scn.System.Levels[capture-1].Checkpoint
			e.asyncCapture = true
		}
		e.startPhase(PhaseCheckpoint, lvl, duration)
	case PhaseCheckpoint:
		e.res.Breakdown.CheckpointOK += d
		e.observe(EvPhaseEnd, e.phaseLevel)
		next := (e.pos + 1) % plan.PeriodIntervals()
		commitLevel := e.phaseLevel
		if e.asyncCapture {
			// Commit only up to the capture level now; the top level
			// commits when the background flush completes.
			commitLevel = plan.Levels[plan.NumUsed()-2]
			if e.flushPending {
				e.queue.Cancel(e.flushHandle) // newer data supersedes
			}
			e.flushStore = store{valid: true, progress: e.done, pos: next}
			e.flushHandle = e.queue.Schedule(
				e.now+e.scn.System.Levels[e.phaseLevel-1].Checkpoint, evqFlushEnd, 0)
			e.flushPending = true
			e.asyncCapture = false
		}
		// Commit to every used level at or below the committed level.
		for i, lvl := range plan.Levels {
			if lvl <= commitLevel {
				e.stores[i] = store{valid: true, progress: e.done, pos: next}
			}
		}
		e.pos = next
		if e.controller != nil {
			if newPlan, ok := e.controller.Replan(e.now, e.done); ok {
				if err := e.switchPlan(newPlan); err != nil {
					e.err = err
					e.finish(false)
					return true
				}
			}
		}
		e.startCompute()
	case PhaseRestart:
		e.res.Breakdown.RestartOK += d
		e.observe(EvPhaseEnd, e.phaseLevel)
		st := e.stores[e.restartIdx]
		e.rollbackTo(st)
		e.startCompute()
	}
	return false
}

// chargePartialPhase books the elapsed portion of an interrupted phase
// into the matching failure bucket.
func (e *Engine) chargePartialPhase() {
	d := e.now - e.phaseStart
	switch e.phase {
	case PhaseCompute:
		// Partial computation counts as compute time; the progress it
		// represented is lost implicitly because done is not advanced.
		e.res.Breakdown.UsefulCompute += d
	case PhaseCheckpoint:
		e.res.Breakdown.CheckpointFail += d
	case PhaseRestart:
		e.res.Breakdown.RestartFail += d
	}
}

// rollbackTo restores application state from a committed checkpoint.
func (e *Engine) rollbackTo(st store) {
	// Progress between the checkpoint and now is lost: reclassify.
	lost := e.done - st.progress
	if lost > 0 {
		e.res.Breakdown.UsefulCompute -= lost
		e.res.Breakdown.LostCompute += lost
	}
	e.done = st.progress
	e.pos = st.pos
}

// failure handles a severity-s arrival.
func (e *Engine) failure(sev int) {
	e.queue.Cancel(e.phaseHandle)
	e.chargePartialPhase()
	if e.flushPending {
		// The in-flight background flush loses its source data.
		e.queue.Cancel(e.flushHandle)
		e.flushPending = false
	}

	// The failure destroys checkpoint data at levels below its
	// severity.
	for i, lvl := range e.plan.Levels {
		if lvl < sev {
			e.stores[i].valid = false
		}
	}

	need := sev
	if e.phase == PhaseRestart {
		need = e.nextRestartNeed(sev)
	}
	e.beginRecovery(need)
}

// nextRestartNeed applies the restart policy when a failure of severity
// sev interrupts the in-progress restart.
func (e *Engine) nextRestartNeed(sev int) int {
	cur := e.phaseLevel
	switch e.scn.Policy {
	case EscalatePolicy:
		// Escalate to the next used level above the current one, and
		// at least to the failing severity's level.
		next := cur
		for _, lvl := range e.plan.Levels {
			if lvl > cur {
				next = lvl
				break
			}
		}
		if sev > next {
			next = sev
		}
		return next
	default: // RetryPolicy
		if sev > cur {
			return sev
		}
		return cur
	}
}

// beginRecovery starts a restart from the lowest used level >= need that
// holds a valid checkpoint, or restarts the application from scratch.
func (e *Engine) beginRecovery(need int) {
	for i, lvl := range e.plan.Levels {
		if lvl >= need && e.stores[i].valid {
			e.restartIdx = i
			e.startPhase(PhaseRestart, lvl, e.scn.System.Levels[lvl-1].Restart)
			return
		}
	}
	// No usable checkpoint anywhere: restart from scratch. The paper's
	// short-application study treats this as relaunching the job with
	// no state to read, so no restart read cost is charged.
	e.res.ScratchRestarts++
	e.rollbackTo(store{valid: true, progress: 0, pos: 0})
	e.startCompute()
}

// finish freezes the trial result.
func (e *Engine) finish(completed bool) {
	e.res.Completed = completed
	e.res.WallTime = e.now
	e.res.Progress = e.done
	if completed {
		e.res.Progress = e.scn.System.BaselineTime
	}
	if e.res.WallTime > 0 {
		e.res.Efficiency = e.res.Progress / e.res.WallTime
	} else {
		// Degenerate zero-length application.
		e.res.Efficiency = 1
	}
	// Useful compute must equal final progress; anything beyond it in
	// the bucket is work that was computed but never rolled back nor
	// counted (a partial interval at the cap): classify as lost.
	if excess := e.res.Breakdown.UsefulCompute - e.res.Progress; excess > 1e-9 {
		e.res.Breakdown.UsefulCompute -= excess
		e.res.Breakdown.LostCompute += excess
	}
	if math.IsNaN(e.res.Efficiency) {
		e.res.Efficiency = 0
	}
}

// switchPlan installs a controller-provided plan. The pattern restarts
// at position 0; committed checkpoints keep their progress but resume at
// the new pattern's start.
func (e *Engine) switchPlan(p pattern.Plan) error {
	if err := p.Validate(e.scn.System); err != nil {
		return fmt.Errorf("sim: controller produced invalid plan: %w", err)
	}
	if e.flushPending {
		// The in-flight flush belongs to the old plan's level layout.
		e.queue.Cancel(e.flushHandle)
		e.flushPending = false
	}
	// Remap stores: keep the best committed progress per new used
	// level (a new level set may drop or add levels; a dropped level's
	// checkpoint data still exists, but the protocol will no longer
	// refresh it — conservatively carry progress for levels that appear
	// in both plans, and for new levels adopt the progress of the
	// nearest old level at or above them, which the SCR commit rule
	// guarantees exists there).
	old := e.stores
	oldLevels := e.plan.Levels
	e.plan = p
	e.pos = 0
	e.stores = make([]store, p.NumUsed())
	for i, lvl := range p.Levels {
		best := store{}
		for j, ol := range oldLevels {
			if ol >= lvl && old[j].valid {
				if !best.valid || old[j].progress > best.progress {
					best = old[j]
				}
			}
		}
		if best.valid {
			e.stores[i] = store{valid: true, progress: best.progress, pos: 0}
		}
	}
	return nil
}
