package sim

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// TestKillAndResumeDeterminismMatrix is the kill-and-resume golden: a
// campaign halted at several cut points and resumed — possibly under a
// different worker count — must produce a CampaignResult bitwise
// identical to an uninterrupted run, for both sink kinds. HaltAfter
// plays the kill: it stops the run at a flushed checkpoint, exactly the
// state a SIGKILL after the last atomic checkpoint write leaves behind.
func TestKillAndResumeDeterminismMatrix(t *testing.T) {
	base := goldenD7Campaign(t)
	base.Trials = 64
	for _, kind := range []string{"exact", "stream"} {
		ref := base
		refSink, err := NewSink(kind)
		if err != nil {
			t.Fatal(err)
		}
		ref.Sink = refSink
		want, err := ref.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{1, 8, 30, 63} {
			for _, workers := range []int{1, 4, 16} {
				for _, resumeWorkers := range []int{workers, 3} {
					path := filepath.Join(t.TempDir(), "campaign.ckpt")

					killed := base
					killed.Workers = workers
					kSink, err := NewSink(kind)
					if err != nil {
						t.Fatal(err)
					}
					killed.Sink = kSink
					killed.Checkpoint = &CheckpointConfig{Path: path, Interval: 8, HaltAfter: cut}
					if _, err := killed.Run(); !errors.Is(err, ErrCampaignHalted) {
						t.Fatalf("%s cut=%d w=%d: want ErrCampaignHalted, got %v", kind, cut, workers, err)
					}

					resumed := base
					resumed.Workers = resumeWorkers
					rSink, err := NewSink(kind)
					if err != nil {
						t.Fatal(err)
					}
					resumed.Sink = rSink
					resumed.Checkpoint = &CheckpointConfig{Path: path, Interval: 8, Resume: true}
					got, err := resumed.Run()
					if err != nil {
						t.Fatalf("%s cut=%d w=%d→%d: resume: %v", kind, cut, workers, resumeWorkers, err)
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("%s cut=%d w=%d→%d: resumed result differs from uninterrupted run",
							kind, cut, workers, resumeWorkers)
					}
				}
			}
		}
	}
}

// TestResumeOfCompletedCampaign: resuming a checkpoint whose Next equals
// Trials re-reports the final result without running anything.
func TestResumeOfCompletedCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "done.ckpt")
	camp := goldenD7Campaign(t)
	camp.Trials = 24
	camp.Checkpoint = &CheckpointConfig{Path: path, Interval: 8}
	want, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	again := camp
	again.Checkpoint = &CheckpointConfig{Path: path, Interval: 8, Resume: true}
	again.TrialDone = func(TrialResult) { ran.Add(1) }
	got, err := again.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 0 {
		t.Errorf("resume of a completed campaign re-ran %d trials", ran.Load())
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("resumed-complete result differs")
	}
}

// TestResumeWithoutFileStartsFresh: Resume with no checkpoint on disk is
// a cold start, not an error.
func TestResumeWithoutFileStartsFresh(t *testing.T) {
	camp := goldenD7Campaign(t)
	camp.Trials = 24
	want, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	camp.Checkpoint = &CheckpointConfig{
		Path: filepath.Join(t.TempDir(), "missing.ckpt"), Interval: 8, Resume: true,
	}
	got, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("cold-start-under-resume result differs from plain run")
	}
}

// TestCheckpointIntervalValidation pins satellite 3's bugfix: intervals
// outside [1, Trials] are configuration errors, rejected up front.
func TestCheckpointIntervalValidation(t *testing.T) {
	base := goldenD7Campaign(t)
	base.Trials = 50
	for _, interval := range []int{0, -3, 51} {
		camp := base
		camp.Checkpoint = &CheckpointConfig{
			Path: filepath.Join(t.TempDir(), "x.ckpt"), Interval: interval,
		}
		if _, err := camp.Run(); err == nil {
			t.Errorf("interval %d accepted (Trials=50)", interval)
		} else if !strings.Contains(err.Error(), "interval") {
			t.Errorf("interval %d: unexpected error %v", interval, err)
		}
	}
	camp := base
	camp.Checkpoint = &CheckpointConfig{Interval: 10}
	if _, err := camp.Run(); err == nil {
		t.Error("checkpoint without Path accepted")
	}
}

// TestErrorPathFlushesCheckpoint pins the other half of satellite 3:
// when the fail-fast contract aborts a campaign, the blocks completed
// below the failure are flushed to the checkpoint before Run returns,
// and a resume after fixing the cause replays only the missing trials.
func TestErrorPathFlushesCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "failing.ckpt")
	camp := Campaign{
		Scenario: Scenario{System: twoLevel(100, 300), Plan: planBoth(2, 3)},
		ControllerFactory: func() PlanController {
			return &thresholdFailController{threshold: 7}
		},
		Trials:     300,
		Workers:    8,
		Seed:       seed("failfast-deterministic"),
		Checkpoint: &CheckpointConfig{Path: path, Interval: 16},
	}
	_, err := camp.Run()
	if err == nil {
		t.Fatal("campaign did not fail")
	}
	var badTrial int
	if _, scanErr := scanTrialIndex(err.Error(), &badTrial); scanErr != nil {
		t.Fatalf("cannot parse failing trial from %q: %v", err, scanErr)
	}
	f, rerr := readSinkFile(path)
	if rerr != nil {
		t.Fatalf("no checkpoint flushed on the error path: %v", rerr)
	}
	if f.Next == 0 {
		t.Error("error-path checkpoint covers no trials")
	}
	// The merged prefix can never include the failing trial's block.
	if f.Next > badTrial+DefaultBlock {
		t.Errorf("checkpoint Next=%d reaches past failing trial %d's block", f.Next, badTrial)
	}
	// Resuming with a non-failing controller completes only the rest.
	fixed := camp
	fixed.ControllerFactory = nil
	fixed.Checkpoint = &CheckpointConfig{Path: path, Interval: 16, Resume: true}
	var ran atomic.Int64
	fixed.TrialDone = func(TrialResult) { ran.Add(1) }
	res, err := fixed.Run()
	if err != nil {
		t.Fatalf("resume after fix: %v", err)
	}
	if res.Trials != camp.Trials {
		t.Errorf("resumed result covers %d trials, want %d", res.Trials, camp.Trials)
	}
	if int(ran.Load()) != camp.Trials-f.Next {
		t.Errorf("resume ran %d trials, want %d (checkpoint covered %d)", ran.Load(), camp.Trials-f.Next, f.Next)
	}
}

// TestCheckpointMismatchRejected: a checkpoint from a different seed,
// trial count, block size, or sink kind must not silently mix in.
func TestCheckpointMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d7.ckpt")
	camp := goldenD7Campaign(t)
	camp.Trials = 32
	camp.Checkpoint = &CheckpointConfig{Path: path, Interval: 8, HaltAfter: 8}
	if _, err := camp.Run(); !errors.Is(err, ErrCampaignHalted) {
		t.Fatal(err)
	}
	mutate := map[string]func(*Campaign){
		"seed":   func(c *Campaign) { c.Seed = seed("other") },
		"trials": func(c *Campaign) { c.Trials = 40 },
		"block":  func(c *Campaign) { c.Block = 16 },
		"sink":   func(c *Campaign) { c.Sink = NewStreamSink() },
	}
	for name, mut := range mutate {
		other := goldenD7Campaign(t)
		other.Trials = 32
		mut(&other)
		other.Checkpoint = &CheckpointConfig{Path: path, Interval: 8, Resume: true}
		if _, err := other.Run(); err == nil {
			t.Errorf("%s mismatch: foreign checkpoint accepted", name)
		}
	}
}

// TestShardMergeGolden: the golden D7 campaign split into 4 shard files
// (each run with a different worker count) merges into the exact golden
// bit patterns of engine_test.go — multi-process sharding is invisible
// in the result.
func TestShardMergeGolden(t *testing.T) {
	dir := t.TempDir()
	base := goldenD7Campaign(t)
	const shards = 4
	paths := make([]string, shards)
	for k := 0; k < shards; k++ {
		camp := base
		camp.Workers = 1 + k*3 // shards may run anywhere, with any parallelism
		paths[k] = filepath.Join(dir, "shard"+string(rune('0'+k))+".json")
		if err := camp.RunShard(paths[k], k, shards); err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
	}
	// Merge in scrambled order — MergeShards sorts by range.
	res, err := base.MergeShards(paths[2], paths[0], paths[3], paths[1])
	if err != nil {
		t.Fatal(err)
	}
	checkBits(t, "shard/EffMean", res.Efficiency.Mean, 0x3fc5ae3a1eb22e66)
	checkBits(t, "shard/EffStd", res.Efficiency.Std, 0x3f903ae9e1e015c7)
	checkBits(t, "shard/WallMean", res.WallTime.Mean, 0x40a0bf8016ad02e6)
	checkBits(t, "shard/WallStd", res.WallTime.Std, 0x4068d488615fea30)
	checkBits(t, "shard/Eff[0]", res.Efficiencies[0], 0x3fc566c8f6676029)
	checkBits(t, "shard/Eff[63]", res.Efficiencies[63], 0x3fc647db8abfbc9e)
	checkBits(t, "shard/Eff[199]", res.Efficiencies[199], 0x3fc609f66c819b5c)
	if res.Completed != 200 {
		t.Errorf("Completed = %d, want 200", res.Completed)
	}
	// And the whole-result check against a plain run.
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, res) {
		t.Error("shard-merged result differs from single-process run")
	}
}

// TestShardMergeStreamDeterministic pins the stream sink's sharding
// contract: for a FIXED shard partition, the merged result is bitwise
// identical no matter how many workers each shard used or in what order
// the files are merged; against a single-process run, every count,
// histogram bucket and min/max is exactly equal and the moments agree
// to float tolerance (shard-level Chan merges regroup the fold tree, so
// moment bits may differ — the exact sink is the bitwise-vs-single-run
// option, see TestShardMergeGolden).
func TestShardMergeStreamDeterministic(t *testing.T) {
	dir := t.TempDir()
	base := goldenD7Campaign(t)
	base.Trials = 100
	single := base
	single.Sink = NewStreamSink()
	want, err := single.Run()
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	run := func(tag string, workers func(k int) int) CampaignResult {
		t.Helper()
		paths := make([]string, shards)
		for k := 0; k < shards; k++ {
			camp := base
			camp.Sink = NewStreamSink()
			camp.Workers = workers(k)
			paths[k] = filepath.Join(dir, tag+string(rune('0'+k))+".json")
			if err := camp.RunShard(paths[k], k, shards); err != nil {
				t.Fatalf("%s shard %d: %v", tag, k, err)
			}
		}
		merged := base
		merged.Sink = NewStreamSink()
		res, err := merged.MergeShards(paths[2], paths[0], paths[1])
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run("a", func(k int) int { return 2 + k })
	b := run("b", func(k int) int { return 7 - k })
	if !reflect.DeepEqual(a, b) {
		t.Error("same shard partition, different worker counts: merged bits differ")
	}
	if a.Trials != want.Trials || a.Completed != want.Completed ||
		a.Efficiency.N != want.Efficiency.N ||
		a.Efficiency.Min != want.Efficiency.Min || a.Efficiency.Max != want.Efficiency.Max {
		t.Errorf("sharded counts/extrema differ from single run: %+v vs %+v", a.Efficiency, want.Efficiency)
	}
	if !reflect.DeepEqual(a.MeanFailures, want.MeanFailures) {
		t.Errorf("MeanFailures differ: %v vs %v", a.MeanFailures, want.MeanFailures)
	}
	for _, q := range []float64{0.05, 0.5, 0.95} {
		if a.EfficiencySketch.Quantile(q) != want.EfficiencySketch.Quantile(q) {
			t.Errorf("q=%v differs: sharded %v vs single %v (bucket counts must be exactly equal)",
				q, a.EfficiencySketch.Quantile(q), want.EfficiencySketch.Quantile(q))
		}
	}
	if d := math.Abs(a.Efficiency.Mean - want.Efficiency.Mean); d > 1e-13 {
		t.Errorf("sharded mean %v vs single %v", a.Efficiency.Mean, want.Efficiency.Mean)
	}
	if d := math.Abs(a.Efficiency.Std - want.Efficiency.Std); d > 1e-13 {
		t.Errorf("sharded std %v vs single %v", a.Efficiency.Std, want.Efficiency.Std)
	}
}

// TestShardMergeRejectsGapsAndForeignFiles: shard sets that do not tile
// the campaign, and files from other campaigns, are rejected.
func TestShardMergeRejectsGapsAndForeignFiles(t *testing.T) {
	dir := t.TempDir()
	base := goldenD7Campaign(t)
	base.Trials = 64
	paths := make([]string, 4)
	for k := range paths {
		paths[k] = filepath.Join(dir, "p"+string(rune('0'+k))+".json")
		if err := base.RunShard(paths[k], k, 4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := base.MergeShards(paths[0], paths[2], paths[3]); err == nil {
		t.Error("gap in shard coverage accepted")
	}
	if _, err := base.MergeShards(paths[0], paths[1]); err == nil {
		t.Error("truncated shard coverage accepted")
	}
	other := base
	other.Seed = seed("other-campaign")
	if _, err := other.MergeShards(paths...); err == nil {
		t.Error("foreign shard files accepted")
	}
	if err := base.RunShard(filepath.Join(dir, "bad.json"), 4, 4); err == nil {
		t.Error("out-of-range shard index accepted")
	}
}

// TestShardRangeTiles: ShardRange always tiles [0, trials) exactly with
// block-aligned boundaries.
func TestShardRangeTiles(t *testing.T) {
	for _, tc := range []struct{ trials, block, of int }{
		{200, 8, 4}, {200, 8, 7}, {1, 8, 3}, {64, 16, 5}, {1000, 7, 9},
	} {
		want := 0
		for k := 0; k < tc.of; k++ {
			lo, hi := ShardRange(tc.trials, tc.block, k, tc.of)
			if lo != want {
				t.Errorf("%+v shard %d: lo=%d, want %d", tc, k, lo, want)
			}
			if lo%tc.block != 0 {
				t.Errorf("%+v shard %d: lo=%d not block-aligned", tc, k, lo)
			}
			want = hi
		}
		if want != tc.trials {
			t.Errorf("%+v: shards cover [0,%d), want [0,%d)", tc, want, tc.trials)
		}
	}
}

// TestCheckpointFileGarbageRejected: non-checkpoint files fail cleanly.
func TestCheckpointFileGarbageRejected(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage.json": "{not json",
		"wrong.json":   `{"format":"mlckpt-flight","version":1}`,
		"future.json":  `{"format":"mlckpt-campaign","version":99}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readSinkFile(p); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
