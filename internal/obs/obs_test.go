package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRegistryFamilies(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", "level", "1", "outcome", "ok")
	// Same labels in a different order resolve to the same instrument.
	b := r.Counter("hits", "outcome", "ok", "level", "1")
	if a != b {
		t.Fatal("label order changed instrument identity")
	}
	a.Inc()
	a.Add(2)
	r.Counter("hits", "level", "2", "outcome", "ok").Add(5)
	r.Counter("misses").Inc()

	s := r.Snapshot()
	if got := s.Counter("hits"); got != 8 {
		t.Errorf("family sum = %d, want 8", got)
	}
	if got := s.Counter("misses"); got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := s.Counter("absent"); got != 0 {
		t.Errorf("absent = %d, want 0", got)
	}
	if len(s.Counters) != 3 {
		t.Errorf("snapshot has %d counters, want 3", len(s.Counters))
	}
}

func TestRegistryKindConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestLabelsOddPairPanic(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("odd label pair count did not panic")
		}
	}()
	r.Counter("x", "key-without-value")
}

func TestRegistryMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("c", "k", "v").Add(3)
	a.Gauge("g1").Set(1)
	a.Gauge("g2").Set(7)
	a.Histogram("h").Observe(10)

	b := NewRegistry()
	b.Counter("c", "k", "v").Add(4)
	b.Counter("only_in_b").Inc()
	b.Gauge("g1").Set(9)
	b.Gauge("g2") // registered but never set: must not clobber a's 7
	b.Histogram("h").Observe(20)

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Counter("c", "k", "v").Value(); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := a.Counter("only_in_b").Value(); got != 1 {
		t.Errorf("adopted counter = %d, want 1", got)
	}
	if got := a.Gauge("g1").Value(); got != 9 {
		t.Errorf("merged gauge = %v, want 9 (last writer wins)", got)
	}
	if got := a.Gauge("g2").Value(); got != 7 {
		t.Errorf("unset gauge overwrote value: %v, want 7", got)
	}
	h := a.Histogram("h")
	if h.Count() != 2 || h.Sum() != 30 {
		t.Errorf("merged histogram count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestRegistryMergeKindMismatch(t *testing.T) {
	a := NewRegistry()
	a.Counter("x")
	b := NewRegistry()
	b.Gauge("x").Set(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging a gauge into a counter succeeded")
	}
}

func TestSnapshotJSONRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_trials_total").Add(42)
	r.Counter("sim_failures_total", "severity", "1").Add(10)
	r.Counter("sim_failures_total", "severity", "2").Add(3)
	r.Gauge("temperature").Set(36.6)
	h := r.Histogram("latency")
	for _, v := range []float64{0.5, 1, 2, 4, 1e15} { // 1e15 lands in overflow
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v (payload: %s)", err, buf.String())
	}
	if got := s.Counter("sim_trials_total"); got != 42 {
		t.Errorf("trials = %d", got)
	}
	if got := s.Counter("sim_failures_total"); got != 13 {
		t.Errorf("failure family sum = %d, want 13", got)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 36.6 {
		t.Errorf("gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(s.Histograms))
	}
	hs := s.Histograms[0]
	if hs.Count != 5 || hs.Max != 1e15 || hs.Min != 0.5 {
		t.Errorf("histogram snapshot count=%d min=%v max=%v", hs.Count, hs.Min, hs.Max)
	}
	var n uint64
	for _, b := range hs.Buckets {
		n += b.Count
	}
	if n != hs.Count {
		t.Errorf("bucket counts sum to %d, want %d", n, hs.Count)
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	clock := time.Unix(0, 0)
	p := NewProgress(&buf, "test", 100)
	p.now = func() time.Time { return clock }
	p.start = clock

	p.Tick() // the very first tick always emits a line
	if !strings.Contains(buf.String(), "test: 1/100 trials") {
		t.Fatalf("first line = %q", buf.String())
	}
	buf.Reset()
	p.Tick() // within the throttle period: silent
	if buf.Len() != 0 {
		t.Fatalf("tick emitted despite throttle: %q", buf.String())
	}
	clock = clock.Add(2 * time.Second)
	p.Add(18)
	out := buf.String()
	if !strings.Contains(out, "test: 20/100 trials (20.0%)") {
		t.Errorf("progress line = %q", out)
	}
	if !strings.Contains(out, "10.0 trials/s") {
		t.Errorf("rate missing: %q", out)
	}
	if !strings.Contains(out, "ETA 8s") {
		t.Errorf("ETA missing: %q", out)
	}
	buf.Reset()
	clock = clock.Add(8 * time.Second)
	p.Add(80)
	p.Finish()
	out = buf.String()
	if !strings.Contains(out, "done — 100/100 trials (100.0%)") {
		t.Errorf("finish line = %q", out)
	}
}

func TestProgressUnknownTotal(t *testing.T) {
	var buf bytes.Buffer
	clock := time.Unix(0, 0)
	p := NewProgress(&buf, "x", 0)
	p.now = func() time.Time { return clock }
	p.start = clock
	clock = clock.Add(4 * time.Second)
	p.Add(8)
	out := buf.String()
	if !strings.Contains(out, "x: 8 trials, 2.0 trials/s") {
		t.Errorf("rate-only line = %q", out)
	}
	if strings.Contains(out, "ETA") {
		t.Errorf("ETA shown without a total: %q", out)
	}
}
