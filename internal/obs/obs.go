// Package obs is the repository's metrics and telemetry substrate: a
// stdlib-only set of instruments (Counter, Gauge, streaming Histogram)
// organized into a Registry of labeled families, with JSON snapshotting
// and cross-shard Merge.
//
// The design target is the parallel experiment runner: instruments are
// plain (non-atomic, non-locking) values, so a hot loop owned by one
// goroutine pays only an increment. Concurrency is handled by sharding —
// every worker goroutine owns a private Registry (or SimMetrics) and the
// shards are merged once after the run. Registry lookup does lock, but
// callers cache the returned instrument pointers at setup time.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Counter is a monotonically increasing count. Not safe for concurrent
// use; shard per goroutine and Merge.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge is a last-written float value. Not safe for concurrent use.
type Gauge struct {
	v   float64
	set bool
}

// Set records v.
func (g *Gauge) Set(v float64) { g.v, g.set = v, true }

// Add adds d to the current value (a never-set gauge starts at 0).
func (g *Gauge) Add(d float64) { g.v, g.set = g.v+d, true }

// Value returns the current value (0 if never set).
func (g *Gauge) Value() float64 { return g.v }

// Label is one key=value dimension of a metric family member.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// labelsFromPairs converts alternating key, value strings into sorted
// labels. It panics on an odd count — label sets are static call sites,
// so this is a programming error, not input.
func labelsFromPairs(pairs []string) []Label {
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pair count %d", len(pairs)))
	}
	out := make([]Label, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Label{Key: pairs[i], Value: pairs[i+1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// metricID renders the canonical identity of a family member.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one registered instrument.
type entry struct {
	name   string
	labels []Label
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds labeled metric families. Registration (the Counter /
// Gauge / Histogram lookups) is mutex-guarded; the returned instruments
// are not — cache them and keep each Registry goroutine-local.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*entry{}}
}

func (r *Registry) lookup(name string, kind metricKind, labelPairs []string) *entry {
	labels := labelsFromPairs(labelPairs)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries == nil {
		r.entries = map[string]*entry{}
	}
	if e, ok := r.entries[id]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", id, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, labels: labels, kind: kind}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = NewHistogram()
	}
	r.entries[id] = e
	return e
}

// Counter returns (registering on first use) the counter named name with
// the given alternating label key, value pairs.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	return r.lookup(name, kindCounter, labelPairs).c
}

// Gauge returns (registering on first use) the gauge member.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	return r.lookup(name, kindGauge, labelPairs).g
}

// Histogram returns (registering on first use) the histogram member,
// using the default bucket scheme.
func (r *Registry) Histogram(name string, labelPairs ...string) *Histogram {
	return r.lookup(name, kindHistogram, labelPairs).h
}

// Merge folds every instrument of o into r: counters and histograms add,
// gauges adopt o's value when o has set one (last writer wins). Metrics
// that exist only in o are created in r. Merging the same name with a
// different instrument kind or an incompatible histogram scheme is an
// error. Do not merge two registries into each other concurrently.
func (r *Registry) Merge(o *Registry) error {
	if o == nil || o == r {
		return nil
	}
	o.mu.Lock()
	ids := make([]string, 0, len(o.entries))
	for id := range o.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	entries := make([]*entry, len(ids))
	for i, id := range ids {
		entries[i] = o.entries[id]
	}
	o.mu.Unlock()

	for _, oe := range entries {
		pairs := make([]string, 0, 2*len(oe.labels))
		for _, l := range oe.labels {
			pairs = append(pairs, l.Key, l.Value)
		}
		id := metricID(oe.name, oe.labels)
		r.mu.Lock()
		re, exists := r.entries[id]
		r.mu.Unlock()
		if exists && re.kind != oe.kind {
			return fmt.Errorf("obs: merge %s: have %s, merging %s", id, re.kind, oe.kind)
		}
		switch oe.kind {
		case kindCounter:
			r.Counter(oe.name, pairs...).Add(oe.c.Value())
		case kindGauge:
			if oe.g.set {
				r.Gauge(oe.name, pairs...).Set(oe.g.Value())
			}
		case kindHistogram:
			if err := r.Histogram(oe.name, pairs...).Merge(oe.h); err != nil {
				return fmt.Errorf("obs: merge %s: %w", id, err)
			}
		}
	}
	return nil
}

// CounterSnapshot is one counter in a snapshot.
type CounterSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugeSnapshot is one gauge in a snapshot. Set distinguishes an
// explicit zero from a registered-but-never-written gauge, so restored
// registries keep the original last-writer-wins merge behavior.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
	Set    bool    `json:"set,omitempty"`
}

// Snapshot is a serializable, point-in-time copy of a registry, sorted
// by metric identity for deterministic output. The Spans and Stats
// sections are not populated by Registry.Snapshot — callers holding a
// Tracer or StreamSet attach them before serialization (the cmd tools'
// -metrics files and obshttp's /snapshot both do).
type Snapshot struct {
	Counters   []CounterSnapshot    `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot      `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot  `json:"histograms,omitempty"`
	Spans      []SpanNode           `json:"spans,omitempty"`
	Stats      []StreamStatSnapshot `json:"stats,omitempty"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ids := make([]string, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var s Snapshot
	for _, id := range ids {
		e := r.entries[id]
		switch e.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterSnapshot{Name: e.name, Labels: e.labels, Value: e.c.Value()})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: e.name, Labels: e.labels, Value: e.g.Value(), Set: e.g.set})
		case kindHistogram:
			s.Histograms = append(s.Histograms, e.h.snapshot(e.name, e.labels))
		}
	}
	r.mu.Unlock()
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// WriteJSON serializes the snapshot in the same format Registry.WriteJSON
// uses — for callers that attach Spans or Stats before writing.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot previously produced by WriteJSON.
func ReadSnapshot(rd io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(rd).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	return s, nil
}

// RegistryFromSnapshot reconstructs a live registry from a serialized
// snapshot — the receiving half of cross-process telemetry: a shard
// process snapshots its registry into a progress sidecar, and the
// aggregating process restores and merges. With exact-sum states in the
// histograms (always present in snapshots this code writes), the
// restoration is lossless, so merging restored shard registries is
// bit-identical to merging the live ones. Spans and Stats are not part
// of a Registry; see MergeSnapshots for whole-snapshot aggregation.
func RegistryFromSnapshot(s Snapshot) (*Registry, error) {
	r := NewRegistry()
	for _, c := range s.Counters {
		labels := append([]Label(nil), c.Labels...)
		id := metricID(c.Name, labels)
		if _, ok := r.entries[id]; ok {
			return nil, fmt.Errorf("obs: snapshot: duplicate counter %s", id)
		}
		r.entries[id] = &entry{name: c.Name, labels: labels, kind: kindCounter, c: &Counter{n: c.Value}}
	}
	for _, g := range s.Gauges {
		labels := append([]Label(nil), g.Labels...)
		id := metricID(g.Name, labels)
		if _, ok := r.entries[id]; ok {
			return nil, fmt.Errorf("obs: snapshot: duplicate gauge %s", id)
		}
		// Legacy snapshots lack the Set flag; treat a non-zero value as set.
		r.entries[id] = &entry{name: g.Name, labels: labels, kind: kindGauge,
			g: &Gauge{v: g.Value, set: g.Set || g.Value != 0}}
	}
	for _, hs := range s.Histograms {
		h, err := HistogramFromSnapshot(hs)
		if err != nil {
			return nil, err
		}
		labels := append([]Label(nil), hs.Labels...)
		id := metricID(hs.Name, labels)
		if _, ok := r.entries[id]; ok {
			return nil, fmt.Errorf("obs: snapshot: duplicate histogram %s", id)
		}
		r.entries[id] = &entry{name: hs.Name, labels: labels, kind: kindHistogram, h: h}
	}
	return r, nil
}

// MergeSnapshots restores and merges serialized snapshots into one
// fleet-wide snapshot. Counters, histograms, and spans aggregate
// exactly and order-independently, so the result is deterministic for a
// given shard set — byte-identical to the snapshot a single process
// covering the same work would have written. Gauges are last-writer-wins
// in argument order, and Stats sections are pooled approximately
// (quantiles are count-weighted means of the shard quantiles), so fleet
// views that need strict determinism should rely on the registry and
// span sections.
func MergeSnapshots(snaps ...Snapshot) (Snapshot, error) {
	merged := NewRegistry()
	tracer := NewTracer()
	anySpans := false
	var statGroups [][]StreamStatSnapshot
	for _, s := range snaps {
		r, err := RegistryFromSnapshot(s)
		if err != nil {
			return Snapshot{}, err
		}
		if err := merged.Merge(r); err != nil {
			return Snapshot{}, err
		}
		if len(s.Spans) > 0 {
			anySpans = true
			tracer.Merge(TracerFromSnapshot(s.Spans))
		}
		if len(s.Stats) > 0 {
			statGroups = append(statGroups, s.Stats)
		}
	}
	out := merged.Snapshot()
	if anySpans {
		out.Spans = tracer.Snapshot()
	}
	out.Stats = mergeStatSnapshots(statGroups)
	return out, nil
}

// mergeStatSnapshots pools stream-stat snapshots by name: counts, sums,
// and extremes combine exactly; std via pooled moments; quantiles as
// count-weighted means (an approximation — the underlying sketches are
// not serialized).
func mergeStatSnapshots(groups [][]StreamStatSnapshot) []StreamStatSnapshot {
	if len(groups) == 0 {
		return nil
	}
	type acc struct {
		count         uint64
		sum, sumSq    float64
		min, max      float64
		p50, p90, p99 float64 // count-weighted accumulators
	}
	accs := map[string]*acc{}
	var names []string
	for _, group := range groups {
		for _, st := range group {
			a, ok := accs[st.Name]
			if !ok {
				a = &acc{min: math.Inf(1), max: math.Inf(-1)}
				accs[st.Name] = a
				names = append(names, st.Name)
			}
			n := float64(st.Count)
			a.count += st.Count
			a.sum += st.Sum
			if st.Count > 1 {
				a.sumSq += st.Std*st.Std*(n-1) + n*st.Mean*st.Mean
			} else {
				a.sumSq += st.Mean * st.Mean * n
			}
			if st.Count > 0 {
				if st.Min < a.min {
					a.min = st.Min
				}
				if st.Max > a.max {
					a.max = st.Max
				}
			}
			a.p50 += st.P50 * n
			a.p90 += st.P90 * n
			a.p99 += st.P99 * n
		}
	}
	sort.Strings(names)
	out := make([]StreamStatSnapshot, 0, len(names))
	for _, name := range names {
		a := accs[name]
		st := StreamStatSnapshot{Name: name, Count: a.count, Sum: a.sum}
		if a.count > 0 {
			n := float64(a.count)
			st.Mean = a.sum / n
			st.Min, st.Max = a.min, a.max
			st.P50, st.P90, st.P99 = a.p50/n, a.p90/n, a.p99/n
			if a.count > 1 {
				v := (a.sumSq - n*st.Mean*st.Mean) / (n - 1)
				if v > 0 {
					st.Std = math.Sqrt(v)
				}
			}
		}
		out = append(out, st)
	}
	return out
}

// Counter returns the value of the named counter in the snapshot
// (summed over the family when several label sets match the name).
func (s Snapshot) Counter(name string) uint64 {
	var total uint64
	for _, c := range s.Counters {
		if c.Name == name {
			total += c.Value
		}
	}
	return total
}
