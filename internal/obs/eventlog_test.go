package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func decodeLines(t *testing.T, out string) []map[string]any {
	t.Helper()
	var recs []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		recs = append(recs, m)
	}
	return recs
}

func TestEventLogJSONAndRunID(t *testing.T) {
	var sb strings.Builder
	e := NewEventLog(&sb, "cafe0123cafe0123")
	e.CampaignStart("D7/daly", 1, 4, 100, 200, 400)
	e.Checkpoint("/tmp/ck.json", 128)
	e.Resume("/tmp/ck.json", 128)
	e.ShardMerge([]string{"a", "b"}, 400)
	e.Error("failed", errors.New("boom"))
	e.CampaignEnd("failed", 160, 2500*time.Millisecond)
	e.Event("custom", "k", "v")

	recs := decodeLines(t, sb.String())
	if len(recs) != 7 {
		t.Fatalf("got %d records, want 7", len(recs))
	}
	wantMsg := []string{"campaign_start", "checkpoint", "resume", "shard_merge",
		"campaign_error", "campaign_end", "custom"}
	for i, r := range recs {
		if r["msg"] != wantMsg[i] {
			t.Fatalf("record %d msg %v, want %v", i, r["msg"], wantMsg[i])
		}
		if r["run_id"] != "cafe0123cafe0123" {
			t.Fatalf("record %d missing run_id: %v", i, r)
		}
		if _, ok := r["ts_ms"].(float64); !ok {
			t.Fatalf("record %d missing ts_ms: %v", i, r)
		}
	}
	if recs[0]["trials_total"] != float64(400) || recs[0]["shard"] != float64(1) {
		t.Fatalf("campaign_start attrs: %v", recs[0])
	}
	if recs[4]["level"] != "ERROR" || recs[4]["error"] != "boom" {
		t.Fatalf("campaign_error record: %v", recs[4])
	}
	if recs[5]["elapsed_ms"] != float64(2500) {
		t.Fatalf("campaign_end record: %v", recs[5])
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var e *EventLog
	e.CampaignStart("x", 0, 1, 0, 10, 10)
	e.Checkpoint("p", 1)
	e.Resume("p", 1)
	e.ShardMerge(nil, 0)
	e.Error("failed", errors.New("x"))
	e.CampaignEnd("complete", 10, time.Second)
	e.Event("anything")
	if e.WithRun("r") != nil {
		t.Fatal("nil log WithRun should stay nil")
	}
	if e.RunID() != "" {
		t.Fatal("nil log RunID should be empty")
	}
}

func TestEventLogWithRun(t *testing.T) {
	var sb strings.Builder
	e := NewEventLog(&sb, "")
	e.Event("plain")
	e.WithRun("abcd").Event("bound")
	recs := decodeLines(t, sb.String())
	if _, has := recs[0]["run_id"]; has {
		t.Fatalf("unbound record has run_id: %v", recs[0])
	}
	if recs[1]["run_id"] != "abcd" {
		t.Fatalf("bound record: %v", recs[1])
	}
	if e.WithRun("abcd").RunID() != "abcd" {
		t.Fatal("RunID not recorded")
	}
}
