package obs

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
	"time"
)

// buildShardRegistry populates a registry the way a campaign shard
// would: counters, histograms with float-heavy observations, a gauge.
func buildShardRegistry(rng *rand.Rand, shard int) *Registry {
	r := NewRegistry()
	n := 50 + rng.Intn(100)
	trials := r.Counter("trials_total")
	wall := r.Histogram("wall_minutes")
	eff := r.Histogram("efficiency", "tech", "daly")
	for i := 0; i < n; i++ {
		trials.Inc()
		wall.Observe(rng.ExpFloat64() * 1e3)
		eff.Observe(rng.Float64())
	}
	r.Gauge("shard_id", "shard", strconv.Itoa(shard)).Set(float64(shard))
	return r
}

// TestSnapshotRestoreLossless: a snapshot serialized to JSON and
// restored yields a registry whose snapshot is byte-identical.
func TestSnapshotRestoreLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := buildShardRegistry(rng, 0)
	var orig bytes.Buffer
	if err := r.WriteJSON(&orig); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RegistryFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if err := restored.WriteJSON(&back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), back.Bytes()) {
		t.Fatalf("restored snapshot differs:\n%s\nvs\n%s", orig.String(), back.String())
	}
}

// TestMergeSnapshotsMatchesLiveMerge is the cross-process determinism
// core: serializing shard registries to JSON, restoring, and merging
// must equal merging the live registries — byte-identical snapshots —
// even though the histograms accumulate floats.
func TestMergeSnapshotsMatchesLiveMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const shards = 4
	regs := make([]*Registry, shards)
	snaps := make([]Snapshot, shards)
	for i := range regs {
		regs[i] = buildShardRegistry(rng, i)
		var buf bytes.Buffer
		if err := regs[i].WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		s, err := ReadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = s
	}

	live := NewRegistry()
	for _, r := range regs {
		if err := live.Merge(r); err != nil {
			t.Fatal(err)
		}
	}
	var want bytes.Buffer
	if err := live.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	merged, err := MergeSnapshots(snaps...)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := merged.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("cross-process merge differs from live merge:\n%s\nvs\n%s", want.String(), got.String())
	}

	// And the merge must be order-independent (gauges here are labeled
	// per shard, so no last-writer ambiguity).
	rev := make([]Snapshot, shards)
	for i := range snaps {
		rev[i] = snaps[shards-1-i]
	}
	merged2, err := MergeSnapshots(rev...)
	if err != nil {
		t.Fatal(err)
	}
	var got2 bytes.Buffer
	if err := merged2.WriteJSON(&got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got2.Bytes()) {
		t.Fatalf("reverse-order cross-process merge differs from live merge")
	}
}

// TestSpanForestRoundTrip: tracer snapshots restore and merge exactly.
func TestSpanForestRoundTrip(t *testing.T) {
	mk := func(durs ...time.Duration) *Tracer {
		tick := time.Unix(0, 0)
		tr := NewTracer()
		tr.now = func() time.Time { return tick }
		for _, d := range durs {
			s := tr.Start("campaign")
			c := tr.Start("trial")
			tick = tick.Add(d)
			c.End()
			s.End()
		}
		return tr
	}
	a := mk(time.Millisecond, 2*time.Millisecond)
	b := mk(5 * time.Millisecond)

	liveMerged := NewTracer()
	liveMerged.Merge(a)
	liveMerged.Merge(b)
	want := liveMerged.Snapshot()

	got := MergeSpanForests(a.Snapshot(), b.Snapshot())
	var wb, gb bytes.Buffer
	if err := (Snapshot{Spans: want}).WriteJSON(&wb); err != nil {
		t.Fatal(err)
	}
	if err := (Snapshot{Spans: got}).WriteJSON(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatalf("span forest merge mismatch:\n%s\nvs\n%s", wb.String(), gb.String())
	}
}
