package sidecar

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// DefaultStaleFactor is the default staleness multiplier: a running
// shard whose sidecar has not been refreshed within StaleFactor × its
// own RefreshMS is flagged stalled (the writer flushes at least every
// refresh period while blocks merge, so k missed periods means the
// process is wedged, killed, or starved).
const DefaultStaleFactor = 3

// minStaleWindow bounds the stall window from below so very fast
// refresh cadences don't flag shards during ordinary scheduling jitter.
const minStaleWindow = 2 * time.Second

// stragglerRatio: a running shard whose completed fraction is below
// this ratio of the fleet's median fraction is flagged a straggler.
const stragglerRatio = 0.5

// ShardStatus is one sidecar plus the monitor-side derived state.
type ShardStatus struct {
	File
	Path string `json:"path,omitempty"`
	// AgeSeconds is how long ago the sidecar was last refreshed,
	// relative to the monitor's clock.
	AgeSeconds float64 `json:"age_seconds"`
	// Fraction is the completed fraction of the shard's own range.
	Fraction float64 `json:"fraction"`
	// Stalled: running but not refreshed within staleFactor × refresh.
	Stalled bool `json:"stalled,omitempty"`
	// Straggler: running with a completed fraction far below the fleet
	// median.
	Straggler bool `json:"straggler,omitempty"`
}

// Fleet is the aggregate view over a directory of sidecars — the
// payload of mlckpt -watch -json and obshttp /shards.
type Fleet struct {
	// State summarizes the fleet: failed if any shard failed, else
	// running if any is still running, else halted if any halted, else
	// complete (empty for an empty fleet).
	State  string        `json:"state"`
	Shards []ShardStatus `json:"shards"`
	// TrialsTotal sums the shard ranges (for one fully sharded campaign
	// this equals the campaign's trial count; for a directory holding
	// several cells it is the fleet's total planned work).
	TrialsTotal  int     `json:"trials_total"`
	TrialsMerged int     `json:"trials_merged"`
	Fraction     float64 `json:"fraction"`
	// ThroughputPerSec sums the running shards' throughputs.
	ThroughputPerSec float64 `json:"throughput_per_sec,omitempty"`
	// ETASeconds is the max over running shards' ETAs — the fleet
	// finishes when its slowest shard does.
	ETASeconds float64 `json:"eta_seconds,omitempty"`
	Running    int     `json:"running"`
	Complete   int     `json:"complete"`
	Failed     int     `json:"failed,omitempty"`
	Halted     int     `json:"halted,omitempty"`
	Stalled    int     `json:"stalled,omitempty"`
	Stragglers int     `json:"stragglers,omitempty"`
}

// BuildFleet derives the fleet view from a scanned shard set at time
// now. staleFactor <= 0 means DefaultStaleFactor.
func BuildFleet(files []*File, now time.Time, staleFactor float64) Fleet {
	if staleFactor <= 0 {
		staleFactor = DefaultStaleFactor
	}
	var fl Fleet
	fracs := make([]float64, 0, len(files))
	for _, f := range files {
		st := ShardStatus{
			File:       *f,
			Path:       f.Path,
			AgeSeconds: now.Sub(time.UnixMilli(f.UpdatedUnixMS)).Seconds(),
			Fraction:   f.Fraction(),
		}
		if st.State == string(sim.RunStateRunning) {
			window := time.Duration(float64(f.RefreshMS)*staleFactor) * time.Millisecond
			if window < minStaleWindow {
				window = minStaleWindow
			}
			st.Stalled = st.AgeSeconds > window.Seconds()
		}
		fracs = append(fracs, st.Fraction)
		fl.Shards = append(fl.Shards, st)
	}
	med := median(fracs)
	for i := range fl.Shards {
		st := &fl.Shards[i]
		if st.State == string(sim.RunStateRunning) && len(fl.Shards) >= 2 &&
			st.Fraction < stragglerRatio*med {
			st.Straggler = true
		}
		fl.TrialsTotal += st.TrialsLimit - st.TrialsFirst
		fl.TrialsMerged += st.TrialsMerged - st.TrialsFirst
		switch st.State {
		case string(sim.RunStateRunning):
			fl.Running++
			fl.ThroughputPerSec += st.ThroughputPerSec
			if st.ETASeconds > fl.ETASeconds {
				fl.ETASeconds = st.ETASeconds
			}
		case string(sim.RunStateComplete):
			fl.Complete++
		case string(sim.RunStateFailed):
			fl.Failed++
		case string(sim.RunStateHalted):
			fl.Halted++
		}
		if st.Stalled {
			fl.Stalled++
		}
		if st.Straggler {
			fl.Stragglers++
		}
	}
	if fl.TrialsTotal > 0 {
		fl.Fraction = float64(fl.TrialsMerged) / float64(fl.TrialsTotal)
	}
	switch {
	case len(fl.Shards) == 0:
		fl.State = ""
	case fl.Failed > 0:
		fl.State = string(sim.RunStateFailed)
	case fl.Running > 0:
		fl.State = string(sim.RunStateRunning)
	case fl.Halted > 0:
		fl.State = string(sim.RunStateHalted)
	default:
		fl.State = string(sim.RunStateComplete)
	}
	return fl
}

func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Terminal reports whether every shard reached a terminal state (and
// there is at least one shard) — the watch loop's exit condition.
func (fl Fleet) Terminal() bool {
	return len(fl.Shards) > 0 && fl.Running == 0
}

// WriteText renders the fleet as a human-readable monitor frame:
// a summary line plus one bar per shard.
func (fl Fleet) WriteText(w io.Writer) error {
	if len(fl.Shards) == 0 {
		_, err := fmt.Fprintln(w, "no progress sidecars found")
		return err
	}
	var counts []string
	add := func(n int, what string) {
		if n > 0 {
			counts = append(counts, fmt.Sprintf("%d %s", n, what))
		}
	}
	add(fl.Running, "running")
	add(fl.Complete, "complete")
	add(fl.Failed, "failed")
	add(fl.Halted, "halted")
	add(fl.Stalled, "stalled")
	add(fl.Stragglers, "straggling")
	if _, err := fmt.Fprintf(w, "fleet %-8s %d/%d trials (%5.1f%%)  %s  ETA %s  [%s]\n",
		fl.State, fl.TrialsMerged, fl.TrialsTotal, 100*fl.Fraction,
		rate(fl.ThroughputPerSec), eta(fl.ETASeconds), strings.Join(counts, ", ")); err != nil {
		return err
	}
	for _, st := range fl.Shards {
		name := st.Label
		if name == "" {
			name = st.RunID
		}
		if st.Of > 1 {
			name = fmt.Sprintf("%s %d/%d", name, st.Shard, st.Of)
		}
		flags := st.State
		if st.Stalled {
			flags += fmt.Sprintf(", stalled %.0fs", st.AgeSeconds)
		}
		if st.Straggler {
			flags += ", straggler"
		}
		if st.Error != "" {
			flags += ": " + st.Error
		}
		if _, err := fmt.Fprintf(w, "  %-24s %s %5.1f%%  %9s  ETA %-8s %s\n",
			name, bar(st.Fraction, 20), 100*st.Fraction,
			rate(st.ThroughputPerSec), eta(st.ETASeconds), flags); err != nil {
			return err
		}
	}
	return nil
}

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac * float64(width))
	return "[" + strings.Repeat("#", full) + strings.Repeat("-", width-full) + "]"
}

func rate(perSec float64) string {
	switch {
	case perSec <= 0:
		return "-"
	case perSec >= 10:
		return fmt.Sprintf("%.0f/s", perSec)
	default:
		return fmt.Sprintf("%.2f/s", perSec)
	}
}

func eta(sec float64) string {
	if sec <= 0 {
		return "-"
	}
	return time.Duration(sec * float64(time.Second)).Round(time.Second).String()
}
