package sidecar

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultRefresh is the default sidecar refresh period.
const DefaultRefresh = time.Second

// Meta is the static identity a Writer stamps into every sidecar.
type Meta struct {
	RunID        string
	ConfigDigest string
	Label        string
	// Shard/Of locate the process in the fleet; Of 0 is normalized to
	// an unsharded 0/1.
	Shard, Of int
	// Refresh is the minimum period between sidecar rewrites (0 means
	// DefaultRefresh). Final and checkpoint-flagged updates always
	// write.
	Refresh time.Duration
}

// Writer maintains one progress sidecar. Its Update method is a
// sim.Campaign Progress hook: it records every update but rewrites the
// file (atomically, temp + rename) at most once per Refresh — except
// for checkpoint-flagged and final updates, which always flush, so the
// sidecar honors the final-state-on-error contract. Safe for concurrent
// use (the campaign calls Update under its merge lock; the owning
// process may call SetRegistry/Flush from another goroutine).
type Writer struct {
	// Now overrides the clock (tests).
	Now func() time.Time

	path    string
	meta    Meta
	refresh time.Duration

	mu          sync.Mutex
	started     time.Time
	startMerged int
	haveStart   bool
	cur         sim.ProgressUpdate
	haveUpdate  bool
	ckptAt      time.Time
	lastWrite   time.Time
	registry    *obs.Snapshot
	liveStats   func() []obs.StreamStatSnapshot
	err         error
}

// NewWriter returns a writer that maintains the sidecar at path.
func NewWriter(path string, meta Meta) *Writer {
	if meta.Of <= 0 {
		meta.Shard, meta.Of = 0, 1
	}
	refresh := meta.Refresh
	if refresh <= 0 {
		refresh = DefaultRefresh
	}
	return &Writer{path: path, meta: meta, refresh: refresh}
}

// Path returns the sidecar path.
func (w *Writer) Path() string { return w.path }

// SetLiveStats installs a concurrency-safe source of live stream-stat
// snapshots (e.g. obs.StreamSet.Snapshots) attached to mid-run sidecar
// refreshes, so monitors see live quantiles between checkpoints.
func (w *Writer) SetLiveStats(f func() []obs.StreamStatSnapshot) {
	w.mu.Lock()
	w.liveStats = f
	w.mu.Unlock()
}

// SetRegistry attaches the merged registry snapshot. Worker-sharded
// registries only become safely snapshotable once the campaign
// finishes, so callers typically SetRegistry + Flush right after Run
// returns — enriching the terminal sidecar the final Update already
// wrote.
func (w *Writer) SetRegistry(s *obs.Snapshot) {
	w.mu.Lock()
	w.registry = s
	w.mu.Unlock()
}

// Err returns the first write error, if any (sidecar writes never fail
// the campaign; monitors just see a stale file).
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Update is the sim.Campaign Progress hook.
func (w *Writer) Update(u sim.ProgressUpdate) {
	w.mu.Lock()
	defer w.mu.Unlock()
	now := w.now()
	if !w.haveStart {
		w.started = now
		w.startMerged = u.Merged
		w.haveStart = true
	}
	w.cur = u
	w.haveUpdate = true
	if u.Checkpointed {
		w.ckptAt = now
	}
	if u.Final || u.Checkpointed || now.Sub(w.lastWrite) >= w.refresh {
		w.writeLocked(now)
	}
}

// Flush rewrites the sidecar with the current state (most recent
// update, registry, live stats), returning any write error.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.haveUpdate {
		return nil
	}
	w.writeLocked(w.now())
	return w.err
}

func (w *Writer) now() time.Time {
	if w.Now != nil {
		return w.Now()
	}
	return time.Now()
}

func (w *Writer) writeLocked(now time.Time) {
	u := w.cur
	f := File{
		Format: Format, Version: Version,
		RunID: w.meta.RunID, ConfigDigest: w.meta.ConfigDigest,
		Label: w.meta.Label, Shard: w.meta.Shard, Of: w.meta.Of,
		PID:          os.Getpid(),
		State:        string(u.State),
		TrialsFirst:  u.First,
		TrialsLimit:  u.Limit,
		TrialsMerged: u.Merged,
		TrialsTotal:  u.Total,

		StartedUnixMS: w.started.UnixMilli(),
		UpdatedUnixMS: now.UnixMilli(),
		RefreshMS:     w.refresh.Milliseconds(),
		PeakRSSBytes:  readPeakRSS(),
	}
	if u.State == "" {
		f.State = string(sim.RunStateRunning)
	}
	if u.Err != nil {
		f.Error = u.Err.Error()
	}
	if !w.ckptAt.IsZero() {
		f.CheckpointUnixMS = w.ckptAt.UnixMilli()
	}
	if elapsed := now.Sub(w.started).Seconds(); elapsed > 0 && u.Merged > w.startMerged {
		f.ThroughputPerSec = float64(u.Merged-w.startMerged) / elapsed
		if u.State == sim.RunStateRunning && f.ThroughputPerSec > 0 {
			f.ETASeconds = float64(u.Limit-u.Merged) / f.ThroughputPerSec
		}
	}
	switch {
	case w.registry != nil:
		f.Registry = w.registry
	case w.liveStats != nil:
		if stats := w.liveStats(); len(stats) > 0 {
			f.Registry = &obs.Snapshot{Stats: stats}
		}
	}
	if err := writeAtomic(w.path, &f); err != nil && w.err == nil {
		w.err = err
	}
	w.lastWrite = now
}

// writeAtomic writes the sidecar via temp file + rename, the same
// crash-consistency discipline as campaign checkpoints: a reader never
// observes a torn sidecar.
func writeAtomic(path string, f *File) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// readPeakRSS returns the process's peak resident set size in bytes
// (VmHWM from /proc/self/status), or 0 where unavailable.
func readPeakRSS() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
