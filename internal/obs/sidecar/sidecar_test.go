package sidecar

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

func twoLevel(mtbf, tb float64) *system.System {
	return &system.System{
		Name:         "sidecar2",
		MTBF:         mtbf,
		BaselineTime: tb,
		Levels: []system.Level{
			{Checkpoint: 0.333, Restart: 0.333, SeverityProb: 0.833},
			{Checkpoint: 0.833, Restart: 0.833, SeverityProb: 0.167},
		},
	}
}

func testCampaign(name string, trials, workers int) sim.Campaign {
	return sim.Campaign{
		Scenario: sim.Scenario{
			System: twoLevel(200, 600),
			Plan:   pattern.Plan{Tau0: 2, Counts: []int{3}, Levels: []int{1, 2}},
		},
		Trials:  trials,
		Workers: workers,
		Seed:    rng.Campaign(1234, "sidecartest").Scenario(name),
	}
}

// failAfterController makes trials fail deterministically once a trial
// sees enough failures: it replans to an invalid Tau0, which the engine
// rejects, failing the campaign partway through.
type failAfterController struct{ threshold, fails int }

func (c *failAfterController) OnFailure(now float64, severity int) { c.fails++ }
func (c *failAfterController) Replan(now, progress float64) (pattern.Plan, bool) {
	if c.fails >= c.threshold {
		return pattern.Plan{Tau0: -1}, true
	}
	return pattern.Plan{}, false
}

// fakeClock is a deterministic time source for Writer tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.UnixMilli(1_700_000_000_000)} }

func mustRead(t *testing.T, path string) *File {
	t.Helper()
	f, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestWriterThrottleAndFlush drives a Writer by hand with a fake clock:
// the first update writes, sub-refresh updates are throttled, elapsed
// refresh / checkpoint flags / final updates write, and SetRegistry +
// Flush enriches the terminal sidecar.
func TestWriterThrottleAndFlush(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard0.json"+Suffix)
	clock := newFakeClock()
	w := NewWriter(path, Meta{
		RunID: "deadbeefdeadbeef", ConfigDigest: "deadbeefdeadbeef",
		Label: "D7/daly", Shard: 0, Of: 2, Refresh: time.Second,
	})
	w.Now = clock.now

	upd := func(merged int, state sim.RunState, ckpt, final bool) {
		w.Update(sim.ProgressUpdate{
			First: 0, Limit: 32, Merged: merged, Total: 64,
			State: state, Checkpointed: ckpt, Final: final,
		})
	}

	upd(0, sim.RunStateRunning, false, false)
	f := mustRead(t, path)
	if f.State != "running" || f.TrialsMerged != 0 || f.Shard != 0 || f.Of != 2 {
		t.Fatalf("first write = %+v", f)
	}
	if f.RefreshMS != 1000 || f.Label != "D7/daly" || f.PID != os.Getpid() {
		t.Fatalf("identity fields = %+v", f)
	}

	clock.advance(200 * time.Millisecond)
	upd(8, sim.RunStateRunning, false, false)
	if f = mustRead(t, path); f.TrialsMerged != 0 {
		t.Fatalf("sub-refresh update was not throttled: merged=%d", f.TrialsMerged)
	}

	clock.advance(900 * time.Millisecond) // 1.1s since last write
	upd(16, sim.RunStateRunning, false, false)
	f = mustRead(t, path)
	if f.TrialsMerged != 16 {
		t.Fatalf("post-refresh update not written: merged=%d", f.TrialsMerged)
	}
	if f.ThroughputPerSec <= 0 || f.ETASeconds <= 0 {
		t.Fatalf("running sidecar missing throughput/ETA: %+v", f)
	}

	clock.advance(100 * time.Millisecond)
	upd(24, sim.RunStateRunning, true, false)
	f = mustRead(t, path)
	if f.TrialsMerged != 24 {
		t.Fatal("checkpoint-flagged update was throttled")
	}
	if f.CheckpointUnixMS != clock.t.UnixMilli() {
		t.Fatalf("checkpoint_unix_ms = %d, want %d", f.CheckpointUnixMS, clock.t.UnixMilli())
	}

	clock.advance(10 * time.Millisecond)
	upd(32, sim.RunStateComplete, false, true)
	f = mustRead(t, path)
	if f.State != "complete" || f.TrialsMerged != 32 || f.ETASeconds != 0 {
		t.Fatalf("final write = %+v", f)
	}
	if f.Registry != nil {
		t.Fatal("registry attached before SetRegistry")
	}

	reg := obs.NewRegistry()
	reg.Counter("sidecar_test_total").Add(7)
	snap := reg.Snapshot()
	w.SetRegistry(&snap)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f = mustRead(t, path)
	if f.State != "complete" {
		t.Fatalf("flush lost terminal state: %q", f.State)
	}
	if f.Registry == nil || len(f.Registry.Counters) != 1 || f.Registry.Counters[0].Value != 7 {
		t.Fatalf("flushed registry = %+v", f.Registry)
	}
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
}

func TestConfigDigest(t *testing.T) {
	a := ConfigDigest("D7", "daly", "1234", "200")
	if len(a) != 16 {
		t.Fatalf("digest %q not 16 hex chars", a)
	}
	if a != ConfigDigest("D7", "daly", "1234", "200") {
		t.Fatal("digest not stable")
	}
	// NUL separators: moving a boundary must change the digest.
	if a == ConfigDigest("D7d", "aly", "1234", "200") {
		t.Fatal("digest ignores part boundaries")
	}
}

func TestValidateRejections(t *testing.T) {
	good := File{
		Format: Format, Version: Version, RunID: "r", State: "running",
		Shard: 0, Of: 1, TrialsFirst: 0, TrialsMerged: 5, TrialsLimit: 10,
		TrialsTotal: 10, StartedUnixMS: 1000, UpdatedUnixMS: 2000, RefreshMS: 1000,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*File)
	}{
		{"format", func(f *File) { f.Format = "other" }},
		{"version", func(f *File) { f.Version = 99 }},
		{"run_id", func(f *File) { f.RunID = "" }},
		{"state", func(f *File) { f.State = "done" }},
		{"shard", func(f *File) { f.Shard = 3 }},
		{"of", func(f *File) { f.Of = 0 }},
		{"merged<first", func(f *File) { f.TrialsMerged = -1 }},
		{"limit<merged", func(f *File) { f.TrialsLimit = 4 }},
		{"total<limit", func(f *File) { f.TrialsTotal = 9 }},
		{"refresh", func(f *File) { f.RefreshMS = 0 }},
		{"timestamps", func(f *File) { f.UpdatedUnixMS = 500 }},
	}
	for _, tc := range cases {
		f := good
		tc.mut(&f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: invalid sidecar accepted", tc.name)
		}
	}
}

func TestScanSortsAndSkipsInvalid(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, f File) {
		data, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(digest string, shard, of int) File {
		return File{
			Format: Format, Version: Version, RunID: digest, ConfigDigest: digest,
			State: "running", Shard: shard, Of: of,
			TrialsLimit: 10, TrialsMerged: 5, TrialsTotal: 10,
			StartedUnixMS: 1000, UpdatedUnixMS: 2000, RefreshMS: 1000,
		}
	}
	write("b1"+Suffix, mk("bbbb", 1, 2))
	write("a0"+Suffix, mk("aaaa", 0, 1))
	write("b0"+Suffix, mk("bbbb", 0, 2))
	write("bad"+Suffix, File{Format: "nope"})
	if err := os.WriteFile(filepath.Join(dir, "junk"+Suffix), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	write("notasidecar.json", mk("cccc", 0, 1)) // wrong suffix, ignored

	files, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range files {
		got = append(got, fmt.Sprintf("%s/%d", f.ConfigDigest, f.Shard))
	}
	want := []string{"aaaa/0", "bbbb/0", "bbbb/1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan order %v, want %v", got, want)
	}

	if _, err := Scan(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing directory did not error")
	}
}

func TestBuildFleetAggregation(t *testing.T) {
	now := time.UnixMilli(2_000_000_000_000)
	mk := func(shard int, state string, first, merged, limit int, updatedAgo time.Duration, tput, eta float64) *File {
		return &File{
			Format: Format, Version: Version, RunID: "rrrr", ConfigDigest: "rrrr",
			State: state, Shard: shard, Of: 4,
			TrialsFirst: first, TrialsMerged: merged, TrialsLimit: limit, TrialsTotal: 400,
			StartedUnixMS:    now.Add(-time.Minute).UnixMilli(),
			UpdatedUnixMS:    now.Add(-updatedAgo).UnixMilli(),
			RefreshMS:        1000,
			ThroughputPerSec: tput, ETASeconds: eta,
		}
	}
	files := []*File{
		mk(0, "running", 0, 50, 100, time.Second, 10, 30),      // healthy
		mk(1, "running", 100, 160, 200, 10*time.Second, 5, 50), // stalled (>3s window)
		mk(2, "complete", 200, 300, 300, 4*time.Second, 0, 0),  // terminal: never stalled
		mk(3, "running", 300, 310, 400, time.Second, 2, 45),    // straggler: 0.1 << median
	}
	fl := BuildFleet(files, now, 0)
	if fl.State != "running" || fl.Running != 3 || fl.Complete != 1 {
		t.Fatalf("fleet = %+v", fl)
	}
	if fl.TrialsTotal != 400 || fl.TrialsMerged != 50+60+100+10 {
		t.Fatalf("fleet trials %d/%d", fl.TrialsMerged, fl.TrialsTotal)
	}
	if fl.ThroughputPerSec != 17 {
		t.Fatalf("fleet throughput %v, want sum of running = 17", fl.ThroughputPerSec)
	}
	if fl.ETASeconds != 50 {
		t.Fatalf("fleet ETA %v, want max over running = 50", fl.ETASeconds)
	}
	if fl.Stalled != 1 || !fl.Shards[1].Stalled || fl.Shards[0].Stalled || fl.Shards[2].Stalled {
		t.Fatalf("stall detection: %+v", fl.Shards)
	}
	if fl.Stragglers != 1 || !fl.Shards[3].Straggler {
		t.Fatalf("straggler detection: %+v", fl.Shards)
	}
	if fl.Terminal() {
		t.Fatal("running fleet reported terminal")
	}

	// State precedence: any failed shard makes the fleet failed.
	files[0].State = "failed"
	files[0].Error = "boom"
	fl = BuildFleet(files, now, 0)
	if fl.State != "failed" || fl.Failed != 1 {
		t.Fatalf("fleet with failed shard = %+v", fl)
	}

	// All-terminal fleets are terminal, and halted outranks complete.
	for _, f := range files {
		f.State = "complete"
		f.Error = ""
	}
	files[2].State = "halted"
	fl = BuildFleet(files, now, 0)
	if fl.State != "halted" || !fl.Terminal() {
		t.Fatalf("terminal fleet = %+v", fl)
	}

	if fl = BuildFleet(nil, now, 0); fl.State != "" || fl.Terminal() {
		t.Fatalf("empty fleet = %+v", fl)
	}
}

func TestFleetWriteText(t *testing.T) {
	now := time.UnixMilli(2_000_000_000_000)
	files := []*File{{
		Format: Format, Version: Version, RunID: "rrrr", Label: "D7/daly",
		State: "running", Shard: 1, Of: 4,
		TrialsFirst: 100, TrialsMerged: 110, TrialsLimit: 200, TrialsTotal: 400,
		StartedUnixMS: now.Add(-time.Minute).UnixMilli(),
		UpdatedUnixMS: now.Add(-20 * time.Second).UnixMilli(),
		RefreshMS:     1000, ThroughputPerSec: 3, ETASeconds: 30,
	}}
	var sb strings.Builder
	if err := BuildFleet(files, now, 0).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fleet running", "D7/daly 1/4", "stalled"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := BuildFleet(nil, now, 0).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no progress sidecars") {
		t.Fatalf("empty render = %q", sb.String())
	}
}

// TestCampaignSidecarComplete runs a real campaign with the Writer as
// its Progress hook and checks the terminal sidecar.
func TestCampaignSidecarComplete(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json"+Suffix)
	w := NewWriter(path, Meta{RunID: "feedfacefeedface", Label: "complete"})
	camp := testCampaign("sidecar-complete", 64, 4)
	camp.Progress = w.Update
	var pool obs.Pool
	camp.ObserverFactory = pool.Observer
	if _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	merged, err := pool.Merged()
	if err != nil {
		t.Fatal(err)
	}
	snap := merged.Snapshot()
	w.SetRegistry(&snap)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f := mustRead(t, path)
	if f.State != "complete" || f.TrialsMerged != 64 || f.TrialsTotal != 64 {
		t.Fatalf("sidecar = %+v", f)
	}
	if f.Fraction() != 1 {
		t.Fatalf("fraction %v", f.Fraction())
	}
	if f.Registry == nil || len(f.Registry.Counters) == 0 {
		t.Fatal("terminal sidecar missing registry")
	}
	if f.PeakRSSBytes <= 0 {
		t.Fatal("peak RSS not recorded")
	}
}

// TestCampaignSidecarFailed is the error-path satellite: a shard that
// dies mid-campaign still leaves a valid sidecar recording the failed
// state, the error, and the partially merged prefix.
func TestCampaignSidecarFailed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json"+Suffix)
	w := NewWriter(path, Meta{RunID: "feedfacefeedface", Label: "failing"})
	camp := testCampaign("sidecar-fail", 300, 8)
	camp.Scenario.System = twoLevel(100, 300) // failure-heavy
	camp.ControllerFactory = func() sim.PlanController {
		return &failAfterController{threshold: 7}
	}
	camp.Progress = w.Update
	_, err := camp.Run()
	if err == nil {
		t.Fatal("campaign did not fail")
	}
	f := mustRead(t, path)
	if f.State != "failed" {
		t.Fatalf("state %q, want failed", f.State)
	}
	if f.Error == "" || !strings.Contains(err.Error(), f.Error) && !strings.Contains(f.Error, "trial") {
		t.Fatalf("sidecar error %q does not reflect run error %q", f.Error, err)
	}
	if f.TrialsMerged >= 300 {
		t.Fatalf("failed sidecar claims %d merged of 300", f.TrialsMerged)
	}

	fl := BuildFleet([]*File{f}, time.UnixMilli(f.UpdatedUnixMS), 0)
	if fl.State != "failed" || !fl.Terminal() {
		t.Fatalf("fleet over failed sidecar = %+v", fl)
	}
}

// TestCrossProcessRegistryDeterminism is the fleet-determinism
// satellite: one process observing a whole campaign and four shard
// "processes" each observing their slice must yield byte-identical
// registry snapshots once the shard sidecars' registries merge.
func TestCrossProcessRegistryDeterminism(t *testing.T) {
	const trials = 128
	base := testCampaign("sidecar-fleet", trials, 0)
	base.Scenario.System = twoLevel(150, 450) // enough failures to fill histograms

	// Single process: one observer pool over every trial.
	solo := base
	var soloPool obs.Pool
	solo.ObserverFactory = soloPool.Observer
	solo.Workers = 3
	if _, err := solo.Run(); err != nil {
		t.Fatal(err)
	}
	soloMerged, err := soloPool.Merged()
	if err != nil {
		t.Fatal(err)
	}
	soloJSON, err := json.Marshal(soloMerged.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	// Four shard processes, each with its own pool, worker count, and
	// sidecar; registries ride in the sidecars.
	dir := t.TempDir()
	for shard := 0; shard < 4; shard++ {
		c := base
		c.Workers = 1 + shard
		var pool obs.Pool
		c.ObserverFactory = pool.Observer
		w := NewWriter(filepath.Join(dir, fmt.Sprintf("shard%d.json%s", shard, Suffix)), Meta{
			RunID: "0123456789abcdef", ConfigDigest: "0123456789abcdef",
			Label: "fleet", Shard: shard, Of: 4,
		})
		c.Progress = w.Update
		if err := c.RunShard(filepath.Join(dir, fmt.Sprintf("shard%d.json", shard)), shard, 4); err != nil {
			t.Fatal(err)
		}
		merged, err := pool.Merged()
		if err != nil {
			t.Fatal(err)
		}
		snap := merged.Snapshot()
		w.SetRegistry(&snap)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	files, err := Scan(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Fatalf("scanned %d sidecars, want 4", len(files))
	}
	fleetSnap, err := MergeRegistries(files)
	if err != nil {
		t.Fatal(err)
	}
	fleetJSON, err := json.Marshal(fleetSnap)
	if err != nil {
		t.Fatal(err)
	}
	if string(fleetJSON) != string(soloJSON) {
		t.Fatalf("fleet-merged registry differs from single-process registry\nsolo:  %s\nfleet: %s",
			soloJSON, fleetJSON)
	}

	// Merge order must not matter: reverse the shard set.
	rev := []*File{files[3], files[2], files[1], files[0]}
	revSnap, err := MergeRegistries(rev)
	if err != nil {
		t.Fatal(err)
	}
	revJSON, err := json.Marshal(revSnap)
	if err != nil {
		t.Fatal(err)
	}
	if string(revJSON) != string(soloJSON) {
		t.Fatal("reversed shard order changed the merged registry")
	}
}
