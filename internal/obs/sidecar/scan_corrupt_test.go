package sidecar

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestScanCorruptAndTruncated: a monitor scans while writers rename
// files underneath it, so every flavor of damaged sidecar — truncated
// mid-write, binary garbage, empty, schema-mismatched, or a directory
// wearing the suffix — must be skipped silently while the valid
// entries still come back, sorted.
func TestScanCorruptAndTruncated(t *testing.T) {
	dir := t.TempDir()
	put := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	valid := func(digest string, shard int) []byte {
		f := File{
			Format: Format, Version: Version, RunID: digest, ConfigDigest: digest,
			State: "running", Shard: shard, Of: 2,
			TrialsLimit: 100, TrialsMerged: 40, TrialsTotal: 100,
			StartedUnixMS: 1000, UpdatedUnixMS: 2000, RefreshMS: 1000,
		}
		data, err := json.Marshal(&f)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	good := valid("dddd", 0)
	put("good0"+Suffix, good)
	put("good1"+Suffix, valid("dddd", 1))

	// Truncated mid-write: the front half of a valid document.
	put("truncated"+Suffix, good[:len(good)/2])
	// Binary garbage, not JSON at all.
	put("garbage"+Suffix, []byte{0x00, 0xff, 0x1f, 0x8b, 0x08, 0x00})
	// Empty file (writer created it, crashed before the first flush).
	put("empty"+Suffix, nil)
	// Well-formed JSON whose types don't match the schema.
	put("wrongtype"+Suffix, []byte(`{"format":"mlckpt-progress","version":"not-a-number"}`))
	// Well-formed JSON of the wrong shape entirely.
	put("array"+Suffix, []byte(`[1,2,3]`))
	// Valid document missing required identity fields.
	put("incomplete"+Suffix, []byte(`{"format":"`+Format+`","version":`+strconv.Itoa(Version)+`}`))
	// A directory wearing the suffix must not be opened as a file.
	if err := os.Mkdir(filepath.Join(dir, "subdir"+Suffix), 0o755); err != nil {
		t.Fatal(err)
	}

	files, err := Scan(dir)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(files) != 2 {
		names := make([]string, len(files))
		for i, f := range files {
			names[i] = filepath.Base(f.Path)
		}
		t.Fatalf("Scan returned %d files %v, want the 2 valid ones", len(files), names)
	}
	for i, f := range files {
		if f.ConfigDigest != "dddd" || f.Shard != i {
			t.Errorf("files[%d] = %s shard %d, want dddd shard %d", i, f.ConfigDigest, f.Shard, i)
		}
	}
}

// TestReadCorruptErrors: Read (unlike Scan) must surface what went
// wrong, naming the path, so single-file tooling can diagnose damage.
func TestReadCorruptErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated", []byte(`{"format":"` + Format)},
		{"empty", nil},
		{"badschema", []byte(`{"format":"nope","version":1}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+Suffix)
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := Read(path)
			if err == nil {
				t.Fatal("Read accepted a damaged sidecar")
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error %q does not name the path %q", err, path)
			}
		})
	}
	if _, err := Read(filepath.Join(dir, "absent"+Suffix)); err == nil {
		t.Fatal("Read of a missing file did not error")
	}
}
