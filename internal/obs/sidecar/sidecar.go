// Package sidecar implements the fleet-observability progress sidecar:
// a small, versioned JSON file each campaign or shard process writes
// atomically next to its checkpoint/shard artifact, carrying identity
// (run ID + config digest), the merged-trial prefix, throughput and ETA,
// peak RSS, and optionally an embedded obs registry snapshot. Sidecars
// are the cross-process half of the telemetry layer: a monitor (mlckpt
// -watch, obshttp /shards) scans a directory of them and aggregates a
// fleet view without talking to the worker processes at all, and the
// embedded snapshots merge (obs.MergeSnapshots) into a fleet-wide
// registry that is byte-identical to what a single process covering the
// same trials would report.
//
// Staleness is self-describing: every sidecar records its writer's
// refresh cadence (RefreshMS), so a monitor flags a shard as stalled
// when the file has not been rewritten within staleFactor × refresh —
// no shared clock or configuration needed beyond the directory.
package sidecar

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/obs"
)

const (
	// Format and Version identify the sidecar schema, following the
	// repo's artifact convention ("mlckpt-campaign" checkpoints,
	// "mlckpt-flight" dumps).
	Format  = "mlckpt-progress"
	Version = 1
	// Suffix is the conventional sidecar filename suffix: a sidecar
	// lives at <artifact path> + Suffix.
	Suffix = ".progress"
)

// File is one progress sidecar. All timestamps are Unix milliseconds;
// trial indices are absolute campaign indices (a shard covering
// [TrialsFirst, TrialsLimit) reports TrialsMerged inside that range,
// against the whole campaign's TrialsTotal).
type File struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	// RunID correlates this sidecar with event-log lines and flight
	// dumps of the same run; ConfigDigest identifies the campaign
	// configuration, so shards belong together exactly when their
	// digests match.
	RunID        string `json:"run_id"`
	ConfigDigest string `json:"config_digest,omitempty"`
	// Label names the campaign cell (e.g. "D7/daly").
	Label string `json:"label,omitempty"`
	// Shard/Of locate this process in the fleet; 0/1 for an unsharded run.
	Shard int `json:"shard"`
	Of    int `json:"of"`
	PID   int `json:"pid,omitempty"`

	// State is a sim.RunState string: running, complete, failed, halted.
	State string `json:"state"`
	Error string `json:"error,omitempty"`

	TrialsFirst  int `json:"trials_first"`
	TrialsLimit  int `json:"trials_limit"`
	TrialsMerged int `json:"trials_merged"`
	TrialsTotal  int `json:"trials_total"`

	StartedUnixMS    int64 `json:"started_unix_ms"`
	UpdatedUnixMS    int64 `json:"updated_unix_ms"`
	CheckpointUnixMS int64 `json:"checkpoint_unix_ms,omitempty"`
	// RefreshMS is the writer's target refresh period — the staleness
	// rule input.
	RefreshMS int64 `json:"refresh_ms"`

	ThroughputPerSec float64 `json:"throughput_per_sec,omitempty"`
	ETASeconds       float64 `json:"eta_seconds,omitempty"`
	PeakRSSBytes     int64   `json:"peak_rss_bytes,omitempty"`

	// Registry, when present, is the shard's obs snapshot (attached at
	// checkpoint-quiescent points and on final writes; mid-run refreshes
	// may carry only the live Stats section, since worker-sharded
	// registries cannot be snapshotted concurrently).
	Registry *obs.Snapshot `json:"registry,omitempty"`

	// Path is where the sidecar was read from (set by Read/Scan, not
	// serialized).
	Path string `json:"-"`
}

var validStates = map[string]bool{
	"running": true, "complete": true, "failed": true, "halted": true,
}

// Validate checks the sidecar against its schema.
func (f *File) Validate() error {
	if f.Format != Format {
		return fmt.Errorf("sidecar: format %q, want %q", f.Format, Format)
	}
	if f.Version != Version {
		return fmt.Errorf("sidecar: unsupported %s version %d", Format, f.Version)
	}
	if f.RunID == "" {
		return fmt.Errorf("sidecar: missing run_id")
	}
	if !validStates[f.State] {
		return fmt.Errorf("sidecar: invalid state %q", f.State)
	}
	if f.Of <= 0 || f.Shard < 0 || f.Shard >= f.Of {
		return fmt.Errorf("sidecar: shard %d/%d out of range", f.Shard, f.Of)
	}
	if f.TrialsFirst < 0 || f.TrialsMerged < f.TrialsFirst ||
		f.TrialsLimit < f.TrialsMerged || f.TrialsTotal < f.TrialsLimit {
		return fmt.Errorf("sidecar: inconsistent trial counts first=%d merged=%d limit=%d total=%d",
			f.TrialsFirst, f.TrialsMerged, f.TrialsLimit, f.TrialsTotal)
	}
	if f.RefreshMS <= 0 {
		return fmt.Errorf("sidecar: refresh_ms %d must be positive", f.RefreshMS)
	}
	if f.StartedUnixMS <= 0 || f.UpdatedUnixMS < f.StartedUnixMS {
		return fmt.Errorf("sidecar: inconsistent timestamps started=%d updated=%d",
			f.StartedUnixMS, f.UpdatedUnixMS)
	}
	return nil
}

// Fraction returns the completed fraction of this sidecar's own trial
// range (1 for an empty range).
func (f *File) Fraction() float64 {
	n := f.TrialsLimit - f.TrialsFirst
	if n <= 0 {
		return 1
	}
	return float64(f.TrialsMerged-f.TrialsFirst) / float64(n)
}

// Read parses and validates one sidecar file.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("sidecar: %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	f.Path = path
	return &f, nil
}

// Scan reads every *.progress sidecar in dir, sorted by (config digest,
// label, shard, path) so fleet aggregation is deterministic. Unreadable
// or invalid files are skipped (a scanner races against writers'
// renames); scanning an empty or sidecar-free directory returns an
// empty slice, but a missing directory is an error.
func Scan(dir string) ([]*File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), Suffix) {
			continue
		}
		f, err := Read(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.ConfigDigest != b.ConfigDigest {
			return a.ConfigDigest < b.ConfigDigest
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Path < b.Path
	})
	return out, nil
}

// ConfigDigest hashes the identifying parts of a campaign configuration
// (system, technique, seed words, trial count, block size, sink kind…)
// into a short stable hex string. Shard sidecars with equal digests
// belong to the same campaign; the digest doubles as the deterministic
// run ID, so re-running the same configuration correlates with the same
// artifacts.
func ConfigDigest(parts ...string) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// MergeRegistries merges the embedded registry snapshots of a shard set
// into one fleet-wide snapshot via obs.MergeSnapshots — deterministic
// (and for counters/histograms/spans bit-identical to a single-process
// snapshot) because the files are ordered by shard. Files without a
// registry are skipped; merging zero registries returns an empty
// snapshot.
func MergeRegistries(files []*File) (obs.Snapshot, error) {
	ordered := append([]*File(nil), files...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.ConfigDigest != b.ConfigDigest {
			return a.ConfigDigest < b.ConfigDigest
		}
		return a.Shard < b.Shard
	})
	var snaps []obs.Snapshot
	for _, f := range ordered {
		if f.Registry != nil {
			snaps = append(snaps, *f.Registry)
		}
	}
	return obs.MergeSnapshots(snaps...)
}
