// Package obshttp exposes a running campaign's telemetry over HTTP,
// stdlib-only: Prometheus text exposition at /metrics, the registry
// JSON snapshot at /snapshot, the span-tree summary at /spans, the
// flight-recorder dump at /flight, and net/http/pprof under
// /debug/pprof/. Sources are pull-based functions, so handlers always
// observe current state — StreamStats and snapshot sources safe for
// concurrent use show live mid-run values, while worker-sharded
// instruments appear once their shards merge.
package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/obs"
)

// Options wires telemetry sources into the handler. Every field is
// optional; endpoints with a nil source respond 404. Sources are called
// per request and must be safe for concurrent use.
type Options struct {
	// Snapshot supplies the registry state for /metrics and /snapshot.
	Snapshot func() obs.Snapshot
	// Spans supplies the merged span forest for /spans (and is attached
	// to /snapshot output).
	Spans func() []obs.SpanNode
	// Stats supplies live streaming estimators, rendered as Prometheus
	// summaries on /metrics and attached to /snapshot output.
	Stats func() []obs.StreamStatSnapshot
	// Flight writes the flight-recorder dump for /flight (wire it to
	// trace.FlightPool.Dump).
	Flight func(io.Writer) error
	// Ready gates /readyz: nil means always ready (the endpoint still
	// answers 200, so probes work on commands that never gate), false
	// answers 503. Commands flip it once their telemetry sources are
	// publishing (see Live.SetReady).
	Ready func() bool
	// Shards supplies the fleet progress view for /shards — typically a
	// closure scanning a sidecar directory into a sidecar.Fleet. The
	// value is rendered as JSON; an error answers 500.
	Shards func() (any, error)
}

// getOnly rejects write methods: the telemetry surface is pull-only,
// so anything but GET/HEAD answers 405 with an Allow header.
func getOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// Handler returns the telemetry mux (exported separately from Serve for
// tests and for embedding into an existing server).
func Handler(opts Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", getOnly(func(w http.ResponseWriter, r *http.Request) {
		if opts.Snapshot == nil && opts.Stats == nil {
			http.NotFound(w, r)
			return
		}
		var snap obs.Snapshot
		if opts.Snapshot != nil {
			snap = opts.Snapshot()
		}
		if opts.Stats != nil {
			snap.Stats = opts.Stats()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, snap)
	}))
	mux.HandleFunc("/snapshot", getOnly(func(w http.ResponseWriter, r *http.Request) {
		if opts.Snapshot == nil {
			http.NotFound(w, r)
			return
		}
		snap := opts.Snapshot()
		if opts.Spans != nil {
			snap.Spans = opts.Spans()
		}
		if opts.Stats != nil {
			snap.Stats = opts.Stats()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(snap)
	}))
	mux.HandleFunc("/spans", getOnly(func(w http.ResponseWriter, r *http.Request) {
		if opts.Spans == nil {
			http.NotFound(w, r)
			return
		}
		spans := opts.Spans()
		switch format := r.URL.Query().Get("format"); format {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			enc.Encode(spans)
			return
		case "", "text":
			// fall through to the text summary
		default:
			http.Error(w, fmt.Sprintf("unknown format %q (want text or json)", format), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		obs.WriteSpanSummary(w, spans)
	}))
	mux.HandleFunc("/flight", getOnly(func(w http.ResponseWriter, r *http.Request) {
		if opts.Flight == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := opts.Flight(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}))
	mux.HandleFunc("/healthz", getOnly(func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process answers, so it is alive.
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	}))
	mux.HandleFunc("/readyz", getOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Ready != nil && !opts.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, "not ready\n")
			return
		}
		io.WriteString(w, "ready\n")
	}))
	mux.HandleFunc("/shards", getOnly(func(w http.ResponseWriter, r *http.Request) {
		if opts.Shards == nil {
			http.NotFound(w, r)
			return
		}
		fleet, err := opts.Shards()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(fleet)
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving the telemetry handler on addr (":0" picks a free
// port) in a background goroutine and returns immediately.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(opts)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

// WriteMetrics renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as themselves, registry
// histograms as cumulative-bucket histograms, stream stats as
// summaries with quantile labels.
func WriteMetrics(w io.Writer, snap obs.Snapshot) error {
	var b strings.Builder
	typeWritten := map[string]bool{}
	family := func(name, kind string) string {
		n := sanitizeName(name)
		if !typeWritten[n] {
			typeWritten[n] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", n, kind)
		}
		return n
	}
	for _, c := range snap.Counters {
		n := family(c.Name, "counter")
		fmt.Fprintf(&b, "%s%s %d\n", n, renderLabels(c.Labels, "", 0), c.Value)
	}
	for _, g := range snap.Gauges {
		n := family(g.Name, "gauge")
		fmt.Fprintf(&b, "%s%s %s\n", n, renderLabels(g.Labels, "", 0), formatFloat(g.Value))
	}
	for _, h := range snap.Histograms {
		n := family(h.Name, "histogram")
		var cum uint64
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket%s %d\n", n, renderLabels(h.Labels, "le", bk.UpperBound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", n, renderLabels(h.Labels, "le", math.Inf(1)), h.Count)
		fmt.Fprintf(&b, "%s_sum%s %s\n", n, renderLabels(h.Labels, "", 0), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", n, renderLabels(h.Labels, "", 0), h.Count)
	}
	for _, s := range snap.Stats {
		n := family(s.Name, "summary")
		for _, q := range []struct {
			q float64
			v float64
		}{{0.5, s.P50}, {0.9, s.P90}, {0.99, s.P99}} {
			fmt.Fprintf(&b, "%s%s %s\n", n, renderLabels(nil, "quantile", q.q), formatFloat(q.v))
		}
		fmt.Fprintf(&b, "%s_sum %s\n", n, formatFloat(s.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", n, s.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// sanitizeName maps a metric name into the Prometheus character set
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeName(name string) string {
	ok := func(i int, r rune) bool {
		return r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
	}
	clean := true
	for i, r := range name {
		if !ok(i, r) {
			clean = false
			break
		}
	}
	if clean && name != "" {
		return name
	}
	var b strings.Builder
	for i, r := range name {
		if ok(i, r) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// renderLabels renders a label set, optionally with one extra
// float-valued label (le/quantile) appended.
func renderLabels(labels []obs.Label, extraKey string, extraVal float64) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, sanitizeName(l.Key), escapeLabel(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, formatFloat(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects (+Inf, -Inf,
// NaN spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return fmt.Sprintf("%g", v)
	}
}
