package obshttp

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"repro/internal/obs"
)

// Live is a concurrency-safe telemetry source for long-running commands.
// The registry snapshot, span forest, and flight dump are *checkpointed*:
// the command publishes them at stage boundaries (after each technique or
// experiment target), because worker-sharded instruments only become
// coherent once their shards merge. The StreamSet carries the genuinely
// live per-trial values — workers publish into it mid-run, and every
// /metrics scrape sees current quantiles and counts.
type Live struct {
	// Stats holds the live streaming estimators. Safe for concurrent
	// Observe/Snapshots; commands feed it from campaign TrialDone hooks.
	Stats *obs.StreamSet

	mu     sync.Mutex
	snap   obs.Snapshot
	spans  []obs.SpanNode
	flight []byte
	ready  bool
	shards func() (any, error)
}

// NewLive returns a source with an empty stream set.
func NewLive() *Live {
	return &Live{Stats: obs.NewStreamSet()}
}

// PublishSnapshot checkpoints the registry snapshot served at /metrics
// and /snapshot. Call it from the goroutine that owns the registry.
func (l *Live) PublishSnapshot(s obs.Snapshot) {
	l.mu.Lock()
	l.snap = s
	l.mu.Unlock()
}

// PublishSpans checkpoints the span forest served at /spans.
func (l *Live) PublishSpans(spans []obs.SpanNode) {
	l.mu.Lock()
	l.spans = spans
	l.mu.Unlock()
}

// PublishFlight renders a flight dump (wire it to trace.FlightPool.Dump
// or trace.WriteFlight) and checkpoints the bytes served at /flight.
func (l *Live) PublishFlight(dump func(io.Writer) error) error {
	var b bytes.Buffer
	if err := dump(&b); err != nil {
		return err
	}
	l.mu.Lock()
	l.flight = b.Bytes()
	l.mu.Unlock()
	return nil
}

// SetReady flips the /readyz state. Commands mark themselves ready once
// sources are publishing (e.g. after the first experiment target starts)
// and may clear it during shutdown so probes drain traffic first.
func (l *Live) SetReady(ready bool) {
	l.mu.Lock()
	l.ready = ready
	l.mu.Unlock()
}

// SetShards installs the fleet progress source served at /shards —
// typically a closure scanning a sidecar directory into a
// sidecar.Fleet. Install before calling Options/Serve.
func (l *Live) SetShards(f func() (any, error)) {
	l.mu.Lock()
	l.shards = f
	l.mu.Unlock()
}

func (l *Live) isReady() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ready
}

func (l *Live) snapshot() obs.Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snap
}

func (l *Live) spanForest() []obs.SpanNode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spans
}

func (l *Live) writeFlight(w io.Writer) error {
	l.mu.Lock()
	b := l.flight
	l.mu.Unlock()
	if b == nil {
		return fmt.Errorf("obshttp: no flight dump published")
	}
	_, err := w.Write(b)
	return err
}

// Options builds handler options backed by this source. The /flight
// endpoint is wired only if a dump has already been published (publish
// an empty pool's dump before calling Serve to enable it).
func (l *Live) Options() Options {
	o := Options{
		Snapshot: l.snapshot,
		Spans:    l.spanForest,
		Stats:    l.Stats.Snapshots,
		Ready:    l.isReady,
	}
	l.mu.Lock()
	if l.flight != nil {
		o.Flight = l.writeFlight
	}
	if l.shards != nil {
		o.Shards = l.shards
	}
	l.mu.Unlock()
	return o
}
