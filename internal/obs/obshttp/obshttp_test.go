package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

func testRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("trials_total", "system", "D7").Add(200)
	r.Gauge("sweep_best_eff").Set(0.87)
	h := r.Histogram("makespan_hours", "system", "D7")
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	return r
}

func testOptions() Options {
	reg := testRegistry()
	set := obs.NewStreamSet()
	live := set.Stat("live_makespan")
	for i := 1; i <= 5; i++ {
		live.Observe(float64(i))
	}
	tr := obs.NewTracer()
	s := tr.Start("campaign")
	tr.Start("run").End()
	s.End()
	return Options{
		Snapshot: reg.Snapshot,
		Spans:    tr.Snapshot,
		Stats:    set.Snapshots,
		Flight: func(w io.Writer) error {
			_, err := io.WriteString(w, `{"format":"mlckpt-flight","version":1,"streams":[]}`)
			return err
		},
	}
}

func get(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, metrics := get(t, base, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := checkPrometheusText(metrics); err != nil {
		t.Fatalf("/metrics not parseable: %v\n%s", err, metrics)
	}
	for _, want := range []string{
		"# TYPE trials_total counter",
		`trials_total{system="D7"} 200`,
		"# TYPE makespan_hours histogram",
		`makespan_hours_bucket{system="D7",le="+Inf"} 10`,
		"# TYPE live_makespan summary",
		`live_makespan{quantile="0.5"}`,
		"live_makespan_count 5",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, snapBody := get(t, base, "/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot status %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(snapBody), &snap); err != nil {
		t.Fatalf("/snapshot not JSON: %v", err)
	}
	if snap.Counter("trials_total") != 200 {
		t.Errorf("snapshot counter = %d", snap.Counter("trials_total"))
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "campaign" {
		t.Errorf("snapshot spans = %+v", snap.Spans)
	}
	if len(snap.Stats) != 1 || snap.Stats[0].Count != 5 {
		t.Errorf("snapshot stats = %+v", snap.Stats)
	}

	code, spans := get(t, base, "/spans")
	if code != http.StatusOK || !strings.Contains(spans, "campaign") {
		t.Errorf("/spans = %d %q", code, spans)
	}
	code, spansJSON := get(t, base, "/spans?format=json")
	var nodes []obs.SpanNode
	if code != http.StatusOK || json.Unmarshal([]byte(spansJSON), &nodes) != nil || len(nodes) != 1 {
		t.Errorf("/spans?format=json = %d %q", code, spansJSON)
	}

	code, flight := get(t, base, "/flight")
	if code != http.StatusOK || !strings.Contains(flight, "mlckpt-flight") {
		t.Errorf("/flight = %d %q", code, flight)
	}

	code, _ = get(t, base, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestNilSources404(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/metrics", "/snapshot", "/spans", "/flight"} {
		if code, _ := get(t, base, path); code != http.StatusNotFound {
			t.Errorf("%s status %d, want 404", path, code)
		}
	}
}

func TestWriteMetricsHistogramCumulative(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("m")
	h.Observe(1)
	h.Observe(10)
	h.Observe(100)
	var b strings.Builder
	if err := WriteMetrics(&b, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Bucket counts must be cumulative and end at the total.
	var last uint64
	lines := strings.Split(b.String(), "\n")
	buckets := 0
	for _, line := range lines {
		if !strings.HasPrefix(line, "m_bucket") {
			continue
		}
		buckets++
		f := strings.Fields(line)
		n, err := strconv.ParseUint(f[len(f)-1], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = n
	}
	if buckets < 4 || last != 3 { // 3 value buckets + +Inf
		t.Fatalf("buckets = %d, final count = %d\n%s", buckets, last, b.String())
	}
	if err := checkPrometheusText(b.String()); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeName(t *testing.T) {
	for in, want := range map[string]string{
		"ok_name":    "ok_name",
		"with-dash":  "with_dash",
		"9lead":      "_lead",
		"dots.too":   "dots_too",
		"":           "_",
		"colons:ok":  "colons:ok",
		"ümlaut":     "_mlaut",
		"CamelCase9": "CamelCase9",
	} {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escapeLabel = %q", got)
	}
}

// checkPrometheusText is a strict-enough parser for the text exposition
// format: every non-comment line must be `name{labels} value` with a
// valid metric name, balanced quoted labels, and a parseable value.
func checkPrometheusText(text string) error {
	for ln, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rest := line
		i := strings.IndexAny(rest, "{ ")
		if i <= 0 {
			return fmt.Errorf("line %d: no metric name in %q", ln+1, line)
		}
		name := rest[:i]
		for j, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (j > 0 && r >= '0' && r <= '9')) {
				return fmt.Errorf("line %d: bad metric name %q", ln+1, name)
			}
		}
		rest = rest[i:]
		if rest[0] == '{' {
			end := strings.LastIndex(rest, "}")
			if end < 0 {
				return fmt.Errorf("line %d: unterminated labels in %q", ln+1, line)
			}
			labels := rest[1:end]
			if labels != "" {
				for _, pair := range splitLabels(labels) {
					eq := strings.Index(pair, "=")
					if eq <= 0 {
						return fmt.Errorf("line %d: bad label %q", ln+1, pair)
					}
					v := pair[eq+1:]
					if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
						return fmt.Errorf("line %d: unquoted label value %q", ln+1, pair)
					}
				}
			}
			rest = rest[end+1:]
		}
		rest = strings.TrimSpace(rest)
		if rest != "+Inf" && rest != "-Inf" && rest != "NaN" {
			if _, err := strconv.ParseFloat(rest, 64); err != nil {
				return fmt.Errorf("line %d: bad value %q: %v", ln+1, rest, err)
			}
		}
	}
	return nil
}

// splitLabels splits k1="v1",k2="v2" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			cur.WriteByte(c)
			i++
			cur.WriteByte(s[i])
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}
