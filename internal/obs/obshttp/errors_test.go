package obshttp

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMethodNotAllowed: the telemetry surface is pull-only — every
// endpoint must reject write methods with 405 + Allow, for every verb
// a confused client might send.
func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(Handler(testOptions()))
	defer ts.Close()

	endpoints := []string{"/metrics", "/snapshot", "/spans", "/flight", "/healthz", "/readyz", "/shards"}
	methods := []string{http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch}
	for _, ep := range endpoints {
		for _, method := range methods {
			t.Run(method+" "+ep, func(t *testing.T) {
				req, err := http.NewRequest(method, ts.URL+ep, strings.NewReader("x"))
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusMethodNotAllowed {
					t.Errorf("code = %d, want 405", resp.StatusCode)
				}
				if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
					t.Errorf("Allow = %q, want GET advertised", allow)
				}
			})
		}
	}
}

// TestHeadAllowed: HEAD is a read and must pass the method filter.
func TestHeadAllowed(t *testing.T) {
	ts := httptest.NewServer(Handler(testOptions()))
	defer ts.Close()
	resp, err := http.Head(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("HEAD /healthz = %d, want 200", resp.StatusCode)
	}
}

// TestSpansFormatNegotiation: /spans accepts text (default) and json;
// anything else is a client error, not a silent fallback.
func TestSpansFormatNegotiation(t *testing.T) {
	ts := httptest.NewServer(Handler(testOptions()))
	defer ts.Close()

	cases := []struct {
		query string
		code  int
	}{
		{"", http.StatusOK},
		{"?format=text", http.StatusOK},
		{"?format=json", http.StatusOK},
		{"?format=xml", http.StatusBadRequest},
		{"?format=JSON", http.StatusBadRequest}, // exact match only
		{"?format=yaml", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run("format="+tc.query, func(t *testing.T) {
			code, body := get(t, ts.URL, "/spans"+tc.query)
			if code != tc.code {
				t.Fatalf("code = %d body=%q, want %d", code, body, tc.code)
			}
			if tc.code == http.StatusBadRequest && !strings.Contains(body, "unknown format") {
				t.Errorf("error body %q should name the bad format", body)
			}
		})
	}
}
