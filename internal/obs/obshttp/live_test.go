package obshttp

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestLivePublishCheckpoints(t *testing.T) {
	l := NewLive()
	if o := l.Options(); o.Flight != nil {
		t.Fatal("flight endpoint wired before any dump was published")
	}

	reg := obs.NewRegistry()
	reg.Counter("campaigns_total").Inc()
	l.PublishSnapshot(reg.Snapshot())
	tr := obs.NewTracer()
	tr.Start("root").End()
	l.PublishSpans(tr.Snapshot())
	l.Stats.Stat("live_eff").Observe(0.9)
	if err := l.PublishFlight(func(w io.Writer) error {
		_, err := io.WriteString(w, `{"format":"mlckpt-flight"}`)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	o := l.Options()
	if snap := o.Snapshot(); snap.Counter("campaigns_total") != 1 {
		t.Errorf("snapshot lost the published registry: %+v", snap)
	}
	if spans := o.Spans(); len(spans) != 1 || spans[0].Name != "root" {
		t.Errorf("spans = %+v, want [root]", spans)
	}
	if stats := o.Stats(); len(stats) != 1 || stats[0].Count != 1 {
		t.Errorf("stats = %+v, want one observation", stats)
	}
	if o.Flight == nil {
		t.Fatal("flight endpoint missing after publish")
	}
	var b bytes.Buffer
	if err := o.Flight(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != `{"format":"mlckpt-flight"}` {
		t.Errorf("flight bytes = %q", b.String())
	}
}

func TestLiveConcurrentPublishAndRead(t *testing.T) {
	// Stats stream in from worker goroutines while snapshots checkpoint
	// and scrapes read — the mix the live endpoints see mid-run.
	l := NewLive()
	o := l.Options()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := l.Stats.Stat("live_eff")
			for i := 0; i < 500; i++ {
				st.Observe(1.0)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		reg := obs.NewRegistry()
		for i := 0; i < 100; i++ {
			reg.Counter("ticks").Inc()
			l.PublishSnapshot(reg.Snapshot())
		}
	}()
	for i := 0; i < 200; i++ {
		_ = o.Snapshot()
		_ = o.Stats()
	}
	wg.Wait()
	if got := o.Stats()[0].Count; got != 2000 {
		t.Errorf("stat count = %d, want 2000", got)
	}
	if got := o.Snapshot().Counter("ticks"); got != 100 {
		t.Errorf("ticks = %d, want 100", got)
	}
}
