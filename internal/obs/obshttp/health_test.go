package obshttp

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHealthzAlwaysOK(t *testing.T) {
	srv := httptest.NewServer(Handler(Options{}))
	defer srv.Close()
	if code, body := get(t, srv.URL, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
}

func TestReadyz(t *testing.T) {
	// No gate: always ready.
	srv := httptest.NewServer(Handler(Options{}))
	if code, _ := get(t, srv.URL, "/readyz"); code != 200 {
		t.Fatalf("ungated /readyz = %d", code)
	}
	srv.Close()

	ready := false
	srv = httptest.NewServer(Handler(Options{Ready: func() bool { return ready }}))
	defer srv.Close()
	if code, body := get(t, srv.URL, "/readyz"); code != 503 || !strings.Contains(body, "not ready") {
		t.Fatalf("not-ready /readyz = %d %q", code, body)
	}
	ready = true
	if code, body := get(t, srv.URL, "/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("ready /readyz = %d %q", code, body)
	}
}

func TestShardsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(Options{}))
	if code, _ := get(t, srv.URL, "/shards"); code != 404 {
		t.Fatalf("sourceless /shards = %d", code)
	}
	srv.Close()

	fail := errors.New("scan failed")
	var src func() (any, error)
	srv = httptest.NewServer(Handler(Options{Shards: func() (any, error) { return src() }}))
	defer srv.Close()

	src = func() (any, error) { return nil, fail }
	if code, body := get(t, srv.URL, "/shards"); code != 500 || !strings.Contains(body, "scan failed") {
		t.Fatalf("failing /shards = %d %q", code, body)
	}

	src = func() (any, error) {
		return map[string]any{"state": "running", "trials_merged": 42}, nil
	}
	code, body := get(t, srv.URL, "/shards")
	if code != 200 {
		t.Fatalf("/shards = %d", code)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("/shards body %q: %v", body, err)
	}
	if m["state"] != "running" || m["trials_merged"] != float64(42) {
		t.Fatalf("/shards payload = %v", m)
	}
}

func TestLiveReadyAndShards(t *testing.T) {
	l := NewLive()
	l.SetShards(func() (any, error) { return map[string]any{"state": "complete"}, nil })
	srv := httptest.NewServer(Handler(l.Options()))
	defer srv.Close()

	if code, _ := get(t, srv.URL, "/readyz"); code != 503 {
		t.Fatalf("fresh Live /readyz = %d, want 503 until SetReady", code)
	}
	l.SetReady(true)
	if code, _ := get(t, srv.URL, "/readyz"); code != 200 {
		t.Fatal("/readyz not ready after SetReady(true)")
	}
	if code, body := get(t, srv.URL, "/shards"); code != 200 || !strings.Contains(body, "complete") {
		t.Fatalf("Live /shards = %d %q", code, body)
	}
	if code, _ := get(t, srv.URL, "/healthz"); code != 200 {
		t.Fatal("/healthz failed")
	}
}
