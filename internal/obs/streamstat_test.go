package obs

import (
	"math"
	"sync"
	"testing"
)

func TestStreamStatSnapshot(t *testing.T) {
	s := NewStreamStat()
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	snap := s.Snapshot("makespan")
	if snap.Name != "makespan" || snap.Count != 100 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Mean != 50.5 {
		t.Errorf("mean = %g, want 50.5", snap.Mean)
	}
	if snap.Min != 1 || snap.Max != 100 {
		t.Errorf("min/max = %g/%g", snap.Min, snap.Max)
	}
	if math.Abs(snap.Sum-5050) > 1e-9 {
		t.Errorf("sum = %g, want 5050", snap.Sum)
	}
	if snap.CI95 <= 0 {
		t.Errorf("ci95 = %g, want > 0", snap.CI95)
	}
	// Log-bucket quantiles are approximate; bucket width at these
	// magnitudes is well under 10 %.
	if snap.P50 < 40 || snap.P50 > 60 {
		t.Errorf("p50 = %g, want ≈50", snap.P50)
	}
	if snap.P99 < 90 || snap.P99 > 110 {
		t.Errorf("p99 = %g, want ≈99", snap.P99)
	}
	if snap.P50 > snap.P90 || snap.P90 > snap.P99 {
		t.Errorf("quantiles not monotone: %g %g %g", snap.P50, snap.P90, snap.P99)
	}
}

func TestStreamStatEmpty(t *testing.T) {
	snap := NewStreamStat().Snapshot("empty")
	if snap.Count != 0 || snap.CI95 != 0 || snap.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
}

func TestStreamStatConcurrent(t *testing.T) {
	s := NewStreamStat()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Observe(1.0)
			}
		}()
	}
	// Concurrent mid-run snapshots must be safe and internally coherent.
	for i := 0; i < 50; i++ {
		snap := s.Snapshot("live")
		if snap.Count > 0 && snap.Mean != 1.0 {
			t.Fatalf("mid-run mean = %g at count %d", snap.Mean, snap.Count)
		}
	}
	wg.Wait()
	if got := s.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestStreamSet(t *testing.T) {
	set := NewStreamSet()
	set.Stat("zeta").Observe(3)
	set.Stat("alpha").Observe(1)
	set.Stat("alpha").Observe(2)
	if set.Stat("alpha") != set.Stat("alpha") {
		t.Fatal("Stat did not return the cached estimator")
	}
	snaps := set.Snapshots()
	if len(snaps) != 2 || snaps[0].Name != "alpha" || snaps[1].Name != "zeta" {
		t.Fatalf("snapshots = %+v", snaps)
	}
	if snaps[0].Count != 2 || snaps[1].Count != 1 {
		t.Fatalf("counts = %d, %d", snaps[0].Count, snaps[1].Count)
	}
}
