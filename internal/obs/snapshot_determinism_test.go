package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// shardRegistry builds a worker-style registry shard with overlapping
// and shard-specific families, scaled by k so merged values are
// distinguishable from unmerged ones.
func shardRegistry(k int) *Registry {
	r := NewRegistry()
	r.Counter("trials_total", "system", "D7").Add(uint64(10 * k))
	r.Counter("events_total").Add(uint64(100 * k))
	// Gauges are last-writer-wins under Merge, so worker shards label
	// them per shard; only then is the merged result order-independent.
	r.Gauge("last_makespan", "worker", string(rune('0'+k))).Set(float64(k))
	h := r.Histogram("makespan_hours", "system", "D7")
	for i := 0; i < k; i++ {
		h.Observe(float64(i + 1))
	}
	// A family only some shards touch.
	if k%2 == 0 {
		r.Counter("failures_total", "level", "2").Add(uint64(k))
	}
	return r
}

func TestWriteJSONByteIdenticalAcrossMergeOrders(t *testing.T) {
	// Satellite: snapshot serialization must not depend on the order
	// worker shards were merged in.
	orders := [][]int{
		{1, 2, 3, 4},
		{4, 3, 2, 1},
		{3, 1, 4, 2},
	}
	var want []byte
	for i, order := range orders {
		merged := NewRegistry()
		for _, k := range order {
			if err := merged.Merge(shardRegistry(k)); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := merged.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("merge order %v produced different JSON:\n%s\nvs\n%s", order, buf.Bytes(), want)
		}
	}
}

func TestMergeLabelDisjointLossless(t *testing.T) {
	// Satellite: merging families whose label sets are disjoint must be
	// lossless in both directions — each side's members appear unchanged
	// in the result, with no cross-contamination.
	build := func(system string, trials uint64, obs float64) *Registry {
		r := NewRegistry()
		r.Counter("trials_total", "system", system).Add(trials)
		r.Gauge("eff", "system", system).Set(obs)
		r.Histogram("makespan_hours", "system", system).Observe(obs)
		return r
	}
	check := func(t *testing.T, m *Registry) {
		t.Helper()
		snap := m.Snapshot()
		if got := snap.Counter("trials_total"); got != 30 {
			t.Fatalf("summed trials_total = %d, want 30", got)
		}
		wantCounters := map[string]uint64{"D7": 10, "Coastal": 20}
		for _, c := range snap.Counters {
			if c.Name != "trials_total" {
				continue
			}
			if len(c.Labels) != 1 || wantCounters[c.Labels[0].Value] != c.Value {
				t.Fatalf("counter member %+v unexpected", c)
			}
			delete(wantCounters, c.Labels[0].Value)
		}
		if len(wantCounters) != 0 {
			t.Fatalf("missing counter members: %v", wantCounters)
		}
		if len(snap.Histograms) != 2 {
			t.Fatalf("histogram members = %d, want 2", len(snap.Histograms))
		}
		for _, h := range snap.Histograms {
			if h.Count != 1 {
				t.Fatalf("histogram member %s count = %d, want 1", h.Name, h.Count)
			}
		}
	}

	a := build("D7", 10, 1.5)
	b := build("Coastal", 20, 2.5)
	ab := NewRegistry()
	if err := ab.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	check(t, ab)

	// Other direction: b absorbs a.
	a2 := build("D7", 10, 1.5)
	b2 := build("Coastal", 20, 2.5)
	if err := b2.Merge(a2); err != nil {
		t.Fatal(err)
	}
	check(t, b2)

	// The two directions agree exactly.
	if !reflect.DeepEqual(ab.Snapshot(), b2.Snapshot()) {
		t.Fatalf("a←b and b←a snapshots differ:\n%+v\nvs\n%+v", ab.Snapshot(), b2.Snapshot())
	}
}
