package obs

import (
	"encoding/json"
	"math"
	"math/big"
	"math/rand"
	"reflect"
	"testing"
)

// randomValues mixes magnitudes, signs, subnormals and exact integers —
// the operand classes that break naive float summation.
func randomValues(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(6) {
		case 0:
			out[i] = float64(rng.Intn(1000)) // exact small integer
		case 1:
			out[i] = rng.NormFloat64() * 1e-12
		case 2:
			out[i] = rng.NormFloat64() * 1e12
		case 3:
			out[i] = math.Ldexp(rng.Float64(), -1050) // (near-)subnormal
		case 4:
			out[i] = -out[max(0, i-1)] // cancellation pressure
		default:
			out[i] = rng.NormFloat64()
		}
	}
	return out
}

// TestExactSumGroupingInvariance is the core property: any partition of
// the same values into shards, merged in any order, yields bit-identical
// state and rounding — the basis of cross-process snapshot determinism.
func TestExactSumGroupingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		vals := randomValues(rng, 200)
		var ref ExactSum
		for _, v := range vals {
			ref.Add(v)
		}
		refState := ref.State()
		refRound := ref.Round()

		nShards := 1 + rng.Intn(7)
		shards := make([]ExactSum, nShards)
		for _, v := range vals {
			shards[rng.Intn(nShards)].Add(v)
		}
		var merged ExactSum
		for _, i := range rng.Perm(nShards) {
			merged.Merge(&shards[i])
		}
		if got := merged.State(); !reflect.DeepEqual(got, refState) {
			t.Fatalf("trial %d: merged state differs from single-accumulator state", trial)
		}
		if got := merged.Round(); math.Float64bits(got) != math.Float64bits(refRound) {
			t.Fatalf("trial %d: Round mismatch: %x vs %x", trial, got, refRound)
		}
	}
}

// TestExactSumMatchesBigFloat checks accuracy against an exact
// big.Float reference: Round must land within a hair of the true sum
// (the fold is deterministic but not single-rounded).
func TestExactSumMatchesBigFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		vals := randomValues(rng, 300)
		var s ExactSum
		exact := new(big.Float).SetPrec(4096)
		for _, v := range vals {
			s.Add(v)
			exact.Add(exact, new(big.Float).SetPrec(4096).SetFloat64(v))
		}
		want, _ := exact.Float64()
		got := s.Round()
		if want == 0 {
			if math.Abs(got) > 1e-300 {
				t.Fatalf("trial %d: got %g, want 0", trial, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-12 {
			t.Fatalf("trial %d: got %g, want %g (rel err %g)", trial, got, want, rel)
		}
	}
}

// TestExactSumIntegerExact: sums that fit in 2^53 round exactly.
func TestExactSumIntegerExact(t *testing.T) {
	var s ExactSum
	total := 0.0
	for i := 1; i <= 10000; i++ {
		s.Add(float64(i))
		total += float64(i)
	}
	if got := s.Round(); got != total {
		t.Fatalf("integer sum: got %v, want %v", got, total)
	}
}

// TestExactSumCancellation: adding and removing the same huge values
// leaves exactly zero — naive float accumulation would not.
func TestExactSumCancellation(t *testing.T) {
	var s ExactSum
	for i := 0; i < 10; i++ {
		s.Add(1e308)
		s.Add(1.25e-300)
	}
	for i := 0; i < 10; i++ {
		s.Add(-1e308)
	}
	if got := s.Round(); got != 10*1.25e-300 {
		t.Fatalf("cancellation: got %g, want %g", got, 10*1.25e-300)
	}
	for i := 0; i < 10; i++ {
		s.Add(-1.25e-300)
	}
	if !s.IsZero() {
		t.Fatalf("full cancellation: not zero (round %g)", s.Round())
	}
}

// TestExactSumNegativeTotals: negative sums round correctly despite the
// spill/limb split of the canonical form.
func TestExactSumNegativeTotals(t *testing.T) {
	cases := [][]float64{
		{-1},
		{-0.1, -0.2},
		{1.5, -2.25},
		{-1e300, 1e280},
		{math.SmallestNonzeroFloat64, -1},
	}
	for _, vs := range cases {
		var s ExactSum
		naive := 0.0
		for _, v := range vs {
			s.Add(v)
			naive += v
		}
		got := s.Round()
		// With ≤2 effective magnitudes the naive sum is correctly
		// rounded, so the exact accumulator must agree or do better.
		if math.Abs(got-naive) > math.Abs(naive)*1e-15+1e-320 {
			t.Fatalf("sum %v: got %g, want ≈%g", vs, got, naive)
		}
		if naive < 0 != (got < 0) {
			t.Fatalf("sum %v: sign mismatch: got %g", vs, got)
		}
	}
}

// TestExactSumOverflowRounds: sums beyond MaxFloat64 are held exactly
// and round to +Inf, and cancel back down exactly.
func TestExactSumOverflowRounds(t *testing.T) {
	var s ExactSum
	s.Add(math.MaxFloat64)
	s.Add(math.MaxFloat64)
	if got := s.Round(); !math.IsInf(got, 1) {
		t.Fatalf("2·MaxFloat64: got %g, want +Inf", got)
	}
	s.Add(-math.MaxFloat64)
	if got := s.Round(); got != math.MaxFloat64 {
		t.Fatalf("after cancel: got %g, want MaxFloat64", got)
	}
}

// TestExactSumStateRoundTrip: JSON round-trips preserve the state and
// rounding bit-for-bit, and non-canonical states are rejected.
func TestExactSumStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := randomValues(rng, 100)
	var s ExactSum
	for _, v := range vals {
		s.Add(v)
	}
	blob, err := json.Marshal(s.State())
	if err != nil {
		t.Fatal(err)
	}
	var st ExactSumState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	back, err := ExactSumFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(back.Round()) != math.Float64bits(s.Round()) {
		t.Fatalf("round-trip Round mismatch")
	}
	if !reflect.DeepEqual(back.State(), s.State()) {
		t.Fatalf("round-trip state mismatch")
	}

	for _, bad := range []ExactSumState{
		{Limbs: [][2]int64{{-1, 5}}},
		{Limbs: [][2]int64{{xsumLimbs, 5}}},
		{Limbs: [][2]int64{{3, 1}, {3, 2}}},
		{Limbs: [][2]int64{{5, 1}, {4, 2}}},
		{Limbs: [][2]int64{{0, 1 << 33}}},
		{Limbs: [][2]int64{{0, -1}}},
	} {
		if _, err := ExactSumFromState(bad); err == nil {
			t.Fatalf("state %+v: expected validation error", bad)
		}
	}
}

// TestExactSumSubnormals: the smallest representable values accumulate
// exactly.
func TestExactSumSubnormals(t *testing.T) {
	var s ExactSum
	const n = 1 << 12
	for i := 0; i < n; i++ {
		s.Add(math.SmallestNonzeroFloat64)
	}
	want := math.SmallestNonzeroFloat64 * n // exact: a power-of-two scale
	if got := s.Round(); got != want {
		t.Fatalf("subnormal sum: got %g, want %g", got, want)
	}
}
