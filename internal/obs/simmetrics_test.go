package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

// failureHeavyConfig returns a D4 scenario with a short-interval plan:
// plenty of failures, checkpoints at two levels, and scratch restarts.
func failureHeavyConfig(t *testing.T) sim.Scenario {
	t.Helper()
	sys, err := system.ByName("D4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Scenario{
		System: sys,
		Plan:   pattern.Plan{Tau0: 1.3, Counts: []int{3}, Levels: []int{1, 2}},
	}
	if err := cfg.Plan.Validate(sys); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestSimMetricsInvariant checks, over a seeded 1000-trial run, that the
// event-stream reconstruction partitions wall time exactly: per trial,
// Last().Total() == WallTime within 1e-9, and each category agrees with
// the engine's own Breakdown accounting.
func TestSimMetricsInvariant(t *testing.T) {
	cfg := failureHeavyConfig(t)
	m := NewSimMetrics()
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Observe(m)
	seed := rng.Campaign(1, "obs-invariant")

	const trials = 1000
	var wantCompleted, wantCapped, wantScratch uint64
	wantFailures := map[int]uint64{}
	sumWall := 0.0
	for i := 0; i < trials; i++ {
		res, err := eng.Run(seed.Trial(i))
		if err != nil {
			t.Fatal(err)
		}
		last := m.Last()
		if diff := math.Abs(last.Total() - last.WallTime); diff > 1e-9 {
			t.Fatalf("trial %d: breakdown total %v != wall %v (diff %g)",
				i, last.Total(), last.WallTime, diff)
		}
		if last.WallTime != res.WallTime {
			t.Fatalf("trial %d: reconstructed wall %v != engine wall %v", i, last.WallTime, res.WallTime)
		}
		// The reconstruction must agree with the engine's own accounting.
		b := res.Breakdown
		checks := []struct {
			name      string
			got, want float64
		}{
			{"useful", last.ComputeUseful, b.UsefulCompute},
			{"rework", last.ComputeRework, b.LostCompute},
			{"ckptOK", sumSlice(last.CheckpointOK), b.CheckpointOK},
			{"ckptWasted", sumSlice(last.CheckpointWasted), b.CheckpointFail},
			{"restartOK", sumSlice(last.RestartOK), b.RestartOK},
			{"restartFail", sumSlice(last.RestartFailed), b.RestartFail},
		}
		for _, c := range checks {
			if math.Abs(c.got-c.want) > 1e-6 {
				t.Fatalf("trial %d: %s reconstructed %v vs engine %v", i, c.name, c.got, c.want)
			}
		}
		if res.Completed {
			wantCompleted++
		} else {
			wantCapped++
		}
		wantScratch += uint64(res.ScratchRestarts)
		for s, n := range res.Failures {
			wantFailures[s+1] += uint64(n)
		}
		sumWall += res.WallTime
	}

	if m.Trials() != trials {
		t.Errorf("trials counter = %d, want %d", m.Trials(), trials)
	}
	s := m.Snapshot()
	if got := s.Counter("sim_trials_completed"); got != wantCompleted {
		t.Errorf("completed = %d, want %d", got, wantCompleted)
	}
	if got := s.Counter("sim_trials_capped"); got != wantCapped {
		t.Errorf("capped = %d, want %d", got, wantCapped)
	}
	if got := s.Counter("sim_scratch_restarts_total"); got != wantScratch {
		t.Errorf("scratch = %d, want %d", got, wantScratch)
	}
	var wantTotalFailures uint64
	for sev, want := range wantFailures {
		wantTotalFailures += want
		got := m.Registry().Counter("sim_failures_total", "severity", levelStr(sev)).Value()
		if got != want {
			t.Errorf("failures severity %d = %d, want %d", sev, got, want)
		}
	}
	if got := s.Counter("sim_failures_total"); got != wantTotalFailures {
		t.Errorf("failure family total = %d, want %d", got, wantTotalFailures)
	}
	agg := m.Aggregate()
	if math.Abs(agg.WallTime-sumWall) > 1e-6 {
		t.Errorf("aggregate wall %v != summed wall %v", agg.WallTime, sumWall)
	}
	if math.Abs(agg.Total()-agg.WallTime) > trials*1e-9 {
		t.Errorf("aggregate total %v != aggregate wall %v", agg.Total(), agg.WallTime)
	}
	if m.Registry().Histogram("sim_trial_wall_minutes").Count() != trials {
		t.Errorf("wall histogram count = %d", m.Registry().Histogram("sim_trial_wall_minutes").Count())
	}
}

func sumSlice(s []float64) float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

// TestPoolCampaignMerge runs a parallel campaign with one shard per
// worker and checks the merged aggregate matches the campaign's own
// statistics.
func TestPoolCampaignMerge(t *testing.T) {
	const trials = 200
	camp := sim.Campaign{
		Scenario: failureHeavyConfig(t),
		Trials:   trials,
		Seed:     rng.Campaign(1, "obs-pool"),
	}
	pool := &Pool{}
	camp.ObserverFactory = pool.Observer
	var mu sync.Mutex
	var wallSum float64
	var done int
	camp.TrialDone = func(r sim.TrialResult) {
		mu.Lock()
		wallSum += r.WallTime
		done++
		mu.Unlock()
	}
	res, err := camp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if done != trials {
		t.Errorf("TrialDone ran %d times, want %d", done, trials)
	}
	m, err := pool.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if m.Trials() != trials {
		t.Fatalf("merged trials = %d, want %d", m.Trials(), trials)
	}
	agg := m.Aggregate()
	if math.Abs(agg.WallTime-wallSum) > 1e-6 {
		t.Errorf("merged wall %v != TrialDone sum %v", agg.WallTime, wallSum)
	}
	if math.Abs(agg.Total()-agg.WallTime) > trials*1e-9 {
		t.Errorf("merged total %v != merged wall %v", agg.Total(), agg.WallTime)
	}
	// Cross-check against the campaign's mean breakdown.
	want := res.MeanBreakdown
	n := float64(trials)
	if got := agg.ComputeUseful / n; math.Abs(got-want.UsefulCompute) > 1e-6 {
		t.Errorf("mean useful %v vs campaign %v", got, want.UsefulCompute)
	}
	if got := sumSlice(agg.RestartOK) / n; math.Abs(got-want.RestartOK) > 1e-6 {
		t.Errorf("mean restartOK %v vs campaign %v", got, want.RestartOK)
	}
	if got := int(m.Snapshot().Counter("sim_trials_completed")); got != res.Completed {
		t.Errorf("merged completed %d vs campaign %d", got, res.Completed)
	}
}

func TestSimMetricsReusedAcrossTrials(t *testing.T) {
	cfg := failureHeavyConfig(t)
	m := NewSimMetrics()
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Observe(m)
	seed := rng.Campaign(3, "obs-reuse")
	var walls []float64
	for i := 0; i < 3; i++ {
		res, err := eng.Run(seed.Trial(i))
		if err != nil {
			t.Fatal(err)
		}
		walls = append(walls, res.WallTime)
		// Last must describe only the just-finished trial.
		if m.Last().WallTime != res.WallTime {
			t.Fatalf("trial %d: Last().WallTime = %v, want %v", i, m.Last().WallTime, res.WallTime)
		}
	}
	if m.Trials() != 3 {
		t.Errorf("trials = %d", m.Trials())
	}
	if agg := m.Aggregate(); math.Abs(agg.WallTime-(walls[0]+walls[1]+walls[2])) > 1e-9 {
		t.Errorf("aggregate wall %v != %v", agg.WallTime, walls[0]+walls[1]+walls[2])
	}
}

func TestWriteSummary(t *testing.T) {
	m := NewSimMetrics()
	eng, err := sim.NewEngine(failureHeavyConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	eng.Observe(m)
	if _, err := eng.Run(rng.Campaign(1, "obs-summary").Trial(0)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"phase breakdown over 1 trial(s)",
		"compute/useful",
		"compute/rework",
		"checkpoint L1 ok",
		"total",
		"failures by severity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestMultiSkipsNil(t *testing.T) {
	m := NewSimMetrics()
	fan := Multi(nil, m, nil)
	fan.Observe(sim.Event{Kind: sim.EvPhaseStart, Phase: sim.PhaseCompute})
	fan.Observe(sim.Event{Kind: sim.EvPhaseEnd, Phase: sim.PhaseCompute, Time: 2, Progress: 2})
	fan.Observe(sim.Event{Kind: sim.EvComplete, Time: 2, Progress: 2})
	if m.Trials() != 1 {
		t.Fatalf("event fan-out missed the live observer: trials = %d", m.Trials())
	}
	if m.Last().ComputeUseful != 2 {
		t.Fatalf("useful = %v, want 2", m.Last().ComputeUseful)
	}
}

// TestObservedTrialAllocFree pins the satellite guarantee that the
// observed-trial hot path performs zero heap allocations in steady
// state: after a warmup (which registers every instrument and sizes the
// recycled per-level scratch), further observed trials must not
// allocate. This is the regression guard for the 8 allocs/op that
// resetTrial's slice drop used to cost (see BENCH_obs.json).
func TestObservedTrialAllocFree(t *testing.T) {
	cfg := failureHeavyConfig(t)
	m := NewSimMetrics()
	eng, err := sim.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Observe(m)
	seed := rng.Campaign(1, "obs-allocs")
	for i := 0; i < 50; i++ {
		if _, err := eng.Run(seed.Trial(i)); err != nil {
			t.Fatal(err)
		}
	}
	trial := 50
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := eng.Run(seed.Trial(trial)); err != nil {
			t.Fatal(err)
		}
		trial++
	})
	if allocs != 0 {
		t.Fatalf("observed trial allocates %.1f times per run, want 0", allocs)
	}
}
