package obs

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("empty count = %d", h.Count())
	}
	for name, v := range map[string]float64{
		"min": h.Min(), "max": h.Max(), "mean": h.Mean(), "std": h.Std(),
		"q0": h.Quantile(0), "q50": h.Quantile(0.5), "q100": h.Quantile(1),
	} {
		if !math.IsNaN(v) {
			t.Errorf("empty %s = %v, want NaN", name, v)
		}
	}
	if h.Sum() != 0 {
		t.Errorf("empty sum = %v", h.Sum())
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(42.5)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 42.5 || h.Max() != 42.5 || h.Mean() != 42.5 {
		t.Errorf("min/max/mean = %v/%v/%v, want 42.5", h.Min(), h.Max(), h.Mean())
	}
	if h.Std() != 0 {
		t.Errorf("single-sample std = %v, want 0", h.Std())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42.5 {
			t.Errorf("Quantile(%v) = %v, want 42.5 (clamped to exact range)", q, got)
		}
	}
}

func TestHistogramRejectsNonFinite(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	if h.Count() != 0 {
		t.Fatalf("non-finite samples were accepted: count = %d", h.Count())
	}
	if h.Rejected() != 3 {
		t.Fatalf("rejected = %d, want 3", h.Rejected())
	}
	h.Observe(1.0)
	if h.Count() != 1 || h.Mean() != 1.0 {
		t.Fatalf("finite sample after rejections: count=%d mean=%v", h.Count(), h.Mean())
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-3)
	h.Observe(5)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != -3 || h.Max() != 5 {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.01); q < -3 || q > 5 {
		t.Errorf("quantile out of sample range: %v", q)
	}
}

func TestHistogramQuantileMonotonicity(t *testing.T) {
	h := NewHistogram()
	r := rand.New(rand.NewPCG(7, 9))
	for i := 0; i < 5000; i++ {
		// Heavy-tailed mixture spanning many decades plus exact ties.
		switch i % 3 {
		case 0:
			h.Observe(math.Exp(r.NormFloat64() * 4))
		case 1:
			h.Observe(1e-3)
		default:
			h.Observe(float64(i))
		}
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0+1e-12; q += 0.001 {
		v := h.Quantile(q)
		if math.IsNaN(v) {
			t.Fatalf("Quantile(%v) = NaN on non-empty histogram", q)
		}
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v: not monotone", q, v, prev)
		}
		prev = v
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Errorf("quantile endpoints: q0=%v min=%v q1=%v max=%v",
			h.Quantile(0), h.Min(), h.Quantile(1), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	// Log-bucket resolution is 10^(1/8) ≈ 1.33x per bucket.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := q * 10000
		if got < want/1.4 || got > want*1.4 {
			t.Errorf("Quantile(%v) = %v, want within 1.4x of %v", q, got, want)
		}
	}
}

func TestHistogramMergeDisjointRanges(t *testing.T) {
	a := NewHistogram()
	b := NewHistogram()
	for i := 0; i < 100; i++ {
		a.Observe(1e-6 * float64(i+1)) // microscale
		b.Observe(1e6 * float64(i+1))  // megascale
	}
	b.Observe(math.NaN())
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Rejected() != 1 {
		t.Errorf("merged rejected = %d, want 1", a.Rejected())
	}
	if a.Min() != 1e-6 || a.Max() != 1e8 {
		t.Errorf("merged min/max = %v/%v, want 1e-6/1e8", a.Min(), a.Max())
	}
	// The median separates the two disjoint clouds.
	med := a.Quantile(0.5)
	if med < 1e-4 || med > 1e6 {
		t.Errorf("merged median %v does not fall between the clouds", med)
	}
	if lo := a.Quantile(0.2); lo > 1e-3 {
		t.Errorf("q20 = %v, should land in the microscale cloud", lo)
	}
	if hi := a.Quantile(0.8); hi < 1e5 {
		t.Errorf("q80 = %v, should land in the megascale cloud", hi)
	}
	// Mean is dominated by the megascale cloud.
	if a.Mean() < 1e6 {
		t.Errorf("merged mean = %v", a.Mean())
	}
}

func TestHistogramMergeEmptyAndSelf(t *testing.T) {
	a := NewHistogram()
	a.Observe(3)
	if err := a.Merge(NewHistogram()); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1 {
		t.Fatalf("merge with empty changed count: %d", a.Count())
	}
	if err := a.Merge(a); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1 {
		t.Fatalf("self-merge double-counted: %d", a.Count())
	}
	empty := NewHistogram()
	if err := empty.Merge(a); err != nil {
		t.Fatal(err)
	}
	if empty.Count() != 1 || empty.Min() != 3 {
		t.Fatalf("merge into empty: count=%d min=%v", empty.Count(), empty.Min())
	}
}

func TestHistogramMergeSchemeMismatch(t *testing.T) {
	a := NewHistogram()
	b, err := NewHistogramScheme(1e-3, 1e3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("merging incompatible schemes succeeded")
	}
}

func TestHistogramSchemeValidation(t *testing.T) {
	for _, c := range []struct {
		lo, hi float64
		pd     int
	}{
		{0, 1, 8}, {-1, 1, 8}, {1, 1, 8}, {2, 1, 8}, {1, 10, 0},
	} {
		if _, err := NewHistogramScheme(c.lo, c.hi, c.pd); err == nil {
			t.Errorf("NewHistogramScheme(%v,%v,%d) accepted", c.lo, c.hi, c.pd)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var sum float64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Sum() != sum {
		t.Errorf("sum = %v, want %v", h.Sum(), sum)
	}
	if got, want := h.Mean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", got, want)
	}
	// Sample stddev of the classic 2,4,4,4,5,5,7,9 set is sqrt(32/7).
	if got, want := h.Std(), math.Sqrt(32.0/7); math.Abs(got-want) > 1e-9 {
		t.Errorf("std = %v, want %v", got, want)
	}
}
