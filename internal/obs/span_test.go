package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

// fakeClock advances a fixed step per reading, so span durations are
// deterministic.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func testTracer(step time.Duration) *Tracer {
	t := NewTracer()
	t.now = (&fakeClock{t: time.Unix(0, 0), step: step}).now
	return t
}

func TestTracerTree(t *testing.T) {
	tr := testTracer(time.Millisecond)
	outer := tr.Start("campaign")
	for i := 0; i < 3; i++ {
		tr.Start("run").End()
	}
	outer.End()
	tr.Start("merge").End()

	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("root has %d children, want 2: %+v", len(snap), snap)
	}
	// Sorted by name: campaign before merge.
	if snap[0].Name != "campaign" || snap[1].Name != "merge" {
		t.Fatalf("children = %q, %q", snap[0].Name, snap[1].Name)
	}
	c := snap[0]
	if c.Count != 1 || len(c.Children) != 1 {
		t.Fatalf("campaign node = %+v", c)
	}
	run := c.Children[0]
	if run.Name != "run" || run.Count != 3 {
		t.Fatalf("run node = %+v", run)
	}
	// Each run span is one clock step (start and end readings 1ms apart);
	// campaign wraps all three plus its own readings.
	if run.TotalNS != int64(3*time.Millisecond) {
		t.Errorf("run total = %v, want 3ms", run.Total())
	}
	if c.TotalNS <= run.TotalNS {
		t.Errorf("campaign total %v not larger than nested runs %v", c.Total(), run.Total())
	}
}

func TestTracerNilNoop(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	s.End()
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %+v", got)
	}
	Span{}.End() // zero span is a no-op too
}

func TestTracerMergeOrderIndependent(t *testing.T) {
	build := func(names ...string) *Tracer {
		tr := testTracer(time.Millisecond)
		for _, n := range names {
			outer := tr.Start(n)
			tr.Start("inner").End()
			outer.End()
		}
		return tr
	}
	a := build("alpha", "beta")
	b := build("beta", "gamma", "alpha")

	ab := NewTracer()
	ab.Merge(a)
	ab.Merge(b)
	ba := NewTracer()
	ba.Merge(b)
	ba.Merge(a)
	if !reflect.DeepEqual(ab.Snapshot(), ba.Snapshot()) {
		t.Fatalf("merge order changed snapshot:\n%+v\nvs\n%+v", ab.Snapshot(), ba.Snapshot())
	}
}

func TestSpanAdoptGrafts(t *testing.T) {
	shard := testTracer(time.Millisecond)
	for i := 0; i < 5; i++ {
		shard.Start("trial").End()
	}
	main := testTracer(time.Millisecond)
	run := main.Start("run")
	run.End()
	run.Adopt(shard)
	snap := main.Snapshot()
	if len(snap) != 1 || snap[0].Name != "run" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap[0].Children) != 1 || snap[0].Children[0].Name != "trial" || snap[0].Children[0].Count != 5 {
		t.Fatalf("grafted children = %+v", snap[0].Children)
	}
}

func TestTracerStartEndDoesNotAllocate(t *testing.T) {
	tr := NewTracer()
	outer := tr.Start("outer")
	tr.Start("inner").End()
	outer.End()
	avg := testing.AllocsPerRun(100, func() {
		o := tr.Start("outer")
		tr.Start("inner").End()
		o.End()
	})
	if avg != 0 {
		t.Fatalf("steady-state Start/End allocates %.1f objects, want 0", avg)
	}
}

// spanCampaign runs a small D7 campaign with per-worker tracer shards
// attached via TrialSpans and returns the merged span snapshot.
func spanCampaign(t *testing.T, workers int, pool *TracerPool) []SpanNode {
	t.Helper()
	sys, err := system.ByName("D7")
	if err != nil {
		t.Fatal(err)
	}
	camp := sim.Campaign{
		Scenario: sim.Scenario{
			System: sys,
			Plan:   pattern.Plan{Tau0: 1.3, Counts: []int{3}, Levels: []int{1, 2}},
		},
		Trials:  48,
		Seed:    rng.Campaign(7, "span").Scenario("D7/span"),
		Workers: workers,
		ObserverFactory: func(worker int) sim.Observer {
			// Each worker shard gets a private deterministic clock: every
			// trial span is exactly one clock step, so the merged totals
			// are identical however the 48 trials are partitioned.
			sh := pool.Shard()
			sh.now = (&fakeClock{t: time.Unix(0, 0), step: time.Microsecond}).now
			return TrialSpans(sh)
		},
	}
	if _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	return pool.Merged().Snapshot()
}

func TestTrialSpanShardsMergeAcrossWorkerCounts(t *testing.T) {
	// Satellite: the merged span tree must be identical (names, nesting,
	// counts, and — under per-shard deterministic clocks — durations) for
	// 1, 4, and 16 workers.
	var want []SpanNode
	for i, workers := range []int{1, 4, 16} {
		got := spanCampaign(t, workers, &TracerPool{})
		if len(got) != 1 || got[0].Name != "trial" || got[0].Count != 48 {
			t.Fatalf("workers=%d: merged tree = %+v", workers, got)
		}
		if i == 0 {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d span tree differs:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

func TestTrialSpansObserverDoesNotAllocate(t *testing.T) {
	// The per-event observer path (span open on first event, close on
	// trial end) must stay allocation-free so flight/span-instrumented
	// campaigns keep the engine's 0 allocs/trial property.
	sys, err := system.ByName("D7")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Scenario{
		System: sys,
		Plan:   pattern.Plan{Tau0: 1.3, Counts: []int{3}, Levels: []int{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer()
	eng.Observe(TrialSpans(tr))
	seed := rng.Campaign(7, "span-alloc").Scenario("D7")
	if _, err := eng.Run(seed.Trial(0)); err != nil {
		t.Fatal(err)
	}
	trial := 1
	avg := testing.AllocsPerRun(10, func() {
		if _, err := eng.Run(seed.Trial(trial)); err != nil {
			t.Fatal(err)
		}
		trial++
	})
	if avg > 1 {
		t.Fatalf("span-observed trial allocates %.1f objects, want ~0", avg)
	}
}

func TestWriteSpanSummary(t *testing.T) {
	tr := testTracer(time.Millisecond)
	outer := tr.Start("campaign")
	tr.Start("run").End()
	outer.End()
	var buf bytes.Buffer
	if err := WriteSpanSummary(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"span", "campaign", "run", "count"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := WriteSpanSummary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no spans") {
		t.Errorf("empty summary = %q", buf.String())
	}
}
