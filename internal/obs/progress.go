package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress reports completion rate (units/sec) and, when the total is
// known, an ETA. Tick/Add are safe for concurrent use (campaign workers
// call them per trial); output is throttled to one line per period.
type Progress struct {
	mu     sync.Mutex
	w      io.Writer
	label  string
	unit   string
	total  int64
	done   int64
	start  time.Time
	last   time.Time
	period time.Duration
	now    func() time.Time // test hook
}

// NewProgress returns a reporter writing to w. label prefixes every
// line; total is the expected number of units (0 = unknown: rate only,
// no ETA or percentage).
func NewProgress(w io.Writer, label string, total int64) *Progress {
	p := &Progress{
		w: w, label: label, unit: "trials", total: total,
		period: 500 * time.Millisecond, now: time.Now,
	}
	p.start = p.now()
	return p
}

// SetInterval overrides the minimum period between progress lines (the
// cmd tools' -progress-interval flag). Non-positive intervals disable
// throttling entirely — every Tick emits a line.
func (p *Progress) SetInterval(d time.Duration) {
	p.mu.Lock()
	p.period = d
	p.mu.Unlock()
}

// Tick records one completed unit, emitting a throttled progress line.
func (p *Progress) Tick() { p.Add(1) }

// Add records n completed units.
func (p *Progress) Add(n int64) {
	p.mu.Lock()
	p.done += n
	now := p.now()
	if now.Sub(p.last) < p.period {
		p.mu.Unlock()
		return
	}
	p.last = now
	line := fmt.Sprintf("%s: %s", p.label, p.line(now))
	p.mu.Unlock()
	fmt.Fprintln(p.w, line)
}

// Finish emits a final summary line: the completed count (and 100 %
// when a total was known), the total elapsed time, and the mean rate
// over the whole run — no ETA.
func (p *Progress) Finish() {
	p.mu.Lock()
	now := p.now()
	elapsed := now.Sub(p.start)
	rate := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rate = float64(p.done) / s
	}
	var line string
	if p.total > 0 {
		// An aborted run reports its true percentage; a completed one
		// reads 100.0%.
		pct := 100 * float64(p.done) / float64(p.total)
		line = fmt.Sprintf("%s: done — %d/%d %s (%.1f%%) in %s, %.1f %s/s mean",
			p.label, p.done, p.total, p.unit, pct, elapsed.Round(time.Millisecond), rate, p.unit)
	} else {
		line = fmt.Sprintf("%s: done — %d %s in %s, %.1f %s/s mean",
			p.label, p.done, p.unit, elapsed.Round(time.Millisecond), rate, p.unit)
	}
	p.mu.Unlock()
	fmt.Fprintln(p.w, line)
}

// line renders the current progress (callers hold p.mu).
func (p *Progress) line(now time.Time) string {
	elapsed := now.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(p.done) / elapsed
	}
	if p.total > 0 {
		pct := 100 * float64(p.done) / float64(p.total)
		eta := "?"
		if rate > 0 && p.done <= p.total {
			eta = (time.Duration(float64(p.total-p.done) / rate * float64(time.Second))).Round(100 * time.Millisecond).String()
		}
		return fmt.Sprintf("%d/%d %s (%.1f%%) %.1f %s/s ETA %s",
			p.done, p.total, p.unit, pct, rate, p.unit, eta)
	}
	return fmt.Sprintf("%d %s, %.1f %s/s", p.done, p.unit, rate, p.unit)
}
