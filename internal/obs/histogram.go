package obs

import (
	"fmt"
	"math"
)

// Default bucket scheme: log-scaled buckets spanning [1e-9, 1e12) with
// BucketsPerDecade buckets per decade, plus an underflow bucket for
// values <= Lo (including zero and negatives) and an overflow bucket for
// values > Hi. Simulated times are minutes, so the range comfortably
// covers sub-microsecond phases through multi-century wall times.
const (
	defaultLo               = 1e-9
	defaultHi               = 1e12
	defaultBucketsPerDecade = 8
)

// Histogram is a streaming histogram over fixed log-scaled buckets with
// exact min/max/mean/stddev and bucket-interpolated quantiles. Non-finite
// observations (NaN, ±Inf) are rejected and tallied separately. Not safe
// for concurrent use; shard per goroutine and Merge.
type Histogram struct {
	lo        float64
	hi        float64
	perDecade int
	nb        int // log buckets, excluding under/overflow

	counts   []uint64 // len nb+2 once allocated: [under, b1..bnb, over]
	count    uint64
	rejected uint64
	// sum and sumSq are exact superaccumulators, so merges are
	// associative: any shard partition of the same samples produces
	// bit-identical Sum/Mean/Std — the property fleet-wide cross-process
	// registry merges rely on.
	sum   ExactSum
	sumSq ExactSum
	min   float64
	max   float64
}

// NewHistogram returns a histogram with the default bucket scheme.
func NewHistogram() *Histogram {
	h, err := NewHistogramScheme(defaultLo, defaultHi, defaultBucketsPerDecade)
	if err != nil {
		panic(err) // defaults are statically valid
	}
	return h
}

// NewHistogramScheme returns a histogram with log-scaled buckets of
// perDecade buckets per decade spanning (lo, hi].
func NewHistogramScheme(lo, hi float64, perDecade int) (*Histogram, error) {
	if !(lo > 0) || !(hi > lo) || perDecade < 1 {
		return nil, fmt.Errorf("obs: invalid histogram scheme lo=%v hi=%v perDecade=%d", lo, hi, perDecade)
	}
	nb := int(math.Ceil(math.Log10(hi/lo)*float64(perDecade) - 1e-9))
	return &Histogram{lo: lo, hi: hi, perDecade: perDecade, nb: nb}, nil
}

// bucketIndex maps a finite value into [0, nb+1].
func (h *Histogram) bucketIndex(v float64) int {
	if v <= h.lo {
		return 0
	}
	if v > h.hi {
		return h.nb + 1
	}
	idx := 1 + int(math.Floor(math.Log10(v/h.lo)*float64(h.perDecade)))
	if idx < 1 {
		idx = 1
	}
	if idx > h.nb {
		idx = h.nb
	}
	return idx
}

// upperBound returns the inclusive upper bound of bucket i in [0, nb+1].
func (h *Histogram) upperBound(i int) float64 {
	switch {
	case i <= 0:
		return h.lo
	case i > h.nb:
		return math.Inf(1)
	default:
		return h.lo * math.Pow(10, float64(i)/float64(h.perDecade))
	}
}

// Observe records one sample. NaN and ±Inf are rejected (counted in
// Rejected, excluded from every statistic).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.rejected++
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, h.nb+2)
	}
	h.counts[h.bucketIndex(v)]++
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum.Add(v)
	sq := v * v
	if math.IsInf(sq, 1) {
		// v*v overflows for |v| > ~1.3e154; clamp so the variance path
		// stays finite (it saturates rather than poisoning the sum).
		sq = math.MaxFloat64
	}
	h.sumSq.Add(sq)
}

// Count returns the number of accepted samples.
func (h *Histogram) Count() uint64 { return h.count }

// Rejected returns the number of rejected (non-finite) samples.
func (h *Histogram) Rejected() uint64 { return h.rejected }

// Sum returns the sum of accepted samples (exactly accumulated, rounded
// once on read).
func (h *Histogram) Sum() float64 { return h.sum.Round() }

// Min returns the smallest sample (NaN when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the largest sample (NaN when empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.max
}

// Mean returns the sample mean (NaN when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.sum.Round() / float64(h.count)
}

// Std returns the sample standard deviation (NaN when empty, 0 for a
// single sample).
func (h *Histogram) Std() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	if h.count == 1 {
		return 0
	}
	n := float64(h.count)
	mean := h.sum.Round() / n
	v := (h.sumSq.Round() - n*mean*mean) / (n - 1)
	if v < 0 {
		v = 0 // rounding
	}
	return math.Sqrt(v)
}

// Quantile estimates the q-quantile (q in [0,1]) by geometric
// interpolation within the containing bucket, clamped to the exact
// [Min, Max] range; estimates are non-decreasing in q. Returns NaN when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			v := h.interp(i, (target-cum)/float64(c))
			// Clamp to the observed range (bucket bounds are coarser
			// than the exact extremes).
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum = next
	}
	return h.max
}

// interp interpolates a value at fraction frac within bucket i.
func (h *Histogram) interp(i int, frac float64) float64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch {
	case i == 0:
		// Underflow bucket has no lower bound; report its upper bound
		// (the clamp pulls it to min when appropriate).
		return h.lo
	case i > h.nb:
		// Overflow bucket is unbounded above; report the exact max.
		return h.max
	default:
		lower := h.upperBound(i - 1)
		upper := h.upperBound(i)
		return lower * math.Pow(upper/lower, frac)
	}
}

// Merge adds o's samples into h. The two histograms must share the same
// bucket scheme.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil || o == h {
		return nil
	}
	if h.lo != o.lo || h.hi != o.hi || h.perDecade != o.perDecade {
		return fmt.Errorf("obs: histogram scheme mismatch: (%g,%g,%d) vs (%g,%g,%d)",
			h.lo, h.hi, h.perDecade, o.lo, o.hi, o.perDecade)
	}
	h.rejected += o.rejected
	if o.count == 0 {
		return nil
	}
	if h.counts == nil {
		h.counts = make([]uint64, h.nb+2)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.count += o.count
	h.sum.Merge(&o.sum)
	h.sumSq.Merge(&o.sumSq)
	return nil
}

// HistogramBucket is one non-empty bucket in a snapshot: Count samples
// at values <= UpperBound (and above the previous bucket's bound).
// Index is the bucket's position in the scheme (0 = underflow,
// nb+1 = overflow), which makes restoration from a snapshot exact even
// though the overflow bucket's serialized bound is the observed max.
type HistogramBucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
	Index      int     `json:"i"`
}

// HistogramSnapshot is one histogram in a snapshot. Quantiles holds the
// p50/p90/p99 estimates; Buckets lists only non-empty buckets. The
// scheme fields (Lo, Hi, PerDecade) and the exact sum states make the
// snapshot portable: HistogramFromSnapshot reconstructs a histogram
// that merges exactly, so shard snapshots serialized by different
// processes aggregate to the same bits a single process would produce.
type HistogramSnapshot struct {
	Name       string            `json:"name"`
	Labels     []Label           `json:"labels,omitempty"`
	Count      uint64            `json:"count"`
	Rejected   uint64            `json:"rejected,omitempty"`
	Sum        float64           `json:"sum"`
	Min        float64           `json:"min"`
	Max        float64           `json:"max"`
	Mean       float64           `json:"mean"`
	Std        float64           `json:"std"`
	P50        float64           `json:"p50"`
	P90        float64           `json:"p90"`
	P99        float64           `json:"p99"`
	Lo         float64           `json:"lo,omitempty"`
	Hi         float64           `json:"hi,omitempty"`
	PerDecade  int               `json:"per_decade,omitempty"`
	SumExact   *ExactSumState    `json:"sum_exact,omitempty"`
	SumSqExact *ExactSumState    `json:"sumsq_exact,omitempty"`
	Buckets    []HistogramBucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot(name string, labels []Label) HistogramSnapshot {
	s := HistogramSnapshot{
		Name: name, Labels: labels,
		Count: h.count, Rejected: h.rejected, Sum: h.sum.Round(),
		Lo: h.lo, Hi: h.hi, PerDecade: h.perDecade,
	}
	if h.count > 0 {
		s.Min, s.Max, s.Mean, s.Std = h.min, h.max, h.Mean(), h.Std()
		s.P50, s.P90, s.P99 = h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99)
		sum, sumSq := h.sum.State(), h.sumSq.State()
		s.SumExact, s.SumSqExact = &sum, &sumSq
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		ub := h.upperBound(i)
		if math.IsInf(ub, 1) {
			ub = h.max // JSON cannot carry +Inf; the exact max bounds the overflow bucket
		}
		s.Buckets = append(s.Buckets, HistogramBucket{UpperBound: ub, Count: c, Index: i})
	}
	return s
}

// HistogramFromSnapshot reconstructs a histogram from its snapshot. When
// the snapshot carries exact sum states (any snapshot produced since
// they were introduced), the reconstruction is lossless: merging
// restored histograms equals merging the originals, bit for bit. Legacy
// snapshots without them degrade gracefully — the rounded Sum seeds the
// accumulator and sumSq is recovered from Std/Mean — and remain
// mergeable, just without the exactness guarantee.
func HistogramFromSnapshot(s HistogramSnapshot) (*Histogram, error) {
	lo, hi, pd := s.Lo, s.Hi, s.PerDecade
	if pd == 0 {
		lo, hi, pd = defaultLo, defaultHi, defaultBucketsPerDecade
	}
	h, err := NewHistogramScheme(lo, hi, pd)
	if err != nil {
		return nil, fmt.Errorf("obs: histogram %q: %w", s.Name, err)
	}
	h.count, h.rejected = s.Count, s.Rejected
	if s.Count > 0 {
		h.min, h.max = s.Min, s.Max
	}
	if len(s.Buckets) > 0 {
		h.counts = make([]uint64, h.nb+2)
		var total uint64
		for _, b := range s.Buckets {
			if b.Index < 0 || b.Index > h.nb+1 {
				return nil, fmt.Errorf("obs: histogram %q: bucket index %d out of range", s.Name, b.Index)
			}
			if b.Index == 0 && b.UpperBound > h.lo {
				return nil, fmt.Errorf("obs: histogram %q: snapshot predates bucket indices", s.Name)
			}
			h.counts[b.Index] += b.Count
			total += b.Count
		}
		if total != s.Count {
			return nil, fmt.Errorf("obs: histogram %q: bucket counts sum to %d, want %d", s.Name, total, s.Count)
		}
	} else if s.Count > 0 {
		return nil, fmt.Errorf("obs: histogram %q: count %d but no buckets", s.Name, s.Count)
	}
	if s.SumExact != nil {
		if h.sum, err = ExactSumFromState(*s.SumExact); err != nil {
			return nil, fmt.Errorf("obs: histogram %q: sum: %w", s.Name, err)
		}
	} else {
		h.sum.Add(s.Sum)
	}
	if s.SumSqExact != nil {
		if h.sumSq, err = ExactSumFromState(*s.SumSqExact); err != nil {
			return nil, fmt.Errorf("obs: histogram %q: sumsq: %w", s.Name, err)
		}
	} else if s.Count > 0 {
		n := float64(s.Count)
		h.sumSq.Add(s.Std*s.Std*(n-1) + n*s.Mean*s.Mean)
	}
	return h, nil
}
