package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/sim"
)

// Breakdown partitions one or more trials' wall time by phase, with
// per-level detail the simulator's own sim.Breakdown does not carry.
// All values are simulated minutes. Level slices are indexed by 0-based
// level (index 0 = level 1) and sized to the highest level seen.
type Breakdown struct {
	// ComputeUseful is computation that contributed new progress
	// (first-time work).
	ComputeUseful float64
	// ComputeRework is computation that was lost to a failure or the
	// wall-time cap, or re-did previously achieved progress.
	ComputeRework float64
	// CheckpointOK is time in checkpoints that committed, by level.
	CheckpointOK []float64
	// CheckpointWasted is time in checkpoints cut short, by level.
	CheckpointWasted []float64
	// RestartOK is time in restarts that completed, by level.
	RestartOK []float64
	// RestartFailed is time in restarts cut short, by level.
	RestartFailed []float64
	// WallTime is the trial wall time (sum over trials after Add).
	WallTime float64
}

func grow(s []float64, n int) []float64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

// reuse empties a per-level slice keeping its capacity — the
// observed-trial hot path recycles these between trials (grow appends
// fresh zeros into the retained array), so the steady-state observer
// performs no allocation at all.
func reuse(s []float64) []float64 {
	return s[:0]
}

func addTo(s *[]float64, level int, v float64) {
	*s = grow(*s, level)
	(*s)[level-1] += v
}

// Total returns the sum of every category — by construction equal to
// WallTime up to floating-point accumulation error.
func (b *Breakdown) Total() float64 {
	t := b.ComputeUseful + b.ComputeRework
	for _, v := range b.CheckpointOK {
		t += v
	}
	for _, v := range b.CheckpointWasted {
		t += v
	}
	for _, v := range b.RestartOK {
		t += v
	}
	for _, v := range b.RestartFailed {
		t += v
	}
	return t
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.ComputeUseful += o.ComputeUseful
	b.ComputeRework += o.ComputeRework
	b.CheckpointOK = grow(b.CheckpointOK, len(o.CheckpointOK))
	for i, v := range o.CheckpointOK {
		b.CheckpointOK[i] += v
	}
	b.CheckpointWasted = grow(b.CheckpointWasted, len(o.CheckpointWasted))
	for i, v := range o.CheckpointWasted {
		b.CheckpointWasted[i] += v
	}
	b.RestartOK = grow(b.RestartOK, len(o.RestartOK))
	for i, v := range o.RestartOK {
		b.RestartOK[i] += v
	}
	b.RestartFailed = grow(b.RestartFailed, len(o.RestartFailed))
	for i, v := range o.RestartFailed {
		b.RestartFailed[i] += v
	}
	b.WallTime += o.WallTime
}

// SimMetrics is a sim.Observer that reconstructs per-trial phase-time
// breakdowns and failure statistics from the simulator's event stream,
// and aggregates them across trials into a Registry of counters and
// histograms. One SimMetrics must only observe sequential trials (the
// campaign runner gives every worker goroutine its own via Pool); merge
// shards with Merge.
//
// The per-trial invariant: the reconstructed breakdown partitions the
// trial's wall time, so Last().Total() == Last().WallTime up to
// floating-point accumulation error.
type SimMetrics struct {
	reg *Registry

	// Cached instrument handles (all owned by reg so Merge covers them).
	trials      *Counter
	completed   *Counter
	capped      *Counter
	scratch     *Counter
	escalations *Counter
	failures    []*Counter // by severity
	ckptOK      []*Counter // by level
	ckptWasted  []*Counter
	restartOK   []*Counter
	restartFail []*Counter

	wallHist    *Histogram
	effHist     *Histogram
	usefulHist  *Histogram // per-phase useful compute durations
	reworkHist  *Histogram
	ckptHistOK  []*Histogram
	ckptHistBad []*Histogram
	rstHistOK   []*Histogram
	rstHistBad  []*Histogram

	total Breakdown // across observed trials
	last  Breakdown // the trial in progress / most recently finished

	// Per-trial reconstruction state.
	open          bool
	phase         sim.Phase
	phaseLevel    int
	phaseStart    float64
	startProgress float64
	highWater     float64
	awaitRecovery bool
	failedRestart int // level of the restart a failure interrupted; -1 none
	trialEnded    bool
}

// NewSimMetrics returns a SimMetrics with a private registry.
func NewSimMetrics() *SimMetrics {
	m := &SimMetrics{reg: NewRegistry(), failedRestart: -1}
	m.trials = m.reg.Counter("sim_trials_total")
	m.completed = m.reg.Counter("sim_trials_completed")
	m.capped = m.reg.Counter("sim_trials_capped")
	m.scratch = m.reg.Counter("sim_scratch_restarts_total")
	m.escalations = m.reg.Counter("sim_restart_escalations_total")
	m.wallHist = m.reg.Histogram("sim_trial_wall_minutes")
	m.effHist = m.reg.Histogram("sim_trial_efficiency")
	m.usefulHist = m.reg.Histogram("sim_phase_minutes", "phase", "compute", "outcome", "useful")
	m.reworkHist = m.reg.Histogram("sim_phase_minutes", "phase", "compute", "outcome", "rework")
	return m
}

// Registry exposes the backing registry (for snapshots and merges into
// wider sinks).
func (m *SimMetrics) Registry() *Registry { return m.reg }

// Trials returns the number of finished trials observed.
func (m *SimMetrics) Trials() uint64 { return m.trials.Value() }

// Last returns the breakdown of the most recent trial.
func (m *SimMetrics) Last() Breakdown { return m.last }

// Aggregate returns the breakdown summed over all finished trials.
func (m *SimMetrics) Aggregate() Breakdown { return m.total }

func levelStr(lvl int) string { return strconv.Itoa(lvl) }

func growCounters(s []*Counter, n int, mk func(i int) *Counter) []*Counter {
	for len(s) < n {
		s = append(s, mk(len(s)))
	}
	return s
}

func growHists(s []*Histogram, n int, mk func(i int) *Histogram) []*Histogram {
	for len(s) < n {
		s = append(s, mk(len(s)))
	}
	return s
}

func (m *SimMetrics) failureCounter(sev int) *Counter {
	m.failures = growCounters(m.failures, sev, func(i int) *Counter {
		return m.reg.Counter("sim_failures_total", "severity", levelStr(i+1))
	})
	return m.failures[sev-1]
}

func (m *SimMetrics) ckptCounter(lvl int, ok bool) *Counter {
	if ok {
		m.ckptOK = growCounters(m.ckptOK, lvl, func(i int) *Counter {
			return m.reg.Counter("sim_checkpoints_total", "level", levelStr(i+1), "outcome", "committed")
		})
		return m.ckptOK[lvl-1]
	}
	m.ckptWasted = growCounters(m.ckptWasted, lvl, func(i int) *Counter {
		return m.reg.Counter("sim_checkpoints_total", "level", levelStr(i+1), "outcome", "wasted")
	})
	return m.ckptWasted[lvl-1]
}

func (m *SimMetrics) restartCounter(lvl int, ok bool) *Counter {
	if ok {
		m.restartOK = growCounters(m.restartOK, lvl, func(i int) *Counter {
			return m.reg.Counter("sim_restarts_total", "level", levelStr(i+1), "outcome", "completed")
		})
		return m.restartOK[lvl-1]
	}
	m.restartFail = growCounters(m.restartFail, lvl, func(i int) *Counter {
		return m.reg.Counter("sim_restarts_total", "level", levelStr(i+1), "outcome", "interrupted")
	})
	return m.restartFail[lvl-1]
}

func (m *SimMetrics) ckptHist(lvl int, ok bool) *Histogram {
	outcome := "committed"
	if !ok {
		outcome = "wasted"
	}
	mk := func(oc string) func(i int) *Histogram {
		return func(i int) *Histogram {
			return m.reg.Histogram("sim_phase_minutes", "phase", "checkpoint", "level", levelStr(i+1), "outcome", oc)
		}
	}
	if ok {
		m.ckptHistOK = growHists(m.ckptHistOK, lvl, mk(outcome))
		return m.ckptHistOK[lvl-1]
	}
	m.ckptHistBad = growHists(m.ckptHistBad, lvl, mk(outcome))
	return m.ckptHistBad[lvl-1]
}

func (m *SimMetrics) restartHist(lvl int, ok bool) *Histogram {
	outcome := "completed"
	if !ok {
		outcome = "interrupted"
	}
	mk := func(oc string) func(i int) *Histogram {
		return func(i int) *Histogram {
			return m.reg.Histogram("sim_phase_minutes", "phase", "restart", "level", levelStr(i+1), "outcome", oc)
		}
	}
	if ok {
		m.rstHistOK = growHists(m.rstHistOK, lvl, mk(outcome))
		return m.rstHistOK[lvl-1]
	}
	m.rstHistBad = growHists(m.rstHistBad, lvl, mk(outcome))
	return m.rstHistBad[lvl-1]
}

// resetTrial clears the per-trial state while recycling the breakdown's
// level slices (grow reuses the retained capacity, so steady-state
// trials allocate nothing). A consequence: the slices inside a
// previously returned Last() are only valid until the next trial begins.
func (m *SimMetrics) resetTrial() {
	m.last = Breakdown{
		CheckpointOK:     reuse(m.last.CheckpointOK),
		CheckpointWasted: reuse(m.last.CheckpointWasted),
		RestartOK:        reuse(m.last.RestartOK),
		RestartFailed:    reuse(m.last.RestartFailed),
	}
	m.open = false
	m.highWater = 0
	m.awaitRecovery = false
	m.failedRestart = -1
	m.trialEnded = false
}

// Observe implements sim.Observer.
func (m *SimMetrics) Observe(e sim.Event) {
	if m.trialEnded {
		m.resetTrial()
	}
	switch e.Kind {
	case sim.EvPhaseStart:
		if m.awaitRecovery {
			// The recovery decision is visible in what starts next: a
			// restart at a higher level than the one the failure
			// interrupted is an escalation; compute with no restart
			// phase at all means no usable checkpoint survived.
			if e.Phase == sim.PhaseRestart {
				if m.failedRestart >= 0 && e.Level > m.failedRestart {
					m.escalations.Inc()
				}
			} else {
				m.scratch.Inc()
			}
			m.awaitRecovery = false
			m.failedRestart = -1
		}
		m.open = true
		m.phase = e.Phase
		m.phaseLevel = e.Level
		m.phaseStart = e.Time
		m.startProgress = e.Progress
	case sim.EvPhaseEnd:
		m.closePhase(e.Time, e.Progress, true)
	case sim.EvFailure:
		m.failureCounter(e.Level).Inc()
		if m.open {
			if m.phase == sim.PhaseRestart {
				m.failedRestart = m.phaseLevel
			}
			m.closePhase(e.Time, e.Progress, false)
		}
		m.awaitRecovery = true
	case sim.EvComplete:
		m.endTrial(e, true)
	case sim.EvCapped:
		if m.open {
			m.closePhase(e.Time, e.Progress, false)
		}
		m.endTrial(e, false)
	}
}

// closePhase books the open phase's elapsed time into the matching
// breakdown bucket; ok marks successful completion.
func (m *SimMetrics) closePhase(now, progress float64, ok bool) {
	if !m.open {
		return
	}
	m.open = false
	d := now - m.phaseStart
	switch m.phase {
	case sim.PhaseCompute:
		// Progress advances 1:1 with compute time, so the time split
		// equals the progress split: work below the high-water mark is
		// re-doing lost progress, work above it is new. An interrupted
		// compute phase advanced no progress at all (the simulator only
		// commits progress at phase end), so it is entirely rework.
		useful := progress - m.startProgress
		if hw := m.highWater; m.startProgress < hw {
			useful = progress - hw
		}
		if useful < 0 {
			useful = 0
		}
		if useful > d {
			useful = d
		}
		rework := d - useful
		m.last.ComputeUseful += useful
		m.last.ComputeRework += rework
		if useful > 0 {
			m.usefulHist.Observe(useful)
		}
		if rework > 0 {
			m.reworkHist.Observe(rework)
		}
		if progress > m.highWater {
			m.highWater = progress
		}
	case sim.PhaseCheckpoint:
		lvl := m.phaseLevel
		if ok {
			addTo(&m.last.CheckpointOK, lvl, d)
		} else {
			addTo(&m.last.CheckpointWasted, lvl, d)
		}
		m.ckptCounter(lvl, ok).Inc()
		m.ckptHist(lvl, ok).Observe(d)
	case sim.PhaseRestart:
		lvl := m.phaseLevel
		if ok {
			addTo(&m.last.RestartOK, lvl, d)
		} else {
			addTo(&m.last.RestartFailed, lvl, d)
		}
		m.restartCounter(lvl, ok).Inc()
		m.restartHist(lvl, ok).Observe(d)
	}
}

// endTrial freezes the per-trial breakdown and rolls it into the
// cross-trial aggregates.
func (m *SimMetrics) endTrial(e sim.Event, completed bool) {
	m.last.WallTime = e.Time
	m.trials.Inc()
	if completed {
		m.completed.Inc()
	} else {
		m.capped.Inc()
	}
	m.wallHist.Observe(e.Time)
	if e.Time > 0 {
		m.effHist.Observe(e.Progress / e.Time)
	}
	m.total.Add(m.last)
	m.trialEnded = true
}

// Merge folds another shard's aggregates into m. The other shard must
// not be observing a trial concurrently.
func (m *SimMetrics) Merge(o *SimMetrics) error {
	if o == nil || o == m {
		return nil
	}
	if err := m.reg.Merge(o.reg); err != nil {
		return err
	}
	m.total.Add(o.total)
	return nil
}

// Snapshot returns the registry snapshot.
func (m *SimMetrics) Snapshot() Snapshot { return m.reg.Snapshot() }

// WriteJSON writes the registry snapshot as JSON.
func (m *SimMetrics) WriteJSON(w io.Writer) error { return m.reg.WriteJSON(w) }

// WriteSummary prints the aggregate phase-time breakdown and failure
// counters as an aligned human-readable table.
func (m *SimMetrics) WriteSummary(w io.Writer) error {
	b := m.total
	total := b.Total()
	share := func(v float64) string {
		if total <= 0 {
			return "-"
		}
		return fmt.Sprintf("%5.1f%%", 100*v/total)
	}
	row := func(name string, v float64) error {
		_, err := fmt.Fprintf(w, "  %-22s %14.3f  %s\n", name, v, share(v))
		return err
	}
	if _, err := fmt.Fprintf(w, "phase breakdown over %d trial(s) (minutes):\n", m.trials.Value()); err != nil {
		return err
	}
	if err := row("compute/useful", b.ComputeUseful); err != nil {
		return err
	}
	if err := row("compute/rework", b.ComputeRework); err != nil {
		return err
	}
	for i, v := range b.CheckpointOK {
		if v > 0 || m.ckptCounter(i+1, true).Value() > 0 {
			if err := row(fmt.Sprintf("checkpoint L%d ok", i+1), v); err != nil {
				return err
			}
		}
	}
	for i, v := range b.CheckpointWasted {
		if v > 0 || m.ckptCounter(i+1, false).Value() > 0 {
			if err := row(fmt.Sprintf("checkpoint L%d wasted", i+1), v); err != nil {
				return err
			}
		}
	}
	for i, v := range b.RestartOK {
		if v > 0 || m.restartCounter(i+1, true).Value() > 0 {
			if err := row(fmt.Sprintf("restart L%d ok", i+1), v); err != nil {
				return err
			}
		}
	}
	for i, v := range b.RestartFailed {
		if v > 0 || m.restartCounter(i+1, false).Value() > 0 {
			if err := row(fmt.Sprintf("restart L%d interrupted", i+1), v); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "  %-22s %14.3f  (wall %.3f)\n", "total", total, b.WallTime); err != nil {
		return err
	}
	fails := make([]uint64, len(m.failures))
	for i, c := range m.failures {
		fails[i] = c.Value()
	}
	_, err := fmt.Fprintf(w, "failures by severity: %v  escalations=%d scratch=%d completed=%d/%d\n",
		fails, m.escalations.Value(), m.scratch.Value(), m.completed.Value(), m.trials.Value())
	return err
}

// Pool hands out one SimMetrics shard per worker goroutine and merges
// them after a run. The factory method is safe for concurrent use.
type Pool struct {
	mu     sync.Mutex
	shards []*SimMetrics
}

// Observer implements the campaign runner's per-worker observer factory.
func (p *Pool) Observer(worker int) sim.Observer {
	m := NewSimMetrics()
	p.mu.Lock()
	p.shards = append(p.shards, m)
	p.mu.Unlock()
	return m
}

// Merged merges every shard into a fresh SimMetrics.
func (p *Pool) Merged() (*SimMetrics, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := NewSimMetrics()
	for _, s := range p.shards {
		if err := out.Merge(s); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// multi fans one event stream out to several observers.
type multi []sim.Observer

// Observe implements sim.Observer.
func (m multi) Observe(e sim.Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Multi returns an observer that forwards every event to each of obs
// (nil entries are skipped).
func Multi(obs ...sim.Observer) sim.Observer {
	out := make(multi, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			out = append(out, o)
		}
	}
	return out
}
