package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
)

// Span/Tracer are the runtime half of the telemetry layer: hierarchical
// wall-clock (real-time, not simulated-time) timing of campaign and
// sweep stages. A Tracer follows the same sharding discipline as
// Registry — one per goroutine, merged after the run — so the hot path
// (Start/End on an already-seen span name) performs no locking and no
// heap allocation: span identity is an index into a tracer-owned node
// arena, child lookup is a map read, and Span is a plain value.

// spanNode is one node of a tracer's span tree.
type spanNode struct {
	name     string
	parent   int32
	children map[string]int32
	count    uint64
	total    time.Duration
}

// Tracer records a tree of named spans. Not safe for concurrent use;
// shard per goroutine (see TracerPool) and merge with Adopt/Merge. A
// nil *Tracer is valid and records nothing, so instrumented code does
// not need to branch on whether tracing is enabled.
type Tracer struct {
	nodes []spanNode
	cur   int32
	now   func() time.Time // test hook
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now}
	t.nodes = append(t.nodes, spanNode{name: "", parent: -1})
	return t
}

// Span is one open span. The zero Span (and any span from a nil tracer)
// is a no-op. Spans must be ended in LIFO order per tracer.
type Span struct {
	t      *Tracer
	node   int32
	parent int32
	start  time.Time
}

// Start opens a span named name as a child of the innermost open span
// (or of the root). Starting the same name at the same position reuses
// the existing node, so the steady-state path allocates nothing.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	cur := t.cur
	idx, ok := t.nodes[cur].children[name]
	if !ok {
		idx = int32(len(t.nodes))
		t.nodes = append(t.nodes, spanNode{name: name, parent: cur})
		if t.nodes[cur].children == nil {
			t.nodes[cur].children = make(map[string]int32)
		}
		t.nodes[cur].children[name] = idx
	}
	t.cur = idx
	return Span{t: t, node: idx, parent: cur, start: t.now()}
}

// End closes the span, accumulating its wall-clock duration and count
// into the tracer's tree.
func (s Span) End() {
	t := s.t
	if t == nil {
		return
	}
	d := t.now().Sub(s.start)
	n := &t.nodes[s.node]
	n.count++
	n.total += d
	t.cur = s.parent
}

// merge folds o's subtree rooted at oidx into t's node tidx.
func (t *Tracer) merge(tidx int32, o *Tracer, oidx int32) {
	on := &o.nodes[oidx]
	t.nodes[tidx].count += on.count
	t.nodes[tidx].total += on.total
	if len(on.children) == 0 {
		return
	}
	// Deterministic insertion order, so freshly created node indices —
	// and therefore Snapshot output — do not depend on o's map order.
	names := make([]string, 0, len(on.children))
	for name := range on.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		oc := on.children[name]
		tc, ok := t.nodes[tidx].children[name]
		if !ok {
			tc = int32(len(t.nodes))
			t.nodes = append(t.nodes, spanNode{name: name, parent: tidx})
			if t.nodes[tidx].children == nil {
				t.nodes[tidx].children = make(map[string]int32)
			}
			t.nodes[tidx].children[name] = tc
		}
		t.merge(tc, o, oc)
	}
}

// Merge folds o's span tree into t at the root. Counts and durations of
// spans with the same path add; new paths are created.
func (t *Tracer) Merge(o *Tracer) {
	if t == nil || o == nil || o == t {
		return
	}
	t.merge(0, o, 0)
}

// Adopt grafts o's span tree under the (closed) span s, so shard trees
// recorded by worker goroutines appear below the stage that ran them —
// e.g. a campaign's per-worker trial spans under its "run" span.
func (s Span) Adopt(o *Tracer) {
	if s.t == nil || o == nil || o == s.t {
		return
	}
	// merge adds o's root count/total into the target node; the root
	// carries none, so only the children graft.
	s.t.merge(s.node, o, 0)
}

// SpanNode is one node of a span-tree snapshot. Children are sorted by
// name, so snapshots are deterministic for a given set of merged shards
// regardless of merge order or worker count.
type SpanNode struct {
	Name     string     `json:"name"`
	Count    uint64     `json:"count"`
	TotalNS  int64      `json:"total_ns"`
	Children []SpanNode `json:"children,omitempty"`
}

// Total returns the node's accumulated duration.
func (n SpanNode) Total() time.Duration { return time.Duration(n.TotalNS) }

func (t *Tracer) snapshotNode(idx int32) []SpanNode {
	n := &t.nodes[idx]
	if len(n.children) == 0 {
		return nil
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SpanNode, 0, len(names))
	for _, name := range names {
		c := n.children[name]
		cn := &t.nodes[c]
		out = append(out, SpanNode{
			Name:     cn.name,
			Count:    cn.count,
			TotalNS:  int64(cn.total),
			Children: t.snapshotNode(c),
		})
	}
	return out
}

// Snapshot returns the span forest (the root's children). A nil tracer
// snapshots to nil.
func (t *Tracer) Snapshot() []SpanNode {
	if t == nil {
		return nil
	}
	return t.snapshotNode(0)
}

// TracerFromSnapshot reconstructs a tracer from a serialized span
// forest, so span trees travel across processes: a shard snapshots its
// tracer into a sidecar, the aggregator restores each forest and merges
// them with Tracer.Merge. Counts and durations are integers, so the
// round trip is lossless and fleet merges are exact.
func TracerFromSnapshot(forest []SpanNode) *Tracer {
	t := NewTracer()
	t.graft(0, forest)
	return t
}

func (t *Tracer) graft(parent int32, forest []SpanNode) {
	for _, n := range forest {
		idx := int32(len(t.nodes))
		t.nodes = append(t.nodes, spanNode{
			name:   n.Name,
			parent: parent,
			count:  n.Count,
			total:  time.Duration(n.TotalNS),
		})
		if t.nodes[parent].children == nil {
			t.nodes[parent].children = make(map[string]int32)
		}
		t.nodes[parent].children[n.Name] = idx
		t.graft(idx, n.Children)
	}
}

// MergeSpanForests merges serialized span forests into one, summing
// counts and durations along equal paths. The result is deterministic
// (children sorted by name, integer arithmetic) regardless of input
// order.
func MergeSpanForests(forests ...[]SpanNode) []SpanNode {
	t := NewTracer()
	for _, f := range forests {
		t.Merge(TracerFromSnapshot(f))
	}
	return t.Snapshot()
}

// WriteSpanSummary renders a span forest as an indented table: count,
// total, mean, and share of the parent's total.
func WriteSpanSummary(w io.Writer, spans []SpanNode) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "no spans recorded")
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-36s %10s %14s %14s %7s\n", "span", "count", "total", "mean", "%par"); err != nil {
		return err
	}
	var parentTotal int64
	for _, s := range spans {
		parentTotal += s.TotalNS
	}
	return writeSpanRows(w, spans, 0, parentTotal)
}

func writeSpanRows(w io.Writer, spans []SpanNode, depth int, parentTotal int64) error {
	for _, s := range spans {
		name := strings.Repeat("  ", depth) + s.Name
		mean := time.Duration(0)
		if s.Count > 0 {
			mean = time.Duration(s.TotalNS / int64(s.Count))
		}
		share := "-"
		if parentTotal > 0 {
			share = fmt.Sprintf("%5.1f%%", 100*float64(s.TotalNS)/float64(parentTotal))
		}
		if _, err := fmt.Fprintf(w, "  %-36s %10d %14s %14s %7s\n",
			name, s.Count, time.Duration(s.TotalNS).Round(time.Microsecond),
			mean.Round(time.Microsecond), share); err != nil {
			return err
		}
		if err := writeSpanRows(w, s.Children, depth+1, s.TotalNS); err != nil {
			return err
		}
	}
	return nil
}

// TracerPool hands out one Tracer shard per worker goroutine and merges
// them after a run — the span analogue of Pool. Shard is safe for
// concurrent use; each returned tracer must stay goroutine-local.
type TracerPool struct {
	// Now overrides the shards' clock (tests).
	Now func() time.Time

	mu     sync.Mutex
	shards []*Tracer
}

// Shard returns a fresh goroutine-local tracer registered with the pool.
func (p *TracerPool) Shard() *Tracer {
	t := NewTracer()
	if p.Now != nil {
		t.now = p.Now
	}
	p.mu.Lock()
	p.shards = append(p.shards, t)
	p.mu.Unlock()
	return t
}

// Merged merges every shard (in registration order) into a fresh tracer.
func (p *TracerPool) Merged() *Tracer {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := NewTracer()
	if p.Now != nil {
		out.now = p.Now
	}
	for _, s := range p.shards {
		out.Merge(s)
	}
	return out
}

// trialSpans brackets each simulated trial's event stream in one "trial"
// span on a goroutine-local tracer.
type trialSpans struct {
	t    *Tracer
	span Span
	open bool
}

// TrialSpans returns an observer that opens a "trial" span on the first
// event of every trial and closes it at the trial-terminal event, so a
// campaign worker's tracer accumulates real-time-per-trial under one
// node. Combine with other observers via Multi.
func TrialSpans(t *Tracer) sim.Observer {
	return &trialSpans{t: t}
}

// Observe implements sim.Observer.
func (o *trialSpans) Observe(e sim.Event) {
	if !o.open {
		o.span = o.t.Start("trial")
		o.open = true
	}
	if e.Kind == sim.EvComplete || e.Kind == sim.EvCapped {
		o.span.End()
		o.open = false
	}
}
