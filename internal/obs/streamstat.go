package obs

import (
	"math"
	"sort"
	"sync"

	"repro/internal/stats"
)

// StreamStat is a concurrent streaming estimator for live exposition:
// campaign workers publish per-trial observations into it while an HTTP
// handler snapshots it mid-run. It combines a Welford accumulator (mean,
// std, and the Student-t confidence interval of the mean — the same
// machinery the paper's Welch significance tests build on) with a
// log-bucket stats.Sketch for quantiles — the same sketch the streaming
// campaign sink persists in checkpoints — both behind one mutex. The
// lock is taken once per observation (per trial, not per event), so
// contention is negligible next to trial cost.
//
// Unlike the Registry instruments, StreamStat is safe for concurrent
// use — it exists precisely so a run can be watched from outside while
// worker shards are still private.
type StreamStat struct {
	mu sync.Mutex
	s  stats.Sample
	sk *stats.Sketch
}

// NewStreamStat returns an empty estimator with the default sketch
// bucket scheme.
func NewStreamStat() *StreamStat {
	return &StreamStat{sk: stats.NewSketch()}
}

// Observe records one observation. Safe for concurrent use.
func (s *StreamStat) Observe(v float64) {
	s.mu.Lock()
	s.s.Add(v)
	s.sk.Observe(v)
	s.mu.Unlock()
}

// Count returns the number of observations recorded so far.
func (s *StreamStat) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.s.N()
}

// StreamStatSnapshot is a point-in-time copy of a StreamStat. CI95 is
// the half-width of the two-sided 95 % confidence interval of the mean
// (0 until two observations exist); quantiles are bucket-interpolated.
type StreamStatSnapshot struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Std   float64 `json:"std"`
	CI95  float64 `json:"ci95"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot copies the current state under the lock. name labels the
// snapshot for exposition.
func (s *StreamStat) Snapshot(name string) StreamStatSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := StreamStatSnapshot{
		Name:  name,
		Count: uint64(s.s.N()),
		Sum:   s.s.Mean() * float64(s.s.N()),
		Mean:  s.s.Mean(),
		Std:   s.s.Std(),
		Min:   s.s.Min(),
		Max:   s.s.Max(),
	}
	if ci, err := s.s.CI(0.95); err == nil && !math.IsNaN(ci) {
		out.CI95 = ci
	}
	if s.sk.N() > 0 {
		out.P50, out.P90, out.P99 = s.sk.Quantile(0.5), s.sk.Quantile(0.9), s.sk.Quantile(0.99)
	}
	return out
}

// StreamSet is a named collection of StreamStats — the live half of a
// run's telemetry, safe for concurrent registration, observation, and
// snapshotting.
type StreamSet struct {
	mu    sync.Mutex
	stats map[string]*StreamStat
}

// NewStreamSet returns an empty set.
func NewStreamSet() *StreamSet {
	return &StreamSet{stats: map[string]*StreamStat{}}
}

// Stat returns (registering on first use) the named estimator. Callers
// cache the pointer and observe through it directly.
func (s *StreamSet) Stat(name string) *StreamStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.stats[name]
	if !ok {
		st = NewStreamStat()
		s.stats[name] = st
	}
	return st
}

// Snapshots returns a snapshot of every estimator, sorted by name.
func (s *StreamSet) Snapshots() []StreamStatSnapshot {
	s.mu.Lock()
	names := make([]string, 0, len(s.stats))
	for name := range s.stats {
		names = append(names, name)
	}
	sts := make([]*StreamStat, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		sts = append(sts, s.stats[name])
	}
	s.mu.Unlock()
	out := make([]StreamStatSnapshot, len(names))
	for i, name := range names {
		out[i] = sts[i].Snapshot(name)
	}
	return out
}
