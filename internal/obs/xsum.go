package obs

import (
	"fmt"
	"math"
)

// ExactSum accumulates float64 values exactly, in a fixed-point
// superaccumulator wide enough to hold any sum of finite doubles without
// rounding. Because the representation is exact, accumulation is fully
// associative and commutative: any grouping of the same multiset of
// values — one process or many, any worker count, any merge order —
// yields bit-identical state and therefore a bit-identical Round().
// That property is what makes fleet-wide registry merges deterministic:
// a histogram's sum restored from four shard sidecars and merged equals
// the single-process sum exactly, not merely approximately.
//
// Representation: the value is
//
//	spill·2^(limbBits·nLimbs+minExp) + Σ limbs[i]·2^(limbBits·i+minExp)
//
// i.e. a base-2^32 fixed-point number whose least significant bit sits
// at 2^-1074 (the smallest subnormal) and whose top limb reaches past
// 2^1100 — headroom for 2^31 additions of ±MaxFloat64. Each Add splits
// the operand's 53-bit significand across at most three adjacent limbs;
// limbs are allowed to drift away from canonical range and are
// renormalized (Euclidean carry propagation, every limb back into
// [0, 2^32)) often enough that no int64 overflows. The canonical form is
// unique for a given exact value, so serialized states compare equal
// byte-for-byte whenever the sums are equal.
//
// Like the other instruments in this package, an ExactSum is not safe
// for concurrent use; shard per goroutine and Merge.
type ExactSum struct {
	limbs [xsumLimbs]int64
	// spill is the signed carry out of the top limb. It is nonzero only
	// for negative totals (canonically -1) or sums beyond ±2^1100.
	spill int64
	// adds counts additions since the last carry propagation.
	adds uint32
}

const (
	xsumLimbBits = 32
	xsumLimbMask = 1<<xsumLimbBits - 1
	// xsumMinExp is the exponent of the least significant tracked bit:
	// the smallest positive subnormal double is 2^-1074.
	xsumMinExp = -1074
	// xsumLimbs covers exponents up to 32·68-1074 = 2^1102, far above
	// the 2^1055 reachable by 2^31 additions of MaxFloat64.
	xsumLimbs = 68
	// xsumCarryEvery bounds limb drift: after propagation every limb is
	// below 2^32, each addition contributes less than 2^32 per limb, so
	// propagating every 2^30 additions keeps |limb| < 2^62.
	xsumCarryEvery = 1 << 30
)

// Add accumulates v exactly. Non-finite values are ignored — callers
// (Histogram) reject them before the sum.
func (s *ExactSum) Add(v float64) {
	bits := math.Float64bits(v)
	exp := int(bits >> 52 & 0x7ff)
	man := bits & (1<<52 - 1)
	if exp == 0x7ff || (exp == 0 && man == 0) {
		return // NaN, ±Inf, ±0 all contribute nothing
	}
	// Significand and the shift of its LSB above 2^xsumMinExp: normals
	// carry the implicit bit and an LSB at 2^(exp-1075); subnormals have
	// an LSB at 2^-1074 exactly.
	var sh uint
	if exp == 0 {
		sh = 0
	} else {
		man |= 1 << 52
		sh = uint(exp - 1)
	}
	i := int(sh / xsumLimbBits)
	b := sh % xsumLimbBits
	// man<<b spans up to 85 bits; its low 64 bits survive Go's modular
	// shift and the high bits are man>>(64-b) (zero when b == 0, since
	// a 64-bit shift count of 64 yields 0).
	lo := man << b
	c0 := int64(lo & xsumLimbMask)
	c1 := int64(lo >> xsumLimbBits)
	c2 := int64(man >> (64 - b) & xsumLimbMask)
	if bits>>63 != 0 {
		s.limbs[i] -= c0
		s.limbs[i+1] -= c1
		s.limbs[i+2] -= c2
	} else {
		s.limbs[i] += c0
		s.limbs[i+1] += c1
		s.limbs[i+2] += c2
	}
	s.adds++
	if s.adds >= xsumCarryEvery {
		s.propagate()
	}
}

// propagate renormalizes to the canonical form: every limb in
// [0, 2^32), excess carried into spill. The arithmetic right shift is a
// floor division, so negative limbs borrow correctly (Euclidean
// remainder).
func (s *ExactSum) propagate() {
	var carry int64
	for i := range s.limbs {
		v := s.limbs[i] + carry
		carry = v >> xsumLimbBits
		s.limbs[i] = v & xsumLimbMask
	}
	s.spill += carry
	s.adds = 0
}

// Merge adds o's accumulated value into s, exactly. o is read through a
// normalized copy and not modified.
func (s *ExactSum) Merge(o *ExactSum) {
	if o == nil {
		return
	}
	t := *o
	t.propagate()
	s.propagate()
	for i := range s.limbs {
		s.limbs[i] += t.limbs[i]
	}
	s.spill += t.spill
	s.propagate()
}

// Round returns the accumulated value rounded to float64. The result is
// a pure function of the exact sum (it folds canonical limbs from most
// to least significant), so equal sums round to bit-identical floats
// regardless of accumulation order. Sums beyond ±MaxFloat64 round to
// ±Inf.
func (s *ExactSum) Round() float64 {
	t := *s
	t.propagate()
	sign := 1.0
	if t.spill < 0 {
		// Negate exactly (the canonical form of a negative value keeps
		// positive limbs under a negative spill) and round the positive
		// magnitude — folding a huge negative spill against small
		// positive limbs in float would lose everything below its ulp.
		sign = -1
		for i := range t.limbs {
			t.limbs[i] = -t.limbs[i]
		}
		t.spill = -t.spill
		t.propagate()
	}
	r := 0.0
	if t.spill != 0 {
		r = math.Ldexp(float64(t.spill), xsumLimbBits*xsumLimbs+xsumMinExp)
	}
	for i := xsumLimbs - 1; i >= 0; i-- {
		if t.limbs[i] != 0 {
			r += math.Ldexp(float64(t.limbs[i]), xsumLimbBits*i+xsumMinExp)
		}
	}
	return sign * r
}

// IsZero reports whether the accumulated value is exactly zero.
func (s *ExactSum) IsZero() bool {
	t := *s
	t.propagate()
	if t.spill != 0 {
		return false
	}
	for _, l := range t.limbs {
		if l != 0 {
			return false
		}
	}
	return true
}

// ExactSumState is the portable serialization of an ExactSum: the
// non-zero canonical limbs as [index, value] pairs in ascending index
// order, plus the spill. Limb values are below 2^32, so every field
// survives JSON's float64 number model exactly. Equal sums serialize to
// identical states.
type ExactSumState struct {
	Limbs [][2]int64 `json:"limbs,omitempty"`
	Spill int64      `json:"spill,omitempty"`
}

// State returns the canonical serialized form of the sum.
func (s *ExactSum) State() ExactSumState {
	t := *s
	t.propagate()
	var st ExactSumState
	st.Spill = t.spill
	for i, l := range t.limbs {
		if l != 0 {
			st.Limbs = append(st.Limbs, [2]int64{int64(i), l})
		}
	}
	return st
}

// ExactSumFromState reconstructs an accumulator from a serialized state,
// validating that it is canonical (ascending unique indices in range,
// limb values in [0, 2^32)).
func ExactSumFromState(st ExactSumState) (ExactSum, error) {
	var s ExactSum
	prev := -1
	for _, lv := range st.Limbs {
		i, v := lv[0], lv[1]
		if i < 0 || i >= xsumLimbs {
			return ExactSum{}, fmt.Errorf("obs: exact sum limb index %d out of range", i)
		}
		if int(i) <= prev {
			return ExactSum{}, fmt.Errorf("obs: exact sum limb indices not ascending at %d", i)
		}
		if v < 0 || v > xsumLimbMask {
			return ExactSum{}, fmt.Errorf("obs: exact sum limb value %d not canonical", v)
		}
		prev = int(i)
		s.limbs[i] = v
	}
	s.spill = st.Spill
	return s, nil
}
