package obs

import (
	"io"
	"log/slog"
	"time"
)

// EventLog is the structured campaign event stream: line-delimited JSON
// (slog) records for campaign lifecycle transitions — start, checkpoint,
// resume, shard merge, error, end — each carrying the run ID so fleet
// logs from many processes correlate by run. A nil *EventLog is a valid
// no-op logger, so call sites need no conditionals; construction is
// gated behind the CLIs' -log-json flag.
type EventLog struct {
	l     *slog.Logger
	runID string
}

// NewEventLog returns an event log writing JSON lines to w, stamping
// run_id on every record. runID may be empty for runs without a fleet
// identity.
func NewEventLog(w io.Writer, runID string) *EventLog {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			// Millisecond timestamps keep log lines aligned with sidecar
			// *_unix_ms fields.
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Int64("ts_ms", a.Value.Time().UnixMilli())
			}
			return a
		},
	})
	l := slog.New(h)
	if runID != "" {
		l = l.With("run_id", runID)
	}
	return &EventLog{l: l, runID: runID}
}

// WithRun returns a copy of the log bound to a different run ID (e.g.
// one log sink shared by several campaign cells). Nil-safe.
func (e *EventLog) WithRun(runID string) *EventLog {
	if e == nil {
		return nil
	}
	return &EventLog{l: e.l.With("run_id", runID), runID: runID}
}

// RunID returns the bound run ID ("" for nil or unbound logs).
func (e *EventLog) RunID() string {
	if e == nil {
		return ""
	}
	return e.runID
}

// Event emits one structured event with arbitrary attributes
// (alternating key, value pairs, slog-style). Nil-safe.
func (e *EventLog) Event(event string, attrs ...any) {
	if e == nil {
		return
	}
	e.l.Info(event, attrs...)
}

// CampaignStart records a campaign (or shard) starting over trial range
// [first, limit) of total trials.
func (e *EventLog) CampaignStart(label string, shard, of, first, limit, total int) {
	e.Event("campaign_start", "label", label, "shard", shard, "of", of,
		"trials_first", first, "trials_limit", limit, "trials_total", total)
}

// Checkpoint records a checkpoint flush at a merged-trial prefix.
func (e *EventLog) Checkpoint(path string, merged int) {
	e.Event("checkpoint", "path", path, "trials_merged", merged)
}

// Resume records a campaign resuming from a checkpoint.
func (e *EventLog) Resume(path string, next int) {
	e.Event("resume", "path", path, "trials_next", next)
}

// ShardMerge records merging shard files into a final result.
func (e *EventLog) ShardMerge(paths []string, trials int) {
	e.Event("shard_merge", "shards", len(paths), "paths", paths, "trials_total", trials)
}

// Error records a campaign error (state matches the sidecar's terminal
// state: failed or halted).
func (e *EventLog) Error(state string, err error) {
	if e == nil || err == nil {
		return
	}
	e.l.Error("campaign_error", "state", state, "error", err.Error())
}

// CampaignEnd records a terminal state with the merged prefix and wall
// duration.
func (e *EventLog) CampaignEnd(state string, merged int, elapsed time.Duration) {
	e.Event("campaign_end", "state", state, "trials_merged", merged,
		"elapsed_ms", elapsed.Milliseconds())
}
