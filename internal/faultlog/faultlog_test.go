package faultlog

import (
	"bytes"
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/system"
)

func TestParseCSV(t *testing.T) {
	in := "time_minutes,severity\n12.5,1\n3.25,2\n97,1\n"
	entries, err := ParseCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	// Sorted by time.
	if entries[0].Time != 3.25 || entries[0].Severity != 2 {
		t.Fatalf("first entry = %+v", entries[0])
	}
	if entries[2].Time != 97 {
		t.Fatalf("last entry = %+v", entries[2])
	}
}

func TestParseCSVNoHeader(t *testing.T) {
	entries, err := ParseCSV(strings.NewReader("5,1\n8,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"time,severity\n5,abc\n", // bad severity mid-file
		"5,1\nbad,2\n",           // bad time after data
		"-5,1\n",                 // negative time
		"5,0\n",                  // severity < 1
		"5\n",                    // wrong field count
	}
	for _, in := range cases {
		if _, err := ParseCSV(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	entries := []Entry{{Time: 1.5, Severity: 1}, {Time: 9, Severity: 3}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, entries); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != entries[0] || back[1] != entries[1] {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestAnalyze(t *testing.T) {
	entries := []Entry{
		{Time: 10, Severity: 1}, {Time: 20, Severity: 1},
		{Time: 30, Severity: 1}, {Time: 40, Severity: 2},
	}
	f, err := Analyze(entries, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if f.Counts[0] != 3 || f.Counts[1] != 1 {
		t.Fatalf("counts = %v", f.Counts)
	}
	if math.Abs(f.Rates[0]-0.03) > 1e-12 || math.Abs(f.Rates[1]-0.01) > 1e-12 {
		t.Fatalf("rates = %v", f.Rates)
	}
	if math.Abs(f.MTBF-25) > 1e-9 {
		t.Fatalf("mtbf = %v", f.MTBF)
	}
	// Duration defaults to the last entry.
	f2, err := Analyze(entries, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Duration != 40 {
		t.Fatalf("default duration = %v", f2.Duration)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, 2, 10); err == nil {
		t.Error("empty log accepted")
	}
	if _, err := Analyze([]Entry{{Time: 1, Severity: 3}}, 2, 10); err == nil {
		t.Error("severity above classes accepted")
	}
	if _, err := Analyze([]Entry{{Time: 50, Severity: 1}}, 1, 10); err == nil {
		t.Error("entry outside window accepted")
	}
	if _, err := Analyze([]Entry{{Time: 1, Severity: 1}}, 0, 10); err == nil {
		t.Error("zero classes accepted")
	}
}

func TestApplyTo(t *testing.T) {
	template := &system.System{
		Name: "tpl", MTBF: 999, BaselineTime: 1440,
		Levels: []system.Level{
			{Checkpoint: 0.3, Restart: 0.3, SeverityProb: 0.5},
			{Checkpoint: 3, Restart: 3, SeverityProb: 0.5},
		},
	}
	f := Fit{Duration: 100, Counts: []int{8, 2}, Rates: []float64{0.08, 0.02}, MTBF: 10}
	sys, err := f.ApplyTo(template)
	if err != nil {
		t.Fatal(err)
	}
	if sys.MTBF != 10 {
		t.Fatalf("mtbf = %v", sys.MTBF)
	}
	if math.Abs(sys.Levels[0].SeverityProb-0.8) > 1e-12 {
		t.Fatalf("severity probs = %+v", sys.Levels)
	}
	if template.MTBF != 999 {
		t.Fatal("template mutated")
	}
	// Level-count mismatch rejected.
	short := Fit{Rates: []float64{0.1}}
	if _, err := short.ApplyTo(template); err == nil {
		t.Error("mismatched fit accepted")
	}
}

func TestInterarrivals(t *testing.T) {
	entries := []Entry{{Time: 5, Severity: 1}, {Time: 8, Severity: 1}, {Time: 20, Severity: 2}}
	got := Interarrivals(entries)
	want := []float64{5, 3, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interarrivals = %v", got)
		}
	}
}

func sampleLaw(t *testing.T, law dist.Sampler, n int, seed uint64) []float64 {
	t.Helper()
	src := rand.New(rand.NewPCG(seed, 17))
	out := make([]float64, n)
	for i := range out {
		out[i] = law.Sample(src)
	}
	return out
}

func TestFitWeibullRecoversShape(t *testing.T) {
	for _, k := range []float64{0.7, 1.0, 2.0} {
		w, err := dist.NewWeibull(20, k)
		if err != nil {
			t.Fatal(err)
		}
		samples := sampleLaw(t, w, 8000, uint64(k*100))
		fit, err := FitWeibull(samples)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Shape()-k)/k > 0.06 {
			t.Errorf("k=%v: fitted shape %v", k, fit.Shape())
		}
		if math.Abs(fit.Scale()-20)/20 > 0.06 {
			t.Errorf("k=%v: fitted scale %v", k, fit.Scale())
		}
	}
}

func TestFitWeibullOnExponentialDataGivesShapeNearOne(t *testing.T) {
	e, _ := dist.NewExponential(0.05)
	samples := sampleLaw(t, e, 8000, 5)
	fit, err := FitWeibull(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape()-1) > 0.05 {
		t.Fatalf("exponential data fitted k = %v", fit.Shape())
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull([]float64{1, 2}); err == nil {
		t.Error("too few samples accepted")
	}
	if _, err := FitWeibull([]float64{1, 0, 2}); err == nil {
		t.Error("zero sample accepted")
	}
}

func TestExponentialGoodness(t *testing.T) {
	e, _ := dist.NewExponential(0.1)
	cv2, err := ExponentialGoodness(sampleLaw(t, e, 20000, 9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cv2-1) > 0.05 {
		t.Fatalf("exponential cv² = %v, want ~1", cv2)
	}
	w, _ := dist.NewWeibull(10, 0.6)
	cv2w, err := ExponentialGoodness(sampleLaw(t, w, 20000, 10))
	if err != nil {
		t.Fatal(err)
	}
	if !(cv2w > 1.5) {
		t.Fatalf("bursty weibull cv² = %v, want >> 1", cv2w)
	}
	if _, err := ExponentialGoodness([]float64{1}); err == nil {
		t.Error("single sample accepted")
	}
}

func TestEndToEndLogToSystem(t *testing.T) {
	// Generate a synthetic two-severity log, round-trip through CSV,
	// and check the fitted system is close to the generator.
	src := rand.New(rand.NewPCG(3, 3))
	e1, _ := dist.NewExponential(1.0 / 30) // severity 1
	e2, _ := dist.NewExponential(1.0 / 90) // severity 2
	var entries []Entry
	for sev, law := range map[int]dist.Sampler{1: e1, 2: e2} {
		t0 := 0.0
		for {
			t0 += law.Sample(src)
			if t0 > 50000 {
				break
			}
			entries = append(entries, Entry{Time: t0, Severity: sev})
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, entries); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Analyze(parsed, 2, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Rates[0]-1.0/30)/(1.0/30) > 0.1 {
		t.Fatalf("severity-1 rate = %v", fit.Rates[0])
	}
	if math.Abs(fit.Rates[1]-1.0/90)/(1.0/90) > 0.1 {
		t.Fatalf("severity-2 rate = %v", fit.Rates[1])
	}
	// Aggregate inter-arrivals should look exponential.
	cv2, err := ExponentialGoodness(Interarrivals(parsed))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cv2-1) > 0.1 {
		t.Fatalf("merged Poisson processes cv² = %v", cv2)
	}
}

func TestTallyAgreesWithCounts(t *testing.T) {
	entries := []Entry{
		{Time: 5, Severity: 1},
		{Time: 9, Severity: 3},
		{Time: 20, Severity: 1},
		{Time: 31, Severity: 2},
		{Time: 44, Severity: 1},
	}
	fit, err := Analyze(entries, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Metrics == nil {
		t.Fatal("fit carries no metrics registry")
	}
	snap := fit.Metrics.Snapshot()
	if got := snap.Counter("faultlog_failures_total"); got != uint64(len(entries)) {
		t.Errorf("counter family total = %d, want %d", got, len(entries))
	}
	var fromCounts int
	for sev, n := range fit.Counts {
		fromCounts += n
		got := fit.Metrics.Counter("faultlog_failures_total", "severity", fmt.Sprint(sev+1)).Value()
		if got != uint64(n) {
			t.Errorf("severity %d: counter %d != Counts %d", sev+1, got, n)
		}
	}
	if fromCounts != len(entries) {
		t.Errorf("Counts sum to %d", fromCounts)
	}
	h := fit.Metrics.Histogram("faultlog_interarrival_minutes")
	if h.Count() != uint64(len(entries)) {
		t.Errorf("inter-arrival samples = %d, want %d", h.Count(), len(entries))
	}
	// Inter-arrivals telescope: their sum is the last arrival time.
	if math.Abs(h.Sum()-44) > 1e-12 {
		t.Errorf("inter-arrival sum = %v, want 44", h.Sum())
	}
	if h.Min() != 4 || h.Max() != 13 {
		t.Errorf("inter-arrival min/max = %v/%v, want 4/13", h.Min(), h.Max())
	}
}

func TestTallyRejectsOutOfRangeSeverity(t *testing.T) {
	if _, err := Tally([]Entry{{Time: 1, Severity: 4}}, 3); err == nil {
		t.Fatal("severity above the class count accepted")
	}
}
