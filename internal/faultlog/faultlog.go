// Package faultlog ingests failure logs — the raw material behind every
// Table I row — and fits the failure model the checkpoint optimizers
// consume: per-severity exponential rates (the paper's assumption) and,
// for checking that assumption, a maximum-likelihood Weibull fit of the
// inter-arrival distribution.
//
// The expected log format is CSV with two columns, an optional header,
// times in minutes since the observation window opened:
//
//	time_minutes,severity
//	12.5,1
//	97.0,1
//	311.2,3
package faultlog

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/system"
)

// Entry is one logged failure.
type Entry struct {
	// Time is minutes since the window opened.
	Time float64
	// Severity is the 1-based failure severity class.
	Severity int
}

// ParseCSV reads a failure log. A first line whose fields do not parse
// as numbers is treated as a header. Entries are returned sorted by
// time.
func ParseCSV(r io.Reader) ([]Entry, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	cr.TrimLeadingSpace = true
	var out []Entry
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("faultlog: %w", err)
		}
		line++
		t, errT := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		s, errS := strconv.Atoi(strings.TrimSpace(rec[1]))
		if errT != nil || errS != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("faultlog: line %d: cannot parse %q", line, rec)
		}
		if t < 0 || s < 1 {
			return nil, fmt.Errorf("faultlog: line %d: invalid entry time=%v severity=%d", line, t, s)
		}
		out = append(out, Entry{Time: t, Severity: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out, nil
}

// WriteCSV emits entries in the format ParseCSV reads.
func WriteCSV(w io.Writer, entries []Entry) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_minutes", "severity"}); err != nil {
		return err
	}
	for _, e := range entries {
		if err := cw.Write([]string{
			strconv.FormatFloat(e.Time, 'g', -1, 64),
			strconv.Itoa(e.Severity),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Fit is the per-severity exponential fit of a log.
type Fit struct {
	// Duration is the observation window in minutes.
	Duration float64
	// Counts holds failures per severity (index 0 = severity 1),
	// derived from the Metrics counter family.
	Counts []int
	// Rates holds the MLE rates count/duration per severity.
	Rates []float64
	// MTBF is 1 / Σ rates.
	MTBF float64
	// Metrics is the tally registry behind the fit: the counter family
	// faultlog_failures_total{severity=...} and the
	// faultlog_interarrival_minutes histogram — the same aggregation
	// substrate the simulator's telemetry uses (internal/obs), so log
	// analysis and simulation metrics agree on one path.
	Metrics *obs.Registry
}

// Tally aggregates a (sorted) log into an obs registry: one
// faultlog_failures_total counter per severity class and the
// faultlog_interarrival_minutes histogram over aggregate inter-arrival
// times.
func Tally(entries []Entry, numSeverities int) (*obs.Registry, error) {
	reg := obs.NewRegistry()
	counters := make([]*obs.Counter, numSeverities)
	for s := range counters {
		counters[s] = reg.Counter("faultlog_failures_total", "severity", strconv.Itoa(s+1))
	}
	inter := reg.Histogram("faultlog_interarrival_minutes")
	prev := 0.0
	for _, e := range entries {
		if e.Severity < 1 || e.Severity > numSeverities {
			return nil, fmt.Errorf("faultlog: severity %d exceeds %d classes", e.Severity, numSeverities)
		}
		counters[e.Severity-1].Inc()
		inter.Observe(e.Time - prev)
		prev = e.Time
	}
	return reg, nil
}

// Analyze fits per-severity exponential rates. numSeverities bounds the
// severity classes (entries above it are rejected); duration is the
// observation window (0 = the last entry's time).
func Analyze(entries []Entry, numSeverities int, duration float64) (Fit, error) {
	if len(entries) == 0 {
		return Fit{}, errors.New("faultlog: empty log")
	}
	if numSeverities < 1 {
		return Fit{}, fmt.Errorf("faultlog: %d severities", numSeverities)
	}
	if duration == 0 {
		duration = entries[len(entries)-1].Time
	}
	if !(duration > 0) {
		return Fit{}, fmt.Errorf("faultlog: window %v must be positive", duration)
	}
	for _, e := range entries {
		if e.Time > duration {
			return Fit{}, fmt.Errorf("faultlog: entry at %v outside window %v", e.Time, duration)
		}
	}
	reg, err := Tally(entries, numSeverities)
	if err != nil {
		return Fit{}, err
	}
	f := Fit{Duration: duration, Counts: make([]int, numSeverities), Metrics: reg}
	for s := 1; s <= numSeverities; s++ {
		f.Counts[s-1] = int(reg.Counter("faultlog_failures_total", "severity", strconv.Itoa(s)).Value())
	}
	var total float64
	f.Rates = make([]float64, numSeverities)
	for i, c := range f.Counts {
		f.Rates[i] = float64(c) / duration
		total += f.Rates[i]
	}
	if total <= 0 {
		return Fit{}, errors.New("faultlog: no failures in window")
	}
	f.MTBF = 1 / total
	return f, nil
}

// ApplyTo returns a copy of the template system with the fitted MTBF and
// severity distribution installed. The template supplies the level costs
// and baseline time; its level count must match the fit.
func (f Fit) ApplyTo(template *system.System) (*system.System, error) {
	if template.NumLevels() != len(f.Rates) {
		return nil, fmt.Errorf("faultlog: fit has %d severities, template %d levels",
			len(f.Rates), template.NumLevels())
	}
	out := template.Clone()
	out.MTBF = f.MTBF
	var total float64
	for _, r := range f.Rates {
		total += r
	}
	for i := range out.Levels {
		out.Levels[i].SeverityProb = f.Rates[i] / total
	}
	out.Name = template.Name + "/fitted"
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Interarrivals converts a (sorted) log into aggregate inter-arrival
// times, the input for distribution fitting.
func Interarrivals(entries []Entry) []float64 {
	out := make([]float64, 0, len(entries))
	prev := 0.0
	for _, e := range entries {
		out = append(out, e.Time-prev)
		prev = e.Time
	}
	return out
}

// FitWeibull fits a Weibull law to inter-arrival samples by maximum
// likelihood (Newton on the shape profile equation). A fitted shape near
// 1 supports the paper's exponential assumption; k < 1 indicates the
// bursty "infant mortality" regime.
func FitWeibull(samples []float64) (dist.Weibull, error) {
	n := len(samples)
	if n < 3 {
		return dist.Weibull{}, fmt.Errorf("faultlog: need >= 3 samples, have %d", n)
	}
	var meanLog float64
	for _, x := range samples {
		if !(x > 0) {
			return dist.Weibull{}, fmt.Errorf("faultlog: non-positive sample %v", x)
		}
		meanLog += math.Log(x)
	}
	meanLog /= float64(n)

	// Profile equation g(k) = A(k)/B(k) − 1/k − meanLog = 0 where
	// A = Σ x^k ln x, B = Σ x^k; g is increasing in k.
	g := func(k float64) float64 {
		var a, b float64
		for _, x := range samples {
			xk := math.Pow(x, k)
			a += xk * math.Log(x)
			b += xk
		}
		return a/b - 1/k - meanLog
	}
	lo, hi := 0.02, 1.0
	for g(hi) < 0 {
		hi *= 2
		if hi > 512 {
			return dist.Weibull{}, errors.New("faultlog: weibull shape did not bracket (degenerate samples)")
		}
	}
	for g(lo) > 0 {
		lo /= 2
		if lo < 1e-4 {
			return dist.Weibull{}, errors.New("faultlog: weibull shape did not bracket (heavy ties)")
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-10*(1+hi); i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2
	var b float64
	for _, x := range samples {
		b += math.Pow(x, k)
	}
	scale := math.Pow(b/float64(n), 1/k)
	return dist.NewWeibull(scale, k)
}

// ExponentialGoodness reports a crude dispersion diagnostic: the squared
// coefficient of variation of the inter-arrivals. Exponential data gives
// ~1; values well above 1 indicate burstiness (Weibull k < 1), below 1
// regularity (k > 1).
func ExponentialGoodness(samples []float64) (cv2 float64, err error) {
	if len(samples) < 2 {
		return 0, errors.New("faultlog: need >= 2 samples")
	}
	var mean float64
	for _, x := range samples {
		mean += x
	}
	mean /= float64(len(samples))
	if mean <= 0 {
		return 0, errors.New("faultlog: non-positive mean")
	}
	var v float64
	for _, x := range samples {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(samples) - 1)
	return v / (mean * mean), nil
}
