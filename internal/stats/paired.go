package stats

import (
	"fmt"
	"math"
)

// PairedSample accumulates paired observations (a_i, b_i) — the same
// trial index simulated under two techniques with common random numbers
// — using Welford-style online moments for a, b, their difference, and
// the cross-moment. The paired difference is what the paper's headline
// claims are really about ("technique X beats technique Y on the same
// system"), and under CRN its variance shrinks by the factor
// 1 - 2ρσaσb/(σa²+σb²) relative to the unpaired Welch comparison.
type PairedSample struct {
	n            int
	meanA, meanB float64
	m2A, m2B     float64
	cab          float64 // Σ (a-meanA)(b-meanB), updated online
}

// Add records one pair.
func (p *PairedSample) Add(a, b float64) {
	p.n++
	n := float64(p.n)
	da := a - p.meanA
	p.meanA += da / n
	db := b - p.meanB
	p.meanB += db / n
	// Cross-moment uses the pre-update delta of a and post-update delta
	// of b (standard online covariance update).
	p.cab += da * (b - p.meanB)
	p.m2A += da * (a - p.meanA)
	p.m2B += db * (b - p.meanB)
}

// AddAll records aligned slices of pairs; the slices must be the same
// length.
func (p *PairedSample) AddAll(as, bs []float64) error {
	if len(as) != len(bs) {
		return fmt.Errorf("stats: paired samples of unequal length %d and %d", len(as), len(bs))
	}
	for i := range as {
		p.Add(as[i], bs[i])
	}
	return nil
}

// Merge combines another paired sample into p (parallel reduction).
// Like Sample.Merge, an aliased merge is a no-op.
func (p *PairedSample) Merge(o *PairedSample) {
	if p == o || o.n == 0 {
		return
	}
	if p.n == 0 {
		*p = *o
		return
	}
	n := float64(p.n + o.n)
	w := float64(p.n) * float64(o.n) / n
	da := o.meanA - p.meanA
	db := o.meanB - p.meanB
	p.m2A += o.m2A + da*da*w
	p.m2B += o.m2B + db*db*w
	p.cab += o.cab + da*db*w
	p.meanA += da * float64(o.n) / n
	p.meanB += db * float64(o.n) / n
	p.n += o.n
}

// N returns the number of pairs.
func (p *PairedSample) N() int { return p.n }

// MeanA returns the mean of the first coordinate.
func (p *PairedSample) MeanA() float64 { return p.meanA }

// MeanB returns the mean of the second coordinate.
func (p *PairedSample) MeanB() float64 { return p.meanB }

// MeanDiff returns the mean paired difference a−b.
func (p *PairedSample) MeanDiff() float64 { return p.meanA - p.meanB }

// VarDiff returns the unbiased variance of the paired differences,
// Var(a) + Var(b) − 2·Cov(a,b).
func (p *PairedSample) VarDiff() float64 {
	if p.n < 2 {
		return 0
	}
	v := (p.m2A + p.m2B - 2*p.cab) / float64(p.n-1)
	if v < 0 {
		// Cancellation can push an (analytically non-negative) result a
		// few ulps below zero when the coordinates are near-identical.
		return 0
	}
	return v
}

// Cov returns the unbiased sample covariance of the pairs.
func (p *PairedSample) Cov() float64 {
	if p.n < 2 {
		return 0
	}
	return p.cab / float64(p.n-1)
}

// Corr returns the sample correlation coefficient (0 when either
// coordinate is constant).
func (p *PairedSample) Corr() float64 {
	if p.n < 2 || p.m2A == 0 || p.m2B == 0 {
		return 0
	}
	return p.cab / math.Sqrt(p.m2A*p.m2B)
}

// StdErrDiff returns the standard error of the mean paired difference.
func (p *PairedSample) StdErrDiff() float64 {
	if p.n == 0 {
		return 0
	}
	return math.Sqrt(p.VarDiff() / float64(p.n))
}

// CIDiff returns the half-width of the two-sided confidence interval of
// the mean paired difference at the given level (e.g. 0.95).
func (p *PairedSample) CIDiff(level float64) (float64, error) {
	if p.n < 2 {
		return 0, fmt.Errorf("%w: have %d pairs, need 2", ErrTooFewSamples, p.n)
	}
	if err := p.checkFinite(); err != nil {
		return 0, err
	}
	t, err := StudentTQuantile(1-(1-level)/2, float64(p.n-1))
	if err != nil {
		return 0, err
	}
	return t * p.StdErrDiff(), nil
}

// PairedTResult reports a paired (one-sample-on-differences) t-test.
type PairedTResult struct {
	T  float64 // t statistic of the mean difference a − b
	DF float64 // n − 1
	P  float64 // two-sided p-value
}

// TTest performs the paired t-test of mean(a−b) = 0.
func (p *PairedSample) TTest() (PairedTResult, error) {
	if p.n < 2 {
		return PairedTResult{}, fmt.Errorf("%w: have %d pairs, need 2", ErrTooFewSamples, p.n)
	}
	if err := p.checkFinite(); err != nil {
		return PairedTResult{}, err
	}
	df := float64(p.n - 1)
	se := p.StdErrDiff()
	if se == 0 {
		// Identical pairs throughout: no difference (p=1) or a constant
		// one (infinitely significant), mirroring WelchT's degenerate
		// handling.
		if p.MeanDiff() == 0 {
			return PairedTResult{T: 0, DF: df, P: 1}, nil
		}
		return PairedTResult{T: math.Inf(sign(p.MeanDiff())), DF: df, P: 0}, nil
	}
	t := p.MeanDiff() / se
	pv := 2 * studentTSF(math.Abs(t), df)
	if math.IsNaN(pv) {
		return PairedTResult{}, fmt.Errorf("%w: paired t=%v df=%v", ErrNonFinite, t, df)
	}
	return PairedTResult{T: t, DF: df, P: pv}, nil
}

// checkFinite rejects accumulated moments poisoned by NaN or ±Inf
// observations. Welford arithmetic propagates a single NaN into every
// subsequent moment, so checking the final moments catches any bad
// input.
func (p *PairedSample) checkFinite() error {
	for _, v := range [...]float64{p.meanA, p.meanB, p.m2A, p.m2B, p.cab} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: paired moments meanA=%v meanB=%v", ErrNonFinite, p.meanA, p.meanB)
		}
	}
	return nil
}

// Comparison is a full paired comparison of two aligned samples: the
// estimate of E[a−b], its confidence interval, the significance test,
// and the variance-reduction diagnostics that justify pairing.
type Comparison struct {
	N        int     // pairs
	MeanA    float64 // mean of a
	MeanB    float64 // mean of b
	MeanDiff float64 // mean of a − b
	CIHalf   float64 // paired CI half-width of MeanDiff at Level
	Level    float64 // confidence level the CI and verdicts use
	T        float64 // paired t statistic
	DF       float64 // n − 1
	P        float64 // two-sided p-value
	Corr     float64 // sample correlation between a and b
	// WelchCIHalf is the CI half-width an unpaired Welch comparison of
	// the same two samples would report — the "what CRN bought us"
	// yardstick. VarReduction is (WelchCIHalf/CIHalf)², the factor by
	// which pairing divides the trial count needed for a fixed width.
	WelchCIHalf  float64
	VarReduction float64
}

// AGreater reports whether mean(a) exceeds mean(b) with one-sided
// confidence at the comparison's level.
func (c Comparison) AGreater() bool { return c.T > 0 && c.P/2 < 1-c.Level }

// BGreater reports whether mean(b) exceeds mean(a) with one-sided
// confidence at the comparison's level.
func (c Comparison) BGreater() bool { return c.T < 0 && c.P/2 < 1-c.Level }

// PairedCompare compares two index-aligned samples (trial i of a and
// trial i of b ran under common random numbers) at the given confidence
// level. Campaigns that ran with CRN use this in place of the unpaired
// Welch test: the point estimate of the difference is identical, but
// the interval shrinks with the cross-technique correlation.
func PairedCompare(as, bs []float64, level float64) (Comparison, error) {
	var p PairedSample
	if err := p.AddAll(as, bs); err != nil {
		return Comparison{}, err
	}
	return p.Compare(level)
}

// Compare finalizes the accumulated pairs into a Comparison.
func (p *PairedSample) Compare(level float64) (Comparison, error) {
	ci, err := p.CIDiff(level)
	if err != nil {
		return Comparison{}, err
	}
	tt, err := p.TTest()
	if err != nil {
		return Comparison{}, err
	}
	out := Comparison{
		N:        p.n,
		MeanA:    p.meanA,
		MeanB:    p.meanB,
		MeanDiff: p.MeanDiff(),
		CIHalf:   ci,
		Level:    level,
		T:        tt.T,
		DF:       tt.DF,
		P:        tt.P,
		Corr:     p.Corr(),
	}
	// The unpaired yardstick: Welch CI half-width of the mean difference
	// from the same marginal variances, ignoring the pairing.
	nf := float64(p.n)
	if p.n >= 2 {
		seW := math.Sqrt((p.m2A + p.m2B) / (nf - 1) / nf)
		va, vb := p.m2A/(nf-1)/nf, p.m2B/(nf-1)/nf
		dfW := nf - 1 // equal n; Welch–Satterthwaite when variances differ
		if va > 0 || vb > 0 {
			dfW = (va + vb) * (va + vb) / (va*va/(nf-1) + vb*vb/(nf-1))
		}
		tq, err := StudentTQuantile(1-(1-level)/2, dfW)
		if err != nil {
			return Comparison{}, err
		}
		out.WelchCIHalf = tq * seW
		if ci > 0 {
			out.VarReduction = (out.WelchCIHalf / ci) * (out.WelchCIHalf / ci)
		}
	}
	return out, nil
}

// SignificantlyGreaterPaired reports whether the first coordinate's mean
// exceeds the second's with one-sided confidence at the given level,
// using the paired t-test. The samples must be index-aligned (CRN).
func SignificantlyGreaterPaired(as, bs []float64, level float64) (bool, error) {
	var p PairedSample
	if err := p.AddAll(as, bs); err != nil {
		return false, err
	}
	tt, err := p.TTest()
	if err != nil {
		return false, err
	}
	if tt.T <= 0 {
		return false, nil
	}
	return tt.P/2 < 1-level, nil
}

// CVResult is a control-variate-adjusted mean estimate: for outputs y
// and a mean-zero control c correlated with y, the estimator
// mean(y) − β·mean(c) with β = Cov(y,c)/Var(c) has the same expectation
// as mean(y) and variance reduced by the factor 1−ρ²(y,c). β is
// estimated from the same sample (the textbook regression-sampling
// estimator; the O(1/n) bias this introduces is negligible at campaign
// trial counts and noted in DESIGN.md §2.11).
type CVResult struct {
	N    int
	Beta float64 // fitted control coefficient
	Mean float64 // adjusted mean estimate
	Std  float64 // standard deviation of the adjusted observations
	Corr float64 // sample correlation between y and c
	// RawMean and RawStd echo the unadjusted sample for comparison.
	RawMean float64
	RawStd  float64
}

// CI returns the half-width of the adjusted mean's confidence interval.
// The residual-based interval uses n−2 degrees of freedom (one each for
// the fitted mean and β).
func (r CVResult) CI(level float64) (float64, error) {
	if r.N < 3 {
		return 0, fmt.Errorf("%w: have %d, need 3", ErrTooFewSamples, r.N)
	}
	t, err := StudentTQuantile(1-(1-level)/2, float64(r.N-2))
	if err != nil {
		return 0, err
	}
	return t * r.Std / math.Sqrt(float64(r.N)), nil
}

// ControlVariate fits the regression-sampling control-variate estimator
// of mean(y) using the mean-zero control c (E[c] = 0 must hold exactly
// — for the simulator's failure-count martingale control it does, by
// the optional-stopping theorem; see DESIGN.md §2.11).
func ControlVariate(ys, cs []float64) (CVResult, error) {
	if len(ys) != len(cs) {
		return CVResult{}, fmt.Errorf("stats: control variate lengths %d and %d", len(ys), len(cs))
	}
	var p PairedSample
	if err := p.AddAll(ys, cs); err != nil {
		return CVResult{}, err
	}
	if p.n < 3 {
		return CVResult{}, fmt.Errorf("%w: have %d, need 3", ErrTooFewSamples, p.n)
	}
	if err := p.checkFinite(); err != nil {
		return CVResult{}, err
	}
	out := CVResult{
		N:       p.n,
		Corr:    p.Corr(),
		RawMean: p.meanA,
		RawStd:  math.Sqrt(p.m2A / float64(p.n-1)),
	}
	if p.m2B == 0 {
		// Constant control carries no information; fall back to the raw
		// estimator.
		out.Mean, out.Std = out.RawMean, out.RawStd
		return out, nil
	}
	out.Beta = p.cab / p.m2B
	// Adjusted observations are y_i − β(c_i − 0); their mean uses the
	// control's KNOWN expectation (zero), which is where the variance
	// reduction comes from.
	out.Mean = p.meanA - out.Beta*p.meanB
	// Residual second moment: m2A − β²·m2B (= m2A(1−ρ²)).
	res := p.m2A - out.Beta*out.Beta*p.m2B
	if res < 0 {
		res = 0
	}
	out.Std = math.Sqrt(res / float64(p.n-1))
	return out, nil
}
