package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

// Self-merge regression (ISSUE 7): s.Merge(s) used to double n and m2,
// corrupting the variance while keeping the mean plausible.
func TestSampleMergeSelfAlias(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 2, 3, 4, 5})
	want := s
	s.Merge(&s)
	if s != want {
		t.Fatalf("self-merge changed the sample: got %+v, want %+v", s, want)
	}
	if got, wantVar := s.Var(), 2.5; math.Abs(got-wantVar) > 1e-12 {
		t.Fatalf("variance after self-merge = %v, want %v", got, wantVar)
	}
}

func TestPairedSampleMergeSelfAlias(t *testing.T) {
	var p PairedSample
	p.Add(1, 2)
	p.Add(3, 5)
	p.Add(4, 4)
	want := p
	p.Merge(&p)
	if p != want {
		t.Fatalf("self-merge changed the paired sample: got %+v, want %+v", p, want)
	}
}

// Quantiles must agree with per-call Quantile while sorting only once;
// SortedQuantile must agree on pre-sorted input.
func TestQuantilesAgree(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	qs := []float64{0, 0.05, 0.25, 0.5, 0.75, 0.95, 1}
	got, err := Quantiles(xs, qs...)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ { // insertion sort: no sort import needed
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i, q := range qs {
		single, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != single {
			t.Errorf("Quantiles[%v] = %v, Quantile = %v", q, got[i], single)
		}
		presorted, err := SortedQuantile(sorted, q)
		if err != nil {
			t.Fatal(err)
		}
		if presorted != single {
			t.Errorf("SortedQuantile(%v) = %v, Quantile = %v", q, presorted, single)
		}
	}
	if _, err := Quantiles(nil, 0.5); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("empty Quantiles err = %v, want ErrTooFewSamples", err)
	}
	if _, err := Quantiles(xs, 0.5, math.NaN()); err == nil {
		t.Error("NaN quantile accepted")
	}
	if _, err := SortedQuantile(sorted, 1.5); err == nil {
		t.Error("out-of-range quantile accepted")
	}
}

// NaN regression (ISSUE 7): NaN inputs used to flow through sign() as +1
// and through SignificantlyGreater as a silent (false, nil).
func TestWelchRejectsNaN(t *testing.T) {
	good := Of([]float64{1, 2, 3, 4})
	for _, bad := range []Summary{
		{N: 4, Mean: math.NaN(), Std: 1},
		{N: 4, Mean: 1, Std: math.NaN()},
		{N: 4, Mean: math.Inf(1), Std: 1},
	} {
		if _, err := WelchT(bad, good); !errors.Is(err, ErrNonFinite) {
			t.Errorf("WelchT(%+v, good) err = %v, want ErrNonFinite", bad, err)
		}
		if _, err := WelchT(good, bad); !errors.Is(err, ErrNonFinite) {
			t.Errorf("WelchT(good, %+v) err = %v, want ErrNonFinite", bad, err)
		}
		if _, err := SignificantlyGreater(bad, good, 0.95); !errors.Is(err, ErrNonFinite) {
			t.Errorf("SignificantlyGreater(%+v, good) err = %v, want ErrNonFinite", bad, err)
		}
	}
	// Finite inputs still work.
	if sig, err := SignificantlyGreater(Of([]float64{10, 11, 12}), Of([]float64{1, 2, 3}), 0.95); err != nil || !sig {
		t.Errorf("clear separation: sig=%v err=%v, want true,nil", sig, err)
	}
}

func TestPairedSampleRejectsNaN(t *testing.T) {
	var p PairedSample
	p.Add(1, 2)
	p.Add(math.NaN(), 3)
	p.Add(2, 4)
	if _, err := p.CIDiff(0.95); !errors.Is(err, ErrNonFinite) {
		t.Errorf("CIDiff err = %v, want ErrNonFinite", err)
	}
	if _, err := p.TTest(); !errors.Is(err, ErrNonFinite) {
		t.Errorf("TTest err = %v, want ErrNonFinite", err)
	}
	if _, err := p.Compare(0.95); !errors.Is(err, ErrNonFinite) {
		t.Errorf("Compare err = %v, want ErrNonFinite", err)
	}
	if _, err := SignificantlyGreaterPaired([]float64{1, math.NaN()}, []float64{1, 2}, 0.95); !errors.Is(err, ErrNonFinite) {
		t.Errorf("SignificantlyGreaterPaired err = %v, want ErrNonFinite", err)
	}
}

// Paired moments must match the direct two-pass computation.
func TestPairedSampleMoments(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	var as, bs []float64
	var p PairedSample
	for i := 0; i < 500; i++ {
		a := r.NormFloat64()*3 + 10
		b := 0.8*a + r.NormFloat64() // correlated
		as, bs = append(as, a), append(bs, b)
		p.Add(a, b)
	}
	meanA, meanB := Mean(as), Mean(bs)
	var covSum, varD float64
	for i := range as {
		covSum += (as[i] - meanA) * (bs[i] - meanB)
		d := (as[i] - bs[i]) - (meanA - meanB)
		varD += d * d
	}
	cov := covSum / float64(len(as)-1)
	varD /= float64(len(as) - 1)
	if math.Abs(p.MeanA()-meanA) > 1e-10 || math.Abs(p.MeanB()-meanB) > 1e-10 {
		t.Fatalf("means (%v, %v), want (%v, %v)", p.MeanA(), p.MeanB(), meanA, meanB)
	}
	if math.Abs(p.Cov()-cov) > 1e-9 {
		t.Fatalf("Cov = %v, want %v", p.Cov(), cov)
	}
	if math.Abs(p.VarDiff()-varD) > 1e-9 {
		t.Fatalf("VarDiff = %v, want %v", p.VarDiff(), varD)
	}
	corr := cov / (Std(as) * Std(bs))
	if math.Abs(p.Corr()-corr) > 1e-9 {
		t.Fatalf("Corr = %v, want %v", p.Corr(), corr)
	}
}

// Splitting the pairs across shards and merging must reproduce the
// single-accumulator moments.
func TestPairedSampleMerge(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	var whole, s1, s2, s3 PairedSample
	for i := 0; i < 300; i++ {
		a, b := r.NormFloat64(), r.NormFloat64()
		whole.Add(a, b)
		switch i % 3 {
		case 0:
			s1.Add(a, b)
		case 1:
			s2.Add(a, b)
		default:
			s3.Add(a, b)
		}
	}
	var merged PairedSample
	merged.Merge(&s1)
	merged.Merge(&s2)
	merged.Merge(&s3)
	if merged.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), whole.N())
	}
	for name, pair := range map[string][2]float64{
		"meanA":   {merged.MeanA(), whole.MeanA()},
		"meanB":   {merged.MeanB(), whole.MeanB()},
		"cov":     {merged.Cov(), whole.Cov()},
		"varDiff": {merged.VarDiff(), whole.VarDiff()},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9 {
			t.Errorf("%s: merged %v, whole %v", name, pair[0], pair[1])
		}
	}
}

// On strongly correlated pairs the paired CI must be far narrower than
// the unpaired Welch CI of the same data, and the Comparison must
// report the shrinkage.
func TestPairedBeatsWelchOnCorrelatedData(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	var as, bs []float64
	for i := 0; i < 400; i++ {
		common := r.NormFloat64() * 10 // shared noise, as under CRN
		as = append(as, 1.0+common+0.1*r.NormFloat64())
		bs = append(bs, 0.5+common+0.1*r.NormFloat64())
	}
	c, err := PairedCompare(as, bs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if c.CIHalf <= 0 || c.WelchCIHalf/c.CIHalf < 10 {
		t.Fatalf("paired CI %v vs Welch CI %v: want >= 10x shrink", c.CIHalf, c.WelchCIHalf)
	}
	if c.Corr < 0.99 {
		t.Fatalf("Corr = %v, want ~1 for shared-noise pairs", c.Corr)
	}
	if !c.AGreater() || c.BGreater() {
		t.Fatalf("verdicts AGreater=%v BGreater=%v, want true,false", c.AGreater(), c.BGreater())
	}
	if math.Abs(c.MeanDiff-0.5) > 0.05 {
		t.Fatalf("MeanDiff = %v, want ~0.5", c.MeanDiff)
	}
	sig, err := SignificantlyGreaterPaired(as, bs, 0.95)
	if err != nil || !sig {
		t.Fatalf("SignificantlyGreaterPaired = %v, %v; want true, nil", sig, err)
	}
	// The unpaired test cannot see the difference through the shared
	// noise at this sample size.
	welchSig, err := SignificantlyGreater(Of(as), Of(bs), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if welchSig {
		t.Fatal("unpaired Welch certified the difference through 10σ shared noise; test data is miscalibrated")
	}
}

// The control-variate estimator must stay unbiased and cut the variance
// by ~1-ρ² when the control explains most of the output variance.
func TestControlVariate(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	var ys, cs []float64
	for i := 0; i < 2000; i++ {
		c := r.NormFloat64() // mean-zero control
		ys = append(ys, 5+2*c+0.2*r.NormFloat64())
		cs = append(cs, c)
	}
	res, err := ControlVariate(ys, cs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-5) > 0.05 {
		t.Fatalf("adjusted mean = %v, want ~5", res.Mean)
	}
	if math.Abs(res.Beta-2) > 0.05 {
		t.Fatalf("beta = %v, want ~2", res.Beta)
	}
	if res.Std > res.RawStd/5 {
		t.Fatalf("adjusted std %v vs raw %v: want >= 5x reduction", res.Std, res.RawStd)
	}
	ci, err := res.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci <= 0 || ci > 0.02 {
		t.Fatalf("adjusted CI = %v, want small positive", ci)
	}
	// Constant control degrades gracefully to the raw estimator.
	flat := make([]float64, len(ys))
	res2, err := ControlVariate(ys, flat)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Mean != res2.RawMean || res2.Std != res2.RawStd || res2.Beta != 0 {
		t.Fatalf("constant control: got %+v, want raw fallback", res2)
	}
	// Mismatched lengths and NaN inputs are errors.
	if _, err := ControlVariate(ys[:10], cs[:9]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ControlVariate([]float64{1, math.NaN(), 3}, []float64{0, 0, 1}); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NaN output err = %v, want ErrNonFinite", err)
	}
}
