package stats

import (
	"errors"
	"math"
	"testing"
)

// The reference values in this file were produced by an independent
// implementation: direct adaptive-Simpson integration of the Student-t
// density (via the log-gamma function), with quantiles by bisection on
// the integrated CDF. The package computes the same quantities through
// the regularized-incomplete-beta continued fraction, so agreement to
// ~1e-6 is a genuine cross-check, not a tautology. Spot values (e.g.
// t_{0.975,9} = 2.2622, t_{0.975,1} = 12.7062) also match standard
// t-tables.

func closeRel(got, want, rel, abs float64) bool {
	return math.Abs(got-want) <= rel*math.Abs(want)+abs
}

func TestWelchTGolden(t *testing.T) {
	cases := []struct {
		name     string
		a, b     []float64
		t, df, p float64
	}{
		// Equal variances, shift of one pooled stderr: t and df are
		// analytically exact (t = -1, df = 8).
		{"symmetric-shift", []float64{1, 2, 3, 4, 5}, []float64{2, 3, 4, 5, 6},
			-1, 8, 0.346593507087},
		{"unequal-variance", []float64{1.1, 2.3, 3.1, 4.8}, []float64{10, 11, 9, 12, 13},
			-7.78645000169, 6.62445427592, 0.000143950978187},
		{"near-identical", []float64{0.62, 0.61, 0.63, 0.60, 0.62, 0.615},
			[]float64{0.618, 0.612, 0.628, 0.605, 0.622, 0.617},
			-0.220896040582, 9.43473385347, 0.829880086011},
		// n=2 vs n=2: the Welch–Satterthwaite df drops below 2.
		{"tiny-n", []float64{3, 4}, []float64{1, 1.5},
			4.0249223595, 1.47058823529, 0.0917102936366},
		// Separation of ~100 sigma: deep-tail p-value.
		{"big-separation", []float64{10.2, 10.3, 10.1, 10.25}, []float64{2.1, 2.2, 2.0, 2.15},
			134.148744736, 6, 1.15718837124e-11},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := WelchT(Of(tc.a), Of(tc.b))
			if err != nil {
				t.Fatal(err)
			}
			if !closeRel(r.T, tc.t, 1e-9, 1e-12) {
				t.Errorf("T = %.12g, want %.12g", r.T, tc.t)
			}
			if !closeRel(r.DF, tc.df, 1e-9, 1e-12) {
				t.Errorf("DF = %.12g, want %.12g", r.DF, tc.df)
			}
			if !closeRel(r.P, tc.p, 1e-5, 1e-15) {
				t.Errorf("P = %.12g, want %.12g", r.P, tc.p)
			}
		})
	}
}

func TestStudentTQuantileGolden(t *testing.T) {
	cases := []struct{ p, df, want float64 }{
		{0.975, 9, 2.2621571628},
		{0.95, 4, 2.13184678633},
		{0.975, 1, 12.7062045737}, // Cauchy: the heaviest tail the CI path sees
		{0.995, 29, 2.75638590367},
		{0.975, 63, 1.99834054252},
		{0.9, 2.5, 1.73025092881}, // fractional df, as Welch produces
		{0.75, 7, 0.711141778082},
	}
	for _, tc := range cases {
		got, err := StudentTQuantile(tc.p, tc.df)
		if err != nil {
			t.Fatal(err)
		}
		if !closeRel(got, tc.want, 1e-7, 1e-10) {
			t.Errorf("StudentTQuantile(%v, %v) = %.12g, want %.12g", tc.p, tc.df, got, tc.want)
		}
	}
}

func TestQuantileGolden(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6} // sorted: 1 1 2 3 4 5 6 9
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 9}, {0.5, 3.5}, {0.25, 1.75}, {0.9, 6.9},
	}
	for _, tc := range cases {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// xs must not be reordered by the call.
	if xs[0] != 3 || xs[5] != 9 {
		t.Error("Quantile mutated its input")
	}
	// Singleton: every quantile is the single element.
	for _, q := range []float64{0, 0.3, 1} {
		got, err := Quantile([]float64{7.5}, q)
		if err != nil || got != 7.5 {
			t.Errorf("singleton Quantile(%v) = %v, %v", q, got, err)
		}
	}
}

// TestGoldenEdgeCases pins the degenerate paths: empty/singleton inputs
// and constant samples must produce typed errors or the documented
// conventional values, never NaN.
func TestGoldenEdgeCases(t *testing.T) {
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("empty Quantile: %v, want ErrTooFewSamples", err)
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Quantile([]float64{1, 2}, q); err == nil {
			t.Errorf("Quantile accepted q=%v", q)
		}
	}

	var one Sample
	one.Add(42)
	if _, err := one.CI(0.95); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("n=1 CI: %v, want ErrTooFewSamples", err)
	}
	var two Sample
	two.AddAll([]float64{1, 3})
	// n=2: half-width = t_{0.975,1} x stderr = 12.7062 x 1.
	ci, err := two.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !closeRel(ci, 12.7062045737, 1e-7, 1e-10) {
		t.Errorf("n=2 CI half-width %v, want 12.7062", ci)
	}

	if _, err := WelchT(Of([]float64{1}), Of([]float64{1, 2})); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("n=1 WelchT: %v, want ErrTooFewSamples", err)
	}
	// Identical constant samples: conventionally not different.
	r, err := WelchT(Of([]float64{5, 5, 5}), Of([]float64{5, 5, 5}))
	if err != nil || r.P != 1 || r.T != 0 {
		t.Errorf("equal constants: %+v, %v; want T=0 P=1", r, err)
	}
	// Distinct constant samples: infinitely significant, signed toward a.
	r, err = WelchT(Of([]float64{5, 5}), Of([]float64{3, 3}))
	if err != nil || r.P != 0 || !math.IsInf(r.T, 1) {
		t.Errorf("distinct constants: %+v, %v; want T=+Inf P=0", r, err)
	}
	r, err = WelchT(Of([]float64{3, 3}), Of([]float64{5, 5}))
	if err != nil || r.P != 0 || !math.IsInf(r.T, -1) {
		t.Errorf("distinct constants reversed: %+v, %v; want T=-Inf P=0", r, err)
	}

	sig, err := SignificantlyGreater(Of([]float64{5, 5}), Of([]float64{3, 3}), 0.95)
	if err != nil || !sig {
		t.Errorf("constant 5s vs 3s not significantly greater: %v, %v", sig, err)
	}
	sig, err = SignificantlyGreater(Of([]float64{3, 3}), Of([]float64{5, 5}), 0.95)
	if err != nil || sig {
		t.Errorf("constant 3s vs 5s reported significantly greater")
	}
}
