package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestSketchMomentsMatchSummarize(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	vals := make([]float64, 1000)
	var sample Sample
	sk := NewSketch()
	for i := range vals {
		v := 0.2 + 0.6*r.Float64()
		vals[i] = v
		sample.Add(v)
		sk.Observe(v)
	}
	exact := Summarize(&sample)
	got := sk.Summary()
	// Same Welford recurrence, same fold order → identical bits.
	if got.N != exact.N || math.Float64bits(got.Mean) != math.Float64bits(exact.Mean) ||
		math.Float64bits(got.Std) != math.Float64bits(exact.Std) ||
		got.Min != exact.Min || got.Max != exact.Max {
		t.Errorf("sketch summary %+v differs from exact %+v", got, exact)
	}
}

func TestSketchRejectsNonFinite(t *testing.T) {
	sk := NewSketch()
	sk.Observe(math.NaN())
	sk.Observe(math.Inf(1))
	sk.Observe(math.Inf(-1))
	sk.Observe(0.5)
	if sk.N() != 1 || sk.Rejected() != 3 {
		t.Errorf("N=%d Rejected=%d, want 1/3", sk.N(), sk.Rejected())
	}
	if sk.Mean() != 0.5 {
		t.Errorf("Mean=%v, want 0.5 (non-finite values must not pollute moments)", sk.Mean())
	}
}

func TestSketchQuantileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 20000
	vals := make([]float64, n)
	sk := NewSketch()
	for i := range vals {
		v := math.Exp(r.NormFloat64()) // lognormal spans several decades
		vals[i] = v
		sk.Observe(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		exact, err := SortedQuantile(vals, q)
		if err != nil {
			t.Fatal(err)
		}
		got := sk.Quantile(q)
		// The default scheme has 8 buckets/decade → ~33 % max relative
		// bucket width; interpolation does much better in practice, but
		// pin the guaranteed bound.
		if rel := math.Abs(got-exact) / exact; rel > 0.35 {
			t.Errorf("q=%v: sketch %v vs exact %v (rel err %.3f)", q, got, exact, rel)
		}
	}
	if got := sk.Quantile(0); got != vals[0] {
		t.Errorf("q=0 → %v, want exact min %v", got, vals[0])
	}
	if got := sk.Quantile(1); got != vals[n-1] {
		t.Errorf("q=1 → %v, want exact max %v", got, vals[n-1])
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := sk.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestSketchMergeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = r.Float64() * 100
	}
	seq := NewSketch()
	for _, v := range vals {
		seq.Observe(v)
	}
	// Fold the same values as [0,200) + [200,500) merged in order: counts
	// and min/max are exactly equal; moments agree to float tolerance
	// (the merge uses a different summation tree).
	a, b := NewSketch(), NewSketch()
	for _, v := range vals[:200] {
		a.Observe(v)
	}
	for _, v := range vals[200:] {
		b.Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != seq.N() || a.Min() != seq.Min() || a.Max() != seq.Max() {
		t.Errorf("merged N/Min/Max (%d,%v,%v) != sequential (%d,%v,%v)",
			a.N(), a.Min(), a.Max(), seq.N(), seq.Min(), seq.Max())
	}
	if math.Abs(a.Mean()-seq.Mean()) > 1e-12*math.Abs(seq.Mean()) {
		t.Errorf("merged mean %v vs sequential %v", a.Mean(), seq.Mean())
	}
	if math.Abs(a.Std()-seq.Std()) > 1e-9*seq.Std() {
		t.Errorf("merged std %v vs sequential %v", a.Std(), seq.Std())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if a.Quantile(q) != seq.Quantile(q) {
			t.Errorf("q=%v: merged %v vs sequential %v (same buckets must give same estimate)",
				q, a.Quantile(q), seq.Quantile(q))
		}
	}
}

func TestSketchMergeDeterministicFoldOrder(t *testing.T) {
	// Merging the same shard sequence twice gives bitwise-identical
	// state — the property the campaign runner's ascending block-order
	// merge relies on.
	build := func() *Sketch {
		r := rand.New(rand.NewSource(3))
		total := NewSketch()
		for s := 0; s < 8; s++ {
			sh := NewSketch()
			for i := 0; i < 100; i++ {
				sh.Observe(r.Float64())
			}
			if err := total.Merge(sh); err != nil {
				t.Fatal(err)
			}
		}
		return total
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical merge sequences produced different sketch state")
	}
}

func TestSketchMergeSelfAndSchemeMismatch(t *testing.T) {
	sk := NewSketch()
	sk.Observe(1)
	sk.Observe(2)
	if err := sk.Merge(sk); err != nil {
		t.Fatal(err)
	}
	if sk.N() != 2 {
		t.Errorf("self-merge changed N to %d", sk.N())
	}
	other, err := NewSketchScheme(1e-3, 1e3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Merge(other); err == nil {
		t.Error("merging mismatched schemes did not fail")
	}
}

func TestSketchJSONRoundTripBitExact(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	sk := NewSketch()
	for i := 0; i < 333; i++ {
		sk.Observe(math.Exp(r.NormFloat64() * 3))
	}
	sk.Observe(math.NaN()) // rejected count must survive too
	data, err := json.Marshal(sk)
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sk, &back) {
		t.Errorf("round trip not bit-exact:\n in: %+v\nout: %+v", sk, &back)
	}
	// And the round-tripped sketch keeps folding identically.
	sk.Observe(0.123)
	back.Observe(0.123)
	if !reflect.DeepEqual(sk, &back) {
		t.Error("post-round-trip folds diverged")
	}
}

func TestSketchJSONRejectsCorruptState(t *testing.T) {
	for name, data := range map[string]string{
		"bad bucket index":  `{"lo":1e-9,"hi":1e12,"per_decade":8,"n":1,"mean_bits":0,"m2_bits":0,"min_bits":0,"max_bits":0,"buckets":[{"i":9999,"c":1}]}`,
		"count mismatch":    `{"lo":1e-9,"hi":1e12,"per_decade":8,"n":5,"mean_bits":0,"m2_bits":0,"min_bits":0,"max_bits":0,"buckets":[{"i":1,"c":1}]}`,
		"n without buckets": `{"lo":1e-9,"hi":1e12,"per_decade":8,"n":5,"mean_bits":0,"m2_bits":0,"min_bits":0,"max_bits":0}`,
		"bad scheme":        `{"lo":-1,"hi":1,"per_decade":8,"n":0,"mean_bits":0,"m2_bits":0,"min_bits":0,"max_bits":0}`,
	} {
		var sk Sketch
		if err := json.Unmarshal([]byte(data), &sk); err == nil {
			t.Errorf("%s: corrupt state accepted", name)
		}
	}
}

func TestSketchReset(t *testing.T) {
	sk := NewSketch()
	for i := 0; i < 50; i++ {
		sk.Observe(float64(i))
	}
	sk.Reset()
	if sk.N() != 0 || sk.Mean() != 0 || sk.Std() != 0 {
		t.Errorf("reset left state: N=%d Mean=%v", sk.N(), sk.Mean())
	}
	fresh := NewSketch()
	sk.Observe(3.14)
	fresh.Observe(3.14)
	if sk.Summary() != fresh.Summary() {
		t.Error("reset sketch folds differently from a fresh one")
	}
}
