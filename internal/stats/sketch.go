package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// Default sketch bucket scheme: log-scaled buckets spanning (1e-9, 1e12]
// with 8 buckets per decade, plus an underflow bucket for values <= lo
// (including zero and negatives) and an overflow bucket for values > hi.
// Simulated efficiencies live in (0, 1] and wall times in minutes, so
// the range covers both with ~2.9 % relative bucket width.
const (
	sketchDefaultLo        = 1e-9
	sketchDefaultHi        = 1e12
	sketchDefaultPerDecade = 8
)

// Sketch is a mergeable streaming summary: exact Welford moments and
// min/max plus a fixed log-bucket histogram for quantile estimates. It
// is the constant-memory stand-in for a full sample slice — Summary()
// is exact in N/Mean/Std/Min/Max, Quantile() is bucket-interpolated
// (relative error bounded by the bucket width, ~±1.5 % with the default
// scheme).
//
// Determinism: Observe folds with Welford's update and Merge with the
// Chan et al. pairwise update, so a reduction that always folds the
// same observation sequences in the same order — e.g. the campaign
// runner's fixed trial-block partition merged in ascending block
// order — produces bitwise-identical state regardless of how the work
// was scheduled. Not safe for concurrent use.
type Sketch struct {
	lo        float64
	hi        float64
	perDecade int
	nb        int // log buckets, excluding under/overflow

	counts   []uint64 // len nb+2 once allocated: [under, b1..bnb, over]
	rejected uint64
	n        int64
	mean     float64
	m2       float64
	min      float64
	max      float64
}

// NewSketch returns a sketch with the default bucket scheme.
func NewSketch() *Sketch {
	s, err := NewSketchScheme(sketchDefaultLo, sketchDefaultHi, sketchDefaultPerDecade)
	if err != nil {
		panic(err) // defaults are statically valid
	}
	return s
}

// NewSketchScheme returns a sketch with log-scaled buckets of perDecade
// buckets per decade spanning (lo, hi].
func NewSketchScheme(lo, hi float64, perDecade int) (*Sketch, error) {
	if !(lo > 0) || !(hi > lo) || perDecade < 1 {
		return nil, fmt.Errorf("stats: invalid sketch scheme lo=%v hi=%v perDecade=%d", lo, hi, perDecade)
	}
	nb := int(math.Ceil(math.Log10(hi/lo)*float64(perDecade) - 1e-9))
	return &Sketch{lo: lo, hi: hi, perDecade: perDecade, nb: nb}, nil
}

// bucketIndex maps a finite value into [0, nb+1].
func (s *Sketch) bucketIndex(v float64) int {
	if v <= s.lo {
		return 0
	}
	if v > s.hi {
		return s.nb + 1
	}
	idx := 1 + int(math.Floor(math.Log10(v/s.lo)*float64(s.perDecade)))
	if idx < 1 {
		idx = 1
	}
	if idx > s.nb {
		idx = s.nb
	}
	return idx
}

// upperBound returns the inclusive upper bound of bucket i in [0, nb+1].
func (s *Sketch) upperBound(i int) float64 {
	switch {
	case i <= 0:
		return s.lo
	case i > s.nb:
		return math.Inf(1)
	default:
		return s.lo * math.Pow(10, float64(i)/float64(s.perDecade))
	}
}

// Observe records one value. NaN and ±Inf are rejected (counted in
// Rejected, excluded from every statistic).
func (s *Sketch) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		s.rejected++
		return
	}
	if s.counts == nil {
		s.counts = make([]uint64, s.nb+2)
	}
	s.counts[s.bucketIndex(v)]++
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// N returns the number of accepted values.
func (s *Sketch) N() int64 { return s.n }

// Rejected returns the number of rejected (non-finite) values.
func (s *Sketch) Rejected() uint64 { return s.rejected }

// Mean returns the mean of the accepted values (0 when empty).
func (s *Sketch) Mean() float64 { return s.mean }

// Min returns the smallest accepted value (0 when empty).
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest accepted value (0 when empty).
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Std returns the unbiased sample standard deviation (0 for fewer than
// two values).
func (s *Sketch) Std() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Summary snapshots the sketch's exact moments as a Summary — the
// sketch-backed replacement for Summarize over a full slice.
func (s *Sketch) Summary() Summary {
	return Summary{N: int(s.n), Mean: s.mean, Std: s.Std(), Min: s.Min(), Max: s.Max()}
}

// Merge folds o into s (o is unchanged; merging a sketch into itself is
// a no-op). The two sketches must share the same bucket scheme.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o == s {
		return nil
	}
	if s.lo != o.lo || s.hi != o.hi || s.perDecade != o.perDecade {
		return fmt.Errorf("stats: sketch scheme mismatch: (%g,%g,%d) vs (%g,%g,%d)",
			s.lo, s.hi, s.perDecade, o.lo, o.hi, o.perDecade)
	}
	s.rejected += o.rejected
	if o.n == 0 {
		return nil
	}
	if s.counts == nil {
		s.counts = make([]uint64, s.nb+2)
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	if s.n == 0 {
		s.min, s.max, s.mean, s.m2, s.n = o.min, o.max, o.mean, o.m2, o.n
		return nil
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	n := float64(s.n + o.n)
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/n
	s.mean += d * float64(o.n) / n
	s.n += o.n
	return nil
}

// Reset returns the sketch to its empty state, keeping the scheme and
// the bucket allocation (shard-pool reuse).
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.rejected, s.n, s.mean, s.m2, s.min, s.max = 0, 0, 0, 0, 0, 0
}

// Quantile estimates the q-quantile (q in [0,1]) by geometric
// interpolation within the containing bucket, clamped to the exact
// [Min, Max] range; estimates are non-decreasing in q. Returns NaN when
// the sketch is empty or q is NaN.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	target := q * float64(s.n)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range s.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			v := s.interp(i, (target-cum)/float64(c))
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
		cum = next
	}
	return s.max
}

// interp interpolates a value at fraction frac within bucket i.
func (s *Sketch) interp(i int, frac float64) float64 {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	switch {
	case i == 0:
		// Underflow bucket has no lower bound; report its upper bound
		// (the clamp pulls it to min when appropriate).
		return s.lo
	case i > s.nb:
		// Overflow bucket is unbounded above; report the exact max.
		return s.max
	default:
		lower := s.upperBound(i - 1)
		upper := s.upperBound(i)
		return lower * math.Pow(upper/lower, frac)
	}
}

// sketchBucket is one non-empty bucket in the serialized form.
type sketchBucket struct {
	I int    `json:"i"`
	C uint64 `json:"c"`
}

// sketchJSON is the serialized sketch state. Moments are carried as
// IEEE-754 bit patterns so a save/load round trip is bitwise exact —
// the property campaign checkpoint resume relies on (decimal float
// formatting would round).
type sketchJSON struct {
	Lo        float64        `json:"lo"`
	Hi        float64        `json:"hi"`
	PerDecade int            `json:"per_decade"`
	N         int64          `json:"n"`
	Rejected  uint64         `json:"rejected,omitempty"`
	MeanBits  uint64         `json:"mean_bits"`
	M2Bits    uint64         `json:"m2_bits"`
	MinBits   uint64         `json:"min_bits"`
	MaxBits   uint64         `json:"max_bits"`
	Buckets   []sketchBucket `json:"buckets,omitempty"`
}

// MarshalJSON implements json.Marshaler (sparse buckets, bit-exact
// moments).
func (s *Sketch) MarshalJSON() ([]byte, error) {
	out := sketchJSON{
		Lo: s.lo, Hi: s.hi, PerDecade: s.perDecade,
		N: s.n, Rejected: s.rejected,
		MeanBits: math.Float64bits(s.mean), M2Bits: math.Float64bits(s.m2),
		MinBits: math.Float64bits(s.min), MaxBits: math.Float64bits(s.max),
	}
	for i, c := range s.counts {
		if c != 0 {
			out.Buckets = append(out.Buckets, sketchBucket{I: i, C: c})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var in sketchJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	ns, err := NewSketchScheme(in.Lo, in.Hi, in.PerDecade)
	if err != nil {
		return err
	}
	*s = *ns
	s.n, s.rejected = in.N, in.Rejected
	s.mean, s.m2 = math.Float64frombits(in.MeanBits), math.Float64frombits(in.M2Bits)
	s.min, s.max = math.Float64frombits(in.MinBits), math.Float64frombits(in.MaxBits)
	if len(in.Buckets) > 0 {
		s.counts = make([]uint64, s.nb+2)
		var total uint64
		for _, b := range in.Buckets {
			if b.I < 0 || b.I >= len(s.counts) {
				return fmt.Errorf("stats: sketch bucket index %d outside [0,%d]", b.I, len(s.counts)-1)
			}
			s.counts[b.I] = b.C
			total += b.C
		}
		if int64(total) != s.n {
			return fmt.Errorf("stats: sketch bucket counts sum to %d, n is %d", total, s.n)
		}
	} else if s.n != 0 {
		return fmt.Errorf("stats: sketch has n=%d but no buckets", s.n)
	}
	return nil
}
