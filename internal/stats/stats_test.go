package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	s.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if !almost(s.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v", s.Mean())
	}
	// Unbiased variance of this classic dataset = 32/7.
	if !almost(s.Var(), 32.0/7, 1e-12) {
		t.Errorf("var = %v", s.Var())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.StdErr() != 0 {
		t.Error("empty sample not all-zero")
	}
	s.Add(42)
	if s.Mean() != 42 || s.Var() != 0 {
		t.Errorf("singleton: mean=%v var=%v", s.Mean(), s.Var())
	}
	if _, err := s.CI(0.95); err == nil {
		t.Error("CI on singleton accepted")
	}
}

func TestMergeEquivalence(t *testing.T) {
	f := func(seed uint64, nA, nB uint8) bool {
		src := rand.New(rand.NewPCG(seed, 0))
		var whole, a, b Sample
		for i := 0; i < int(nA); i++ {
			x := src.NormFloat64()*3 + 10
			whole.Add(x)
			a.Add(x)
		}
		for i := 0; i < int(nB); i++ {
			x := src.NormFloat64()*5 - 2
			whole.Add(x)
			b.Add(x)
		}
		a.Merge(&b)
		if a.N() != whole.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		return almost(a.Mean(), whole.Mean(), 1e-9) &&
			almost(a.Var(), whole.Var(), 1e-9) &&
			a.Min() == whole.Min() && a.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Sample
	b.AddAll([]float64{1, 2, 3})
	a.Merge(&b)
	if a.N() != 3 || !almost(a.Mean(), 2, 1e-12) {
		t.Errorf("merge into empty: %+v", Summarize(&a))
	}
	var empty Sample
	a.Merge(&empty)
	if a.N() != 3 {
		t.Error("merging empty changed sample")
	}
}

func TestWelfordStability(t *testing.T) {
	// Large offset: naive sum-of-squares would lose precision.
	var s Sample
	const base = 1e9
	for i := 0; i < 1000; i++ {
		s.Add(base + float64(i%2)) // values base, base+1 alternating
	}
	if !almost(s.Var(), 0.25025, 1e-6) {
		t.Errorf("var = %v, want ~0.2503", s.Var())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty quantile accepted")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("out-of-range q accepted")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile sorted its input in place")
	}
}

func TestStudentTQuantileKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		p, df, want float64
	}{
		{0.975, 1, 12.706},
		{0.975, 10, 2.228},
		{0.975, 199, 1.972},
		{0.95, 30, 1.697},
		{0.995, 5, 4.032},
	}
	for _, c := range cases {
		got, err := StudentTQuantile(c.p, c.df)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(got, c.want, 5e-3) {
			t.Errorf("t(%v, df=%v) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestStudentTQuantileSymmetry(t *testing.T) {
	q1, _ := StudentTQuantile(0.9, 7)
	q2, _ := StudentTQuantile(0.1, 7)
	if !almost(q1, -q2, 1e-9) {
		t.Errorf("not symmetric: %v vs %v", q1, q2)
	}
	q3, _ := StudentTQuantile(0.5, 7)
	if math.Abs(q3) > 1e-12 {
		t.Errorf("median = %v", q3)
	}
	if _, err := StudentTQuantile(0, 5); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := StudentTQuantile(0.5, -1); err == nil {
		t.Error("df<0 accepted")
	}
}

func TestStudentTSFAgainstNormalLimit(t *testing.T) {
	// With huge df the t distribution approaches the standard normal:
	// P(T > 1.96) ~ 0.025.
	if got := studentTSF(1.959964, 1e7); !almost(got, 0.025, 1e-3) {
		t.Errorf("high-df SF(1.96) = %v", got)
	}
	if got := studentTSF(0, 5); !almost(got, 0.5, 1e-12) {
		t.Errorf("SF(0) = %v", got)
	}
	if got := studentTSF(-2, 5); !(got > 0.5) {
		t.Errorf("SF(-2) = %v, want > 0.5", got)
	}
	if got := studentTSF(math.Inf(1), 5); got != 0 {
		t.Errorf("SF(inf) = %v", got)
	}
}

func TestCIWidth(t *testing.T) {
	var s Sample
	src := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 200; i++ {
		s.Add(src.NormFloat64())
	}
	ci95, err := s.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	ci99, err := s.CI(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci99 > ci95 && ci95 > 0) {
		t.Errorf("ci95=%v ci99=%v", ci95, ci99)
	}
	// Rough sanity: 95% CI of 200 std-normal draws ~ 1.97/sqrt(200).
	if !almost(ci95, 1.97/math.Sqrt(200)*s.Std(), 0.05) {
		t.Errorf("ci95 = %v", ci95)
	}
}

func TestWelchTDistinguishes(t *testing.T) {
	src := rand.New(rand.NewPCG(2, 2))
	var a, b, c []float64
	for i := 0; i < 200; i++ {
		a = append(a, 0.60+src.NormFloat64()*0.05)
		b = append(b, 0.40+src.NormFloat64()*0.05)
		c = append(c, 0.60+src.NormFloat64()*0.05)
	}
	r, err := WelchT(Of(a), Of(b))
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 1e-6 || r.T <= 0 {
		t.Errorf("clearly different samples: p=%v t=%v", r.P, r.T)
	}
	r2, err := WelchT(Of(a), Of(c))
	if err != nil {
		t.Fatal(err)
	}
	if r2.P < 0.01 {
		t.Errorf("same-mean samples flagged: p=%v", r2.P)
	}
	sig, err := SignificantlyGreater(Of(a), Of(b), 0.95)
	if err != nil || !sig {
		t.Errorf("a should beat b: %v %v", sig, err)
	}
	sig, err = SignificantlyGreater(Of(b), Of(a), 0.95)
	if err != nil || sig {
		t.Errorf("b should not beat a: %v %v", sig, err)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	constA := Of([]float64{5, 5, 5})
	constB := Of([]float64{3, 3, 3})
	r, err := WelchT(constA, constB)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 0 || !math.IsInf(r.T, 1) {
		t.Errorf("different constants: %+v", r)
	}
	r, err = WelchT(constA, constA)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 1 || r.T != 0 {
		t.Errorf("identical constants: %+v", r)
	}
	if _, err := WelchT(Of([]float64{1}), constA); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestOfAndHelpers(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almost(Mean(xs), 2.5, 1e-12) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almost(Std(xs), math.Sqrt(5.0/3), 1e-12) {
		t.Errorf("Std = %v", Std(xs))
	}
	sum := Of(xs)
	if sum.N != 4 || sum.Min != 1 || sum.Max != 4 {
		t.Errorf("Of = %+v", sum)
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("incomplete beta edges wrong")
	}
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.42, 0.9} {
		if got := regIncBeta(1, 1, x); !almost(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
	if got, want := regIncBeta(2.5, 4, 0.3), 1-regIncBeta(4, 2.5, 0.7); !almost(got, want, 1e-12) {
		t.Errorf("beta symmetry: %v vs %v", got, want)
	}
}

func TestQuantileMonotoneInQ(t *testing.T) {
	f := func(seed uint64, qa, qb uint8) bool {
		src := rand.New(rand.NewPCG(seed, 3))
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = src.NormFloat64()
		}
		q1 := float64(qa) / 255
		q2 := float64(qb) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, err1 := Quantile(xs, q1)
		v2, err2 := Quantile(xs, q2)
		return err1 == nil && err2 == nil && v1 <= v2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCIShrinksWithSamples(t *testing.T) {
	src := rand.New(rand.NewPCG(4, 4))
	var small, large Sample
	for i := 0; i < 2000; i++ {
		x := src.NormFloat64()
		if i < 50 {
			small.Add(x)
		}
		large.Add(x)
	}
	ciS, err := small.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	ciL, err := large.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !(ciL < ciS) {
		t.Fatalf("CI did not shrink: n=50 %v vs n=2000 %v", ciS, ciL)
	}
}
