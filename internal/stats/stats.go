// Package stats provides the statistical machinery the paper's evaluation
// relies on: sample means and standard deviations for the 200/400-trial
// campaigns, confidence intervals, and Welch's t-test for the paper's
// "95 % confidence that all improvements are statistically significant"
// claim (Section IV-F).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrTooFewSamples is returned when an operation needs more samples than
// were supplied.
var ErrTooFewSamples = errors.New("stats: too few samples")

// ErrNonFinite is returned when an input summary or sample carries NaN
// or ±Inf moments. Significance verdicts must fail loudly on such
// inputs: a NaN silently compares as "not significant", which is the
// exact opposite of what a poisoned campaign should report.
var ErrNonFinite = errors.New("stats: non-finite input")

// Sample accumulates observations using Welford's online algorithm, which
// stays numerically stable for the long campaigns the experiment runner
// produces.
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddAll records a slice of observations.
func (s *Sample) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 { return s.max }

// Var returns the unbiased sample variance.
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the unbiased sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// Merge combines another sample into s (parallel reduction), using the
// Chan et al. pairwise update. Merging a sample into itself is a no-op:
// in a reduction tree an aliased merge is always a bookkeeping slip, and
// silently doubling n and m2 would corrupt the variance (m2/(n-1) is not
// alias-invariant) while leaving the mean plausible — the worst kind of
// wrong.
func (s *Sample) Merge(o *Sample) {
	if s == o || o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := float64(s.n + o.n)
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/n
	s.mean += d * float64(o.n) / n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
}

// CI returns the half-width of the two-sided confidence interval of the
// mean at the given confidence level (e.g. 0.95), using the Student-t
// quantile. Requires at least two observations.
func (s *Sample) CI(level float64) (float64, error) {
	if s.n < 2 {
		return 0, fmt.Errorf("%w: have %d, need 2", ErrTooFewSamples, s.n)
	}
	t, err := StudentTQuantile(1-(1-level)/2, float64(s.n-1))
	if err != nil {
		return 0, err
	}
	return t * s.StdErr(), nil
}

// Summary is an immutable snapshot of a sample, convenient for reports.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize snapshots a sample.
func Summarize(s *Sample) Summary {
	return Summary{N: s.n, Mean: s.Mean(), Std: s.Std(), Min: s.min, Max: s.max}
}

// Of builds a summary directly from a slice.
func Of(xs []float64) Summary {
	var s Sample
	s.AddAll(xs)
	return Summarize(&s)
}

// Mean returns the mean of a slice (0 for an empty slice).
func Mean(xs []float64) float64 {
	var s Sample
	s.AddAll(xs)
	return s.Mean()
}

// Std returns the unbiased standard deviation of a slice.
func Std(xs []float64) float64 {
	var s Sample
	s.AddAll(xs)
	return s.Std()
}

// Quantile returns the q-th empirical quantile (linear interpolation,
// type 7). xs need not be sorted; it is not modified. Callers that need
// several quantiles of the same sample should use Quantiles (one sort)
// or sort once themselves and call SortedQuantile — this convenience
// wrapper copies and sorts on every call.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrTooFewSamples
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return SortedQuantile(sorted, q)
}

// SortedQuantile returns the q-th empirical quantile (linear
// interpolation, type 7) of an ascending-sorted sample, without copying
// or re-sorting. Passing unsorted data yields garbage; use Quantile or
// Quantiles when sortedness is not already guaranteed.
func SortedQuantile(sorted []float64, q float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, ErrTooFewSamples
	}
	if !(q >= 0 && q <= 1) { // negated so NaN is rejected too
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Quantiles returns the empirical quantile at each of qs, sorting the
// sample exactly once. Report and experiment loops that extract several
// quantiles per cell use this instead of repeated Quantile calls (which
// would copy and sort the sample per quantile).
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrTooFewSamples
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		v, err := SortedQuantile(sorted, q)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// WelchResult reports a two-sample Welch t-test.
type WelchResult struct {
	T  float64 // t statistic (a - b)
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchT performs Welch's unequal-variance t-test between two samples.
// The paper uses this (at 95 % confidence) to certify the Figure 5
// improvements. Both samples need at least two observations; NaN or
// infinite moments are rejected with ErrNonFinite rather than silently
// propagating into the verdict.
func WelchT(a, b Summary) (WelchResult, error) {
	if a.N < 2 || b.N < 2 {
		return WelchResult{}, fmt.Errorf("%w: n=%d,%d", ErrTooFewSamples, a.N, b.N)
	}
	if err := checkFinite(a); err != nil {
		return WelchResult{}, err
	}
	if err := checkFinite(b); err != nil {
		return WelchResult{}, err
	}
	va := a.Std * a.Std / float64(a.N)
	vb := b.Std * b.Std / float64(b.N)
	se := math.Sqrt(va + vb)
	if se == 0 {
		// Degenerate: identical constant samples are "not different";
		// different constants are infinitely significant.
		if a.Mean == b.Mean {
			return WelchResult{T: 0, DF: float64(a.N + b.N - 2), P: 1}, nil
		}
		return WelchResult{T: math.Inf(sign(a.Mean - b.Mean)), DF: float64(a.N + b.N - 2), P: 0}, nil
	}
	t := (a.Mean - b.Mean) / se
	df := (va + vb) * (va + vb) /
		(va*va/float64(a.N-1) + vb*vb/float64(b.N-1))
	p := 2 * studentTSF(math.Abs(t), df)
	if math.IsNaN(df) || df <= 0 || math.IsNaN(p) {
		// Degenerate degrees of freedom or a NaN p-value would otherwise
		// flow into comparisons as "not significant"; surface it instead.
		return WelchResult{}, fmt.Errorf("%w: welch t=%v df=%v p=%v", ErrNonFinite, t, df, p)
	}
	return WelchResult{T: t, DF: df, P: p}, nil
}

// SignificantlyGreater reports whether sample a's mean exceeds sample b's
// with one-sided confidence at the given level (e.g. 0.95). NaN inputs
// are an error, never a silent false.
func SignificantlyGreater(a, b Summary, level float64) (bool, error) {
	r, err := WelchT(a, b)
	if err != nil {
		return false, err
	}
	if r.T <= 0 {
		return false, nil
	}
	return r.P/2 < 1-level, nil
}

// checkFinite rejects summaries whose moments are NaN or infinite.
func checkFinite(s Summary) error {
	if math.IsNaN(s.Mean) || math.IsInf(s.Mean, 0) || math.IsNaN(s.Std) || math.IsInf(s.Std, 0) {
		return fmt.Errorf("%w: mean=%v std=%v", ErrNonFinite, s.Mean, s.Std)
	}
	return nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
