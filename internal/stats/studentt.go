package stats

import (
	"fmt"
	"math"
)

// studentTSF returns P(T > t) for a Student-t variable with df degrees of
// freedom (one-sided survival function), t >= 0, via the regularized
// incomplete beta function.
func studentTSF(t, df float64) float64 {
	if t < 0 {
		return 1 - studentTSF(-t, df)
	}
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// StudentTQuantile returns the p-th quantile of the Student-t
// distribution with df degrees of freedom, by bisection on the CDF.
// p must lie in (0, 1); df must be positive.
func StudentTQuantile(p, df float64) (float64, error) {
	if !(p > 0 && p < 1) {
		return 0, fmt.Errorf("stats: t quantile probability %v outside (0,1)", p)
	}
	if !(df > 0) {
		return 0, fmt.Errorf("stats: degrees of freedom %v must be positive", df)
	}
	if p == 0.5 {
		return 0, nil
	}
	cdf := func(t float64) float64 { return 1 - studentTSF(t, df) }
	// Bracket the quantile.
	lo, hi := -1.0, 1.0
	for cdf(lo) > p {
		lo *= 2
		if lo < -1e8 {
			break
		}
	}
	for cdf(hi) < p {
		hi *= 2
		if hi > 1e8 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-15
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
