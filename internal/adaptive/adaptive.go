// Package adaptive provides an online checkpoint-interval controller —
// the natural extension of the paper's offline optimization (and the
// direction of Di et al.'s online work [17]). The controller starts from
// a believed system description (whose failure rates may be
// miscalibrated), estimates the true per-severity rates from observed
// failures with a Bayesian (Gamma-prior) estimator, and periodically
// re-optimizes the checkpoint intervals with the paper's prediction
// model for the *remaining* work.
//
// It plugs into the simulator's PlanController hook: the simulator
// reports failures, and after each successful checkpoint the controller
// may swap the active plan.
package adaptive

import (
	"errors"
	"fmt"

	"repro/internal/model/dauwe"
	"repro/internal/pattern"
	"repro/internal/sim"
	"repro/internal/system"
)

// Estimator tracks per-severity failure rates online. It is a conjugate
// Gamma-Poisson estimate: the believed rate enters as a pseudo-
// observation window of PriorMinutes, so early estimates are anchored to
// the belief and converge to the empirical rate as evidence accumulates.
type Estimator struct {
	priorMinutes float64
	believed     []float64 // per-severity believed rates
	counts       []int
	lastNow      float64
	observedMin  float64
}

// NewEstimator builds an estimator for a believed system. priorMinutes
// is the weight of the belief expressed as minutes of pseudo-observation
// (e.g. 3× the believed MTBF); it must be positive.
func NewEstimator(believed *system.System, priorMinutes float64) (*Estimator, error) {
	if err := believed.Validate(); err != nil {
		return nil, err
	}
	if !(priorMinutes > 0) {
		return nil, fmt.Errorf("adaptive: prior weight %v must be positive", priorMinutes)
	}
	e := &Estimator{
		priorMinutes: priorMinutes,
		counts:       make([]int, believed.NumLevels()),
	}
	for sev := 1; sev <= believed.NumLevels(); sev++ {
		e.believed = append(e.believed, believed.LevelRate(sev))
	}
	return e, nil
}

// Observe records a failure at simulated time now.
func (e *Estimator) Observe(now float64, severity int) {
	if severity >= 1 && severity <= len(e.counts) {
		e.counts[severity-1]++
	}
	e.advance(now)
}

// advance extends the observation window to now (times are absolute
// simulated minutes and monotone).
func (e *Estimator) advance(now float64) {
	if now > e.lastNow {
		e.observedMin += now - e.lastNow
		e.lastNow = now
	}
}

// Rate returns the posterior-mean rate of a 1-based severity:
// (believed·prior + count) / (prior + observed).
func (e *Estimator) Rate(severity int) float64 {
	i := severity - 1
	return (e.believed[i]*e.priorMinutes + float64(e.counts[i])) /
		(e.priorMinutes + e.observedMin)
}

// TotalFailures returns the number of observed failures.
func (e *Estimator) TotalFailures() int {
	n := 0
	for _, c := range e.counts {
		n += c
	}
	return n
}

// EstimatedSystem materializes the current estimate as a system
// description with the given remaining baseline time.
func (e *Estimator) EstimatedSystem(template *system.System, remaining float64) *system.System {
	out := template.Clone()
	var total float64
	rates := make([]float64, len(e.believed))
	for sev := 1; sev <= len(rates); sev++ {
		rates[sev-1] = e.Rate(sev)
		total += rates[sev-1]
	}
	out.MTBF = 1 / total
	for i := range out.Levels {
		out.Levels[i].SeverityProb = rates[i] / total
	}
	out.BaselineTime = remaining
	out.Name = template.Name + "/estimated"
	return out
}

// Controller is the online re-optimizer; it implements
// sim.PlanController.
type Controller struct {
	believed  *system.System
	estimator *Estimator
	technique *dauwe.Technique

	// ReplanEvery is the number of newly observed failures required
	// before the next re-optimization (default 16).
	ReplanEvery int
	// MinRemaining stops replanning when less than this much work is
	// left (not worth the optimization; default 1 minute).
	MinRemaining float64

	sinceReplan int
	replans     int
}

// Options tunes a controller.
type Options struct {
	// PriorMinutes weights the initial belief (default 3× believed
	// MTBF).
	PriorMinutes float64
	// ReplanEvery failures between re-optimizations (default 16).
	ReplanEvery int
	// Technique overrides the prediction model settings; nil uses a
	// reduced-resolution Dauwe optimizer suitable for in-loop use.
	Technique *dauwe.Technique
}

// NewController builds a controller for a believed system description.
func NewController(believed *system.System, opt Options) (*Controller, error) {
	if believed == nil {
		return nil, errors.New("adaptive: nil system")
	}
	prior := opt.PriorMinutes
	if prior == 0 {
		prior = 3 * believed.MTBF
	}
	est, err := NewEstimator(believed, prior)
	if err != nil {
		return nil, err
	}
	tech := opt.Technique
	if tech == nil {
		tech = dauwe.New()
		// In-loop resolution: the controller optimizes many times per
		// trial, so trade a little optimality for speed.
		tech.Tau0Points = 24
		tech.CountVals = []int{0, 1, 2, 4, 8, 16, 32}
	}
	replanEvery := opt.ReplanEvery
	if replanEvery <= 0 {
		replanEvery = 16
	}
	return &Controller{
		believed:     believed,
		estimator:    est,
		technique:    tech,
		ReplanEvery:  replanEvery,
		MinRemaining: 1,
	}, nil
}

// InitialPlan optimizes for the believed system — what a static deploy
// would run forever.
func (c *Controller) InitialPlan() (pattern.Plan, error) {
	plan, _, err := c.technique.Optimize(c.believed)
	return plan, err
}

// OnFailure implements sim.PlanController.
func (c *Controller) OnFailure(now float64, severity int) {
	c.estimator.Observe(now, severity)
	c.sinceReplan++
}

// Replan implements sim.PlanController.
func (c *Controller) Replan(now, progress float64) (pattern.Plan, bool) {
	c.estimator.advance(now)
	if c.sinceReplan < c.ReplanEvery {
		return pattern.Plan{}, false
	}
	remaining := c.believed.BaselineTime - progress
	if remaining < c.MinRemaining {
		return pattern.Plan{}, false
	}
	est := c.estimator.EstimatedSystem(c.believed, remaining)
	plan, _, err := c.technique.Optimize(est)
	if err != nil {
		// Estimation produced an un-optimizable system; keep the
		// current plan and try again after more evidence.
		return pattern.Plan{}, false
	}
	c.sinceReplan = 0
	c.replans++
	return plan, true
}

// Replans returns how many times the controller changed the plan.
func (c *Controller) Replans() int { return c.replans }

// Estimator exposes the rate estimator (for reporting).
func (c *Controller) Estimator() *Estimator { return c.estimator }

var _ sim.PlanController = (*Controller)(nil)
