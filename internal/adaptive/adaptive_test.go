package adaptive

import (
	"math"
	"testing"

	"repro/internal/model/dauwe"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

// truth returns the real system; belief returns what the operator
// thinks it is (MTBF off by 4×).
func truth() *system.System {
	return &system.System{
		Name: "true", MTBF: 6, BaselineTime: 720,
		Levels: []system.Level{
			{Checkpoint: 0.167, Restart: 0.167, SeverityProb: 0.833},
			{Checkpoint: 0.667, Restart: 0.667, SeverityProb: 0.167},
		},
	}
}

func belief() *system.System {
	b := truth().Clone()
	b.MTBF = 24
	b.Name = "believed"
	return b
}

func TestEstimatorConvergesToEmpiricalRate(t *testing.T) {
	est, err := NewEstimator(belief(), 3*24)
	if err != nil {
		t.Fatal(err)
	}
	// Initially: posterior = belief.
	if got, want := est.Rate(1), belief().LevelRate(1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("prior rate = %v, want %v", got, want)
	}
	// Feed failures at the TRUE rate for a long window: every 7.2 min a
	// severity-1 failure (rate 0.1389).
	now := 0.0
	for i := 0; i < 2000; i++ {
		now += 7.2
		est.Observe(now, 1)
	}
	got := est.Rate(1)
	want := 1 / 7.2
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("posterior rate = %v, want ~%v", got, want)
	}
	if est.TotalFailures() != 2000 {
		t.Fatalf("count = %d", est.TotalFailures())
	}
}

func TestEstimatorValidation(t *testing.T) {
	if _, err := NewEstimator(belief(), 0); err == nil {
		t.Fatal("zero prior accepted")
	}
	bad := belief()
	bad.MTBF = -1
	if _, err := NewEstimator(bad, 10); err == nil {
		t.Fatal("invalid system accepted")
	}
}

func TestEstimatedSystemNormalizes(t *testing.T) {
	est, _ := NewEstimator(belief(), 10)
	for i := 0; i < 50; i++ {
		est.Observe(float64(i+1), 1+i%2)
	}
	sys := est.EstimatedSystem(belief(), 500)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	if sys.BaselineTime != 500 {
		t.Fatalf("remaining = %v", sys.BaselineTime)
	}
}

func TestControllerReplansAndValidates(t *testing.T) {
	ctrl, err := NewController(belief(), Options{ReplanEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ctrl.InitialPlan()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(sim.Scenario{System: truth(), Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	eng.Control(func() sim.PlanController { return ctrl })
	res, err := eng.Run(rng.Campaign(1, "adaptive").Trial(0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("adaptive trial did not complete")
	}
	if ctrl.Replans() == 0 {
		t.Fatal("controller never replanned despite 4× rate misbelief")
	}
	// After the run the estimated severity-1 rate must be much closer
	// to the truth (0.1389) than the belief (0.0347).
	got := ctrl.Estimator().Rate(1)
	trueRate := truth().LevelRate(1)
	believedRate := belief().LevelRate(1)
	if math.Abs(got-trueRate) > math.Abs(got-believedRate) {
		t.Fatalf("estimate %v still closer to belief %v than truth %v", got, believedRate, trueRate)
	}
}

func TestAdaptiveBeatsMiscalibratedStatic(t *testing.T) {
	// The headline property: when the believed MTBF is 4× too long,
	// adapting online recovers a solid share of the oracle gap.
	tr := truth()
	static, err := NewController(belief(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	staticPlan, err := static.InitialPlan()
	if err != nil {
		t.Fatal(err)
	}
	oraclePlan, _, err := dauwe.New().Optimize(tr)
	if err != nil {
		t.Fatal(err)
	}
	seed := rng.Campaign(2, "adaptive-cmp")
	run := func(name string, scn sim.Scenario, ctl func() sim.PlanController) float64 {
		camp := sim.Campaign{
			Scenario: scn, Trials: 60, Seed: seed.Scenario(name),
			ControllerFactory: ctl,
		}
		res, err := camp.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Efficiency.Mean
	}
	effStatic := run("static", sim.Scenario{System: tr, Plan: staticPlan}, nil)
	effOracle := run("oracle", sim.Scenario{System: tr, Plan: oraclePlan}, nil)
	effAdaptive := run("adaptive", sim.Scenario{System: tr, Plan: staticPlan},
		func() sim.PlanController {
			c, err := NewController(belief(), Options{ReplanEvery: 12})
			if err != nil {
				t.Fatal(err)
			}
			return c
		})
	if !(effOracle > effStatic) {
		t.Fatalf("oracle %v should beat miscalibrated static %v", effOracle, effStatic)
	}
	if !(effAdaptive > effStatic) {
		t.Fatalf("adaptive %v should beat static %v", effAdaptive, effStatic)
	}
	// Recover at least half of the gap.
	if (effAdaptive-effStatic)/(effOracle-effStatic) < 0.5 {
		t.Fatalf("adaptive recovered too little: static %v adaptive %v oracle %v",
			effStatic, effAdaptive, effOracle)
	}
}

func TestControllerOptionsDefaults(t *testing.T) {
	c, err := NewController(belief(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.ReplanEvery != 16 || c.MinRemaining != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if _, err := NewController(nil, Options{}); err == nil {
		t.Fatal("nil system accepted")
	}
}
