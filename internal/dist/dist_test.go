package dist

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestFailProbBasics(t *testing.T) {
	if got := FailProb(0, 1); got != 0 {
		t.Errorf("P(0,1) = %v, want 0", got)
	}
	if got := FailProb(-1, 1); got != 0 {
		t.Errorf("P(-1,1) = %v, want 0", got)
	}
	if got := FailProb(1, 0); got != 0 {
		t.Errorf("P(1,0) = %v, want 0", got)
	}
	if got := FailProb(math.Log(2), 1); !almost(got, 0.5, 1e-12) {
		t.Errorf("P(ln2,1) = %v, want 0.5", got)
	}
	if got := FailProb(1e9, 1); !almost(got, 1, 1e-12) {
		t.Errorf("P(1e9,1) = %v, want 1", got)
	}
}

func TestFailProbMatchesNaiveForm(t *testing.T) {
	for _, tc := range []struct{ t, x float64 }{
		{1, 0.5}, {3.13, 1.0 / 3.13}, {1440, 1.0 / 6944.45}, {0.008, 12},
	} {
		want := 1 - math.Exp(-tc.x*tc.t)
		if got := FailProb(tc.t, tc.x); !almost(got, want, 1e-13) {
			t.Errorf("P(%v,%v) = %v, want %v", tc.t, tc.x, got, want)
		}
	}
}

func TestSurviveComplement(t *testing.T) {
	f := func(tRaw, xRaw float64) bool {
		tt := math.Mod(math.Abs(tRaw), 1e4) + 1e-6
		x := math.Mod(math.Abs(xRaw), 10) + 1e-6
		return almost(FailProb(tt, x)+SurviveProb(tt, x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncExpClosedForm(t *testing.T) {
	// Direct evaluation of paper Eqn. 2 at moderate X*t.
	tt, x := 10.0, 0.2
	p := 1 - math.Exp(-x*tt)
	want := (1/x - math.Exp(-x*tt)*(1/x+tt)) / p
	if got := TruncExp(tt, x); !almost(got, want, 1e-12) {
		t.Errorf("E(%v,%v) = %v, want %v", tt, x, got, want)
	}
}

func TestTruncExpLimits(t *testing.T) {
	// Small X*t: conditional strike position tends to t/2.
	if got := TruncExp(1e-6, 1e-6); !almost(got, 5e-7, 1e-6) {
		t.Errorf("small-x TruncExp = %v, want ~5e-7", got)
	}
	// Large X*t: tends to the unconditional mean 1/X.
	if got := TruncExp(1e9, 0.5); !almost(got, 2, 1e-9) {
		t.Errorf("large-x TruncExp = %v, want ~2", got)
	}
	if got := TruncExp(0, 1); got != 0 {
		t.Errorf("TruncExp(0,1) = %v, want 0", got)
	}
}

func TestTruncExpBounds(t *testing.T) {
	// 0 < E(t,X) < min(t, 1/X) for all positive t, X; E increases with t.
	f := func(tRaw, xRaw float64) bool {
		tt := math.Mod(math.Abs(tRaw), 1e5) + 1e-9
		x := math.Mod(math.Abs(xRaw), 100) + 1e-9
		e := TruncExp(tt, x)
		if !(e > 0) || e >= tt || e > 1/x {
			return false
		}
		return TruncExp(tt*2, x) >= e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTruncExpContinuityAcrossSeriesSwitch(t *testing.T) {
	// The series branch at x < 1e-8 must agree with the closed form.
	x := 1e-3
	tBelow := 0.9e-8 / x
	tAbove := 1.1e-8 / x
	if !almost(TruncExp(tBelow, x)/tBelow, TruncExp(tAbove, x)/tAbove, 1e-6) {
		t.Errorf("discontinuity across series switch: %v vs %v",
			TruncExp(tBelow, x)/tBelow, TruncExp(tAbove, x)/tAbove)
	}
}

func TestRetryCount(t *testing.T) {
	// P/(1-P) with P = 1-exp(-xt) equals exp(xt)-1.
	tt, x := 5.0, 0.3
	p := FailProb(tt, x)
	want := p / (1 - p)
	if got := RetryCount(tt, x); !almost(got, want, 1e-12) {
		t.Errorf("RetryCount = %v, want %v", got, want)
	}
	if got := RetryCount(0, 1); got != 0 {
		t.Errorf("RetryCount(0,1) = %v, want 0", got)
	}
}

func TestNewExponentialValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewExponential(bad); err == nil {
			t.Errorf("NewExponential(%v) accepted", bad)
		}
	}
	e, err := NewExponential(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if e.MTBF() != 4 || e.Rate() != 0.25 || e.Mean() != 4 {
		t.Errorf("exponential accessors wrong: %+v", e)
	}
}

func TestExponentialQuantileRoundTrip(t *testing.T) {
	e, _ := NewExponential(0.1)
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
		q, err := e.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(e.CDF(q), p, 1e-12) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, e.CDF(q))
		}
	}
	if _, err := e.Quantile(1); err == nil {
		t.Error("Quantile(1) accepted")
	}
	if _, err := e.Quantile(-0.1); err == nil {
		t.Error("Quantile(-0.1) accepted")
	}
}

func TestCompetingRates(t *testing.T) {
	c, err := NewCompeting([]float64{0.5, 0.3, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Classes() != 3 || !almost(c.Total(), 1.0, 1e-12) {
		t.Fatalf("bad competing set: %+v", c)
	}
	if !almost(c.Share(1), 0.3, 1e-12) {
		t.Errorf("Share(1) = %v", c.Share(1))
	}
	if !almost(c.PrefixRate(1), 0.8, 1e-12) {
		t.Errorf("PrefixRate(1) = %v", c.PrefixRate(1))
	}
	if !almost(c.PrefixRate(99), 1.0, 1e-12) {
		t.Errorf("PrefixRate clamps high: %v", c.PrefixRate(99))
	}
	if got := c.PrefixRate(-1); got != 0 {
		t.Errorf("PrefixRate(-1) = %v", got)
	}
	if !almost(c.SuffixRate(0), 0.5, 1e-12) {
		t.Errorf("SuffixRate(0) = %v", c.SuffixRate(0))
	}
	if got := c.SuffixRate(2); got != 0 {
		t.Errorf("SuffixRate(last) = %v", got)
	}
}

func TestCompetingValidation(t *testing.T) {
	if _, err := NewCompeting(nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := NewCompeting([]float64{0, 0}); err == nil {
		t.Error("all-zero set accepted")
	}
	if _, err := NewCompeting([]float64{1, -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewCompeting([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN rate accepted")
	}
	if c, err := NewCompeting([]float64{0, 1}); err != nil || c.Share(0) != 0 {
		t.Errorf("zero class should be allowed: %v %v", c, err)
	}
}

func TestFirstFailureSplit(t *testing.T) {
	c, _ := NewCompeting([]float64{0.2, 0.6, 0.2})
	pAny, split := c.FirstFailureSplit(3)
	if !almost(pAny, FailProb(3, 1.0), 1e-12) {
		t.Errorf("pAny = %v", pAny)
	}
	var sum float64
	for _, p := range split {
		sum += p
	}
	if !almost(sum, 1, 1e-12) {
		t.Errorf("split does not sum to 1: %v", split)
	}
	if !almost(split[1], 0.6, 1e-12) {
		t.Errorf("split[1] = %v", split[1])
	}
}

func TestCompetingSharesSumToOne(t *testing.T) {
	f := func(a, b, c uint8) bool {
		rates := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		cr, err := NewCompeting(rates)
		if err != nil {
			return false
		}
		var sum float64
		for i := 0; i < cr.Classes(); i++ {
			sum += cr.Share(i)
		}
		return almost(sum, 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeibullReducesToExponential(t *testing.T) {
	w, err := NewWeibull(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewExponential(0.1)
	for _, tt := range []float64{0.5, 1, 5, 20, 100} {
		if !almost(w.CDF(tt), e.CDF(tt), 1e-12) {
			t.Errorf("weibull(k=1) CDF(%v) = %v, exp = %v", tt, w.CDF(tt), e.CDF(tt))
		}
	}
	if !almost(w.Mean(), 10, 1e-12) {
		t.Errorf("weibull mean = %v", w.Mean())
	}
	if !almost(w.HazardAt(123), 0.1, 1e-12) {
		t.Errorf("weibull k=1 hazard = %v", w.HazardAt(123))
	}
}

func TestWeibullValidationAndShape(t *testing.T) {
	if _, err := NewWeibull(0, 1); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := NewWeibull(1, 0); err == nil {
		t.Error("zero shape accepted")
	}
	w, _ := NewWeibull(10, 0.7)
	// Infant mortality: hazard decreasing, infinite at 0.
	if !math.IsInf(w.HazardAt(0), 1) {
		t.Error("k<1 hazard at 0 should be +inf")
	}
	if !(w.HazardAt(1) > w.HazardAt(10)) {
		t.Error("k<1 hazard should decrease")
	}
	w2, _ := NewWeibull(10, 2)
	if w2.HazardAt(0) != 0 || !(w2.HazardAt(10) > w2.HazardAt(1)) {
		t.Error("k>1 hazard should increase from 0")
	}
	if w.Scale() != 10 || w.Shape() != 0.7 {
		t.Error("accessors wrong")
	}
}

func TestWeibullQuantileRoundTrip(t *testing.T) {
	w, _ := NewWeibull(33, 1.5)
	for _, p := range []float64{0, 0.25, 0.5, 0.99} {
		q, err := w.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !almost(w.CDF(q), p, 1e-12) {
			t.Errorf("weibull CDF(Quantile(%v)) = %v", p, w.CDF(q))
		}
	}
	if _, err := w.Quantile(1.5); err == nil {
		t.Error("bad quantile accepted")
	}
}

func TestExponentialSampleMean(t *testing.T) {
	e, _ := NewExponential(0.5)
	src := rand.New(rand.NewPCG(1, 2))
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := e.Sample(src)
		if v < 0 {
			t.Fatalf("negative sample %v", v)
		}
		sum += v
	}
	if got := sum / n; !almost(got, 2.0, 0.02) {
		t.Errorf("sample mean = %v, want ~2", got)
	}
}

func TestWeibullSampleMean(t *testing.T) {
	w, _ := NewWeibull(10, 2)
	src := rand.New(rand.NewPCG(3, 4))
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += w.Sample(src)
	}
	if got, want := sum/n, w.Mean(); !almost(got, want, 0.02) {
		t.Errorf("weibull sample mean = %v, want ~%v", got, want)
	}
}

func TestSeverityPicker(t *testing.T) {
	c, _ := NewCompeting([]float64{3, 1})
	p := NewSeverityPicker(c)
	if p.Classes() != 2 {
		t.Fatalf("classes = %d", p.Classes())
	}
	src := rand.New(rand.NewPCG(5, 6))
	counts := [2]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[p.Pick(src)]++
	}
	if got := float64(counts[0]) / n; !almost(got, 0.75, 0.02) {
		t.Errorf("class-0 share = %v, want ~0.75", got)
	}
}

func TestMixtureSamplerFirst(t *testing.T) {
	e1, _ := NewExponential(1)    // mean 1
	e2, _ := NewExponential(1e-4) // mean 10000
	m, err := NewMixtureSampler([]Sampler{e1, e2})
	if err != nil {
		t.Fatal(err)
	}
	src := rand.New(rand.NewPCG(7, 8))
	fastWins := 0
	const n = 20000
	for i := 0; i < n; i++ {
		_, class := m.SampleFirst(src)
		if class == 0 {
			fastWins++
		}
	}
	if got := float64(fastWins) / n; got < 0.99 {
		t.Errorf("fast law should almost always win: %v", got)
	}
	if _, err := NewMixtureSampler(nil); err == nil {
		t.Error("empty mixture accepted")
	}
}

func TestTruncExpMonteCarloAgreement(t *testing.T) {
	// The truncated expectation must match the empirical mean strike
	// position of exponential arrivals conditioned to land within [0,t].
	e, _ := NewExponential(0.2)
	const tt = 4.0
	src := rand.New(rand.NewPCG(9, 10))
	var sum float64
	var n int
	for i := 0; i < 400000; i++ {
		v := e.Sample(src)
		if v <= tt {
			sum += v
			n++
		}
	}
	got := sum / float64(n)
	want := TruncExp(tt, 0.2)
	if !almost(got, want, 0.01) {
		t.Errorf("monte-carlo truncated mean = %v, analytic = %v", got, want)
	}
}
