package dist

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Sampler draws failure inter-arrival times. Both Exponential and Weibull
// laws satisfy it, as does any custom law a caller wants to inject into
// the simulator.
type Sampler interface {
	// Sample draws one inter-arrival time in minutes using src.
	Sample(src *rand.Rand) float64
	// Mean returns the unconditional mean inter-arrival time.
	Mean() float64
}

// Rewinder is an optional interface for stateful samplers (e.g. trace
// replays) that must restart their stream at the beginning of each
// trial. The simulator's reusable Engine rewinds every failure law that
// implements it before every trial; stateless laws like Exponential and
// Weibull need not implement it.
type Rewinder interface {
	// Rewind restarts the sampler's stream from its first draw.
	Rewind()
}

// Sample draws an exponential inter-arrival time.
func (e Exponential) Sample(src *rand.Rand) float64 {
	return e.sampleAt(src.Float64())
}

func (e Exponential) sampleAt(u float64) float64 {
	// Guard against u == 1 producing -log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -math.Log1p(-u) / e.rate
}

// Sample draws a Weibull inter-arrival time.
func (w Weibull) Sample(src *rand.Rand) float64 {
	u := src.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return w.scale * math.Pow(-math.Log1p(-u), 1/w.shape)
}

// SeverityPicker samples the severity class of a failure given the
// competing-risk shares. Classes are returned 0-based.
type SeverityPicker struct {
	cum []float64
}

// NewSeverityPicker precomputes the cumulative class distribution of a
// competing-risk set.
func NewSeverityPicker(c *CompetingRates) *SeverityPicker {
	cum := make([]float64, c.Classes())
	var acc float64
	for i := 0; i < c.Classes(); i++ {
		acc += c.Share(i)
		cum[i] = acc
	}
	cum[len(cum)-1] = 1 // absorb FP residue
	return &SeverityPicker{cum: cum}
}

// Pick samples a 0-based severity class.
func (p *SeverityPicker) Pick(src *rand.Rand) int {
	u := src.Float64()
	for i, c := range p.cum {
		if u <= c {
			return i
		}
	}
	return len(p.cum) - 1
}

// Classes returns the number of severity classes the picker covers.
func (p *SeverityPicker) Classes() int { return len(p.cum) }

// MixtureSampler races several independent samplers and reports which one
// fired first. It generalizes the competing exponential processes to
// arbitrary laws (used for the Weibull ablation).
type MixtureSampler struct {
	laws []Sampler
}

// NewMixtureSampler builds a racing sampler over one law per severity
// class.
func NewMixtureSampler(laws []Sampler) (*MixtureSampler, error) {
	if len(laws) == 0 {
		return nil, fmt.Errorf("dist: mixture sampler needs at least one law")
	}
	return &MixtureSampler{laws: append([]Sampler(nil), laws...)}, nil
}

// SampleFirst draws one arrival from each law and returns the earliest
// time along with the 0-based index of the law that produced it.
func (m *MixtureSampler) SampleFirst(src *rand.Rand) (t float64, class int) {
	t = math.Inf(1)
	for i, l := range m.laws {
		if v := l.Sample(src); v < t {
			t, class = v, i
		}
	}
	return t, class
}
