// Package dist provides the probability substrate used by the multilevel
// checkpoint models and the simulator: the exponential failure law of the
// paper (Eqn. 1), truncated expectations (Eqn. 2), negative-binomial
// retry-count estimators (Eqns. 5, 8, 12), competing-risk decompositions,
// and a Weibull extension for non-memoryless failure studies.
//
// All durations are expressed in minutes, matching Table I of the paper,
// and all rates are in failures per minute.
package dist

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalidRate is returned by constructors when a failure rate is not a
// positive finite number.
var ErrInvalidRate = errors.New("dist: failure rate must be positive and finite")

// FailProb returns P(t, X) = 1 - exp(-X*t), the probability that an
// exponential failure process with rate X produces at least one failure
// within an interval of length t (paper Eqn. 1).
//
// Degenerate inputs are handled so model sweeps never see NaN: a
// non-positive t or rate yields probability 0.
func FailProb(t, rate float64) float64 {
	if t <= 0 || rate <= 0 {
		return 0
	}
	// -math.Expm1(-x) = 1-exp(-x) with full precision for small x.
	return -math.Expm1(-rate * t)
}

// SurviveProb returns exp(-X*t), the probability that no failure occurs
// during an interval of length t.
func SurviveProb(t, rate float64) float64 {
	if t <= 0 || rate <= 0 {
		return 1
	}
	return math.Exp(-rate * t)
}

// TruncExp returns E(t, X), the expected value of an exponential
// distribution with rate X truncated to the interval [0, t] (paper
// Eqn. 2):
//
//	E(t, X) = (1/X - exp(-X*t)*(1/X + t)) / P(t, X)
//
// It is the expected amount of time elapsed into an event of duration t at
// the moment a failure strikes, conditioned on a failure striking during
// the event. As t -> 0 the value tends to t/2; as t -> infinity it tends
// to the unconditional mean 1/X.
func TruncExp(t, rate float64) float64 {
	if t <= 0 || rate <= 0 {
		return 0
	}
	x := rate * t
	if x < 1e-8 {
		// Second-order series: conditional mean of a near-uniform
		// strike position, avoiding cancellation in the closed form.
		return t / 2 * (1 - x/6)
	}
	// Algebraically equal to Eqn. 2's
	// (1/X - exp(-X*t)*(1/X + t)) / P(t,X) but numerically stable
	// for small X*t.
	return 1/rate - t/math.Expm1(x)
}

// RetryCount returns the expected number of failed attempts before an
// event of duration t first completes without a failure, for failure rate
// X. The paper models this with a negative-binomial estimator
// P/(1-P) = exp(X*t) - 1 (Eqns. 5, 8 and 12 use this shape per attempt).
func RetryCount(t, rate float64) float64 {
	if t <= 0 || rate <= 0 {
		return 0
	}
	return math.Expm1(rate * t)
}

// Exponential is an exponential failure law with a fixed rate.
type Exponential struct {
	rate float64
}

// NewExponential builds an exponential law. The rate must be positive and
// finite.
func NewExponential(rate float64) (Exponential, error) {
	if !(rate > 0) || math.IsInf(rate, 1) {
		return Exponential{}, fmt.Errorf("%w: %v", ErrInvalidRate, rate)
	}
	return Exponential{rate: rate}, nil
}

// Rate returns the failure rate in failures per minute.
func (e Exponential) Rate() float64 { return e.rate }

// MTBF returns the mean time between failures, 1/rate.
func (e Exponential) MTBF() float64 { return 1 / e.rate }

// CDF returns P(failure <= t).
func (e Exponential) CDF(t float64) float64 { return FailProb(t, e.rate) }

// Mean returns the unconditional mean 1/rate.
func (e Exponential) Mean() float64 { return 1 / e.rate }

// TruncMean returns the truncated expectation E(t, rate) (paper Eqn. 2).
func (e Exponential) TruncMean(t float64) float64 { return TruncExp(t, e.rate) }

// Quantile returns the time by which a failure has occurred with
// probability p (the inverse CDF). p must lie in [0, 1).
func (e Exponential) Quantile(p float64) (float64, error) {
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("dist: quantile probability %v outside [0,1)", p)
	}
	return -math.Log1p(-p) / e.rate, nil
}

// CompetingRates describes a set of independent exponential failure
// processes racing against each other — the L severity classes of a
// multilevel checkpointing system.
type CompetingRates struct {
	rates []float64
	total float64
}

// NewCompeting builds a competing-risk set from per-class rates. Zero
// rates are permitted (a class that never fires); negative, NaN or
// infinite rates are rejected. At least one rate must be positive.
func NewCompeting(rates []float64) (*CompetingRates, error) {
	if len(rates) == 0 {
		return nil, errors.New("dist: competing-risk set needs at least one class")
	}
	c := &CompetingRates{rates: append([]float64(nil), rates...)}
	for i, r := range rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("dist: class %d rate %v invalid", i, r)
		}
		c.total += r
	}
	if c.total <= 0 {
		return nil, errors.New("dist: all competing rates are zero")
	}
	return c, nil
}

// Total returns the aggregate rate Σλ_i.
func (c *CompetingRates) Total() float64 { return c.total }

// Classes returns the number of severity classes.
func (c *CompetingRates) Classes() int { return len(c.rates) }

// Rate returns the rate of class i (0-based).
func (c *CompetingRates) Rate(i int) float64 { return c.rates[i] }

// Share returns S_i = λ_i / λ, the probability that a failure, given that
// one occurs, belongs to class i.
func (c *CompetingRates) Share(i int) float64 { return c.rates[i] / c.total }

// PrefixRate returns λ_c = Σ_{j<=i} λ_j over the 0-based prefix [0, i],
// the rate the paper uses for events that only lower-severity failures
// can interrupt.
func (c *CompetingRates) PrefixRate(i int) float64 {
	if i < 0 {
		return 0
	}
	if i >= len(c.rates) {
		i = len(c.rates) - 1
	}
	var s float64
	for j := 0; j <= i; j++ {
		s += c.rates[j]
	}
	return s
}

// SuffixRate returns Σ_{j>i} λ_j over classes strictly above the 0-based
// index i — the residual severity mass when a plan only uses levels <= i.
func (c *CompetingRates) SuffixRate(i int) float64 {
	var s float64
	for j := i + 1; j < len(c.rates); j++ {
		s += c.rates[j]
	}
	return s
}

// FirstFailureSplit returns, for an interval of length t, the probability
// that a failure occurs at all and, conditioned on that, the probability
// that the *first* failure belongs to each class. For independent
// exponentials the first-failure class is λ_i/λ independent of time.
func (c *CompetingRates) FirstFailureSplit(t float64) (pAny float64, classProb []float64) {
	pAny = FailProb(t, c.total)
	classProb = make([]float64, len(c.rates))
	for i := range c.rates {
		classProb[i] = c.rates[i] / c.total
	}
	return pAny, classProb
}

// Weibull is a Weibull failure law, the common non-memoryless extension
// in the checkpointing literature. Shape k = 1 reduces to Exponential.
type Weibull struct {
	scale float64 // λ (characteristic life, minutes)
	shape float64 // k
}

// NewWeibull builds a Weibull law with the given scale (characteristic
// life, minutes) and shape. Both must be positive and finite.
func NewWeibull(scale, shape float64) (Weibull, error) {
	if !(scale > 0) || math.IsInf(scale, 1) {
		return Weibull{}, fmt.Errorf("dist: weibull scale %v invalid", scale)
	}
	if !(shape > 0) || math.IsInf(shape, 1) {
		return Weibull{}, fmt.Errorf("dist: weibull shape %v invalid", shape)
	}
	return Weibull{scale: scale, shape: shape}, nil
}

// Scale returns the characteristic life in minutes.
func (w Weibull) Scale() float64 { return w.scale }

// Shape returns the Weibull shape parameter k.
func (w Weibull) Shape() float64 { return w.shape }

// CDF returns P(failure <= t) = 1 - exp(-(t/λ)^k).
func (w Weibull) CDF(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(t/w.scale, w.shape))
}

// Mean returns λ·Γ(1 + 1/k).
func (w Weibull) Mean() float64 {
	return w.scale * math.Gamma(1+1/w.shape)
}

// Quantile returns the inverse CDF. p must lie in [0, 1).
func (w Weibull) Quantile(p float64) (float64, error) {
	if p < 0 || p >= 1 {
		return 0, fmt.Errorf("dist: quantile probability %v outside [0,1)", p)
	}
	return w.scale * math.Pow(-math.Log1p(-p), 1/w.shape), nil
}

// HazardAt returns the instantaneous hazard rate at time t since the last
// renewal: (k/λ)·(t/λ)^(k-1).
func (w Weibull) HazardAt(t float64) float64 {
	if t < 0 {
		t = 0
	}
	if w.shape == 1 {
		return 1 / w.scale
	}
	if t == 0 {
		if w.shape < 1 {
			return math.Inf(1)
		}
		return 0
	}
	return w.shape / w.scale * math.Pow(t/w.scale, w.shape-1)
}
