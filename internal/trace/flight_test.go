package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/system"
)

// feedTrial streams a minimal synthetic trial into r: a compute phase
// and a terminal event at time makespan.
func feedTrial(r *FlightRecorder, makespan float64) {
	r.Observe(sim.Event{Time: 0, Kind: sim.EvPhaseStart, Phase: sim.PhaseCompute})
	r.Observe(sim.Event{Time: makespan, Kind: sim.EvPhaseEnd, Phase: sim.PhaseCompute, Progress: makespan})
	r.Observe(sim.Event{Time: makespan, Kind: sim.EvComplete, Progress: makespan})
}

func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(FlightOptions{Keep: 3, HoldQuantile: -1})
	for i := 0; i < 10; i++ {
		r.BeginTrial(i)
		feedTrial(r, 1)
	}
	streams := r.Streams(0)
	if len(streams) != 3 {
		t.Fatalf("ring kept %d streams, want 3", len(streams))
	}
	seen := map[int]bool{}
	for _, s := range streams {
		if s.Held {
			t.Fatalf("unexpected held stream %+v", s)
		}
		if len(s.Records) != 3 {
			t.Fatalf("stream %d has %d records, want 3", s.Trial, len(s.Records))
		}
		seen[s.Trial] = true
	}
	for _, want := range []int{7, 8, 9} {
		if !seen[want] {
			t.Fatalf("ring lost trial %d; kept %v", want, seen)
		}
	}
	if r.Held() != 0 {
		t.Fatalf("held = %d, want 0", r.Held())
	}
}

func TestFlightRecorderQuantileHold(t *testing.T) {
	r := NewFlightRecorder(FlightOptions{Keep: 2, HoldQuantile: 0.9, MinSample: 20})
	for i := 0; i < 50; i++ {
		r.BeginTrial(i)
		feedTrial(r, 1)
	}
	if r.Held() != 0 {
		t.Fatalf("uniform makespans pinned %d streams", r.Held())
	}
	r.BeginTrial(50)
	feedTrial(r, 100) // far beyond p90 of the 1.0s seen so far
	if r.Held() != 1 {
		t.Fatalf("outlier not pinned: held = %d", r.Held())
	}
	streams := r.Streams(0)
	if !streams[0].Held || streams[0].Trial != 50 || !strings.Contains(streams[0].Reason, "beyond p90") {
		t.Fatalf("held stream = %+v", streams[0])
	}
}

func TestFlightRecorderJudgeHold(t *testing.T) {
	calls := 0
	r := NewFlightRecorder(FlightOptions{HoldQuantile: -1, Judge: func(last sim.Event) (string, bool) {
		calls++
		return "invariant violated", calls == 2
	}})
	for i := 0; i < 3; i++ {
		r.BeginTrial(i)
		feedTrial(r, 1)
	}
	if calls != 3 {
		t.Fatalf("judge consulted %d times, want 3", calls)
	}
	if r.Held() != 1 {
		t.Fatalf("held = %d, want 1", r.Held())
	}
	s := r.Streams(0)[0]
	if s.Trial != 1 || s.Reason != "invariant violated" {
		t.Fatalf("held stream = %+v", s)
	}
}

func TestFlightRecorderMaxHold(t *testing.T) {
	r := NewFlightRecorder(FlightOptions{MaxHold: 2, HoldQuantile: -1,
		Judge: func(sim.Event) (string, bool) { return "always", true }})
	for i := 0; i < 5; i++ {
		feedTrial(r, 1)
	}
	if r.Held() != 2 || r.Dropped() != 3 {
		t.Fatalf("held/dropped = %d/%d, want 2/3", r.Held(), r.Dropped())
	}
}

func TestFlightRecorderUnterminatedHeld(t *testing.T) {
	r := NewFlightRecorder(FlightOptions{HoldQuantile: -1})
	r.BeginTrial(0)
	feedTrial(r, 1)
	r.BeginTrial(1)
	// A trial error aborts the stream before its terminal event.
	r.Observe(sim.Event{Time: 0, Kind: sim.EvPhaseStart, Phase: sim.PhaseCompute})
	r.Observe(sim.Event{Time: 0.5, Kind: sim.EvFailure, Level: 1})
	streams := r.Streams(3)
	if len(streams) != 2 {
		t.Fatalf("streams = %+v", streams)
	}
	h := streams[0]
	if !h.Held || h.Reason != "unterminated" || h.Trial != 1 || h.Worker != 3 || len(h.Records) != 2 {
		t.Fatalf("unterminated stream = %+v", h)
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	r := NewFlightRecorder(FlightOptions{HoldQuantile: -1,
		Judge: func(sim.Event) (string, bool) { return "pin", true }})
	r.BeginTrial(7)
	feedTrial(r, 2.5)
	var buf bytes.Buffer
	if err := WriteFlight(&buf, r.Streams(1)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlight(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 { // the held copy and the ring copy
		t.Fatalf("round-trip has %d streams, want 2", len(got))
	}
	if got[0].Trial != 7 || !got[0].Held || got[0].Reason != "pin" || got[0].Worker != 1 {
		t.Fatalf("stream 0 = %+v", got[0])
	}
	if got[0].Records[2].Kind != "complete" || got[0].Records[2].Time != 2.5 {
		t.Fatalf("terminal record = %+v", got[0].Records[2])
	}

	// A plain trace file must be rejected.
	buf.Reset()
	rec := &Recorder{Records: []Record{{Kind: "complete"}}}
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlight(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadFlight accepted a mlckpt-trace file")
	}
}

func flightScenario(t *testing.T) sim.Scenario {
	t.Helper()
	sys, err := system.ByName("D7")
	if err != nil {
		t.Fatal(err)
	}
	return sim.Scenario{
		System: sys,
		Plan:   pattern.Plan{Tau0: 1.3, Counts: []int{3}, Levels: []int{1, 2}},
	}
}

func TestFlightPoolCampaign(t *testing.T) {
	pool := &FlightPool{Options: FlightOptions{Keep: 4, HoldQuantile: 0.95, MinSample: 10}}
	camp := sim.Campaign{
		Scenario:        flightScenario(t),
		Trials:          120,
		Seed:            rng.Campaign(3, "flight").Scenario("D7"),
		Workers:         4,
		ObserverFactory: pool.Observer,
		TrialStart:      pool.TrialStart,
	}
	if _, err := camp.Run(); err != nil {
		t.Fatal(err)
	}
	streams := pool.Streams()
	// 4 workers × ring of 4, plus any quantile holds.
	if len(streams) < 16 {
		t.Fatalf("streams = %d, want >= 16", len(streams))
	}
	trialSeen := map[int]int{}
	for i, s := range streams {
		if s.Trial < 0 || s.Trial >= 120 {
			t.Fatalf("stream has out-of-range trial %d", s.Trial)
		}
		trialSeen[s.Trial]++
		if last := s.Records[len(s.Records)-1]; last.Kind != "complete" && last.Kind != "capped" {
			t.Fatalf("stream %d ends with %q", s.Trial, last.Kind)
		}
		// Held streams sort first, then trial order within each class.
		if i > 0 && streams[i-1].Held == s.Held && streams[i-1].Trial > s.Trial {
			t.Fatalf("streams unsorted at %d: %+v then %+v", i, streams[i-1], s)
		}
	}
	// The ring keeps each worker's LAST trials; with the i%workers
	// round-robin, trial 119 belongs to worker 119%4=3 and must be
	// present (either in the ring or held).
	if trialSeen[119] == 0 {
		t.Fatal("last trial's stream missing from dump")
	}
	var buf bytes.Buffer
	if err := pool.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFlight(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(streams) {
		t.Fatalf("dump round-trip: %d streams, want %d", len(got), len(streams))
	}
}

func TestFlightObserverDoesNotAllocate(t *testing.T) {
	eng, err := sim.NewEngine(flightScenario(t))
	if err != nil {
		t.Fatal(err)
	}
	// Holds copy the stream (rare by design); disable them to measure
	// the steady-state recycle path.
	rec := NewFlightRecorder(FlightOptions{HoldQuantile: -1})
	eng.Observe(rec)
	seed := rng.Campaign(3, "flight-alloc").Scenario("D7")
	// Warm up: let the stream buffer and ring slots reach capacity.
	for i := 0; i < 24; i++ {
		if _, err := eng.Run(seed.Trial(i)); err != nil {
			t.Fatal(err)
		}
	}
	trial := 24
	avg := testing.AllocsPerRun(10, func() {
		rec.BeginTrial(trial)
		if _, err := eng.Run(seed.Trial(trial)); err != nil {
			t.Fatal(err)
		}
		trial++
	})
	if avg > 1 {
		t.Fatalf("flight-observed trial allocates %.1f objects, want ~0", avg)
	}
}
