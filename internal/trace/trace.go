// Package trace records and replays simulation runs. A Recorder captures
// the full event stream of one trial (for debugging and for the
// cmd/simtrace tool); Recording/Replay samplers capture the failure
// inter-arrival draws of a trial so the exact same failure process can be
// re-injected into a modified scenario — the standard tool for
// "same failures, different plan" comparisons.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"

	"repro/internal/dist"
	"repro/internal/sim"
)

// Record is one serialized simulation event.
type Record struct {
	Time     float64 `json:"t"`
	Kind     string  `json:"kind"`
	Phase    string  `json:"phase"`
	Level    int     `json:"level,omitempty"`
	Progress float64 `json:"progress"`
}

// Recorder collects simulation events; it implements sim.Observer.
type Recorder struct {
	Records []Record
}

// Observe implements sim.Observer.
func (r *Recorder) Observe(e sim.Event) {
	r.Records = append(r.Records, Record{
		Time:     e.Time,
		Kind:     e.Kind.String(),
		Phase:    e.Phase.String(),
		Level:    e.Level,
		Progress: e.Progress,
	})
}

// Counts tallies records by kind.
func (r *Recorder) Counts() map[string]int {
	out := map[string]int{}
	for _, rec := range r.Records {
		out[rec.Kind]++
	}
	return out
}

// header versions the serialized trace format.
type header struct {
	Format  string   `json:"format"`
	Version int      `json:"version"`
	Records []Record `json:"records"`
}

const formatName = "mlckpt-trace"

// Write serializes the recorded events as JSON.
func (r *Recorder) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(header{Format: formatName, Version: 1, Records: r.Records})
}

// Read deserializes a trace previously produced by Write.
func Read(rd io.Reader) (*Recorder, error) {
	var h header
	if err := json.NewDecoder(rd).Decode(&h); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if h.Format != formatName {
		return nil, fmt.Errorf("trace: not a %s file (format %q)", formatName, h.Format)
	}
	if h.Version != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", h.Version)
	}
	return &Recorder{Records: h.Records}, nil
}

// RecordingSampler wraps a failure law and logs every draw.
type RecordingSampler struct {
	Inner dist.Sampler
	Draws []float64
}

// Sample implements dist.Sampler.
func (r *RecordingSampler) Sample(src *rand.Rand) float64 {
	v := r.Inner.Sample(src)
	r.Draws = append(r.Draws, v)
	return v
}

// Mean implements dist.Sampler.
func (r *RecordingSampler) Mean() float64 { return r.Inner.Mean() }

// ReplaySampler replays a recorded draw sequence. When the recording is
// exhausted it returns +Inf (no further failures), which keeps replays
// deterministic.
type ReplaySampler struct {
	Draws []float64
	next  int
}

// Sample implements dist.Sampler.
func (r *ReplaySampler) Sample(*rand.Rand) float64 {
	if r.next >= len(r.Draws) {
		return math.Inf(1)
	}
	v := r.Draws[r.next]
	r.next++
	return v
}

// Mean implements dist.Sampler; it reports the mean of the recorded
// draws (0 for an empty recording).
func (r *ReplaySampler) Mean() float64 {
	if len(r.Draws) == 0 {
		return 0
	}
	var s float64
	for _, d := range r.Draws {
		s += d
	}
	return s / float64(len(r.Draws))
}

// Rewind restarts the replay from the first draw.
func (r *ReplaySampler) Rewind() { r.next = 0 }

// Remaining returns how many recorded draws have not been replayed.
func (r *ReplaySampler) Remaining() int { return len(r.Draws) - r.next }

// RecordFailures runs one trial with recording samplers installed for
// every severity and returns the trial result together with replayable
// samplers holding the recorded failure processes.
func RecordFailures(scn sim.Scenario, src *rand.Rand) (sim.TrialResult, []*ReplaySampler, error) {
	if scn.System == nil {
		return sim.TrialResult{}, nil, errors.New("trace: nil system")
	}
	if err := scn.Validate(); err != nil {
		return sim.TrialResult{}, nil, err
	}
	recs := make([]*RecordingSampler, scn.System.NumLevels())
	laws := make([]dist.Sampler, scn.System.NumLevels())
	for sev := 1; sev <= scn.System.NumLevels(); sev++ {
		rate := scn.System.LevelRate(sev)
		if len(scn.FailureLaws) >= sev && scn.FailureLaws[sev-1] != nil {
			recs[sev-1] = &RecordingSampler{Inner: scn.FailureLaws[sev-1]}
		} else if rate > 0 {
			law, err := dist.NewExponential(rate)
			if err != nil {
				return sim.TrialResult{}, nil, err
			}
			recs[sev-1] = &RecordingSampler{Inner: law}
		}
		if recs[sev-1] != nil {
			laws[sev-1] = recs[sev-1]
		}
	}
	scn.FailureLaws = laws
	res, err := sim.RunTrial(scn, src)
	if err != nil {
		return sim.TrialResult{}, nil, err
	}
	replays := make([]*ReplaySampler, len(recs))
	for i, r := range recs {
		if r != nil {
			replays[i] = &ReplaySampler{Draws: r.Draws}
		} else {
			replays[i] = &ReplaySampler{}
		}
	}
	return res, replays, nil
}

// ReplayFailures re-runs a scenario against previously recorded failure
// processes. The plan or policy in scn may differ from the recording
// run; the failure arrivals stay identical as long as the replay is not
// exhausted.
func ReplayFailures(scn sim.Scenario, replays []*ReplaySampler, src *rand.Rand) (sim.TrialResult, error) {
	if scn.System == nil {
		return sim.TrialResult{}, errors.New("trace: nil system")
	}
	if len(replays) != scn.System.NumLevels() {
		return sim.TrialResult{}, fmt.Errorf("trace: %d replay streams for %d severities",
			len(replays), scn.System.NumLevels())
	}
	laws := make([]dist.Sampler, len(replays))
	for i, r := range replays {
		r.Rewind()
		laws[i] = r
	}
	scn.FailureLaws = laws
	return sim.RunTrial(scn, src)
}
